#!/usr/bin/env python3
"""Smoke-parse bdprintd observability artifacts.

Usage: smoke_observability.py --flight DUMP.jsonl [--reason R] TRACE.json...

Validates that a flight-recorder dump is well-formed JSONL whose header
names the expected dump reason and whose crash/wedge event identifies
the poisoned request, and that each trace file is Chrome trace-event
JSON (the format chrome://tracing and Perfetto load) with at least one
complete span.  Exits nonzero with a diagnostic on the first violation;
CI runs it against the artifacts of the seeded-chaos job, and it works
the same on a local chaos run.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"smoke_observability: {msg}", file=sys.stderr)
    sys.exit(1)


def check_flight(path, reason):
    try:
        with open(path) as fh:
            lines = [json.loads(line) for line in fh if line.strip()]
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    if not lines:
        fail(f"{path}: empty dump")
    header = lines[0]
    if not header.get("flight_dump"):
        fail(f"{path}: first line is not a dump header: {header}")
    if reason is not None and header.get("reason") != reason:
        fail(f"{path}: dump reason {header.get('reason')!r}, wanted {reason!r}")
    events = lines[1:]
    for ev in events:
        for key in ("seq", "t_us", "dom", "req", "kind", "detail"):
            if key not in ev:
                fail(f"{path}: event missing {key!r}: {ev}")
    fatal = [ev for ev in events if ev["kind"] in ("crash", "wedge")]
    if not fatal:
        fail(f"{path}: no crash/wedge event in {len(events)} events")
    poisoned = fatal[-1]
    if "input=" not in poisoned["detail"]:
        fail(f"{path}: {poisoned['kind']} event does not name its input: {poisoned}")
    print(
        f"{path}: ok — {len(events)} events, reason={header.get('reason')!r}, "
        f"poisoned request: {poisoned['detail']}"
    )


def check_trace(path):
    try:
        with open(path) as fh:
            trace = json.load(fh)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: no traceEvents")
    for ev in events:
        for key in ("name", "ph", "ts", "dur", "pid", "tid"):
            if key not in ev:
                fail(f"{path}: span missing {key!r}: {ev}")
        if ev["ph"] != "X":
            fail(f"{path}: unexpected phase {ev['ph']!r} (complete spans only)")
    tids = {ev["tid"] for ev in events}
    print(f"{path}: ok — {len(events)} spans across {len(tids)} traced requests")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--flight", help="flight-recorder JSONL dump to validate")
    ap.add_argument(
        "--reason", default=None, help="required dump reason (e.g. worker-crash)"
    )
    ap.add_argument("traces", nargs="*", help="Chrome trace-event JSON files")
    opts = ap.parse_args()
    if not opts.flight and not opts.traces:
        ap.error("nothing to check")
    if opts.flight:
        check_flight(opts.flight, opts.reason)
    for path in opts.traces:
        check_trace(path)


if __name__ == "__main__":
    main()
