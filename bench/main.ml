(* Benchmark harness regenerating the paper's evaluation (see DESIGN.md,
   experiment index):

   - table2:   relative CPU time of the scaling algorithms (Table 2)
   - table3:   free vs straightforward fixed vs printf + incorrect counts
               (Table 3)
   - digits:   shortest-output length distribution ("average 15.2 digits")
   - showcase: the in-text examples (1e23, # marks)
   - ablation: estimator accuracy (ours, E7)
   - sweep:    scaling cost by magnitude, the series behind Table 2 (ours)
   - reader:   certified fast paths vs exact (reader tiers, Gay fixed
               format, Grisu3-style shortest form; ours, E9)
   - service:  sequential vs supervised parallel streaming (ours, E10)
   - bignum:   substrate microbenchmarks (ours, E8)
   - kernel:   allocation-free digit loop vs pure-Nat reference
               (throughput + Gc.minor_words per conversion; writes
               BENCH_kernel.json)
   - bechamel: per-conversion microbenchmarks, one Test.make per table

   Run everything:            dune exec bench/main.exe
   One section:               dune exec bench/main.exe -- table2
   Bigger corpora:            dune exec bench/main.exe -- --size 250680 *)

module Nat = Bignum.Nat
module Value = Fp.Value

let b64 = Fp.Format_spec.binary64

let decompose_pos x =
  match Fp.Ieee.decompose x with
  | Value.Finite v -> v
  | _ -> invalid_arg "not finite"

(* CPU-time measurement, as in the paper. *)
let time_cpu f =
  let t0 = Sys.time () in
  let r = f () in
  (r, Sys.time () -. t0)

let sink = ref 0

let line = String.make 72 '-'

(* ------------------------------------------------------------------ *)
(* Table 2: scaling algorithms *)

let table2 ~size () =
  Printf.printf "%s\nTable 2: relative CPU time of scaling algorithms\n" line;
  Printf.printf "(scaling step on %d Schryer doubles; base 10)\n\n" size;
  let values = Array.map decompose_pos (Workloads.Schryer.corpus ~size ()) in
  let boundaries = Array.map (Dragon.Boundaries.of_finite b64) values in
  let run_scaling strategy =
    snd
      (time_cpu (fun () ->
           Array.iteri
             (fun i (v : Value.finite) ->
               let k, _ =
                 Dragon.Scaling.scale strategy ~base:10 ~b:2 ~f:v.Value.f
                   ~e:v.Value.e boundaries.(i)
               in
               sink := !sink + k)
             values))
  in
  let run_end_to_end strategy =
    snd
      (time_cpu (fun () ->
           Array.iter
             (fun v ->
               let r = Dragon.Free_format.convert ~strategy b64 v in
               sink := !sink + Array.length r.Dragon.Free_format.digits)
             values))
  in
  (* warm up (also fills the power tables, as the paper's tables are) *)
  ignore (run_scaling Dragon.Scaling.Fast_estimate);
  ignore (run_scaling Dragon.Scaling.Iterative);
  let scaling = List.map (fun s -> (s, run_scaling s)) Dragon.Scaling.all in
  let full = List.map (fun s -> (s, run_end_to_end s)) Dragon.Scaling.all in
  let fast_s = List.assoc Dragon.Scaling.Fast_estimate scaling in
  let fast_f = List.assoc Dragon.Scaling.Fast_estimate full in
  Printf.printf "  %-16s %12s %10s %14s %12s\n" "Scaling" "scale (s)"
    "relative" "end-to-end (s)" "relative";
  List.iter
    (fun s ->
      let ts = List.assoc s scaling and tf = List.assoc s full in
      Printf.printf "  %-16s %12.3f %10.2f %14.3f %12.2f\n"
        (Dragon.Scaling.strategy_name s)
        ts (ts /. fast_s) tf (tf /. fast_f))
    Dragon.Scaling.all;
  Printf.printf
    "\n  paper (scaling step): iterative ~two orders of magnitude slower\n\
    \  than either estimate-based algorithm; estimator = 1.\n"

(* ------------------------------------------------------------------ *)
(* Table 3: free vs straightforward fixed vs printf *)

(* Parse the host printf's "d.dddddddddddddddde+XX" into (digits, k). *)
let parse_printf17 s =
  let digits = Array.make 17 0 in
  let di = ref 0 in
  let i = ref 0 in
  let n = String.length s in
  while !di < 17 && !i < n do
    (match s.[!i] with
    | '0' .. '9' as c ->
      digits.(!di) <- Char.code c - Char.code '0';
      incr di
    | _ -> ());
    if s.[!i] = 'e' then di := 17;
    incr i
  done;
  let epos = String.index s 'e' in
  let exp = int_of_string (String.sub s (epos + 1) (n - epos - 1)) in
  (digits, exp + 1)

let table3 ~size () =
  Printf.printf "%s\nTable 3: free format vs fixed format vs printf\n" line;
  Printf.printf "(%d Schryer doubles, 17 significant digits for the fixed \
                 printers)\n\n"
    size;
  let corpus = Workloads.Schryer.corpus ~size () in
  let values = Array.map decompose_pos corpus in
  let free () =
    Array.iter
      (fun v ->
        let r = Dragon.Free_format.convert b64 v in
        sink := !sink + String.length (Dragon.Render.free ~base:10 r))
      values
  in
  let fixed () =
    Array.iter
      (fun v ->
        let digits, _ =
          Baselines.Naive_fixed.convert_digit_loop ~ndigits:17 b64 v
        in
        sink := !sink + Array.length digits)
      values
  in
  let printf_host () =
    Array.iter
      (fun x -> sink := !sink + String.length (Printf.sprintf "%.16e" x))
      corpus
  in
  let printf_ext64 () =
    Array.iter
      (fun x ->
        let digits, _ = Baselines.Float_fixed.convert ~ndigits:17 x in
        sink := !sink + Array.length digits)
      corpus
  in
  ignore (time_cpu fixed);
  let _, t_free = time_cpu free in
  let _, t_fixed = time_cpu fixed in
  let _, t_printf = time_cpu printf_host in
  let _, t_ext = time_cpu printf_ext64 in
  (* incorrect-rounding counts at 17 digits *)
  let incorrect_printf = ref 0 and incorrect_ext = ref 0 in
  Array.iteri
    (fun i x ->
      let exact = Baselines.Naive_fixed.convert ~ndigits:17 b64 values.(i) in
      if parse_printf17 (Printf.sprintf "%.16e" x) <> exact then
        incr incorrect_printf;
      if Baselines.Float_fixed.convert ~ndigits:17 x <> exact then
        incr incorrect_ext)
    corpus;
  Printf.printf "  %-34s %12s %10s %10s\n" "Printer" "CPU time (s)" "Relative"
    "Incorrect";
  Printf.printf "  %-34s %12.3f %10.2f %10s\n" "free format (this paper)"
    t_free (t_free /. t_fixed) "-";
  Printf.printf "  %-34s %12.3f %10.2f %10d\n"
    "straightforward fixed (exact)" t_fixed 1.0 0;
  Printf.printf "  %-34s %12.3f %10.2f %10d\n" "host printf %.16e" t_printf
    (t_printf /. t_fixed) !incorrect_printf;
  Printf.printf "  %-34s %12.3f %10.2f %10d\n"
    "printf model (64-bit extended)" t_ext (t_ext /. t_fixed) !incorrect_ext;
  Printf.printf
    "\n  paper (geo. means): free/fixed = 1.66, fixed/printf = 1.51,\n\
    \  incorrect printf counts 0..6280 of 250,680 depending on system\n"

(* ------------------------------------------------------------------ *)
(* Digit statistics *)

let digit_stats ~size () =
  Printf.printf "%s\nShortest-output digit statistics\n" line;
  let corpus = Workloads.Schryer.corpus ~size () in
  let histogram = Array.make 18 0 in
  let total = ref 0 in
  Array.iter
    (fun x ->
      let n = Dragon.Free_format.digit_count b64 (decompose_pos x) in
      histogram.(n) <- histogram.(n) + 1;
      total := !total + n)
    corpus;
  Array.iteri
    (fun n count ->
      if count > 0 then Printf.printf "  %2d digits: %8d\n" n count)
    histogram;
  Printf.printf "  average %.2f digits over %d values (paper: 15.2)\n"
    (float_of_int !total /. float_of_int size)
    size

(* ------------------------------------------------------------------ *)
(* In-text showcase *)

let showcase () =
  Printf.printf "%s\nIn-text examples\n" line;
  Printf.printf "  1e23, reader rounds to even : %s\n" (Dragon.Printer.print 1e23);
  Printf.printf "  1e23, mode-oblivious        : %s\n"
    (Baselines.Steele_white.print 1e23);
  Printf.printf "  100 to 20 places            : %s\n"
    (Dragon.Printer.print_fixed (Dragon.Fixed_format.Absolute (-20)) 100.);
  Printf.printf "  1/3 to 10 places            : %s\n"
    (Dragon.Printer.print_fixed (Dragon.Fixed_format.Absolute (-10)) (1. /. 3.));
  Printf.printf "  min denormal, 10 digits     : %s\n"
    (Dragon.Printer.print_fixed (Dragon.Fixed_format.Relative 10) 5e-324)

(* ------------------------------------------------------------------ *)
(* Ablation: estimator accuracy and scaling-only cost *)

let ablation ~size () =
  Printf.printf "%s\nAblation: estimate accuracy (estimate - k)\n" line;
  let corpus = Array.map decompose_pos (Workloads.Schryer.corpus ~size ()) in
  List.iter
    (fun strategy ->
      match strategy with
      | Dragon.Scaling.Iterative -> ()
      | _ ->
        let exact = ref 0 and low1 = ref 0 and other = ref 0 in
        Array.iter
          (fun (v : Value.finite) ->
            let k =
              (Dragon.Free_format.convert b64 v).Dragon.Free_format.k
            in
            match
              Dragon.Scaling.estimate strategy ~base:10 ~b:2 ~f:v.Value.f
                ~e:v.Value.e
            with
            | Some est when est = k -> incr exact
            | Some est when est = k - 1 -> incr low1
            | _ -> incr other)
          corpus;
        Printf.printf "  %-15s exact: %7d   one low: %7d   other: %d\n"
          (Dragon.Scaling.strategy_name strategy)
          !exact !low1 !other)
    Dragon.Scaling.all;
  Printf.printf
    "\n  (the fixup makes 'one low' free; 'other' must always be 0)\n"

(* ------------------------------------------------------------------ *)
(* Cost vs magnitude: the series behind Table 2 *)

let sweep () =
  Printf.printf
    "%s\nScaling cost by decimal magnitude (us/conversion, end to end)\n" line;
  Printf.printf "  %-12s %12s %12s %14s\n" "|log10 v| ~" "iterative"
    "fast-estimate" "ratio";
  List.iter
    (fun mag ->
      let x = 1.5 *. (10. ** float_of_int mag) in
      let v = decompose_pos x in
      let iterations = 400 in
      let run strategy =
        snd
          (time_cpu (fun () ->
               for _ = 1 to iterations do
                 ignore
                   (Sys.opaque_identity
                      (Dragon.Free_format.convert ~strategy b64 v))
               done))
        /. float_of_int iterations *. 1e6
      in
      let t_iter = run Dragon.Scaling.Iterative in
      let t_fast = run Dragon.Scaling.Fast_estimate in
      Printf.printf "  %-12d %12.2f %12.2f %14.1f\n" (abs mag) t_iter t_fast
        (t_iter /. t_fast))
    [ 0; 20; 50; 100; 200; 300; -20; -50; -100; -200; -300 ];
  Printf.printf
    "\n  (iterative scaling degrades linearly in |log v|; the estimator\n\
    \   is flat — the mechanism behind Table 2)\n"

(* ------------------------------------------------------------------ *)
(* Reader tiers and the Gay fixed-format fast path (ablations, ours) *)

let reader_bench ~size () =
  Printf.printf "%s\nReader: certified fast path vs exact (Clinger-style)\n"
    line;
  let corpus = Workloads.Schryer.corpus ~size () in
  (* shortest strings: the adversarial inputs closest to boundaries *)
  let strings = Array.map Dragon.Printer.print corpus in
  let _, t_exact =
    time_cpu (fun () ->
        Array.iter
          (fun s ->
            match Reader.read_float s with
            | Ok x -> sink := !sink + int_of_float x land 1
            | Error _ -> ())
          strings)
  in
  let before = Reader.Fast.stats () in
  let _, t_fast =
    time_cpu (fun () ->
        Array.iter
          (fun s ->
            match Reader.Fast.read s with
            | Ok x -> sink := !sink + int_of_float x land 1
            | Error _ -> ())
          strings)
  in
  let after = Reader.Fast.stats () in
  Printf.printf "  exact bignum reader: %8.3f s\n" t_exact;
  Printf.printf "  tiered fast reader:  %8.3f s  (%.1fx)\n" t_fast
    (t_exact /. t_fast);
  Printf.printf
    "  tiers on this corpus: %d hardware-exact, %d extended-certified, %d \
     bignum fallback\n"
    (after.Reader.Fast.exact - before.Reader.Fast.exact)
    (after.Reader.Fast.extended - before.Reader.Fast.extended)
    (after.Reader.Fast.fallback - before.Reader.Fast.fallback);
  (* Gay's fixed-format fast path *)
  let values = Array.map decompose_pos corpus in
  let _, t_naive =
    time_cpu (fun () ->
        Array.iter
          (fun v ->
            sink :=
              !sink
              + Array.length
                  (fst (Baselines.Naive_fixed.convert ~ndigits:15 b64 v)))
          values)
  in
  let h0 = Baselines.Gay_heuristic.fast_path_hits () in
  let f0 = Baselines.Gay_heuristic.fallbacks () in
  let _, t_gay =
    time_cpu (fun () ->
        Array.iter
          (fun v ->
            sink :=
              !sink
              + Array.length
                  (fst (Baselines.Gay_heuristic.convert ~ndigits:15 b64 v)))
          values)
  in
  Printf.printf
    "\n  Gay heuristic, fixed format at 15 digits (correct by construction):\n";
  Printf.printf "  exact conversion:    %8.3f s\n" t_naive;
  Printf.printf "  certified fast path: %8.3f s  (%.1fx; %d hits, %d fallbacks)\n"
    t_gay (t_naive /. t_gay)
    (Baselines.Gay_heuristic.fast_path_hits () - h0)
    (Baselines.Gay_heuristic.fallbacks () - f0);
  (* Grisu3-style shortest-form fast path *)
  let _, t_dragon =
    time_cpu (fun () ->
        Array.iter
          (fun v ->
            sink :=
              !sink
              + Array.length
                  (Dragon.Free_format.convert b64 v).Dragon.Free_format.digits)
          values)
  in
  let fast0, fb0 = Baselines.Fast_shortest.stats () in
  let _, t_short =
    time_cpu (fun () ->
        Array.iter
          (fun v ->
            sink :=
              !sink
              + Array.length
                  (Baselines.Fast_shortest.convert v).Dragon.Free_format.digits)
          values)
  in
  let fast1, fb1 = Baselines.Fast_shortest.stats () in
  Printf.printf
    "\n  Shortest form, Grisu3-style candidates + exact verification\n\
    \  (digit-identical to the paper's printer):\n";
  Printf.printf "  Burger-Dybvig free format: %8.3f s\n" t_dragon;
  Printf.printf "  certified fast shortest:   %8.3f s  (%.1fx; %d fast, %d \
                 fallbacks)\n"
    t_short (t_dragon /. t_short) (fast1 - fast0) (fb1 - fb0)

(* ------------------------------------------------------------------ *)
(* Bignum substrate microbenchmarks *)

let bignum_bench () =
  Printf.printf "%s\nBignum substrate: multiplication crossover\n" line;
  let mk limbs seed =
    let st = Random.State.make [| seed |] in
    let rec build n acc =
      if n = 0 then acc
      else
        build (n - 1)
          (Nat.add (Nat.shift_left acc 30)
             (Nat.of_int (Random.State.int st ((1 lsl 30) - 1))))
    in
    build limbs Nat.one
  in
  List.iter
    (fun limbs ->
      let a = mk limbs 1 and b = mk limbs 2 in
      let iterations = max 1 (20_000 / limbs) in
      let t_school =
        snd
          (time_cpu (fun () ->
               for _ = 1 to iterations do
                 ignore (Sys.opaque_identity (Nat.mul_schoolbook a b))
               done))
      in
      let t_kara =
        snd
          (time_cpu (fun () ->
               for _ = 1 to iterations do
                 ignore (Sys.opaque_identity (Nat.mul_karatsuba a b))
               done))
      in
      Printf.printf
        "  %4d limbs (%5d bits): schoolbook %8.2f us   karatsuba %8.2f us\n"
        limbs (limbs * 30)
        (t_school /. float_of_int iterations *. 1e6)
        (t_kara /. float_of_int iterations *. 1e6))
    [ 4; 8; 16; 32; 64; 128; 256 ];
  Printf.printf "  (threshold used by Nat.mul: %d limbs)\n"
    Nat.karatsuba_threshold

(* ------------------------------------------------------------------ *)
(* Kernel: allocation-free digit loop vs the pure-Nat reference *)

let kernel_bench ~size () =
  Printf.printf
    "%s\nKernel: in-place digit-loop kernels vs pure-Nat reference\n" line;
  Printf.printf
    "(%d Schryer doubles; throughput and Gc.minor_words per conversion)\n\n"
    size;
  let values = Array.map decompose_pos (Workloads.Schryer.corpus ~size ()) in
  let fsize = float_of_int size in
  let free_pass () =
    Array.iter
      (fun v ->
        let r = Dragon.Free_format.convert b64 v in
        sink := !sink + Array.length r.Dragon.Free_format.digits)
      values
  in
  let fixed_pass () =
    Array.iter
      (fun v ->
        match
          Dragon.Fixed_format.convert b64 v (Dragon.Fixed_format.Relative 17)
        with
        | Ok t -> sink := !sink + Array.length t.Dragon.Fixed_format.digits
        | Error _ -> ())
      values
  in
  let sw_pass () =
    Array.iter
      (fun v ->
        sink :=
          !sink
          + Array.length
              (Baselines.Steele_white.convert b64 v).Dragon.Free_format.digits)
      values
  in
  (* Warm up first (power tables, scratch pools), then measure CPU time
     and the minor-allocation delta of one clean pass. *)
  let measure pass =
    pass ();
    Gc.full_major ();
    let w0 = Gc.minor_words () in
    let _, t = time_cpu pass in
    let w1 = Gc.minor_words () in
    (t, (w1 -. w0) /. fsize)
  in
  let forced_pure f =
    Dragon.Generate.set_force_pure true;
    Fun.protect ~finally:(fun () -> Dragon.Generate.set_force_pure false) f
  in
  let without_fastpath f =
    Dragon.Printer.set_fastpath_enabled false;
    Fun.protect ~finally:(fun () -> Dragon.Printer.set_fastpath_enabled true) f
  in
  (* The table-driven fast path finishes a pass in single-digit
     milliseconds at this corpus size, so repeat it to get a clock
     reading that dwarfs timer resolution. *)
  let fast_reps = 50 in
  let fast_t, fast_w =
    free_pass ();
    Gc.full_major ();
    let w0 = Gc.minor_words () in
    let _, t =
      time_cpu (fun () ->
          for _ = 1 to fast_reps do
            free_pass ()
          done)
    in
    let w1 = Gc.minor_words () in
    let reps = float_of_int fast_reps in
    (t /. reps, (w1 -. w0) /. (fsize *. reps))
  in
  let scr_t, scr_w = without_fastpath (fun () -> measure free_pass) in
  let pure_t, pure_w = forced_pure (fun () -> measure free_pass) in
  let fx_scr_t, fx_scr_w = measure fixed_pass in
  let fx_pure_t, fx_pure_w = forced_pure (fun () -> measure fixed_pass) in
  let sw_t, sw_w = measure sw_pass in
  (* Dispatch splits (counters record only while telemetry is on): the
     fast path's hit/fallback division of one pass, then the word/scratch
     division of the exact kernels with the fast path off. *)
  let h0, fb0 = Dragon.Printer.fastpath_stats () in
  Telemetry.set_enabled true;
  free_pass ();
  Telemetry.set_enabled false;
  let h1, fb1 = Dragon.Printer.fastpath_stats () in
  let fp_hits = h1 - h0 and fp_fallbacks = fb1 - fb0 in
  let fallback_rate =
    float_of_int fp_fallbacks /. float_of_int (max 1 (fp_hits + fp_fallbacks))
  in
  let f0 = Dragon.Generate.fastpath_count ()
  and s0 = Dragon.Generate.scratchpath_count () in
  Telemetry.set_enabled true;
  without_fastpath free_pass;
  Telemetry.set_enabled false;
  let fast_hits = Dragon.Generate.fastpath_count () - f0
  and scratch_hits = Dragon.Generate.scratchpath_count () - s0 in
  let row name t w =
    Printf.printf "  %-34s %10.3f s %12.0f conv/s %12.1f minor w/conv\n" name t
      (fsize /. t) w
  in
  row "free format, table fast path" fast_t fast_w;
  row "free format, kernel path" scr_t scr_w;
  row "free format, pure-Nat path" pure_t pure_w;
  row "fixed format (17), kernel path" fx_scr_t fx_scr_w;
  row "fixed format (17), pure-Nat path" fx_pure_t fx_pure_w;
  row "Steele & White baseline" sw_t sw_w;
  Printf.printf
    "\n  free format: %.1fx fewer minor words, %.2fx throughput; digit loop\n\
    \  paths on this corpus: %d word-sized fast, %d scratch\n"
    (pure_w /. scr_w)
    (pure_t /. scr_t) fast_hits scratch_hits;
  Printf.printf
    "  table fast path: %.2fx over the exact kernels (%.2fx over pure), %d \
     hits / %d fallbacks (%.3f%% fallback)\n"
    (scr_t /. fast_t) (pure_t /. fast_t) fp_hits fp_fallbacks
    (100.0 *. fallback_rate);
  let oc = open_out "BENCH_kernel.json" in
  Printf.fprintf oc
    "{\n\
    \  \"size\": %d,\n\
    \  \"free_format\": {\n\
    \    \"fastpath\": { \"time_s\": %.6f, \"conversions_per_s\": %.0f, \
     \"minor_words_per_conversion\": %.1f, \"hits\": %d, \"fallbacks\": %d, \
     \"fallback_rate\": %.5f, \"speedup_vs_kernel\": %.3f, \
     \"speedup_vs_pure\": %.3f },\n\
    \    \"kernel\": { \"time_s\": %.6f, \"conversions_per_s\": %.0f, \
     \"minor_words_per_conversion\": %.1f },\n\
    \    \"pure\": { \"time_s\": %.6f, \"conversions_per_s\": %.0f, \
     \"minor_words_per_conversion\": %.1f },\n\
    \    \"minor_words_reduction\": %.2f,\n\
    \    \"speedup\": %.3f\n\
    \  },\n\
    \  \"fixed_format_17\": {\n\
    \    \"kernel\": { \"time_s\": %.6f, \"conversions_per_s\": %.0f, \
     \"minor_words_per_conversion\": %.1f },\n\
    \    \"pure\": { \"time_s\": %.6f, \"conversions_per_s\": %.0f, \
     \"minor_words_per_conversion\": %.1f },\n\
    \    \"minor_words_reduction\": %.2f,\n\
    \    \"speedup\": %.3f\n\
    \  },\n\
    \  \"steele_white\": { \"time_s\": %.6f, \"conversions_per_s\": %.0f, \
     \"minor_words_per_conversion\": %.1f },\n\
    \  \"digit_loop_paths\": { \"fastpath\": %d, \"scratchpath\": %d }\n\
     }\n"
    size fast_t (fsize /. fast_t) fast_w fp_hits fp_fallbacks fallback_rate
    (scr_t /. fast_t) (pure_t /. fast_t) scr_t (fsize /. scr_t) scr_w pure_t
    (fsize /. pure_t) pure_w (pure_w /. scr_w) (pure_t /. scr_t) fx_scr_t
    (fsize /. fx_scr_t) fx_scr_w fx_pure_t (fsize /. fx_pure_t) fx_pure_w
    (fx_pure_w /. fx_scr_w) (fx_pure_t /. fx_scr_t) sw_t (fsize /. sw_t) sw_w
    fast_hits scratch_hits;
  close_out oc;
  Printf.printf "  wrote BENCH_kernel.json\n";
  (* Acceptance floor: the table fast path must clear 3x the exact
     kernels on this corpus, with margin to spare; regressing below
     that fails the bench (and the CI bench step) loudly. *)
  if scr_t /. fast_t < 3.0 then begin
    Printf.eprintf
      "FAIL: fast-path speedup %.2fx below the 3x acceptance floor\n"
      (scr_t /. fast_t);
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Service layer: sequential vs supervised parallel throughput (E10) *)

let service_bench ~size () =
  Printf.printf
    "%s\nService: sequential vs supervised parallel throughput (wall clock)\n"
    line;
  Printf.printf
    "(read + shortest print round trip on %d Schryer doubles; %d core(s))\n\n"
    size
    (Domain.recommended_domain_count ());
  let strings = Array.map Dragon.Printer.print (Workloads.Schryer.corpus ~size ()) in
  let convert input =
    match
      Reader.read ~mode:Fp.Rounding.To_nearest_even Fp.Format_spec.binary64
        input
    with
    | Error _ as e -> e
    | Ok v ->
      Dragon.Printer.print_value ~base:10 ~mode:Fp.Rounding.To_nearest_even
        ~strategy:Dragon.Scaling.Fast_estimate ~notation:Dragon.Render.Auto
        Fp.Format_spec.binary64 v
  in
  (* the supervisor adds queueing and reordering, so compare wall time,
     not CPU time *)
  let wall f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let sequential () =
    Array.iter
      (fun s ->
        match convert s with
        | Ok out -> sink := !sink + String.length out
        | Error _ -> ())
      strings
  in
  let supervised jobs () =
    let svc =
      Service.Supervisor.start ~jobs ~queue_capacity:256
        ~emit:(fun r ->
          match r.Service.Supervisor.outcome with
          | Service.Supervisor.Done out -> sink := !sink + String.length out
          | _ -> ())
        convert
    in
    Array.iteri (fun i s -> Service.Supervisor.submit svc ~lineno:(i + 1) s)
      strings;
    ignore (Service.Supervisor.shutdown svc)
  in
  ignore (wall sequential);
  let t_seq = wall sequential in
  let rate t = float_of_int size /. t in
  Printf.printf "  %-22s %10.3f s %12.0f lines/s %8s\n" "sequential" t_seq
    (rate t_seq) "1.00";
  List.iter
    (fun jobs ->
      let t = wall (supervised jobs) in
      Printf.printf "  %-22s %10.3f s %12.0f lines/s %8.2f\n"
        (Printf.sprintf "service --jobs %d" jobs)
        t (rate t) (t_seq /. t))
    [ 1; 2; 4 ];
  Printf.printf
    "\n  (ratio > 1 means faster than sequential; on a single-core host the\n\
    \   service measures supervision overhead, not parallel speedup)\n"

(* ------------------------------------------------------------------ *)
(* Daemon: open/closed-loop load generator against bdprintd (E11).

   Targets BDPRINTD_ADDR (host:port, an externally started daemon — the
   CI smoke job's mode) or, absent that, an in-process Net.Server on an
   ephemeral port.  Every reply is verified against a fault-free
   client-side conversion (OK must match exactly, DEG must read back to
   the same value), so a chaos-faulted run proves zero wrong outputs
   under worker kills.  Latency percentiles and the daemon's
   shed/degraded/cache counters land in BENCH_service.json; any wrong
   output makes the bench exit non-zero. *)

let daemon_bench ~size () =
  Printf.printf "%s\nDaemon: bdprintd load generation (closed loop + burst)\n"
    line;
  let module Wire = Net.Wire in
  let module Server = Net.Server in
  let module Faults = Robust.Faults in
  let convert input =
    match
      Reader.read ~mode:Fp.Rounding.To_nearest_even Fp.Format_spec.binary64
        input
    with
    | Error _ as e -> e
    | Ok v ->
      Dragon.Printer.print_value ~base:10 ~mode:Fp.Rounding.To_nearest_even
        ~strategy:Dragon.Scaling.Fast_estimate ~notation:Dragon.Render.Auto
        Fp.Format_spec.binary64 v
  in
  (* corpus: random doubles plus a hot set that exercises the cache *)
  let hot = [| "0.1"; "1"; "0.5"; "1e23"; "-2.5"; "3.75" |] in
  let corpus =
    Array.map Dragon.Printer.print (Workloads.Schryer.corpus ~size ())
  in
  let inputs =
    Array.init size (fun i ->
        if i mod 4 = 0 then hot.(i mod Array.length hot) else corpus.(i))
  in
  (* expected outputs, computed fault-free: briefly disarm any ambient
     fault points (the daemon under test keeps its own arming; in-process
     servers re-arm right after) *)
  let armed =
    List.filter_map
      (fun p ->
        match Faults.probability p with
        | Some pr -> Some (p, pr)
        | None -> None)
      Faults.points
  in
  Faults.disarm_all ();
  let expected = Hashtbl.create (2 * size) in
  Array.iter
    (fun s -> if not (Hashtbl.mem expected s) then Hashtbl.add expected s (convert s))
    inputs;
  List.iter (fun (p, pr) -> Faults.arm ~probability:pr p) armed;
  let in_process, host, port =
    (* the address is vetted through the client's typed parser before
       any socket is opened: a malformed BDPRINTD_ADDR exits 2 with a
       structured range error instead of a late Failure mid-bench *)
    match Sys.getenv_opt "BDPRINTD_ADDR" with
    | Some addr -> (
      match Net.Client.parse_addr addr with
      | Result.Ok (Net.Client.Tcp (h, p)) -> (None, h, p)
      | Result.Ok (Net.Client.Unix_path _) ->
        Printf.eprintf "error: %s\n%!"
          (Robust.Error.to_string
             (Robust.Error.range ~what:"BDPRINTD_ADDR"
                "the daemon bench needs a TCP address (HOST:PORT)"));
        exit 2
      | Result.Error e ->
        Printf.eprintf "error: %s\n%!" (Robust.Error.to_string e);
        exit 2)
    | None ->
      let server =
        match
          Server.start
            ~config:{ Server.default_config with Server.jobs = 3 }
            ~convert
            (Server.Tcp ("127.0.0.1", 0))
        with
        | Result.Ok s -> s
        | Result.Error e ->
          failwith ("daemon bench: " ^ Robust.Error.to_string e)
      in
      (Some server, "127.0.0.1", Option.get (Server.port server))
  in
  Printf.printf "(%d requests against %s:%d%s)\n\n" size host port
    (if in_process = None then " [external daemon]" else " [in-process]");
  (* minimal blocking line client *)
  let module C = struct
    type t = {
      fd : Unix.file_descr;
      buf : Bytes.t;
      mutable pos : int;
      mutable len : int;
      acc : Buffer.t;
    }

    let connect () =
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd
        (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 60.0;
      { fd; buf = Bytes.create 8192; pos = 0; len = 0; acc = Buffer.create 64 }

    let send t s =
      let b = Bytes.of_string s in
      let rec go off len =
        if len > 0 then begin
          let n = Unix.write t.fd b off len in
          go (off + n) (len - n)
        end
      in
      go 0 (Bytes.length b)

    let rec line t =
      if t.pos >= t.len then begin
        let n = Unix.read t.fd t.buf 0 (Bytes.length t.buf) in
        if n = 0 then failwith "daemon closed the connection";
        t.pos <- 0;
        t.len <- n;
        line t
      end
      else
        match Bytes.index_from_opt t.buf t.pos '\n' with
        | Some i when i < t.len ->
          Buffer.add_subbytes t.acc t.buf t.pos (i - t.pos);
          t.pos <- i + 1;
          let s = Buffer.contents t.acc in
          Buffer.clear t.acc;
          s
        | _ ->
          Buffer.add_subbytes t.acc t.buf t.pos (t.len - t.pos);
          t.pos <- t.len;
          line t

    let close t = try Unix.close t.fd with Unix.Unix_error (_, _, _) -> ()
  end in
  let n_ok = Atomic.make 0
  and n_deg = Atomic.make 0
  and n_shed = Atomic.make 0
  and n_err = Atomic.make 0
  and n_wrong = Atomic.make 0 in
  let classify input reply_line =
    match (Wire.parse_reply_line reply_line, Hashtbl.find_opt expected input) with
    | Ok (Wire.Converted out), Some (Ok e) ->
      if out = e then Atomic.incr n_ok else Atomic.incr n_wrong
    | Ok (Wire.Degraded out), Some (Ok e) ->
      if float_of_string out = float_of_string e then Atomic.incr n_deg
      else Atomic.incr n_wrong
    | Ok (Wire.Failed _), Some (Error _) -> Atomic.incr n_err
    | Ok (Wire.Shed _), _ -> Atomic.incr n_shed
    | _, _ -> Atomic.incr n_wrong
  in
  let threads = 4 in
  let per_thread = size / threads in
  (* phase 1 — closed loop: one request in flight per client; per-request
     round-trip latency in microseconds *)
  let latencies = Array.make (threads * per_thread) 0.0 in
  let closed_loop tid () =
    let c = C.connect () in
    for i = 0 to per_thread - 1 do
      let input = inputs.(((tid * per_thread) + i) mod size) in
      let t0 = Unix.gettimeofday () in
      C.send c ("CONV " ^ input ^ "\n");
      let reply = C.line c in
      latencies.((tid * per_thread) + i) <-
        (Unix.gettimeofday () -. t0) *. 1e6;
      classify input reply
    done;
    C.close c
  in
  let t0 = Unix.gettimeofday () in
  let ts = List.init threads (fun i -> Thread.create (closed_loop i) ()) in
  List.iter Thread.join ts;
  let closed_wall = Unix.gettimeofday () -. t0 in
  (* phase 2 — burst (open-loop approximation): pipeline a window of
     requests before reading any reply; induces admission shedding *)
  let window = 128 in
  let bursts_per_thread = max 1 (per_thread / window) in
  let burst tid () =
    let c = C.connect () in
    for b = 0 to bursts_per_thread - 1 do
      let base = ((tid * bursts_per_thread) + b) * window in
      for k = 0 to window - 1 do
        C.send c ("CONV " ^ inputs.((base + k) mod size) ^ "\n")
      done;
      for k = 0 to window - 1 do
        classify inputs.((base + k) mod size) (C.line c)
      done
    done;
    C.close c
  in
  let t1 = Unix.gettimeofday () in
  let ts = List.init threads (fun i -> Thread.create (burst i) ()) in
  List.iter Thread.join ts;
  let burst_wall = Unix.gettimeofday () -. t1 in
  let burst_requests = threads * bursts_per_thread * window in
  (* daemon-side counters over the STATS verb *)
  let stats_json =
    let c = C.connect () in
    C.send c "STATS\n";
    let header = C.line c in
    let body =
      match Wire.payload_length header with
      | Some n ->
        let b = Buffer.create n in
        let rec fill () =
          if Buffer.length b < n then begin
            Buffer.add_string b (C.line c);
            fill ()
          end
        in
        fill ();
        Buffer.contents b
      | None -> "{}"
    in
    C.close c;
    body
  in
  let counter_of key =
    (* flat {"key":int,...} extraction; good enough for our own format *)
    let needle = "\"" ^ key ^ "\":" in
    match String.index_opt stats_json '{' with
    | None -> 0
    | Some _ -> (
      let rec find i =
        if i + String.length needle > String.length stats_json then None
        else if String.sub stats_json i (String.length needle) = needle then
          Some (i + String.length needle)
        else find (i + 1)
      in
      match find 0 with
      | None -> 0
      | Some s ->
        let e = ref s in
        while
          !e < String.length stats_json
          && (match stats_json.[!e] with '0' .. '9' | '-' -> true | _ -> false)
        do
          incr e
        done;
        if !e > s then int_of_string (String.sub stats_json s (!e - s)) else 0)
  in
  (match in_process with
  | Some server ->
    Server.drain server;
    ignore (Server.wait server)
  | None -> ());
  Array.sort compare latencies;
  let pct p =
    latencies.(int_of_float (p *. float_of_int (Array.length latencies - 1)))
  in
  let mean =
    Array.fold_left ( +. ) 0.0 latencies /. float_of_int (Array.length latencies)
  in
  let total_requests = (threads * per_thread) + burst_requests in
  Printf.printf "  closed loop : %d requests, %.2f s, %.0f req/s\n"
    (threads * per_thread) closed_wall
    (float_of_int (threads * per_thread) /. closed_wall);
  Printf.printf "  latency us  : p50 %.0f   p90 %.0f   p99 %.0f   mean %.0f\n"
    (pct 0.50) (pct 0.90) (pct 0.99) mean;
  Printf.printf "  burst       : %d requests, %.2f s, %.0f req/s\n"
    burst_requests burst_wall
    (float_of_int burst_requests /. burst_wall);
  Printf.printf "  outcomes    : %d ok, %d degraded, %d failed, %d shed, %d WRONG\n"
    (Atomic.get n_ok) (Atomic.get n_deg) (Atomic.get n_err)
    (Atomic.get n_shed) (Atomic.get n_wrong);
  Printf.printf "  daemon      : %d cache hits, %d shed, %d crashes, %d respawns\n"
    (counter_of "cache_hits")
    (counter_of "shed_queue_full" + counter_of "shed_draining")
    (counter_of "sup_crashes") (counter_of "sup_respawns");
  let oc = open_out "BENCH_service.json" in
  Printf.fprintf oc
    {|{
  "benchmark": "bdprintd load generation",
  "target": "%s:%d",
  "mode": "%s",
  "threads": %d,
  "requests": %d,
  "closed_loop": { "requests": %d, "wall_s": %.3f, "rps": %.0f },
  "burst": { "requests": %d, "window": %d, "wall_s": %.3f, "rps": %.0f },
  "latency_us": { "p50": %.0f, "p90": %.0f, "p99": %.0f, "mean": %.0f },
  "outcomes": { "ok": %d, "degraded": %d, "failed": %d, "shed": %d, "wrong": %d },
  "daemon": { "cache_hits": %d, "shed_queue_full": %d, "shed_draining": %d,
              "crashes": %d, "respawns": %d, "breaker_trips": %d }
}
|}
    host port
    (if in_process = None then "external" else "in-process")
    threads total_requests (threads * per_thread) closed_wall
    (float_of_int (threads * per_thread) /. closed_wall)
    burst_requests window burst_wall
    (float_of_int burst_requests /. burst_wall)
    (pct 0.50) (pct 0.90) (pct 0.99) mean (Atomic.get n_ok) (Atomic.get n_deg)
    (Atomic.get n_err) (Atomic.get n_shed) (Atomic.get n_wrong)
    (counter_of "cache_hits")
    (counter_of "shed_queue_full")
    (counter_of "shed_draining")
    (counter_of "sup_crashes") (counter_of "sup_respawns")
    (counter_of "sup_breaker_trips");
  close_out oc;
  Printf.printf "  wrote BENCH_service.json\n";
  if Atomic.get n_wrong > 0 then begin
    Printf.eprintf "daemon bench: %d WRONG outputs\n%!" (Atomic.get n_wrong);
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Telemetry: instrumentation overhead of the metrics/tracing layer *)

let telemetry_bench ~size () =
  Printf.printf
    "%s\nTelemetry: instrumentation overhead (free-format conversion)\n" line;
  Printf.printf "(%d Schryer doubles; medians of alternating passes)\n\n" size;
  let values = Array.map decompose_pos (Workloads.Schryer.corpus ~size ()) in
  let pass () =
    Array.iter
      (fun v ->
        let r = Dragon.Free_format.convert b64 v in
        sink := !sink + Array.length r.Dragon.Free_format.digits)
      values
  in
  (* the tracing pass mirrors what the CLI does per request: sample a
     trace id (1-in-64 by default), run the conversion inside the
     request span, close it *)
  let traced_pass () =
    Array.iter
      (fun v ->
        let tid = Telemetry.Tracing.begin_request () in
        let r = Dragon.Free_format.convert b64 v in
        sink := !sink + Array.length r.Dragon.Free_format.digits;
        Telemetry.Tracing.end_request tid)
      values
  in
  pass () (* warm up; fills the power tables *);
  let reps = 25 in
  let t_off = Array.make reps 0.
  and t_on = Array.make reps 0.
  and t_trace = Array.make reps 0. in
  (* alternate enabled/disabled/traced passes so clock drift and GC
     phase hit all sides equally *)
  for i = 0 to reps - 1 do
    Telemetry.set_enabled false;
    Telemetry.Tracing.set_enabled false;
    t_off.(i) <- snd (time_cpu pass);
    Telemetry.set_enabled true;
    t_on.(i) <- snd (time_cpu pass);
    Telemetry.Tracing.set_enabled true;
    Telemetry.Tracing.set_sample_every 64;
    Telemetry.Tracing.clear ();
    t_trace.(i) <- snd (time_cpu traced_pass);
    Telemetry.Tracing.set_enabled false
  done;
  Telemetry.set_enabled false;
  Telemetry.Tracing.clear ();
  let median a =
    let b = Array.copy a in
    Array.sort compare b;
    b.(Array.length b / 2)
  in
  let m_off = median t_off
  and m_on = median t_on
  and m_trace = median t_trace in
  let ns t = t /. float_of_int size *. 1e9 in
  (* overhead is the median of per-rep paired ratios: the three passes
     of one rep are adjacent in time, so machine noise (frequency
     scaling, neighbour load) hits the pair together and cancels in the
     ratio, where a ratio of independent medians would keep it *)
  let paired_overhead base t =
    median (Array.init reps (fun i -> (t.(i) -. base.(i)) /. base.(i)))
    *. 100.
  in
  let overhead = paired_overhead t_off t_on in
  let overhead_trace = paired_overhead t_off t_trace in
  (* what tracing itself costs: traced pass against the adjacent
     metrics-enabled pass, so the budget judges the tracing layer and
     not the (pre-existing) stage histograms under it *)
  let marginal_trace = paired_overhead t_on t_trace in
  Printf.printf "  %-28s %10.3f s %10.1f ns/conversion\n"
    "telemetry disabled" m_off (ns m_off);
  Printf.printf "  %-28s %10.3f s %10.1f ns/conversion\n"
    "telemetry enabled" m_on (ns m_on);
  Printf.printf "  %-28s %10.3f s %10.1f ns/conversion\n"
    "+ tracing (1-in-64)" m_trace (ns m_trace);
  Printf.printf
    "  overhead vs disabled: metrics %.2f%%, metrics+tracing %.2f%%\n"
    overhead overhead_trace;
  Printf.printf
    "  tracing marginal: %.2f%% over metrics alone (budget: <= 2%% median)\n"
    marginal_trace;
  let oc = open_out "BENCH_telemetry.json" in
  Printf.fprintf oc
    "{\n\
    \  \"size\": %d,\n\
    \  \"repetitions\": %d,\n\
    \  \"median_disabled_s\": %.6f,\n\
    \  \"median_enabled_s\": %.6f,\n\
    \  \"median_traced_s\": %.6f,\n\
    \  \"ns_per_conversion_disabled\": %.1f,\n\
    \  \"ns_per_conversion_enabled\": %.1f,\n\
    \  \"ns_per_conversion_traced\": %.1f,\n\
    \  \"trace_sample_every\": 64,\n\
    \  \"overhead_percent\": %.2f,\n\
    \  \"overhead_traced_percent\": %.2f,\n\
    \  \"tracing_marginal_percent\": %.2f\n\
     }\n"
    size reps m_off m_on m_trace (ns m_off) (ns m_on) (ns m_trace) overhead
    overhead_trace marginal_trace;
  close_out oc;
  Printf.printf "  wrote BENCH_telemetry.json\n"

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: one Test.make per table *)

let bechamel_benches () =
  Printf.printf "%s\nBechamel microbenchmarks (ns per conversion, OLS)\n" line;
  let open Bechamel in
  let corpus = Array.map decompose_pos (Workloads.Schryer.corpus ~size:512 ()) in
  let cursor = ref 0 in
  let next () =
    cursor := (!cursor + 1) land 511;
    corpus.(!cursor)
  in
  let table2_tests =
    List.map
      (fun strategy ->
        Test.make
          ~name:
            (Printf.sprintf "table2/%s" (Dragon.Scaling.strategy_name strategy))
          (Staged.stage (fun () ->
               Dragon.Free_format.convert ~strategy b64 (next ()))))
      [ Dragon.Scaling.Fast_estimate; Dragon.Scaling.Float_log;
        Dragon.Scaling.Gay_taylor; Dragon.Scaling.Iterative ]
  in
  let table3_tests =
    [
      Test.make ~name:"table3/free-format"
        (Staged.stage (fun () -> Dragon.Free_format.convert b64 (next ())));
      Test.make ~name:"table3/naive-fixed-17"
        (Staged.stage (fun () ->
             Baselines.Naive_fixed.convert ~ndigits:17 b64 (next ())));
      Test.make ~name:"table3/host-printf"
        (Staged.stage (fun () ->
             Printf.sprintf "%.16e" (Fp.Ieee.compose (Value.Finite (next ())))));
      Test.make ~name:"table3/printf-model-ext64"
        (Staged.stage (fun () ->
             Baselines.Float_fixed.convert ~ndigits:17
               (Fp.Ieee.compose (Value.Finite (next ())))));
    ]
  in
  let tests =
    Test.make_grouped ~name:"bdprint" (table2_tests @ table3_tests)
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| "run" |])
      Toolkit.Instance.monotonic_clock raw
  in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some (t :: _) -> Printf.printf "  %-38s %12.1f ns\n" name t
      | _ -> Printf.printf "  %-38s %12s\n" name "n/a")
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv in
  let size = ref 0 in
  let sections = ref [] in
  let rec parse = function
    | [] -> ()
    | "--size" :: n :: rest ->
      size := int_of_string n;
      parse rest
    | s :: rest ->
      if s <> Sys.argv.(0) then sections := s :: !sections;
      parse rest
  in
  parse (List.tl args);
  (* [bench -- all]: regenerate every committed BENCH_*.json in one run
     (kernel, telemetry, daemon) — the CI bench step drives this and
     uploads the refreshed files as artifacts; any bench that fails its
     own acceptance check (wrong daemon outputs, fast-path speedup
     under the floor) exits nonzero and fails the step loudly. *)
  if List.mem "all" !sections then
    sections := [ "kernel"; "telemetry"; "daemon" ];
  let has s = !sections = [] || List.mem s !sections in
  let pick default = if !size > 0 then !size else default in
  if has "table2" then table2 ~size:(pick 8_000) ();
  if has "table3" then table3 ~size:(pick 40_000) ();
  if has "digits" then digit_stats ~size:(pick 100_000) ();
  if has "showcase" then showcase ();
  if has "ablation" then ablation ~size:(pick 50_000) ();
  if has "sweep" then sweep ();
  if has "reader" then reader_bench ~size:(pick 30_000) ();
  if has "service" then service_bench ~size:(pick 30_000) ();
  if has "service" || List.mem "daemon" !sections then
    daemon_bench ~size:(pick 20_000) ();
  if has "telemetry" then telemetry_bench ~size:(pick 20_000) ();
  if has "bignum" then bignum_bench ();
  if has "kernel" then kernel_bench ~size:(pick 8_000) ();
  if has "bechamel" then bechamel_benches ();
  ignore !sink
