(* bdprint: command-line floating-point conversion using the Burger-Dybvig
   algorithms.  Input strings are read with the exact reader into the
   chosen format, then printed free- or fixed-format.

   Robustness: every failure is a structured Robust.Error — syntax,
   range, budget or internal — and with [--stdin] the tool is a streaming
   filter that reports per-line errors on stderr without aborting the
   stream ([--max-errors N] bounds the tolerance).  [--jobs N] runs the
   stream through the supervised parallel service (order-preserving,
   with per-request deadlines, retries and a circuit breaker); [--stats]
   reports queue/retry/breaker counters on exit and [--metrics FILE]
   dumps the full telemetry registry as JSON (FILE) plus Prometheus text
   (FILE with a .prom suffix).  Streaming exit codes are per failure
   class: 2 syntax/range, 3 budget (incl. deadline), 4 internal — and 5
   when SIGINT or a closed output pipe cut the stream short (partial
   results and --metrics still flush). *)

open Cmdliner
module Error = Robust.Error
module Budget = Robust.Budget
module Supervisor = Service.Supervisor
module Client = Net.Client

let mode_conv =
  let parse = function
    | "even" | "nearest-even" -> Ok Fp.Rounding.To_nearest_even
    | "away" | "nearest-away" -> Ok Fp.Rounding.To_nearest_away
    | "nearest-zero" -> Ok Fp.Rounding.To_nearest_toward_zero
    | "zero" | "trunc" -> Ok Fp.Rounding.Toward_zero
    | "up" | "ceiling" -> Ok Fp.Rounding.Toward_positive
    | "down" | "floor" -> Ok Fp.Rounding.Toward_negative
    | s -> Error (`Msg (Printf.sprintf "unknown rounding mode %S" s))
  in
  Arg.conv (parse, fun ppf m -> Format.pp_print_string ppf (Fp.Rounding.to_string m))

let format_conv =
  let parse = function
    | "binary16" | "half" -> Ok Fp.Format_spec.binary16
    | "binary32" | "single" | "float" -> Ok Fp.Format_spec.binary32
    | "binary64" | "double" -> Ok Fp.Format_spec.binary64
    | s -> Error (`Msg (Printf.sprintf "unknown format %S" s))
  in
  Arg.conv (parse, fun ppf f -> Fp.Format_spec.pp ppf f)

let strategy_conv =
  let parse = function
    | "fast" -> Ok Dragon.Scaling.Fast_estimate
    | "float-log" -> Ok Dragon.Scaling.Float_log
    | "gay" -> Ok Dragon.Scaling.Gay_taylor
    | "iterative" -> Ok Dragon.Scaling.Iterative
    | s -> Error (`Msg (Printf.sprintf "unknown strategy %S" s))
  in
  Arg.conv
    (parse, fun ppf s -> Format.pp_print_string ppf (Dragon.Scaling.strategy_name s))

let notation_conv =
  let parse = function
    | "auto" -> Ok Dragon.Render.Auto
    | "sci" | "scientific" -> Ok Dragon.Render.Scientific
    | "pos" | "positional" -> Ok Dragon.Render.Positional
    | s -> Error (`Msg (Printf.sprintf "unknown notation %S" s))
  in
  Arg.conv
    ( parse,
      fun ppf n ->
        Format.pp_print_string ppf
          (match n with
          | Dragon.Render.Auto -> "auto"
          | Dragon.Render.Scientific -> "scientific"
          | Dragon.Render.Positional -> "positional") )

let numbers =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"NUMBER" ~doc:"Decimal numbers to convert.")

let base =
  Arg.(value & opt int 10 & info [ "b"; "base" ] ~docv:"BASE" ~doc:"Output base (2-36).")

let mode =
  Arg.(
    value
    & opt mode_conv Fp.Rounding.To_nearest_even
    & info [ "m"; "mode" ]
        ~doc:
          "Reader rounding mode the output must survive: even, away, \
           nearest-zero, zero, up, down.")

let fmt =
  Arg.(
    value
    & opt format_conv Fp.Format_spec.binary64
    & info [ "f"; "format" ] ~doc:"Target format: binary16, binary32, binary64.")

let strategy =
  Arg.(
    value
    & opt strategy_conv Dragon.Scaling.Fast_estimate
    & info [ "s"; "strategy" ]
        ~doc:"Scaling strategy: fast, float-log, gay, iterative.")

let notation =
  Arg.(
    value
    & opt notation_conv Dragon.Render.Auto
    & info [ "n"; "notation" ] ~doc:"Rendering: auto, scientific, positional.")

let digits =
  Arg.(
    value
    & opt (some int) None
    & info [ "d"; "digits" ] ~docv:"N" ~doc:"Fixed format with $(docv) significant digits.")

let places =
  Arg.(
    value
    & opt (some int) None
    & info [ "p"; "places" ] ~docv:"N"
        ~doc:"Fixed format with $(docv) digits after the radix point.")

let hex_out =
  Arg.(
    value & flag
    & info [ "x"; "hex" ]
        ~doc:
          "Print in C17 hexadecimal-significand notation (exact; binary64 \
           only).")

let stdin_flag =
  Arg.(
    value & flag
    & info [ "stdin" ]
        ~doc:
          "Streaming batch mode: read newline-delimited numbers from \
           standard input, one conversion per line.  Per-line failures \
           are reported on stderr as structured errors without aborting \
           the stream; blank lines are skipped.")

let max_errors =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-errors" ] ~docv:"N"
        ~doc:
          "With $(b,--stdin), stop after $(docv) failed lines (default: \
           never stop; every line is attempted).")

let jobs_flag =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "With $(b,--stdin), convert lines on $(docv) parallel worker \
           domains through the supervised service: bounded queue with \
           backpressure, automatic retry of transient internal failures, \
           circuit breaker with a clearly-marked degraded fallback, and \
           output in input order.")

let stats_flag =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "With $(b,--stdin), print service statistics on exit to stderr: \
           per-error-class counts, retries, queue depth and breaker state.")

let deadline_ms =
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "With $(b,--stdin), give each line a $(docv)-millisecond \
           wall-clock deadline, enforced cooperatively inside the digit \
           loops; an expired line fails with a structured budget \
           (timeout) error.")

let connect_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "connect" ] ~docv:"ADDR[,ADDR...]"
        ~doc:
          "Convert through running bdprintd daemon(s) instead of \
           in-process: a comma-separated endpoint list (HOST:PORT, :PORT, \
           PORT or unix:PATH) used with reconnection, retries, failover, \
           endpoint ejection/readmission and honored SHED retry-after \
           hints.  When every endpoint is unreachable the conversion \
           falls back to the local in-process pipeline, so the stream \
           still completes.  A malformed address is a typed range error \
           (exit 2) reported before any socket is opened.  Remote \
           degraded replies are printed with the same 'degraded:' prefix \
           as $(b,--jobs) in $(b,--stdin) mode.")

let hedge_ms_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "hedge-ms" ] ~docv:"MS"
        ~doc:
          "With $(b,--connect) and at least two endpoints: duplicate a \
           request that has not answered within $(docv) milliseconds to a \
           second endpoint and take the first answer.  Safe because \
           conversions are pure — the worst case is wasted work.")

let metrics_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "With $(b,--stdin), enable the telemetry registry and write a \
           JSON snapshot of every metric (pipeline counters, stage-timing \
           and digit-count histograms, service/breaker state) to $(docv) \
           on exit, plus a Prometheus text rendering next to it ($(docv) \
           with its .json suffix replaced by .prom).")

let trace_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Enable request tracing and write the sampled spans as Chrome \
           trace-event JSON to $(docv) on exit, loadable in \
           chrome://tracing or Perfetto (ui.perfetto.dev).  One request \
           in 64 is traced; BDPRINT_TRACE_SAMPLE=N overrides the \
           interval (1 traces every request).  Each traced request is \
           its own thread track, so its spans — parse, scale, generate, \
           render, and with $(b,--connect) or $(b,--jobs) the \
           client-attempt, backoff, queue-wait and worker spans — nest \
           by time containment.")

(* Tracing rides the same at_exit flush discipline as --metrics: even a
   stream cut short by SIGINT still leaves a loadable trace file. *)
let install_trace = function
  | None -> ()
  | Some file ->
    Telemetry.Tracing.set_enabled true;
    (match Sys.getenv_opt "BDPRINT_TRACE_SAMPLE" with
    | Some n -> (
      match int_of_string_opt n with
      | Some n when n >= 1 -> Telemetry.Tracing.set_sample_every n
      | _ -> ())
    | None -> ());
    at_exit (fun () ->
        try
          let oc = open_out file in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () -> output_string oc (Telemetry.Tracing.to_chrome_json ()))
        with Sys_error _ -> ())

let is_hex_literal s =
  let s =
    if String.length s > 0 && (s.[0] = '-' || s.[0] = '+') then
      String.sub s 1 (String.length s - 1)
    else s
  in
  String.length s >= 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X')

(* Vet the fixed-format request before any conversion runs: misuse
   (--digits 0, --places 1000000) must be a clean structured error up
   front, not a per-number failure or an unbounded allocation. *)
let vet_request request =
  let cap = (Robust.Budget.get ()).Robust.Budget.max_output_digits in
  match request with
  | Some (Dragon.Fixed_format.Relative d) ->
    if d < 1 then
      Some (Error.range ~what:"--digits" (Printf.sprintf "%d < 1" d))
    else if d > cap then
      Some (Error.budget ~what:"--digits" ~limit:cap ~got:d)
    else None
  | Some (Dragon.Fixed_format.Absolute j) ->
    if abs j > cap then
      Some (Error.budget ~what:"--places" ~limit:cap ~got:(abs j))
    else None
  | None -> None

let convert_one ~base ~mode ~fmt ~strategy ~notation ~request ~hex_out input =
  let t0 = Telemetry.Trace.start () in
  let parsed =
    if is_hex_literal input then Reader.Hex.read ~mode fmt input
    else if
      (* binary64 round-to-nearest-even is the certified fast reader's
         domain; it proves agreement with the exact reader, so routing
         through it changes nothing but the tier counters (and speed) *)
      Fp.Format_spec.equal fmt Fp.Format_spec.binary64
      && mode = Fp.Rounding.To_nearest_even
    then Result.map Fp.Ieee.decompose (Reader.Fast.read input)
    else Reader.read ~mode fmt input
  in
  Telemetry.Trace.finish Telemetry.Trace.Parse t0;
  match parsed with
  | Error _ as e -> e
  | Ok value -> (
    match (request, value) with
    | _ when hex_out -> Ok (Dragon.Printer.print_hex (Fp.Ieee.compose value))
    | None, _ ->
      Dragon.Printer.print_value ~base ~mode ~strategy ~notation fmt value
    | Some _, Fp.Value.Zero neg -> Ok (Dragon.Render.zero ~neg ())
    | Some _, Fp.Value.Inf neg -> Ok (Dragon.Render.infinity ~neg ())
    | Some _, Fp.Value.Nan -> Ok Dragon.Render.nan
    | Some req, Fp.Value.Finite v -> (
      match Dragon.Fixed_format.convert ~base ~mode fmt v req with
      | Error _ as e -> e
      | Ok t -> Ok (Dragon.Render.fixed ~notation ~neg:v.Fp.Value.neg ~base t)))

(* Per-class error accounting shared by the sequential and parallel
   stream drivers; the stream exit code reflects the most severe class
   seen (docs/ROBUSTNESS.md taxonomy): 4 internal, 3 budget (incl.
   deadline timeouts), 2 syntax/range, 0 clean. *)
type class_counts = {
  mutable n_syntax : int;
  mutable n_range : int;
  mutable n_budget : int;
  mutable n_internal : int;
}
[@@lint.domain_safe "owned by the single collector thread of a stream run"]

let new_counts () = { n_syntax = 0; n_range = 0; n_budget = 0; n_internal = 0 }

let count_error c = function
  | Error.Syntax _ -> c.n_syntax <- c.n_syntax + 1
  | Error.Range _ -> c.n_range <- c.n_range + 1
  | Error.Budget _ -> c.n_budget <- c.n_budget + 1
  | Error.Internal _ -> c.n_internal <- c.n_internal + 1

let total_errors c = c.n_syntax + c.n_range + c.n_budget + c.n_internal

let class_exit_code c =
  if c.n_internal > 0 then 4
  else if c.n_budget > 0 then 3
  else if c.n_syntax + c.n_range > 0 then 2
  else 0

(* Stream-level counters: both drivers (sequential and supervised
   parallel) feed the same registry metrics, so --stats and --metrics
   report identical fields whichever driver ran. *)
let m_conversions =
  Telemetry.Metrics.counter
    ~help:"Input lines submitted for conversion (all outcomes)."
    "bdprint_conversions_total"

let result_counter r =
  Telemetry.Metrics.counter
    ~labels:[ ("result", r) ]
    ~help:"Converted lines by result: pipeline output or degraded fallback."
    "bdprint_conversion_results_total"

let m_ok = result_counter "ok"
let m_degraded = result_counter "degraded"

let error_counter cls =
  Telemetry.Metrics.counter
    ~labels:[ ("class", cls) ]
    ~help:"Failed lines by structured error class."
    "bdprint_conversion_errors_total"

let m_err_syntax = error_counter "syntax"
let m_err_range = error_counter "range"
let m_err_budget = error_counter "budget"
let m_err_internal = error_counter "internal"

let record_error = function
  | Error.Syntax _ -> Telemetry.Metrics.incr m_err_syntax
  | Error.Range _ -> Telemetry.Metrics.incr m_err_range
  | Error.Budget _ -> Telemetry.Metrics.incr m_err_budget
  | Error.Internal _ -> Telemetry.Metrics.incr m_err_internal

let g_jobs =
  Telemetry.Metrics.gauge
    ~help:"Worker domains converting the stream (1 = sequential driver)."
    "bdprint_stream_jobs"

let g_queue_capacity =
  Telemetry.Metrics.gauge
    ~help:"Bounded submission-queue capacity (0 = sequential driver)."
    "bdprint_stream_queue_capacity"

let prom_path json_path =
  if Filename.check_suffix json_path ".json" then
    Filename.chop_suffix json_path ".json" ^ ".prom"
  else json_path ^ ".prom"

(* One exit path for both stream drivers: snapshot the registry once,
   render --stats from it (so sequential and parallel print identical
   fields), dump --metrics files, exit with the class code — or with the
   distinct code 5 when the stream was cut short by SIGINT or a closed
   output pipe, so callers can tell "clean but partial" from "complete".
   Metrics flush on the interrupted path too: a cut-short run still
   reports what it converted. *)
let finish_stream ~counts ~show_stats ~metrics_file ~interrupted =
  (try flush stdout
   with Sys_error _ ->
     (* stdout is a broken pipe and its buffer cannot drain; repoint
        fd 1 at /dev/null so the exit-time flush cannot raise *)
     (try
        let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
        Unix.dup2 null Unix.stdout;
        Unix.close null
      with Unix.Unix_error (_, _, _) -> ()));
  let snap = Telemetry.Snapshot.take () in
  if show_stats then Format.eprintf "%a@.%!" Telemetry.Snapshot.pp_stream snap;
  (match metrics_file with
  | None -> ()
  | Some file ->
    let write path contents =
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc contents)
    in
    write file (Telemetry.Snapshot.to_json snap);
    write (prom_path file) (Telemetry.Snapshot.to_prometheus snap));
  let errors = total_errors counts in
  if errors > 0 then
    Printf.eprintf "error: %d input line(s) failed\n%!" errors;
  if interrupted then begin
    Printf.eprintf
      "error: stream interrupted (signal or closed output); partial results \
       and metrics flushed\n\
       %!";
    exit 5
  end;
  exit (class_exit_code counts)

(* Sequential deadline support: same pre-flight + cooperative-check
   semantics as the service workers. *)
let with_line_deadline deadline_ms convert input =
  match deadline_ms with
  | None -> convert input
  | Some ms ->
    let d = Budget.deadline_after ~ms in
    Budget.set_deadline (Some d);
    Fun.protect
      ~finally:(fun () -> Budget.set_deadline None)
      (fun () ->
        if Budget.expired d then Result.Error (Budget.deadline_error d)
        else convert input)

(* Stream interruption: SIGINT mid-stream (operator ^C) and SIGPIPE
   (downstream consumer closed the pipe) both stop the stream cleanly —
   flush whatever converted, flush --metrics, exit 5 — instead of dying
   with the default signal action and losing the telemetry.  SIGPIPE is
   ignored so broken-pipe writes surface as catchable [Sys_error]. *)
let install_stream_signals () =
  let interrupted = Atomic.make false in
  let note _ = Atomic.set interrupted true in
  (try ignore (Sys.signal Sys.sigint (Sys.Signal_handle note))
   with Invalid_argument _ | Sys_error _ -> ());
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
   with Invalid_argument _ | Sys_error _ -> ());
  interrupted

let run_stream ~convert ~max_errors ~deadline_ms ~show_stats ~metrics_file =
  let counts = new_counts () in
  let lineno = ref 0 in
  let aborted = ref false in
  let interrupted = install_stream_signals () in
  Telemetry.Metrics.set_gauge g_jobs 1;
  (try
     while (not !aborted) && not (Atomic.get interrupted) do
       let line = input_line stdin in
       incr lineno;
       if String.trim line <> "" then begin
         Telemetry.Metrics.incr m_conversions;
         let tid = Telemetry.Tracing.begin_request () in
         (match with_line_deadline deadline_ms convert (String.trim line) with
         | Ok out ->
           Telemetry.Metrics.incr m_ok;
           print_string out;
           print_newline ()
         | Error e ->
           count_error counts e;
           record_error e;
           Printf.eprintf "error: line %d: %s\n%!" !lineno (Error.to_string e);
           (match max_errors with
           | Some cap when total_errors counts >= cap ->
             Printf.eprintf
               "error: aborting after %d failed line(s) (--max-errors %d)\n%!"
               (total_errors counts) cap;
             aborted := true
           | _ -> ()));
         Telemetry.Tracing.end_request tid
       end
     done
   with
  | End_of_file -> ()
  | Sys_error _ ->
    (* broken stdout pipe (SIGPIPE ignored above) or stdin error *)
    Atomic.set interrupted true);
  finish_stream ~counts ~show_stats ~metrics_file
    ~interrupted:(Atomic.get interrupted)

(* Parallel streaming through the supervised service.  The collector
   domain owns stdout/stderr during the run (replies arrive in input
   order); the main domain only reads stdin and submits, so output never
   interleaves.  --max-errors sets a stop flag read by the submission
   loop; lines already in flight still drain (the shutdown contract
   forbids dropping submitted work). *)
let run_stream_jobs ~convert ~jobs ~max_errors ~deadline_ms ~show_stats
    ~metrics_file =
  let counts = new_counts () in
  let stop = Atomic.make false in
  let interrupted = install_stream_signals () in
  let emit (reply : Supervisor.reply) =
    Telemetry.Metrics.incr m_conversions;
    match reply.Supervisor.outcome with
    | Supervisor.Done out -> (
      Telemetry.Metrics.incr m_ok;
      try
        print_string out;
        print_newline ()
      with Sys_error _ ->
        (* downstream consumer closed the pipe: stop submitting; lines
           already in flight still drain (emitted, writes no-op) *)
        Atomic.set interrupted true)
    | Supervisor.Degraded out -> (
      (* breaker-open fallback: correct to 17 significant digits but not
         the pipeline's output — keep the tag machine-visible *)
      Telemetry.Metrics.incr m_degraded;
      try Printf.printf "degraded:%s\n" out
      with Sys_error _ -> Atomic.set interrupted true)
    | Supervisor.Failed e ->
      count_error counts e;
      record_error e;
      Printf.eprintf "error: line %d: %s\n%!" reply.Supervisor.lineno
        (Error.to_string e);
      (match max_errors with
      | Some cap when total_errors counts >= cap && not (Atomic.get stop) ->
        Printf.eprintf
          "error: aborting after %d failed line(s) (--max-errors %d)\n%!"
          (total_errors counts) cap;
        Atomic.set stop true
      | _ -> ())
  in
  let queue_capacity = max 64 (8 * jobs) in
  Telemetry.Metrics.set_gauge g_jobs jobs;
  Telemetry.Metrics.set_gauge g_queue_capacity queue_capacity;
  let service = Supervisor.start ~jobs ~queue_capacity ~emit convert in
  let lineno = ref 0 in
  (try
     while (not (Atomic.get stop)) && not (Atomic.get interrupted) do
       let line = input_line stdin in
       incr lineno;
       if String.trim line <> "" then begin
         (* the worker that dequeues the job adopts this id, so the
            sampling decision happens here on the submitting domain *)
         let tid = Telemetry.Tracing.sample () in
         Supervisor.submit service ?deadline_ms ~tid ~lineno:!lineno
           (String.trim line)
       end
     done
   with
  | End_of_file -> ()
  | Sys_error _ -> Atomic.set interrupted true);
  let (_ : Supervisor.stats) = Supervisor.shutdown service in
  (* counts was filled by the collector domain; shutdown joined it, so
     the reads below are safely ordered after its writes *)
  finish_stream ~counts ~show_stats ~metrics_file
    ~interrupted:(Atomic.get interrupted)

(* Route conversions through the resilient daemon client.  The address
   list is vetted before any socket is opened: a malformed address is a
   typed range error with exit code 2, matching the streaming exit-code
   taxonomy.  The locally-built pipeline rides along as the client's
   final fallback tier. *)
let connect_client ~local ~hedge_ms ~show_stats spec =
  let addrs =
    match Client.parse_addrs spec with
    | Result.Ok addrs -> addrs
    | Result.Error e ->
      Printf.eprintf "error: %s\n%!" (Error.to_string e);
      exit 2
  in
  let config = { Client.default_config with Client.hedge_ms } in
  let client = Client.create ~config ~local addrs in
  (* The client-stats exit line is opt-in — --stats, or the
     BDPRINT_CLIENT_STATS environment variable for wrapper scripts that
     cannot reach the flag — so plumbing that parses stderr never meets
     an unexpected trailer. *)
  let stats_env =
    match Sys.getenv_opt "BDPRINT_CLIENT_STATS" with
    | None | Some "" | Some "0" -> false
    | Some _ -> true
  in
  if show_stats || stats_env then
    at_exit (fun () ->
        let s = Client.stats client in
        Printf.eprintf
          "client: requests=%d remote-ok=%d degraded=%d local-fallbacks=%d \
           errors=%d retries=%d sheds-honored=%d hedges=%d hedge-wins=%d \
           ejections=%d readmissions=%d reconnects=%d\n\
           %!"
          s.Client.requests s.Client.remote_ok s.Client.remote_degraded
          s.Client.local_fallbacks s.Client.typed_errors s.Client.retries
          s.Client.sheds_honored s.Client.hedges s.Client.hedge_wins
          s.Client.ejections s.Client.readmissions s.Client.reconnects);
  client

let run base mode fmt strategy notation digits places hex_out use_stdin
    max_errors jobs show_stats deadline_ms metrics_file connect hedge_ms
    trace numbers =
  if base < 2 || base > 36 then
    `Error
      ( false,
        Error.to_string
          (Error.range ~what:"base" (Printf.sprintf "%d not in 2..36" base)) )
  else if (match jobs with Some j -> j < 1 | None -> false) then
    `Error
      ( false,
        Error.to_string (Error.range ~what:"--jobs" "must be at least 1") )
  else if (match deadline_ms with Some ms -> ms < 0 | None -> false) then
    `Error
      ( false,
        Error.to_string (Error.range ~what:"--deadline-ms" "must be >= 0") )
  else if (not use_stdin) && jobs <> None then
    `Error (false, "--jobs requires --stdin")
  else if (not use_stdin) && deadline_ms <> None then
    `Error (false, "--deadline-ms requires --stdin")
  else if (not use_stdin) && show_stats && connect = None then
    `Error (false, "--stats requires --stdin or --connect")
  else if (not use_stdin) && metrics_file <> None then
    `Error (false, "--metrics requires --stdin")
  else if connect = None && hedge_ms <> None then
    `Error (false, "--hedge-ms requires --connect")
  else if (match hedge_ms with Some h -> h < 1 | None -> false) then
    `Error
      ( false,
        Error.to_string (Error.range ~what:"--hedge-ms" "must be at least 1")
      )
  else begin
    (* Flip the registry on before the service spawns workers so every
       domain observes the same switch state from its first conversion. *)
    if show_stats || metrics_file <> None then Telemetry.set_enabled true;
    install_trace trace;
    let request =
      match (digits, places) with
      | Some _, Some _ -> Result.Error "use only one of --digits and --places"
      | Some d, None -> Result.Ok (Some (Dragon.Fixed_format.Relative d))
      | None, Some p -> Result.Ok (Some (Dragon.Fixed_format.Absolute (-p)))
      | None, None -> Result.Ok None
    in
    match request with
    | Result.Error e -> `Error (false, e)
    | Result.Ok request -> (
      match vet_request request with
      | Some e -> `Error (false, Error.to_string e)
      | None -> (
        let convert =
          convert_one ~base ~mode ~fmt ~strategy ~notation ~request ~hex_out
        in
        (* --connect swaps the conversion function for the resilient
           client (remote tiers first, this pipeline as local fallback)
           and moves deadline enforcement into the client, where it also
           bounds socket timeouts, retries and shed waits *)
        let convert, deadline_ms =
          match connect with
          | None -> (convert, deadline_ms)
          | Some spec ->
            let client =
              connect_client ~local:convert ~hedge_ms ~show_stats spec
            in
            let remote input =
              match Client.convert client ?deadline_ms input with
              | Result.Ok { Client.output; degraded = true; _ }
                when use_stdin ->
                Result.Ok ("degraded:" ^ output)
              | Result.Ok o -> Result.Ok o.Client.output
              | Result.Error _ as e -> e
            in
            (remote, None)
        in
        match (use_stdin, numbers) with
        | true, _ :: _ ->
          `Error (false, "--stdin and positional NUMBER arguments conflict")
        | true, [] -> (
          match jobs with
          | Some jobs ->
            run_stream_jobs ~convert ~jobs ~max_errors ~deadline_ms
              ~show_stats ~metrics_file
          | None ->
            run_stream ~convert ~max_errors ~deadline_ms ~show_stats
              ~metrics_file)
        | false, [] -> `Error (true, "missing NUMBER argument (or --stdin)")
        | false, numbers ->
          let ok = ref true in
          List.iter
            (fun input ->
              match convert input with
              | Error e ->
                ok := false;
                Printf.eprintf "error: %s\n" (Error.to_string e)
              | Ok out -> Printf.printf "%s\n" out)
            numbers;
          if !ok then `Ok () else `Error (false, "some inputs failed")))
  end

let cmd =
  let doc = "print floating-point numbers quickly and accurately" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Converts decimal inputs into a binary floating-point format with \
         correct rounding, then prints them back using the Burger-Dybvig \
         (PLDI 1996) free-format or fixed-format algorithm.  Free format \
         emits the shortest string that reads back to the same value; fixed \
         format emits correctly rounded digits with '#' marking positions \
         beyond the value's precision.";
      `P
        "Failures are structured: syntax errors (bad input text), range \
         errors (bad request parameters), budget errors (requests that \
         would exceed the resource caps, e.g. million-digit output) and \
         internal errors.  Inputs with astronomical exponents like \
         1e999999999 convert to the correctly rounded extreme (0 or inf) \
         in constant time.";
      `P
        "With --stdin the exit code reflects the most severe failure \
         class seen on the stream: 0 clean, 2 syntax/range, 3 budget \
         (including --deadline-ms timeouts), 4 internal, 5 interrupted \
         (SIGINT or closed output pipe; partial results and --metrics \
         flush before exiting).  With --jobs N \
         the stream runs through a supervised parallel worker pool: \
         bounded submission queue with backpressure, per-line deadlines, \
         automatic retry of transient internal failures with capped \
         exponential backoff, and a circuit breaker that degrades to a \
         clearly-marked host-printf fallback (lines prefixed \
         'degraded:') instead of refusing service.  Output stays in \
         input order.";
      `S Manpage.s_examples;
      `Pre
        "  bdprint 0.1 1e23\n\
        \  bdprint --digits 10 --format binary32 0.333333333\n\
        \  bdprint --base 16 --notation scientific 255.9375\n\
        \  bdprint --places 20 100\n\
        \  printf '0.1\\n1e23\\nbogus\\n' | bdprint --stdin --max-errors 5\n\
        \  bdprint --stdin --jobs 4 --stats < corpus.txt\n\
        \  bdprint --stdin --jobs 4 --metrics metrics.json < corpus.txt\n\
        \  bdprint --stdin --deadline-ms 50 < corpus.txt\n\
        \  BDPRINT_TRACE_SAMPLE=1 bdprint --stdin --trace trace.json < corpus.txt";
    ]
  in
  Cmd.v
    (Cmd.info "bdprint" ~version:"1.0.0" ~doc ~man)
    Term.(
      ret
        (const run $ base $ mode $ fmt $ strategy $ notation $ digits $ places
       $ hex_out $ stdin_flag $ max_errors $ jobs_flag $ stats_flag
       $ deadline_ms $ metrics_file $ connect_arg $ hedge_ms_arg $ trace_file
       $ numbers))

let () = exit (Cmd.eval cmd)
