(* bdprint: command-line floating-point conversion using the Burger-Dybvig
   algorithms.  Input strings are read with the exact reader into the
   chosen format, then printed free- or fixed-format.

   Robustness: every failure is a structured Robust.Error — syntax,
   range, budget or internal — and with [--stdin] the tool is a streaming
   filter that reports per-line errors on stderr without aborting the
   stream ([--max-errors N] bounds the tolerance). *)

open Cmdliner
module Error = Robust.Error

let mode_conv =
  let parse = function
    | "even" | "nearest-even" -> Ok Fp.Rounding.To_nearest_even
    | "away" | "nearest-away" -> Ok Fp.Rounding.To_nearest_away
    | "nearest-zero" -> Ok Fp.Rounding.To_nearest_toward_zero
    | "zero" | "trunc" -> Ok Fp.Rounding.Toward_zero
    | "up" | "ceiling" -> Ok Fp.Rounding.Toward_positive
    | "down" | "floor" -> Ok Fp.Rounding.Toward_negative
    | s -> Error (`Msg (Printf.sprintf "unknown rounding mode %S" s))
  in
  Arg.conv (parse, fun ppf m -> Format.pp_print_string ppf (Fp.Rounding.to_string m))

let format_conv =
  let parse = function
    | "binary16" | "half" -> Ok Fp.Format_spec.binary16
    | "binary32" | "single" | "float" -> Ok Fp.Format_spec.binary32
    | "binary64" | "double" -> Ok Fp.Format_spec.binary64
    | s -> Error (`Msg (Printf.sprintf "unknown format %S" s))
  in
  Arg.conv (parse, fun ppf f -> Fp.Format_spec.pp ppf f)

let strategy_conv =
  let parse = function
    | "fast" -> Ok Dragon.Scaling.Fast_estimate
    | "float-log" -> Ok Dragon.Scaling.Float_log
    | "gay" -> Ok Dragon.Scaling.Gay_taylor
    | "iterative" -> Ok Dragon.Scaling.Iterative
    | s -> Error (`Msg (Printf.sprintf "unknown strategy %S" s))
  in
  Arg.conv
    (parse, fun ppf s -> Format.pp_print_string ppf (Dragon.Scaling.strategy_name s))

let notation_conv =
  let parse = function
    | "auto" -> Ok Dragon.Render.Auto
    | "sci" | "scientific" -> Ok Dragon.Render.Scientific
    | "pos" | "positional" -> Ok Dragon.Render.Positional
    | s -> Error (`Msg (Printf.sprintf "unknown notation %S" s))
  in
  Arg.conv
    ( parse,
      fun ppf n ->
        Format.pp_print_string ppf
          (match n with
          | Dragon.Render.Auto -> "auto"
          | Dragon.Render.Scientific -> "scientific"
          | Dragon.Render.Positional -> "positional") )

let numbers =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"NUMBER" ~doc:"Decimal numbers to convert.")

let base =
  Arg.(value & opt int 10 & info [ "b"; "base" ] ~docv:"BASE" ~doc:"Output base (2-36).")

let mode =
  Arg.(
    value
    & opt mode_conv Fp.Rounding.To_nearest_even
    & info [ "m"; "mode" ]
        ~doc:
          "Reader rounding mode the output must survive: even, away, \
           nearest-zero, zero, up, down.")

let fmt =
  Arg.(
    value
    & opt format_conv Fp.Format_spec.binary64
    & info [ "f"; "format" ] ~doc:"Target format: binary16, binary32, binary64.")

let strategy =
  Arg.(
    value
    & opt strategy_conv Dragon.Scaling.Fast_estimate
    & info [ "s"; "strategy" ]
        ~doc:"Scaling strategy: fast, float-log, gay, iterative.")

let notation =
  Arg.(
    value
    & opt notation_conv Dragon.Render.Auto
    & info [ "n"; "notation" ] ~doc:"Rendering: auto, scientific, positional.")

let digits =
  Arg.(
    value
    & opt (some int) None
    & info [ "d"; "digits" ] ~docv:"N" ~doc:"Fixed format with $(docv) significant digits.")

let places =
  Arg.(
    value
    & opt (some int) None
    & info [ "p"; "places" ] ~docv:"N"
        ~doc:"Fixed format with $(docv) digits after the radix point.")

let hex_out =
  Arg.(
    value & flag
    & info [ "x"; "hex" ]
        ~doc:
          "Print in C17 hexadecimal-significand notation (exact; binary64 \
           only).")

let stdin_flag =
  Arg.(
    value & flag
    & info [ "stdin" ]
        ~doc:
          "Streaming batch mode: read newline-delimited numbers from \
           standard input, one conversion per line.  Per-line failures \
           are reported on stderr as structured errors without aborting \
           the stream; blank lines are skipped.")

let max_errors =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-errors" ] ~docv:"N"
        ~doc:
          "With $(b,--stdin), stop after $(docv) failed lines (default: \
           never stop; every line is attempted).")

let is_hex_literal s =
  let s =
    if String.length s > 0 && (s.[0] = '-' || s.[0] = '+') then
      String.sub s 1 (String.length s - 1)
    else s
  in
  String.length s >= 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X')

(* Vet the fixed-format request before any conversion runs: misuse
   (--digits 0, --places 1000000) must be a clean structured error up
   front, not a per-number failure or an unbounded allocation. *)
let vet_request request =
  let cap = (Robust.Budget.get ()).Robust.Budget.max_output_digits in
  match request with
  | Some (Dragon.Fixed_format.Relative d) ->
    if d < 1 then
      Some (Error.range ~what:"--digits" (Printf.sprintf "%d < 1" d))
    else if d > cap then
      Some (Error.budget ~what:"--digits" ~limit:cap ~got:d)
    else None
  | Some (Dragon.Fixed_format.Absolute j) ->
    if abs j > cap then
      Some (Error.budget ~what:"--places" ~limit:cap ~got:(abs j))
    else None
  | None -> None

let convert_one ~base ~mode ~fmt ~strategy ~notation ~request ~hex_out input =
  let parsed =
    if is_hex_literal input then Reader.Hex.read ~mode fmt input
    else Reader.read ~mode fmt input
  in
  match parsed with
  | Error _ as e -> e
  | Ok value -> (
    match (request, value) with
    | _ when hex_out -> Ok (Dragon.Printer.print_hex (Fp.Ieee.compose value))
    | None, _ ->
      Dragon.Printer.print_value ~base ~mode ~strategy ~notation fmt value
    | Some _, Fp.Value.Zero neg -> Ok (Dragon.Render.zero ~neg ())
    | Some _, Fp.Value.Inf neg -> Ok (Dragon.Render.infinity ~neg ())
    | Some _, Fp.Value.Nan -> Ok Dragon.Render.nan
    | Some req, Fp.Value.Finite v -> (
      match Dragon.Fixed_format.convert ~base ~mode fmt v req with
      | Error _ as e -> e
      | Ok t -> Ok (Dragon.Render.fixed ~notation ~neg:v.Fp.Value.neg ~base t)))

let run_stream ~convert ~max_errors =
  let errors = ref 0 in
  let lineno = ref 0 in
  let aborted = ref false in
  (try
     while not !aborted do
       let line = input_line stdin in
       incr lineno;
       if String.trim line <> "" then begin
         match convert (String.trim line) with
         | Ok out ->
           print_string out;
           print_newline ()
         | Error e ->
           incr errors;
           Printf.eprintf "error: line %d: %s\n%!" !lineno (Error.to_string e);
           (match max_errors with
           | Some cap when !errors >= cap ->
             Printf.eprintf
               "error: aborting after %d failed line(s) (--max-errors %d)\n%!"
               !errors cap;
             aborted := true
           | _ -> ())
       end
     done
   with End_of_file -> ());
  if !errors = 0 then `Ok ()
  else `Error (false, Printf.sprintf "%d input line(s) failed" !errors)

let run base mode fmt strategy notation digits places hex_out use_stdin
    max_errors numbers =
  if base < 2 || base > 36 then
    `Error
      ( false,
        Error.to_string
          (Error.range ~what:"base" (Printf.sprintf "%d not in 2..36" base)) )
  else begin
    let request =
      match (digits, places) with
      | Some _, Some _ -> Result.Error "use only one of --digits and --places"
      | Some d, None -> Result.Ok (Some (Dragon.Fixed_format.Relative d))
      | None, Some p -> Result.Ok (Some (Dragon.Fixed_format.Absolute (-p)))
      | None, None -> Result.Ok None
    in
    match request with
    | Result.Error e -> `Error (false, e)
    | Result.Ok request -> (
      match vet_request request with
      | Some e -> `Error (false, Error.to_string e)
      | None -> (
        let convert =
          convert_one ~base ~mode ~fmt ~strategy ~notation ~request ~hex_out
        in
        match (use_stdin, numbers) with
        | true, _ :: _ ->
          `Error (false, "--stdin and positional NUMBER arguments conflict")
        | true, [] -> run_stream ~convert ~max_errors
        | false, [] -> `Error (true, "missing NUMBER argument (or --stdin)")
        | false, numbers ->
          let ok = ref true in
          List.iter
            (fun input ->
              match convert input with
              | Error e ->
                ok := false;
                Printf.eprintf "error: %s\n" (Error.to_string e)
              | Ok out -> Printf.printf "%s\n" out)
            numbers;
          if !ok then `Ok () else `Error (false, "some inputs failed")))
  end

let cmd =
  let doc = "print floating-point numbers quickly and accurately" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Converts decimal inputs into a binary floating-point format with \
         correct rounding, then prints them back using the Burger-Dybvig \
         (PLDI 1996) free-format or fixed-format algorithm.  Free format \
         emits the shortest string that reads back to the same value; fixed \
         format emits correctly rounded digits with '#' marking positions \
         beyond the value's precision.";
      `P
        "Failures are structured: syntax errors (bad input text), range \
         errors (bad request parameters), budget errors (requests that \
         would exceed the resource caps, e.g. million-digit output) and \
         internal errors.  Inputs with astronomical exponents like \
         1e999999999 convert to the correctly rounded extreme (0 or inf) \
         in constant time.";
      `S Manpage.s_examples;
      `Pre
        "  bdprint 0.1 1e23\n\
        \  bdprint --digits 10 --format binary32 0.333333333\n\
        \  bdprint --base 16 --notation scientific 255.9375\n\
        \  bdprint --places 20 100\n\
        \  printf '0.1\\n1e23\\nbogus\\n' | bdprint --stdin --max-errors 5";
    ]
  in
  Cmd.v
    (Cmd.info "bdprint" ~version:"1.0.0" ~doc ~man)
    Term.(
      ret
        (const run $ base $ mode $ fmt $ strategy $ notation $ digits $ places
       $ hex_out $ stdin_flag $ max_errors $ numbers))

let () = exit (Cmd.eval cmd)
