(* bdlint: the project's own static analyzer (docs/STATIC_ANALYSIS.md).

   Walks every [.ml] under the given paths (default: [lib bin]), parses
   each file with the compiler's parser via ppxlib, and enforces the
   four invariant families the repository's PRs established:

   - [domain-safety]  toplevel mutable state must be Atomic/DLS/guarded;
   - [exn-escape]     manifest-listed result boundaries may not leak
                      exceptions;
   - [no-alloc]       [@lint.no_alloc] kernels may not syntactically
                      allocate;
   - [telemetry-gate] hot-path Metrics recording must sit behind the
                      enable check.

   Exit codes: 0 clean, 1 findings, 2 usage/IO/parse errors.  [--format
   json] emits a machine-readable report (CI uploads it as an
   artifact); [--metrics FILE] additionally exports per-rule finding
   and suppression counts through the project's own telemetry layer —
   the analyzer eats the instrumentation it polices. *)

open Cmdliner

let is_ml name =
  Filename.check_suffix name ".ml"
  && String.length name > 0
  && name.[0] <> '.'
  && name.[0] <> '_'

let skip_dir name =
  String.length name = 0 || name.[0] = '.' || name.[0] = '_'

(* Depth-first, sorted walk so output order is stable across runs. *)
let rec collect_ml acc path =
  if Sys.is_directory path then
    let entries = Sys.readdir path in
    Array.sort compare entries;
    Array.fold_left
      (fun acc entry ->
        let full = Filename.concat path entry in
        if Sys.is_directory full then
          if skip_dir entry then acc else collect_ml acc full
        else if is_ml entry then full :: acc
        else acc)
      acc entries
  else if is_ml (Filename.basename path) then path :: acc
  else acc

let collect paths = List.rev (List.fold_left collect_ml [] paths)

let write_out file contents =
  match file with
  | None -> print_string contents
  | Some f ->
    let oc = open_out f in
    output_string oc contents;
    close_out oc

(* Feed per-rule counts through the telemetry layer and dump the
   snapshot as JSON plus Prometheus text (FILE with a .prom suffix),
   mirroring [bdprint --metrics]. *)
let export_metrics file outcome =
  let registry = Telemetry.Metrics.create_registry () in
  let series help name rule n =
    let c =
      Telemetry.Metrics.counter ~registry
        ~labels:[ ("rule", Lint.Finding.rule_id rule) ]
        ~help name
    in
    Telemetry.Metrics.add c n
  in
  List.iter
    (fun (rule, n) ->
      series "Findings reported by bdlint" "bdlint_findings_total" rule n)
    (Lint.Engine.finding_counts outcome);
  List.iter
    (fun (rule, n) ->
      series "Findings absorbed by lint annotations" "bdlint_suppressions_total"
        rule n)
    outcome.Lint.Engine.suppressed;
  let files =
    Telemetry.Metrics.gauge ~registry ~help:"Files scanned by bdlint"
      "bdlint_files_scanned"
  in
  Telemetry.Metrics.set_gauge files outcome.Lint.Engine.files;
  let snap = Telemetry.Snapshot.take ~registry () in
  write_out (Some file) (Telemetry.Snapshot.to_json snap);
  write_out
    (Some (Filename.remove_extension file ^ ".prom"))
    (Telemetry.Snapshot.to_prometheus snap)

let run paths manifest_file format output metrics quiet =
  let manifest_file =
    match manifest_file with
    | Some f -> Some f
    | None -> if Sys.file_exists "bdlint.manifest" then Some "bdlint.manifest" else None
  in
  match
    let manifest =
      match manifest_file with
      | None -> Lint.Manifest.empty
      | Some f -> Lint.Manifest.load f
    in
    let files = collect paths in
    (files, Lint.Engine.analyze_files ~manifest files)
  with
  | exception Sys_error msg ->
    Printf.eprintf "bdlint: %s\n" msg;
    2
  | exception Lint.Manifest.Malformed msg ->
    Printf.eprintf "bdlint: manifest: %s\n" msg;
    2
  | exception Lint.Engine.Parse_error msg ->
    Printf.eprintf "bdlint: parse error: %s\n" msg;
    2
  | _files, outcome ->
    (match format with
    | `Text ->
      let body = Lint.Engine.to_text outcome in
      let report =
        if quiet then body else body ^ Lint.Engine.summary outcome ^ "\n"
      in
      write_out output report
    | `Json -> write_out output (Lint.Engine.to_json outcome));
    Option.iter (fun f -> export_metrics f outcome) metrics;
    if outcome.Lint.Engine.findings = [] then 0 else 1

let paths_arg =
  Arg.(
    value
    & pos_all string [ "lib"; "bin" ]
    & info [] ~docv:"PATH"
        ~doc:"Files or directories to analyze (default: lib bin).")

let manifest_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "manifest" ] ~docv:"FILE"
        ~doc:
          "Manifest listing exception-boundary modules and telemetry-gated \
           directories (default: ./bdlint.manifest when present).")

let format_arg =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "format" ] ~docv:"FMT" ~doc:"Report format: text or json.")

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE"
        ~doc:"Write the report to FILE instead of stdout.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Export per-rule finding/suppression counts as a telemetry \
           snapshot: JSON to FILE and Prometheus text to FILE with a .prom \
           suffix.")

let quiet_arg =
  Arg.(
    value & flag
    & info [ "q"; "quiet" ] ~doc:"Suppress the trailing summary line.")

let cmd =
  let doc = "project-specific static analyzer for the bdprint tree" in
  let term =
    Term.(
      const run $ paths_arg $ manifest_arg $ format_arg $ output_arg
      $ metrics_arg $ quiet_arg)
  in
  Cmd.v (Cmd.info "bdlint" ~doc ~exits:[]) term

let () = exit (Cmd.eval' cmd)
