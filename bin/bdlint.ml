(* bdlint: the project's own static analyzer (docs/STATIC_ANALYSIS.md).

   Walks every [.ml] under the given paths (default: [lib bin]), parses
   each file with the compiler's parser via ppxlib, builds the
   whole-program call graph, and enforces the project's invariant
   families:

   - [domain-safety]  toplevel mutable state must be Atomic/DLS/guarded;
   - [exn-escape]     manifest-listed result boundaries may not leak
                      exceptions, directly or through any call chain;
   - [no-alloc]       [@lint.no_alloc] kernels may not allocate, nor may
                      anything they transitively call;
   - [blocking]       kernels must not reach blocking operations; held
                      locks must not cover unbounded I/O;
   - [lock-order]     the mutex acquisition graph must be acyclic;
   - [width]          [@@lint.certified_width N] arithmetic must stay
                      inside its bit budget;
   - [telemetry-gate] hot-path Metrics recording must sit behind the
                      enable check;
   - [manifest-stale] manifest entries must match real files (warns,
                      never gates).

   Exit codes: 0 clean, 1 gating findings or a ratchet regression,
   2 usage/IO/parse errors.  [--changed [REF]] restricts the *report*
   to files touched since REF (default HEAD) while still building the
   call graph from the whole tree, so interprocedural findings stay
   sound.  [--baseline FILE] compares per-rule finding and suppression
   counts against a committed baseline and fails if any count rose
   (the CI ratchet); [--write-baseline FILE] records the current
   counts.  [--format json] emits a machine-readable report (CI
   uploads it as an artifact); [--metrics FILE] additionally exports
   per-rule counts through the project's own telemetry layer — the
   analyzer eats the instrumentation it polices. *)

open Cmdliner

let is_ml name =
  Filename.check_suffix name ".ml"
  && String.length name > 0
  && name.[0] <> '.'
  && name.[0] <> '_'

let skip_dir name =
  String.length name = 0 || name.[0] = '.' || name.[0] = '_'

(* Depth-first, sorted walk so output order is stable across runs. *)
let rec collect_ml acc path =
  if Sys.is_directory path then
    let entries = Sys.readdir path in
    Array.sort compare entries;
    Array.fold_left
      (fun acc entry ->
        let full = Filename.concat path entry in
        if Sys.is_directory full then
          if skip_dir entry then acc else collect_ml acc full
        else if is_ml entry then full :: acc
        else acc)
      acc entries
  else if is_ml (Filename.basename path) then path :: acc
  else acc

let collect paths = List.rev (List.fold_left collect_ml [] paths)

let write_out file contents =
  match file with
  | None -> print_string contents
  | Some f ->
    let oc = open_out f in
    output_string oc contents;
    close_out oc

(* ------------------------------------------------------------------ *)
(* --changed: the files touched since REF, per git *)

exception Git_failed of string

let changed_files ref_ =
  let cmd = Printf.sprintf "git diff --name-only %s" (Filename.quote ref_) in
  let ic = Unix.open_process_in cmd in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  match Unix.close_process_in ic with
  | Unix.WEXITED 0 -> List.rev !lines
  | _ -> raise (Git_failed (Printf.sprintf "'%s' failed" cmd))

let restrict_to_changed changed (outcome : Lint.Engine.outcome) =
  let matches file =
    List.exists
      (fun c ->
        String.equal c file
        || Filename.concat "." c = file
        || Filename.basename c = Filename.basename file
           && String.length file >= String.length c
           && String.sub file (String.length file - String.length c)
                (String.length c)
              = c)
      changed
  in
  {
    outcome with
    Lint.Engine.findings =
      List.filter
        (fun f -> f.Lint.Finding.rule = Lint.Finding.Manifest_stale || matches f.Lint.Finding.file)
        outcome.Lint.Engine.findings;
  }

(* ------------------------------------------------------------------ *)
(* The ratchet baseline: per-rule finding and suppression counts.

   The file is JSON we also read back ourselves; the reader is a
   deliberately small scanner over the exact shape the writer
   produces (and tolerates reordered or missing keys, treating absent
   rules as zero). *)

let baseline_json (outcome : Lint.Engine.outcome) =
  let section counts =
    "{\n"
    ^ String.concat ",\n"
        (List.map
           (fun (r, n) ->
             Printf.sprintf "    \"%s\": %d" (Lint.Finding.rule_id r) n)
           counts)
    ^ "\n  }"
  in
  Printf.sprintf "{\n  \"findings\": %s,\n  \"suppressions\": %s\n}\n"
    (section (Lint.Engine.finding_counts outcome))
    (section outcome.Lint.Engine.suppressed)

exception Bad_baseline of string

(* Extract the { "rule": n, ... } object following "\"section\":". *)
let parse_section s section =
  let needle = Printf.sprintf "\"%s\"" section in
  let nlen = String.length needle in
  let rec find i =
    if i + nlen > String.length s then
      raise (Bad_baseline (Printf.sprintf "missing \"%s\" section" section))
    else if String.sub s i nlen = needle then i + nlen
    else find (i + 1)
  in
  let start = String.index_from s (find 0) '{' + 1 in
  let stop = String.index_from s start '}' in
  let body = String.sub s start (stop - start) in
  String.split_on_char ',' body
  |> List.filter_map (fun pair ->
         match String.split_on_char ':' pair with
         | [ k; v ] -> (
           let k = String.trim k and v = String.trim v in
           match (String.length k >= 2 && k.[0] = '"', int_of_string_opt v) with
           | true, Some n -> Some (String.sub k 1 (String.length k - 2), n)
           | _ -> None)
         | _ -> None)

let read_baseline file =
  let ic = open_in_bin file in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  (parse_section s "findings", parse_section s "suppressions")

(* Returns the regressions as (kind, rule, baseline, current) rows. *)
let ratchet_check baseline (outcome : Lint.Engine.outcome) =
  let base_f, base_s = baseline in
  let look tbl id = Option.value (List.assoc_opt id tbl) ~default:0 in
  let rows kind tbl counts =
    List.filter_map
      (fun (r, n) ->
        let id = Lint.Finding.rule_id r in
        let b = look tbl id in
        if n > b then Some (kind, id, b, n) else None)
      counts
  in
  rows "findings" base_f (Lint.Engine.finding_counts outcome)
  @ rows "suppressions" base_s outcome.Lint.Engine.suppressed

let ratchet_diff_json regressions =
  "{\n"
  ^ String.concat ",\n"
      (List.map
         (fun (kind, id, b, n) ->
           Printf.sprintf "  \"%s/%s\": {\"baseline\": %d, \"current\": %d}"
             kind id b n)
         regressions)
  ^ "\n}\n"

(* ------------------------------------------------------------------ *)

(* Feed per-rule counts through the telemetry layer and dump the
   snapshot as JSON plus Prometheus text (FILE with a .prom suffix),
   mirroring [bdprint --metrics]. *)
let export_metrics file outcome =
  let registry = Telemetry.Metrics.create_registry () in
  let series help name rule n =
    let c =
      Telemetry.Metrics.counter ~registry
        ~labels:[ ("rule", Lint.Finding.rule_id rule) ]
        ~help name
    in
    Telemetry.Metrics.add c n
  in
  List.iter
    (fun (rule, n) ->
      series "Findings reported by bdlint" "bdlint_findings_total" rule n)
    (Lint.Engine.finding_counts outcome);
  List.iter
    (fun (rule, n) ->
      series "Findings absorbed by lint annotations" "bdlint_suppressions_total"
        rule n)
    outcome.Lint.Engine.suppressed;
  let files =
    Telemetry.Metrics.gauge ~registry ~help:"Files scanned by bdlint"
      "bdlint_files_scanned"
  in
  Telemetry.Metrics.set_gauge files outcome.Lint.Engine.files;
  let snap = Telemetry.Snapshot.take ~registry () in
  write_out (Some file) (Telemetry.Snapshot.to_json snap);
  write_out
    (Some (Filename.remove_extension file ^ ".prom"))
    (Telemetry.Snapshot.to_prometheus snap)

let run paths manifest_file format output metrics quiet changed baseline
    write_baseline baseline_diff =
  let manifest_file =
    match manifest_file with
    | Some f -> Some f
    | None -> if Sys.file_exists "bdlint.manifest" then Some "bdlint.manifest" else None
  in
  match
    let manifest =
      match manifest_file with
      | None -> Lint.Manifest.empty
      | Some f -> Lint.Manifest.load f
    in
    let files = collect paths in
    (files, Lint.Engine.analyze_files ~manifest files)
  with
  | exception Sys_error msg ->
    Printf.eprintf "bdlint: %s\n" msg;
    2
  | exception Lint.Manifest.Malformed msg ->
    Printf.eprintf "bdlint: manifest: %s\n" msg;
    2
  | exception Lint.Engine.Parse_error msg ->
    Printf.eprintf "bdlint: parse error: %s\n" msg;
    2
  | _files, full_outcome -> (
    match
      Option.map (fun ref_ -> changed_files ref_) changed
    with
    | exception Git_failed msg ->
      Printf.eprintf "bdlint: %s\n" msg;
      2
    | changed_set -> (
      let outcome =
        match changed_set with
        | None -> full_outcome
        | Some changed -> restrict_to_changed changed full_outcome
      in
      (match format with
      | `Text ->
        let body = Lint.Engine.to_text outcome in
        let report =
          if quiet then body else body ^ Lint.Engine.summary outcome ^ "\n"
        in
        write_out output report
      | `Json -> write_out output (Lint.Engine.to_json outcome));
      Option.iter (fun f -> export_metrics f outcome) metrics;
      (* the ratchet always compares the WHOLE tree, not the --changed
         slice: the baseline is a global property *)
      Option.iter
        (fun f -> write_out (Some f) (baseline_json full_outcome))
        write_baseline;
      match
        Option.map (fun f -> ratchet_check (read_baseline f) full_outcome)
          baseline
      with
      | exception Sys_error msg ->
        Printf.eprintf "bdlint: baseline: %s\n" msg;
        2
      | exception Bad_baseline msg ->
        Printf.eprintf "bdlint: baseline: %s\n" msg;
        2
      | regressions -> (
        let regressions = Option.value regressions ~default:[] in
        Option.iter
          (fun f -> write_out (Some f) (ratchet_diff_json regressions))
          baseline_diff;
        List.iter
          (fun (kind, id, b, n) ->
            Printf.eprintf
              "bdlint: ratchet regression: %s/%s rose from %d to %d\n" kind id
              b n)
          regressions;
        match
          (Lint.Engine.gating_findings outcome, regressions)
        with
        | [], [] -> 0
        | _ -> 1)))

let paths_arg =
  Arg.(
    value
    & pos_all string [ "lib"; "bin" ]
    & info [] ~docv:"PATH"
        ~doc:"Files or directories to analyze (default: lib bin).")

let manifest_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "manifest" ] ~docv:"FILE"
        ~doc:
          "Manifest listing exception-boundary modules, telemetry-gated \
           directories and declared lock orders (default: ./bdlint.manifest \
           when present).")

let format_arg =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "format" ] ~docv:"FMT" ~doc:"Report format: text or json.")

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE"
        ~doc:"Write the report to FILE instead of stdout.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Export per-rule finding/suppression counts as a telemetry \
           snapshot: JSON to FILE and Prometheus text to FILE with a .prom \
           suffix.")

let quiet_arg =
  Arg.(
    value & flag
    & info [ "q"; "quiet" ] ~doc:"Suppress the trailing summary block.")

let changed_arg =
  Arg.(
    value
    & opt ~vopt:(Some "HEAD") (some string) None
    & info [ "changed" ] ~docv:"REF"
        ~doc:
          "Report only findings in files changed since REF (default HEAD) \
           per git diff --name-only.  The call graph is still built from \
           every file, so interprocedural findings in changed files stay \
           sound; manifest-stale warnings are always kept.")

let baseline_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "baseline" ] ~docv:"FILE"
        ~doc:
          "Compare per-rule finding and suppression counts against FILE and \
           exit 1 if any count rose (the CI ratchet).  Counts are always \
           taken from the full tree, ignoring --changed.")

let write_baseline_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "write-baseline" ] ~docv:"FILE"
        ~doc:"Record the current per-rule counts to FILE.")

let baseline_diff_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "baseline-diff" ] ~docv:"FILE"
        ~doc:
          "With --baseline, write the per-rule regressions (if any) to FILE \
           as JSON for CI artifact upload.")

let cmd =
  let doc = "project-specific static analyzer for the bdprint tree" in
  let term =
    Term.(
      const run $ paths_arg $ manifest_arg $ format_arg $ output_arg
      $ metrics_arg $ quiet_arg $ changed_arg $ baseline_arg
      $ write_baseline_arg $ baseline_diff_arg)
  in
  Cmd.v (Cmd.info "bdlint" ~doc ~exits:[]) term

let () = exit (Cmd.eval' cmd)
