(* bdprintd: a crash-tolerant networked conversion daemon.

   Fronts the supervised conversion service (worker domains, retries,
   circuit breaker, degraded fallback, crash respawn) with the Wire
   line protocol over a Unix-domain or TCP socket: bounded admission
   with explicit SHED replies, per-connection deadlines, a sharded
   hot-value cache, and graceful drain on SIGTERM/SIGINT — accepted
   requests finish, --metrics files flush, then a clean exit 0.

   The conversion semantics are bdprint's defaults: shortest
   round-tripping decimal output for binary64, round-to-nearest-even,
   through the certified fast-path reader.  See docs/SERVICE.md for the
   protocol. *)

open Cmdliner
module Error = Robust.Error
module Server = Net.Server

let convert input =
  match
    if
      String.length input > 2
      && (String.sub input 0 2 = "0x" || String.sub input 0 2 = "0X"
         || (String.length input > 3
            && input.[0] = '-'
            && (String.sub input 1 2 = "0x" || String.sub input 1 2 = "0X")))
    then Reader.Hex.read ~mode:Fp.Rounding.To_nearest_even Fp.Format_spec.binary64 input
    else Result.map Fp.Ieee.decompose (Reader.Fast.read input)
  with
  | Error _ as e -> e
  | Ok value ->
    Dragon.Printer.print_value ~base:10 ~mode:Fp.Rounding.To_nearest_even
      ~strategy:Dragon.Scaling.Fast_estimate ~notation:Dragon.Render.Auto
      Fp.Format_spec.binary64 value

let listen_conv =
  let parse s =
    match String.index_opt s ':' with
    | Some 4 when String.sub s 0 4 = "unix" ->
      let p = String.sub s 5 (String.length s - 5) in
      if p = "" then Result.Error (`Msg "unix: needs a socket path")
      else Result.Ok (Server.Unix_path p)
    | Some i ->
      let host = String.sub s 0 i in
      let host = if host = "" then "127.0.0.1" else host in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      (match int_of_string_opt port with
      | Some p when p >= 0 && p <= 65535 -> Result.Ok (Server.Tcp (host, p))
      | _ -> Result.Error (`Msg (Printf.sprintf "bad port %S" port)))
    | None -> (
      match int_of_string_opt s with
      | Some p when p >= 0 && p <= 65535 ->
        Result.Ok (Server.Tcp ("127.0.0.1", p))
      | _ -> Result.Error (`Msg (Printf.sprintf "bad listen address %S" s)))
  in
  let print ppf = function
    | Server.Unix_path p -> Format.fprintf ppf "unix:%s" p
    | Server.Tcp (h, p) -> Format.fprintf ppf "%s:%d" h p
  in
  Arg.conv (parse, print)

let listen_arg =
  Arg.(
    value
    & opt listen_conv (Server.Tcp ("127.0.0.1", 0))
    & info [ "l"; "listen" ] ~docv:"ADDR"
        ~doc:
          "Listen address: $(b,HOST:PORT), $(b,:PORT), $(b,PORT) (TCP; port \
           0 picks an ephemeral port) or $(b,unix:PATH).")

let jobs_arg =
  Arg.(
    value & opt int 2
    & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Worker domains (at least 1).")

let admission_arg =
  Arg.(
    value & opt int 256
    & info [ "admission" ] ~docv:"N"
        ~doc:
          "Admission bound: maximum in-flight conversion requests; beyond \
           it requests are answered $(b,SHED queue-full).")

let cache_arg =
  Arg.(
    value & opt int 4096
    & info [ "cache-size" ] ~docv:"N"
        ~doc:"Hot-value cache capacity in entries; 0 disables the cache.")

let cache_shards_arg =
  Arg.(
    value & opt int 8
    & info [ "cache-shards" ] ~docv:"N" ~doc:"Cache shard count.")

let memo_min_us_arg =
  Arg.(
    value & opt float 5.0
    & info [ "memo-min-us" ] ~docv:"US"
        ~doc:
          "Skip memoizing conversions that complete in under $(docv) \
           microseconds: the table fast path answers in about 1 us \
           (BENCH_kernel.json), cheaper to recompute than to cache, \
           while exact-kernel conversions take tens of microseconds and \
           stay memoized.  The default sits at the measured cutover \
           between the two populations.  0 memoizes everything.")

let deadline_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Default per-request deadline applied to connections that do not \
           set their own with $(b,DEADLINE).")

let stuck_ms_arg =
  Arg.(
    value
    & opt int Service.Supervisor.default_watchdog.Service.Supervisor.stuck_ms
    & info [ "stuck-ms" ] ~docv:"MS"
        ~doc:
          "Watchdog threshold for deadline-less requests: a worker still \
           busy on one request after $(docv) ms is declared wedged — the \
           request is answered with a structured timeout and the worker \
           is replaced.  Requests carrying a deadline are declared wedged \
           shortly after it expires regardless of this setting.  0 \
           disables the watchdog entirely.")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ] ~doc:"Print service statistics on exit (stderr).")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "On exit, dump the telemetry registry as JSON to $(docv) and \
           Prometheus text to $(docv) with a .prom suffix.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Enable request tracing and write the sampled spans as Chrome \
           trace-event JSON to $(docv) on drain (loadable in \
           chrome://tracing or Perfetto).  One request in 64 is traced; \
           BDPRINTD_TRACE_SAMPLE=N overrides the interval.  Clients that \
           send a TID token tie their spans to the same trace; the TRACE \
           protocol verb exports the live ring without waiting for \
           drain.")

let flight_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "flight" ] ~docv:"FILE"
        ~doc:
          "Enable the flight recorder: a fixed-size in-memory ring of \
           structured events (admissions, sheds, fault trips, breaker \
           transitions, worker service start/end).  When a worker \
           crashes, wedges, or the breaker opens, the ring is appended \
           to $(docv) as JSONL — a black-box dump identifying the \
           poisoned request.")

let prom_path json_path =
  if Filename.check_suffix json_path ".json" then
    Filename.chop_suffix json_path ".json" ^ ".prom"
  else json_path ^ ".prom"

let flush_metrics metrics_file =
  match metrics_file with
  | None -> ()
  | Some file ->
    let snap = Telemetry.Snapshot.take () in
    let write path contents =
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc contents)
    in
    write file (Telemetry.Snapshot.to_json snap);
    write (prom_path file) (Telemetry.Snapshot.to_prometheus snap)

let print_final_stats (s : Server.stats) =
  Printf.eprintf
    "bdprintd: served %d requests on %d connections: %d ok (%d cached, %d \
     memo-skips), %d degraded, %d failed, %d shed (%d queue-full, %d \
     overload, %d draining), %d protocol errors\n\
     bdprintd: workers: %d submitted, %d crashes, %d wedges, %d respawns, \
     breaker=%s trips=%d\n\
     %!"
    s.Server.requests s.Server.connections s.Server.replies_ok
    s.Server.cache_hits s.Server.cache_skips s.Server.replies_degraded
    s.Server.replies_failed
    (s.Server.shed_queue_full + s.Server.shed_overload + s.Server.shed_draining)
    s.Server.shed_queue_full s.Server.shed_overload s.Server.shed_draining
    s.Server.proto_errors s.Server.supervisor.Service.Supervisor.submitted
    s.Server.supervisor.Service.Supervisor.crashes
    s.Server.supervisor.Service.Supervisor.wedges
    s.Server.supervisor.Service.Supervisor.respawns
    s.Server.supervisor.Service.Supervisor.breaker_state
    s.Server.supervisor.Service.Supervisor.breaker_trips

let run listen jobs admission cache_size cache_shards memo_min_us deadline_ms
    stuck_ms show_stats metrics_file trace_file flight_file =
  if jobs < 1 then `Error (false, "--jobs must be at least 1")
  else if admission < 1 then `Error (false, "--admission must be at least 1")
  else if cache_size < 0 then `Error (false, "--cache-size must be >= 0")
  else if memo_min_us < 0. then `Error (false, "--memo-min-us must be >= 0")
  else if (match deadline_ms with Some ms -> ms < 0 | None -> false) then
    `Error (false, "--deadline-ms must be >= 0")
  else if stuck_ms < 0 then `Error (false, "--stuck-ms must be >= 0")
  else begin
    if show_stats || metrics_file <> None then Telemetry.set_enabled true;
    (match trace_file with
    | None -> ()
    | Some _ ->
      Telemetry.Tracing.set_enabled true;
      (match Sys.getenv_opt "BDPRINTD_TRACE_SAMPLE" with
      | Some n -> (
        match int_of_string_opt n with
        | Some n when n >= 1 -> Telemetry.Tracing.set_sample_every n
        | _ -> ())
      | None -> ()));
    (match flight_file with
    | None -> ()
    | Some file ->
      Telemetry.Flight.set_enabled true;
      Telemetry.Flight.set_dump_path (Some file));
    let watchdog =
      if stuck_ms = 0 then None
      else
        Some
          { Service.Supervisor.default_watchdog with Service.Supervisor.stuck_ms }
    in
    let config =
      {
        Server.default_config with
        Server.jobs;
        admission_capacity = admission;
        cache_capacity = cache_size;
        cache_shards;
        memo_min_us;
        default_deadline_ms = deadline_ms;
        watchdog;
      }
    in
    match Server.start ~config ~convert listen with
    | Result.Error e -> `Error (false, Error.to_string e)
    | Result.Ok server ->
      let on_signal _ = Server.drain server in
      Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
      Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
      (* the address line is the startup handshake: harnesses parse it to
         learn the ephemeral port, then treat the daemon as ready *)
      Printf.printf "bdprintd: listening on %s\n%!" (Server.address server);
      let final = Server.wait server in
      if show_stats then print_final_stats final;
      flush_metrics metrics_file;
      (match trace_file with
      | None -> ()
      | Some file -> (
        try
          let oc = open_out file in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () -> output_string oc (Telemetry.Tracing.to_chrome_json ()))
        with Sys_error _ -> ()));
      Printf.eprintf "bdprintd: drained cleanly\n%!";
      `Ok ()
  end

let cmd =
  let doc = "a crash-tolerant networked conversion daemon" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Serves Burger-Dybvig shortest-form conversions over a line \
         protocol (see docs/SERVICE.md): CONV/BATCH requests answered OK, \
         DEG (degraded fallback), ERR (structured failure) or SHED \
         (explicit load shedding), plus PING, HEALTHZ, DEADLINE, STATS, \
         METRICS and QUIT.";
      `P
        "The daemon survives worker-domain crashes (detect, answer \
         degraded, respawn), bounds its admission queue (shedding \
         explicitly instead of queuing unboundedly) and drains gracefully \
         on SIGTERM/SIGINT: accepted requests finish, new ones are shed, \
         statistics flush, exit code 0.";
      `S Manpage.s_examples;
      `Pre
        "  bdprintd --listen 127.0.0.1:7070 --jobs 4\n\
        \  bdprintd --listen unix:/tmp/bdprintd.sock --stats\n\
        \  bdprintd --listen :0 --metrics service-metrics.json\n\
        \  printf 'CONV 0.1\\nQUIT\\n' | nc 127.0.0.1 7070";
    ]
  in
  Cmd.v
    (Cmd.info "bdprintd" ~version:"1.0.0" ~doc ~man)
    Term.(
      ret
        (const run $ listen_arg $ jobs_arg $ admission_arg $ cache_arg
       $ cache_shards_arg $ memo_min_us_arg $ deadline_arg $ stuck_ms_arg
       $ stats_arg $ metrics_arg $ trace_arg $ flight_arg))

let () = exit (Cmd.eval cmd)
