(* Quickstart: the one-page tour of the library.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  print_endline "=== Free format: shortest string that reads back exactly ===";
  let samples =
    [ 0.1; 0.3; 1. /. 3.; 0.1 +. 0.2; 1e23; 2. ** 60.; 5e-324; -123.456 ]
  in
  List.iter
    (fun x ->
      Printf.printf "  %-26s ->  %s\n" (Printf.sprintf "%.17g" x)
        (Dragon.Printer.print x))
    samples;

  print_endline "";
  print_endline "=== The same values always read back to the same bits ===";
  List.iter
    (fun x ->
      let s = Dragon.Printer.print x in
      match Reader.read_float s with
      | Ok y ->
        Printf.printf "  %-24s reads back %s\n" s
          (if Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y) then
             "bit-exactly"
           else "WRONG")
      | Error e -> Printf.printf "  %-24s PARSE ERROR %s\n" s (Robust.Error.to_string e))
    samples;

  print_endline "";
  print_endline "=== Fixed format: correct rounding to a requested position ===";
  let pi = 4. *. atan 1. in
  List.iter
    (fun places ->
      Printf.printf "  pi to %2d places: %s\n" places
        (Dragon.Printer.print_fixed (Dragon.Fixed_format.Absolute (-places)) pi))
    [ 2; 6; 12 ];
  Printf.printf "  pi to 4 significant digits: %s\n"
    (Dragon.Printer.print_fixed (Dragon.Fixed_format.Relative 4) pi);

  print_endline "";
  print_endline "=== # marks show where the float stops carrying information ===";
  Printf.printf "  100.0 to 20 places:      %s\n"
    (Dragon.Printer.print_fixed (Dragon.Fixed_format.Absolute (-20)) 100.);
  Printf.printf "  min denormal, 12 digits: %s\n"
    (Dragon.Printer.print_fixed (Dragon.Fixed_format.Relative 12) 5e-324);

  print_endline "";
  print_endline "=== Reader rounding modes matter: the paper's 1e23 example ===";
  Printf.printf "  reader rounds to even:  %s\n" (Dragon.Printer.print 1e23);
  Printf.printf "  reader rounds ties away: %s\n"
    (Dragon.Printer.print ~mode:Fp.Rounding.To_nearest_away 1e23)
