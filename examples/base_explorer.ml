(* The conversion algorithm is generic in the output base (2..36): print
   a few doubles in many bases and verify each string denotes a value that
   reads back to the same double.

   Run with:  dune exec examples/base_explorer.exe *)

module Value = Fp.Value
module Ratio = Bignum.Ratio

let () =
  let show x =
    Printf.printf "--- %s ---\n" (Dragon.Printer.print x);
    List.iter
      (fun base ->
        let s = Dragon.Printer.print ~base x in
        (* the printed text itself reads back to the same double *)
        let v =
          match Fp.Ieee.decompose x with
          | Value.Finite v -> v
          | _ -> assert false
        in
        let back =
          match Reader.read_in_base ~base Fp.Format_spec.binary64 s with
          | Ok back -> back
          | Error e -> failwith (Robust.Error.to_string e)
        in
        Printf.printf "  base %2d: %-28s %s\n" base s
          (if Value.equal back (Value.Finite v) then "(round-trips)"
           else "ROUND-TRIP FAILURE")
      )
      [ 2; 3; 5; 8; 10; 12; 16; 20; 36 ]
  in
  List.iter show [ 0.1; 1. /. 3.; 255.9375; 6.02214076e23 ];

  print_endline "";
  print_endline "=== Shortest-output length depends on the base ===";
  let x = 0.1 in
  let v = match Fp.Ieee.decompose x with Value.Finite v -> v | _ -> assert false in
  List.iter
    (fun base ->
      let n = Dragon.Free_format.digit_count ~base Fp.Format_spec.binary64 v in
      Printf.printf "  base %2d needs %2d digits for 0.1\n" base n)
    [ 2; 4; 8; 10; 16; 32 ]
