(* Rigorous decimal enclosures: combine directed-rounding software
   arithmetic with directed-rounding-aware printing.

   Computing with Toward_negative / Toward_positive gives binary bounds
   L <= true value <= U; printing L with a reader mode of Toward_positive
   yields a short decimal that is still <= L (it reads back as L from
   below), and symmetrically for U — so the printed interval encloses the
   true value with shortest-form endpoints.

   Run with:  dune exec examples/interval_enclosures.exe *)

module SF = Fp.Softfloat
module Value = Fp.Value

let b64 = Fp.Format_spec.binary64

let print_lower v = Dragon.Printer.print_value_exn ~mode:Fp.Rounding.Toward_positive b64 v
let print_upper v = Dragon.Printer.print_value_exn ~mode:Fp.Rounding.Toward_negative b64 v

let enclose name lo hi =
  Printf.printf "  %-14s in [%s, %s]\n" name (print_lower lo) (print_upper hi)

let () =
  print_endline "=== Enclosures of irrational values (binary64 bounds) ===";
  let two = SF.of_int b64 2 in
  enclose "sqrt 2"
    (SF.sqrt ~mode:Fp.Rounding.Toward_negative b64 two)
    (SF.sqrt ~mode:Fp.Rounding.Toward_positive b64 two);
  let one = SF.of_int b64 1 in
  let third name n =
    let den = SF.of_int b64 n in
    enclose name
      (SF.div ~mode:Fp.Rounding.Toward_negative b64 one den)
      (SF.div ~mode:Fp.Rounding.Toward_positive b64 one den)
  in
  third "1/3" 3;
  third "1/7" 7;

  print_endline "";
  print_endline "=== Interval sum: 1/3 + 1/7 + 1/11 + ... + 1/97 ===";
  let primes = [ 3; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47; 53; 59;
                 61; 67; 71; 73; 79; 83; 89; 97 ] in
  let lo, hi =
    List.fold_left
      (fun (lo, hi) p ->
        let den = SF.of_int b64 p in
        ( SF.add ~mode:Fp.Rounding.Toward_negative b64 lo
            (SF.div ~mode:Fp.Rounding.Toward_negative b64 one den),
          SF.add ~mode:Fp.Rounding.Toward_positive b64 hi
            (SF.div ~mode:Fp.Rounding.Toward_positive b64 one den) ))
      (SF.of_int b64 0, SF.of_int b64 0)
      primes
  in
  enclose "sum" lo hi;

  print_endline "";
  print_endline "=== The same value, enclosed at different precisions ===";
  List.iter
    (fun (name, fmt) ->
      let two = SF.of_int fmt 2 in
      let lo = SF.sqrt ~mode:Fp.Rounding.Toward_negative fmt two in
      let hi = SF.sqrt ~mode:Fp.Rounding.Toward_positive fmt two in
      Printf.printf "  %-10s sqrt 2 in [%s, %s]\n" name
        (Dragon.Printer.print_value_exn ~mode:Fp.Rounding.Toward_positive fmt lo)
        (Dragon.Printer.print_value_exn ~mode:Fp.Rounding.Toward_negative fmt hi))
    [
      ("binary16", Fp.Format_spec.binary16);
      ("binary32", Fp.Format_spec.binary32);
      ("binary64", Fp.Format_spec.binary64);
      ("binary128", Fp.Format_spec.binary128);
    ]
