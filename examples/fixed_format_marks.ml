(* Fixed-format printing and significance marks, across formats.

   Shows the paper's Section 4 behaviour on values whose precision runs
   out before the requested position: denormals, single precision, and
   long outputs.

   Run with:  dune exec examples/fixed_format_marks.exe *)

module Value = Fp.Value

let print_fixed_in fmt value request =
  match value with
  | Value.Finite v ->
    Dragon.Render.fixed ~neg:v.Value.neg ~base:10
      (Dragon.Fixed_format.convert_exn fmt v request)
  | v -> Value.to_string v

let read_into fmt s =
  match Reader.read fmt s with
  | Ok v -> v
  | Error e -> failwith (Robust.Error.to_string e)

let () =
  print_endline "=== Denormal doubles: precision fades near 2^-1074 ===";
  List.iter
    (fun s ->
      let v = read_into Fp.Format_spec.binary64 s in
      Printf.printf "  %-12s to 15 digits: %s\n" s
        (print_fixed_in Fp.Format_spec.binary64 v
           (Dragon.Fixed_format.Relative 15)))
    [ "1e-300"; "1e-310"; "1e-318"; "1e-321"; "5e-324" ];

  print_endline "";
  print_endline "=== Single precision runs out after ~7 digits ===";
  List.iter
    (fun s ->
      let v = read_into Fp.Format_spec.binary32 s in
      Printf.printf "  %-10s as binary32, 12 digits: %s\n" s
        (print_fixed_in Fp.Format_spec.binary32 v
           (Dragon.Fixed_format.Relative 12)))
    [ "0.333333333"; "0.1"; "3.14159265"; "65504" ];

  print_endline "";
  print_endline "=== Absolute positions: stop at a decimal place ===";
  let x = 98765.432112345 in
  List.iter
    (fun j ->
      Printf.printf "  %g at 10^%-3d: %s\n" x j
        (Dragon.Printer.print_fixed (Dragon.Fixed_format.Absolute j) x))
    [ 3; 1; 0; -3; -6; -9; -15 ];

  print_endline "";
  print_endline "=== Half precision: only ~3-4 decimal digits exist ===";
  List.iter
    (fun s ->
      let v = read_into Fp.Format_spec.binary16 s in
      Printf.printf "  %-8s as binary16, 8 digits: %s  (value %s)\n" s
        (print_fixed_in Fp.Format_spec.binary16 v
           (Dragon.Fixed_format.Relative 8))
        (match v with
        | Value.Finite f ->
          Dragon.Render.free ~base:10
            (Dragon.Free_format.convert Fp.Format_spec.binary16 f)
        | other -> Value.to_string other))
    [ "0.1"; "1000.5"; "65504"; "6.1e-5" ]
