(* Audit the central guarantee on a large corpus: for every value and
   every reader rounding mode, printing then reading returns the same
   float, and no shorter string does.

   Run with:  dune exec examples/roundtrip_audit.exe -- [count] *)

module Value = Fp.Value

let () =
  let count =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 20_000
  in
  let corpora =
    [
      ("schryer", Workloads.Schryer.corpus ~size:count ());
      ("random normals", Workloads.Corpus.random_positive_normals ~seed:11 count);
      ("random denormals", Workloads.Corpus.random_denormals ~seed:12 (count / 10));
      ("hard cases", Workloads.Corpus.hard_cases);
    ]
  in
  let failures = ref 0 in
  let audited = ref 0 in
  List.iter
    (fun (name, corpus) ->
      Array.iter
        (fun x ->
          let x = Float.abs x in
          match Fp.Ieee.decompose x with
          | Value.Finite v ->
            List.iter
              (fun mode ->
                incr audited;
                let r = Dragon.Free_format.convert ~mode Fp.Format_spec.binary64 v in
                match
                  Dragon.Reference.check_output ~mode Fp.Format_spec.binary64 v r
                with
                | Ok () -> ()
                | Error e ->
                  incr failures;
                  Printf.printf "  FAIL %s %h (%s): %s\n" name x
                    (Fp.Rounding.to_string mode) e)
              Fp.Rounding.all
          | _ -> ())
        corpus;
      Printf.printf "%-18s audited\n%!" name)
    corpora;
  Printf.printf
    "\n%d conversions audited across %d rounding modes: %d failures\n" !audited
    (List.length Fp.Rounding.all) !failures;
  if !failures > 0 then exit 1
