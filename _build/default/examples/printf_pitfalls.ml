(* What Table 3's "incorrect printf" column looks like up close: find
   corpus values that a 64-bit-extended printf pipeline misrounds at 17
   digits, and contrast the shortest form with the verbose fixed forms.

   Run with:  dune exec examples/printf_pitfalls.exe *)

let () =
  print_endline
    "=== Values a 64-bit-extended printf model misrounds at 17 digits ===";
  let corpus = Workloads.Schryer.corpus ~size:120_000 () in
  let shown = ref 0 in
  Array.iter
    (fun x ->
      if !shown < 8 && not (Baselines.Float_fixed.correctly_rounded ~ndigits:17 x)
      then begin
        incr shown;
        Printf.printf "  %s\n" (Dragon.Printer.print_hex x);
        Printf.printf "    exact:  %s\n"
          (Baselines.Naive_fixed.print ~ndigits:17 x);
        Printf.printf "    model:  %s\n"
          (Baselines.Float_fixed.print ~ndigits:17 x)
      end)
    corpus;
  if !shown = 0 then print_endline "  (none in this prefix)";

  print_endline "";
  print_endline "=== Shortest form vs fixed 17 digits vs exact expansion ===";
  List.iter
    (fun x ->
      Printf.printf "  value (hex):    %s\n" (Dragon.Printer.print_hex x);
      Printf.printf "  shortest:       %s\n" (Dragon.Printer.print x);
      Printf.printf "  fixed 17:       %s\n"
        (Baselines.Naive_fixed.print ~ndigits:17 (Float.abs x));
      Printf.printf "  exact value:    %s\n\n" (Dragon.Printer.print_exact x))
    [ 0.1; 0.1 +. 0.2; 1e23 ];

  print_endline "=== Why 17 digits: 15 are too few, and 17 never lie ===";
  let x = 0.1 +. 0.2 in
  Printf.printf "  x = 0.1 + 0.2\n";
  List.iter
    (fun p ->
      let s = Printf.sprintf "%.*g" p x in
      Printf.printf "  %%.%dg -> %-22s reads back %s\n" p s
        (if float_of_string s = x then "exactly" else "WRONG (loses the bit)"))
    [ 15; 16; 17 ];
  Printf.printf "  shortest  -> %-22s (always exact, never longer than needed)\n"
    (Dragon.Printer.print x)
