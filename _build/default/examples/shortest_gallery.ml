(* A gallery comparing the shortest correctly rounded output with the
   C-style 17-digit fixed format, plus the digit-length distribution over
   the Schryer corpus (the paper's "average of 15.2 digits").

   Run with:  dune exec examples/shortest_gallery.exe *)

module Value = Fp.Value

let () =
  print_endline
    "value (17 fixed digits)                shortest form        saved";
  print_endline
    "----------------------------------------------------------------";
  Array.iter
    (fun x ->
      let fixed17 = Baselines.Naive_fixed.print ~ndigits:17 (Float.abs x) in
      let short = Dragon.Printer.print (Float.abs x) in
      Printf.printf "%-38s %-22s %d chars\n" fixed17 short
        (String.length fixed17 - String.length short))
    Workloads.Corpus.hard_cases;

  print_endline "";
  print_endline "=== Shortest-output digit counts over the Schryer corpus ===";
  let corpus = Workloads.Schryer.corpus ~size:100_000 () in
  let histogram = Array.make 18 0 in
  let total = ref 0 in
  Array.iter
    (fun x ->
      match Fp.Ieee.decompose x with
      | Value.Finite v ->
        let n = Dragon.Free_format.digit_count Fp.Format_spec.binary64 v in
        histogram.(n) <- histogram.(n) + 1;
        total := !total + n
      | _ -> ())
    corpus;
  Array.iteri
    (fun n count ->
      if count > 0 then
        Printf.printf "  %2d digits: %6d  %s\n" n count
          (String.make (count * 60 / Array.length corpus) '#'))
    histogram;
  Printf.printf "  average: %.2f digits (the paper reports 15.2)\n"
    (float_of_int !total /. float_of_int (Array.length corpus))
