examples/interval_enclosures.mli:
