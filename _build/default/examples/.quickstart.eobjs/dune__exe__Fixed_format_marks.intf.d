examples/fixed_format_marks.mli:
