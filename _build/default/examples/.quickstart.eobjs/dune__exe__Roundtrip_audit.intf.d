examples/roundtrip_audit.mli:
