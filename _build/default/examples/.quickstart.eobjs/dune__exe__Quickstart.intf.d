examples/quickstart.mli:
