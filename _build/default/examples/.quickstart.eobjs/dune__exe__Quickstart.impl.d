examples/quickstart.ml: Dragon Fp Int64 List Printf Reader
