examples/roundtrip_audit.ml: Array Dragon Float Fp List Printf Sys Workloads
