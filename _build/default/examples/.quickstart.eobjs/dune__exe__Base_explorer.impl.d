examples/base_explorer.ml: Bignum Dragon Fp List Printf Reader
