examples/shortest_gallery.ml: Array Baselines Dragon Float Fp Printf String Workloads
