examples/base_explorer.mli:
