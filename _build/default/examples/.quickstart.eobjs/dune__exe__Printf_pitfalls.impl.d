examples/printf_pitfalls.ml: Array Baselines Dragon Float List Printf Workloads
