examples/interval_enclosures.ml: Dragon Fp List Printf
