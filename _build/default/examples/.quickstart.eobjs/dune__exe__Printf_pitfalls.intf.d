examples/printf_pitfalls.mli:
