examples/shortest_gallery.mli:
