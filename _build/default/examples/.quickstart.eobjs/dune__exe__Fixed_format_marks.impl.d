examples/fixed_format_marks.ml: Dragon Fp List Printf Reader
