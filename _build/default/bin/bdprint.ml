(* bdprint: command-line floating-point conversion using the Burger-Dybvig
   algorithms.  Input strings are read with the exact reader into the
   chosen format, then printed free- or fixed-format. *)

open Cmdliner

let mode_conv =
  let parse = function
    | "even" | "nearest-even" -> Ok Fp.Rounding.To_nearest_even
    | "away" | "nearest-away" -> Ok Fp.Rounding.To_nearest_away
    | "nearest-zero" -> Ok Fp.Rounding.To_nearest_toward_zero
    | "zero" | "trunc" -> Ok Fp.Rounding.Toward_zero
    | "up" | "ceiling" -> Ok Fp.Rounding.Toward_positive
    | "down" | "floor" -> Ok Fp.Rounding.Toward_negative
    | s -> Error (`Msg (Printf.sprintf "unknown rounding mode %S" s))
  in
  Arg.conv (parse, fun ppf m -> Format.pp_print_string ppf (Fp.Rounding.to_string m))

let format_conv =
  let parse = function
    | "binary16" | "half" -> Ok Fp.Format_spec.binary16
    | "binary32" | "single" | "float" -> Ok Fp.Format_spec.binary32
    | "binary64" | "double" -> Ok Fp.Format_spec.binary64
    | s -> Error (`Msg (Printf.sprintf "unknown format %S" s))
  in
  Arg.conv (parse, fun ppf f -> Fp.Format_spec.pp ppf f)

let strategy_conv =
  let parse = function
    | "fast" -> Ok Dragon.Scaling.Fast_estimate
    | "float-log" -> Ok Dragon.Scaling.Float_log
    | "gay" -> Ok Dragon.Scaling.Gay_taylor
    | "iterative" -> Ok Dragon.Scaling.Iterative
    | s -> Error (`Msg (Printf.sprintf "unknown strategy %S" s))
  in
  Arg.conv
    (parse, fun ppf s -> Format.pp_print_string ppf (Dragon.Scaling.strategy_name s))

let notation_conv =
  let parse = function
    | "auto" -> Ok Dragon.Render.Auto
    | "sci" | "scientific" -> Ok Dragon.Render.Scientific
    | "pos" | "positional" -> Ok Dragon.Render.Positional
    | s -> Error (`Msg (Printf.sprintf "unknown notation %S" s))
  in
  Arg.conv
    ( parse,
      fun ppf n ->
        Format.pp_print_string ppf
          (match n with
          | Dragon.Render.Auto -> "auto"
          | Dragon.Render.Scientific -> "scientific"
          | Dragon.Render.Positional -> "positional") )

let numbers =
  Arg.(non_empty & pos_all string [] & info [] ~docv:"NUMBER" ~doc:"Decimal numbers to convert.")

let base =
  Arg.(value & opt int 10 & info [ "b"; "base" ] ~docv:"BASE" ~doc:"Output base (2-36).")

let mode =
  Arg.(
    value
    & opt mode_conv Fp.Rounding.To_nearest_even
    & info [ "m"; "mode" ]
        ~doc:
          "Reader rounding mode the output must survive: even, away, \
           nearest-zero, zero, up, down.")

let fmt =
  Arg.(
    value
    & opt format_conv Fp.Format_spec.binary64
    & info [ "f"; "format" ] ~doc:"Target format: binary16, binary32, binary64.")

let strategy =
  Arg.(
    value
    & opt strategy_conv Dragon.Scaling.Fast_estimate
    & info [ "s"; "strategy" ]
        ~doc:"Scaling strategy: fast, float-log, gay, iterative.")

let notation =
  Arg.(
    value
    & opt notation_conv Dragon.Render.Auto
    & info [ "n"; "notation" ] ~doc:"Rendering: auto, scientific, positional.")

let digits =
  Arg.(
    value
    & opt (some int) None
    & info [ "d"; "digits" ] ~docv:"N" ~doc:"Fixed format with $(docv) significant digits.")

let places =
  Arg.(
    value
    & opt (some int) None
    & info [ "p"; "places" ] ~docv:"N"
        ~doc:"Fixed format with $(docv) digits after the radix point.")

let hex_out =
  Arg.(
    value & flag
    & info [ "x"; "hex" ]
        ~doc:
          "Print in C17 hexadecimal-significand notation (exact; binary64 \
           only).")

let is_hex_literal s =
  let s =
    if String.length s > 0 && (s.[0] = '-' || s.[0] = '+') then
      String.sub s 1 (String.length s - 1)
    else s
  in
  String.length s >= 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X')

let run base mode fmt strategy notation digits places hex_out numbers =
  if base < 2 || base > 36 then `Error (false, "base must be in 2..36")
  else begin
    let request =
      match (digits, places) with
      | Some _, Some _ -> Error "use only one of --digits and --places"
      | Some d, None -> Ok (Some (Dragon.Fixed_format.Relative d))
      | None, Some p -> Ok (Some (Dragon.Fixed_format.Absolute (-p)))
      | None, None -> Ok None
    in
    match request with
    | Error e -> `Error (false, e)
    | Ok request ->
      let ok = ref true in
      List.iter
        (fun input ->
          let converted =
            let parsed =
              if is_hex_literal input then Reader.Hex.read ~mode fmt input
              else Reader.read ~mode fmt input
            in
            match parsed with
            | Error _ as e -> e
            | Ok value -> (
              (* surface misuse (e.g. --digits 0) as a clean error *)
              try
                Ok
                  (match (request, value) with
                  | _ when hex_out ->
                    Dragon.Printer.print_hex (Fp.Ieee.compose value)
                  | None, _ ->
                    Dragon.Printer.print_value ~base ~mode ~strategy ~notation
                      fmt value
                  | Some _, Fp.Value.Zero neg -> Dragon.Render.zero ~neg ()
                  | Some _, Fp.Value.Inf neg -> Dragon.Render.infinity ~neg ()
                  | Some _, Fp.Value.Nan -> Dragon.Render.nan
                  | Some req, Fp.Value.Finite v ->
                    Dragon.Render.fixed ~notation ~neg:v.Fp.Value.neg ~base
                      (Dragon.Fixed_format.convert ~base ~mode fmt v req))
              with Invalid_argument msg -> Error msg)
          in
          match converted with
          | Error e ->
            ok := false;
            Printf.eprintf "error: %s\n" e
          | Ok out -> Printf.printf "%s\n" out)
        numbers;
      if !ok then `Ok () else `Error (false, "some inputs failed")
  end

let cmd =
  let doc = "print floating-point numbers quickly and accurately" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Converts decimal inputs into a binary floating-point format with \
         correct rounding, then prints them back using the Burger-Dybvig \
         (PLDI 1996) free-format or fixed-format algorithm.  Free format \
         emits the shortest string that reads back to the same value; fixed \
         format emits correctly rounded digits with '#' marking positions \
         beyond the value's precision.";
      `S Manpage.s_examples;
      `Pre
        "  bdprint 0.1 1e23\n\
        \  bdprint --digits 10 --format binary32 0.333333333\n\
        \  bdprint --base 16 --notation scientific 255.9375\n\
        \  bdprint --places 20 100";
    ]
  in
  Cmd.v
    (Cmd.info "bdprint" ~version:"1.0.0" ~doc ~man)
    Term.(
      ret
        (const run $ base $ mode $ fmt $ strategy $ notation $ digits $ places
       $ hex_out $ numbers))

let () = exit (Cmd.eval cmd)
