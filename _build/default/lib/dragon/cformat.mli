(** C-style formatting ([%e], [%f], [%g]) on top of the exact conversion
    machinery.

    These produce byte-identical output to a {e correctly rounded} C
    library's [printf] (glibc qualifies; the paper's Table 3 shows several
    1996 systems did not).  They exist both as a practical drop-in and as
    a harness: the test suite compares them against the host [printf] on
    thousands of cases, which cross-validates the oracle's rounding in yet
    another way.

    All three round half-to-even, like IEEE hardware in the default mode.
    Infinities and NaNs print as ["inf"]/["-inf"]/["nan"]. *)

val e : precision:int -> float -> string
(** [%.<precision>e]: one digit, point, [precision] digits, [e±dd]
    (exponent at least two digits).  [precision = 0] omits the point. *)

val f : precision:int -> float -> string
(** [%.<precision>f]: positional with exactly [precision] fraction
    digits. *)

val g : precision:int -> float -> string
(** [%.<precision>g]: C's rules — significant-digit count
    [max 1 precision], positional when the decimal exponent [X] satisfies
    [-4 <= X < precision], scientific otherwise; trailing zeros and a
    dangling point are removed. *)
