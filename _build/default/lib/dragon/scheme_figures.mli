(** Direct transliterations of the paper's published Scheme code.

    The paper prints three Scheme listings: Figure 1 (the integer
    algorithm with Steele & White's iterative [scale]), Figure 2 (scaling
    with the floating-point logarithm and a one-shot [fixup]) and Figure 3
    (the fast estimator with the pre-multiplying [generate]).  This module
    ports them function-for-function — same structure, same recursion,
    same [low-ok?]/[high-ok?] plumbing, IEEE unbiased rounding, ties
    rounding up — as a fidelity check: each figure is property-tested to
    agree digit-for-digit with the production {!Free_format} path.

    [flonum_to_digits] corresponds to the paper's [flonum->digits]
    driver. *)

type figure = Figure1 | Figure2 | Figure3

val flonum_to_digits :
  figure -> base:int -> Fp.Format_spec.t -> Fp.Value.finite -> Free_format.t
(** Free-format digits of a positive finite value, computed by the chosen
    figure's code path.  All three produce identical results; they differ
    only in how they find the scale factor. *)
