(** Initialisation of the scaled integer state (paper, Table 1).

    The integer-arithmetic algorithm of Section 3.1 represents the value
    and its rounding range with four high-precision integers over a common
    denominator:

    - [v = r / s],
    - [(v⁺ - v) / 2 = m_plus / s],
    - [(v - v⁻) / 2 = m_minus / s].

    The factor 2 needed by the midpoints is folded into [s], so all four
    quantities stay integral.  [low_ok]/[high_ok] say whether an output
    landing exactly on [low = (v⁻+v)/2] or [high = (v+v⁺)/2] still reads
    back as [v] — that is how the paper accommodates the reader's rounding
    mode.

    Directed reader modes (an extension over the paper, admitted by the
    same machinery) replace the midpoint range by a whole gap: e.g. a
    toward-zero reader maps every value in [[v, v⁺)] to [v], which is
    expressed here as [m_minus = 0] with [low_ok = true] and a doubled
    [m_plus] with [high_ok = false]. *)

type t = {
  r : Bignum.Nat.t;
  s : Bignum.Nat.t;
  m_plus : Bignum.Nat.t;
  m_minus : Bignum.Nat.t;
  low_ok : bool;
  high_ok : bool;
}

val of_finite :
  ?mode:Fp.Rounding.mode -> Fp.Format_spec.t -> Fp.Value.finite -> t
(** Table 1 for the magnitude of a finite non-zero value, with the
    endpoint rules derived from [mode] (default round-to-nearest-even).
    Directed modes are interpreted on the signed value, so the sign of the
    input flips which gap is kept. *)

val scale_all : t -> Bignum.Nat.t -> t
(** Multiply [r], [s], [m_plus] and [m_minus] by a common factor — the
    value is unchanged; used by fixed format to clear [B^j] denominators. *)

val low_high : t -> Bignum.Ratio.t * Bignum.Ratio.t
(** The rounding range as exact rationals, for tests. *)

val value : t -> Bignum.Ratio.t
(** [r/s], for tests. *)
