module Nat = Bignum.Nat
module Bigint = Bignum.Bigint
module Ratio = Bignum.Ratio
module Format_spec = Fp.Format_spec
module Value = Fp.Value
module Rounding = Fp.Rounding

type t = {
  r : Nat.t;
  s : Nat.t;
  m_plus : Nat.t;
  m_minus : Nat.t;
  low_ok : bool;
  high_ok : bool;
}

(* Table 1.  The low gap is narrower (by a factor of b) exactly when the
   mantissa sits at the bottom of a binade above the denormal range. *)
let table1 (fmt : Format_spec.t) (v : Value.finite) =
  let b = fmt.b in
  let narrow = Fp.Gaps.gap_low_is_narrow fmt v in
  if v.e >= 0 then begin
    let be = Nat.pow_int b v.e in
    if not narrow then
      { r = Nat.shift_left (Nat.mul v.f be) 1;
        s = Nat.two;
        m_plus = be;
        m_minus = be;
        low_ok = false;
        high_ok = false }
    else begin
      let be1 = Nat.mul_int be b in
      { r = Nat.shift_left (Nat.mul v.f be1) 1;
        s = Nat.of_int (2 * b);
        m_plus = be1;
        m_minus = be;
        low_ok = false;
        high_ok = false }
    end
  end
  else if not narrow then
    { r = Nat.shift_left v.f 1;
      s = Nat.shift_left (Nat.pow_int b (-v.e)) 1;
      m_plus = Nat.one;
      m_minus = Nat.one;
      low_ok = false;
      high_ok = false }
  else
    { r = Nat.shift_left (Nat.mul_int v.f b) 1;
      s = Nat.shift_left (Nat.pow_int b (1 - v.e)) 1;
      m_plus = Nat.of_int b;
      m_minus = Nat.one;
      low_ok = false;
      high_ok = false }

let of_finite ?(mode = Rounding.To_nearest_even) fmt (v : Value.finite) =
  if Nat.is_zero v.f then invalid_arg "Boundaries.of_finite: zero mantissa";
  let t = table1 fmt v in
  if Rounding.is_nearest mode then begin
    let low_ok, high_ok =
      Rounding.boundary_ok mode ~mantissa_even:(Nat.is_even v.f)
    in
    { t with low_ok; high_ok }
  end
  else begin
    (* A directed reader maps a whole gap onto v.  Work out, for the
       magnitude being printed, whether the kept gap is the one above or
       below v: toward-zero always keeps the gap above the magnitude;
       floor/ceiling depend on the sign. *)
    let keeps_gap_above =
      match mode with
      | Rounding.Toward_zero -> true
      | Rounding.Toward_negative -> not v.neg
      | Rounding.Toward_positive -> v.neg
      | _ -> assert false
    in
    if keeps_gap_above then
      (* range [v, v + gap): low is v itself and is included *)
      { t with
        m_minus = Nat.zero;
        m_plus = Nat.shift_left t.m_plus 1;
        low_ok = true;
        high_ok = false }
    else
      (* range (v - gap, v]: high is v itself and is included *)
      { t with
        m_plus = Nat.zero;
        m_minus = Nat.shift_left t.m_minus 1;
        low_ok = false;
        high_ok = true }
  end

let scale_all t c =
  if Nat.is_zero c then invalid_arg "Boundaries.scale_all: zero factor";
  let f x = Nat.mul x c in
  { t with r = f t.r; s = f t.s; m_plus = f t.m_plus; m_minus = f t.m_minus }

let ratio num den =
  Ratio.make (Bigint.of_nat num) (Bigint.of_nat den)

let value t = ratio t.r t.s

let low_high t =
  ( Ratio.sub (ratio t.r t.s) (ratio t.m_minus t.s),
    Ratio.add (ratio t.r t.s) (ratio t.m_plus t.s) )
