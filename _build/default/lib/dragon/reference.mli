(** Executable specification of the basic algorithm (paper, Section 2).

    A direct transliteration of the paper's procedure over exact rational
    arithmetic: compute [v⁻]/[v⁺], form the open rounding range, scale by
    searching for [k], and generate digits while testing the two
    termination conditions on exact rationals.  Slow by design; the
    integer-arithmetic production path ({!Free_format}) is property-tested
    to agree with this digit-for-digit, mirroring the paper's Section 3.1
    equivalence argument. *)

val free :
  ?base:int ->
  ?mode:Fp.Rounding.mode ->
  ?tie:Generate.tie ->
  Fp.Format_spec.t ->
  Fp.Value.finite ->
  Free_format.t
(** Shortest correctly rounded output, computed the slow obvious way. *)

val fixed :
  ?base:int ->
  ?mode:Fp.Rounding.mode ->
  ?tie:Generate.tie ->
  Fp.Format_spec.t ->
  Fp.Value.finite ->
  Fixed_format.request ->
  Fixed_format.t
(** Fixed-format output (Section 4) computed over exact rationals: widen
    the rounding range by the half quantum where it dominates, run the
    basic digit loop, then classify trailing positions as significant
    zeros or [#] marks by the insignificance rule.  The integer-arithmetic
    {!Fixed_format.convert} is property-tested against this. *)

val check_output :
  ?base:int ->
  ?mode:Fp.Rounding.mode ->
  Fp.Format_spec.t ->
  Fp.Value.finite ->
  Free_format.t ->
  (unit, string) result
(** Verify the three output conditions of Section 2.2 for a candidate
    conversion: (1) the value lies inside the rounding range (information
    preservation), (2) the last digit is correctly rounded, and (3) no
    shorter digit string lies inside the range (minimality).  Used to
    audit both our printers and external ones. *)
