module Nat = Bignum.Nat
module Value = Fp.Value

let b64 = Fp.Format_spec.binary64

let digit_string digits =
  String.init (Array.length digits) (fun i ->
      Char.chr (Char.code '0' + digits.(i)))

(* Significant digits and decimal position of |x|, correctly rounded
   half-even — the exact computation behind all three formats. *)
let significant x ndigits =
  match Fp.Ieee.decompose (Float.abs x) with
  | Value.Finite v ->
    let digits, k =
      Oracle.Exact_decimal.round_significant ~tie:Oracle.Exact_decimal.Half_even
        ~base:10 ~ndigits (Value.to_ratio b64 v)
    in
    Some (digits, k)
  | _ -> None

let special x =
  if Float.is_nan x then Some "nan"
  else if x = Float.infinity then Some "inf"
  else if x = Float.neg_infinity then Some "-inf"
  else None

let sign_prefix x =
  if Float.sign_bit x then "-" else ""

let e ~precision x =
  if precision < 0 then invalid_arg "Cformat.e: negative precision";
  match special x with
  | Some s -> s
  | None ->
    let body, exp10 =
      if x = 0. then (String.make (precision + 1) '0', 0)
      else begin
        match significant x (precision + 1) with
        | Some (digits, k) -> (digit_string digits, k - 1)
        | None -> assert false
      end
    in
    let mantissa =
      if precision = 0 then String.sub body 0 1
      else Printf.sprintf "%c.%s" body.[0] (String.sub body 1 precision)
    in
    Printf.sprintf "%s%se%+03d" (sign_prefix x) mantissa exp10

let f ~precision x =
  if precision < 0 then invalid_arg "Cformat.f: negative precision";
  match special x with
  | Some s -> s
  | None ->
    let m =
      if x = 0. then Nat.zero
      else begin
        match Fp.Ieee.decompose (Float.abs x) with
        | Value.Finite v ->
          Oracle.Exact_decimal.round_at_position
            ~tie:Oracle.Exact_decimal.Half_even ~base:10 ~pos:(-precision)
            (Value.to_ratio b64 v)
        | _ -> assert false
      end
    in
    let s = Nat.to_string m in
    let s =
      if String.length s <= precision then
        String.make (precision + 1 - String.length s) '0' ^ s
      else s
    in
    let cut = String.length s - precision in
    let integer = String.sub s 0 cut in
    let fraction = String.sub s cut precision in
    Printf.sprintf "%s%s%s%s" (sign_prefix x) integer
      (if precision = 0 then "" else ".")
      fraction

let g ~precision x =
  if precision < 0 then invalid_arg "Cformat.g: negative precision";
  match special x with
  | Some s -> s
  | None ->
    let p = max 1 precision in
    let strip s =
      (* remove trailing zeros of the fraction and a dangling point *)
      if not (String.contains s '.') then s
      else begin
        let n = ref (String.length s) in
        while s.[!n - 1] = '0' do
          decr n
        done;
        if s.[!n - 1] = '.' then decr n;
        String.sub s 0 !n
      end
    in
    if x = 0. then sign_prefix x ^ "0"
    else begin
      match significant x p with
      | None -> assert false
      | Some (digits, k) ->
        let exp10 = k - 1 in
        if exp10 < -4 || exp10 >= p then begin
          (* scientific, with the fraction stripped *)
          let body = digit_string digits in
          let mantissa =
            if p = 1 then String.sub body 0 1
            else strip (Printf.sprintf "%c.%s" body.[0] (String.sub body 1 (p - 1)))
          in
          Printf.sprintf "%s%se%+03d" (sign_prefix x) mantissa exp10
        end
        else begin
          (* positional with p - 1 - exp10 fraction digits, then strip *)
          let s = f ~precision:(p - 1 - exp10) (Float.abs x) in
          sign_prefix x ^ strip s
        end
    end
