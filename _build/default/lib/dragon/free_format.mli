(** Free-format conversion (paper, Sections 2-3): the shortest digit
    string, correctly rounded, that reads back as the original value under
    the reader's rounding mode. *)

type t = {
  digits : int array;  (** base-[base] digits, most significant first *)
  k : int;  (** the value printed is [0.d1 d2 ... dn × base^k] *)
}

val convert :
  ?base:int ->
  ?mode:Fp.Rounding.mode ->
  ?strategy:Scaling.strategy ->
  ?tie:Generate.tie ->
  Fp.Format_spec.t ->
  Fp.Value.finite ->
  t
(** Shortest correctly rounded digits of the magnitude of a non-zero
    finite value.  Defaults: decimal output, reader rounds to nearest
    even, the paper's fast estimator, ties between equally close outputs
    round up (as in the paper's Scheme code). *)

val digit_count :
  ?base:int ->
  ?mode:Fp.Rounding.mode ->
  ?strategy:Scaling.strategy ->
  Fp.Format_spec.t ->
  Fp.Value.finite ->
  int
(** Length of the shortest output — the statistic behind the paper's
    "average of 15.2 digits" remark. *)

val to_ratio : base:int -> t -> Bignum.Ratio.t
(** Exact value denoted by a conversion result, for tests. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
