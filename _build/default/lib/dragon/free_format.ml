module Nat = Bignum.Nat
module Bigint = Bignum.Bigint
module Ratio = Bignum.Ratio

type t = { digits : int array; k : int }

let convert ?(base = 10) ?(mode = Fp.Rounding.To_nearest_even)
    ?(strategy = Scaling.Fast_estimate) ?(tie = Generate.Closer_up) fmt v =
  if base < 2 || base > 36 then invalid_arg "Free_format.convert: base";
  let bnd = Boundaries.of_finite ~mode fmt v in
  let k, state =
    Scaling.scale strategy ~base ~b:fmt.Fp.Format_spec.b ~f:v.Fp.Value.f
      ~e:v.Fp.Value.e bnd
  in
  { digits = Generate.free ~base ~tie state; k }

let digit_count ?base ?mode ?strategy fmt v =
  Array.length (convert ?base ?mode ?strategy fmt v).digits

let to_ratio ~base t =
  let n = Array.length t.digits in
  Ratio.mul
    (Ratio.of_bigint (Bigint.of_nat (Nat.of_base_digits ~base t.digits)))
    (Ratio.pow (Ratio.of_int base) (t.k - n))

let equal a b = a.k = b.k && a.digits = b.digits

let pp fmt t =
  Format.fprintf fmt "0.%se%d"
    (String.concat ""
       (Array.to_list (Array.map string_of_int t.digits)))
    t.k
