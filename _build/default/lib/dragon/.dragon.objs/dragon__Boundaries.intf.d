lib/dragon/boundaries.mli: Bignum Fp
