lib/dragon/reference.mli: Fixed_format Fp Free_format Generate
