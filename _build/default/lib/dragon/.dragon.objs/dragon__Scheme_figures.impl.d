lib/dragon/scheme_figures.ml: Array Bignum Float Fp Free_format Scaling Stdlib
