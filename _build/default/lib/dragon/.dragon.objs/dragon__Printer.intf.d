lib/dragon/printer.mli: Fixed_format Fp Generate Render Scaling
