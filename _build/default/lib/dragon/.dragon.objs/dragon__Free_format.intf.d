lib/dragon/free_format.mli: Bignum Format Fp Generate Scaling
