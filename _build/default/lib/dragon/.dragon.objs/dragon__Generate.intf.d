lib/dragon/generate.mli: Bignum Boundaries
