lib/dragon/printer.ml: Array Bignum Buffer Fixed_format Fp Free_format Oracle Printf Render String
