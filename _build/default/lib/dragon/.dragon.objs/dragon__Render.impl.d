lib/dragon/render.ml: Array Buffer Fixed_format Free_format List String
