lib/dragon/fixed_format.ml: Array Bignum Boundaries Format Fp Generate Scaling String
