lib/dragon/free_format.ml: Array Bignum Boundaries Format Fp Generate Scaling String
