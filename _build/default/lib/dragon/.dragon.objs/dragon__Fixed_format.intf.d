lib/dragon/fixed_format.mli: Bignum Format Fp Generate
