lib/dragon/cformat.mli:
