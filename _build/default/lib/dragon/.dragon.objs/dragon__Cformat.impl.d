lib/dragon/cformat.ml: Array Bignum Char Float Fp Oracle Printf String
