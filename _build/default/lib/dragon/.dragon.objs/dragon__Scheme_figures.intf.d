lib/dragon/scheme_figures.mli: Fp Free_format
