lib/dragon/render.mli: Fixed_format Free_format
