lib/dragon/scaling.mli: Bignum Boundaries
