lib/dragon/reference.ml: Array Bignum Fixed_format Float Fp Free_format Generate List Option
