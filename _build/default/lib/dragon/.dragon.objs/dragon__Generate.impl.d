lib/dragon/generate.ml: Array Bignum Boundaries List
