lib/dragon/scaling.ml: Array Bignum Boundaries Float Hashtbl
