lib/dragon/boundaries.ml: Bignum Fp
