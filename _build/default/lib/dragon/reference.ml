module Nat = Bignum.Nat
module Bigint = Bignum.Bigint
module Ratio = Bignum.Ratio
module Format_spec = Fp.Format_spec
module Value = Fp.Value
module Rounding = Fp.Rounding

(* The rounding range of the magnitude as exact rationals, with endpoint
   admissibility per reader mode.  Mirrors Boundaries.of_finite. *)
let range ?(mode = Rounding.To_nearest_even) (fmt : Format_spec.t)
    (v : Value.finite) =
  let value = Value.to_ratio fmt { v with neg = false } in
  let gap_above = Ratio.pow (Ratio.of_int fmt.b) v.e in
  let gap_below =
    Ratio.pow (Ratio.of_int fmt.b)
      (if Fp.Gaps.gap_low_is_narrow fmt v then v.e - 1 else v.e)
  in
  if Rounding.is_nearest mode then begin
    let low, high = Fp.Gaps.rounding_range fmt { v with neg = false } in
    let low_ok, high_ok =
      Rounding.boundary_ok mode ~mantissa_even:(Nat.is_even v.f)
    in
    (value, low, high, low_ok, high_ok)
  end
  else begin
    let keeps_gap_above =
      match mode with
      | Rounding.Toward_zero -> true
      | Rounding.Toward_negative -> not v.neg
      | Rounding.Toward_positive -> v.neg
      | _ -> assert false
    in
    if keeps_gap_above then
      (value, value, Ratio.add value gap_above, true, false)
    else (value, Ratio.sub value gap_below, value, false, true)
  end

let within ~low ~high ~low_ok ~high_ok x =
  let cl = Ratio.compare low x and ch = Ratio.compare x high in
  (if low_ok then cl <= 0 else cl < 0)
  && if high_ok then ch <= 0 else ch < 0

(* Step 2: smallest k such that high <= B^k (< when the endpoint itself is
   an admissible output).  The search is exact; the float logarithm only
   seeds it so wide formats (|k| in the thousands) stay tractable. *)
let find_k ~base ~high ~high_ok =
  let pow k = Ratio.pow (Ratio.of_int base) k in
  let reaches k =
    let c = Ratio.compare high (pow k) in
    if high_ok then c < 0 else c <= 0
  in
  let num = Bigint.to_nat_exn (Ratio.num high) in
  let den = Bigint.to_nat_exn (Ratio.den high) in
  let log2_high =
    let m1, n1 = Nat.frexp num and m2, n2 = Nat.frexp den in
    (log m1 -. log m2) /. log 2. +. float_of_int (n1 - n2)
  in
  let k = ref (int_of_float (Float.ceil (log2_high /. (log (float_of_int base) /. log 2.))) ) in
  while not (reaches !k) do
    incr k
  done;
  while reaches (!k - 1) do
    decr k
  done;
  !k

(* The digit loop of Section 2.2, shared by free and fixed format, using
   the paper's concise termination conditions (corollary to Lemma 2):

     (1) q_n * B^(k-n) <  v - low        (<= when low is admissible)
     (2) (1 - q_n) * B^(k-n) < high - v  (<= when high is admissible)

   q_n is the scaled fractional remainder, kept as an integer numerator
   over the fixed denominator den(v) * B^|k|, so the exact loop needs no
   gcd reductions.  Returns the accepted digits and the exact output
   value (which fixed format's tail classification needs). *)
let digit_loop ~base ~tie ~value ~low ~high ~low_ok ~high_ok ~k =
  let bigB = Bigint.of_int base in
  let scale_pow n = Bigint.of_nat (Nat.pow_int base n) in
  (* q0 = v / B^k over an explicit common denominator *)
  let q_num =
    ref
      (if k >= 0 then Ratio.num value
       else Bigint.mul (Ratio.num value) (scale_pow (-k)))
  in
  let q_den =
    if k >= 0 then Bigint.mul (Ratio.den value) (scale_pow k)
    else Ratio.den value
  in
  (* rhs_low_n = (v - low) * B^(n-k) and rhs_high_n = (high - v) * B^(n-k),
     advanced by a factor of B each step *)
  let init_rhs r =
    if k >= 0 then
      Ratio.make_unreduced (Ratio.num r) (Bigint.mul (Ratio.den r) (scale_pow k))
    else
      Ratio.make_unreduced
        (Bigint.mul (Ratio.num r) (scale_pow (-k)))
        (Ratio.den r)
  in
  let rhs_low = ref (init_rhs (Ratio.sub value low)) in
  let rhs_high = ref (init_rhs (Ratio.sub high value)) in
  let digits = ref [] in
  let result = ref None in
  let n = ref 0 in
  while !result = None do
    incr n;
    let d, rest = Bigint.ediv_rem (Bigint.mul !q_num bigB) q_den in
    let d = Option.get (Bigint.to_int_opt d) in
    q_num := rest;
    rhs_low := Ratio.mul_bigint !rhs_low bigB;
    rhs_high := Ratio.mul_bigint !rhs_high bigB;
    let q = Ratio.make_unreduced !q_num q_den in
    let one_minus_q = Ratio.make_unreduced (Bigint.sub q_den !q_num) q_den in
    let tc1 =
      let c = Ratio.compare q !rhs_low in
      if low_ok then c <= 0 else c < 0
    in
    let tc2 =
      let c = Ratio.compare one_minus_q !rhs_high in
      if high_ok then c <= 0 else c < 0
    in
    match (tc1, tc2) with
    | false, false -> digits := d :: !digits
    | true, false -> result := Some (d, false)
    | false, true -> result := Some (d + 1, true)
    | true, true ->
      (* choose the closer output: q_n against 1/2 *)
      let c = Bigint.compare (Bigint.mul_int !q_num 2) q_den in
      let up =
        if c < 0 then false
        else if c > 0 then true
        else begin
          match tie with
          | Generate.Closer_up -> true
          | Generate.Closer_down -> false
          | Generate.Closer_even -> d land 1 = 1
        end
      in
      result := Some ((if up then d + 1 else d), up)
  done;
  let last, incremented = Option.get !result in
  let digits = Array.of_list (List.rev (last :: !digits)) in
  let out =
    let ulp = Ratio.pow (Ratio.of_int base) (k - !n) in
    let down =
      Ratio.sub value (Ratio.mul (Ratio.make_unreduced !q_num q_den) ulp)
    in
    if incremented then Ratio.add down ulp else down
  in
  (digits, out)

let free ?(base = 10) ?mode ?(tie = Generate.Closer_up) fmt v =
  let value, low, high, low_ok, high_ok = range ?mode fmt v in
  let k = find_k ~base ~high ~high_ok in
  let digits, _ = digit_loop ~base ~tie ~value ~low ~high ~low_ok ~high_ok ~k in
  { Free_format.digits; k }

(* ------------------------------------------------------------------ *)
(* Fixed format over rationals (Section 4). *)


let fixed ?(base = 10) ?mode ?(tie = Generate.Closer_up) fmt v request =
  let value, low0, high0, low_ok0, high_ok0 = range ?mode fmt v in
  let b = Ratio.of_int base in
  let absolute j =
    let qhalf = Ratio.mul Ratio.half (Ratio.pow b j) in
    let c = Ratio.compare value qhalf in
    if c <= 0 then begin
      (* at or below half a quantum: 0 or one unit at position j *)
      let up =
        c = 0
        && (match tie with
           | Generate.Closer_up -> true
           | Generate.Closer_down | Generate.Closer_even -> false)
      in
      { Fixed_format.digits = [| Fixed_format.Digit (if up then 1 else 0) |];
        k = j + 1 }
    end
    else begin
      let vl = Ratio.sub value qhalf and vh = Ratio.add value qhalf in
      let low, low_ok =
        if Ratio.compare vl low0 <= 0 then (vl, true) else (low0, low_ok0)
      in
      let high, high_ok =
        if Ratio.compare vh high0 >= 0 then (vh, true) else (high0, high_ok0)
      in
      let k = find_k ~base ~high ~high_ok in
      let gen, out = digit_loop ~base ~tie ~value ~low ~high ~low_ok ~high_ok ~k in
      let n = Array.length gen in
      let total = k - j in
      assert (n <= total);
      let digits = Array.make total Fixed_format.Hash in
      Array.iteri (fun i d -> digits.(i) <- Fixed_format.Digit d) gen;
      (* position m (1-based) is insignificant iff out + B^(k-m+1) fits
         under high *)
      let insignificant m =
        let c = Ratio.compare (Ratio.add out (Ratio.pow b (k - m + 1))) high in
        if high_ok then c <= 0 else c < 0
      in
      let stop_zeros = ref false in
      for m = n + 1 to total do
        if not !stop_zeros then
          if insignificant m then stop_zeros := true
          else digits.(m - 1) <- Fixed_format.Digit 0
      done;
      { Fixed_format.digits; k }
    end
  in
  match request with
  | Fixed_format.Absolute j -> absolute j
  | Fixed_format.Relative i ->
    if i < 1 then invalid_arg "Reference.fixed: relative digits < 1";
    let k0 = find_k ~base ~high:high0 ~high_ok:high_ok0 in
    let rec refine guess attempts =
      let result = absolute (guess - i) in
      if result.Fixed_format.k = guess || attempts = 0 then result
      else refine result.Fixed_format.k (attempts - 1)
    in
    refine k0 2

let check_output ?(base = 10) ?mode fmt v (t : Free_format.t) =
  let value, low, high, low_ok, high_ok = range ?mode fmt v in
  let n = Array.length t.digits in
  let out = Free_format.to_ratio ~base t in
  let ulp = Ratio.pow (Ratio.of_int base) (t.k - n) in
  if n = 0 then Error "empty digit string"
  else if t.digits.(0) = 0 then Error "leading zero digit"
  else if Array.exists (fun d -> d < 0 || d >= base) t.digits then
    Error "digit out of range"
  else if not (within ~low ~high ~low_ok ~high_ok out) then
    Error "output does not read back as v (outside rounding range)"
  else if Ratio.compare (Ratio.abs (Ratio.sub out value)) ulp > 0 then
    Error "output more than one ulp from v"
  else if
    (* correct rounding: the candidate on the other side of v must not be
       both admissible and strictly closer.  (For nearest-style ranges this
       reduces to the half-ulp bound of Theorem 4; directed ranges are
       one-sided, so the error there may legitimately approach a full
       ulp.) *)
    (let other =
       if Ratio.compare out value <= 0 then Ratio.add out ulp
       else Ratio.sub out ulp
     in
     within ~low ~high ~low_ok ~high_ok other
     && Ratio.compare
          (Ratio.abs (Ratio.sub other value))
          (Ratio.abs (Ratio.sub out value))
        < 0)
  then Error "last digit not correctly rounded"
  else begin
    (* minimality: neither (n-1)-digit neighbour of v may be in range *)
    if n = 1 then Ok ()
    else begin
      let coarse_ulp = Ratio.pow (Ratio.of_int base) (t.k - n + 1) in
      let lowc =
        Ratio.mul (Ratio.of_bigint (Ratio.floor (Ratio.div value coarse_ulp))) coarse_ulp
      in
      let highc = Ratio.add lowc coarse_ulp in
      if within ~low ~high ~low_ok ~high_ok lowc then
        Error "not minimal: truncation to n-1 digits already reads back"
      else if within ~low ~high ~low_ok ~high_ok highc then
        Error "not minimal: n-1 digit round-up already reads back"
      else Ok ()
    end
  end
