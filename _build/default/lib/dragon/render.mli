(** Turning digit strings into text.

    The conversion results say "the value is [0.d1 d2 ... × base^k]"; this
    module lays that out either positionally ([123.45], [0.00123]) or in
    scientific notation ([1.2345e2]), in any base up to 36 (digits beyond
    9 print as lowercase letters).  [#] marks from fixed format are
    preserved as written. *)

type notation =
  | Auto  (** positional for moderate exponents, scientific otherwise *)
  | Scientific
  | Positional

val digit_char : int -> char
(** 0-9 then a-z.
    @raise Invalid_argument outside [0, 35]. *)

val exponent_marker : int -> char
(** ['e'] up to base 14; ['^'] beyond, where [e] is itself a digit. *)

val free : ?notation:notation -> ?neg:bool -> base:int -> Free_format.t -> string

val fixed :
  ?notation:notation -> ?neg:bool -> base:int -> Fixed_format.t -> string

val zero : ?neg:bool -> unit -> string
val infinity : ?neg:bool -> unit -> string
val nan : string
