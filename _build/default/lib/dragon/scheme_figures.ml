(* Function-for-function ports of the paper's Scheme listings.  Variable
   names and call shapes follow the figures; [Nat] stands in for Scheme's
   bignums.  Recursion is kept where the Scheme recurses. *)

module Nat = Bignum.Nat

type figure = Figure1 | Figure2 | Figure3

let ( * ) = Nat.mul
let ( + ) = Nat.add

let ge a b = Nat.compare a b >= 0
let gt a b = Nat.compare a b > 0
let le a b = Nat.compare a b <= 0
let lt a b = Nat.compare a b < 0

(* Figure 1's [generate]: multiply r by B first, then split off a digit. *)
let rec generate_fig1 r s m_plus m_minus b low_ok high_ok =
  let d, r = Nat.divmod (Nat.mul_int r b) s in
  let m_plus = Nat.mul_int m_plus b and m_minus = Nat.mul_int m_minus b in
  let d = Nat.to_int_exn d in
  let tc1 = (if low_ok then le else lt) r m_minus in
  let tc2 = (if high_ok then ge else gt) (r + m_plus) s in
  if not tc1 then
    if not tc2 then d :: generate_fig1 r s m_plus m_minus b low_ok high_ok
    else [ Stdlib.( + ) d 1 ]
  else if not tc2 then [ d ]
  else if lt (Nat.shift_left r 1) s then [ d ]
  else [ Stdlib.( + ) d 1 ]

(* Figure 3's [generate]: r arrives pre-multiplied. *)
let rec generate_fig3 r s m_plus m_minus b low_ok high_ok =
  let d, r = Nat.divmod r s in
  let d = Nat.to_int_exn d in
  let tc1 = (if low_ok then le else lt) r m_minus in
  let tc2 = (if high_ok then ge else gt) (r + m_plus) s in
  if not tc1 then
    if not tc2 then
      d
      :: generate_fig3 (Nat.mul_int r b) s (Nat.mul_int m_plus b)
           (Nat.mul_int m_minus b) b low_ok high_ok
    else [ Stdlib.( + ) d 1 ]
  else if not tc2 then [ d ]
  else if lt (Nat.shift_left r 1) s then [ d ]
  else [ Stdlib.( + ) d 1 ]

(* Figure 1's iterative [scale]. *)
let rec scale_fig1 r s m_plus m_minus k b low_ok high_ok =
  if (if high_ok then ge else gt) (r + m_plus) s then
    (* k is too low *)
    scale_fig1 r (Nat.mul_int s b) m_plus m_minus (Stdlib.( + ) k 1) b low_ok
      high_ok
  else if
    (if high_ok then lt else le) (Nat.mul_int (r + m_plus) b) s
  then
    (* k is too high *)
    scale_fig1 (Nat.mul_int r b) s (Nat.mul_int m_plus b)
      (Nat.mul_int m_minus b)
      (Stdlib.( - ) k 1)
      b low_ok high_ok
  else (k, generate_fig1 r s m_plus m_minus b low_ok high_ok)

(* Figures 2 and 3 share [fixup]; the figures differ in the estimate. *)
let fixup r s m_plus m_minus k b low_ok high_ok =
  if (if high_ok then ge else gt) (r + m_plus) s then
    (* too low? *)
    ( Stdlib.( + ) k 1,
      generate_fig3 r s m_plus m_minus b low_ok high_ok )
  else
    ( k,
      generate_fig3 (Nat.mul_int r b) s (Nat.mul_int m_plus b)
        (Nat.mul_int m_minus b) b low_ok high_ok )

let scale_estimated est r s m_plus m_minus b low_ok high_ok =
  if Stdlib.( >= ) est 0 then
    fixup r (s * Scaling.power ~base:b est) m_plus m_minus est b low_ok
      high_ok
  else begin
    let scale = Scaling.power ~base:b (-est) in
    fixup (r * scale) s (m_plus * scale) (m_minus * scale) est b low_ok
      high_ok
  end

(* Figure 2's estimate: the floating-point logarithm of v. *)
let estimate_fig2 ~base ~b ~f ~e =
  let m, nbits = Nat.frexp f in
  let log_b x = log x /. log (float_of_int base) in
  let log_v =
    ((float_of_int e *. log (float_of_int b)) /. log (float_of_int base))
    +. log_b m
    +. (float_of_int nbits *. log_b 2.)
  in
  Stdlib.int_of_float (Float.ceil (log_v -. 1e-10))

(* Figure 3's estimate: exponent and mantissa length, two flops. *)
let estimate_fig3 ~base ~b ~f ~e =
  let invlog2of = log 2. /. log (float_of_int base) in
  let log2_b = if Stdlib.( = ) b 2 then 1. else log (float_of_int b) /. log 2. in
  Stdlib.int_of_float
    (Float.ceil
       (((float_of_int e *. log2_b) +. float_of_int (Stdlib.( - ) (Nat.bit_length f) 1))
        *. invlog2of
       -. 1e-10))

(* The paper's [flonum->digits] driver (IEEE unbiased rounding: both
   endpoints admissible exactly when the mantissa is even). *)
let flonum_to_digits figure ~base (fmt : Fp.Format_spec.t)
    (v : Fp.Value.finite) =
  let b = fmt.b and p = fmt.p and min_e = fmt.emin in
  let f = v.f and e = v.e in
  if Nat.is_zero f then invalid_arg "Scheme_figures: zero";
  let round_ok = Nat.is_even f in
  let scale r s m_plus m_minus =
    match figure with
    | Figure1 -> scale_fig1 r s m_plus m_minus 0 base round_ok round_ok
    | Figure2 ->
      scale_estimated (estimate_fig2 ~base ~b ~f ~e) r s m_plus m_minus base
        round_ok round_ok
    | Figure3 ->
      scale_estimated (estimate_fig3 ~base ~b ~f ~e) r s m_plus m_minus base
        round_ok round_ok
  in
  let bp1 = Nat.pow_int b (Stdlib.( - ) p 1) in
  let k, digits =
    if Stdlib.( >= ) e 0 then
      if not (Nat.equal f bp1) then begin
        let be = Nat.pow_int b e in
        scale (Nat.shift_left (f * be) 1) Nat.two be be
      end
      else begin
        let be = Nat.pow_int b e in
        let be1 = Nat.mul_int be b in
        scale (Nat.shift_left (f * be1) 1) (Nat.of_int (Stdlib.( * ) b 2)) be1 be
      end
    else if Stdlib.( = ) e min_e || not (Nat.equal f bp1) then
      scale (Nat.shift_left f 1)
        (Nat.shift_left (Nat.pow_int b (-e)) 1)
        Nat.one Nat.one
    else
      scale
        (Nat.shift_left (Nat.mul_int f b) 1)
        (Nat.shift_left (Nat.pow_int b (Stdlib.( - ) 1 e)) 1)
        (Nat.of_int b) Nat.one
  in
  { Free_format.digits = Array.of_list digits; k }
