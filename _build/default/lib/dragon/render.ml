type notation = Auto | Scientific | Positional

let digit_char d =
  if d < 0 || d > 35 then invalid_arg "Render.digit_char";
  "0123456789abcdefghijklmnopqrstuvwxyz".[d]

(* Positional layout is pleasant only for moderate scale factors; outside
   this window fall back to scientific (the bounds echo what typical
   runtime systems, including Chez Scheme, choose). *)
let use_positional k n = k > -6 && k - n <= 21 && k <= 21

(* 'e' is a digit from base 15 on; '^' is never a digit. *)
let exponent_marker base = if base <= 14 then 'e' else '^'

let layout ~notation ~neg ~k ~base chars =
  let n = List.length chars in
  let buf = Buffer.create (n + 8) in
  if neg then Buffer.add_char buf '-';
  let positional =
    match notation with
    | Positional -> true
    | Scientific -> false
    | Auto -> use_positional k n
  in
  if positional then begin
    if k <= 0 then begin
      Buffer.add_string buf "0.";
      for _ = 1 to -k do
        Buffer.add_char buf '0'
      done;
      List.iter (Buffer.add_char buf) chars
    end
    else begin
      List.iteri
        (fun i c ->
          if i = k then Buffer.add_char buf '.';
          Buffer.add_char buf c)
        chars;
      (* pad up to the radix point when all digits sit above it *)
      for _ = n to k - 1 do
        Buffer.add_char buf '0'
      done;
      if k >= n then Buffer.add_string buf ".0"
    end
  end
  else begin
    (match chars with
    | [] -> Buffer.add_char buf '0'
    | first :: rest ->
      Buffer.add_char buf first;
      if rest <> [] then begin
        Buffer.add_char buf '.';
        List.iter (Buffer.add_char buf) rest
      end);
    Buffer.add_char buf (exponent_marker base);
    Buffer.add_string buf (string_of_int (k - 1))
  end;
  Buffer.contents buf

let free ?(notation = Auto) ?(neg = false) ~base (t : Free_format.t) =
  let chars = Array.to_list (Array.map digit_char t.digits) in
  layout ~notation ~neg ~k:t.k ~base chars

let fixed ?(notation = Auto) ?(neg = false) ~base (t : Fixed_format.t) =
  let chars =
    Array.to_list
      (Array.map
         (function Fixed_format.Digit d -> digit_char d | Fixed_format.Hash -> '#')
         t.digits)
  in
  layout ~notation ~neg ~k:t.k ~base chars

let zero ?(neg = false) () = if neg then "-0" else "0"
let infinity ?(neg = false) () = if neg then "-inf" else "inf"
let nan = "nan"
