type mode =
  | To_nearest_even
  | To_nearest_away
  | To_nearest_toward_zero
  | Toward_zero
  | Toward_negative
  | Toward_positive

let all =
  [
    To_nearest_even;
    To_nearest_away;
    To_nearest_toward_zero;
    Toward_zero;
    Toward_negative;
    Toward_positive;
  ]

let is_nearest = function
  | To_nearest_even | To_nearest_away | To_nearest_toward_zero -> true
  | Toward_zero | Toward_negative | Toward_positive -> false

(* For a positive v with rounding range (low, high) between midpoints:
   - ties-to-even: both midpoints read back as v exactly when v's mantissa
     is even (the paper's 1e23 example);
   - ties-away: the low midpoint rounds up (away from zero) to v, the high
     midpoint rounds up past v;
   - ties-toward-zero: symmetric to the above. *)
let boundary_ok mode ~mantissa_even =
  match mode with
  | To_nearest_even -> (mantissa_even, mantissa_even)
  | To_nearest_away -> (true, false)
  | To_nearest_toward_zero -> (false, true)
  | Toward_zero | Toward_negative | Toward_positive ->
    invalid_arg "Rounding.boundary_ok: directed mode has no midpoints"

let to_string = function
  | To_nearest_even -> "to-nearest-even"
  | To_nearest_away -> "to-nearest-away"
  | To_nearest_toward_zero -> "to-nearest-toward-zero"
  | Toward_zero -> "toward-zero"
  | Toward_negative -> "toward-negative"
  | Toward_positive -> "toward-positive"

let pp fmt m = Format.pp_print_string fmt (to_string m)
