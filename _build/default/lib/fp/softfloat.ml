module Nat = Bignum.Nat
module Bigint = Bignum.Bigint
module Ratio = Bignum.Ratio

type t = Value.t

(* ------------------------------------------------------------------ *)
(* Correct rounding of an exact magnitude u/v into a format.

   This is the one place in the repository where "round a positive real
   into (b, p, emin, emax)" is implemented; the reader delegates here. *)

type direction = Down | Up | Nearest of [ `Even | `Away | `Zero ]

let direction_of_mode mode ~neg =
  match (mode, neg) with
  | Rounding.To_nearest_even, _ -> Nearest `Even
  | Rounding.To_nearest_away, _ -> Nearest `Away
  | Rounding.To_nearest_toward_zero, _ -> Nearest `Zero
  | Rounding.Toward_zero, _ -> Down
  | Rounding.Toward_negative, false | Rounding.Toward_positive, true -> Down
  | Rounding.Toward_negative, true | Rounding.Toward_positive, false -> Up

let round_magnitude (fmt : Format_spec.t) dir u v =
  let limit = Format_spec.mantissa_limit fmt in
  let lower = Format_spec.min_normal_mantissa fmt in
  let quotient e =
    let num, den =
      if e >= 0 then (u, Nat.mul v (Nat.pow_int fmt.b e))
      else (Nat.mul u (Nat.pow_int fmt.b (-e)), v)
    in
    let q, r = Nat.divmod num den in
    (q, r, den)
  in
  (* Initial estimate of the exponent from bit lengths; the adjustment
     loop below fixes any estimation error, so it only needs to be
     close. *)
  let log2_b = log (float_of_int fmt.b) /. log 2. in
  let e0 =
    int_of_float
      (Float.of_int (Nat.bit_length u - Nat.bit_length v) /. log2_b)
    - fmt.p
  in
  let e = ref (min (max e0 fmt.emin) fmt.emax) in
  let state = ref (quotient !e) in
  let overflow = ref false in
  let continue = ref true in
  while !continue do
    let q, _, _ = !state in
    if Nat.compare q limit >= 0 then
      if !e >= fmt.emax then begin
        overflow := true;
        continue := false
      end
      else begin
        incr e;
        state := quotient !e
      end
    else if Nat.compare q lower < 0 && !e > fmt.emin then begin
      decr e;
      state := quotient !e
    end
    else continue := false
  done;
  if !overflow then
    (* larger than the largest finite value at full precision *)
    match dir with
    | Down -> Value.Finite { neg = false; f = Nat.pred limit; e = fmt.emax }
    | Up | Nearest _ -> Value.Inf false
  else begin
    let q, r, den = !state in
    let round_up =
      if Nat.is_zero r then false
      else begin
        match dir with
        | Down -> false
        | Up -> true
        | Nearest tie -> (
          let c = Nat.compare (Nat.shift_left r 1) den in
          if c > 0 then true
          else if c < 0 then false
          else
            match tie with
            | `Even -> not (Nat.is_even q)
            | `Away -> true
            | `Zero -> false)
      end
    in
    let q = if round_up then Nat.succ q else q in
    if Nat.is_zero q then Value.Zero false
    else if Nat.compare q limit >= 0 then
      (* the round-up cascaded past the top of the binade *)
      if !e >= fmt.emax then
        match dir with
        | Down -> assert false (* Down never rounds up *)
        | Up | Nearest _ -> Value.Inf false
      else Value.Finite { neg = false; f = lower; e = !e + 1 }
    else Value.Finite { neg = false; f = q; e = !e }
  end

let apply_sign neg (v : Value.t) =
  if not neg then v
  else
    match v with
    | Value.Zero _ -> Value.Zero true
    | Value.Inf _ -> Value.Inf true
    | Value.Nan -> Value.Nan
    | Value.Finite f -> Value.Finite { f with neg = true }

(* The sign of a zero result produced by rounding a zero-valued exact
   expression (e.g. x - x): IEEE says +0 except toward negative. *)
let zero_for mode = Value.Zero (mode = Rounding.Toward_negative)

let round_fraction ?(mode = Rounding.To_nearest_even) fmt ~neg u v =
  if Nat.is_zero u then zero_for mode
  else begin
    let dir = direction_of_mode mode ~neg in
    apply_sign neg (round_magnitude fmt dir u v)
  end

let of_ratio ?(mode = Rounding.To_nearest_even) fmt r =
  let neg = Ratio.sign r < 0 in
  let abs = Ratio.abs r in
  round_fraction ~mode fmt ~neg
    (Bigint.to_nat_exn (Ratio.num abs))
    (Bigint.to_nat_exn (Ratio.den abs))

let of_int ?mode fmt n =
  of_ratio ?mode fmt (Ratio.of_int n)

(* ------------------------------------------------------------------ *)
(* IEEE special-value plumbing *)

let neg = function
  | Value.Zero s -> Value.Zero (not s)
  | Value.Inf s -> Value.Inf (not s)
  | Value.Nan -> Value.Nan
  | Value.Finite f -> Value.Finite { f with neg = not f.neg }

let abs = function
  | Value.Zero _ -> Value.Zero false
  | Value.Inf _ -> Value.Inf false
  | Value.Nan -> Value.Nan
  | Value.Finite f -> Value.Finite { f with neg = false }

let exact fmt (v : Value.finite) = Value.to_ratio fmt v

let add ?(mode = Rounding.To_nearest_even) fmt a b =
  match (a, b) with
  | Value.Nan, _ | _, Value.Nan -> Value.Nan
  | Value.Inf sa, Value.Inf sb -> if sa = sb then Value.Inf sa else Value.Nan
  | Value.Inf s, _ | _, Value.Inf s -> Value.Inf s
  | Value.Zero sa, Value.Zero sb ->
    (* +0 + -0 = +0 except toward negative, where it is -0 *)
    if sa = sb then Value.Zero sa else zero_for mode
  | Value.Zero _, other | other, Value.Zero _ ->
    (* rounding may still be needed: the operand might not fit fmt *)
    (match other with
    | Value.Finite f -> of_ratio ~mode fmt (exact fmt f)
    | _ -> other)
  | Value.Finite fa, Value.Finite fb ->
    let sum = Ratio.add (exact fmt fa) (exact fmt fb) in
    if Ratio.sign sum = 0 then zero_for mode else of_ratio ~mode fmt sum

let sub ?mode fmt a b = add ?mode fmt a (neg b)

let mul ?(mode = Rounding.To_nearest_even) fmt a b =
  let sign_of = function
    | Value.Zero s | Value.Inf s -> s
    | Value.Finite f -> f.Value.neg
    | Value.Nan -> false
  in
  match (a, b) with
  | Value.Nan, _ | _, Value.Nan -> Value.Nan
  | Value.Inf _, Value.Zero _ | Value.Zero _, Value.Inf _ -> Value.Nan
  | Value.Inf sa, other | other, Value.Inf sa ->
    Value.Inf (sa <> sign_of other)
  | Value.Zero sa, other | other, Value.Zero sa ->
    Value.Zero (sa <> sign_of other)
  | Value.Finite fa, Value.Finite fb ->
    of_ratio ~mode fmt (Ratio.mul (exact fmt fa) (exact fmt fb))

let div ?(mode = Rounding.To_nearest_even) fmt a b =
  let sign_of = function
    | Value.Zero s | Value.Inf s -> s
    | Value.Finite f -> f.Value.neg
    | Value.Nan -> false
  in
  match (a, b) with
  | Value.Nan, _ | _, Value.Nan -> Value.Nan
  | Value.Inf _, Value.Inf _ -> Value.Nan
  | Value.Zero _, Value.Zero _ -> Value.Nan
  | Value.Inf sa, other -> Value.Inf (sa <> sign_of other)
  | other, Value.Inf sb -> Value.Zero (sign_of other <> sb)
  | Value.Zero sa, other -> Value.Zero (sa <> sign_of other)
  | other, Value.Zero sb -> Value.Inf (sign_of other <> sb)
  | Value.Finite fa, Value.Finite fb ->
    of_ratio ~mode fmt (Ratio.div (exact fmt fa) (exact fmt fb))

let fma ?(mode = Rounding.To_nearest_even) fmt a b c =
  match (a, b, c) with
  | Value.Nan, _, _ | _, Value.Nan, _ | _, _, Value.Nan -> Value.Nan
  | _ -> (
    (* infinities and zeros in the product follow mul's rules; fold the
       exact product with the addend in one rounding *)
    match (a, b) with
    | Value.Finite fa, Value.Finite fb -> (
      match c with
      | Value.Finite fc ->
        let r =
          Ratio.add (Ratio.mul (exact fmt fa) (exact fmt fb)) (exact fmt fc)
        in
        if Ratio.sign r = 0 then
          (* exact cancellation: sign per IEEE is that of the exact zero
             sum, i.e. +0 except toward negative *)
          zero_for mode
        else of_ratio ~mode fmt r
      | Value.Zero _ ->
        of_ratio ~mode fmt (Ratio.mul (exact fmt fa) (exact fmt fb))
      | other -> other)
    | _ -> add ~mode fmt (mul ~mode fmt a b) c)

let sqrt ?(mode = Rounding.To_nearest_even) fmt v =
  match v with
  | Value.Nan -> Value.Nan
  | Value.Zero s -> Value.Zero s (* IEEE: sqrt(-0) = -0 *)
  | Value.Inf false -> Value.Inf false
  | Value.Inf true -> Value.Nan
  | Value.Finite f when f.Value.neg -> Value.Nan
  | Value.Finite f ->
    (* sqrt(u/v) = sqrt(u*v)/v: one integer square root, and the exact
       remainder drives the rounding decision through the generic
       machinery: sqrt(N) with N = n2^2 + r lies strictly between n2 and
       n2+1 when r > 0, and comparisons against mantissa candidates m
       reduce to integer comparisons of N against m^2-scaled bounds.  We
       get correct rounding more simply by scaling: compute
       floor(sqrt(N * b^(2*extra))) so the integer square root carries
       p + guard digits, then round that fixed-point value exactly. *)
    let u, v_den =
      if f.Value.e >= 0 then
        (Nat.mul f.Value.f (Nat.pow_int fmt.Format_spec.b f.Value.e), Nat.one)
      else (f.Value.f, Nat.pow_int fmt.Format_spec.b (-f.Value.e))
    in
    (* sqrt(u/v) = sqrt(u*v)/v exactly *)
    let n = Nat.mul u v_den in
    let s, r = Nat.isqrt n in
    if Nat.is_zero r then
      (* Perfect square: s / v_den is the exact result.  (And if n is not
         a perfect square, sqrt(u/v_den) is irrational: a rational square
         root p/q in lowest terms forces u*v_den = (p*v_den/q)^2.) *)
      round_fraction ~mode fmt ~neg:false s v_den
    else begin
      (* t = sqrt(u/v_den) is irrational.  Bracket it tightly:
         A = s'/den < t < (s'+1)/den with den = v_den * b^guard.  The
         guard width makes the bracket far narrower than the spacing of
         representable values (and midpoints) at t's magnitude, so the
         open interval contains at most one rounding boundary; one exact
         comparison of squares then settles on which side of it t lies. *)
      let guard = (2 * fmt.p) + 4 in
      let scale = Nat.pow_int fmt.b guard in
      let s', _ = Nat.isqrt (Nat.mul n (Nat.mul scale scale)) in
      let den = Nat.mul v_den scale in
      (* t > rho for a positive rational rho=pn/pd iff u*pd^2 > pn^2*v_den *)
      let t_above rho =
        let pn = Bigint.to_nat_exn (Ratio.num rho) in
        let pd = Bigint.to_nat_exn (Ratio.den rho) in
        Nat.compare (Nat.mul u (Nat.mul pd pd)) (Nat.mul (Nat.mul pn pn) v_den)
        > 0
      in
      (* largest representable strictly below t *)
      let below = round_magnitude fmt Down s' den in
      let down_t =
        match below with
        | Value.Finite w -> (
          match Gaps.succ fmt w with
          | Value.Finite nxt when t_above (Value.to_ratio fmt nxt) ->
            Value.Finite nxt
          | _ -> below)
        | other -> other
      in
      let up_of = function
        | Value.Zero _ ->
          Value.Finite { Value.neg = false; f = Nat.one; e = fmt.emin }
        | Value.Finite w -> Gaps.succ fmt w
        | other -> other
      in
      let dir = direction_of_mode mode ~neg:false in
      match dir with
      | Down -> down_t
      | Up -> up_of down_t
      | Nearest _ -> (
        let up_t = up_of down_t in
        match (down_t, up_t) with
        | _, Value.Inf _ -> (
          (* above the largest finite value: t vs the overflow midpoint *)
          match down_t with
          | Value.Finite w ->
            let half_gap =
              Ratio.mul Ratio.half (Ratio.pow (Ratio.of_int fmt.b) w.Value.e)
            in
            if t_above (Ratio.add (Value.to_ratio fmt w) half_gap) then
              Value.Inf false
            else down_t
          | _ -> Value.Inf false)
        | Value.Zero _, Value.Finite nxt ->
          let mid = Ratio.mul Ratio.half (Value.to_ratio fmt nxt) in
          if t_above mid then up_t else zero_for mode
        | Value.Finite w, Value.Finite nxt ->
          let mid =
            Ratio.mul Ratio.half
              (Ratio.add (Value.to_ratio fmt w) (Value.to_ratio fmt nxt))
          in
          (* ties are impossible: t is irrational *)
          if t_above mid then up_t else down_t
        | _ -> down_t)
    end

(* fmod never rounds: |remainder| < |b| and the result is representable
   whenever a and b are (it needs at most as many significant digits). *)
let fmod fmt a b =
  match (a, b) with
  | Value.Nan, _ | _, Value.Nan -> Value.Nan
  | Value.Inf _, _ | _, Value.Zero _ -> Value.Nan
  | Value.Zero s, _ -> Value.Zero s
  | _, Value.Inf _ -> a
  | Value.Finite fa, Value.Finite fb ->
    let ra = exact fmt { fa with neg = false } in
    let rb = exact fmt { fb with neg = false } in
    let q = Ratio.floor (Ratio.div ra rb) in
    let rem = Ratio.sub ra (Ratio.mul (Ratio.of_bigint q) rb) in
    if Ratio.sign rem = 0 then Value.Zero fa.neg
    else
      apply_sign fa.neg
        (* exact: the rounding step cannot fire, but of_ratio also
           normalises into the format for us *)
        (of_ratio fmt rem)

let min_max_by keep fmt a b =
  match (a, b) with
  | Value.Nan, other | other, Value.Nan -> other
  | _ -> (
    let c =
      match (a, b) with
      | Value.Zero sa, Value.Zero sb ->
        Some (Bool.compare sb sa) (* -0 < +0 for min/max purposes *)
      | Value.Inf sa, Value.Inf sb -> Some (Bool.compare sb sa)
      | Value.Inf s, _ -> Some (if s then -1 else 1)
      | _, Value.Inf s -> Some (if s then 1 else -1)
      | _ ->
        let key = function
          | Value.Zero _ -> Ratio.zero
          | Value.Finite f -> Value.to_ratio fmt f
          | _ -> assert false
        in
        Some (Ratio.compare (key a) (key b))
    in
    match c with
    | Some c -> if keep c then a else b
    | None -> a)

let min_num fmt a b = min_max_by (fun c -> c <= 0) fmt a b
let max_num fmt a b = min_max_by (fun c -> c >= 0) fmt a b

let convert ?mode ~from fmt v =
  match v with
  | Value.Zero _ | Value.Inf _ | Value.Nan -> v
  | Value.Finite f ->
    let r = Value.to_ratio from f in
    of_ratio ?mode fmt r

let compare_total fmt a b =
  let key = function
    | Value.Zero _ -> Ratio.zero
    | Value.Finite f -> Value.to_ratio fmt f
    | Value.Inf _ | Value.Nan -> assert false
  in
  match (a, b) with
  | Value.Nan, _ | _, Value.Nan -> None
  | Value.Inf sa, Value.Inf sb -> Some (Bool.compare sb sa)
  | Value.Inf s, _ -> Some (if s then -1 else 1)
  | _, Value.Inf s -> Some (if s then 1 else -1)
  | _ -> Some (Ratio.compare (key a) (key b))

let equal = Value.equal
