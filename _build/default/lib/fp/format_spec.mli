(** Floating-point format descriptors.

    A format is the paper's [(b, p)] pair plus exponent bounds: finite
    values are [±f × b^e] with [0 <= f < b^p] and [emin <= e <= emax],
    where [f] is the mantissa {e as an integer} (the paper's convention
    throughout Section 2).  [e = emin] admits denormalized mantissas
    [f < b^(p-1)]; larger exponents require normalized ones. *)

type t = private {
  b : int;  (** input base, almost always 2 *)
  p : int;  (** mantissa size in base-[b] digits *)
  emin : int;  (** minimum exponent of the integer mantissa *)
  emax : int;  (** maximum exponent of the integer mantissa *)
  name : string;
}

val make : ?name:string -> b:int -> p:int -> emin:int -> emax:int -> unit -> t
(** @raise Invalid_argument on a nonsensical combination. *)

val binary16 : t
(** IEEE half precision: p = 11, e in [-24, 5]. *)

val bfloat16 : t
(** Google brain float: p = 8, e in [-133, 120] — binary32's exponent
    range with a 7-bit stored mantissa. *)

val binary32 : t
(** IEEE single precision: p = 24, e in [-149, 104]. *)

val binary64 : t
(** IEEE double precision: p = 53, e in [-1074, 971]. *)

val binary80 : t
(** x87 double-extended (64-bit mantissa, no hidden bit): p = 64,
    e in [-16445, 16320]. *)

val binary128 : t
(** IEEE quad precision: p = 113, e in [-16494, 16271]. *)

val decimal64_like : t
(** A base-10 format shaped like IEEE decimal64 (p = 16 digits,
    e in [-398, 369]).  The printing algorithm is generic in the input
    base, so decimal floats print (trivially, but through the same code
    path) too; cross-base output exercises the general machinery. *)

val mantissa_limit : t -> Bignum.Nat.t
(** [b^p], the exclusive upper bound of mantissas. *)

val min_normal_mantissa : t -> Bignum.Nat.t
(** [b^(p-1)], the smallest normalized mantissa. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
