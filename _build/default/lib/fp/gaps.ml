module Nat = Bignum.Nat
module Ratio = Bignum.Ratio

let check_positive_canonical (fmt : Format_spec.t) (v : Value.finite) =
  if v.neg then invalid_arg "Gaps: negative value (print the magnitude)";
  if Nat.is_zero v.f then invalid_arg "Gaps: zero mantissa";
  if
    Nat.compare v.f (Format_spec.mantissa_limit fmt) >= 0
    || v.e < fmt.emin || v.e > fmt.emax
    || (v.e > fmt.emin
        && Nat.compare v.f (Format_spec.min_normal_mantissa fmt) < 0)
  then invalid_arg "Gaps: value not canonical in format"

let succ (fmt : Format_spec.t) (v : Value.finite) =
  check_positive_canonical fmt v;
  let f = Nat.succ v.f in
  if Nat.compare f (Format_spec.mantissa_limit fmt) < 0 then
    Value.Finite { v with f }
  else if v.e + 1 <= fmt.emax then
    Value.Finite { v with f = Format_spec.min_normal_mantissa fmt; e = v.e + 1 }
  else Value.Inf false

let gap_low_is_narrow (fmt : Format_spec.t) (v : Value.finite) =
  v.e > fmt.emin && Nat.equal v.f (Format_spec.min_normal_mantissa fmt)

let pred (fmt : Format_spec.t) (v : Value.finite) =
  check_positive_canonical fmt v;
  if gap_low_is_narrow fmt v then
    Value.Finite
      { v with f = Nat.pred (Format_spec.mantissa_limit fmt); e = v.e - 1 }
  else begin
    let f = Nat.pred v.f in
    if Nat.is_zero f then Value.Zero false else Value.Finite { v with f }
  end

(* Half-gap midpoints.  Per Table 1 the upper half-gap is always b^e/2,
   and the lower one is b^(e-1)/2 exactly when the gap below is narrow. *)
let rounding_range (fmt : Format_spec.t) (v : Value.finite) =
  check_positive_canonical fmt v;
  let value = Value.to_ratio fmt v in
  let half_pow k =
    Ratio.div
      (Ratio.pow (Ratio.of_int fmt.b) k)
      (Ratio.of_int 2)
  in
  let high = Ratio.add value (half_pow v.e) in
  let low =
    Ratio.sub value (half_pow (if gap_low_is_narrow fmt v then v.e - 1 else v.e))
  in
  (low, high)
