(** Floating-point neighbours and rounding ranges (paper, Section 2.1-2.2).

    Given a positive [v = f × b^e], the algorithm needs its successor [v⁺]
    and predecessor [v⁻] to delimit the set of reals that round to [v].
    The gaps are uneven: when [f = b^(p-1)] and [e > emin], the gap below
    [v] is [b] times narrower than the gap above (the paper's special case
    in step 1 of the procedure). *)

val succ : Format_spec.t -> Value.finite -> Value.t
(** Successor of a positive canonical value; [Inf false] past the largest
    finite value. *)

val pred : Format_spec.t -> Value.finite -> Value.t
(** Predecessor of a positive canonical value; [Zero false] below the
    smallest denormal. *)

val gap_low_is_narrow : Format_spec.t -> Value.finite -> bool
(** True exactly when [f = b^(p-1)] and [e > emin]: the predecessor gap is
    [b] times narrower than the successor gap. *)

val rounding_range :
  Format_spec.t -> Value.finite -> Bignum.Ratio.t * Bignum.Ratio.t
(** [(low, high)] midpoints of a positive value's rounding range:
    [low = (v⁻ + v)/2] and [high = (v + v⁺)/2].  At the extremes the
    missing neighbour is replaced by the half-gap extrapolation the paper
    uses ([v⁺ = v + b^e] beyond the top of the range, and [v⁻ = v - b^emin]
    below the bottom). *)
