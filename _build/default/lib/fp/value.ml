module Nat = Bignum.Nat
module Bigint = Bignum.Bigint
module Ratio = Bignum.Ratio

type finite = { neg : bool; f : Nat.t; e : int }

type t = Zero of bool | Finite of finite | Inf of bool | Nan

let finite ?(neg = false) ~f ~e () =
  if Nat.is_zero f then Zero neg else Finite { neg; f; e }

let finite_int ?neg ~f ~e () = finite ?neg ~f:(Nat.of_int f) ~e ()

let normalize (fmt : Format_spec.t) v =
  let limit = Format_spec.mantissa_limit fmt in
  let lower = Format_spec.min_normal_mantissa fmt in
  let f = ref v.f and e = ref v.e in
  while Nat.compare !f limit >= 0 do
    let q, r = Nat.divmod_int !f fmt.b in
    if r <> 0 then invalid_arg "Value.normalize: mantissa does not fit";
    f := q;
    incr e
  done;
  while Nat.compare !f lower < 0 && !e > fmt.emin do
    f := Nat.mul_int !f fmt.b;
    decr e
  done;
  if !e < fmt.emin || !e > fmt.emax then
    invalid_arg "Value.normalize: exponent out of range";
  if !e > fmt.emin && Nat.compare !f lower < 0 then
    invalid_arg "Value.normalize: denormal mantissa above emin";
  { v with f = !f; e = !e }

let is_normalized (fmt : Format_spec.t) v =
  Nat.compare v.f (Format_spec.min_normal_mantissa fmt) >= 0
  && Nat.compare v.f (Format_spec.mantissa_limit fmt) < 0

let is_denormalized (fmt : Format_spec.t) v =
  v.e = fmt.emin && not (is_normalized fmt v)

let compare_finite (fmt : Format_spec.t) a b =
  match (a.neg, b.neg) with
  | false, true -> 1
  | true, false -> -1
  | _ ->
    let mag =
      if a.e >= b.e then
        Nat.compare (Nat.mul a.f (Nat.pow_int fmt.b (a.e - b.e))) b.f
      else Nat.compare a.f (Nat.mul b.f (Nat.pow_int fmt.b (b.e - a.e)))
    in
    if a.neg then -mag else mag

let to_ratio (fmt : Format_spec.t) v =
  let mag =
    if v.e >= 0 then
      Ratio.of_bigint (Bigint.of_nat (Nat.mul v.f (Nat.pow_int fmt.b v.e)))
    else
      Ratio.make
        (Bigint.of_nat v.f)
        (Bigint.of_nat (Nat.pow_int fmt.b (-v.e)))
  in
  if v.neg then Ratio.neg mag else mag

let equal a b =
  match (a, b) with
  | Zero sa, Zero sb -> sa = sb
  | Inf sa, Inf sb -> sa = sb
  | Nan, Nan -> true
  | Finite a, Finite b -> a.neg = b.neg && Nat.equal a.f b.f && a.e = b.e
  | _ -> false

let to_string = function
  | Zero false -> "0"
  | Zero true -> "-0"
  | Inf false -> "+inf"
  | Inf true -> "-inf"
  | Nan -> "nan"
  | Finite { neg; f; e } ->
    Printf.sprintf "%s%s*b^%d" (if neg then "-" else "") (Nat.to_string f) e

let pp fmt v = Format.pp_print_string fmt (to_string v)
