(** Rounding rules of the floating-point {e reader}.

    The printer's job (paper, Section 1) is to emit a string that converts
    back to the same float {e under whatever rounding mode the reader
    uses}.  The paper models nearest-style readers through the two booleans
    [low_ok]/[high_ok] saying whether the boundary values of [v]'s rounding
    range themselves convert to [v]; directed readers are an extension we
    support by widening the range to a whole gap (see {!Dragon.Boundaries}). *)

type mode =
  | To_nearest_even
      (** IEEE 754 default: ties go to the even mantissa. *)
  | To_nearest_away  (** Ties go away from zero. *)
  | To_nearest_toward_zero  (** Ties go toward zero. *)
  | Toward_zero  (** Truncation: positive [v] owns [[v, v+)]. *)
  | Toward_negative  (** Floor: positive [v] owns [[v, v+)]. *)
  | Toward_positive  (** Ceiling: positive [v] owns [(v-, v]]. *)

val all : mode list

val is_nearest : mode -> bool

val boundary_ok : mode -> mantissa_even:bool -> bool * bool
(** [boundary_ok mode ~mantissa_even] is [(low_ok, high_ok)] for a
    nearest-style [mode]: whether the lower/upper midpoint of a positive
    [v]'s rounding range reads back as [v].
    @raise Invalid_argument on directed modes, which have no midpoints. *)

val to_string : mode -> string
val pp : Format.formatter -> mode -> unit
