lib/fp/gaps.mli: Bignum Format_spec Value
