lib/fp/softfloat.ml: Bignum Bool Float Format_spec Gaps Rounding Value
