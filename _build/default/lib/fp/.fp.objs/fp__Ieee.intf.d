lib/fp/ieee.mli: Format_spec Value
