lib/fp/format_spec.mli: Bignum Format
