lib/fp/format_spec.ml: Bignum Format
