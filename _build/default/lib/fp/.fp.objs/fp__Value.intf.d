lib/fp/value.mli: Bignum Format Format_spec
