lib/fp/rounding.mli: Format
