lib/fp/gaps.ml: Bignum Format_spec Value
