lib/fp/ieee.ml: Bignum Float Format_spec Int64 Value
