lib/fp/softfloat.mli: Bignum Format_spec Rounding Value
