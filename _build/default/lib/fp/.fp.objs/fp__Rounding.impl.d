lib/fp/rounding.ml: Format
