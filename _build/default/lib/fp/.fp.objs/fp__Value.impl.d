lib/fp/value.ml: Bignum Format Format_spec Printf
