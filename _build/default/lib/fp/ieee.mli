(** IEEE 754 interchange encodings: bit patterns ↔ decomposed values.

    This is the paper's Section 2.1 made executable: a [w]-bit datum with a
    sign bit, a biased exponent and a mantissa field with a hidden bit.
    The generic [spec] covers binary16/32/64 (and any custom hidden-bit
    format); OCaml [float]s get dedicated helpers through their binary64
    bits. *)

type spec = private {
  exp_bits : int;
  mant_bits : int;  (** stored mantissa field width; p = mant_bits + 1 *)
  bias : int;
  format : Format_spec.t;
}

val spec_binary16 : spec
val spec_bfloat16 : spec
val spec_binary32 : spec
val spec_binary64 : spec

val make_spec : ?name:string -> exp_bits:int -> mant_bits:int -> unit -> spec
(** A custom hidden-bit binary format, bias [2^(exp_bits-1) - 1]. *)

val width : spec -> int
(** Total encoding width in bits (1 + exp_bits + mant_bits). *)

val decompose_bits : spec -> int64 -> Value.t
(** Interpret the low [width spec] bits as an IEEE datum. *)

val compose_bits : spec -> Value.t -> int64
(** Exact encoding of a representable value.
    @raise Invalid_argument if the value is not representable (no rounding
    is performed here; use {!Reader} to round). *)

(** {1 OCaml floats (binary64)} *)

val decompose : float -> Value.t
val compose : Value.t -> float

val succ_float : float -> float
(** Next representable double up (bit-level; handles denormals). *)

val pred_float : float -> float
