(** Correctly rounded software floating-point arithmetic, in any
    {!Format_spec} and any {!Rounding} mode.

    The paper's algorithms print values of arbitrary formats; this module
    lets the rest of the repository {e compute} in those formats too —
    binary128 examples, binary16 sweeps, decimal-enclosure demos.  All
    operations follow IEEE 754 semantics for special values (signed
    zeros, infinities, NaN propagation, overflow and gradual underflow),
    and every finite result is correctly rounded: the exact rational
    result is formed with bignum arithmetic and rounded once.

    This is an oracle-grade implementation (clarity over speed). *)

type t = Value.t

val of_int : ?mode:Rounding.mode -> Format_spec.t -> int -> t
val of_ratio : ?mode:Rounding.mode -> Format_spec.t -> Bignum.Ratio.t -> t

val round_fraction :
  ?mode:Rounding.mode ->
  Format_spec.t ->
  neg:bool ->
  Bignum.Nat.t ->
  Bignum.Nat.t ->
  t
(** [round_fraction fmt ~neg u v] rounds [±u/v] ([v > 0]) into the format:
    the single place where "round a real into (b, p, emin, emax)" lives.
    {!Reader} delegates here.  Overflow saturates or goes infinite per
    mode; underflow passes through the denormals to a signed zero. *)

val neg : t -> t
val abs : t -> t

val add : ?mode:Rounding.mode -> Format_spec.t -> t -> t -> t
val sub : ?mode:Rounding.mode -> Format_spec.t -> t -> t -> t
val mul : ?mode:Rounding.mode -> Format_spec.t -> t -> t -> t
val div : ?mode:Rounding.mode -> Format_spec.t -> t -> t -> t

val fma : ?mode:Rounding.mode -> Format_spec.t -> t -> t -> t -> t
(** [fma fmt a b c] is [a*b + c] with a single rounding. *)

val sqrt : ?mode:Rounding.mode -> Format_spec.t -> t -> t

val fmod : Format_spec.t -> t -> t -> t
(** C's [fmod] / OCaml's [Float.rem]: [a - b * trunc(a/b)], exact (never
    rounds), with the sign of [a].  [fmod x inf = x]; [fmod x 0] and
    [fmod inf x] are NaN. *)

val min_num : Format_spec.t -> t -> t -> t
val max_num : Format_spec.t -> t -> t -> t
(** IEEE 754 minNum/maxNum: a quiet NaN loses against a number; [-0] is
    treated as less than [+0]. *)

val convert :
  ?mode:Rounding.mode -> from:Format_spec.t -> Format_spec.t -> t -> t
(** Correctly rounded conversion between formats (e.g. binary64 →
    bfloat16): one rounding of the exact value, with overflow and gradual
    underflow per mode. *)

val compare_total : Format_spec.t -> t -> t -> int option
(** Numeric comparison; [None] when either operand is NaN. *)

val equal : t -> t -> bool
(** Structural equality (distinguishes [-0] from [0]; [Nan] = [Nan]);
    re-exported from {!Value}. *)
