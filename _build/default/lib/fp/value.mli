(** Floating-point values decomposed into sign, integer mantissa and
    exponent — the form the printing algorithm consumes. *)

type finite = {
  neg : bool;
  f : Bignum.Nat.t;  (** integer mantissa, strictly positive *)
  e : int;  (** value is [±f × b^e] *)
}

type t =
  | Zero of bool  (** signed zero; [true] is negative *)
  | Finite of finite
  | Inf of bool
  | Nan

val finite : ?neg:bool -> f:Bignum.Nat.t -> e:int -> unit -> t
(** Builds [Finite] (or [Zero] if [f] is zero). *)

val finite_int : ?neg:bool -> f:int -> e:int -> unit -> t

val normalize : Format_spec.t -> finite -> finite
(** Canonical form within a format: shift the mantissa up until it is
    normalized ([f >= b^(p-1)]) or the exponent bottoms out at [emin].
    @raise Invalid_argument if the value cannot fit the format. *)

val is_normalized : Format_spec.t -> finite -> bool
val is_denormalized : Format_spec.t -> finite -> bool

val compare_finite : Format_spec.t -> finite -> finite -> int
(** Numeric comparison (handles differing exponents and signs). *)

val to_ratio : Format_spec.t -> finite -> Bignum.Ratio.t
(** Exact value [±f × b^e] as a rational. *)

val equal : t -> t -> bool
(** Structural equality; [Nan] equals [Nan], zeros compare with sign. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
