module Nat = Bignum.Nat

type spec = {
  exp_bits : int;
  mant_bits : int;
  bias : int;
  format : Format_spec.t;
}

let make_spec ?name ~exp_bits ~mant_bits () =
  if exp_bits < 2 || mant_bits < 1 then
    invalid_arg "Ieee.make_spec: field widths too small";
  if 1 + exp_bits + mant_bits > 64 then
    invalid_arg "Ieee.make_spec: encodings wider than 64 bits not supported";
  let bias = (1 lsl (exp_bits - 1)) - 1 in
  let emin = 1 - bias - mant_bits in
  let emax = ((1 lsl exp_bits) - 2) - bias - mant_bits in
  {
    exp_bits;
    mant_bits;
    bias;
    format = Format_spec.make ?name ~b:2 ~p:(mant_bits + 1) ~emin ~emax ();
  }

let spec_binary16 = make_spec ~name:"binary16" ~exp_bits:5 ~mant_bits:10 ()
let spec_bfloat16 = make_spec ~name:"bfloat16" ~exp_bits:8 ~mant_bits:7 ()
let spec_binary32 = make_spec ~name:"binary32" ~exp_bits:8 ~mant_bits:23 ()
let spec_binary64 = make_spec ~name:"binary64" ~exp_bits:11 ~mant_bits:52 ()

let width spec = 1 + spec.exp_bits + spec.mant_bits

let field_mask n = Int64.sub (Int64.shift_left 1L n) 1L

let decompose_bits spec bits =
  let w = width spec in
  let bits = if w = 64 then bits else Int64.logand bits (field_mask w) in
  let m = Int64.to_int (Int64.logand bits (field_mask spec.mant_bits)) in
  let e_field =
    Int64.to_int
      (Int64.logand
         (Int64.shift_right_logical bits spec.mant_bits)
         (field_mask spec.exp_bits))
  in
  let neg =
    Int64.equal
      (Int64.logand
         (Int64.shift_right_logical bits (spec.exp_bits + spec.mant_bits))
         1L)
      1L
  in
  let e_max_field = (1 lsl spec.exp_bits) - 1 in
  if e_field = 0 then
    if m = 0 then Value.Zero neg
    else Value.finite ~neg ~f:(Nat.of_int m) ~e:spec.format.emin ()
  else if e_field = e_max_field then if m = 0 then Value.Inf neg else Value.Nan
  else
    Value.finite ~neg
      ~f:(Nat.of_int (m lor (1 lsl spec.mant_bits)))
      ~e:(e_field - spec.bias - spec.mant_bits)
      ()

let compose_bits spec value =
  let sign_bit neg =
    if neg then Int64.shift_left 1L (spec.exp_bits + spec.mant_bits) else 0L
  in
  let with_exp_field e_field rest =
    Int64.logor (Int64.shift_left (Int64.of_int e_field) spec.mant_bits) rest
  in
  let e_max_field = (1 lsl spec.exp_bits) - 1 in
  match value with
  | Value.Zero neg -> sign_bit neg
  | Value.Inf neg -> Int64.logor (sign_bit neg) (with_exp_field e_max_field 0L)
  | Value.Nan ->
    with_exp_field e_max_field (Int64.shift_left 1L (spec.mant_bits - 1))
  | Value.Finite fin ->
    let fin = Value.normalize spec.format fin in
    let f = Nat.to_int_exn fin.f in
    let hidden = 1 lsl spec.mant_bits in
    if fin.e = spec.format.emin && f < hidden then
      (* denormal: biased exponent field 0 *)
      Int64.logor (sign_bit fin.neg) (Int64.of_int f)
    else begin
      let e_field = fin.e + spec.bias + spec.mant_bits in
      assert (1 <= e_field && e_field < e_max_field);
      Int64.logor (sign_bit fin.neg)
        (with_exp_field e_field (Int64.of_int (f - hidden)))
    end

let decompose x = decompose_bits spec_binary64 (Int64.bits_of_float x)
let compose v = Int64.float_of_bits (compose_bits spec_binary64 v)

let succ_float x =
  if Float.is_nan x then x
  else if x = Float.infinity then x
  else if x = 0. then Int64.float_of_bits 1L (* smallest positive denormal *)
  else begin
    let bits = Int64.bits_of_float x in
    if x > 0. then Int64.float_of_bits (Int64.add bits 1L)
    else Int64.float_of_bits (Int64.sub bits 1L)
  end

let pred_float x = -.succ_float (-.x)
