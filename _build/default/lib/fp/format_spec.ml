module Nat = Bignum.Nat

type t = { b : int; p : int; emin : int; emax : int; name : string }

let make ?(name = "custom") ~b ~p ~emin ~emax () =
  if b < 2 then invalid_arg "Format_spec.make: base must be >= 2";
  if p < 1 then invalid_arg "Format_spec.make: precision must be >= 1";
  if emin > emax then invalid_arg "Format_spec.make: emin > emax";
  { b; p; emin; emax; name }

(* IEEE interchange formats, with exponents expressed for the integer
   mantissa: e = biased_exponent - bias - (p - 1). *)
let binary16 = make ~name:"binary16" ~b:2 ~p:11 ~emin:(-24) ~emax:5 ()
let bfloat16 = make ~name:"bfloat16" ~b:2 ~p:8 ~emin:(-133) ~emax:120 ()
let binary32 = make ~name:"binary32" ~b:2 ~p:24 ~emin:(-149) ~emax:104 ()
let binary64 = make ~name:"binary64" ~b:2 ~p:53 ~emin:(-1074) ~emax:971 ()
let binary80 = make ~name:"binary80" ~b:2 ~p:64 ~emin:(-16445) ~emax:16320 ()

let binary128 =
  make ~name:"binary128" ~b:2 ~p:113 ~emin:(-16494) ~emax:16271 ()

let decimal64_like =
  make ~name:"decimal64-like" ~b:10 ~p:16 ~emin:(-398) ~emax:369 ()

let mantissa_limit t = Nat.pow_int t.b t.p
let min_normal_mantissa t = Nat.pow_int t.b (t.p - 1)

let equal a b = a = b

let pp fmt t =
  Format.fprintf fmt "%s(b=%d, p=%d, e=[%d,%d])" t.name t.b t.p t.emin t.emax
