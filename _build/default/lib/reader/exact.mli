(** Accurate floating-point input (Clinger [1], Algorithm M style).

    The paper's free-format guarantee is stated relative to "an accurate
    floating-point input routine": the printed string must convert back to
    the very same float, whatever rounding rule the reader applies.  This
    module is that routine, built on exact integer arithmetic so there is
    no double-rounding anywhere: given a decimal string and a target
    format, it returns the {e correctly rounded} value under any of the six
    rounding modes in {!Fp.Rounding}.

    It doubles as the verification half of every round-trip test in this
    repository. *)

type decimal = {
  neg : bool;
  digits : Bignum.Nat.t;  (** the digit string read as an integer *)
  exp10 : int;  (** value is [±digits × 10^exp10] *)
}

type parsed = Number of decimal | Infinity of bool | Not_a_number

val parse : string -> (parsed, string) result
(** Accepts [[+-]? digits [. digits]? ([eE] [+-]? digits)?], plus ["inf"],
    ["infinity"] and ["nan"] (case-insensitive), with [_] digit separators.
    The error case carries a human-readable reason. *)

val read_decimal :
  ?mode:Fp.Rounding.mode -> Fp.Format_spec.t -> decimal -> Fp.Value.t
(** Correctly rounded conversion of an exact decimal into the format.
    Overflow follows IEEE semantics per mode (directed modes toward zero
    saturate at the largest finite value); underflow reaches denormals and
    then signed zero.  Default mode is round-to-nearest-even. *)

val read :
  ?mode:Fp.Rounding.mode -> Fp.Format_spec.t -> string -> (Fp.Value.t, string) result
(** [parse] followed by {!read_decimal}. *)

val read_float : ?mode:Fp.Rounding.mode -> string -> (float, string) result
(** Convenience wrapper targeting binary64 and returning an OCaml float. *)

val read_ratio :
  ?mode:Fp.Rounding.mode -> Fp.Format_spec.t -> Bignum.Ratio.t -> Fp.Value.t
(** Correctly rounded conversion of an arbitrary (possibly negative)
    rational — the general core the decimal entry points wrap. *)

val read_in_base :
  ?mode:Fp.Rounding.mode ->
  base:int ->
  Fp.Format_spec.t ->
  string ->
  (Fp.Value.t, string) result
(** Read a string written in an arbitrary base (2-36), as produced by
    {!Dragon.Render}: digits [0-9a-z] (case-insensitive), an optional
    radix point, and an optional exponent part introduced by ['e'] (bases
    up to 14) or ['^'] (all bases), whose value is a {e decimal} integer
    scaling by powers of [base].  [#] characters are accepted and read as
    zero digits, so fixed-format output with significance marks reads
    back directly. *)
