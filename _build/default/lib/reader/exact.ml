module Nat = Bignum.Nat
module Bigint = Bignum.Bigint
module Ratio = Bignum.Ratio
module Format_spec = Fp.Format_spec
module Value = Fp.Value
module Rounding = Fp.Rounding

type decimal = { neg : bool; digits : Nat.t; exp10 : int }

type parsed = Number of decimal | Infinity of bool | Not_a_number

(* ------------------------------------------------------------------ *)
(* Parsing *)

let parse s =
  let len = String.length s in
  let pos = ref 0 in
  let error what = Error (Printf.sprintf "%s at index %d in %S" what !pos s) in
  if len = 0 then Error "empty string"
  else begin
    let neg =
      match s.[0] with
      | '-' ->
        incr pos;
        true
      | '+' ->
        incr pos;
        false
      | _ -> false
    in
    let rest = String.lowercase_ascii (String.sub s !pos (len - !pos)) in
    match rest with
    | "inf" | "infinity" -> Ok (Infinity neg)
    | "nan" -> Ok Not_a_number
    | _ ->
      let digits = Buffer.create 32 in
      let frac_len = ref 0 in
      let seen_digit = ref false in
      let take_digits ~counting =
        let continue = ref true in
        while !continue && !pos < len do
          match s.[!pos] with
          | '0' .. '9' as c ->
            Buffer.add_char digits c;
            seen_digit := true;
            if counting then incr frac_len;
            incr pos
          | '_' -> incr pos
          | _ -> continue := false
        done
      in
      take_digits ~counting:false;
      if !pos < len && s.[!pos] = '.' then begin
        incr pos;
        take_digits ~counting:true
      end;
      if not !seen_digit then error "expected digits"
      else begin
        let exp =
          if !pos < len && (s.[!pos] = 'e' || s.[!pos] = 'E') then begin
            incr pos;
            let esign =
              if !pos < len && s.[!pos] = '-' then (
                incr pos;
                -1)
              else if !pos < len && s.[!pos] = '+' then (
                incr pos;
                1)
              else 1
            in
            let start = !pos in
            let v = ref 0 in
            while !pos < len && s.[!pos] >= '0' && s.[!pos] <= '9' do
              v := (!v * 10) + (Char.code s.[!pos] - Char.code '0');
              incr pos
            done;
            if !pos = start then None else Some (esign * !v)
          end
          else Some 0
        in
        match exp with
        | None -> error "expected exponent digits"
        | Some exp ->
          if !pos <> len then error "trailing characters"
          else
            Ok
              (Number
                 {
                   neg;
                   digits = Nat.of_string ("0" ^ Buffer.contents digits);
                   exp10 = exp - !frac_len;
                 })
      end
  end

(* ------------------------------------------------------------------ *)
(* Correctly rounded conversion *)

(* Rounding an exact magnitude into the format lives in Fp.Softfloat
   (round_fraction); the reader only assembles u/v from text. *)

let read_ratio ?(mode = Rounding.To_nearest_even) fmt r =
  if Ratio.sign r = 0 then Value.Zero false
  else begin
    let abs = Ratio.abs r in
    Fp.Softfloat.round_fraction ~mode fmt ~neg:(Ratio.sign r < 0)
      (Bigint.to_nat_exn (Ratio.num abs))
      (Bigint.to_nat_exn (Ratio.den abs))
  end

let read_decimal ?(mode = Rounding.To_nearest_even) fmt (d : decimal) =
  if Nat.is_zero d.digits then Value.Zero d.neg
  else begin
    let u, v =
      if d.exp10 >= 0 then (Nat.mul d.digits (Nat.pow_int 10 d.exp10), Nat.one)
      else (d.digits, Nat.pow_int 10 (-d.exp10))
    in
    Fp.Softfloat.round_fraction ~mode fmt ~neg:d.neg u v
  end

let read_in_base ?mode ~base fmt s =
  if base < 2 || base > 36 then invalid_arg "Reader.read_in_base: base";
  let len = String.length s in
  let err what = Error (Printf.sprintf "%s in %S" what s) in
  if len = 0 then err "empty string"
  else begin
    let pos = ref 0 in
    let neg =
      match s.[0] with
      | '-' ->
        incr pos;
        true
      | '+' ->
        incr pos;
        false
      | _ -> false
    in
    let digit_value c =
      let v =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'z' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'Z' -> Char.code c - Char.code 'A' + 10
        | '#' -> 0 (* insignificant positions read as zero *)
        | _ -> -1
      in
      if v >= 0 && v < base then Some v else None
    in
    let exp_marker c = c = '^' || (base <= 14 && (c = 'e' || c = 'E')) in
    let digits = ref [] in
    let ndigits = ref 0 in
    let frac_len = ref 0 in
    let in_frac = ref false in
    let parse_error = ref None in
    let stop = ref false in
    while (not !stop) && !pos < len && !parse_error = None do
      let c = s.[!pos] in
      if exp_marker c then stop := true
      else begin
        (match c with
        | '.' ->
          if !in_frac then parse_error := Some "second radix point"
          else in_frac := true
        | '_' -> ()
        | c -> (
          match digit_value c with
          | Some d ->
            digits := d :: !digits;
            incr ndigits;
            if !in_frac then incr frac_len
          | None -> parse_error := Some "unexpected character"));
        incr pos
      end
    done;
    match !parse_error with
    | Some e -> err e
    | None ->
      if !ndigits = 0 then err "no digits"
      else begin
        let exp =
          if !stop then begin
            (* exponent part: decimal integer *)
            incr pos;
            let esign =
              if !pos < len && s.[!pos] = '-' then (
                incr pos;
                -1)
              else if !pos < len && s.[!pos] = '+' then (
                incr pos;
                1)
              else 1
            in
            let start = !pos in
            let v = ref 0 in
            while !pos < len && s.[!pos] >= '0' && s.[!pos] <= '9' do
              v := (!v * 10) + (Char.code s.[!pos] - Char.code '0');
              incr pos
            done;
            if !pos = start || !pos <> len then None else Some (esign * !v)
          end
          else if !pos <> len then None
          else Some 0
        in
        match exp with
        | None -> err "malformed exponent"
        | Some exp ->
          let mantissa =
            Nat.of_base_digits ~base (Array.of_list (List.rev !digits))
          in
          if Nat.is_zero mantissa then Ok (Value.Zero neg)
          else begin
            let scale = exp - !frac_len in
            let u, v =
              if scale >= 0 then (Nat.mul mantissa (Nat.pow_int base scale), Nat.one)
              else (mantissa, Nat.pow_int base (-scale))
            in
            Ok (Fp.Softfloat.round_fraction ?mode fmt ~neg u v)
          end
      end
  end

let read ?mode fmt s =
  match parse s with
  | Error _ as e -> e
  | Ok (Infinity neg) -> Ok (Value.Inf neg)
  | Ok Not_a_number -> Ok Value.Nan
  | Ok (Number d) -> Ok (read_decimal ?mode fmt d)

let read_float ?mode s =
  match read ?mode Format_spec.binary64 s with
  | Error _ as e -> e
  | Ok v -> Ok (Fp.Ieee.compose v)
