lib/reader/reader.mli: Exact Fast_reader Hex_reader
