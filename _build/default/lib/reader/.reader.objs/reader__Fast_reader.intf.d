lib/reader/fast_reader.mli: Exact
