lib/reader/exact.ml: Array Bignum Buffer Char Fp List Printf String
