lib/reader/fast_reader.ml: Array Bignum Exact Ext64 Float Fp Int64
