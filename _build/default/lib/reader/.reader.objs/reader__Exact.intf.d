lib/reader/exact.mli: Bignum Fp
