lib/reader/hex_reader.ml: Bignum Char Fp Printf String
