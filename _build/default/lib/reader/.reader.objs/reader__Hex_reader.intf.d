lib/reader/hex_reader.mli: Fp
