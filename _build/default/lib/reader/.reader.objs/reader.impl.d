lib/reader/reader.ml: Exact Fast_reader Hex_reader
