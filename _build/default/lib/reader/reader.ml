(* Facade of the reader library: the exact bignum reader at the top level
   (historic API), the certified fast path under [Fast]. *)

include Exact
module Fast = Fast_reader
module Hex = Hex_reader
