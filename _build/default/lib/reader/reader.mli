(** Accurate floating-point input.

    The top-level API is the exact bignum reader (see {!Exact}); the
    Clinger-style certified fast path lives under {!Fast}. *)

include module type of struct
  include Exact
end

module Fast : module type of Fast_reader
module Hex : module type of Hex_reader
