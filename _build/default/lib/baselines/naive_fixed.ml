module Nat = Bignum.Nat
module Value = Fp.Value

(* round(v * base^(n-k)) computed exactly for v = f * b^e. *)
let scaled_round ~base ~b ~f ~e shift =
  let num =
    let n = if e > 0 then Nat.mul f (Nat.pow_int b e) else f in
    if shift > 0 then Nat.mul n (Nat.pow_int base shift) else n
  in
  let den =
    let d = if e < 0 then Nat.pow_int b (-e) else Nat.one in
    if shift < 0 then Nat.mul d (Nat.pow_int base (-shift)) else d
  in
  let q, r = Nat.divmod num den in
  let c = Nat.compare (Nat.shift_left r 1) den in
  if c > 0 || (c = 0 && not (Nat.is_even q)) then Nat.succ q else q

let convert ?(base = 10) ~ndigits fmt (v : Value.finite) =
  if ndigits < 1 then invalid_arg "Naive_fixed.convert: ndigits < 1";
  if Nat.is_zero v.Value.f then invalid_arg "Naive_fixed.convert: zero";
  let b = fmt.Fp.Format_spec.b in
  (* first-digit position estimate, then exact correction below *)
  let log2_b = if b = 2 then 1. else log (float_of_int b) /. log 2. in
  let k =
    ref
      (int_of_float
         (Float.ceil
            (((float_of_int v.Value.e *. log2_b)
             +. float_of_int (Nat.bit_length v.Value.f - 1))
             /. (log (float_of_int base) /. log 2.)
            -. 1e-10)))
  in
  let limit = Nat.pow_int base ndigits in
  let lower = Nat.pow_int base (ndigits - 1) in
  let q = ref (scaled_round ~base ~b ~f:v.Value.f ~e:v.Value.e (ndigits - !k)) in
  while Nat.compare !q limit >= 0 do
    (* estimate was low (or the rounding cascaded): drop a digit *)
    incr k;
    q :=
      (if Nat.equal !q limit then lower
       else scaled_round ~base ~b ~f:v.Value.f ~e:v.Value.e (ndigits - !k))
  done;
  while Nat.compare !q lower < 0 do
    decr k;
    q := scaled_round ~base ~b ~f:v.Value.f ~e:v.Value.e (ndigits - !k)
  done;
  let digits = Nat.to_base_digits ~base !q in
  assert (Array.length digits = ndigits);
  (digits, !k)

(* The paper's "straightforward fixed-format algorithm": express v = r/s
   scaled so the first digit is r/s's integer part, then peel ndigits
   digits one quotient-remainder step at a time and round half-even on the
   final remainder. *)
let convert_digit_loop ?(base = 10) ~ndigits fmt (v : Value.finite) =
  if ndigits < 1 then invalid_arg "Naive_fixed.convert_digit_loop: ndigits";
  let b = fmt.Fp.Format_spec.b in
  (* r/s = v, unscaled *)
  let r0, s0 =
    if v.Value.e >= 0 then (Nat.mul v.Value.f (Nat.pow_int b v.Value.e), Nat.one)
    else (v.Value.f, Nat.pow_int b (-v.Value.e))
  in
  (* k via the fast estimator, corrected exactly *)
  let log2_b = if b = 2 then 1. else log (float_of_int b) /. log 2. in
  let est =
    int_of_float
      (Float.ceil
         (((float_of_int v.Value.e *. log2_b)
          +. float_of_int (Nat.bit_length v.Value.f - 1))
          /. (log (float_of_int base) /. log 2.)
         -. 1e-10))
  in
  let scale k =
    if k >= 0 then (r0, Nat.mul s0 (Dragon.Scaling.power ~base k))
    else (Nat.mul r0 (Dragon.Scaling.power ~base (-k)), s0)
  in
  let k = ref est in
  let r = ref r0 and s = ref s0 in
  let rescale () =
    let r', s' = scale !k in
    r := r';
    s := s'
  in
  rescale ();
  while Nat.compare !r !s >= 0 do
    incr k;
    rescale ()
  done;
  while Nat.compare (Nat.mul_int !r base) !s < 0 do
    decr k;
    rescale ()
  done;
  let digits = Array.make ndigits 0 in
  for i = 0 to ndigits - 1 do
    let q, rest = Nat.divmod (Nat.mul_int !r base) !s in
    digits.(i) <- Nat.to_int_exn q;
    r := rest
  done;
  (* round half-even on the remainder, propagating any carry *)
  let c = Nat.compare (Nat.shift_left !r 1) !s in
  let round_up = c > 0 || (c = 0 && digits.(ndigits - 1) land 1 = 1) in
  if round_up then begin
    let i = ref (ndigits - 1) in
    let carry = ref true in
    while !carry && !i >= 0 do
      if digits.(!i) = base - 1 then begin
        digits.(!i) <- 0;
        decr i
      end
      else begin
        digits.(!i) <- digits.(!i) + 1;
        carry := false
      end
    done;
    if !carry then begin
      Array.blit digits 0 digits 1 (ndigits - 1);
      digits.(0) <- 1;
      incr k
    end
  end;
  (digits, !k)

let print ?(base = 10) ~ndigits x =
  match Fp.Ieee.decompose x with
  | Value.Zero neg -> Dragon.Render.zero ~neg ()
  | Value.Inf neg -> Dragon.Render.infinity ~neg ()
  | Value.Nan -> Dragon.Render.nan
  | Value.Finite v ->
    let digits, k = convert ~base ~ndigits Fp.Format_spec.binary64 v in
    Dragon.Render.free ~notation:Dragon.Render.Scientific ~neg:v.Value.neg
      ~base
      { Dragon.Free_format.digits; k }
