(** A fixed-format printer that rounds with {e floating-point} arithmetic —
    the way the inaccurate [printf] implementations counted in Table 3,
    column 3 behave.

    The value is brought into [[1, base)] by multiplying/dividing with
    powers of the base computed in double precision, then digits are
    peeled off one at a time; every step can introduce rounding error, so
    the final digits are wrong for a measurable fraction of inputs (the
    paper saw up to 6280 of 250,680 on one system).  [incorrect] counts
    those against the exact oracle. *)

val convert : ?base:int -> ndigits:int -> float -> int array * int
(** [(digits, k)]: the (approximately rounded) fixed-format digits of a
    positive finite double. *)

val print : ?base:int -> ndigits:int -> float -> string

val correctly_rounded : ?base:int -> ndigits:int -> float -> bool
(** Compare against {!Naive_fixed} (exact): [false] when this printer's
    digits differ from the correctly rounded ones. *)
