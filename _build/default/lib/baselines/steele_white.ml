module Value = Fp.Value

let convert ?(base = 10) fmt (v : Value.finite) =
  let bnd = Dragon.Boundaries.of_finite fmt v in
  (* No input-rounding awareness: the range is strictly open. *)
  let bnd = { bnd with Dragon.Boundaries.low_ok = false; high_ok = false } in
  let k, state =
    Dragon.Scaling.scale Dragon.Scaling.Iterative ~base
      ~b:fmt.Fp.Format_spec.b ~f:v.Value.f ~e:v.Value.e bnd
  in
  {
    Dragon.Free_format.digits =
      Dragon.Generate.free ~base ~tie:Dragon.Generate.Closer_up state;
    k;
  }

let print ?(base = 10) x =
  match Fp.Ieee.decompose x with
  | Value.Zero neg -> Dragon.Render.zero ~neg ()
  | Value.Inf neg -> Dragon.Render.infinity ~neg ()
  | Value.Nan -> Dragon.Render.nan
  | Value.Finite v ->
    let result = convert ~base Fp.Format_spec.binary64 v in
    Dragon.Render.free ~neg:v.Value.neg ~base result
