(** The Steele & White free-format printer [5] — the paper's baseline.

    Differences from {!Dragon.Free_format} mirror the comparison in the
    paper's Section 5:

    - scaling is the iterative [O(|log v|)] search (their Dragon4 /
      FP3 procedure), not an estimator — the source of the ~two orders of
      magnitude in Table 2;
    - the reader's rounding mode is not taken into account: both endpoints
      of the rounding range are treated as excluded, so e.g. [1e23] prints
      as [9.999999999999999e22].

    Digit generation itself is shared with the production path; the
    algorithms coincide once scaling and endpoint handling are fixed. *)

val convert :
  ?base:int -> Fp.Format_spec.t -> Fp.Value.finite -> Dragon.Free_format.t

val print : ?base:int -> float -> string
(** End-to-end printer for doubles, for benchmarks and comparison. *)
