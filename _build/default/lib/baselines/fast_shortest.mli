(** A fast shortest-form printer in the architecture of the paper's
    successors (Grisu3 and friends): generate candidate digits with cheap
    64-bit-extended arithmetic, {e verify} them against the exact rounding
    range with a handful of integer comparisons, and fall back to the full
    Burger–Dybvig printer when the fast arithmetic cannot certify its
    floor.

    The output is {e always} identical to
    [Dragon.Free_format.convert ~mode:To_nearest_even ~tie:Closer_up]:
    candidate length and digit choice replay the paper's termination
    conditions exactly — the only difference is that the common case runs
    on machine words plus a few short bignum multiplies instead of
    full-width bignum division per digit.

    Binary64, round-to-nearest-even readers, ties up (the paper's default
    configuration). *)

val convert : Fp.Value.finite -> Dragon.Free_format.t
(** Shortest correctly rounded decimal digits of a positive finite
    double. *)

val print : float -> string
(** End-to-end, for benchmarks ([Render.free] on {!convert}). *)

val stats : unit -> int * int
(** [(fast, fallback)] conversion counters. *)
