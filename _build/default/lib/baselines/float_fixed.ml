module Value = Fp.Value

(* Scale x to an ndigits-digit integer in simulated extended precision,
   then read the digits off that integer.  The 64-bit mantissa carries
   about 19.2 decimal digits, so with a few rounded multiplications in the
   scaling the 17th digit is wrong for a small fraction of inputs — the
   behaviour Table 3 counts. *)
let convert ?(base = 10) ~ndigits x =
  if base <> 10 then invalid_arg "Float_fixed.convert: decimal only";
  if ndigits < 1 || ndigits > 18 then
    invalid_arg "Float_fixed.convert: ndigits out of range";
  if not (Float.is_finite x) || x <= 0. then
    invalid_arg "Float_fixed.convert: need a positive finite double";
  let k0 = int_of_float (Float.floor (Float.log10 x)) + 1 in
  let scaled k =
    (* round(x * 10^(ndigits - k)) in extended precision *)
    Ext64.to_int64_round (Ext64.mul (Ext64.of_float x) (Ext64.pow10 (ndigits - k)))
  in
  let limit = Int64.of_float (10. ** float_of_int ndigits) in
  let lower = Int64.div limit 10L in
  let n = ref (scaled k0) in
  let k = ref k0 in
  while Int64.compare !n limit >= 0 do
    incr k;
    n := scaled !k
  done;
  while Int64.compare !n lower < 0 do
    decr k;
    n := scaled !k
  done;
  let digits = Array.make ndigits 0 in
  let v = ref !n in
  for i = ndigits - 1 downto 0 do
    digits.(i) <- Int64.to_int (Int64.rem !v 10L);
    v := Int64.div !v 10L
  done;
  (digits, !k)

let print ?(base = 10) ~ndigits x =
  match Fp.Ieee.decompose x with
  | Value.Zero neg -> Dragon.Render.zero ~neg ()
  | Value.Inf neg -> Dragon.Render.infinity ~neg ()
  | Value.Nan -> Dragon.Render.nan
  | Value.Finite v ->
    let digits, k = convert ~base ~ndigits (Float.abs x) in
    Dragon.Render.free ~notation:Dragon.Render.Scientific ~neg:v.Value.neg
      ~base
      { Dragon.Free_format.digits; k }

let correctly_rounded ?(base = 10) ~ndigits x =
  match Fp.Ieee.decompose (Float.abs x) with
  | Value.Finite v ->
    let exact_digits, exact_k =
      Naive_fixed.convert ~base ~ndigits Fp.Format_spec.binary64 v
    in
    let digits, k = convert ~base ~ndigits (Float.abs x) in
    k = exact_k && digits = exact_digits
  | _ -> invalid_arg "Float_fixed.correctly_rounded: not finite"
