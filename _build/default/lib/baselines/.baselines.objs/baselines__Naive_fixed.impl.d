lib/baselines/naive_fixed.ml: Array Bignum Dragon Float Fp
