lib/baselines/naive_fixed.mli: Fp
