lib/baselines/steele_white.ml: Dragon Fp
