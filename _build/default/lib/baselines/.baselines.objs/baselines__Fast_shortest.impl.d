lib/baselines/fast_shortest.ml: Array Bignum Dragon Ext64 Float Fp Int64
