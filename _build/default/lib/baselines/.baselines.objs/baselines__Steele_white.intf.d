lib/baselines/steele_white.mli: Dragon Fp
