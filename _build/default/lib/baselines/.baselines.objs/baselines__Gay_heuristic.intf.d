lib/baselines/gay_heuristic.mli: Fp
