lib/baselines/fast_shortest.mli: Dragon Fp
