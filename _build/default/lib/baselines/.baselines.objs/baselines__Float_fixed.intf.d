lib/baselines/float_fixed.mli:
