lib/baselines/float_fixed.ml: Array Dragon Ext64 Float Fp Int64 Naive_fixed
