lib/baselines/gay_heuristic.ml: Array Ext64 Float Fp Int64 Naive_fixed
