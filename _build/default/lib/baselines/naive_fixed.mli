(** The "straightforward fixed-format algorithm" of Table 3.

    Prints a positive double to [n] significant digits by exact integer
    arithmetic: scale [f × 2^e] by the right power of ten, divide once,
    and round half-even on the remainder.  Correct by construction but
    blind to significance — it happily prints garbage digits beyond the
    float's information content (e.g. [1/3] in binary32 to 17 digits gives
    [0.33333334326744080], where the paper's algorithm writes [#] marks).

    This is the baseline the paper times free format against (Table 3,
    column 1) and the stand-in for a correctly rounded [printf]. *)

val convert :
  ?base:int -> ndigits:int -> Fp.Format_spec.t -> Fp.Value.finite -> int array * int
(** [(digits, k)] with exactly [ndigits] digits; the value printed is
    [0.d1 ... dn × base^k], rounded half-even.  Computed with a single
    big division — used as the exactness oracle in tests. *)

val convert_digit_loop :
  ?base:int -> ndigits:int -> Fp.Format_spec.t -> Fp.Value.finite -> int array * int
(** Same result, computed the way the paper's "straightforward" baseline
    works: scale once, then peel one digit per quotient-remainder step and
    round on the final remainder (with carry propagation).  This is the
    structure Table 3 times free format against — identical per-digit
    cost, no significance logic. *)

val print : ?base:int -> ndigits:int -> float -> string
(** Scientific-notation rendering, e.g. [1.2340000000000000e2]. *)
