(** Gay's fast-path heuristic for fixed-format output (paper, Section 5).

    Gay observed that "floating-point arithmetic is sufficiently accurate
    in most cases when the requested number of digits is small" [Gay 90]:
    do the conversion in cheap hardware-style arithmetic, {e certify} the
    result by checking that the scaled value lands far enough from a
    rounding boundary, and fall back to exact integer arithmetic only in
    the rare uncertified cases.

    Here the cheap path is {!Ext64} (64-bit-mantissa extended precision)
    and the fallback is {!Naive_fixed}.  The certificate is conservative:
    the scaled value's distance to the nearest half-integer must exceed a
    bound on the accumulated rounding error, so the result is {e always}
    correctly rounded — unlike {!Float_fixed}, which skips the check. *)

val convert :
  ndigits:int -> Fp.Format_spec.t -> Fp.Value.finite -> int array * int
(** Correctly rounded [ndigits]-digit decimal conversion of a positive
    binary64 value; certified fast path with exact fallback.  Decimal
    output only, [1 <= ndigits <= 17]. *)

val fast_path_hits : unit -> int
val fallbacks : unit -> int
(** Counters for the ablation bench (reset never; monotonic). *)
