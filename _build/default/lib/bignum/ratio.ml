(* Rationals as reduced numerator/denominator pairs with [den > 0]. *)

type t = { num : Bigint.t; den : Bigint.t }

let make num den =
  if Bigint.is_zero den then raise Division_by_zero;
  let num, den = if Bigint.sign den < 0 then (Bigint.neg num, Bigint.neg den) else (num, den) in
  if Bigint.is_zero num then { num = Bigint.zero; den = Bigint.one }
  else begin
    let g = Bigint.gcd num den in
    if Bigint.equal g Bigint.one then { num; den }
    else { num = fst (Bigint.ediv_rem num g); den = fst (Bigint.ediv_rem den g) }
  end

let make_unreduced num den =
  if Bigint.is_zero den then raise Division_by_zero;
  if Bigint.sign den < 0 then { num = Bigint.neg num; den = Bigint.neg den }
  else { num; den }

let of_bigint n = { num = n; den = Bigint.one }
let of_int n = of_bigint (Bigint.of_int n)
let of_ints n d = make (Bigint.of_int n) (Bigint.of_int d)

let num r = r.num
let den r = r.den

let zero = of_int 0
let one = of_int 1
let half = of_ints 1 2

let add a b =
  make
    (Bigint.add (Bigint.mul a.num b.den) (Bigint.mul b.num a.den))
    (Bigint.mul a.den b.den)

let neg a = { a with num = Bigint.neg a.num }
let sub a b = add a (neg b)
let mul a b = make (Bigint.mul a.num b.num) (Bigint.mul a.den b.den)
let div a b = make (Bigint.mul a.num b.den) (Bigint.mul a.den b.num)
let abs a = { a with num = Bigint.abs a.num }
let inv a = make a.den a.num
let mul_bigint a n = make (Bigint.mul a.num n) a.den

let rec pow r k =
  if k < 0 then pow (inv r) (-k)
  else { num = Bigint.pow r.num k; den = Bigint.pow r.den k }

let sign r = Bigint.sign r.num

let compare a b =
  Bigint.compare (Bigint.mul a.num b.den) (Bigint.mul b.num a.den)

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let floor r = Bigint.fdiv r.num r.den

let ceil r = Bigint.neg (Bigint.fdiv (Bigint.neg r.num) r.den)

let fractional r = sub r (of_bigint (floor r))

let to_float r =
  (* Scale so both parts fit a double before dividing; good enough for the
     estimator tests that consume this. *)
  let shift =
    Stdlib.max 0
      (Stdlib.max
         (Nat.bit_length (Bigint.to_nat_exn (Bigint.abs r.num)))
         (Nat.bit_length (Bigint.to_nat_exn (Bigint.abs r.den)))
       - 900)
  in
  let scale n =
    Bigint.to_float (fst (Bigint.ediv_rem n (Bigint.shift_left Bigint.one shift)))
  in
  if shift = 0 then Bigint.to_float r.num /. Bigint.to_float r.den
  else scale r.num /. scale r.den

let to_string r =
  if Bigint.equal r.den Bigint.one then Bigint.to_string r.num
  else Bigint.to_string r.num ^ "/" ^ Bigint.to_string r.den

let pp fmt r = Format.pp_print_string fmt (to_string r)

module O = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end
