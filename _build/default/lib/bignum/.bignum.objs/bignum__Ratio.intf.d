lib/bignum/ratio.mli: Bigint Format
