lib/bignum/nat.ml: Array Char Format Int Int64 List String Sys
