lib/bignum/ratio.ml: Bigint Format Nat Stdlib
