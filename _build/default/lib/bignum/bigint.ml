(* Sign-magnitude integers; zero always has sign [Pos]. *)

type t = { neg : bool; mag : Nat.t }

let make neg mag = { neg = neg && not (Nat.is_zero mag); mag }

let zero = make false Nat.zero
let one = make false Nat.one
let minus_one = make true Nat.one

let of_nat mag = make false mag

let of_int n =
  if n >= 0 then make false (Nat.of_int n) else make true (Nat.of_int (-n))

let to_nat_exn a =
  if a.neg then invalid_arg "Bigint.to_nat_exn: negative" else a.mag

let to_int_opt a =
  match Nat.to_int_opt a.mag with
  | Some i -> Some (if a.neg then -i else i)
  | None -> None

let to_float a =
  let f = Nat.to_float a.mag in
  if a.neg then -.f else f

let sign a = if Nat.is_zero a.mag then 0 else if a.neg then -1 else 1
let is_zero a = Nat.is_zero a.mag
let is_even a = Nat.is_even a.mag

let compare a b =
  match (a.neg, b.neg) with
  | false, true -> if is_zero a && is_zero b then 0 else 1
  | true, false -> if is_zero a && is_zero b then 0 else -1
  | false, false -> Nat.compare a.mag b.mag
  | true, true -> Nat.compare b.mag a.mag

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let neg a = make (not a.neg) a.mag
let abs a = make false a.mag

let add a b =
  if a.neg = b.neg then make a.neg (Nat.add a.mag b.mag)
  else begin
    let c = Nat.compare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make a.neg (Nat.sub a.mag b.mag)
    else make b.neg (Nat.sub b.mag a.mag)
  end

let sub a b = add a (neg b)

let mul a b = make (a.neg <> b.neg) (Nat.mul a.mag b.mag)

let mul_int a n =
  if n >= 0 then make a.neg (Nat.mul_int a.mag n)
  else make (not a.neg) (Nat.mul_int a.mag (-n))

(* Euclidean division: remainder in [0, |b|). *)
let ediv_rem a b =
  if is_zero b then raise Division_by_zero;
  let q, r = Nat.divmod a.mag b.mag in
  if not a.neg then (make b.neg q, of_nat r)
  else if Nat.is_zero r then (make (not b.neg) q, zero)
  else
    (* a < 0: round the quotient away so the remainder turns positive. *)
    (make (not b.neg) (Nat.succ q), of_nat (Nat.sub b.mag r))

let fdiv a b =
  let q, r = ediv_rem a b in
  (* Euclidean and floor division agree unless the divisor is negative and
     the remainder non-zero. *)
  if sign b >= 0 || is_zero r then q else sub q one

let pow b k = make (b.neg && k land 1 = 1) (Nat.pow b.mag k)

let shift_left a k = make a.neg (Nat.shift_left a.mag k)

let gcd a b = of_nat (Nat.gcd a.mag b.mag)

let of_string s =
  if String.length s > 0 && s.[0] = '-' then
    make true (Nat.of_string (String.sub s 1 (String.length s - 1)))
  else if String.length s > 0 && s.[0] = '+' then
    make false (Nat.of_string (String.sub s 1 (String.length s - 1)))
  else make false (Nat.of_string s)

let to_string a =
  if a.neg then "-" ^ Nat.to_string a.mag else Nat.to_string a.mag

let pp fmt a = Format.pp_print_string fmt (to_string a)

module O = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( ~- ) = neg
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end
