(** Exact rational arithmetic.

    Used by {!Dragon.Reference}, the executable specification of the
    paper's basic algorithm (Section 2), and by test oracles.  Values are
    kept with a positive denominator; reduction to lowest terms happens on
    construction, mirroring what Scheme's exact rationals do in the paper's
    original code. *)

type t

val make : Bigint.t -> Bigint.t -> t
(** [make num den] is [num/den] reduced to lowest terms.
    @raise Division_by_zero if [den] is zero. *)

val make_unreduced : Bigint.t -> Bigint.t -> t
(** Like {!make} but skips the gcd reduction (the sign is still
    normalised into the numerator).  Every operation of this module is
    correct on unreduced values — comparison cross-multiplies, floor
    divides — so hot exact loops that control their own denominators can
    avoid quadratic gcd costs.  Printed forms may not be in lowest
    terms. *)

val of_bigint : Bigint.t -> t
val of_int : int -> t
val of_ints : int -> int -> t

val num : t -> Bigint.t
(** Numerator (carries the sign). *)

val den : t -> Bigint.t
(** Denominator, always positive. *)

val zero : t
val one : t
val half : t

(** {1 Arithmetic} *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val abs : t -> t
val inv : t -> t
val mul_bigint : t -> Bigint.t -> t

val pow : t -> int -> t
(** [pow r k] for any integer [k] (negative exponents invert). *)

(** {1 Comparisons} *)

val sign : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

(** {1 Integer parts} *)

val floor : t -> Bigint.t
val ceil : t -> Bigint.t

val fractional : t -> t
(** [fractional r] is [r - floor r], in [0, 1). *)

val to_float : t -> float
(** Approximate conversion, used only by estimators and debugging. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

module O : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end
