(** Arbitrary-precision signed integers built on {!Nat}.

    The representation keeps a sign and a magnitude; zero is always
    positive.  The printer's hot path works on naturals directly, but the
    reference implementation of the paper's basic algorithm (exact
    rationals) and the reader need signed values. *)

type t

(** {1 Constants and conversions} *)

val zero : t
val one : t
val minus_one : t

val of_int : int -> t
val of_nat : Nat.t -> t

val to_nat_exn : t -> Nat.t
(** Magnitude of a non-negative value.
    @raise Invalid_argument on negatives. *)

val to_int_opt : t -> int option
val to_float : t -> float

(** {1 Predicates and comparison} *)

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val is_even : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val min : t -> t -> t
val max : t -> t -> t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val mul_int : t -> int -> t

val ediv_rem : t -> t -> t * t
(** Euclidean division: [(q, r)] with [a = q*b + r] and [0 <= r < |b|].
    @raise Division_by_zero on zero divisor. *)

val fdiv : t -> t -> t
(** Floor division (towards negative infinity). *)

val pow : t -> int -> t
val shift_left : t -> int -> t
val gcd : t -> t -> t

(** {1 Strings} *)

val of_string : string -> t
val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** {1 Infix operators}

    Opened locally as [Bigint.O] where formulas get dense. *)
module O : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( ~- ) : t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end
