let default_size = 250_680

let hidden = 1 lsl 52

(* 53-bit mantissa patterns (hidden bit always set):
   - runs of leading ones:   111..10..0   (53 forms)
   - runs of trailing ones:  10..011..1   (52 forms)
   - one inner bit:          10..010..0   (52 forms)
   - alternating bits:       1010.. and 10101..                (2 forms) *)
let patterns () =
  let acc = ref [] in
  for r = 1 to 53 do
    (* r leading ones *)
    acc := ((1 lsl r) - 1) lsl (53 - r) :: !acc
  done;
  for t = 1 to 52 do
    (* hidden bit plus t trailing ones *)
    acc := (hidden lor ((1 lsl t) - 1)) :: !acc
  done;
  for i = 0 to 51 do
    (* hidden bit plus a single bit at position i *)
    acc := (hidden lor (1 lsl i)) :: !acc
  done;
  let alternating seed =
    let v = ref 0 in
    for i = 0 to 52 do
      if (i + seed) land 1 = 0 then v := !v lor (1 lsl (52 - i))
    done;
    !v
  in
  acc := alternating 0 :: alternating 1 lor hidden :: !acc;
  (* a few forms coincide (e.g. one trailing one = lowest single bit);
     keep each distinct mantissa once *)
  Array.of_list (List.sort_uniq Int.compare !acc)

let corpus_seq () =
  let pats = patterns () in
  let npat = Array.length pats in
  (* Value exponents of normal doubles: -1022 .. 1023 (2046 binades).
     Walk them through a full-cycle stride permutation so that any
     truncated prefix of the stream already spans the whole exponent
     range — the shape of the scaling experiment (Table 2) depends on
     large-magnitude exponents being present. *)
  let nbinades = 2046 in
  let stride = 1571 (* coprime to 2046 *) in
  let exponent i = -1022 + (i * stride mod nbinades) in
  let total = npat * nbinades in
  let rec from i () =
    if i >= total then Seq.Nil
    else begin
      let binade = exponent (i / npat) in
      let f = pats.(i mod npat) in
      let x = ldexp (float_of_int f) (binade - 52) in
      if x < 2.2250738585072014e-308 || not (Float.is_finite x) then
        from (i + 1) ()
      else Seq.Cons (x, from (i + 1))
    end
  in
  from 0

let corpus ?(size = default_size) () =
  Array.of_seq (Seq.take size (corpus_seq ()))
