(** Additional test corpora: reproducible random doubles and a gallery of
    historically hard conversion cases. *)

val random_positive_normals : seed:int -> int -> float array
(** Uniform over normal bit patterns (sign cleared), reproducible. *)

val random_finite : seed:int -> int -> float array
(** Uniform over all finite bit patterns, including denormals, both
    signs. *)

val random_denormals : seed:int -> int -> float array
(** Positive denormals only. *)

val hard_cases : float array
(** Values that are classically awkward for binary-decimal conversion:
    midpoint-straddling powers of ten, denormal extremes, binade
    boundaries, and famous strtod/dtoa stress values. *)

val torture_reader_inputs : seed:int -> int -> string array
(** Decimal strings engineered to sit as close as possible to rounding
    boundaries of binary64: truncations of exact float-pair midpoints and
    their last-digit neighbours.  These inputs force the maximum number
    of fallbacks in tiered readers and are the worst case for any
    fixed-precision conversion pipeline. *)
