(** Reconstruction of the Schryer floating-point test corpus.

    The paper times its printers on "a set of 250,680 positive normalized
    IEEE double-precision floating-point numbers ... generated according
    to the forms Schryer developed for testing floating-point units" [4].
    Schryer's monograph is not available here, so this module rebuilds a
    corpus with the same intent and size: mantissa bit patterns known to
    stress binary-decimal conversion — runs of leading ones, runs of
    trailing ones, single inner bits, alternating patterns — swept across
    every normal binade.  The default corpus takes the first 250,680
    values of that deterministic stream, matching the paper's count; see
    DESIGN.md for the substitution note. *)

val patterns : unit -> int array
(** The distinct mantissa patterns (53-bit integers with the hidden bit
    set), sorted ascending. *)

val corpus_seq : unit -> float Seq.t
(** Deterministic stream ordered by binade then pattern, covering value
    exponents from -1022 upward. *)

val corpus : ?size:int -> unit -> float array
(** The first [size] (default 250,680) values of {!corpus_seq}; every
    element is positive, finite and normalized. *)

val default_size : int
(** 250,680 — the corpus size reported in the paper. *)
