lib/workloads/schryer.mli: Seq
