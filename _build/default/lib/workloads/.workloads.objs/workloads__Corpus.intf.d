lib/workloads/corpus.mli:
