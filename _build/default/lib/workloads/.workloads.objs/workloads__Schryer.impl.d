lib/workloads/schryer.ml: Array Float Int List Seq
