lib/workloads/corpus.ml: Array Bignum Char Float Fp Int64 List Oracle Printf Random String
