(** Exact-arithmetic reference for correct rounding.

    Every finite binary float has a {e finite} decimal expansion
    ([2^-e] divides [10^-e]), so correctly rounded output of any length can
    be computed exactly and independently of the printing algorithm under
    test.  This module is the test oracle for {!Dragon.Fixed_format} and
    for the incorrect-rounding counts of Table 3; it deliberately shares no
    code with the printer.

    Digit arrays are most-significant first.  The pair [(digits, k)]
    denotes [0.d1 d2 ... × base^k], the paper's output convention. *)

type tie = Half_even | Half_up | Half_down

val exact_digits :
  base:int -> Fp.Format_spec.t -> Fp.Value.finite -> int array * int
(** Full exact expansion of a positive binary ([b = 2]) value in an {e
    even} output base.  The digit array has no leading or trailing zeros.
    @raise Invalid_argument for odd bases or non-binary formats, where the
    expansion may not terminate. *)

val round_significant :
  ?tie:tie -> base:int -> ndigits:int -> Bignum.Ratio.t -> int array * int
(** [round_significant ~base ~ndigits r] rounds a positive rational to
    exactly [ndigits] significant base-[base] digits.  Works for any
    rational, any base in [2, 36].
    @raise Invalid_argument on non-positive input or [ndigits < 1]. *)

val round_at_position :
  ?tie:tie -> base:int -> pos:int -> Bignum.Ratio.t -> Bignum.Nat.t
(** [round_at_position ~base ~pos r] rounds a non-negative rational to the
    nearest multiple of [base^pos]; the result [n] denotes [n × base^pos]. *)

val digits_to_nat : base:int -> int array -> Bignum.Nat.t
(** Reassemble a digit array (helper shared by tests). *)
