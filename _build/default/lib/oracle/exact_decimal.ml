module Nat = Bignum.Nat
module Bigint = Bignum.Bigint
module Ratio = Bignum.Ratio
module Format_spec = Fp.Format_spec
module Value = Fp.Value

type tie = Half_even | Half_up | Half_down

let digits_to_nat ~base digits = Nat.of_base_digits ~base digits

let strip digits =
  let len = Array.length digits in
  let first = ref 0 in
  while !first < len - 1 && digits.(!first) = 0 do
    incr first
  done;
  let last = ref (len - 1) in
  while !last > !first && digits.(!last) = 0 do
    decr last
  done;
  Array.sub digits !first (!last - !first + 1)

let exact_digits ~base (fmt : Format_spec.t) (v : Value.finite) =
  if v.neg then invalid_arg "Exact_decimal.exact_digits: negative value";
  if fmt.b <> 2 then
    invalid_arg "Exact_decimal.exact_digits: only binary formats";
  if base land 1 = 1 || base < 2 || base > 36 then
    invalid_arg "Exact_decimal.exact_digits: base must be even, in [2,36]";
  (* With base = 2c:  f × 2^e = (f × c^-e) × base^e  for e < 0. *)
  let n, exp10 =
    if v.e >= 0 then (Nat.mul v.f (Nat.pow_int 2 v.e), 0)
    else (Nat.mul v.f (Nat.pow (Nat.of_int (base / 2)) (-v.e)), v.e)
  in
  let digits = Nat.to_base_digits ~base n in
  let k = Array.length digits + exp10 in
  (strip digits, k)

(* Smallest k with r < base^k, for positive r: float estimate then exact
   adjustment (the same never-overshoot trick as the printer, but here we
   simply fix up in both directions because this is the slow oracle). *)
let scale_exponent ~base r =
  let num = Bigint.to_nat_exn (Ratio.num r) in
  let den = Bigint.to_nat_exn (Ratio.den r) in
  let log2_base = log (float_of_int base) /. log 2. in
  let approx_log2 =
    float_of_int (Nat.bit_length num - Nat.bit_length den)
  in
  let k = ref (int_of_float (Float.ceil ((approx_log2 /. log2_base) -. 2.))) in
  let pow_k k =
    if k >= 0 then Ratio.of_bigint (Bigint.of_nat (Nat.pow_int base k))
    else Ratio.inv (Ratio.of_bigint (Bigint.of_nat (Nat.pow_int base (-k))))
  in
  while Ratio.compare r (pow_k !k) >= 0 do
    incr k
  done;
  while Ratio.compare r (pow_k (!k - 1)) < 0 do
    decr k
  done;
  !k

let round_ratio ~tie r =
  (* Nearest integer to the non-negative rational r. *)
  let fl = Ratio.floor r in
  let frac = Ratio.sub r (Ratio.of_bigint fl) in
  let c = Ratio.compare frac Ratio.half in
  let up =
    if c > 0 then true
    else if c < 0 then false
    else begin
      match tie with
      | Half_up -> true
      | Half_down -> false
      | Half_even -> not (Bigint.is_even fl)
    end
  in
  Bigint.to_nat_exn (if up then Bigint.add fl Bigint.one else fl)

let round_at_position ?(tie = Half_even) ~base ~pos r =
  if Ratio.sign r < 0 then
    invalid_arg "Exact_decimal.round_at_position: negative value";
  let scale =
    if pos >= 0 then
      Ratio.inv (Ratio.of_bigint (Bigint.of_nat (Nat.pow_int base pos)))
    else Ratio.of_bigint (Bigint.of_nat (Nat.pow_int base (-pos)))
  in
  round_ratio ~tie (Ratio.mul r scale)

let round_significant ?(tie = Half_even) ~base ~ndigits r =
  if Ratio.sign r <= 0 then
    invalid_arg "Exact_decimal.round_significant: value must be positive";
  if ndigits < 1 then invalid_arg "Exact_decimal.round_significant: ndigits";
  let k = scale_exponent ~base r in
  (* r in [base^(k-1), base^k); rounding at position k - ndigits yields a
     mantissa in [base^(ndigits-1), base^ndigits], the top end when the
     round-up cascades (e.g. 0.999→1.0), which bumps k. *)
  let m = round_at_position ~tie ~base ~pos:(k - ndigits) r in
  let limit = Nat.pow_int base ndigits in
  let m, k = if Nat.compare m limit >= 0 then (fst (Nat.divmod_int m base), k + 1) else (m, k) in
  let digits = Nat.to_base_digits ~base m in
  let padding = ndigits - Array.length digits in
  let digits =
    if padding > 0 then Array.append (Array.make padding 0) digits else digits
  in
  (digits, k)
