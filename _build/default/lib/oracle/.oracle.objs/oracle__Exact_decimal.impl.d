lib/oracle/exact_decimal.ml: Array Bignum Float Fp
