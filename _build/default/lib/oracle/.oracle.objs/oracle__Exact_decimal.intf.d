lib/oracle/exact_decimal.mli: Bignum Fp
