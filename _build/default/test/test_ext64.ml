(* Tests for the extended-precision softfloat substrate and the printers
   built on it (the inaccurate-printf model and Gay's certified fast
   path). *)

module Nat = Bignum.Nat
module Bigint = Bignum.Bigint
module Ratio = Bignum.Ratio
open Baselines

let b64 = Fp.Format_spec.binary64

let qtest ?(count = 300) name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

let decompose_pos x =
  match Fp.Ieee.decompose x with
  | Fp.Value.Finite v -> { v with Fp.Value.neg = false }
  | _ -> Alcotest.failf "not finite: %g" x

(* Exact rational denoted by an Ext64 value. *)
let ratio_of_ext (t : Ext64.t) =
  (* unsigned mantissa: split to avoid the sign bit *)
  let lo = Int64.to_int (Int64.logand t.Ext64.m 0x3FFFFFFFFFFFFFFFL) in
  let hi = Int64.to_int (Int64.shift_right_logical t.Ext64.m 62) in
  let m =
    Nat.add (Nat.of_int lo) (Nat.shift_left (Nat.of_int hi) 62)
  in
  let num = Ratio.of_bigint (Bigint.of_nat m) in
  Ratio.mul num (Ratio.pow (Ratio.of_int 2) t.Ext64.e)

let test_of_float_exact () =
  List.iter
    (fun x ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "%h" x)
        x
        (Ext64.to_float (Ext64.of_float x)))
    [ 1.0; 0.5; 3.14159; 1e300; 1e-300; 4.9e-324; Float.max_float ]

let test_pow10_small_exact () =
  (* powers up to 10^19 fit 64 bits: must be exactly representable *)
  for n = 0 to 19 do
    let exact = Ratio.of_bigint (Bigint.of_nat (Nat.pow_int 10 n)) in
    Alcotest.(check bool)
      (Printf.sprintf "10^%d exact" n)
      true
      (Ratio.equal (ratio_of_ext (Ext64.pow10 n)) exact)
  done

let test_pow10_error_bounded () =
  (* larger powers are composed with rounded multiplications: relative
     error under 16 ulps of 2^-64 *)
  let bound = Ratio.make (Bigint.of_int 16) (Bigint.pow (Bigint.of_int 2) 64) in
  List.iter
    (fun n ->
      let approx = ratio_of_ext (Ext64.pow10 n) in
      let exact =
        if n >= 0 then Ratio.of_bigint (Bigint.of_nat (Nat.pow_int 10 n))
        else Ratio.inv (Ratio.of_bigint (Bigint.of_nat (Nat.pow_int 10 (-n))))
      in
      let rel = Ratio.div (Ratio.abs (Ratio.sub approx exact)) exact in
      Alcotest.(check bool)
        (Printf.sprintf "10^%d within bound" n)
        true
        (Ratio.compare rel bound <= 0))
    [ 23; 100; 308; 350; -5; -100; -323; -350 ]

let test_to_int64_round () =
  let check x expected =
    Alcotest.(check int64) (Printf.sprintf "%g" x) expected
      (Ext64.to_int64_round (Ext64.of_float x))
  in
  check 1.0 1L;
  check 1.5 2L;
  (* ties to even *)
  check 2.5 2L;
  check 2.51 3L;
  check 1e15 1000000000000000L;
  check 0.4 0L

let props =
  [
    qtest "mul within one ulp of exact"
      QCheck.(
        pair
          (QCheck.map (fun x -> Float.abs x +. 1e-30) QCheck.float)
          (QCheck.map (fun x -> Float.abs x +. 1e-30) QCheck.float))
      (fun (x, y) ->
        QCheck.assume (Float.is_finite (x *. y) && x *. y > 0.);
        let a = Ext64.of_float x and b = Ext64.of_float y in
        let p = Ext64.mul a b in
        let exact = Ratio.mul (ratio_of_ext a) (ratio_of_ext b) in
        let got = ratio_of_ext p in
        let rel = Ratio.div (Ratio.abs (Ratio.sub got exact)) exact in
        Ratio.compare rel
          (Ratio.make Bigint.one (Bigint.pow (Bigint.of_int 2) 64))
        <= 0);
    qtest ~count:500 "gay heuristic always correctly rounded"
      QCheck.(
        pair
          (QCheck.make ~print:(Printf.sprintf "%h")
             QCheck.Gen.(
               map
                 (fun bits ->
                   let x = Float.abs (Int64.float_of_bits bits) in
                   if Float.is_nan x || x = Float.infinity || x = 0. then 1.5
                   else x)
                 ui64))
          (QCheck.int_range 1 17))
      (fun (x, nd) ->
        let v = decompose_pos x in
        Gay_heuristic.convert ~ndigits:nd b64 v
        = Naive_fixed.convert ~ndigits:nd b64 v);
  ]

let test_fast_shortest_equals_dragon () =
  (* exhaustive-ish sweep: corpus + random + hard cases must be
     digit-identical to the paper's printer *)
  let check v =
    let expected = Dragon.Free_format.convert b64 v in
    let got = Fast_shortest.convert v in
    if not (Dragon.Free_format.equal expected got) then
      Alcotest.failf "mismatch on %s" (Fp.Value.to_string (Fp.Value.Finite v))
  in
  Array.iter
    (fun x -> check (decompose_pos x))
    (Workloads.Schryer.corpus ~size:30_000 ());
  Array.iter
    (fun x -> check (decompose_pos (Float.abs x)))
    (Workloads.Corpus.random_finite ~seed:3 10_000);
  Array.iter
    (fun x -> check (decompose_pos x))
    (Workloads.Corpus.random_denormals ~seed:4 2_000);
  Array.iter
    (fun x -> check (decompose_pos (Float.abs x)))
    Workloads.Corpus.hard_cases;
  let fast, fb = Fast_shortest.stats () in
  Alcotest.(check bool)
    (Printf.sprintf "fast path dominates (%d fast, %d fallback)" fast fb)
    true
    (fast > 9 * fb)

let test_pow10_correct_exact () =
  (* the certified table must be correctly rounded everywhere *)
  let module Nat = Bignum.Nat in
  for n = -350 to 350 do
    let t = Ext64.pow10_correct n in
    let approx = ratio_of_ext t in
    let exact =
      if n >= 0 then Ratio.of_bigint (Bigint.of_nat (Nat.pow_int 10 n))
      else Ratio.inv (Ratio.of_bigint (Bigint.of_nat (Nat.pow_int 10 (-n))))
    in
    (* half an ulp of the 64-bit mantissa: one unit at 2^(e) *)
    let ulp = Ratio.pow (Ratio.of_int 2) t.Ext64.e in
    if
      Ratio.compare
        (Ratio.abs (Ratio.sub approx exact))
        (Ratio.mul Ratio.half ulp)
      > 0
    then Alcotest.failf "10^%d not correctly rounded" n
  done

let test_gay_heuristic_mostly_fast () =
  let corpus = Workloads.Schryer.corpus ~size:20_000 () in
  let h0 = Gay_heuristic.fast_path_hits () and m0 = Gay_heuristic.fallbacks () in
  Array.iter
    (fun x ->
      ignore (Gay_heuristic.convert ~ndigits:15 b64 (decompose_pos x)))
    corpus;
  let hits = Gay_heuristic.fast_path_hits () - h0 in
  let misses = Gay_heuristic.fallbacks () - m0 in
  Alcotest.(check int) "all accounted" 20_000 (hits + misses);
  Alcotest.(check bool)
    (Printf.sprintf "fast path dominates (%d hits, %d fallbacks)" hits misses)
    true
    (hits > 19_000)

let () =
  Alcotest.run "ext64"
    [
      ( "ext64",
        [
          Alcotest.test_case "of_float exact" `Quick test_of_float_exact;
          Alcotest.test_case "small powers exact" `Quick test_pow10_small_exact;
          Alcotest.test_case "large powers bounded" `Quick
            test_pow10_error_bounded;
          Alcotest.test_case "to_int64_round" `Quick test_to_int64_round;
        ] );
      ( "gay-heuristic",
        [
          Alcotest.test_case "fast path dominates" `Quick
            test_gay_heuristic_mostly_fast;
        ] );
      ( "fast-shortest",
        [
          Alcotest.test_case "identical to the paper's printer" `Slow
            test_fast_shortest_equals_dragon;
          Alcotest.test_case "pow10_correct is correctly rounded" `Quick
            test_pow10_correct_exact;
        ] );
      ("props", props);
    ]
