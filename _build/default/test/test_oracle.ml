(* Tests for the exact-decimal oracle. *)

module Nat = Bignum.Nat
module Bigint = Bignum.Bigint
module Ratio = Bignum.Ratio
open Oracle

let digits_string d = String.concat "" (Array.to_list (Array.map string_of_int d))

let qtest ?(count = 300) name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

let decompose_pos x =
  match Fp.Ieee.decompose x with
  | Fp.Value.Finite v when not v.neg -> v
  | _ -> Alcotest.failf "not a positive finite double: %g" x

let test_exact_digits_known () =
  let check x expected_digits expected_k =
    let digits, k =
      Exact_decimal.exact_digits ~base:10 Fp.Format_spec.binary64
        (decompose_pos x)
    in
    Alcotest.(check string)
      (Printf.sprintf "digits of %.17g" x)
      expected_digits (digits_string digits);
    Alcotest.(check int) (Printf.sprintf "k of %.17g" x) expected_k k
  in
  check 1.0 "1" 1;
  check 3.0 "3" 1;
  check 0.5 "5" 0;
  check 0.125 "125" 0;
  check 100.0 "1" 3;
  (* The canonical example: the double nearest 0.1 is exactly this 55-digit
     decimal. *)
  check 0.1 "1000000000000000055511151231257827021181583404541015625" 0;
  (* Smallest positive denormal: 2^-1074, a 751-digit expansion starting
     with 494065... at 10^-323. *)
  let digits, k =
    Exact_decimal.exact_digits ~base:10 Fp.Format_spec.binary64
      (decompose_pos (Int64.float_of_bits 1L))
  in
  Alcotest.(check int) "denormal k" (-323) k;
  Alcotest.(check int) "denormal digit count" 751 (Array.length digits);
  Alcotest.(check string) "denormal leading digits" "494065645841246544"
    (String.sub (digits_string digits) 0 18)

let test_exact_digits_base2 () =
  let digits, k =
    Exact_decimal.exact_digits ~base:2 Fp.Format_spec.binary64
      (decompose_pos 0.625)
  in
  Alcotest.(check string) "0.625 in binary" "101" (digits_string digits);
  Alcotest.(check int) "0.625 binary k" 0 k

let test_exact_digits_rejects () =
  Alcotest.check_raises "odd base"
    (Invalid_argument "Exact_decimal.exact_digits: base must be even, in [2,36]")
    (fun () ->
      ignore
        (Exact_decimal.exact_digits ~base:3 Fp.Format_spec.binary64
           (decompose_pos 1.0)))

let test_round_significant_known () =
  let check r nd expected_digits expected_k =
    let digits, k = Exact_decimal.round_significant ~base:10 ~ndigits:nd r in
    Alcotest.(check string)
      (Printf.sprintf "%s to %d digits" (Ratio.to_string r) nd)
      expected_digits (digits_string digits);
    Alcotest.(check int)
      (Printf.sprintf "%s to %d digits (k)" (Ratio.to_string r) nd)
      expected_k k
  in
  check (Ratio.of_ints 1 3) 7 "3333333" 0;
  check (Ratio.of_ints 2 3) 7 "6666667" 0;
  check (Ratio.of_ints 1 3) 10 "3333333333" 0;
  check (Ratio.of_int 12345) 3 "123" 5;
  check (Ratio.of_int 12355) 3 "124" 5;
  (* round-half-even both ways *)
  check (Ratio.of_int 125) 2 "12" 3;
  check (Ratio.of_int 135) 2 "14" 3;
  (* carry cascade promotes the exponent *)
  check (Ratio.of_ints 9999 10000) 2 "10" 1;
  check (Ratio.of_ints 99999 10) 4 "1000" 5;
  (* exact values pad with trailing zeros *)
  check (Ratio.of_int 5) 4 "5000" 1;
  check (Ratio.of_ints 1 1000) 3 "100" (-2)

let test_round_significant_other_bases () =
  let digits, k =
    Exact_decimal.round_significant ~base:2 ~ndigits:5 (Ratio.of_ints 1 3)
  in
  (* 1/3 = 0.0101010101...b; 5 significant bits from the leading 1:
     0.010101 rounds to 0.010101 -> digits 10101, k = -1 *)
  Alcotest.(check string) "1/3 base 2" "10101" (digits_string digits);
  Alcotest.(check int) "1/3 base 2 k" (-1) k;
  let digits, k =
    Exact_decimal.round_significant ~base:16 ~ndigits:3 (Ratio.of_int 4095)
  in
  Alcotest.(check (array int)) "4095 base 16" [| 15; 15; 15 |] digits;
  Alcotest.(check int) "4095 base 16 k" 3 k;
  (* 4095.5 to 3 hex digits ties to even 0x1000, promoting k *)
  let digits, k =
    Exact_decimal.round_significant ~base:16 ~ndigits:3 (Ratio.of_ints 8191 2)
  in
  Alcotest.(check (array int)) "8191/2 base 16" [| 1; 0; 0 |] digits;
  Alcotest.(check int) "8191/2 base 16 k" 4 k

let test_round_at_position () =
  let check ?tie r pos expected =
    Alcotest.(check string)
      (Printf.sprintf "%s at 10^%d" (Ratio.to_string r) pos)
      expected
      (Nat.to_string (Exact_decimal.round_at_position ?tie ~base:10 ~pos r))
  in
  check (Ratio.of_ints 25 2) 0 "12";
  (* 12.5 -> even *)
  check (Ratio.of_ints 27 2) 0 "14";
  (* 13.5 -> even *)
  check ~tie:Exact_decimal.Half_up (Ratio.of_ints 25 2) 0 "13";
  check ~tie:Exact_decimal.Half_down (Ratio.of_ints 25 2) 0 "12";
  check (Ratio.of_int 12345) 2 "123";
  check (Ratio.of_ints 1 1000) (-2) "0";
  check (Ratio.of_ints 1 100) (-2) "1"

(* ------------------------------------------------------------------ *)
(* Properties *)

let arb_pos_ratio =
  QCheck.make ~print:Ratio.to_string
    QCheck.Gen.(
      map2
        (fun n d -> Ratio.of_ints (n + 1) (d + 1))
        (int_bound 1_000_000) (int_bound 1_000_000))

let arb_pos_double =
  QCheck.make ~print:string_of_float
    QCheck.Gen.(
      map
        (fun bits ->
          let x = Float.abs (Int64.float_of_bits bits) in
          if Float.is_nan x || x = Float.infinity || x = 0. then 1.5 else x)
        ui64)

let value_of_digits ~base digits k =
  (* 0.d1...dn × base^k as a rational *)
  let n = Array.length digits in
  Ratio.mul
    (Ratio.of_bigint (Bigint.of_nat (Exact_decimal.digits_to_nat ~base digits)))
    (Ratio.pow (Ratio.of_int base) (k - n))

let props =
  [
    qtest "round_significant is within half ulp"
      QCheck.(pair arb_pos_ratio (QCheck.int_range 1 12))
      (fun (r, nd) ->
        let digits, k = Exact_decimal.round_significant ~base:10 ~ndigits:nd r in
        let v = value_of_digits ~base:10 digits k in
        let ulp = Ratio.pow (Ratio.of_int 10) (k - nd) in
        let err = Ratio.abs (Ratio.sub v r) in
        Ratio.compare err (Ratio.mul Ratio.half ulp) <= 0
        && Array.length digits = nd
        && digits.(0) > 0);
    qtest "round_significant monotone in ndigits"
      QCheck.(pair arb_pos_ratio (QCheck.int_range 2 10))
      (fun (r, nd) ->
        (* the (nd+2)-digit rounding is at least as close as the nd-digit *)
        let d1, k1 = Exact_decimal.round_significant ~base:10 ~ndigits:nd r in
        let d2, k2 =
          Exact_decimal.round_significant ~base:10 ~ndigits:(nd + 2) r
        in
        let e1 = Ratio.abs (Ratio.sub (value_of_digits ~base:10 d1 k1) r) in
        let e2 = Ratio.abs (Ratio.sub (value_of_digits ~base:10 d2 k2) r) in
        Ratio.compare e2 e1 <= 0);
    qtest "exact_digits reconstructs the double" arb_pos_double (fun x ->
        let v = decompose_pos x in
        let digits, k =
          Exact_decimal.exact_digits ~base:10 Fp.Format_spec.binary64 v
        in
        Ratio.equal
          (value_of_digits ~base:10 digits k)
          (Fp.Value.to_ratio Fp.Format_spec.binary64 v));
    qtest "exact_digits has no zero padding" arb_pos_double (fun x ->
        let digits, _ =
          Exact_decimal.exact_digits ~base:10 Fp.Format_spec.binary64
            (decompose_pos x)
        in
        digits.(0) <> 0 && digits.(Array.length digits - 1) <> 0);
    qtest "rounding exact expansions is the identity" arb_pos_double (fun x ->
        let v = decompose_pos x in
        let digits, k =
          Exact_decimal.exact_digits ~base:10 Fp.Format_spec.binary64 v
        in
        let nd = Array.length digits in
        let digits', k' =
          Exact_decimal.round_significant ~base:10 ~ndigits:nd
            (Fp.Value.to_ratio Fp.Format_spec.binary64 v)
        in
        k = k' && digits = digits');
    qtest "round_at_position error bound"
      QCheck.(pair arb_pos_ratio (QCheck.int_range (-6) 6))
      (fun (r, pos) ->
        let n = Exact_decimal.round_at_position ~base:10 ~pos r in
        let v =
          Ratio.mul
            (Ratio.of_bigint (Bigint.of_nat n))
            (Ratio.pow (Ratio.of_int 10) pos)
        in
        let half_q = Ratio.mul Ratio.half (Ratio.pow (Ratio.of_int 10) pos) in
        Ratio.compare (Ratio.abs (Ratio.sub v r)) half_q <= 0);
  ]

let () =
  Alcotest.run "oracle"
    [
      ( "exact-digits",
        [
          Alcotest.test_case "known doubles" `Quick test_exact_digits_known;
          Alcotest.test_case "binary output base" `Quick test_exact_digits_base2;
          Alcotest.test_case "rejects odd bases" `Quick test_exact_digits_rejects;
        ] );
      ( "rounding",
        [
          Alcotest.test_case "round_significant" `Quick
            test_round_significant_known;
          Alcotest.test_case "other bases" `Quick
            test_round_significant_other_bases;
          Alcotest.test_case "round_at_position" `Quick test_round_at_position;
        ] );
      ("props", props);
    ]
