test/test_cformat.ml: Alcotest Dragon Float Int64 Printf QCheck QCheck_alcotest String
