test/test_baselines.ml: Alcotest Array Baselines Bignum Dragon Float Format_spec Fp Ieee Int64 List Oracle Printf QCheck QCheck_alcotest Reader Rounding Value Workloads
