test/test_ext64.ml: Alcotest Array Baselines Bignum Dragon Ext64 Fast_shortest Float Fp Gay_heuristic Int64 List Naive_fixed Printf QCheck QCheck_alcotest Workloads
