test/test_ext64.mli:
