test/test_fp.ml: Alcotest Bignum Float Format_spec Fp Gaps Ieee Int64 List QCheck QCheck_alcotest Rounding Value
