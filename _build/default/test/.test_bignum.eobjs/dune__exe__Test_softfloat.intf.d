test/test_softfloat.mli:
