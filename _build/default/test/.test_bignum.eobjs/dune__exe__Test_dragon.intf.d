test/test_dragon.mli:
