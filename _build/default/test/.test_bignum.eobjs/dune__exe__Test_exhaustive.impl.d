test/test_exhaustive.ml: Alcotest Array Bignum Dragon Fixed_format Format_spec Fp Free_format Ieee Int64 List Printf Reader Reference Render Rounding Scaling Value
