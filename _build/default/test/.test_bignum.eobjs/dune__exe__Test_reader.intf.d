test/test_reader.mli:
