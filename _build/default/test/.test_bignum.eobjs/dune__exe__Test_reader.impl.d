test/test_reader.ml: Alcotest Array Bignum Dragon Float Format_spec Fp Ieee Int64 List Oracle Printf QCheck QCheck_alcotest Reader Rounding String Value
