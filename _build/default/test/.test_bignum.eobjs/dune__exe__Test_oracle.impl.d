test/test_oracle.ml: Alcotest Array Bignum Exact_decimal Float Fp Int64 Oracle Printf QCheck QCheck_alcotest String
