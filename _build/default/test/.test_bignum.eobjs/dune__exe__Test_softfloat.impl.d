test/test_softfloat.ml: Alcotest Bignum Dragon Float Format_spec Fp Ieee Int64 List Printf QCheck QCheck_alcotest Reader Rounding Softfloat Value
