test/test_cformat.mli:
