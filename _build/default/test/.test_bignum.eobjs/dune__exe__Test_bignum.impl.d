test/test_bignum.ml: Alcotest Bignum Float Int Int64 List Printf QCheck QCheck_alcotest String
