(* Tests for the floating-point representation substrate. *)

module Nat = Bignum.Nat
module Ratio = Bignum.Ratio
open Fp

let value = Alcotest.testable Value.pp Value.equal

let fin ?(neg = false) f e = { Value.neg; f = Nat.of_int f; e }
let pow2 k = Nat.pow_int 2 k

let qtest ?(count = 300) name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

(* ------------------------------------------------------------------ *)
(* Decomposition of known binary64 values *)

let test_decompose_known () =
  Alcotest.(check value) "1.0" (Value.Finite (fin 1 0 |> fun v -> { v with f = pow2 52; e = -52 }))
    (Ieee.decompose 1.0);
  Alcotest.(check value) "0.5"
    (Value.Finite { neg = false; f = pow2 52; e = -53 })
    (Ieee.decompose 0.5);
  Alcotest.(check value) "0.1"
    (Value.Finite
       { neg = false; f = Nat.of_string "7205759403792794"; e = -56 })
    (Ieee.decompose 0.1);
  Alcotest.(check value) "max_float"
    (Value.Finite
       { neg = false; f = Nat.pred (pow2 53); e = 971 })
    (Ieee.decompose Float.max_float);
  Alcotest.(check value) "min denormal"
    (Value.Finite { neg = false; f = Nat.one; e = -1074 })
    (Ieee.decompose (Int64.float_of_bits 1L));
  Alcotest.(check value) "-2.5"
    (Value.Finite { neg = true; f = Nat.of_int 5; e = -1 } |> fun v ->
     match v with
     | Value.Finite fv -> Value.Finite (Value.normalize Format_spec.binary64 fv)
     | _ -> v)
    (Ieee.decompose (-2.5));
  Alcotest.(check value) "+0" (Value.Zero false) (Ieee.decompose 0.);
  Alcotest.(check value) "-0" (Value.Zero true) (Ieee.decompose (-0.));
  Alcotest.(check value) "inf" (Value.Inf false) (Ieee.decompose Float.infinity);
  Alcotest.(check value) "-inf" (Value.Inf true)
    (Ieee.decompose Float.neg_infinity);
  Alcotest.(check value) "nan" Value.Nan (Ieee.decompose Float.nan)

let test_decompose_binary16 () =
  let d bits = Ieee.decompose_bits Ieee.spec_binary16 (Int64.of_int bits) in
  Alcotest.(check value) "1.0h"
    (Value.Finite { neg = false; f = pow2 10; e = -10 })
    (d 0x3C00);
  Alcotest.(check value) "max half 65504"
    (Value.Finite { neg = false; f = Nat.of_int 2047; e = 5 })
    (d 0x7BFF);
  Alcotest.(check value) "min denormal half"
    (Value.Finite { neg = false; f = Nat.one; e = -24 })
    (d 0x0001);
  Alcotest.(check value) "inf half" (Value.Inf false) (d 0x7C00);
  Alcotest.(check value) "nan half" Value.Nan (d 0x7E01);
  Alcotest.(check value) "-2.0h"
    (Value.Finite { neg = true; f = pow2 10; e = -9 })
    (d 0xC000)

let test_compose_round_trip_known () =
  List.iter
    (fun x ->
      Alcotest.(check (float 0.)) (string_of_float x) x
        (Ieee.compose (Ieee.decompose x)))
    [ 1.0; -1.0; 0.1; 1e300; 1e-300; Float.max_float; Float.min_float;
      4.94e-324; 3.14159; -0.0; Float.infinity ]

(* ------------------------------------------------------------------ *)
(* Successor / predecessor *)

let test_succ_pred_floats () =
  Alcotest.(check (float 0.)) "succ 1.0" (1.0 +. epsilon_float)
    (Ieee.succ_float 1.0);
  Alcotest.(check (float 0.)) "pred 1.0" (1.0 -. (epsilon_float /. 2.))
    (Ieee.pred_float 1.0);
  Alcotest.(check (float 0.)) "succ 0" (Int64.float_of_bits 1L)
    (Ieee.succ_float 0.);
  Alcotest.(check (float 0.)) "succ max is inf" Float.infinity
    (Ieee.succ_float Float.max_float);
  Alcotest.(check (float 0.)) "pred min denormal" 0.
    (Ieee.pred_float (Int64.float_of_bits 1L))

let test_gaps_boundary () =
  let fmt = Format_spec.binary64 in
  let one = { Value.neg = false; f = pow2 52; e = -52 } in
  Alcotest.(check bool) "gap below 1.0 narrow" true
    (Gaps.gap_low_is_narrow fmt one);
  (match Gaps.pred fmt one with
  | Value.Finite p ->
    Alcotest.(check bool) "pred of 1.0 mantissa full" true
      (Nat.equal p.f (Nat.pred (pow2 53)));
    Alcotest.(check int) "pred of 1.0 exponent" (-53) p.e
  | _ -> Alcotest.fail "pred of 1.0 not finite");
  (match Gaps.succ fmt { Value.neg = false; f = Nat.pred (pow2 53); e = -53 } with
  | Value.Finite s ->
    Alcotest.(check bool) "succ wraps to next binade" true
      (Nat.equal s.f (pow2 52) && s.e = -52)
  | _ -> Alcotest.fail "succ not finite");
  Alcotest.(check value) "succ max_float = inf" (Value.Inf false)
    (Gaps.succ fmt { Value.neg = false; f = Nat.pred (pow2 53); e = 971 });
  Alcotest.(check value) "pred min denormal = 0" (Value.Zero false)
    (Gaps.pred fmt { Value.neg = false; f = Nat.one; e = -1074 })

let test_rounding_range_one () =
  let fmt = Format_spec.binary64 in
  let one = { Value.neg = false; f = pow2 52; e = -52 } in
  let low, high = Gaps.rounding_range fmt one in
  let r_of_parts n k = Ratio.make (Bignum.Bigint.of_int n) (Bignum.Bigint.of_nat (pow2 k)) in
  Alcotest.(check bool) "low = 1 - 2^-54" true
    (Ratio.equal low (Ratio.sub Ratio.one (r_of_parts 1 54)));
  Alcotest.(check bool) "high = 1 + 2^-53" true
    (Ratio.equal high (Ratio.add Ratio.one (r_of_parts 1 53)))

(* ------------------------------------------------------------------ *)
(* Value helpers *)

let test_normalize () =
  let fmt = Format_spec.binary64 in
  let v = Value.normalize fmt { Value.neg = false; f = Nat.of_int 5; e = -1 } in
  Alcotest.(check bool) "2.5 normalizes to 5*2^50 scale" true
    (Nat.equal v.f (Nat.mul (Nat.of_int 5) (pow2 50)) && v.e = -51);
  let d = Value.normalize fmt { Value.neg = false; f = Nat.of_int 3; e = -1074 } in
  Alcotest.(check bool) "denormal stays put" true
    (Nat.equal d.f (Nat.of_int 3) && d.e = -1074);
  Alcotest.(check bool) "denormal detection" true (Value.is_denormalized fmt d);
  Alcotest.check_raises "overflow rejected"
    (Invalid_argument "Value.normalize: exponent out of range") (fun () ->
      ignore (Value.normalize fmt { Value.neg = false; f = Nat.one; e = 2000 }))

let test_compare_to_ratio () =
  let fmt = Format_spec.binary64 in
  let a = { Value.neg = false; f = Nat.of_int 3; e = 0 } in
  let b = { Value.neg = false; f = Nat.of_int 3; e = 1 } in
  Alcotest.(check int) "3 < 6" (-1) (Value.compare_finite fmt a b);
  Alcotest.(check int) "-3 > -6" 1
    (Value.compare_finite fmt { a with neg = true } { b with neg = true });
  Alcotest.(check int) "neg < pos" (-1)
    (Value.compare_finite fmt { a with neg = true } a);
  Alcotest.(check bool) "to_ratio 3*2^-2" true
    (Ratio.equal
       (Value.to_ratio fmt { Value.neg = false; f = Nat.of_int 3; e = -2 })
       (Ratio.of_ints 3 4))

let test_rounding_modes () =
  Alcotest.(check (pair bool bool)) "even, to-even" (true, true)
    (Rounding.boundary_ok Rounding.To_nearest_even ~mantissa_even:true);
  Alcotest.(check (pair bool bool)) "odd, to-even" (false, false)
    (Rounding.boundary_ok Rounding.To_nearest_even ~mantissa_even:false);
  Alcotest.(check (pair bool bool)) "ties away" (true, false)
    (Rounding.boundary_ok Rounding.To_nearest_away ~mantissa_even:false);
  Alcotest.(check (pair bool bool)) "ties toward zero" (false, true)
    (Rounding.boundary_ok Rounding.To_nearest_toward_zero ~mantissa_even:true);
  Alcotest.check_raises "directed has no midpoints"
    (Invalid_argument "Rounding.boundary_ok: directed mode has no midpoints")
    (fun () ->
      ignore (Rounding.boundary_ok Rounding.Toward_zero ~mantissa_even:true))

let test_validation () =
  Alcotest.check_raises "base < 2"
    (Invalid_argument "Format_spec.make: base must be >= 2") (fun () ->
      ignore (Format_spec.make ~b:1 ~p:3 ~emin:0 ~emax:1 ()));
  Alcotest.check_raises "p < 1"
    (Invalid_argument "Format_spec.make: precision must be >= 1") (fun () ->
      ignore (Format_spec.make ~b:2 ~p:0 ~emin:0 ~emax:1 ()));
  Alcotest.check_raises "emin > emax"
    (Invalid_argument "Format_spec.make: emin > emax") (fun () ->
      ignore (Format_spec.make ~b:2 ~p:3 ~emin:2 ~emax:1 ()));
  Alcotest.check_raises "spec too wide"
    (Invalid_argument "Ieee.make_spec: encodings wider than 64 bits not supported")
    (fun () -> ignore (Ieee.make_spec ~exp_bits:15 ~mant_bits:60 ()));
  Alcotest.check_raises "fields too small"
    (Invalid_argument "Ieee.make_spec: field widths too small") (fun () ->
      ignore (Ieee.make_spec ~exp_bits:1 ~mant_bits:10 ()))

let test_value_to_string () =
  Alcotest.(check string) "zero" "0" (Value.to_string (Value.Zero false));
  Alcotest.(check string) "neg zero" "-0" (Value.to_string (Value.Zero true));
  Alcotest.(check string) "inf" "+inf" (Value.to_string (Value.Inf false));
  Alcotest.(check string) "nan" "nan" (Value.to_string Value.Nan);
  Alcotest.(check string) "finite" "-5*b^-1"
    (Value.to_string (Value.finite_int ~neg:true ~f:5 ~e:(-1) ()));
  Alcotest.(check bool) "finite_int of zero mantissa collapses" true
    (Value.equal (Value.finite_int ~f:0 ~e:3 ()) (Value.Zero false))

(* ------------------------------------------------------------------ *)
(* Properties *)

let arb_bits = QCheck.int64

let arb_finite_pos_float =
  QCheck.make ~print:string_of_float
    QCheck.Gen.(
      map
        (fun bits ->
          let x = Int64.float_of_bits bits in
          let x = Float.abs x in
          if Float.is_nan x || x = Float.infinity || x = 0. then 1.5 else x)
        ui64)

let props =
  [
    qtest "bits round trip through decompose" arb_bits (fun bits ->
        let v = Ieee.decompose_bits Ieee.spec_binary64 bits in
        match v with
        | Value.Nan -> true (* many NaN payloads collapse; skip *)
        | _ -> Int64.equal (Ieee.compose_bits Ieee.spec_binary64 v) bits);
    qtest "succ_float agrees with Gaps.succ" arb_finite_pos_float (fun x ->
        QCheck.assume (x <> Float.max_float);
        match Ieee.decompose x with
        | Value.Finite v ->
          Value.equal
            (Gaps.succ Format_spec.binary64 v)
            (Ieee.decompose (Ieee.succ_float x))
        | _ -> false);
    qtest "pred_float agrees with Gaps.pred" arb_finite_pos_float (fun x ->
        match Ieee.decompose x with
        | Value.Finite v ->
          Value.equal
            (Gaps.pred Format_spec.binary64 v)
            (Ieee.decompose (Ieee.pred_float x))
        | _ -> false);
    qtest "succ then pred is identity" arb_finite_pos_float (fun x ->
        QCheck.assume (x <> Float.max_float);
        match Ieee.decompose x with
        | Value.Finite v -> (
          match Gaps.succ Format_spec.binary64 v with
          | Value.Finite s -> Value.equal (Gaps.pred Format_spec.binary64 s) (Value.Finite v)
          | _ -> false)
        | _ -> false);
    qtest "rounding range brackets v" arb_finite_pos_float (fun x ->
        match Ieee.decompose x with
        | Value.Finite v ->
          let fmt = Format_spec.binary64 in
          let low, high = Gaps.rounding_range fmt v in
          let rv = Value.to_ratio fmt v in
          Ratio.compare low rv < 0 && Ratio.compare rv high < 0
        | _ -> false);
    qtest "range midpoints are neighbour averages" arb_finite_pos_float
      (fun x ->
        QCheck.assume (x <> Float.max_float);
        match Ieee.decompose x with
        | Value.Finite v -> (
          let fmt = Format_spec.binary64 in
          let low, high = Gaps.rounding_range fmt v in
          let rv = Value.to_ratio fmt v in
          let avg a b = Ratio.div (Ratio.add a b) (Ratio.of_int 2) in
          let high_ok =
            match Gaps.succ fmt v with
            | Value.Finite s -> Ratio.equal high (avg rv (Value.to_ratio fmt s))
            | _ -> true
          in
          match Gaps.pred fmt v with
          | Value.Finite p -> high_ok && Ratio.equal low (avg rv (Value.to_ratio fmt p))
          | Value.Zero _ -> high_ok && Ratio.equal low (avg rv Ratio.zero)
          | _ -> false)
        | _ -> false);
    qtest "binary32 bits round trip"
      (QCheck.int_range 0 ((1 lsl 31) - 1))
      (fun bits ->
        let bits = Int64.of_int bits in
        match Ieee.decompose_bits Ieee.spec_binary32 bits with
        | Value.Nan -> true
        | v -> Int64.equal (Ieee.compose_bits Ieee.spec_binary32 v) bits);
  ]

let () =
  Alcotest.run "fp"
    [
      ( "ieee",
        [
          Alcotest.test_case "decompose known doubles" `Quick
            test_decompose_known;
          Alcotest.test_case "decompose binary16" `Quick test_decompose_binary16;
          Alcotest.test_case "compose round trips" `Quick
            test_compose_round_trip_known;
          Alcotest.test_case "succ/pred floats" `Quick test_succ_pred_floats;
        ] );
      ( "gaps",
        [
          Alcotest.test_case "binade boundary" `Quick test_gaps_boundary;
          Alcotest.test_case "rounding range of 1.0" `Quick
            test_rounding_range_one;
        ] );
      ( "value",
        [
          Alcotest.test_case "normalize" `Quick test_normalize;
          Alcotest.test_case "compare and to_ratio" `Quick test_compare_to_ratio;
          Alcotest.test_case "rounding modes" `Quick test_rounding_modes;
          Alcotest.test_case "validation errors" `Quick test_validation;
          Alcotest.test_case "value to_string" `Quick test_value_to_string;
        ] );
      ("props", props);
    ]
