(* Tests for the arbitrary-precision substrate: units on hand-picked values
   and qcheck properties for the algebraic laws the printer relies on. *)

module Nat = Bignum.Nat
module Bigint = Bignum.Bigint
module Ratio = Bignum.Ratio

let nat = Alcotest.testable Nat.pp Nat.equal
let bigint = Alcotest.testable Bigint.pp Bigint.equal

let n_of_string = Nat.of_string
let z_of_string = Bigint.of_string

(* ------------------------------------------------------------------ *)
(* Generators *)

(* A natural of roughly [limbs] 30-bit limbs, built limb by limb so all
   sizes appear, including zero. *)
let gen_nat_sized limbs =
  let open QCheck.Gen in
  list_size (int_bound limbs) (int_bound ((1 lsl 30) - 1)) >|= fun ds ->
  List.fold_left
    (fun acc d -> Nat.add (Nat.shift_left acc 30) (Nat.of_int d))
    Nat.zero ds

let arb_nat =
  QCheck.make ~print:Nat.to_string (gen_nat_sized 20)

let arb_nat_big =
  QCheck.make ~print:Nat.to_string (gen_nat_sized 80)

let arb_pos_nat =
  QCheck.make ~print:Nat.to_string
    QCheck.Gen.(gen_nat_sized 20 >|= Nat.succ)

let gen_bigint =
  QCheck.Gen.(
    pair bool (gen_nat_sized 12) >|= fun (neg, mag) ->
    let v = Bigint.of_nat mag in
    if neg then Bigint.neg v else v)

let arb_bigint = QCheck.make ~print:Bigint.to_string gen_bigint

let arb_small_int = QCheck.int_range (-1_000_000) 1_000_000

let qtest ?(count = 300) name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

(* ------------------------------------------------------------------ *)
(* Nat units *)

let test_nat_basics () =
  Alcotest.(check bool) "zero is zero" true (Nat.is_zero Nat.zero);
  Alcotest.(check nat) "0+0" Nat.zero (Nat.add Nat.zero Nat.zero);
  Alcotest.(check nat) "1+1" Nat.two (Nat.add Nat.one Nat.one);
  Alcotest.(check (option int)) "to_int 42" (Some 42)
    (Nat.to_int_opt (Nat.of_int 42));
  Alcotest.(check (option int))
    "to_int max_int" (Some max_int)
    (Nat.to_int_opt (Nat.of_int max_int));
  (* regression: a 63-bit value must not wrap into the sign bit *)
  Alcotest.(check (option int)) "to_int of 63-bit value" None
    (Nat.to_int_opt (n_of_string "7081250850576618860"));
  Alcotest.(check (option int)) "to_int of 2^62" None
    (Nat.to_int_opt (Nat.pow_int 2 62));
  Alcotest.(check bool) "even 0" true (Nat.is_even Nat.zero);
  Alcotest.(check bool) "even 7" false (Nat.is_even (Nat.of_int 7));
  Alcotest.(check bool) "even 10^30" true
    (Nat.is_even (n_of_string "1000000000000000000000000000000"))

let test_nat_string_round_trip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (Nat.to_string (n_of_string s)))
    [ "0"; "1"; "10"; "999999999"; "1000000000"; "1073741824";
      "123456789012345678901234567890";
      "340282366920938463463374607431768211456" (* 2^128 *) ]

let test_nat_string_prefixes () =
  Alcotest.(check nat) "hex" (Nat.of_int 255) (n_of_string "0xff");
  Alcotest.(check nat) "oct" (Nat.of_int 8) (n_of_string "0o10");
  Alcotest.(check nat) "bin" (Nat.of_int 5) (n_of_string "0b101");
  Alcotest.(check nat) "underscores" (Nat.of_int 1_000_000)
    (n_of_string "1_000_000");
  Alcotest.check_raises "empty" (Invalid_argument "Nat.of_string: empty")
    (fun () -> ignore (n_of_string ""))

let test_nat_sub () =
  Alcotest.(check nat) "10-3" (Nat.of_int 7)
    (Nat.sub (Nat.of_int 10) (Nat.of_int 3));
  Alcotest.(check nat) "borrow chain"
    (n_of_string "999999999999999999")
    (Nat.sub (n_of_string "1000000000000000000") Nat.one);
  Alcotest.check_raises "negative"
    (Invalid_argument "Nat.sub: negative result") (fun () ->
      ignore (Nat.sub Nat.one Nat.two))

let test_nat_pow () =
  Alcotest.(check nat) "2^10" (Nat.of_int 1024) (Nat.pow_int 2 10);
  Alcotest.(check nat) "10^0" Nat.one (Nat.pow_int 10 0);
  Alcotest.(check string) "10^50"
    ("1" ^ String.make 50 '0')
    (Nat.to_string (Nat.pow_int 10 50));
  (* The power table the paper mentions: 10^325 must be exact. *)
  Alcotest.(check int) "10^325 digit count" 326
    (String.length (Nat.to_string (Nat.pow_int 10 325)))

let test_nat_divmod_hand () =
  let check_div a b q r =
    let qa, ra = Nat.divmod (n_of_string a) (n_of_string b) in
    Alcotest.(check nat) (a ^ " / " ^ b) (n_of_string q) qa;
    Alcotest.(check nat) (a ^ " mod " ^ b) (n_of_string r) ra
  in
  check_div "0" "7" "0" "0";
  check_div "7" "7" "1" "0";
  check_div "6" "7" "0" "6";
  check_div "100" "7" "14" "2";
  check_div "340282366920938463463374607431768211456" "18446744073709551616"
    "18446744073709551616" "0";
  (* Exercises the Knuth-D qhat correction path: divisor just above a power
     of the limb base and dividend chosen adversarially. *)
  check_div "1208925819614629174706176" "1099511627777"
    "1099511627775" "1";
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Nat.divmod Nat.one Nat.zero))

let test_nat_shift () =
  Alcotest.(check nat) "1 << 100 >> 100" Nat.one
    (Nat.shift_right (Nat.shift_left Nat.one 100) 100);
  Alcotest.(check nat) "shl 0" (Nat.of_int 5)
    (Nat.shift_left (Nat.of_int 5) 0);
  Alcotest.(check nat) "shr to zero" Nat.zero
    (Nat.shift_right (Nat.of_int 5) 3);
  Alcotest.(check nat) "shr partial" (Nat.of_int 2)
    (Nat.shift_right (Nat.of_int 5) 1)

let test_nat_bits () =
  Alcotest.(check int) "bitlen 0" 0 (Nat.bit_length Nat.zero);
  Alcotest.(check int) "bitlen 1" 1 (Nat.bit_length Nat.one);
  Alcotest.(check int) "bitlen 2^52" 53
    (Nat.bit_length (Nat.shift_left Nat.one 52));
  Alcotest.(check bool) "testbit" true
    (Nat.test_bit (Nat.shift_left Nat.one 91) 91);
  Alcotest.(check bool) "testbit off" false
    (Nat.test_bit (Nat.shift_left Nat.one 91) 90)

let test_nat_base_strings () =
  Alcotest.(check string) "255 hex" "ff" (Nat.to_string_base ~base:16 (Nat.of_int 255));
  Alcotest.(check string) "35 in base 36" "z" (Nat.to_string_base ~base:36 (Nat.of_int 35));
  Alcotest.(check string) "zero" "0" (Nat.to_string_base ~base:2 Nat.zero);
  Alcotest.(check nat) "uppercase accepted" (Nat.of_int 255)
    (Nat.of_string_base ~base:16 "FF");
  Alcotest.(check nat) "separators" (Nat.of_int 255)
    (Nat.of_string_base ~base:16 "f_f");
  Alcotest.check_raises "digit out of range"
    (Invalid_argument "Nat.of_string_base: digit out of range") (fun () ->
      ignore (Nat.of_string_base ~base:8 "9"))

let test_nat_base_digits () =
  Alcotest.(check nat) "base 16 round trip"
    (n_of_string "0xdeadbeefcafebabe")
    (Nat.of_base_digits ~base:16
       (Nat.to_base_digits ~base:16 (n_of_string "0xdeadbeefcafebabe")));
  let digits = Nat.to_base_digits ~base:2 (Nat.of_int 10) in
  Alcotest.(check (array int)) "binary of 10" [| 1; 0; 1; 0 |] digits;
  Alcotest.(check (array int)) "zero digits" [| 0 |]
    (Nat.to_base_digits ~base:7 Nat.zero)

let test_nat_frexp () =
  let m, e = Nat.frexp (Nat.of_int 1) in
  Alcotest.(check (float 0.)) "frexp 1 mantissa" 0.5 m;
  Alcotest.(check int) "frexp 1 exp" 1 e;
  let m, e = Nat.frexp (Nat.shift_left Nat.one 100) in
  Alcotest.(check (float 0.)) "frexp 2^100 mantissa" 0.5 m;
  Alcotest.(check int) "frexp 2^100 exp" 101 e

(* ------------------------------------------------------------------ *)
(* Nat properties *)

let nat_props =
  [
    qtest "invariant holds after ops" QCheck.(pair arb_nat arb_nat)
      (fun (a, b) ->
        Nat.check_invariant (Nat.add a b)
        && Nat.check_invariant (Nat.mul a b)
        && Nat.check_invariant (Nat.shift_left a 17)
        && Nat.check_invariant (Nat.shift_right a 17));
    qtest "add commutative" QCheck.(pair arb_nat arb_nat) (fun (a, b) ->
        Nat.equal (Nat.add a b) (Nat.add b a));
    qtest "add associative" QCheck.(triple arb_nat arb_nat arb_nat)
      (fun (a, b, c) ->
        Nat.equal (Nat.add (Nat.add a b) c) (Nat.add a (Nat.add b c)));
    qtest "sub undoes add" QCheck.(pair arb_nat arb_nat) (fun (a, b) ->
        Nat.equal (Nat.sub (Nat.add a b) b) a);
    qtest "mul commutative" QCheck.(pair arb_nat arb_nat) (fun (a, b) ->
        Nat.equal (Nat.mul a b) (Nat.mul b a));
    qtest "mul distributes" QCheck.(triple arb_nat arb_nat arb_nat)
      (fun (a, b, c) ->
        Nat.equal
          (Nat.mul a (Nat.add b c))
          (Nat.add (Nat.mul a b) (Nat.mul a c)));
    qtest ~count:120 "karatsuba = schoolbook"
      QCheck.(pair arb_nat_big arb_nat_big)
      (fun (a, b) ->
        Nat.equal (Nat.mul_karatsuba a b) (Nat.mul_schoolbook a b));
    qtest "divmod identity" QCheck.(pair arb_nat arb_pos_nat) (fun (a, b) ->
        let q, r = Nat.divmod a b in
        Nat.equal a (Nat.add (Nat.mul q b) r) && Nat.compare r b < 0);
    qtest ~count:150 "divmod reconstructs planted q,r"
      QCheck.(triple arb_nat arb_pos_nat arb_nat)
      (fun (q, b, r0) ->
        let r = snd (Nat.divmod r0 b) in
        let a = Nat.add (Nat.mul q b) r in
        let q', r' = Nat.divmod a b in
        Nat.equal q q' && Nat.equal r r');
    qtest "divmod_int agrees with divmod"
      QCheck.(pair arb_nat (QCheck.int_range 1 ((1 lsl 30) - 1)))
      (fun (a, b) ->
        let q1, r1 = Nat.divmod_int a b in
        let q2, r2 = Nat.divmod a (Nat.of_int b) in
        Nat.equal q1 q2 && Nat.equal (Nat.of_int r1) r2);
    qtest "string round trip" arb_nat (fun a ->
        Nat.equal a (Nat.of_string (Nat.to_string a)));
    qtest "base digits round trip"
      QCheck.(pair arb_nat (QCheck.int_range 2 36))
      (fun (a, b) ->
        Nat.equal a (Nat.of_base_digits ~base:b (Nat.to_base_digits ~base:b a)));
    qtest "base string round trip"
      QCheck.(pair arb_nat (QCheck.int_range 2 36))
      (fun (a, b) ->
        Nat.equal a (Nat.of_string_base ~base:b (Nat.to_string_base ~base:b a)));
    qtest "shift round trip" QCheck.(pair arb_nat (QCheck.int_range 0 200))
      (fun (a, k) -> Nat.equal a (Nat.shift_right (Nat.shift_left a k) k));
    qtest "shift_left is mul by 2^k"
      QCheck.(pair arb_nat (QCheck.int_range 0 200))
      (fun (a, k) ->
        Nat.equal (Nat.shift_left a k) (Nat.mul a (Nat.pow_int 2 k)));
    qtest "bit_length bounds" arb_pos_nat (fun a ->
        let l = Nat.bit_length a in
        Nat.compare a (Nat.pow_int 2 l) < 0
        && Nat.compare a (Nat.pow_int 2 (l - 1)) >= 0);
    qtest "compare antisymmetric" QCheck.(pair arb_nat arb_nat) (fun (a, b) ->
        Nat.compare a b = -Nat.compare b a);
    qtest "gcd divides" QCheck.(pair arb_pos_nat arb_pos_nat) (fun (a, b) ->
        let g = Nat.gcd a b in
        Nat.is_zero (snd (Nat.divmod a g)) && Nat.is_zero (snd (Nat.divmod b g)));
    qtest "pow splits on exponents"
      QCheck.(triple arb_pos_nat (QCheck.int_range 0 8) (QCheck.int_range 0 8))
      (fun (b, i, j) ->
        Nat.equal (Nat.pow b (i + j)) (Nat.mul (Nat.pow b i) (Nat.pow b j)));
    qtest "int ops agree with native"
      QCheck.(pair (QCheck.int_range 0 1_000_000) (QCheck.int_range 0 1_000_000))
      (fun (a, b) ->
        Nat.to_int_opt (Nat.add (Nat.of_int a) (Nat.of_int b)) = Some (a + b)
        && Nat.to_int_opt (Nat.mul (Nat.of_int a) (Nat.of_int b)) = Some (a * b));
    qtest "frexp brackets value" arb_pos_nat (fun a ->
        let m, e = Nat.frexp a in
        m >= 0.5 && m < 1. && e = Nat.bit_length a);
    qtest "int64 unsigned round trip" QCheck.int64 (fun bits ->
        match Nat.to_int64_unsigned_opt (Nat.of_int64_unsigned bits) with
        | Some back -> Int64.equal back bits
        | None -> false);
    qtest "to_int64 rejects wide values" arb_pos_nat (fun a ->
        let wide = Nat.shift_left (Nat.succ a) 64 in
        Nat.to_int64_unsigned_opt wide = None);
  ]

(* ------------------------------------------------------------------ *)
(* Bigint *)

let test_bigint_basics () =
  Alcotest.(check bigint) "neg neg" (Bigint.of_int 5)
    (Bigint.neg (Bigint.neg (Bigint.of_int 5)));
  Alcotest.(check int) "sign -3" (-1) (Bigint.sign (Bigint.of_int (-3)));
  Alcotest.(check int) "sign 0" 0 (Bigint.sign Bigint.zero);
  Alcotest.(check string) "-2^70"
    "-1180591620717411303424"
    (Bigint.to_string (z_of_string "-1180591620717411303424"));
  Alcotest.(check bigint) "minus zero is zero" Bigint.zero
    (Bigint.neg Bigint.zero)

let test_bigint_ediv () =
  let check a b q r =
    let qa, ra = Bigint.ediv_rem (Bigint.of_int a) (Bigint.of_int b) in
    Alcotest.(check bigint)
      (Printf.sprintf "%d ediv %d q" a b)
      (Bigint.of_int q) qa;
    Alcotest.(check bigint)
      (Printf.sprintf "%d ediv %d r" a b)
      (Bigint.of_int r) ra
  in
  check 7 2 3 1;
  check (-7) 2 (-4) 1;
  check 7 (-2) (-3) 1;
  check (-7) (-2) 4 1;
  check (-6) 2 (-3) 0;
  check 0 5 0 0

let bigint_props =
  [
    qtest "matches native int arithmetic"
      QCheck.(pair arb_small_int arb_small_int)
      (fun (a, b) ->
        let za = Bigint.of_int a and zb = Bigint.of_int b in
        Bigint.to_int_opt (Bigint.add za zb) = Some (a + b)
        && Bigint.to_int_opt (Bigint.sub za zb) = Some (a - b)
        && Bigint.to_int_opt (Bigint.mul za zb) = Some (a * b)
        && Bigint.compare za zb = Int.compare a b);
    qtest "ediv_rem identity and range"
      QCheck.(pair arb_bigint arb_bigint)
      (fun (a, b) ->
        QCheck.assume (not (Bigint.is_zero b));
        let q, r = Bigint.ediv_rem a b in
        Bigint.equal a (Bigint.add (Bigint.mul q b) r)
        && Bigint.sign r >= 0
        && Bigint.compare r (Bigint.abs b) < 0);
    qtest "fdiv is floor"
      QCheck.(pair arb_small_int arb_small_int)
      (fun (a, b) ->
        QCheck.assume (b <> 0);
        let q = Bigint.fdiv (Bigint.of_int a) (Bigint.of_int b) in
        Bigint.to_int_opt q
        = Some (int_of_float (Float.floor (float_of_int a /. float_of_int b))));
    qtest "string round trip" arb_bigint (fun a ->
        Bigint.equal a (Bigint.of_string (Bigint.to_string a)));
    qtest "abs/min/max" QCheck.(pair arb_bigint arb_bigint) (fun (a, b) ->
        Bigint.sign (Bigint.abs a) >= 0
        && Bigint.compare (Bigint.min a b) (Bigint.max a b) <= 0);
  ]

(* ------------------------------------------------------------------ *)
(* Ratio *)

let arb_ratio =
  QCheck.make
    ~print:Ratio.to_string
    QCheck.Gen.(
      pair gen_bigint (gen_nat_sized 6) >|= fun (n, d) ->
      Ratio.make n (Bigint.of_nat (Nat.succ d)))

let test_ratio_basics () =
  let r = Ratio.of_ints 6 4 in
  Alcotest.(check string) "reduced" "3/2" (Ratio.to_string r);
  Alcotest.(check string) "integer shows plain" "7"
    (Ratio.to_string (Ratio.of_int 7));
  Alcotest.(check string) "negative denominator normalised" "-1/2"
    (Ratio.to_string (Ratio.make (Bigint.of_int 2) (Bigint.of_int (-4))));
  Alcotest.(check bool) "1/3 < 1/2" true
    Ratio.O.(Ratio.of_ints 1 3 < Ratio.half)

let test_ratio_floor_ceil () =
  let check n d fl ce =
    let r = Ratio.of_ints n d in
    Alcotest.(check bigint)
      (Printf.sprintf "floor %d/%d" n d)
      (Bigint.of_int fl) (Ratio.floor r);
    Alcotest.(check bigint)
      (Printf.sprintf "ceil %d/%d" n d)
      (Bigint.of_int ce) (Ratio.ceil r)
  in
  check 7 2 3 4;
  check (-7) 2 (-4) (-3);
  check 6 3 2 2;
  check (-6) 3 (-2) (-2);
  check 0 5 0 0

let ratio_props =
  [
    qtest "add/sub inverse" QCheck.(pair arb_ratio arb_ratio) (fun (a, b) ->
        Ratio.equal a (Ratio.sub (Ratio.add a b) b));
    qtest "mul/div inverse" QCheck.(pair arb_ratio arb_ratio) (fun (a, b) ->
        QCheck.assume (Ratio.sign b <> 0);
        Ratio.equal a (Ratio.div (Ratio.mul a b) b));
    qtest "distributivity" QCheck.(triple arb_ratio arb_ratio arb_ratio)
      (fun (a, b, c) ->
        Ratio.equal
          (Ratio.mul a (Ratio.add b c))
          (Ratio.add (Ratio.mul a b) (Ratio.mul a c)));
    qtest "fractional in [0,1)" arb_ratio (fun a ->
        let f = Ratio.fractional a in
        Ratio.sign f >= 0 && Ratio.compare f Ratio.one < 0);
    qtest "floor <= x < floor+1" arb_ratio (fun a ->
        let fl = Ratio.of_bigint (Ratio.floor a) in
        Ratio.compare fl a <= 0
        && Ratio.compare a (Ratio.add fl Ratio.one) < 0);
    qtest "pow negative inverts" QCheck.(pair arb_ratio (QCheck.int_range 1 5))
      (fun (a, k) ->
        QCheck.assume (Ratio.sign a <> 0);
        Ratio.equal (Ratio.pow a (-k)) (Ratio.inv (Ratio.pow a k)));
  ]

let () =
  Alcotest.run "bignum"
    [
      ( "nat-units",
        [
          Alcotest.test_case "basics" `Quick test_nat_basics;
          Alcotest.test_case "string round trip" `Quick
            test_nat_string_round_trip;
          Alcotest.test_case "string prefixes" `Quick test_nat_string_prefixes;
          Alcotest.test_case "sub" `Quick test_nat_sub;
          Alcotest.test_case "pow" `Quick test_nat_pow;
          Alcotest.test_case "divmod hand cases" `Quick test_nat_divmod_hand;
          Alcotest.test_case "shifts" `Quick test_nat_shift;
          Alcotest.test_case "bits" `Quick test_nat_bits;
          Alcotest.test_case "base digits" `Quick test_nat_base_digits;
          Alcotest.test_case "base strings" `Quick test_nat_base_strings;
          Alcotest.test_case "frexp" `Quick test_nat_frexp;
        ] );
      ("nat-props", nat_props);
      ( "bigint-units",
        [
          Alcotest.test_case "basics" `Quick test_bigint_basics;
          Alcotest.test_case "euclidean division" `Quick test_bigint_ediv;
        ] );
      ("bigint-props", bigint_props);
      ( "ratio-units",
        [
          Alcotest.test_case "basics" `Quick test_ratio_basics;
          Alcotest.test_case "floor/ceil" `Quick test_ratio_floor_ceil;
        ] );
      ("ratio-props", ratio_props);
    ]
