(* C-format emulation: byte-identical to the host's (correctly rounded)
   printf across formats, precisions and value ranges. *)

let qtest ?(count = 400) name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

let arb_double =
  QCheck.make ~print:(Printf.sprintf "%h")
    QCheck.Gen.(
      map
        (fun bits ->
          let x = Int64.float_of_bits bits in
          if Float.is_nan x then 1.5 else x)
        ui64)

let test_e_known () =
  let check precision x expected =
    Alcotest.(check string)
      (Printf.sprintf "%%.%de %h" precision x)
      expected
      (Dragon.Cformat.e ~precision x)
  in
  check 6 0.1 "1.000000e-01";
  check 2 12345. "1.23e+04";
  check 0 12345. "1e+04";
  check 0 1e23 "1e+23";
  check 16 1e23 "9.9999999999999992e+22";
  check 3 (-0.0005) "-5.000e-04";
  check 2 0. "0.00e+00";
  check 4 5e-324 "4.9407e-324";
  check 2 Float.infinity "inf";
  check 2 Float.nan "nan"

let test_f_known () =
  let check precision x expected =
    Alcotest.(check string)
      (Printf.sprintf "%%.%df %h" precision x)
      expected
      (Dragon.Cformat.f ~precision x)
  in
  check 2 3.14159 "3.14";
  check 0 2.5 "2" (* ties to even, like hardware *);
  check 0 3.5 "4";
  check 6 0.1 "0.100000";
  check 10 0.1 "0.1000000000";
  check 20 0.1 "0.10000000000000000555";
  check 3 (-0.0001) "-0.000";
  check 0 0. "0";
  check 2 1234567.891 "1234567.89"

let test_g_known () =
  let check precision x expected =
    Alcotest.(check string)
      (Printf.sprintf "%%.%dg %h" precision x)
      expected
      (Dragon.Cformat.g ~precision x)
  in
  check 6 0.1 "0.1";
  check 6 100000. "100000";
  check 6 1000000. "1e+06";
  check 6 0.0001 "0.0001";
  check 6 0.00001 "1e-05";
  check 3 1234. "1.23e+03";
  check 0 1234. "1e+03";
  check 15 0.30000000000000004 "0.3";
  check 17 0.30000000000000004 "0.30000000000000004";
  check 6 0. "0"

let props =
  [
    qtest "e matches host printf"
      QCheck.(pair arb_double (QCheck.int_range 0 17))
      (fun (x, precision) ->
        String.equal
          (Dragon.Cformat.e ~precision x)
          (Printf.sprintf "%.*e" precision x));
    qtest "f matches host printf"
      QCheck.(pair arb_double (QCheck.int_range 0 20))
      (fun (x, precision) ->
        String.equal
          (Dragon.Cformat.f ~precision x)
          (Printf.sprintf "%.*f" precision x));
    qtest "g matches host printf"
      QCheck.(pair arb_double (QCheck.int_range 0 17))
      (fun (x, precision) ->
        String.equal
          (Dragon.Cformat.g ~precision x)
          (Printf.sprintf "%.*g" precision x));
  ]

let () =
  Alcotest.run "cformat"
    [
      ( "known",
        [
          Alcotest.test_case "%e" `Quick test_e_known;
          Alcotest.test_case "%f" `Quick test_f_known;
          Alcotest.test_case "%g" `Quick test_g_known;
        ] );
      ("vs-host", props);
    ]
