(* End-to-end tests of the bdprint command-line tool: run the built
   executable and check its stdout. *)

let bdprint args =
  (* this test binary lives in _build/default/test; the CLI next door *)
  let exe =
    Filename.concat
      (Filename.dirname (Filename.dirname Sys.executable_name))
      "bin/bdprint.exe"
  in
  let tmp = Filename.temp_file "bdprint" ".out" in
  let cmd = Printf.sprintf "%s %s > %s 2>/dev/null" exe args tmp in
  let status = Sys.command cmd in
  let ic = open_in tmp in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove tmp;
  (status, List.rev !lines)

let check_output name args expected =
  let status, lines = bdprint args in
  Alcotest.(check int) (name ^ " exit") 0 status;
  Alcotest.(check (list string)) name expected lines

let test_free () =
  check_output "shortest" "0.1 1e23" [ "0.1"; "1e23" ];
  check_output "negative and specials" "-- -1.5 inf nan" [ "-1.5"; "inf"; "nan" ];
  (* reading and printing share the mode, so any input echoes in shortest
     form under that mode; the asymmetric paper example (read even, print
     away) needs the library API rather than the CLI *)
  check_output "mode away round-trips" "--mode away 1e23" [ "1e23" ];
  check_output "mode zero round-trips" "--mode zero 0.3" [ "0.3" ]

let test_fixed () =
  check_output "relative digits binary32" "--digits 10 --format binary32 0.333333333"
    [ "0.33333334##" ];
  check_output "places with hash" "--places 20 100"
    [ "100.000000000000000#####" ];
  check_output "pi to 4 places" "--places 4 3.14159265358979" [ "3.1416" ]

let test_bases_and_hex () =
  check_output "base 16" "--base 16 255.9375" [ "ff.f" ];
  check_output "base 2" "--base 2 0.625" [ "0.101" ];
  check_output "hex input" "0x1.8p+1" [ "3.0" ];
  check_output "hex output" "--hex 0.1" [ "0x1.999999999999ap-4" ]

let test_errors () =
  let status, _ = bdprint "not-a-number" in
  Alcotest.(check bool) "bad input fails" true (status <> 0);
  let status, _ = bdprint "--digits 0 1.0" in
  Alcotest.(check bool) "digits 0 fails cleanly" true (status <> 0);
  let status, _ = bdprint "--digits 3 --places 2 1.0" in
  Alcotest.(check bool) "conflicting flags fail" true (status <> 0)

let () =
  Alcotest.run "cli"
    [
      ( "bdprint",
        [
          Alcotest.test_case "free format" `Quick test_free;
          Alcotest.test_case "fixed format" `Quick test_fixed;
          Alcotest.test_case "bases and hex" `Quick test_bases_and_hex;
          Alcotest.test_case "errors" `Quick test_errors;
        ] );
    ]
