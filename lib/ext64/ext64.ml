type t = { m : int64; e : int }

(* Full 64x64 -> 128 unsigned multiply on int64 bit patterns.

   Certified by bdlint's width pass: with a and b read as unsigned
   64-bit values, every intermediate provably stays inside [0, 2^64):
   the half-words are 32-bit, each cross product is at most
   (2^32-1)^2 = 2^64 - 2^33 + 1, mid at most 3·(2^32-1) (so mid lsr 32
   is at most 2), and high sums to exactly 2^64 - 1 in the worst case.
   [mid] is masked to its low 32 bits before the left shift — the shift
   discards those bits anyway (mod 2^64), so the mask is an identity
   that makes the no-overflow argument explicit. *)
let umul128 (a [@lint.width 64]) (b [@lint.width 64]) =
  let mask32 = 0xFFFFFFFFL in
  let ah = Int64.shift_right_logical a 32 and al = Int64.logand a mask32 in
  let bh = Int64.shift_right_logical b 32 and bl = Int64.logand b mask32 in
  let hh = Int64.mul ah bh in
  let hl = Int64.mul ah bl in
  let lh = Int64.mul al bh in
  let ll = Int64.mul al bl in
  let mid =
    Int64.add
      (Int64.add (Int64.shift_right_logical ll 32) (Int64.logand hl mask32))
      (Int64.logand lh mask32)
  in
  let low =
    Int64.logor
      (Int64.shift_left (Int64.logand mid mask32) 32)
      (Int64.logand ll mask32)
  in
  let high =
    Int64.add
      (Int64.add hh (Int64.shift_right_logical hl 32))
      (Int64.add (Int64.shift_right_logical lh 32)
         (Int64.shift_right_logical mid 32))
  in
  (high, low)
[@@lint.certified_width 64]

let top_bit_set m = Int64.compare m 0L < 0 (* bit 63 as sign bit *)

let rec normalize m e =
  if Int64.equal m 0L then invalid_arg "Ext64: zero"
  else if top_bit_set m then { m; e }
  else normalize (Int64.shift_left m 1) (e - 1)

let of_int n =
  if n <= 0 then invalid_arg "Ext64.of_int: need positive";
  normalize (Int64.of_int n) 0

let of_float x =
  if not (Float.is_finite x) || x <= 0. then
    invalid_arg "Ext64.of_float: need positive finite";
  let frac, ex = Float.frexp x in
  (* frac in [0.5, 1): 53 significant bits, exact at 2^53 *)
  let m53 = Int64.of_float (Float.ldexp frac 53) in
  normalize m53 (ex - 53)

let mul a b =
  let high, low = umul128 a.m b.m in
  let e = a.e + b.e + 64 in
  (* product of two normalized mantissas is in [2^126, 2^128): at most one
     normalizing shift *)
  let high, low, e =
    if top_bit_set high then (high, low, e)
    else
      ( Int64.logor (Int64.shift_left high 1)
          (Int64.shift_right_logical low 63),
        Int64.shift_left low 1,
        e - 1 )
  in
  (* round to nearest-even on the dropped 64 bits *)
  let round_up =
    top_bit_set low
    && (not (Int64.equal (Int64.shift_left low 1) 0L)
       || Int64.equal (Int64.logand high 1L) 1L)
  in
  if round_up then begin
    let high' = Int64.add high 1L in
    if Int64.equal high' 0L then { m = Int64.min_int; e = e + 1 }
    else { m = high'; e }
  end
  else { m = high; e }

(* Correctly rounded 64-bit mantissa of 10^n (n may be negative),
   computed with exact integer arithmetic. *)
let exact_pow10 =
  let module Nat = Bignum.Nat in
  let int64_of_nat n = Option.get (Nat.to_int64_unsigned_opt n) in
  let seed n =
    (* correctly rounded 64-bit mantissa of 10^n (n may be negative) *)
    if n >= 0 then begin
      let v = Nat.pow_int 10 n in
      let bits = Nat.bit_length v in
      if bits <= 64 then
        normalize (Int64.shift_left (int64_of_nat v) (64 - bits)) (bits - 64)
      else begin
        let shifted = Nat.shift_right v (bits - 65) in
        (* 65 bits: round on the last *)
        let m65 = shifted in
        let half = Nat.test_bit m65 0 in
        let m64 = Nat.shift_right m65 1 in
        let m64 = if half then Nat.succ m64 else m64 in
        let m64, e =
          if Nat.bit_length m64 = 65 then (Nat.shift_right m64 1, bits - 63)
          else (m64, bits - 64)
        in
        { m = int64_of_nat m64; e }
      end
    end
    else begin
      (* 10^n = 2^(e) * (2^127-ish / 10^-n): divide with rounding *)
      let den = Nat.pow_int 10 (-n) in
      let dbits = Nat.bit_length den in
      (* choose shift so the quotient has 65 bits *)
      let shift = dbits + 64 in
      let num = Nat.shift_left Nat.one shift in
      let q, _ = Nat.divmod num den in
      let qbits = Nat.bit_length q in
      let q, shift =
        if qbits > 65 then (Nat.shift_right q (qbits - 65), shift - (qbits - 65))
        else (q, shift)
      in
      let half = Nat.test_bit q 0 in
      let m64 = Nat.shift_right q 1 in
      let m64 = if half then Nat.succ m64 else m64 in
      let m64, shift =
        if Nat.bit_length m64 = 65 then (Nat.shift_right m64 1, shift - 1)
        else (m64, shift)
      in
      { m = int64_of_nat m64; e = 1 - shift }
    end
  in
  seed

(* seeds for the chunk-composed model table *)
let pos_seeds = Array.init 9 (fun i -> exact_pow10 (1 lsl i))
  [@@lint.domain_safe "read-only lookup table built at init"]
let neg_seeds = Array.init 9 (fun i -> exact_pow10 (-(1 lsl i)))
  [@@lint.domain_safe "read-only lookup table built at init"]

let pow10 n =
  if n = 0 then of_int 1
  else if abs n > 350 then invalid_arg "Ext64.pow10: out of range"
  else begin
    let seeds = if n > 0 then pos_seeds else neg_seeds in
    let n = abs n in
    let acc = ref None in
    for i = 0 to 8 do
      if n land (1 lsl i) <> 0 then
        acc :=
          (match !acc with
          | None -> Some seeds.(i)
          | Some a -> Some (mul a seeds.(i)))
    done;
    Option.get !acc
  end

(* Correctly rounded powers, memoized over the full range.  Domain-local
   so the fill-and-publish writes never race when fast paths run on the
   service layer's worker domains. *)
let correct_table : t option array Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Array.make 701 None)

(* Fast-path-vs-bignum split of the extended-precision tier: a memo hit
   is two table reads; a miss runs the exact bignum computation.  Gated
   on the telemetry switch (this sits on the reader's hot path). *)
let pow10_path path =
  Telemetry.Metrics.counter
    ~labels:[ ("path", path) ]
    ~help:"Correctly rounded 10^n lookups: per-domain memo hit vs exact \
           bignum computation."
    "bdprint_ext64_pow10_total"

let m_pow10_memo = pow10_path "memo"
let m_pow10_computed = pow10_path "computed"

let pow10_correct n =
  if abs n > 350 then invalid_arg "Ext64.pow10_correct: out of range";
  let i = n + 350 in
  let correct_table = Domain.DLS.get correct_table in
  match correct_table.(i) with
  | Some t ->
    if Telemetry.Metrics.enabled () then Telemetry.Metrics.incr m_pow10_memo;
    t
  | None ->
    if Telemetry.Metrics.enabled () then Telemetry.Metrics.incr m_pow10_computed;
    let t = if n = 0 then of_int 1 else exact_pow10 n in
    correct_table.(i) <- Some t;
    t

let to_int64_round t =
  (* value = m * 2^e with m in [2^63, 2^64) *)
  if t.e >= -1 then invalid_arg "Ext64.to_int64_round: too large";
  let drop = -t.e in
  if drop > 64 then 0L
  else if drop = 64 then if top_bit_set t.m then 1L else 0L
  else begin
    let kept = Int64.shift_right_logical t.m drop in
    let dropped = Int64.shift_left t.m (64 - drop) in
    let round_up =
      top_bit_set dropped
      && (not (Int64.equal (Int64.shift_left dropped 1) 0L)
         || Int64.equal (Int64.logand kept 1L) 1L)
    in
    if round_up then Int64.add kept 1L else kept
  end

let to_float t =
  (* the mantissa is unsigned; split off the low bit so the conversion of
     the high 63 bits stays in Int64's positive range *)
  let high = Int64.to_float (Int64.shift_right_logical t.m 1) in
  let low = Int64.to_float (Int64.logand t.m 1L) in
  Float.ldexp ((high *. 2.) +. low) t.e
