(** A tiny software model of x87-style extended precision: positive reals
    as a 64-bit mantissa (top bit set) and a power-of-two exponent, with
    multiplication rounded to nearest-even.

    This is what made mid-90s [printf]s {e mostly} right at 17 digits:
    scaling by powers of ten in a 64-bit-mantissa format carries ~19.2
    decimal digits, so the 17th digit only flips when the value sits
    within a few thousandths of a rounding boundary — the 0.1%-2.5%
    incorrect rates of Table 3.  {!Float_fixed} is built on it. *)

type t = private {
  m : int64;  (** unsigned mantissa, [2^63 <= m < 2^64] *)
  e : int;  (** value is [m × 2^e] *)
}

val umul128 : int64 -> int64 -> int64 * int64
(** [(high, low)] halves of the full unsigned 64x64→128-bit product of
    two int64 bit patterns — the shared 128-bit primitive under {!mul}
    and the cross-check tests for the fast path's 28-bit-limb products
    ({!Fastpath.convert_shortest} carves its Q4.112 frame out of the
    same product computed limbwise in native ints). *)

val of_float : float -> t
(** Exact embedding of a positive finite double. *)

val of_int : int -> t
(** Exact embedding of a positive integer up to 62 bits. *)

val mul : t -> t -> t
(** Product rounded to nearest-even at 64 bits. *)

val pow10 : int -> t
(** [10^n] for [-350 <= n <= 350], assembled by chunked multiplication of
    correctly rounded seeds (so large powers carry a few ulps of error,
    like the tables the mid-90s implementations shipped).  This is the
    {e model} table used by {!Float_fixed}. *)

val pow10_correct : int -> t
(** [10^n] for [-350 <= n <= 350], correctly rounded to 64 bits (computed
    with exact integer arithmetic once and memoized).  This is the table
    the {e certified} fast paths use: with it, a scaled product carries at
    most ~1 ulp of error, which keeps their fallback rates low. *)

val to_int64_round : t -> int64
(** Nearest integer (ties to even).
    @raise Invalid_argument when the value exceeds 2^62. *)

val to_float : t -> float
(** Nearest double, for debugging. *)
