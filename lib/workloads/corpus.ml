let random_positive_normals ~seed n =
  let st = Random.State.make [| seed |] in
  Array.init n (fun _ ->
      (* biased exponent 1..2046, random 52-bit mantissa field *)
      let be = 1 + Random.State.int st 2046 in
      let m = Random.State.int64 st (Int64.shift_left 1L 52) in
      Int64.float_of_bits
        (Int64.logor (Int64.shift_left (Int64.of_int be) 52) m))

let random_finite ~seed n =
  let st = Random.State.make [| seed |] in
  Array.init n (fun _ ->
      let rec pick () =
        let bits = Random.State.int64 st Int64.max_int in
        let sign = if Random.State.bool st then Int64.min_int else 0L in
        let x = Int64.float_of_bits (Int64.logor bits sign) in
        if Float.is_finite x then x else pick ()
      in
      pick ())

let random_denormals ~seed n =
  let st = Random.State.make [| seed |] in
  Array.init n (fun _ ->
      let m = Int64.add 1L (Random.State.int64 st (Int64.sub (Int64.shift_left 1L 52) 1L)) in
      Int64.float_of_bits m)

(* Decimal strings next to exact float-pair midpoints.  The midpoint of
   consecutive doubles f*2^e and (f+1)*2^e is (2f+1)*2^(e-1), whose exact
   decimal expansion is finite; truncating it (and nudging the last kept
   digit) yields inputs whose correct rounding is decided by digits
   arbitrarily far down the string. *)
let torture_reader_inputs ~seed n =
  let st = Random.State.make [| seed |] in
  let render digits k =
    let body =
      String.init (Array.length digits) (fun i ->
          Char.chr (Char.code '0' + digits.(i)))
    in
    Printf.sprintf "0.%se%d" body k
  in
  let one_value () =
    let be = 1 + Random.State.int st 2046 in
    let m = Random.State.int64 st (Int64.shift_left 1L 52) in
    let x =
      Int64.float_of_bits
        (Int64.logor (Int64.shift_left (Int64.of_int be) 52) m)
    in
    match Fp.Ieee.decompose x with
    | Fp.Value.Finite v ->
      let midpoint =
        {
          Fp.Value.neg = false;
          f = Bignum.Nat.succ (Bignum.Nat.shift_left v.Fp.Value.f 1);
          e = v.Fp.Value.e - 1;
        }
      in
      let digits, k =
        Oracle.Exact_decimal.exact_digits ~base:10 Fp.Format_spec.binary64
          midpoint
      in
      let cut = min (Array.length digits) (17 + Random.State.int st 9) in
      let prefix = Array.sub digits 0 cut in
      let variants = ref [ render digits k ] in
      if Array.length digits > cut then begin
        variants := render prefix k :: !variants;
        if prefix.(cut - 1) < 9 then begin
          let up = Array.copy prefix in
          up.(cut - 1) <- up.(cut - 1) + 1;
          variants := render up k :: !variants
        end
      end;
      !variants
    | _ -> []
  in
  let acc = ref [] in
  while List.length !acc < n do
    acc := List.rev_append (one_value ()) !acc
  done;
  Array.of_list (List.filteri (fun i _ -> i < n) !acc)

let hard_cases =
  [|
    0.1;
    0.2;
    0.3;
    1. /. 3.;
    2. /. 3.;
    1e23 (* exact midpoint between two doubles *);
    9.109e-31 (* electron mass: long shortest form *);
    5e-324 (* min denormal *);
    2.2250738585072011e-308 (* the famous slow-strtod value *);
    2.2250738585072014e-308 (* min normal *);
    1.7976931348623157e308 (* max finite *);
    4.450147717014403e-308 (* double of min normal *);
    9007199254740992. (* 2^53 *);
    9007199254740994.;
    1.;
    1. +. epsilon_float;
    2. ** 60.;
    2. ** (-60.);
    8.98846567431158e307 (* 2^1023 *);
    5.562684646268003e-309 (* mid-denormal territory *);
    3.141592653589793;
    2.718281828459045;
    6.02214076e23;
    1.6e-35;
    123456789.123456789;
    0.30000000000000004 (* 0.1 + 0.2 *);
    7.038531e-26 (* binary32 hard case, as a double *);
  |]
  [@@lint.domain_safe "read-only benchmark corpus built at init"]
