(** Convenience API over OCaml floats (IEEE binary64).

    [print] is the paper's free-format algorithm end to end: the result is
    the shortest decimal (or other-base) string that reads back as the
    same double under the given reader rounding mode.  [print_fixed] is
    the fixed-format algorithm with [#] marks.  Zeros, infinities and NaNs
    render as ["0"], ["-0"], ["inf"], ["-inf"], ["nan"]. *)

val print :
  ?base:int ->
  ?mode:Fp.Rounding.mode ->
  ?strategy:Scaling.strategy ->
  ?tie:Generate.tie ->
  ?notation:Render.notation ->
  float ->
  string
(** Free format.  Defaults: base 10, reader rounds to nearest even, fast
    estimator, output ties round up, automatic notation. *)

val print_fixed :
  ?base:int ->
  ?mode:Fp.Rounding.mode ->
  ?tie:Generate.tie ->
  ?notation:Render.notation ->
  Fixed_format.request ->
  float ->
  string
(** Fixed format to an absolute position or a number of significant
    digits. *)

val shortest : float -> string
(** [print] with all defaults — the drop-in [float -> string]. *)

val print_exact : ?base:int -> ?notation:Render.notation -> float -> string
(** The {e complete} exact decimal (or other even-base) expansion of the
    double — every binary float has a finite one.  [0.1] prints as its
    true 55-digit value; the smallest denormal has 751 digits.  Useful
    for seeing exactly which real number a float is. *)

val print_hex : float -> string
(** C17 hexadecimal-significand notation ([0x1.999999999999ap-4] for
    [0.1]), the always-exact power-of-two special case of base
    conversion; matches the host's [%h] including denormals
    ([0x0.0000000000001p-1022]). *)

val print_value :
  ?base:int ->
  ?mode:Fp.Rounding.mode ->
  ?strategy:Scaling.strategy ->
  ?tie:Generate.tie ->
  ?notation:Render.notation ->
  Fp.Format_spec.t ->
  Fp.Value.t ->
  (string, Robust.Error.t) result
(** Free format for a decomposed value in any format.  Never raises:
    misuse (base outside 2..36), budget violations and injected faults
    all come back as [Error]. *)

val print_value_exn :
  ?base:int ->
  ?mode:Fp.Rounding.mode ->
  ?strategy:Scaling.strategy ->
  ?tie:Generate.tie ->
  ?notation:Render.notation ->
  Fp.Format_spec.t ->
  Fp.Value.t ->
  string
(** {!print_value} for call sites with statically valid arguments (the
    float convenience API and the examples).
    @raise Robust.Error.E on what {!print_value} reports as [Error]. *)

(** {2 Fast-path dispatch}

    Free-format conversions try the table-driven Q4.112 fast path
    ({!Fastpath}) before the exact kernels; an uncertain verdict falls
    back with byte-identical output either way. *)

val set_fastpath_enabled : bool -> unit
(** Steer the dispatch (benchmarks time the exact kernels by turning it
    off; [BDPRINT_NO_FASTPATH=1] does the same at startup). *)

val fastpath_enabled : unit -> bool

val fastpath_stats : unit -> int * int
(** [(hits, fallbacks)] from the [bdprint_fastpath_{hit,fallback}_total]
    counters; recorded only while telemetry is enabled. *)
