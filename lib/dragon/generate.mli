(** The digit-generation loop (paper, Figures 1 and 3).

    Digits come out most-significant first and never need a carry
    propagated back (Theorem 1): when the loop decides to round the last
    digit up, [d + 1] is guaranteed to stay below the base.

    The loop expects the {e pre-multiplied} convention of Figure 3: on
    entry [r], [m_plus] and [m_minus] have already absorbed one factor of
    the output base, so the first digit is [r / s] directly.  {!Scaling}
    establishes that convention (its [fixup] gets the off-by-one estimate
    case for free by skipping exactly this pre-multiplication).

    {2 Implementation paths}

    Three implementations produce byte-identical digits:

    - a {e word-sized fast path} that runs the whole loop in native
      ints when [r], [s], [m+], [m-] all fit machine words (common for
      small-exponent floats);
    - the {e scratch path}: in-place {!Bignum.Scratch} kernels over a
      per-domain pooled workspace, with the denominator normalized once
      per conversion for estimated-quotient short division — in steady
      state the loop allocates no minor words;
    - the {e pure path}: the original immutable {!Bignum.Nat} loop,
      kept as the differential reference and as the fallback for
      states that violate the scaling invariant.

    Telemetry counts fast- vs scratch-path conversions
    ([bdprint_generate_fastpath_total] /
    [bdprint_generate_scratchpath_total]) and the pool's limb
    high-water mark. *)

type tie = Closer_up | Closer_down | Closer_even
(** Strategy when the candidate outputs [d] and [d+1] are equidistant from
    the value; the paper's code rounds up. *)

val free : base:int -> tie:tie -> Boundaries.t -> int array
(** Run the loop to the shortest accepted output.  Termination condition
    (1) — the output would round up to [v] — keeps digit [d]; condition
    (2) — the incremented output would round down to [v] — yields [d+1];
    when both hold the closer one wins. *)

val free_count_only : base:int -> Boundaries.t -> int
(** Number of digits the loop would produce (used by statistics). *)

type stopped = {
  digits : int array;  (** accepted digits, last one already adjusted *)
  incremented : bool;  (** whether the last digit was rounded up *)
  rest : Bignum.Nat.t;  (** remainder [r_n] in Figure-1 units *)
  m_plus_n : Bignum.Nat.t;  (** [m⁺_n] in the same units *)
}

val free_stopped : base:int -> tie:tie -> Boundaries.t -> stopped
(** Like {!free} but exposing the final loop state, which fixed format
    needs to classify trailing positions as significant zeros or [#]
    marks. *)

(** {2 Path selection and accounting} *)

val set_force_pure : bool -> unit
(** Route every conversion through the pure-Nat reference path (the
    differential anchor).  Initialized from [BDPRINT_FORCE_PURE] at
    startup; tests and benchmarks flip it at runtime. *)

val force_pure : unit -> bool

val observe_finish : int -> unit
(** Records the digit-loop completion telemetry (loop-iteration
    histogram plus the output-digit budget observation) for a
    conversion that emitted this many digits.  Exposed so the
    table-driven fast path's dispatcher reports its hits through the
    same instruments as the exact kernels. *)

val fastpath_count : unit -> int
(** Conversions served by the word-sized fast path since startup (the
    [bdprint_generate_fastpath_total] counter; recorded only while
    telemetry is enabled). *)

val scratchpath_count : unit -> int
(** Same for the in-place scratch path. *)
