module Nat = Bignum.Nat
module Bigint = Bignum.Bigint
module Ratio = Bignum.Ratio

type t = { digits : int array; k : int }

module Trace = Telemetry.Trace

(* Shortest-output length per conversion (the paper's "average 15.2
   digits" distribution), recorded at the free-format entry point. *)
let h_digits =
  Telemetry.Metrics.histogram
    ~help:"Shortest free-format output length in significant digits."
    ~bounds:[| 1; 2; 4; 6; 8; 10; 12; 14; 16; 17; 18; 20; 24; 32; 64; 256;
               1024; 8192 |]
    "bdprint_free_format_digits"

(* Table-driven fast path (see {!Fastpath}): attempted before any Nat
   work when the conversion matches what the Q4.112 kernel certifies —
   decimal output, the default Fast_estimate strategy, a binary format
   with a mantissa in 53 bits, a to-nearest rounding mode, an exponent
   inside the power-of-ten table.  The tie strategy does not gate
   dispatch: exact ties are never certifiable, so every input whose
   output could depend on [tie] falls back to the exact kernels.  The
   fast path stands aside while faults are armed (it has no bignum trip
   sites to mirror) and under force-pure (it is not the differential
   anchor).  Bignum-bit budgets are deliberately not consulted on this
   path — it allocates no bignum at all — while deadlines and the
   output-digit budget keep the reference loop's per-digit cadence
   inside the kernel. *)
let try_fastpath ~base ~mode ~strategy fmt v =
  if
    base = 10
    && (match strategy with Scaling.Fast_estimate -> true | _ -> false)
    && fmt.Fp.Format_spec.b = 2
    && Fastpath.enabled ()
    && (not (Generate.force_pure ()))
    && (not (Robust.Faults.any_armed ()))
    && Fp.Rounding.is_nearest mode
  then begin
    let f_nat = v.Fp.Value.f in
    match Nat.to_int_opt f_nat with
    | Some f when f > 0 && f < 1 lsl 53 ->
      let bits = Nat.bit_length f_nat in
      let est = Scaling.fast_estimate_b10 ~bits ~e:v.Fp.Value.e in
      (* [Rounding.boundary_ok]'s high flag, without the tuple. *)
      let high_ok =
        match mode with
        | Fp.Rounding.To_nearest_even -> f land 1 = 0
        | Fp.Rounding.To_nearest_away -> false
        | _ -> true (* To_nearest_toward_zero; is_nearest already held *)
      in
      (* [Gaps.gap_low_is_narrow] in machine integers: the low gap is
         halved iff f sits on the normalization boundary b^(p-1), which
         for b = 2 and f < 2^53 can only happen when p <= 54. *)
      let narrow =
        v.Fp.Value.e > fmt.Fp.Format_spec.emin
        && fmt.Fp.Format_spec.p <= 54
        && f = 1 lsl (fmt.Fp.Format_spec.p - 1)
      in
      let t0 = Trace.start () in
      let r =
        Fastpath.convert_shortest ~f ~e:v.Fp.Value.e ~mantissa_bits:bits
          ~narrow ~high_ok ~est
      in
      Trace.finish Trace.Fastpath t0;
      r
    | _ -> None
  end
  else None

let convert ?(base = 10) ?(mode = Fp.Rounding.To_nearest_even)
    ?(strategy = Scaling.Fast_estimate) ?(tie = Generate.Closer_up) fmt v =
  if base < 2 || base > 36 then invalid_arg "Free_format.convert: base";
  match try_fastpath ~base ~mode ~strategy fmt v with
  | Some (digits, k) ->
    Generate.observe_finish (Array.length digits);
    if Telemetry.Metrics.enabled () then
      Telemetry.Metrics.observe h_digits (Array.length digits);
    { digits; k }
  | None ->
  let t0 = Trace.start () in
  let bnd = Boundaries.of_finite ~mode fmt v in
  Trace.finish Trace.Boundaries t0;
  let t0 = Trace.start () in
  let k, state =
    Scaling.scale strategy ~base ~b:fmt.Fp.Format_spec.b ~f:v.Fp.Value.f
      ~e:v.Fp.Value.e bnd
  in
  Trace.finish Trace.Scale t0;
  let t0 = Trace.start () in
  let digits = Generate.free ~base ~tie state in
  Trace.finish Trace.Generate t0;
  if Telemetry.Metrics.enabled () then
    Telemetry.Metrics.observe h_digits (Array.length digits);
  { digits; k }

let digit_count ?base ?mode ?strategy fmt v =
  Array.length (convert ?base ?mode ?strategy fmt v).digits

let to_ratio ~base t =
  let n = Array.length t.digits in
  Ratio.mul
    (Ratio.of_bigint (Bigint.of_nat (Nat.of_base_digits ~base t.digits)))
    (Ratio.pow (Ratio.of_int base) (t.k - n))

let equal a b = a.k = b.k && a.digits = b.digits

let pp fmt t =
  Format.fprintf fmt "0.%se%d"
    (String.concat ""
       (Array.to_list (Array.map string_of_int t.digits)))
    t.k
