module Nat = Bignum.Nat
module Bigint = Bignum.Bigint
module Ratio = Bignum.Ratio

type t = { digits : int array; k : int }

module Trace = Telemetry.Trace

(* Shortest-output length per conversion (the paper's "average 15.2
   digits" distribution), recorded at the free-format entry point. *)
let h_digits =
  Telemetry.Metrics.histogram
    ~help:"Shortest free-format output length in significant digits."
    ~bounds:[| 1; 2; 4; 6; 8; 10; 12; 14; 16; 17; 18; 20; 24; 32; 64; 256;
               1024; 8192 |]
    "bdprint_free_format_digits"

let convert ?(base = 10) ?(mode = Fp.Rounding.To_nearest_even)
    ?(strategy = Scaling.Fast_estimate) ?(tie = Generate.Closer_up) fmt v =
  if base < 2 || base > 36 then invalid_arg "Free_format.convert: base";
  let t0 = Trace.start () in
  let bnd = Boundaries.of_finite ~mode fmt v in
  Trace.finish Trace.Boundaries t0;
  let t0 = Trace.start () in
  let k, state =
    Scaling.scale strategy ~base ~b:fmt.Fp.Format_spec.b ~f:v.Fp.Value.f
      ~e:v.Fp.Value.e bnd
  in
  Trace.finish Trace.Scale t0;
  let t0 = Trace.start () in
  let digits = Generate.free ~base ~tie state in
  Trace.finish Trace.Generate t0;
  if Telemetry.Metrics.enabled () then
    Telemetry.Metrics.observe h_digits (Array.length digits);
  { digits; k }

let digit_count ?base ?mode ?strategy fmt v =
  Array.length (convert ?base ?mode ?strategy fmt v).digits

let to_ratio ~base t =
  let n = Array.length t.digits in
  Ratio.mul
    (Ratio.of_bigint (Bigint.of_nat (Nat.of_base_digits ~base t.digits)))
    (Ratio.pow (Ratio.of_int base) (t.k - n))

let equal a b = a.k = b.k && a.digits = b.digits

let pp fmt t =
  Format.fprintf fmt "0.%se%d"
    (String.concat ""
       (Array.to_list (Array.map string_of_int t.digits)))
    t.k
