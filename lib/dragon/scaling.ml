module Nat = Bignum.Nat

type strategy = Iterative | Float_log | Fast_estimate | Gay_taylor

let all = [ Iterative; Float_log; Fast_estimate; Gay_taylor ]

let strategy_name = function
  | Iterative -> "iterative"
  | Float_log -> "float-log"
  | Fast_estimate -> "fast-estimate"
  | Gay_taylor -> "gay-taylor"

(* Memoized powers of the output base, the paper's [esptt] table (Figure
   2 keeps 10^k for k <= 325).  Keyed by base; each table grows on
   demand.  Domain-local so parallel workers in the service layer never
   race on the growth-and-publish sequence: each domain fills its own
   table (a few hundred cheap multiplications, paid once per domain). *)
let power_tables : (int, Nat.t array ref) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let power ~base k =
  Robust.Faults.trip "scaling.power";
  if k < 0 then invalid_arg "Scaling.power: negative exponent";
  (* a power this large means a runaway scale request upstream *)
  Robust.Budget.check_bignum_bits
    (int_of_float
       (float_of_int k *. (log (float_of_int base) /. log 2.))
    + 64);
  if base = 2 then Nat.shift_left Nat.one k
  else if k > 1100 then Nat.pow_int base k
  else begin
    let power_tables = Domain.DLS.get power_tables in
    let table =
      match Hashtbl.find_opt power_tables base with
      | Some t -> t
      | None ->
        let t = ref [| Nat.one |] in
        Hashtbl.add power_tables base t;
        t
    in
    let filled = Array.length !table in
    if k >= filled then begin
      let grown = Array.make (k + 33) Nat.one in
      Array.blit !table 0 grown 0 filled;
      for i = filled to Array.length grown - 1 do
        grown.(i) <- Nat.mul_int grown.(i - 1) base
      done;
      table := grown
    end;
    !table.(k)
  end

(* Is B^k still too small, i.e. does high = (r + m+)/s reach past it?
   With an inclusive high endpoint the output may equal high, so high
   must stay strictly below B^k and the test uses >=. *)
let too_low (bnd : Boundaries.t) =
  let c = Nat.compare (Nat.add bnd.r bnd.m_plus) bnd.s in
  if bnd.high_ok then c >= 0 else c > 0

(* Pre-multiply r and the gap widths by B: the Figure-3 loop convention. *)
let premultiply ~base (bnd : Boundaries.t) =
  {
    bnd with
    r = Nat.mul_int bnd.r base;
    m_plus = Nat.mul_int bnd.m_plus base;
    m_minus = Nat.mul_int bnd.m_minus base;
  }

(* ------------------------------------------------------------------ *)
(* Steele & White's iterative search (Figure 1's [scale]). *)

let scale_iterative ~base (bnd : Boundaries.t) =
  let k = ref 0 in
  let bnd = ref bnd in
  while too_low !bnd do
    bnd := { !bnd with s = Nat.mul_int !bnd.s base };
    incr k
  done;
  (* k is too high while even B * high fails to reach B^k *)
  let too_high b =
    let c =
      Nat.compare (Nat.mul_int (Nat.add b.Boundaries.r b.Boundaries.m_plus) base) b.Boundaries.s
    in
    if b.Boundaries.high_ok then c < 0 else c <= 0
  in
  while too_high !bnd do
    bnd := premultiply ~base !bnd;
    decr k
  done;
  (!k, premultiply ~base !bnd)

(* ------------------------------------------------------------------ *)
(* Estimators *)

(* All estimators bound ceil(log_B v) from below within one, so the fixup
   in [scale_estimated] only ever needs to move up by one — which costs
   nothing, because moving up by one is the same as skipping the loop's
   pre-multiplication of r, m+ and m-. *)

let log2 x = log x /. log 2.

(* Figure 3: two floating-point operations from the exponent and the
   mantissa bit length.  For b = 2 this is ceil((e + len(f) - 1) * log_B 2
   - epsilon); for other input bases the exact bit length of f plays the
   same role through log2(v) = e*log2(b) + log2(f). *)
let fast_estimate ~base ~b ~f ~e =
  let inv_log2_of_base = 1. /. log2 (float_of_int base) in
  let log2_b = if b = 2 then 1. else log2 (float_of_int b) in
  let log2_v_floor = (float_of_int e *. log2_b) +. float_of_int (Nat.bit_length f - 1) in
  int_of_float (Float.ceil ((log2_v_floor *. inv_log2_of_base) -. 1e-10))

(* Monomorphized Figure 3 for the base-10 / b=2 fast path: the hoisted
   constant and the pre-taken bit length leave two float multiplies and
   a ceil, with no transcendental calls or allocation per conversion.
   The operations are the same ones [fast_estimate] performs (for b = 2
   [log2_b] is exactly 1.0 and multiplying by it is the identity), so
   the result is bit-identical; test_fastpath checks the agreement. *)
let inv_log2_of_10 = 1. /. log2 (float_of_int 10)

let fast_estimate_b10 ~bits ~e =
  let log2_v_floor = float_of_int e +. float_of_int (bits - 1) in
  int_of_float (Float.ceil ((log2_v_floor *. inv_log2_of_10) -. 1e-10))

(* Figure 2: the floating-point logarithm of v itself.  v can exceed the
   double range for wide formats, so the logarithm is assembled from
   frexp of the mantissa instead of computed on a converted double. *)
let float_log_estimate ~base ~b ~f ~e =
  let m, nbits = Nat.frexp f in
  let log2_f = log2 m +. float_of_int nbits in
  let log2_b = if b = 2 then 1. else log2 (float_of_int b) in
  let log_b_v = ((float_of_int e *. log2_b) +. log2_f) /. log2 (float_of_int base) in
  int_of_float (Float.ceil (log_b_v -. 1e-10))

(* Gay's first-degree estimator [2], secant variant.  With f = x * 2^t,
   1/2 <= x < 1, approximate ln x by the chord of ln through 1/2 and 1:
   ln x ~ ln2 * (2x - 2).  The chord lies below the concave logarithm, so
   the estimate never overshoots; the worst undershoot (at x = 0.72) is
   about 0.06 nats, far less than one digit. *)
let gay_taylor_estimate ~base ~b ~f ~e =
  let x, t = Nat.frexp f in
  let ln2 = log 2. in
  let log2_b = if b = 2 then 1. else log2 (float_of_int b) in
  let ln_v =
    ((float_of_int e *. log2_b) +. float_of_int t) *. ln2
    +. (ln2 *. ((2. *. x) -. 2.))
  in
  int_of_float (Float.ceil ((ln_v /. log (float_of_int base)) -. 1e-10))

let estimate strategy ~base ~b ~f ~e =
  match strategy with
  | Iterative -> None
  | Float_log -> Some (float_log_estimate ~base ~b ~f ~e)
  | Fast_estimate -> Some (fast_estimate ~base ~b ~f ~e)
  | Gay_taylor -> Some (gay_taylor_estimate ~base ~b ~f ~e)

(* The paper's §3.2 claim — the estimate is always k or k-1, and the
   k-1 fixup is free — made observable: every estimated scaling records
   whether the fixup fired.  Hot path, so gated on the telemetry
   switch. *)
let m_estimate_exact =
  Telemetry.Metrics.counter
    ~labels:[ ("result", "exact") ]
    ~help:"Estimated scalings by outcome: estimate hit k exactly, or the \
           free one-low fixup fired."
    "bdprint_scaling_estimates_total"

let m_estimate_fixup =
  Telemetry.Metrics.counter
    ~labels:[ ("result", "fixup") ]
    ~help:"Estimated scalings by outcome: estimate hit k exactly, or the \
           free one-low fixup fired."
    "bdprint_scaling_estimates_total"

(* Apply the estimate, then fix up (Figure 3's [fixup]).  Bumping k by one
   means dividing the scaled value by B, which is the same as skipping the
   loop's pre-multiplication of r, m+ and m-: every termination test is
   homogeneous in (r, m+, m-, s), so the un-premultiplied state against the
   same s behaves exactly like the premultiplied state against s*B.  That
   is why an estimate of k - 1 costs nothing. *)
let scale_estimated ~base est (bnd : Boundaries.t) =
  let bnd =
    if est >= 0 then { bnd with s = Nat.mul bnd.s (power ~base est) }
    else begin
      let factor = power ~base (-est) in
      {
        bnd with
        r = Nat.mul bnd.r factor;
        m_plus = Nat.mul bnd.m_plus factor;
        m_minus = Nat.mul bnd.m_minus factor;
      }
    end
  in
  if too_low bnd then begin
    if Telemetry.Metrics.enabled () then Telemetry.Metrics.incr m_estimate_fixup;
    (est + 1, bnd)
  end
  else begin
    if Telemetry.Metrics.enabled () then Telemetry.Metrics.incr m_estimate_exact;
    (est, premultiply ~base bnd)
  end

let scale strategy ~base ~b ~f ~e bnd =
  Robust.Faults.trip "scaling.scale";
  match estimate strategy ~base ~b ~f ~e with
  | None -> scale_iterative ~base bnd
  | Some est -> scale_estimated ~base est bnd

let scale_on_high ~base (bnd : Boundaries.t) =
  let num = Nat.add bnd.r bnd.m_plus in
  let m1, n1 = Nat.frexp num in
  let m2, n2 = Nat.frexp bnd.s in
  let log2_high = log2 m1 -. log2 m2 +. float_of_int (n1 - n2) in
  let est =
    int_of_float
      (Float.ceil ((log2_high /. log2 (float_of_int base)) -. 1e-10))
  in
  scale_estimated ~base est bnd
