(** Fixed-format conversion (paper, Section 4): correctly rounded output
    to a requested digit position, with [#] marks past the point where the
    floating-point value stops carrying information.

    A position request is either {e absolute} — stop at the [base^j]
    place — or {e relative} — produce [i] significant digits.  The
    rounding range of the value is widened (never narrowed) to the
    half-quantum [base^j / 2] on each side where the quantum dominates the
    float gap; where the float gap dominates instead, trailing positions
    cannot affect the value read back and are printed as [#]. *)

type request = Absolute of int | Relative of int

type digit = Digit of int | Hash

type t = {
  digits : digit array;
      (** positions [k-1, k-2, ..., j] most significant first; [#] only in
          a (possibly empty) suffix *)
  k : int;  (** the value printed is [0.d1 d2 ... × base^k] *)
}

val convert :
  ?base:int ->
  ?mode:Fp.Rounding.mode ->
  ?tie:Generate.tie ->
  Fp.Format_spec.t ->
  Fp.Value.finite ->
  request ->
  (t, Robust.Error.t) result
(** Fixed-format digits for the magnitude of a non-zero finite value.
    [tie] (default [Closer_up], as in the paper) breaks exact half-quantum
    ties.

    Never raises: a base outside 2..36 or [Relative i] with [i < 1] is a
    [Range] error, and a request whose digit span exceeds the
    {!Robust.Budget} cap ([--places 1000000] style) is a [Budget] error
    — vetted {e before} any bignum scaling work, so pathological
    requests fail in constant time.  An [Absolute] position far above
    the value short-circuits to the single rounded zero digit.

    Scaling always uses the estimator seeded on the range's upper bound
    ({!Scaling.scale_on_high}), which stays within one of the true scale
    factor even when the quantum dwarfs the value. *)

val convert_exn :
  ?base:int ->
  ?mode:Fp.Rounding.mode ->
  ?tie:Generate.tie ->
  Fp.Format_spec.t ->
  Fp.Value.finite ->
  request ->
  t
(** {!convert} for call sites with statically valid arguments (tests,
    examples, internal drivers).
    @raise Robust.Error.E on what [convert] would report as [Error]. *)

val significant_digits : t -> int
(** Number of non-[#] positions. *)

val to_ratio : base:int -> t -> Bignum.Ratio.t
(** Exact value denoted, reading [#] as [0]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
