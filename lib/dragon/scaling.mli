(** Computing the scaling factor [k] (paper, Section 3.2).

    [k] is the smallest integer with [high <= B^k] (strictly [<] when the
    high endpoint itself may be output), so the digits print as
    [0.d1 d2 ... × B^k].  Four strategies are provided:

    - {!Iterative}: Steele & White's search, [O(|log v|)] high-precision
      multiplications — the baseline of Table 2, row 1.
    - {!Float_log}: estimate [⌈log_B v⌉] with the floating-point logarithm
      of the value (Figure 2), then fix up; Table 2, row 2.
    - {!Fast_estimate}: the paper's contribution (Figure 3) — estimate
      from the exponent and mantissa length alone,
      [⌈(e + ⌊log2 f⌋) · log_B 2 − ε⌉], two floating-point operations.
      The estimate is provably [k] or [k−1], and {!scale} absorbs the
      [k−1] case at zero extra cost by skipping the loop's
      pre-multiplication of [r].
    - {!Gay_taylor}: Gay's independently developed estimator [Gay 90],
      here realised with a secant (never-overshooting) first-degree
      approximation of the logarithm of the fraction.

    All strategies produce identical digits; only the cost differs. *)

type strategy = Iterative | Float_log | Fast_estimate | Gay_taylor

val all : strategy list
val strategy_name : strategy -> string

val power : base:int -> int -> Bignum.Nat.t
(** [power ~base k] is [base^k] via a memoized table (the paper's [esptt]
    table of Figure 2); powers of two are plain shifts. *)

val estimate :
  strategy -> base:int -> b:int -> f:Bignum.Nat.t -> e:int -> int option
(** The raw estimate of [⌈log_B v⌉] for [v = f × b^e], before fixup;
    [None] for {!Iterative}, which has no estimation step.  Exposed for
    the estimator-accuracy ablation (bench E7). *)

val fast_estimate_b10 : bits:int -> e:int -> int
(** [estimate Fast_estimate ~base:10 ~b:2] monomorphized for the
    table fast path's dispatcher: [bits] is the mantissa bit length.
    Performs the same float operations as the general estimator, so the
    result is bit-identical — but without allocating an option or
    recomputing [1/log2 10] per conversion. *)

val scale :
  strategy ->
  base:int ->
  b:int ->
  f:Bignum.Nat.t ->
  e:int ->
  Boundaries.t ->
  int * Boundaries.t
(** [(k, state)] with [state] ready for {!Generate.free} (pre-multiplied
    convention).  [b], [f], [e] describe the value being printed and feed
    the estimators; the boundaries carry the (possibly mode- or
    fixed-format-adjusted) rounding range. *)

val scale_on_high : base:int -> Boundaries.t -> int * Boundaries.t
(** Estimator-seeded scaling driven by the upper endpoint [high = (r+m⁺)/s]
    instead of by [v].  Fixed format needs this: its quantum expansion can
    push [high] arbitrarily far above [v] (e.g. printing 0.6 to zero
    decimal places), which breaks the within-one guarantee of the
    value-based estimators.  The estimate here is within one of the true
    [k] for every input, with the same free fixup. *)
