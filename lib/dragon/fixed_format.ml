module Nat = Bignum.Nat
module Bigint = Bignum.Bigint
module Ratio = Bignum.Ratio
module Format_spec = Fp.Format_spec
module Value = Fp.Value

type request = Absolute of int | Relative of int

type digit = Digit of int | Hash

type t = { digits : digit array; k : int }

let significant_digits t =
  Array.fold_left
    (fun acc d -> match d with Digit _ -> acc + 1 | Hash -> acc)
    0 t.digits

let to_ratio ~base t =
  let n = Array.length t.digits in
  let ints = Array.map (function Digit d -> d | Hash -> 0) t.digits in
  Ratio.mul
    (Ratio.of_bigint (Bigint.of_nat (Nat.of_base_digits ~base ints)))
    (Ratio.pow (Ratio.of_int base) (t.k - n))

let equal a b = a.k = b.k && a.digits = b.digits

let pp fmt t =
  Format.fprintf fmt "0.%se%d"
    (String.concat ""
       (Array.to_list
          (Array.map
             (function Digit d -> string_of_int d | Hash -> "#")
             t.digits)))
    t.k

(* Correctly rounded output at absolute position [j]. *)
let absolute ~base ~mode ~tie (fmt : Format_spec.t) (v : Value.finite) j =
  let bnd0 = Boundaries.of_finite ~mode fmt v in
  (* Express the half quantum base^j / 2 over the common denominator.
     Table 1 makes s even, so s/2 is exact; for j < 0 first rescale
     everything by base^-j so the power stays integral. *)
  let s_half = Nat.shift_right bnd0.s 1 in
  let bnd0, m_half =
    if j >= 0 then (bnd0, Nat.mul s_half (Nat.pow_int base j))
    else (Boundaries.scale_all bnd0 (Nat.pow_int base (-j)), s_half)
  in
  if Nat.compare bnd0.r m_half <= 0 then begin
    (* v <= base^j / 2: the whole value sits at or below half a quantum,
       so the output is a single digit at position j — 0 or 1 unit. *)
    let c = Nat.compare bnd0.r m_half in
    let up =
      if c < 0 then false
      else begin
        match tie with
        | Generate.Closer_up -> true
        | Generate.Closer_down | Generate.Closer_even -> false
        (* the even candidate of {0, base^j} is 0 *)
      end
    in
    { digits = [| Digit (if up then 1 else 0) |]; k = j + 1 }
  end
  else begin
    (* Widen each side of the range to the half quantum where it exceeds
       the float midpoint; a side that got widened may be met exactly
       (correct rounding admits an error of exactly half a quantum). *)
    let expand m ok =
      if Nat.compare m_half m >= 0 then (m_half, true) else (m, ok)
    in
    let m_plus, high_ok = expand bnd0.m_plus bnd0.high_ok in
    let m_minus, low_ok = expand bnd0.m_minus bnd0.low_ok in
    let bnd = { bnd0 with m_plus; m_minus; low_ok; high_ok } in
    let k, state = Scaling.scale_on_high ~base bnd in
    let stop = Generate.free_stopped ~base ~tie state in
    let n = Array.length stop.digits in
    let total = k - j in
    assert (n <= total);
    let digits = Array.make total Hash in
    Array.iteri (fun i d -> digits.(i) <- Digit d) stop.digits;
    (* Classify the tail positions n+1 .. total (paper: zeros while still
       significant, then # marks).  Position m is insignificant when
       bumping the digit before it keeps the number within the range:
       V + base^(k-m+1) <= high, which over the common denominator reads
       inc*s*base^t + s <= (r_n + m+_n) * base^t with t = m - n - 1. *)
    (* Track inc*s*base^t and (r_n + m+_n)*base^t incrementally — one
       single-limb multiply per side per position instead of rebuilding
       both products from scratch each time. *)
    let lhs_t = ref (if stop.incremented then state.s else Nat.zero) in
    let rhs_t = ref (Nat.add stop.rest stop.m_plus_n) in
    let insignificant () =
      let c = Nat.compare (Nat.add !lhs_t state.s) !rhs_t in
      if high_ok then c <= 0 else c < 0
    in
    let stop_zeros = ref false in
    for m = n to total - 1 do
      if not !stop_zeros then
        if insignificant () then stop_zeros := true
        else begin
          digits.(m) <- Digit 0;
          lhs_t := Nat.mul_int !lhs_t base;
          rhs_t := Nat.mul_int !rhs_t base
        end
    done;
    { digits; k }
  end

let rec relative ~base ~mode ~tie fmt (v : Value.finite) i ~attempts ~guess =
  let result = absolute ~base ~mode ~tie fmt v (guess - i) in
  if result.k = guess || attempts = 0 then result
  else relative ~base ~mode ~tie fmt v i ~attempts:(attempts - 1) ~guess:result.k

(* Cheap ceil(log_base v) from the mantissa and exponent, within one of
   the true value — the guard that lets a position request be vetted
   against the budget before any bignum scaling work. *)
let estimate_k ~base (fmt : Format_spec.t) (v : Value.finite) =
  let m, nbits = Nat.frexp v.f in
  let log2b =
    if fmt.b = 2 then 1. else log (float_of_int fmt.b) /. log 2.
  in
  let log2_v =
    (log m /. log 2.) +. float_of_int nbits +. (float_of_int v.e *. log2b)
  in
  int_of_float
    (Float.ceil ((log2_v /. (log (float_of_int base) /. log 2.)) -. 1e-10))

let convert_exn ?(base = 10) ?(mode = Fp.Rounding.To_nearest_even)
    ?(tie = Generate.Closer_up) fmt (v : Value.finite) request =
  if base < 2 || base > 36 then
    Robust.Error.raise_
      (Robust.Error.range ~what:"base"
         (Printf.sprintf "%d not in 2..36" base));
  match request with
  | Absolute j ->
    let k = estimate_k ~base fmt v in
    if j >= k + 3 then
      (* the whole value sits strictly below half the quantum: the
         rounded output is a single zero digit at position j, decided
         without scaling anything by base^|j| *)
      { digits = [| Digit 0 |]; k = j + 1 }
    else begin
      (* [k - j] is within one of the digit span the conversion will
         materialize; vet it against the budget before the bignum work *)
      Robust.Budget.check_output_digits (k - j);
      absolute ~base ~mode ~tie fmt v j
    end
  | Relative i ->
    if i < 1 then
      Robust.Error.raise_
        (Robust.Error.range ~what:"relative digits"
           (Printf.sprintf "%d < 1" i));
    Robust.Budget.check_output_digits i;
    (* The position of the first digit can shift when the quantum expansion
       rounds the value up to the next power of the base (paper, end of
       Section 4), so estimate from the unexpanded range and refine. *)
    let bnd = Boundaries.of_finite ~mode fmt v in
    let k0, _ = Scaling.scale_on_high ~base bnd in
    relative ~base ~mode ~tie fmt v i ~attempts:2 ~guess:k0

let convert ?base ?mode ?tie fmt (v : Value.finite) request =
  Robust.Error.catch (fun () -> convert_exn ?base ?mode ?tie fmt v request)
