module Value = Fp.Value
module Format_spec = Fp.Format_spec

let check_base base =
  if base < 2 || base > 36 then
    Robust.Error.raise_
      (Robust.Error.range ~what:"base" (Printf.sprintf "%d not in 2..36" base))

(* The free-format pipeline behind every entry point below dispatches
   through the table-driven fast path first (see {!Free_format} and
   {!Fastpath}); these forwarders give printer-level callers (bench,
   the daemon, tests) one place to steer and observe that dispatch
   without reaching into the fastpath library. *)
let set_fastpath_enabled = Fastpath.set_enabled
let fastpath_enabled = Fastpath.enabled

let fastpath_stats () = (Fastpath.hit_count (), Fastpath.fallback_count ())

let print_value_exn ?(base = 10) ?mode ?strategy ?tie ?notation fmt value =
  check_base base;
  match value with
  | Value.Zero neg -> Render.zero ~neg ()
  | Value.Inf neg -> Render.infinity ~neg ()
  | Value.Nan -> Render.nan
  | Value.Finite v ->
    let result = Free_format.convert ~base ?mode ?strategy ?tie fmt v in
    let t0 = Telemetry.Trace.start () in
    let s = Render.free ?notation ~neg:v.neg ~base result in
    Telemetry.Trace.finish Telemetry.Trace.Render t0;
    s
[@@lint.can_raise
  Robust.Error.E
  (* the [_exn] suffix is the contract: budget/range failures raise;
     [print_value] is the total variant *)]

let print_value ?base ?mode ?strategy ?tie ?notation fmt value =
  Robust.Error.catch (fun () ->
      print_value_exn ?base ?mode ?strategy ?tie ?notation fmt value)

let print ?base ?mode ?strategy ?tie ?notation x =
  print_value_exn ?base ?mode ?strategy ?tie ?notation Format_spec.binary64
    (Fp.Ieee.decompose x)
  [@@lint.can_raise Robust.Error.E]
  (* documented raising convenience; [print_value] is the total variant *)

let print_fixed ?(base = 10) ?mode ?tie ?notation request x =
  match Fp.Ieee.decompose x with
  | Value.Zero neg -> Render.zero ~neg ()
  | Value.Inf neg -> Render.infinity ~neg ()
  | Value.Nan -> Render.nan
  | Value.Finite v ->
    let result =
      (Fixed_format.convert_exn ~base ?mode ?tie Format_spec.binary64 v request)
      [@lint.can_raise Robust.Error.E]
      (* documented raising convenience; stream drivers use the catch wrapper *)
    in
    Render.fixed ?notation ~neg:v.neg ~base result
[@@lint.can_raise
  Robust.Error.E
  (* documented raising convenience; stream drivers use the catch wrapper *)]

let shortest x = print x
  [@@lint.can_raise Robust.Error.E] (* forwards [print]'s contract *)

let print_hex x =
  match Fp.Ieee.decompose x with
  | Value.Zero neg -> if neg then "-0x0p+0" else "0x0p+0"
  | Value.Inf neg -> Render.infinity ~neg ()
  | Value.Nan -> Render.nan
  | Value.Finite v ->
    (* canonical binary64: p-exponent e+52, integer part the hidden bit,
       13 hex digits of fraction with trailing zeros stripped *)
    let f =
      (Bignum.Nat.to_int_exn v.Value.f)
      [@lint.can_raise Invalid_argument] (* binary64 mantissa < 2^53 always fits *)
    in
    let int_part = f lsr 52 in
    let frac = f land ((1 lsl 52) - 1) in
    let buf = Buffer.create 24 in
    if v.Value.neg then Buffer.add_char buf '-';
    Buffer.add_string buf (Printf.sprintf "0x%d" int_part);
    if frac <> 0 then begin
      Buffer.add_char buf '.';
      let nibbles = ref [] in
      let rest = ref frac in
      for _ = 1 to 13 do
        nibbles := !rest land 0xF :: !nibbles;
        rest := !rest lsr 4
      done;
      let digits = Array.of_list !nibbles in
      let last = ref 12 in
      while digits.(!last) = 0 do
        decr last
      done;
      for i = 0 to !last do
        Buffer.add_char buf "0123456789abcdef".[digits.(i)]
      done
    end;
    Buffer.add_string buf (Printf.sprintf "p%+d" (v.Value.e + 52));
    Buffer.contents buf
[@@lint.can_raise
  Invalid_argument
  (* [decompose] validates its bit pattern; any float is in range, so
     this never fires from the public signature *)]

let print_exact ?(base = 10) ?notation x =
  match Fp.Ieee.decompose x with
  | Value.Zero neg -> Render.zero ~neg ()
  | Value.Inf neg -> Render.infinity ~neg ()
  | Value.Nan -> Render.nan
  | Value.Finite v ->
    let digits, k =
      Oracle.Exact_decimal.exact_digits ~base Format_spec.binary64
        { v with neg = false }
    in
    Render.free ?notation ~neg:v.neg ~base { Free_format.digits; k }
[@@lint.can_raise
  Invalid_argument
  (* documented raising convenience: base validation and the exact
     oracle raise on misuse; daemon paths pre-validate the base *)]
