module Nat = Bignum.Nat
module Scratch = Bignum.Scratch

type tie = Closer_up | Closer_down | Closer_even

type stopped = {
  digits : int array;
  incremented : bool;
  rest : Nat.t;
  m_plus_n : Nat.t;
}

(* Figure-3 loop iterations per conversion.  In free format every
   iteration emits one digit, so this distribution is also the
   digit-length distribution the paper reports as "average 15.2
   digits"; recorded once per conversion, gated on the telemetry
   switch. *)
let h_loop_iterations =
  Telemetry.Metrics.histogram
    ~help:"Digit-generation loop iterations per conversion."
    ~bounds:[| 1; 2; 4; 6; 8; 10; 12; 14; 16; 17; 18; 20; 24; 32; 64; 256;
               1024; 8192 |]
    "bdprint_generate_loop_iterations"

(* Which implementation served each conversion: the whole loop in native
   machine words, or the pooled in-place Scratch kernels.  (The pure-Nat
   reference path is only reachable by explicit request or as the
   fallback for states that violate the scaling invariant, so it has no
   counter of its own.) *)
let m_fastpath =
  Telemetry.Metrics.counter
    ~help:"Digit-generation conversions that ran entirely in native \
           machine words (all of r, s, m+, m- word-sized)."
    "bdprint_generate_fastpath_total"

let m_scratchpath =
  Telemetry.Metrics.counter
    ~help:"Digit-generation conversions that ran on the pooled in-place \
           bignum scratch kernels."
    "bdprint_generate_scratchpath_total"

(* High-water mark of the per-domain scratch pool, in limbs across its
   four workspaces — how much memory the in-place path retains. *)
let g_pool_limbs =
  Telemetry.Metrics.gauge
    ~help:"High-water capacity of the per-domain digit-loop scratch \
           pool, in 30-bit limbs summed over its workspaces."
    "bdprint_generate_scratch_pool_limbs"

let fastpath_count () = Telemetry.Metrics.value m_fastpath
let scratchpath_count () = Telemetry.Metrics.value m_scratchpath

(* The pure-Nat reference path: forced via BDPRINT_FORCE_PURE=1 (read
   once at startup) or Generate.set_force_pure — the differential anchor
   the fuzz harness compares the kernel paths against. *)
let force_pure_flag =
  Atomic.make
    (match Sys.getenv_opt "BDPRINT_FORCE_PURE" with
    | Some ("1" | "true" | "yes" | "on") -> true
    | _ -> false)

let set_force_pure b = Atomic.set force_pure_flag b
let force_pure () = Atomic.get force_pure_flag

let observe_finish emitted =
  if Telemetry.Metrics.enabled () then begin
    Telemetry.Metrics.observe h_loop_iterations emitted;
    Robust.Budget.observe_output_digits emitted
  end

let check_digits ~base digits =
  (* Theorem 1: incrementing never cascades. *)
  assert (Array.for_all (fun d -> 0 <= d && d < base) digits);
  digits

let tie_up tie d c =
  if c < 0 then false
  else if c > 0 then true
  else begin
    match tie with
    | Closer_up -> true
    | Closer_down -> false
    | Closer_even -> d land 1 = 1
  end

(* ------------------------------------------------------------------ *)
(* Pure-Nat reference path.  One pass of the Figure-3 loop: [r],
   [m_plus], [m_minus] arrive pre-multiplied by the base; each iteration
   emits floor(r/s) and carries the remainder, multiplied by the base,
   into the next step.  Tail-recursive so the per-digit state lives in
   arguments — no option boxing or polymorphic comparison per digit. *)

let run_pure ~base ~tie (bnd : Boundaries.t) =
  let low_ok = bnd.low_ok and high_ok = bnd.high_ok in
  let s = bnd.s in
  let rec loop n acc r m_plus m_minus =
    (* resource guard: the loop provably terminates, but an injected
       fault or a corrupted range could keep it spinning — degrade into
       a budget error instead of an unbounded burn *)
    Robust.Budget.check_output_digits n;
    let d, rest = Nat.divmod r s in
    let d = Nat.to_int_exn d in
    let c1 = Nat.compare rest m_minus in
    let tc1 = if low_ok then c1 <= 0 else c1 < 0 in
    let c2 = Nat.compare (Nat.add rest m_plus) s in
    let tc2 = if high_ok then c2 >= 0 else c2 > 0 in
    if not (tc1 || tc2) then
      loop (n + 1) (d :: acc)
        (Nat.mul_int rest base)
        (Nat.mul_int m_plus base)
        (Nat.mul_int m_minus base)
    else begin
      let last, incremented =
        if tc1 && not tc2 then (d, false)
        else if tc2 && not tc1 then (d + 1, true)
        else begin
          (* both candidates read back as v: pick the closer, i.e.
             compare the remainder against half of s *)
          let up = tie_up tie d (Nat.compare (Nat.shift_left rest 1) s) in
          ((if up then d + 1 else d), up)
        end
      in
      observe_finish n;
      let digits =
        check_digits ~base (Array.of_list (List.rev (last :: acc)))
      in
      { digits; incremented; rest; m_plus_n = m_plus }
    end
  in
  loop 1 [] bnd.r bnd.m_plus bnd.m_minus

(* ------------------------------------------------------------------ *)
(* Per-domain workspace pool shared by the scratch and fast paths.  The
   four Scratch workspaces and the digit buffer grow to the steady-state
   size of the workload and are then reused, so the loop itself
   allocates nothing.  [busy] guards against reentrancy (a conversion
   started from inside a conversion falls back to the pure path rather
   than corrupting the pool). *)

type pool = {
  r : Scratch.t;
  s : Scratch.t;
  mp : Scratch.t;
  mm : Scratch.t;
  tmp : Scratch.t;
  mutable digits : int array;
  mutable busy : bool;
}
[@@lint.domain_safe "one pool per domain via Domain.DLS"]

let pool_key : pool Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        r = Scratch.create 48;
        s = Scratch.create 48;
        mp = Scratch.create 48;
        mm = Scratch.create 48;
        tmp = Scratch.create 48;
        digits = Array.make 64 0;
        busy = false;
      })

let digit_put p i d =
  let n = Array.length p.digits in
  if i >= n then
    (begin
       let grown = Array.make (max (2 * n) (i + 1)) 0 in
       Array.blit p.digits 0 grown 0 n;
       p.digits <- grown
     end
     [@lint.alloc_ok "geometric growth: amortized-constant, settles after warm-up"]);
  p.digits.(i) <- d
  [@@lint.no_alloc]

let pool_capacity p =
  Scratch.capacity p.r + Scratch.capacity p.s + Scratch.capacity p.mp
  + Scratch.capacity p.mm + Scratch.capacity p.tmp

(* ------------------------------------------------------------------ *)
(* Scratch path: the Figure-3 loop on the in-place kernels.  The
   denominator is normalized once ([normalize_divisor]) and the whole
   state is scaled by the same power of two — every termination test is
   homogeneous in (r, m+, m-, s), so the scaling changes nothing — which
   lets each iteration divide with a single estimated-quotient step. *)

let run_scratch ~base ~tie (bnd : Boundaries.t) p =
  let shift = Scratch.normalize_divisor p.s bnd.s in
  Scratch.set_nat p.r bnd.r;
  Scratch.set_nat p.mp bnd.m_plus;
  Scratch.set_nat p.mm bnd.m_minus;
  if shift > 0 then begin
    Scratch.shift_left_in_place p.r shift;
    Scratch.shift_left_in_place p.mp shift;
    Scratch.shift_left_in_place p.mm shift
  end;
  let low_ok = bnd.low_ok and high_ok = bnd.high_ok in
  let rec loop n =
    Robust.Budget.check_output_digits n;
    (* same fault point as the pure path's Nat.divmod, so chaos runs
       exercise the kernel path identically *)
    Robust.Faults.trip "nat.divmod";
    let d = Scratch.div_digit p.r p.s in
    let c1 = Scratch.compare p.r p.mm in
    let tc1 = if low_ok then c1 <= 0 else c1 < 0 in
    Scratch.copy_into ~src:p.r ~dst:p.tmp;
    Scratch.add_in_place p.tmp p.mp;
    let c2 = Scratch.compare p.tmp p.s in
    let tc2 = if high_ok then c2 >= 0 else c2 > 0 in
    if not (tc1 || tc2) then begin
      digit_put p (n - 1) d;
      Scratch.mul_int_in_place p.r base;
      Scratch.mul_int_in_place p.mp base;
      Scratch.mul_int_in_place p.mm base;
      loop (n + 1)
    end
    else
      (begin
         let last, incremented =
           if tc1 && not tc2 then (d, false)
           else if tc2 && not tc1 then (d + 1, true)
           else begin
             Scratch.copy_into ~src:p.r ~dst:p.tmp;
             Scratch.shift_left_in_place p.tmp 1;
             let up = tie_up tie d (Scratch.compare p.tmp p.s) in
             ((if up then d + 1 else d), up)
           end
         in
         digit_put p (n - 1) last;
         observe_finish n;
         let digits = check_digits ~base (Array.sub p.digits 0 n) in
         let rest = Nat.shift_right (Scratch.to_nat p.r) shift in
         let m_plus_n = Nat.shift_right (Scratch.to_nat p.mp) shift in
         { digits; incremented; rest; m_plus_n }
       end
       [@lint.alloc_ok "one-time exit-path result construction"])
  in
  loop 1
  [@@lint.no_alloc]

(* ------------------------------------------------------------------ *)
(* Word-sized fast path: when r, s, m+ and m- all fit comfortably in a
   native int the whole loop runs on machine words.  Bounds (see [run]):
   s < 2^56 and m± < 2^58 guarantee every intermediate stays below
   2^62 — after the first division all re-multiplied quantities are
   bounded by s, so rest*B < 2^62, m±*B < 2^62 and rest + m± < 2^59. *)

let run_fast ~base ~tie ~low_ok ~high_ok ~r ~s ~mp ~mm p =
  let rec loop n r mp mm =
    Robust.Budget.check_output_digits n;
    Robust.Faults.trip "nat.divmod";
    let d = r / s in
    let rest = r - (d * s) in
    let c1 = Int.compare rest mm in
    let tc1 = if low_ok then c1 <= 0 else c1 < 0 in
    let c2 = Int.compare (rest + mp) s in
    let tc2 = if high_ok then c2 >= 0 else c2 > 0 in
    if not (tc1 || tc2) then begin
      digit_put p (n - 1) d;
      loop (n + 1) (rest * base) (mp * base) (mm * base)
    end
    else
      (begin
         let last, incremented =
           if tc1 && not tc2 then (d, false)
           else if tc2 && not tc1 then (d + 1, true)
           else begin
             let up = tie_up tie d (Int.compare (2 * rest) s) in
             ((if up then d + 1 else d), up)
           end
         in
         digit_put p (n - 1) last;
         observe_finish n;
         let digits = check_digits ~base (Array.sub p.digits 0 n) in
         { digits; incremented; rest = Nat.of_int rest; m_plus_n = Nat.of_int mp }
       end
       [@lint.alloc_ok "one-time exit-path result construction"])
  in
  loop 1 r mp mm
  [@@lint.no_alloc]

(* ------------------------------------------------------------------ *)
(* Dispatch *)

let fast_s_limit = 1 lsl 56
let fast_m_limit = 1 lsl 58

let release p =
  p.busy <- false;
  if Telemetry.Metrics.enabled () then
    Telemetry.Metrics.max_gauge g_pool_limbs (pool_capacity p)

let run ~base ~tie (bnd : Boundaries.t) =
  if force_pure () then run_pure ~base ~tie bnd
  else begin
    let p = Domain.DLS.get pool_key in
    if p.busy then run_pure ~base ~tie bnd
    else begin
      p.busy <- true;
      match
        match Nat.to_int_opt bnd.s with
        | Some s when s > 0 && s < fast_s_limit -> (
          match
            (Nat.to_int_opt bnd.r, Nat.to_int_opt bnd.m_plus,
             Nat.to_int_opt bnd.m_minus)
          with
          | Some r, Some mp, Some mm when mp < fast_m_limit && mm < fast_m_limit
            ->
            if Telemetry.Metrics.enabled () then
              Telemetry.Metrics.incr m_fastpath;
            run_fast ~base ~tie ~low_ok:bnd.low_ok ~high_ok:bnd.high_ok ~r ~s
              ~mp ~mm p
          | _ ->
            if Telemetry.Metrics.enabled () then
              Telemetry.Metrics.incr m_scratchpath;
            run_scratch ~base ~tie bnd p)
        | _ ->
          if Telemetry.Metrics.enabled () then
            Telemetry.Metrics.incr m_scratchpath;
          run_scratch ~base ~tie bnd p
      with
      | result ->
        release p;
        result
      | exception Scratch.Quotient_overflow ->
        (* the state violates the scaling invariant (quotient not a
           digit): answer it on the reference path, which handles any
           quotient *)
        release p;
        run_pure ~base ~tie bnd
      | exception e ->
        release p;
        raise e
    end
  end

let free ~base ~tie bnd = (run ~base ~tie bnd).digits

let free_stopped ~base ~tie bnd = run ~base ~tie bnd

let free_count_only ~base bnd =
  Array.length (free ~base ~tie:Closer_up bnd)
