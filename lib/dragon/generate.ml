module Nat = Bignum.Nat

type tie = Closer_up | Closer_down | Closer_even

type stopped = {
  digits : int array;
  incremented : bool;
  rest : Nat.t;
  m_plus_n : Nat.t;
}

(* Figure-3 loop iterations per conversion.  In free format every
   iteration emits one digit, so this distribution is also the
   digit-length distribution the paper reports as "average 15.2
   digits"; recorded once per conversion, gated on the telemetry
   switch. *)
let h_loop_iterations =
  Telemetry.Metrics.histogram
    ~help:"Digit-generation loop iterations per conversion."
    ~bounds:[| 1; 2; 4; 6; 8; 10; 12; 14; 16; 17; 18; 20; 24; 32; 64; 256;
               1024; 8192 |]
    "bdprint_generate_loop_iterations"

(* One pass of the Figure-3 loop.  [r], [m_plus], [m_minus] arrive
   pre-multiplied by the base; each iteration emits floor(r/s) and carries
   the remainder, multiplied by the base, into the next step. *)
let run ~base ~tie (bnd : Boundaries.t) =
  let cmp_low = if bnd.low_ok then fun c -> c <= 0 else fun c -> c < 0 in
  let cmp_high = if bnd.high_ok then fun c -> c >= 0 else fun c -> c > 0 in
  let s = bnd.s in
  let acc = ref [] in
  let r = ref bnd.r and m_plus = ref bnd.m_plus and m_minus = ref bnd.m_minus in
  let result = ref None in
  let emitted = ref 0 in
  while !result = None do
    (* resource guard: the loop provably terminates, but an injected
       fault or a corrupted range could keep it spinning — degrade into
       a budget error instead of an unbounded burn *)
    incr emitted;
    Robust.Budget.check_output_digits !emitted;
    let d, rest = Nat.divmod !r s in
    let d = Nat.to_int_exn d in
    let tc1 = cmp_low (Nat.compare rest !m_minus) in
    let tc2 = cmp_high (Nat.compare (Nat.add rest !m_plus) s) in
    match (tc1, tc2) with
    | false, false ->
      acc := d :: !acc;
      r := Nat.mul_int rest base;
      m_plus := Nat.mul_int !m_plus base;
      m_minus := Nat.mul_int !m_minus base
    | true, false -> result := Some (d, false, rest)
    | false, true -> result := Some (d + 1, true, rest)
    | true, true ->
      (* both candidates read back as v: pick the closer, i.e. compare the
         remainder against half of s *)
      let c = Nat.compare (Nat.shift_left rest 1) s in
      let up =
        if c < 0 then false
        else if c > 0 then true
        else begin
          match tie with
          | Closer_up -> true
          | Closer_down -> false
          | Closer_even -> d land 1 = 1
        end
      in
      result := Some ((if up then d + 1 else d), up, rest)
  done;
  if Telemetry.Metrics.enabled () then begin
    Telemetry.Metrics.observe h_loop_iterations !emitted;
    Robust.Budget.observe_output_digits !emitted
  end;
  match !result with
  | None -> assert false
  | Some (last, incremented, rest) ->
    let digits = Array.of_list (List.rev (last :: !acc)) in
    (* Theorem 1: incrementing never cascades. *)
    assert (Array.for_all (fun d -> 0 <= d && d < base) digits);
    { digits; incremented; rest; m_plus_n = !m_plus }

let free ~base ~tie bnd = (run ~base ~tie bnd).digits

let free_stopped ~base ~tie bnd = run ~base ~tie bnd

let free_count_only ~base bnd =
  Array.length (free ~base ~tie:Closer_up bnd)
