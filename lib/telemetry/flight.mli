(** Crash flight recorder: fixed-size per-domain rings of recent
    structured events, dumped as JSONL on crash, wedge, or breaker
    open.

    Each domain appends events — request admitted, service start,
    fault trip, breaker transition, deadline state — to its own
    pre-allocated ring (oldest overwritten); the supervisor calls
    {!dump} when a worker dies, which appends every ring, globally
    ordered by sequence number, to the configured file.  The poisoned
    request is the last "service-start" without a completion.

    Recording is lock-free and allocation-bounded (one small immutable
    record per event into a fixed slot array) and a no-op unless
    {!enabled} — hot paths guard sites with [if Flight.enabled ()]
    where they add work beyond the call itself. *)

val enabled : unit -> bool
(** One atomic load; when false, {!record} and {!dump} are no-ops. *)

val set_enabled : bool -> unit

val record : ?req:int -> kind:string -> string -> unit
(** [record ~req ~kind detail] appends an event to this domain's ring.
    [req] is the request/job id the event belongs to (0 = none);
    [kind] is a stable small vocabulary ("service-start", "crash",
    "wedge", "breaker-open", "fault-trip", ...); [detail] is free
    text.  No-op when disabled. *)

val set_dump_path : string option -> unit
(** Where {!dump} appends its JSONL; [None] (the default) makes
    {!dump} record-only (events stay in the rings for {!to_jsonl}). *)

val dump : reason:string -> unit
(** Appends a dump-header line [{"flight_dump":true,"reason":...}]
    followed by every ring's events in global order to the configured
    path.  Serialized by a mutex; recording never blocks on it. *)

val dump_count : unit -> int
(** Dumps successfully written since startup. *)

val to_jsonl : ?reason:string -> unit -> string
(** The rings' contents as JSONL (one event object per line), with a
    dump-header line first when [reason] is given. *)

val events_recorded : unit -> int
(** Events currently held across all rings. *)

val clear : unit -> unit
(** Empties every ring and resets the sequence counter (tests). *)
