(* Facade: [Telemetry.Metrics], [Telemetry.Trace], [Telemetry.Snapshot].

   The library sits below every other layer of the repository (it
   depends only on the standard library and Unix), so the reader, the
   dragon core, ext64, robust and the service layer can all record into
   the same process-wide registry. *)

module Metrics = Metrics
module Trace = Trace
module Tracing = Tracing
module Flight = Flight
module Snapshot = Snapshot

let enabled = Metrics.enabled
let set_enabled = Metrics.set_enabled
