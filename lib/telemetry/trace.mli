(** Sampled span tracing of the conversion pipeline stages.

    Stage timings land in the [bdprint_stage_duration_ns] histogram
    family (one series per stage label).  Spans are sampled one-in-N
    per domain ({!set_sample_every}, default 32) so the hot loop pays
    clock reads only on sampled conversions; when telemetry is
    disabled a span site costs one atomic load and a branch. *)

type stage = Parse | Boundaries | Scale | Generate | Render

val all : stage list
val stage_name : stage -> string

val set_sample_every : int -> unit
(** Record every Nth span per domain (default 32); [1] records all.
    @raise Invalid_argument on [n < 1]. *)

val start : unit -> int
(** Opens a span: returns a clock token, or [0] when telemetry is
    disabled or this span is not sampled. *)

val finish : stage -> int -> unit
(** Closes a span opened by {!start}; a [0] token is a no-op. *)
