(** Sampled span timing of the pipeline and service stages.

    Stage timings land in the [bdprint_stage_duration_ns] histogram
    family (one series per stage label, log-linear nanosecond
    buckets).  Spans are sampled one-in-N per domain
    ({!set_sample_every}, default 32) so the hot loop pays clock reads
    only on sampled conversions; when telemetry is disabled a span
    site costs a domain-local load, an atomic load and a branch.

    When the current request carries a {!Tracing} id, a span site
    always times (regardless of the sampling countdown), forwards the
    completed span into the trace ring, and offers its duration as the
    histogram's exemplar — one start/finish pair feeds both the
    aggregate histograms and the per-request trace. *)

type stage = Tracing.stage =
  | Parse
  | Boundaries
  | Scale
  | Generate
  | Render
  | Client_attempt
  | Client_backoff
  | Client_hedge
  | Wire_read
  | Wire_write
  | Queue_wait
  | Worker_service
  | Memo_lookup
  | Request
  | Fastpath

val all : stage list
val stage_name : stage -> string

val set_sample_every : int -> unit
(** Record every Nth span per domain (default 32); [1] records all.
    @raise Invalid_argument on [n < 1]. *)

val start : unit -> int
(** Opens a span: returns a clock token, or [0] when this span is
    neither traced nor sampled. *)

val finish : ?note:string -> stage -> int -> unit
(** Closes a span opened by {!start}; a [0] token is a no-op.  [note]
    is attached to the trace event (ignored by the histograms). *)
