(* A typed, immutable snapshot of a registry, with the three renderings
   the CLI and the tests need: Prometheus text format, JSON, and the
   human "stats:" lines shared by sequential and parallel stream runs. *)

type histogram_value = {
  bounds : int array;  (* inclusive upper bounds, without +Inf *)
  counts : int array;  (* per-bucket (non-cumulative), incl. overflow *)
  sum : int;
  count : int;
  exemplar : (int * int) option;  (* (value, trace_id) of the max sample *)
}

type value = Counter of int | Gauge of int | Histogram of histogram_value

type sample = {
  name : string;
  help : string;
  labels : (string * string) list;
  value : value;
}

type t = { samples : sample list }

let samples t = t.samples

let take ?registry () =
  let samples =
    List.map
      (fun m ->
        let meta = Metrics.meta_of m in
        let value =
          match m with
          | Metrics.Counter c -> Counter (Metrics.value c)
          | Metrics.Gauge g -> Gauge (Metrics.gauge_value g)
          | Metrics.Histogram h ->
            let counts, sum, count = Metrics.histogram_state h in
            Histogram
              { bounds = Metrics.histogram_bounds h; counts; sum; count;
                exemplar = Metrics.exemplar_of h }
        in
        { name = meta.Metrics.name; help = meta.Metrics.help;
          labels = meta.Metrics.labels; value })
      (Metrics.list_metrics ?registry ())
  in
  { samples }

(* ------------------------------------------------------------------ *)
(* Typed lookups (the tests' API) *)

let matches ?labels name s =
  String.equal s.name name
  && match labels with None -> true | Some l -> s.labels = l

let find ?labels t name = List.find_opt (matches ?labels name) t.samples

let counter_value ?labels t name =
  List.fold_left
    (fun acc s ->
      if matches ?labels name s then
        match s.value with Counter v -> acc + v | _ -> acc
      else acc)
    0 t.samples

let gauge_value ?labels t name =
  match find ?labels t name with Some { value = Gauge v; _ } -> v | _ -> 0

let histogram_value ?labels t name =
  match find ?labels t name with
  | Some { value = Histogram h; _ } -> Some h
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Prometheus text format *)

let escape_label v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let escape_help v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let label_block labels =
  if labels = [] then ""
  else
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v))
           labels)
    ^ "}"

let type_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let to_prometheus t =
  let buf = Buffer.create 4096 in
  (* families in first-registration order, samples contiguous per family *)
  let families =
    List.fold_left
      (fun acc s -> if List.mem s.name acc then acc else s.name :: acc)
      [] t.samples
    |> List.rev
  in
  List.iter
    (fun fam ->
      let ss = List.filter (fun s -> String.equal s.name fam) t.samples in
      (match ss with
      | first :: _ ->
        Buffer.add_string buf
          (Printf.sprintf "# HELP %s %s\n" fam (escape_help first.help));
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" fam (type_name first.value))
      | [] -> ());
      List.iter
        (fun s ->
          match s.value with
          | Counter v | Gauge v ->
            Buffer.add_string buf
              (Printf.sprintf "%s%s %d\n" s.name (label_block s.labels) v)
          | Histogram h ->
            (* OpenMetrics-style exemplar, attached to the first bucket
               wide enough to hold the exemplar's value. *)
            let ex_bucket =
              match h.exemplar with
              | None -> -1
              | Some (v, _) ->
                let n = Array.length h.bounds in
                let i = ref 0 in
                while !i < n && v > h.bounds.(!i) do
                  incr i
                done;
                !i
            in
            let cum = ref 0 in
            Array.iteri
              (fun i c ->
                cum := !cum + c;
                let le =
                  if i < Array.length h.bounds then
                    string_of_int h.bounds.(i)
                  else "+Inf"
                in
                let ex =
                  match h.exemplar with
                  | Some (v, tid) when i = ex_bucket ->
                    Printf.sprintf " # {trace_id=\"%d\"} %d" tid v
                  | _ -> ""
                in
                Buffer.add_string buf
                  (Printf.sprintf "%s_bucket%s %d%s\n" s.name
                     (label_block (s.labels @ [ ("le", le) ]))
                     !cum ex))
              h.counts;
            Buffer.add_string buf
              (Printf.sprintf "%s_sum%s %d\n" s.name (label_block s.labels)
                 h.sum);
            Buffer.add_string buf
              (Printf.sprintf "%s_count%s %d\n" s.name (label_block s.labels)
                 h.count))
        ss)
    families;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON *)

let json_escape v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"metrics\": [";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n    {";
      Buffer.add_string buf
        (Printf.sprintf "\"name\": \"%s\", \"type\": \"%s\""
           (json_escape s.name) (type_name s.value));
      if s.labels <> [] then begin
        Buffer.add_string buf ", \"labels\": {";
        List.iteri
          (fun j (k, v) ->
            if j > 0 then Buffer.add_string buf ", ";
            Buffer.add_string buf
              (Printf.sprintf "\"%s\": \"%s\"" (json_escape k) (json_escape v)))
          s.labels;
        Buffer.add_char buf '}'
      end;
      (match s.value with
      | Counter v | Gauge v ->
        Buffer.add_string buf (Printf.sprintf ", \"value\": %d" v)
      | Histogram h ->
        Buffer.add_string buf ", \"buckets\": [";
        let cum = ref 0 in
        Array.iteri
          (fun j c ->
            cum := !cum + c;
            if j > 0 then Buffer.add_string buf ", ";
            let le =
              if j < Array.length h.bounds then string_of_int h.bounds.(j)
              else "\"+Inf\""
            in
            Buffer.add_string buf
              (Printf.sprintf "{\"le\": %s, \"count\": %d}" le !cum))
          h.counts;
        Buffer.add_string buf
          (Printf.sprintf "], \"sum\": %d, \"count\": %d" h.sum h.count);
        match h.exemplar with
        | Some (v, tid) ->
          Buffer.add_string buf
            (Printf.sprintf ", \"exemplar\": {\"value\": %d, \"trace_id\": %d}"
               v tid)
        | None -> ());
      Buffer.add_char buf '}')
    t.samples;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* The shared "stats:" pretty-printer (bdprint --stats).

   Sequential and parallel stream runs fill the same metric names, so
   both report identical fields through this one printer; service-only
   series simply read 0 / "closed" on sequential runs.  Per-worker
   lines appear when a supervisor registered them. *)

let pp_stream ppf t =
  let c ?labels name = counter_value ?labels t name in
  let g ?labels name = gauge_value ?labels t name in
  let breaker =
    List.fold_left
      (fun acc s ->
        if String.equal s.name "bdprint_service_breaker_state" then
          match (s.value, List.assoc_opt "state" s.labels) with
          | Gauge 1, Some st -> st
          | _ -> acc
        else acc)
      "closed" t.samples
  in
  Format.fprintf ppf
    "stats: submitted=%d ok=%d degraded=%d retries=%d@\n\
     stats: errors: syntax=%d range=%d budget=%d internal=%d@\n\
     stats: jobs=%d queue-capacity=%d max-in-flight=%d breaker=%s trips=%d \
     crashes=%d respawns=%d"
    (c "bdprint_conversions_total")
    (c ~labels:[ ("result", "ok") ] "bdprint_conversion_results_total")
    (c ~labels:[ ("result", "degraded") ] "bdprint_conversion_results_total")
    (c "bdprint_service_retries_total")
    (c ~labels:[ ("class", "syntax") ] "bdprint_conversion_errors_total")
    (c ~labels:[ ("class", "range") ] "bdprint_conversion_errors_total")
    (c ~labels:[ ("class", "budget") ] "bdprint_conversion_errors_total")
    (c ~labels:[ ("class", "internal") ] "bdprint_conversion_errors_total")
    (g "bdprint_stream_jobs")
    (g "bdprint_stream_queue_capacity")
    (g "bdprint_service_max_in_flight")
    breaker
    (c "bdprint_service_breaker_trips_total")
    (c "bdprint_service_worker_crashes_total")
    (c "bdprint_service_worker_respawns_total");
  let workers =
    List.filter_map
      (fun s ->
        if String.equal s.name "bdprint_service_worker_processed_total" then
          Option.bind
            (List.assoc_opt "worker" s.labels)
            int_of_string_opt
        else None)
      t.samples
    |> List.sort_uniq compare
  in
  List.iter
    (fun w ->
      let l = [ ("worker", string_of_int w) ] in
      Format.fprintf ppf
        "@\nstats: worker[%d] processed=%d retried=%d degraded=%d" w
        (c ~labels:l "bdprint_service_worker_processed_total")
        (c ~labels:l "bdprint_service_worker_retried_total")
        (c ~labels:l "bdprint_service_worker_degraded_total"))
    workers
