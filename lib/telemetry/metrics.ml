(* A domain-safe metrics registry: atomic counters, gauges and
   fixed-bucket histograms with lock-free recording.

   Recording never takes a lock — every cell is an [Atomic.t int], so
   worker domains of the service layer can hammer the same counter
   without contention beyond the cache line.  Registration (rare, at
   module initialisation or test setup) is serialized by a per-registry
   mutex and is idempotent: registering the same (name, labels) series
   twice returns the existing metric, so libraries can declare their
   instruments at toplevel without coordination.

   Hot-path instrumentation sites guard themselves with {!enabled} — a
   single atomic load and branch when telemetry is off, which is the
   zero-cost-when-disabled contract the conversion hot loops rely on.
   Always-on sites (the reader tier counters backing
   [Reader.Fast.stats], the fault trip counters backing chaos tests)
   simply skip the guard: one uncontended fetch-and-add per event. *)

type meta = { name : string; help : string; labels : (string * string) list }

type counter = { c_meta : meta; c_cell : int Atomic.t }

type gauge = { g_meta : meta; g_cell : int Atomic.t }

type exemplar = { ex_value : int; ex_trace : int }

type histogram = {
  h_meta : meta;
  bounds : int array;  (* strictly increasing inclusive upper bounds *)
  buckets : int Atomic.t array;  (* length bounds + 1; last is overflow *)
  h_sum : int Atomic.t;
  h_count : int Atomic.t;
  h_exemplar : exemplar option Atomic.t;
      (* the max-valued traced observation; immutable record, CAS swap *)
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type registry = { lock : Mutex.t; mutable items : metric list (* reversed *) }
[@@lint.guarded_by "lock"]

let create_registry () = { lock = Mutex.create (); items = [] }

let default = create_registry ()

(* ------------------------------------------------------------------ *)
(* Global enable switch *)

let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag

let set_enabled b = Atomic.set enabled_flag b

(* ------------------------------------------------------------------ *)
(* Registration *)

let meta_of = function
  | Counter c -> c.c_meta
  | Gauge g -> g.g_meta
  | Histogram h -> h.h_meta

let same_series m name labels =
  let mt = meta_of m in
  String.equal mt.name name && mt.labels = labels

let with_registry registry f =
  Mutex.lock registry.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry.lock) f

let counter ?(registry = default) ?(labels = []) ~help name =
  with_registry registry @@ fun () ->
  match List.find_opt (fun m -> same_series m name labels) registry.items with
  | Some (Counter c) -> c
  | Some _ ->
    invalid_arg
      (Printf.sprintf "Metrics.counter: %s already registered as another type"
         name)
  | None ->
    let c = { c_meta = { name; help; labels }; c_cell = Atomic.make 0 } in
    registry.items <- Counter c :: registry.items;
    c

let gauge ?(registry = default) ?(labels = []) ~help name =
  with_registry registry @@ fun () ->
  match List.find_opt (fun m -> same_series m name labels) registry.items with
  | Some (Gauge g) -> g
  | Some _ ->
    invalid_arg
      (Printf.sprintf "Metrics.gauge: %s already registered as another type"
         name)
  | None ->
    let g = { g_meta = { name; help; labels }; g_cell = Atomic.make 0 } in
    registry.items <- Gauge g :: registry.items;
    g

(* Log-linear bucket bounds: [lo] itself, then within each decade
   [b, 10b) the bounds [b * i * 10 / per_decade] for i = 1..per_decade,
   up to and including [hi].  per_decade = 5 from lo = 100 gives
   100, 200, 400, 600, 800, 1000, 2000, ... — round numbers, relative
   resolution roughly constant across five orders of magnitude, and a
   bucket count that grows with log(hi/lo) instead of hi/lo. *)
let log_linear ?(per_decade = 5) ~lo ~hi () =
  if lo < 1 then invalid_arg "Metrics.log_linear: need lo >= 1";
  if hi <= lo then invalid_arg "Metrics.log_linear: need hi > lo";
  if per_decade < 1 || per_decade > 10 then
    invalid_arg "Metrics.log_linear: need 1 <= per_decade <= 10";
  let acc = ref [ lo ] in
  let b = ref lo in
  while !b < hi do
    for i = 1 to per_decade do
      let v = !b * i * 10 / per_decade in
      if v > lo && v <= hi && not (List.mem v !acc) then acc := v :: !acc
    done;
    b := !b * 10
  done;
  if not (List.mem hi !acc) then acc := hi :: !acc;
  Array.of_list (List.sort compare !acc)

let check_bounds name bounds =
  let n = Array.length bounds in
  if n = 0 then
    invalid_arg (Printf.sprintf "Metrics.histogram: %s has no buckets" name);
  for i = 1 to n - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg
        (Printf.sprintf "Metrics.histogram: %s bounds not strictly increasing"
           name)
  done

let histogram ?(registry = default) ?(labels = []) ~help ~bounds name =
  check_bounds name bounds;
  with_registry registry @@ fun () ->
  match List.find_opt (fun m -> same_series m name labels) registry.items with
  | Some (Histogram h) ->
    if h.bounds <> bounds then
      invalid_arg
        (Printf.sprintf
           "Metrics.histogram: %s already registered with other bounds" name);
    h
  | Some _ ->
    invalid_arg
      (Printf.sprintf
         "Metrics.histogram: %s already registered as another type" name)
  | None ->
    let h =
      {
        h_meta = { name; help; labels };
        bounds = Array.copy bounds;
        buckets = Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
        h_sum = Atomic.make 0;
        h_count = Atomic.make 0;
        h_exemplar = Atomic.make None;
      }
    in
    registry.items <- Histogram h :: registry.items;
    h

(* ------------------------------------------------------------------ *)
(* Recording (lock-free) *)

let incr c = Atomic.incr c.c_cell

let add c n =
  if n < 0 then invalid_arg "Metrics.add: counters only go up";
  ignore (Atomic.fetch_and_add c.c_cell n)

let value c = Atomic.get c.c_cell

let reset_counter c = Atomic.set c.c_cell 0

let set_gauge g v = Atomic.set g.g_cell v

let gauge_value g = Atomic.get g.g_cell

let rec max_gauge g v =
  let cur = Atomic.get g.g_cell in
  if v > cur && not (Atomic.compare_and_set g.g_cell cur v) then max_gauge g v

let observe h v =
  let n = Array.length h.bounds in
  let i = ref 0 in
  while !i < n && v > h.bounds.(!i) do
    i := !i + 1
  done;
  Atomic.incr h.buckets.(!i);
  ignore (Atomic.fetch_and_add h.h_sum v);
  Atomic.incr h.h_count

(* Keep the max-valued traced observation as the exemplar: a CAS loop
   over an immutable record, so concurrent observers can only lose the
   race to a *larger* value. *)
let rec update_exemplar h ~trace_id v =
  let cur = Atomic.get h.h_exemplar in
  let beats = match cur with None -> true | Some e -> v > e.ex_value in
  if beats
     && not
          (Atomic.compare_and_set h.h_exemplar cur
             (Some { ex_value = v; ex_trace = trace_id }))
  then update_exemplar h ~trace_id v

let observe_ex h ~trace_id v =
  observe h v;
  if trace_id <> 0 then update_exemplar h ~trace_id v

let exemplar_of h =
  match Atomic.get h.h_exemplar with
  | None -> None
  | Some e -> Some (e.ex_value, e.ex_trace)

(* ------------------------------------------------------------------ *)
(* Introspection for snapshots *)

let list_metrics ?(registry = default) () =
  with_registry registry @@ fun () -> List.rev registry.items

let histogram_bounds h = Array.copy h.bounds

let histogram_state h =
  (* read count last: the (counts, sum, count) triple can be mid-update
     under concurrent observers, but each field is monotone, so a
     snapshot is always a valid past state per field *)
  let counts = Array.map Atomic.get h.buckets in
  let sum = Atomic.get h.h_sum in
  let count = Atomic.get h.h_count in
  (counts, sum, count)

let reset_all ?(registry = default) () =
  with_registry registry @@ fun () ->
  List.iter
    (function
      | Counter c -> Atomic.set c.c_cell 0
      | Gauge g -> Atomic.set g.g_cell 0
      | Histogram h ->
        Array.iter (fun b -> Atomic.set b 0) h.buckets;
        Atomic.set h.h_sum 0;
        Atomic.set h.h_count 0;
        Atomic.set h.h_exemplar None)
    registry.items
