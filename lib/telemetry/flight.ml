(* A crash flight recorder: per-domain ring buffers of recent
   structured events, dumped as JSONL when something dies.

   PR7's supervisor answers a wedged or crashed worker by abandoning it
   and respawning — which destroys the evidence.  The flight recorder
   keeps the last moments on record: every domain appends cheap
   structured events (request admitted, service started, fault
   tripped, breaker state changed, deadline missed) into its own
   fixed-size ring, and when the supervisor sees a crash, a wedge, or
   the breaker opening it dumps every ring — newest history of the
   whole process — to the configured JSONL file.  The poisoned request
   is the "service-start" with no matching completion.

   Allocation is bounded: the rings are fixed arrays allocated up
   front, each record is one small immutable block, and an event
   beyond a ring's capacity overwrites that ring's oldest.  Recording
   is lock-free — slot claim is an atomic fetch-and-add, the store is
   a single pointer write — so worker domains never contend.  Rings
   are indexed by domain id modulo a fixed count; after many respawns
   two domains may share a ring, which only shortens their common
   history, never corrupts it.

   A global sequence number gives dumps a total order across rings. *)

type event = {
  f_seq : int;  (* global order across all rings *)
  f_t_us : int;  (* wall clock, microseconds since the epoch *)
  f_dom : int;
  f_req : int;  (* request/job id; 0 = none *)
  f_kind : string;
  f_detail : string;
}

let ring_count = 64

let ring_capacity = 256

type ring = { slots : event option array; cur : int Atomic.t }

let rings =
  Array.init ring_count (fun _ ->
      { slots = Array.make ring_capacity None; cur = Atomic.make 0 })
  [@@lint.domain_safe
    "fixed array of rings; slots hold immutable records stored atomically"]

let seq = Atomic.make 0

let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag

let set_enabled b = Atomic.set enabled_flag b

let now_us () = int_of_float (Unix.gettimeofday () *. 1e6)

let record ?(req = 0) ~kind detail =
  if enabled () then begin
    let dom = (Domain.self () :> int) in
    let ev =
      {
        f_seq = Atomic.fetch_and_add seq 1;
        f_t_us = now_us ();
        f_dom = dom;
        f_req = req;
        f_kind = kind;
        f_detail = detail;
      }
    in
    let ring = rings.(dom mod ring_count) in
    let i = Atomic.fetch_and_add ring.cur 1 in
    ring.slots.(i mod ring_capacity) <- Some ev
  end

let clear () =
  Array.iter
    (fun r ->
      Array.fill r.slots 0 ring_capacity None;
      Atomic.set r.cur 0)
    rings;
  Atomic.set seq 0

(* ------------------------------------------------------------------ *)
(* Rendering *)

let json_escape v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let events () =
  Array.to_list rings
  |> List.concat_map (fun r -> Array.to_list r.slots)
  |> List.filter_map Fun.id
  |> List.sort (fun a b -> compare a.f_seq b.f_seq)

let events_recorded () = List.length (events ())

let event_line ev =
  Printf.sprintf
    "{\"seq\":%d,\"t_us\":%d,\"dom\":%d,\"req\":%d,\"kind\":\"%s\",\"detail\":\"%s\"}"
    ev.f_seq ev.f_t_us ev.f_dom ev.f_req (json_escape ev.f_kind)
    (json_escape ev.f_detail)

let to_jsonl ?reason () =
  let buf = Buffer.create 4096 in
  let evs = events () in
  (match reason with
  | Some r ->
    Buffer.add_string buf
      (Printf.sprintf
         "{\"flight_dump\":true,\"reason\":\"%s\",\"t_us\":%d,\"events\":%d}\n"
         (json_escape r) (now_us ()) (List.length evs))
  | None -> ());
  List.iter
    (fun ev ->
      Buffer.add_string buf (event_line ev);
      Buffer.add_char buf '\n')
    evs;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Dumping

   The dump path is configured once by the binary (bdprintd --flight,
   BDPRINT_FLIGHT); dumps append, so a chaos run that trips several
   crashes leaves each post-mortem in order.  The mutex only serializes
   dump writes — recording stays lock-free. *)

let dump_lock = Mutex.create ()

let dump_path = ref None [@@lint.guarded_by "dump_lock"]

let dumps_written = Atomic.make 0

let set_dump_path p =
  Mutex.lock dump_lock;
  dump_path := p;
  Mutex.unlock dump_lock

let dump ~reason =
  if enabled () then begin
    Mutex.lock dump_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock dump_lock)
      (fun () ->
        match !dump_path with
        | None -> ()
        | Some path ->
          let oc =
            open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
          in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () ->
              output_string oc (to_jsonl ~reason ());
              Atomic.incr dumps_written))
  end
[@@lint.blocking_ok
  "crash-dump writes hold dump_lock deliberately: the process is dying and \
   the lock serialises the one append so records interleave whole"]

let dump_count () = Atomic.get dumps_written
