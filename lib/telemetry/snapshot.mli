(** Typed, immutable snapshots of a metrics registry, and their three
    renderings: Prometheus text format, JSON, and the human "stats:"
    lines shared by [bdprint --stdin]'s sequential and parallel
    drivers. *)

type histogram_value = {
  bounds : int array;  (** inclusive upper bounds, without +Inf *)
  counts : int array;
      (** per-bucket (non-cumulative) counts, overflow bucket last *)
  sum : int;
  count : int;
  exemplar : (int * int) option;
      (** [(value, trace_id)] of the max-valued traced observation —
          rendered OpenMetrics-style on its bucket in Prometheus
          output and as an ["exemplar"] object in JSON; absent until a
          traced observation lands, so exemplar-free renderings are
          byte-identical to the pre-exemplar format. *)
}

type value = Counter of int | Gauge of int | Histogram of histogram_value

type sample = {
  name : string;
  help : string;
  labels : (string * string) list;
  value : value;
}

type t

val take : ?registry:Metrics.registry -> unit -> t
(** Snapshot of {!Metrics.default} (or [registry]), in registration
    order.  Lock-free reads of atomic cells: each value is exact at
    some point during the call. *)

val samples : t -> sample list

(** {2 Typed lookups} *)

val find : ?labels:(string * string) list -> t -> string -> sample option

val counter_value : ?labels:(string * string) list -> t -> string -> int
(** Sum over every sample of the family matching [labels] (all
    samples of the family when [labels] is omitted); 0 when absent. *)

val gauge_value : ?labels:(string * string) list -> t -> string -> int

val histogram_value :
  ?labels:(string * string) list -> t -> string -> histogram_value option

(** {2 Renderings} *)

val to_prometheus : t -> string
(** Prometheus text exposition format: one [# HELP]/[# TYPE] header per
    family, cumulative [_bucket{le=...}] series plus [_sum]/[_count]
    for histograms. *)

val to_json : t -> string
(** A JSON object [{"metrics": [...]}]; histogram buckets are
    cumulative, mirroring the Prometheus rendering. *)

val pp_stream : Format.formatter -> t -> unit
(** The [bdprint --stats] rendering.  Sequential and parallel stream
    runs fill the same metric names and share this one printer, so both
    report identical fields; per-worker lines appear when a supervisor
    registered per-worker series. *)
