(** Domain-safe metrics: atomic counters, gauges and fixed-bucket
    histograms with lock-free recording, grouped in registries.

    Recording operations ({!incr}, {!add}, {!set_gauge}, {!observe})
    never block: every cell is an [Atomic.t], so the service layer's
    worker domains can record concurrently and sums stay exact.
    Registration is mutex-protected and {e idempotent} — registering an
    already-known (name, labels) series returns the existing metric —
    so libraries declare their instruments at module toplevel.

    The process-wide {!enabled} flag is the zero-cost-when-disabled
    gate: hot-loop instrumentation sites check it (one atomic load and
    a branch) before touching any metric.  Cheap once-per-request
    sites — the reader tier counters, fault trip counters, service
    reply accounting — record unconditionally so their public
    stats contracts hold without telemetry being switched on. *)

type meta = { name : string; help : string; labels : (string * string) list }

type counter
type gauge
type histogram

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type registry

val create_registry : unit -> registry
(** A fresh, empty registry — used by tests that need golden output
    independent of the process-wide instruments. *)

val default : registry
(** The process-wide registry all library instrumentation registers
    into; [bdprint --metrics] and {!Snapshot.take} read it. *)

(** {2 Enable switch} *)

val enabled : unit -> bool
(** One atomic load; hot paths branch on this before recording. *)

val set_enabled : bool -> unit

(** {2 Registration (idempotent)} *)

val counter :
  ?registry:registry ->
  ?labels:(string * string) list ->
  help:string ->
  string ->
  counter

val gauge :
  ?registry:registry ->
  ?labels:(string * string) list ->
  help:string ->
  string ->
  gauge

val histogram :
  ?registry:registry ->
  ?labels:(string * string) list ->
  help:string ->
  bounds:int array ->
  string ->
  histogram
(** [bounds] are strictly increasing inclusive upper bounds; an
    implicit overflow (+Inf) bucket is appended.
    @raise Invalid_argument on empty or non-increasing bounds, or when
    the series exists with different bounds or a different type. *)

val log_linear : ?per_decade:int -> lo:int -> hi:int -> unit -> int array
(** Log-linear bucket bounds for {!histogram}: [lo], then within each
    decade [b, 10b) the bounds [b*i*10/per_decade] for
    [i = 1..per_decade], through [hi] (always included).  Resolution is
    roughly constant {e relative} error, and the bucket count grows
    with [log (hi/lo)].  [per_decade] defaults to 5 — with [lo] a
    power of ten that yields 100, 200, 400, 600, 800, 1000, 2000, ...
    @raise Invalid_argument unless [1 <= lo < hi] and
    [1 <= per_decade <= 10]. *)

(** {2 Recording — lock-free} *)

val incr : counter -> unit

val add : counter -> int -> unit
(** @raise Invalid_argument on a negative increment. *)

val value : counter -> int

val reset_counter : counter -> unit
(** For tests ({!Robust.Faults.reset_trip_counts}); Prometheus
    semantics say counters only go up, so production code never calls
    this. *)

val set_gauge : gauge -> int -> unit
val gauge_value : gauge -> int

val max_gauge : gauge -> int -> unit
(** Retains the maximum of the current value and the argument
    (lock-free CAS loop) — high-water marks like max-in-flight. *)

val observe : histogram -> int -> unit
(** Adds [v] to the first bucket whose bound is [>= v] (overflow bucket
    past the last bound) and updates sum and count. *)

val observe_ex : histogram -> trace_id:int -> int -> unit
(** {!observe}, and when [trace_id <> 0] also offers [(v, trace_id)]
    as the histogram's exemplar — kept only if [v] exceeds the current
    exemplar's value (lock-free CAS), so the exemplar always points a
    trace at the worst observed latency. *)

val exemplar_of : histogram -> (int * int) option
(** The current [(value, trace_id)] exemplar, if any traced
    observation has been recorded. *)

(** {2 Introspection} *)

val meta_of : metric -> meta

val list_metrics : ?registry:registry -> unit -> metric list
(** In registration order. *)

val histogram_bounds : histogram -> int array
(** The registered upper bounds (a copy), without the implicit +Inf. *)

val histogram_state : histogram -> int array * int * int
(** [(per_bucket_counts, sum, count)]; counts are per-bucket (not
    cumulative) and include the trailing overflow bucket. *)

val reset_all : ?registry:registry -> unit -> unit
(** Zeroes every metric in the registry (tests and benchmarks). *)
