(** Domain-safe metrics: atomic counters, gauges and fixed-bucket
    histograms with lock-free recording, grouped in registries.

    Recording operations ({!incr}, {!add}, {!set_gauge}, {!observe})
    never block: every cell is an [Atomic.t], so the service layer's
    worker domains can record concurrently and sums stay exact.
    Registration is mutex-protected and {e idempotent} — registering an
    already-known (name, labels) series returns the existing metric —
    so libraries declare their instruments at module toplevel.

    The process-wide {!enabled} flag is the zero-cost-when-disabled
    gate: hot-loop instrumentation sites check it (one atomic load and
    a branch) before touching any metric.  Cheap once-per-request
    sites — the reader tier counters, fault trip counters, service
    reply accounting — record unconditionally so their public
    stats contracts hold without telemetry being switched on. *)

type meta = { name : string; help : string; labels : (string * string) list }

type counter
type gauge
type histogram

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type registry

val create_registry : unit -> registry
(** A fresh, empty registry — used by tests that need golden output
    independent of the process-wide instruments. *)

val default : registry
(** The process-wide registry all library instrumentation registers
    into; [bdprint --metrics] and {!Snapshot.take} read it. *)

(** {2 Enable switch} *)

val enabled : unit -> bool
(** One atomic load; hot paths branch on this before recording. *)

val set_enabled : bool -> unit

(** {2 Registration (idempotent)} *)

val counter :
  ?registry:registry ->
  ?labels:(string * string) list ->
  help:string ->
  string ->
  counter

val gauge :
  ?registry:registry ->
  ?labels:(string * string) list ->
  help:string ->
  string ->
  gauge

val histogram :
  ?registry:registry ->
  ?labels:(string * string) list ->
  help:string ->
  bounds:int array ->
  string ->
  histogram
(** [bounds] are strictly increasing inclusive upper bounds; an
    implicit overflow (+Inf) bucket is appended.
    @raise Invalid_argument on empty or non-increasing bounds, or when
    the series exists with different bounds or a different type. *)

(** {2 Recording — lock-free} *)

val incr : counter -> unit

val add : counter -> int -> unit
(** @raise Invalid_argument on a negative increment. *)

val value : counter -> int

val reset_counter : counter -> unit
(** For tests ({!Robust.Faults.reset_trip_counts}); Prometheus
    semantics say counters only go up, so production code never calls
    this. *)

val set_gauge : gauge -> int -> unit
val gauge_value : gauge -> int

val max_gauge : gauge -> int -> unit
(** Retains the maximum of the current value and the argument
    (lock-free CAS loop) — high-water marks like max-in-flight. *)

val observe : histogram -> int -> unit
(** Adds [v] to the first bucket whose bound is [>= v] (overflow bucket
    past the last bound) and updates sum and count. *)

(** {2 Introspection} *)

val meta_of : metric -> meta

val list_metrics : ?registry:registry -> unit -> metric list
(** In registration order. *)

val histogram_bounds : histogram -> int array
(** The registered upper bounds (a copy), without the implicit +Inf. *)

val histogram_state : histogram -> int array * int * int
(** [(per_bucket_counts, sum, count)]; counts are per-bucket (not
    cumulative) and include the trailing overflow bucket. *)

val reset_all : ?registry:registry -> unit -> unit
(** Zeroes every metric in the registry (tests and benchmarks). *)
