(* Request-scoped span tracing with Chrome trace-event export.

   A traced request gets a process-unique trace id; every pipeline and
   service stage it crosses records a completed span ("X" phase in
   Chrome trace-event terms) into a fixed-size global ring.  Requests
   are *sampled* — a per-domain countdown picks one in N (default 64) —
   so the hot loop only pays clock reads on the requests it is actually
   following, and the ring bounds memory however long the process runs
   (old spans are overwritten).

   Identity travels two ways:
   - [begin_request]/[end_request] manage a domain-local current trace
     id for straight-line pipelines (the CLI stream drivers, worker
     domains processing one job at a time).  Systhreads share their
     domain's DLS slot, so code that multiplexes requests across
     threads — the daemon's connection threads, the client's hedge
     helpers — must instead carry the id explicitly through
     [span_of]/[emit ~tid].
   - Across the wire the id rides the optional TID field of CONV/BATCH
     (see Wire), so a daemon-side span lands under the same track as
     the client spans that caused it.

   Export is Chrome trace-event JSON (chrome://tracing, Perfetto).
   Each trace id becomes its own thread track ([tid] field), so the
   viewer nests a request's spans by time containment without explicit
   parent pointers. *)

type stage =
  | Parse
  | Boundaries
  | Scale
  | Generate
  | Render
  | Client_attempt
  | Client_backoff
  | Client_hedge
  | Wire_read
  | Wire_write
  | Queue_wait
  | Worker_service
  | Memo_lookup
  | Request
  | Fastpath

let all =
  [ Parse; Boundaries; Scale; Generate; Render; Client_attempt;
    Client_backoff; Client_hedge; Wire_read; Wire_write; Queue_wait;
    Worker_service; Memo_lookup; Request; Fastpath ]

let stage_name = function
  | Parse -> "parse"
  | Boundaries -> "boundaries"
  | Scale -> "scale"
  | Generate -> "generate"
  | Render -> "render"
  | Client_attempt -> "client-attempt"
  | Client_backoff -> "client-backoff"
  | Client_hedge -> "client-hedge"
  | Wire_read -> "wire-read"
  | Wire_write -> "wire-write"
  | Queue_wait -> "queue-wait"
  | Worker_service -> "worker-service"
  | Memo_lookup -> "memo-lookup"
  | Request -> "request"
  | Fastpath -> "fastpath"

type event = {
  ev_tid : int;
  ev_stage : stage;
  ev_start_ns : int;
  ev_dur_ns : int;
  ev_dom : int;
  ev_note : string;
}

(* ------------------------------------------------------------------ *)
(* Enable switch and sampling *)

let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag

let set_enabled b = Atomic.set enabled_flag b

let sample_every = Atomic.make 64

let set_sample_every n =
  if n < 1 then invalid_arg "Tracing.set_sample_every: need >= 1";
  Atomic.set sample_every n

(* Trace id 0 means "not traced" everywhere; ids start at 1. *)
let next_tid = Atomic.make 1

(* Per-domain sampling countdown, starting at 1 so the first request of
   every domain is traced (short CLI runs still produce a trace). *)
let countdown = Domain.DLS.new_key (fun () -> ref 1)

(* Domain-local current trace id; 0 when the current request is not
   traced.  Valid only where one request occupies the domain at a time
   (see the module comment). *)
let current_tid = Domain.DLS.new_key (fun () -> ref 0)

let request_start = Domain.DLS.new_key (fun () -> ref 0)

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* ------------------------------------------------------------------ *)
(* The span ring: immutable slots under an atomic cursor.

   Writers claim a slot with fetch-and-add and store an immutable
   record — a single pointer store, so concurrent readers can see a
   stale slot but never a torn one.  When the ring wraps, the oldest
   spans are overwritten; [dropped] counts them so an export can say it
   is partial. *)

let capacity = 8192

let ring : event option array = Array.make capacity None
  [@@lint.domain_safe "immutable-record slots; pointer stores are atomic"]

let cursor = Atomic.make 0

let record ~tid ~stage ~start_ns ~dur_ns ?(note = "") () =
  if tid <> 0 then begin
    let ev =
      {
        ev_tid = tid;
        ev_stage = stage;
        ev_start_ns = start_ns;
        ev_dur_ns = max 0 dur_ns;
        ev_dom = (Domain.self () :> int);
        ev_note = note;
      }
    in
    let i = Atomic.fetch_and_add cursor 1 in
    ring.(i mod capacity) <- Some ev
  end

let dropped () = max 0 (Atomic.get cursor - capacity)

let events_recorded () = min capacity (Atomic.get cursor)

let clear () =
  Array.fill ring 0 capacity None;
  Atomic.set cursor 0

(* ------------------------------------------------------------------ *)
(* Request lifecycle *)

let fresh_tid () = Atomic.fetch_and_add next_tid 1

(* Sampling decision alone: a fresh trace id for one request in N, or
   0.  Does not touch the domain-local current id, so connection
   threads that multiplex requests can use it safely. *)
let sample () =
  if not (enabled ()) then 0
  else begin
    let r = Domain.DLS.get countdown in
    let n = !r in
    if n <= 1 then begin
      r := Atomic.get sample_every;
      fresh_tid ()
    end
    else begin
      r := n - 1;
      0
    end
  end

let current () = !(Domain.DLS.get current_tid)

let adopt tid = Domain.DLS.get current_tid := tid

let begin_request () =
  let tid = sample () in
  (* Always (re)set the current id: an unsampled request must not
     inherit the previous request's id. *)
  adopt tid;
  if tid <> 0 then Domain.DLS.get request_start := now_ns ();
  tid

let end_request tid =
  if tid <> 0 then begin
    let t0 = !(Domain.DLS.get request_start) in
    if t0 <> 0 then
      record ~tid ~stage:Request ~start_ns:t0 ~dur_ns:(now_ns () - t0) ()
  end;
  adopt 0

(* ------------------------------------------------------------------ *)
(* Spans *)

let span_of tid = if tid <> 0 then now_ns () else 0

let span () = span_of (current ())

let emit ?note ?tid stage t0 =
  if t0 <> 0 then begin
    let tid = match tid with Some t -> t | None -> current () in
    if tid <> 0 then
      record ~tid ~stage ~start_ns:t0 ~dur_ns:(now_ns () - t0) ?note ()
  end

(* Test hook: a deterministic event for golden output, bypassing the
   clock and the sampler. *)
let inject ~tid ~stage ~start_ns ~dur_ns ?(dom = 0) ?(note = "") () =
  let i = Atomic.fetch_and_add cursor 1 in
  ring.(i mod capacity) <-
    Some
      {
        ev_tid = tid;
        ev_stage = stage;
        ev_start_ns = start_ns;
        ev_dur_ns = max 0 dur_ns;
        ev_dom = dom;
        ev_note = note;
      }

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export *)

let events () =
  let evs = Array.to_list ring |> List.filter_map Fun.id in
  List.sort
    (fun a b ->
      match compare a.ev_start_ns b.ev_start_ns with
      | 0 -> compare a.ev_tid b.ev_tid
      | c -> c)
    evs

let json_escape v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

(* Microseconds with nanosecond precision kept as three decimals —
   Chrome's [ts]/[dur] unit is the microsecond. *)
let micros ns = Printf.sprintf "%d.%03d" (ns / 1000) (ns mod 1000)

let to_chrome_json ?pid () =
  let pid = match pid with Some p -> p | None -> Unix.getpid () in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n{\"name\":\"%s\",\"cat\":\"bdprint\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":%d,\"tid\":%d,\"args\":{\"dom\":%d%s}}"
           (stage_name ev.ev_stage) (micros ev.ev_start_ns)
           (micros ev.ev_dur_ns) pid ev.ev_tid ev.ev_dom
           (if String.equal ev.ev_note "" then ""
            else Printf.sprintf ",\"note\":\"%s\"" (json_escape ev.ev_note))))
    (events ());
  Buffer.add_string buf
    (Printf.sprintf "\n],\"displayTimeUnit\":\"ns\",\"otherData\":{\"dropped\":%d}}\n"
       (dropped ()));
  Buffer.contents buf
