(* Lightweight span tracing for the conversion pipeline.

   A conversion flows parse -> boundaries -> scale -> generate ->
   render; each stage is timed into a per-stage nanosecond histogram.
   Timing every conversion would cost two clock reads per stage — far
   more than the 2% overhead budget on the sub-microsecond free-format
   hot loop — so spans are *sampled*: each domain keeps a countdown and
   only every Nth span (default 32) reads the clock.  The histograms
   therefore describe the latency distribution, not an exact census;
   the exact counters live in Metrics.

   Disabled cost: one atomic load and a branch per span site.  Enabled,
   unsampled cost: a domain-local load, an integer decrement and a
   branch. *)

type stage = Parse | Boundaries | Scale | Generate | Render

let all = [ Parse; Boundaries; Scale; Generate; Render ]

let stage_name = function
  | Parse -> "parse"
  | Boundaries -> "boundaries"
  | Scale -> "scale"
  | Generate -> "generate"
  | Render -> "render"

let index = function
  | Parse -> 0
  | Boundaries -> 1
  | Scale -> 2
  | Generate -> 3
  | Render -> 4

let duration_bounds =
  [| 100; 250; 500; 1_000; 2_500; 5_000; 10_000; 25_000; 50_000; 100_000;
     1_000_000; 10_000_000 |]
  [@@lint.domain_safe "read-only bounds template; Metrics.histogram copies it"]

let hists =
  Array.of_list
    (List.map
       (fun s ->
         Metrics.histogram
           ~labels:[ ("stage", stage_name s) ]
           ~help:
             "Sampled per-stage conversion latency in nanoseconds (parse, \
              boundaries, scale, generate, render)."
           ~bounds:duration_bounds "bdprint_stage_duration_ns")
       all)
  [@@lint.domain_safe "array of registered histogram handles; written once at init"]

let sample_every = Atomic.make 32

let set_sample_every n =
  if n < 1 then invalid_arg "Trace.set_sample_every: need >= 1";
  Atomic.set sample_every n

(* Domain-local countdown: worker domains sample independently, no
   contention.  Starts at 1 so the first span of every domain records. *)
let countdown = Domain.DLS.new_key (fun () -> ref 1)

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let start () =
  if not (Metrics.enabled ()) then 0
  else begin
    let r = Domain.DLS.get countdown in
    let n = !r in
    if n <= 1 then begin
      r := Atomic.get sample_every;
      now_ns ()
    end
    else begin
      r := n - 1;
      0
    end
  end

let finish stage t0 =
  if t0 <> 0 then Metrics.observe hists.(index stage) (max 0 (now_ns () - t0))
