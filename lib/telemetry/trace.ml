(* Lightweight span timing for pipeline and service stages.

   A conversion flows parse -> boundaries -> scale -> generate ->
   render, and in service deployments additionally crosses client
   attempts, the wire, the admission queue, a worker domain, and the
   memo cache; each stage is timed into a per-stage nanosecond
   histogram.  Timing every conversion would cost two clock reads per
   stage — far more than the 2% overhead budget on the sub-microsecond
   free-format hot loop — so spans are *sampled*: each domain keeps a
   countdown and only every Nth span (default 32) reads the clock.
   The histograms therefore describe the latency distribution, not an
   exact census; the exact counters live in Metrics.

   This module is also the bridge into request tracing (Tracing): when
   the current request carries a trace id, {!start} always reads the
   clock and {!finish} both forwards the span to the trace ring and
   offers the duration as the histogram's trace-id exemplar.  A span
   site therefore serves both consumers with one start/finish pair.

   Disabled cost: one domain-local load, one atomic load and a branch
   per span site.  Enabled, unsampled cost: a domain-local load, an
   integer decrement and a branch. *)

type stage = Tracing.stage =
  | Parse
  | Boundaries
  | Scale
  | Generate
  | Render
  | Client_attempt
  | Client_backoff
  | Client_hedge
  | Wire_read
  | Wire_write
  | Queue_wait
  | Worker_service
  | Memo_lookup
  | Request
  | Fastpath

let all = Tracing.all

let stage_name = Tracing.stage_name

let index = function
  | Parse -> 0
  | Boundaries -> 1
  | Scale -> 2
  | Generate -> 3
  | Render -> 4
  | Client_attempt -> 5
  | Client_backoff -> 6
  | Client_hedge -> 7
  | Wire_read -> 8
  | Wire_write -> 9
  | Queue_wait -> 10
  | Worker_service -> 11
  | Memo_lookup -> 12
  | Request -> 13
  | Fastpath -> 14

(* Log-linear nanosecond bounds, 100ns to 10ms: the pipeline stages
   sit under a microsecond, a queued service round trip reaches
   milliseconds, and the relative resolution stays roughly constant
   across that whole span (replacing 12 hand-picked bounds). *)
let duration_bounds = Metrics.log_linear ~lo:100 ~hi:10_000_000 ()
  [@@lint.domain_safe "read-only bounds template; Metrics.histogram copies it"]

let hists =
  Array.of_list
    (List.map
       (fun s ->
         Metrics.histogram
           ~labels:[ ("stage", stage_name s) ]
           ~help:
             "Sampled per-stage conversion latency in nanoseconds \
              (pipeline, wire, queue and service stages)."
           ~bounds:duration_bounds "bdprint_stage_duration_ns")
       all)
  [@@lint.domain_safe "array of registered histogram handles; written once at init"]

let sample_every = Atomic.make 32

let set_sample_every n =
  if n < 1 then invalid_arg "Trace.set_sample_every: need >= 1";
  Atomic.set sample_every n

(* Domain-local countdown: worker domains sample independently, no
   contention.  Starts at 1 so the first span of every domain records. *)
let countdown = Domain.DLS.new_key (fun () -> ref 1)

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let start () =
  if Tracing.enabled () && Tracing.current () <> 0 then
    (* The current request is traced: always time, so its span tree is
       complete regardless of the histogram sampling countdown.  The
       atomic-flag check first keeps the common tracing-off path to one
       load, skipping the domain-local lookup. *)
    now_ns ()
  else if not (Metrics.enabled ()) then 0
  else begin
    let r = Domain.DLS.get countdown in
    let n = !r in
    if n <= 1 then begin
      r := Atomic.get sample_every;
      now_ns ()
    end
    else begin
      r := n - 1;
      0
    end
  end

let finish ?note stage t0 =
  if t0 <> 0 then begin
    let d = max 0 (now_ns () - t0) in
    let tid = if Tracing.enabled () then Tracing.current () else 0 in
    if Metrics.enabled () then
      Metrics.observe_ex hists.(index stage) ~trace_id:tid d;
    if tid <> 0 then
      Tracing.record ~tid ~stage ~start_ns:t0 ~dur_ns:d ?note ()
  end
