(** Request-scoped span tracing with Chrome trace-event export.

    One request in N ({!set_sample_every}, default 64) is assigned a
    process-unique trace id; every stage it crosses records a completed
    span into a fixed-size global ring (old spans are overwritten, so
    memory stays bounded).  {!to_chrome_json} renders the ring in
    Chrome trace-event JSON, loadable in chrome://tracing or Perfetto:
    each trace id is its own thread track, so a request's spans nest by
    time containment.

    Trace id [0] means "not traced" throughout; every entry point is a
    cheap no-op for it, so call sites need no guards of their own.

    The domain-local current id set by {!begin_request}/{!adopt} is
    only meaningful where a single request occupies the domain at a
    time (CLI stream drivers, supervisor worker domains).  Systhreads
    share their domain's slot, so multiplexing code — daemon connection
    threads, client hedge helpers — must carry the id explicitly via
    {!span_of} and [emit ~tid]. *)

type stage =
  | Parse
  | Boundaries
  | Scale
  | Generate
  | Render
  | Client_attempt
  | Client_backoff
  | Client_hedge
  | Wire_read
  | Wire_write
  | Queue_wait
  | Worker_service
  | Memo_lookup
  | Request
  | Fastpath

val all : stage list
val stage_name : stage -> string

(** {2 Enable switch and sampling} *)

val enabled : unit -> bool
(** One atomic load; disabled means {!sample} and {!begin_request}
    return 0 and every span site stays on its 0-token no-op path. *)

val set_enabled : bool -> unit

val set_sample_every : int -> unit
(** Trace every Nth request per domain (default 64); [1] traces all.
    @raise Invalid_argument on [n < 1]. *)

(** {2 Request lifecycle} *)

val begin_request : unit -> int
(** Sampling decision for a new request on this domain: returns a
    fresh trace id (or 0) and installs it as the domain-local current
    id — including the 0, so an untraced request never inherits its
    predecessor's id.  Pair with {!end_request}. *)

val end_request : int -> unit
(** Records the [Request] root span for a traced request and clears
    the domain-local current id; [0] just clears. *)

val sample : unit -> int
(** The sampling decision alone — a fresh trace id for one request in
    N, or 0 — without touching the domain-local current id.  For
    connection threads that multiplex requests. *)

val fresh_tid : unit -> int
(** An unconditional fresh trace id, bypassing the sampler — for
    adopting requests that were already sampled elsewhere (tests,
    explicit trace requests). *)

val current : unit -> int
(** The domain-local current trace id; 0 when untraced. *)

val adopt : int -> unit
(** Installs [tid] as the domain-local current id (0 clears) — worker
    domains adopt the id carried by a dequeued job. *)

(** {2 Spans} *)

val span : unit -> int
(** Opens a span against the current id: a clock token, or 0 when the
    current request is untraced. *)

val span_of : int -> int
(** Opens a span against an explicit id: a clock token, or 0. *)

val emit : ?note:string -> ?tid:int -> stage -> int -> unit
(** Closes a span opened by {!span}/{!span_of}; a [0] token is a
    no-op.  [tid] defaults to the domain-local current id. *)

val record :
  tid:int -> stage:stage -> start_ns:int -> dur_ns:int -> ?note:string ->
  unit -> unit
(** Low-level ring write of a completed span; [tid = 0] is a no-op.
    {!Trace.finish} uses this to forward pipeline-stage timings. *)

(** {2 Export} *)

val events_recorded : unit -> int
(** Spans currently held in the ring (capped at the ring size). *)

val dropped : unit -> int
(** Spans overwritten since the last {!clear} — nonzero means
    {!to_chrome_json} is a suffix of the run, not the whole run. *)

val to_chrome_json : ?pid:int -> unit -> string
(** The ring as Chrome trace-event JSON ("X" complete events, one
    thread track per trace id), sorted by start time.  [pid] defaults
    to the process id; tests pin it for golden output. *)

val clear : unit -> unit
(** Empties the ring and resets the drop count (tests, TRACE verb). *)

val inject :
  tid:int -> stage:stage -> start_ns:int -> dur_ns:int -> ?dom:int ->
  ?note:string -> unit -> unit
(** Test hook: append a fabricated span, bypassing clock and sampler,
    so golden tests can pin {!to_chrome_json} output exactly. *)
