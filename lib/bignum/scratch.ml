(* Mutable fixed-capacity limb workspaces for the digit-generation hot
   path.  A [t] owns a little-endian array of 30-bit limbs (same
   representation as [Nat]) of which the first [len] are significant;
   limbs past [len] are garbage.  Every kernel works destructively on
   the workspace and grows the backing array geometrically, so a pooled
   workspace reaches a steady state after which no operation
   allocates. *)

let base_bits = 30
let base = 1 lsl base_bits
let mask = base - 1

type t = { mutable limbs : int array; mutable len : int }
[@@lint.domain_safe "workspaces live in a Domain.DLS pool; never shared across domains"]

exception Quotient_overflow

let create capacity = { limbs = Array.make (max capacity 1) 0; len = 0 }

let capacity t = Array.length t.limbs
let length t = t.len
let is_zero t = t.len = 0

(* Grow the backing array to hold at least [n] limbs, preserving the
   significant prefix.  Doubling keeps the amortized cost constant. *)
let ensure t n =
  if Array.length t.limbs < n then
    (begin
       let grown = Array.make (max n (2 * Array.length t.limbs)) 0 in
       Array.blit t.limbs 0 grown 0 t.len;
       t.limbs <- grown
     end
     [@lint.alloc_ok "geometric growth: amortized-constant, settles after warm-up"])
  [@@lint.no_alloc]

(* Re-establish the no-high-zero-limb invariant after a destructive op
   that may have shortened the value. *)
let clamp t =
  while t.len > 0 && t.limbs.(t.len - 1) = 0 do
    t.len <- t.len - 1
  done
  [@@lint.no_alloc]

let set_nat t n =
  let l = Nat.limbs n in
  let len = Array.length l in
  ensure t len;
  Array.blit l 0 t.limbs 0 len;
  t.len <- len
  [@@lint.no_alloc]

let of_nat n =
  let t = create (Array.length (Nat.limbs n) + 2) in
  set_nat t n;
  t

let to_nat t = Nat.of_limbs_copy t.limbs t.len

let set_int t n =
  if n < 0 then invalid_arg "Scratch.set_int: negative";
  ensure t 3;
  let l = t.limbs in
  l.(0) <- n land mask;
  l.(1) <- (n lsr base_bits) land mask;
  l.(2) <- n lsr (2 * base_bits);
  t.len <- 3;
  clamp t
  [@@lint.no_alloc]

let copy_into ~src ~dst =
  ensure dst src.len;
  Array.blit src.limbs 0 dst.limbs 0 src.len;
  dst.len <- src.len
  [@@lint.no_alloc]

let compare a b =
  if a.len <> b.len then Int.compare a.len b.len
  else begin
    let al = a.limbs and bl = b.limbs in
    let rec loop i =
      if i < 0 then 0
      else if al.(i) <> bl.(i) then Int.compare al.(i) bl.(i)
      else loop (i - 1)
    in
    loop (a.len - 1)
  end
  [@@lint.no_alloc]

(* a := a + b.  Safe under aliasing (a == b doubles the value): within
   each iteration both operand limbs are read before the write. *)
let add_in_place a b =
  let la = a.len and lb = b.len in
  let l = max la lb in
  ensure a (l + 1);
  let al = a.limbs and bl = b.limbs in
  let carry = ref 0 in
  for i = 0 to l - 1 do
    let t =
      (if i < la then al.(i) else 0) + (if i < lb then bl.(i) else 0) + !carry
    in
    al.(i) <- t land mask;
    carry := t lsr base_bits
  done;
  if !carry <> 0 then begin
    al.(l) <- !carry;
    a.len <- l + 1
  end
  else a.len <- l
  [@@lint.no_alloc]

(* a := a - b; requires a >= b. *)
let sub_in_place a b =
  if compare a b < 0 then invalid_arg "Scratch.sub_in_place: negative result";
  let la = a.len and lb = b.len in
  let al = a.limbs and bl = b.limbs in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let t = al.(i) - (if i < lb then bl.(i) else 0) - !borrow in
    if t < 0 then begin
      al.(i) <- t + base;
      borrow := 1
    end
    else begin
      al.(i) <- t;
      borrow := 0
    end
  done;
  clamp a
  [@@lint.no_alloc]

let mul_int_in_place a m =
  if m < 0 || m >= base then
    invalid_arg "Scratch.mul_int_in_place: out of limb range";
  if m = 0 then a.len <- 0
  else begin
    let la = a.len in
    ensure a (la + 1);
    let al = a.limbs in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let t = (al.(i) * m) + !carry in
      al.(i) <- t land mask;
      carry := t lsr base_bits
    done;
    if !carry <> 0 then begin
      al.(la) <- !carry;
      a.len <- la + 1
    end
  end
  [@@lint.no_alloc]

let shift_left_in_place a k =
  if k < 0 then invalid_arg "Scratch.shift_left_in_place: negative";
  if a.len > 0 && k > 0 then begin
    let limbs = k / base_bits and bits = k mod base_bits in
    let la = a.len in
    ensure a (la + limbs + 1);
    let al = a.limbs in
    if bits = 0 then begin
      Array.blit al 0 al limbs la;
      Array.fill al 0 limbs 0;
      a.len <- la + limbs
    end
    else begin
      (* high-to-low pass: every read happens before the slot it lands in
         is overwritten, so the shift is safely in place *)
      let top = al.(la - 1) lsr (base_bits - bits) in
      for i = la - 1 downto 1 do
        al.(i + limbs) <-
          ((al.(i) lsl bits) land mask) lor (al.(i - 1) lsr (base_bits - bits))
      done;
      al.(limbs) <- (al.(0) lsl bits) land mask;
      Array.fill al 0 limbs 0;
      if top <> 0 then begin
        al.(la + limbs) <- top;
        a.len <- la + limbs + 1
      end
      else a.len <- la + limbs
    end
  end
  [@@lint.no_alloc]

(* ------------------------------------------------------------------ *)
(* Invariant-divisor short division *)

let bits_of_limb limb =
  let rec loop n v = if v = 0 then n else loop (n + 1) (v lsr 1) in
  loop 0 limb
  [@@lint.no_alloc]

let normalize_divisor t s =
  if Nat.is_zero s then raise Division_by_zero;
  set_nat t s;
  let shift = base_bits - bits_of_limb t.limbs.(t.len - 1) in
  shift_left_in_place t shift;
  shift
  [@@lint.no_alloc]

(* One step of Knuth TAOCP 4.3.1 Algorithm D against the prepared
   divisor: returns q = floor(r/s) and leaves r := r mod s.  The
   divisor's top limb has its high bit set, so the estimate from the top
   two limbs of r is at most two high and the add-back fires at most
   once.  Quotients that do not fit a single limb (the caller broke the
   [r < 2^30 * s] precondition) raise {!Quotient_overflow} before any
   limb of [r] is written. *)
let div_digit r s =
  let n = s.len in
  if n = 0 then raise Division_by_zero;
  assert (s.limbs.(n - 1) >= base / 2);
  if r.len < n then 0
  else if r.len > n + 1 then raise Quotient_overflow
  else begin
    let rl = r.limbs and sl = s.limbs in
    let rn = if r.len > n then rl.(n) else 0 in
    (* Exact precondition check before any mutation: r < base * s holds
       iff the top n limbs of r (as an n-limb number) are below s.
       Without it, a quotient of exactly [base] would be silently capped
       at [base - 1] by the adjustment loop, leaving a remainder >= s. *)
    if r.len > n then begin
      let rec ge i =
        if i < 0 then true
        else if rl.(i + 1) <> sl.(i) then rl.(i + 1) > sl.(i)
        else ge (i - 1)
      in
      if ge (n - 1) then raise Quotient_overflow
    end;
    let top = (rn lsl base_bits) lor rl.(n - 1) in
    let qhat = ref (top / sl.(n - 1)) in
    let rhat = ref (top mod sl.(n - 1)) in
    let adjust = ref true in
    while !adjust do
      if
        !qhat >= base
        || (n >= 2
            && !qhat * sl.(n - 2) > (!rhat lsl base_bits) lor rl.(n - 2))
      then begin
        decr qhat;
        rhat := !rhat + sl.(n - 1);
        if !rhat >= base then adjust := false
      end
      else adjust := false
    done;
    (* Knuth's bound leaves qhat in {q, q+1}; a qhat still outside the
       limb range therefore means the true quotient does not fit one
       limb. *)
    if !qhat >= base then raise Quotient_overflow;
    let borrow = ref 0 and carry = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * sl.(i)) + !carry in
      carry := p lsr base_bits;
      let t = rl.(i) - (p land mask) - !borrow in
      if t < 0 then begin
        rl.(i) <- t + base;
        borrow := 1
      end
      else begin
        rl.(i) <- t;
        borrow := 0
      end
    done;
    if rn - !carry - !borrow < 0 then begin
      (* qhat was one too large: add the divisor back once *)
      decr qhat;
      let c = ref 0 in
      for i = 0 to n - 1 do
        let t = rl.(i) + sl.(i) + !c in
        rl.(i) <- t land mask;
        c := t lsr base_bits
      done
    end;
    r.len <- n;
    clamp r;
    !qhat
  end
  [@@lint.no_alloc]

let check_invariant t =
  t.len >= 0
  && t.len <= Array.length t.limbs
  && (t.len = 0 || t.limbs.(t.len - 1) <> 0)
  &&
  let ok = ref true in
  for i = 0 to t.len - 1 do
    if t.limbs.(i) < 0 || t.limbs.(i) >= base then ok := false
  done;
  !ok
