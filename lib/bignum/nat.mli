(** Arbitrary-precision natural numbers.

    Values are immutable little-endian arrays of 30-bit limbs stored in
    native [int]s, so every intermediate product of two limbs plus carries
    fits comfortably in a 63-bit integer.  This module is the workhorse
    substrate for the Burger--Dybvig printer: the scaled numerator [r],
    denominator [s] and gap widths [m+]/[m-] of an IEEE double reach
    magnitudes around [2^1100], and the power table goes up to [10^325].

    All functions are total on naturals; subtraction raises on a negative
    result and division raises [Division_by_zero] on a zero divisor. *)

type t

(** {1 Constants and conversions} *)

val zero : t
val one : t
val two : t

val of_int : int -> t
(** [of_int n] converts a non-negative native integer.
    @raise Invalid_argument if [n < 0]. *)

val to_int_opt : t -> int option
(** [to_int_opt n] is [Some i] when [n] fits in a native [int]. *)

val to_int_exn : t -> int
(** Like {!to_int_opt} but raises [Failure] on overflow. *)

val of_int64_unsigned : int64 -> t
(** Interpret the bit pattern as an unsigned 64-bit integer. *)

val to_int64_unsigned_opt : t -> int64 option
(** [Some bits] when the value fits 64 unsigned bits. *)

val to_float : t -> float
(** Nearest-ish double approximation (correct to about 60 bits; values past
    the double range become [infinity]).  Used only for estimators. *)

val frexp : t -> float * int
(** [frexp n] is [(m, e)] with [n ≈ m *. 2. ** e] and [0.5 <= m < 1.]
    ([(0., 0)] for zero).  The fraction carries the top 60 bits of [n]. *)

(** {1 Predicates and comparison} *)

val is_zero : t -> bool
val is_even : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

(** {1 Arithmetic} *)

val add : t -> t -> t
val add_int : t -> int -> t

val sub : t -> t -> t
(** [sub a b] requires [a >= b].
    @raise Invalid_argument otherwise. *)

val succ : t -> t
val pred : t -> t
(** @raise Invalid_argument on [pred zero]. *)

val mul : t -> t -> t
(** Schoolbook below {!karatsuba_threshold} limbs, Karatsuba above. *)

val mul_int : t -> int -> t
(** [mul_int a m] with [0 <= m < 2^30]. *)

val mul_schoolbook : t -> t -> t
(** Quadratic multiplication, exposed for the bignum ablation bench. *)

val mul_karatsuba : t -> t -> t
(** Karatsuba multiplication regardless of size, for the ablation bench. *)

val karatsuba_threshold : int
(** Limb count at which {!mul} switches to Karatsuba. *)

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r] and [0 <= r < b]
    (Knuth Algorithm D).
    @raise Division_by_zero if [b] is zero. *)

val divmod_int : t -> int -> t * int
(** [divmod_int a b] with [0 < b < 2^30]. *)

val pow : t -> int -> t
(** [pow b k] is [b^k]; [k] must be non-negative. *)

val pow_int : int -> int -> t
(** [pow_int b k] is [(of_int b)^k]. *)

val gcd : t -> t -> t

val isqrt : t -> t * t
(** [isqrt n] is [(s, r)] with [s*s + r = n] and [s*s <= n < (s+1)*(s+1)]
    (integer square root with remainder, Newton's method). *)

(** {1 Bit operations} *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val bit_length : t -> int
(** Number of significant bits; [bit_length zero = 0]. *)

val test_bit : t -> int -> bool

(** {1 Radix conversion} *)

val of_string : string -> t
(** Decimal by default; accepts [0x]/[0o]/[0b] prefixes and [_] separators.
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string
(** Decimal representation. *)

val of_base_digits : base:int -> int array -> t
(** Digits most-significant first, each in [0, base); [base] in [2, 36]. *)

val to_base_digits : base:int -> t -> int array
(** Digits most-significant first; [zero] yields [[|0|]]. *)

val to_string_base : base:int -> t -> string
(** Textual form in any base 2-36, digits beyond 9 as lowercase
    letters. *)

val of_string_base : base:int -> string -> t
(** Inverse of {!to_string_base}; accepts uppercase letters and [_]
    separators.
    @raise Invalid_argument on malformed input. *)

val pp : Format.formatter -> t -> unit

(** {1 Kernel interface}

    For the in-place {!Scratch} workspaces, which share the 30-bit limb
    representation.  Not for general use. *)

val limbs : t -> int array
(** The backing little-endian limb array itself, {e not} a copy.  The
    caller must never mutate it — [Nat.t] values are shared. *)

val of_limbs_copy : int array -> int -> t
(** [of_limbs_copy a len] copies the first [len] limbs (each in
    [0, 2^30)) into a fresh normalized value.
    @raise Invalid_argument on a bad length. *)

(** {1 Internal checks} *)

val check_invariant : t -> bool
(** No high zero limb and every limb within [0, 2^30); used by tests. *)
