(** In-place bignum kernels: mutable fixed-capacity limb workspaces for
    the digit-generation hot path.

    The pure {!Nat} substrate allocates a fresh limb array for every
    result, which is the right call everywhere except the Figure-3
    digit loop, where 4–6 fresh arrays per emitted digit turn the
    printer into a minor-GC benchmark.  A {!t} owns a growable
    little-endian array of 30-bit limbs (the same representation as
    [Nat]) and every kernel below mutates it in place.  The backing
    array grows geometrically and never shrinks, so a workspace pooled
    across conversions reaches a steady state after which {e no kernel
    allocates}.

    Workspaces are not thread-safe; pool them per domain
    ([Domain.DLS]), as {!Dragon.Generate} does.

    Values past [length t] limbs are garbage — a workspace is not a
    [Nat] and never escapes; convert at the boundary with {!to_nat} /
    {!set_nat}. *)

type t

exception Quotient_overflow
(** Raised by {!div_digit} when the quotient does not fit a single
    30-bit limb, i.e. the caller broke the [r < 2^30 * s] precondition
    (in the printer: the scaling invariant).  Nothing has been mutated
    when this is raised; callers fall back to the pure [Nat] path. *)

val create : int -> t
(** [create capacity] is a zero-valued workspace with room for
    [capacity] limbs (at least 1). *)

val of_nat : Nat.t -> t
val set_nat : t -> Nat.t -> unit

val set_int : t -> int -> unit
(** Load a non-negative native int.
    @raise Invalid_argument if negative. *)

val to_nat : t -> Nat.t
(** A fresh immutable snapshot (allocates — boundary use only). *)

val copy_into : src:t -> dst:t -> unit
(** [dst := src]. *)

val is_zero : t -> bool

val length : t -> int
(** Significant limbs; 0 for zero. *)

val capacity : t -> int
(** Backing-array size in limbs — the pool high-water statistic. *)

val compare : t -> t -> int

(** {1 Destructive kernels}

    Each runs in one pass over the operand and allocates only when the
    backing array must grow. *)

val add_in_place : t -> t -> unit
(** [add_in_place a b] is [a := a + b].  Aliasing [a == b] is safe. *)

val sub_in_place : t -> t -> unit
(** [sub_in_place a b] is [a := a - b]; requires [a >= b].
    @raise Invalid_argument on a negative result (checked first;
    [a] is unchanged). *)

val mul_int_in_place : t -> int -> unit
(** [mul_int_in_place a m] is [a := a * m] with [0 <= m < 2^30].
    @raise Invalid_argument outside the limb range. *)

val shift_left_in_place : t -> int -> unit
(** [shift_left_in_place a k] is [a := a * 2^k], [k >= 0]. *)

(** {1 Invariant-divisor short division}

    The Figure-3 loop divides by the same denominator [s] on every
    iteration, and after correct scaling every quotient is a digit
    ([d < B]).  So the divisor is prepared {e once} per conversion —
    normalized so its top limb has the high bit set — and each
    iteration runs a single step of Knuth's Algorithm D: the quotient
    is estimated from the top two limbs of the dividend and corrected
    at most twice, with at most one add-back. *)

val normalize_divisor : t -> Nat.t -> int
(** [normalize_divisor d s] loads [s * 2^shift] into [d], where [shift]
    places the high bit of the top limb, and returns [shift].  The
    caller must scale every dividend by the same [2^shift] (the loop's
    termination tests are homogeneous in the state, so scaling the
    whole state is free).
    @raise Division_by_zero on a zero divisor. *)

val div_digit : t -> t -> int
(** [div_digit r d] with [d] prepared by {!normalize_divisor} returns
    [floor(r/d)] and leaves [r := r mod d].  The quotient must fit one
    limb ([r < 2^30 * d]).
    @raise Quotient_overflow otherwise, with [r] unchanged.
    @raise Division_by_zero on a zero divisor. *)

(** {1 Internal checks} *)

val check_invariant : t -> bool
(** Significant limbs within range and no high zero limb; tests only. *)
