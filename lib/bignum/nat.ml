(* Little-endian arrays of 30-bit limbs.  The invariant is that the highest
   limb is non-zero; the empty array represents zero.  Base 2^30 keeps every
   limb product below 2^60, leaving two bits of headroom for carries within
   a native 63-bit int. *)

type t = int array

let base_bits = 30
let base = 1 lsl base_bits
let mask = base - 1

let zero : t = [||]
let one : t = [| 1 |] [@@lint.domain_safe "write-once constant, never mutated"]
let two : t = [| 2 |] [@@lint.domain_safe "write-once constant, never mutated"]

let is_zero a = Array.length a = 0
let is_even a = Array.length a = 0 || a.(0) land 1 = 0

let check_invariant a =
  let len = Array.length a in
  (len = 0 || a.(len - 1) <> 0)
  && Array.for_all (fun limb -> 0 <= limb && limb < base) a

(* Strip high zero limbs of a freshly computed array. *)
let normalize (a : int array) : t =
  let len = ref (Array.length a) in
  while !len > 0 && a.(!len - 1) = 0 do
    decr len
  done;
  if !len = Array.length a then a else Array.sub a 0 !len

let of_int n =
  if n < 0 then invalid_arg "Nat.of_int: negative"
  else if n = 0 then zero
  else if n < base then [| n |]
  else if n < base * base then [| n land mask; n lsr base_bits |]
  else [| n land mask; (n lsr base_bits) land mask; n lsr (2 * base_bits) |]

let to_int_opt a =
  match Array.length a with
  | 0 -> Some 0
  | 1 -> Some a.(0)
  | 2 -> Some ((a.(1) lsl base_bits) lor a.(0))
  | 3 when a.(2) < 1 lsl (Sys.int_size - 1 - (2 * base_bits)) ->
    (* keep the result strictly within the non-negative int range *)
    Some ((a.(2) lsl (2 * base_bits)) lor (a.(1) lsl base_bits) lor a.(0))
  | _ -> None

let to_int_exn a =
  match to_int_opt a with
  | Some i -> i
  | None -> failwith "Nat.to_int_exn: overflow"

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else
    let rec loop i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Int.compare a.(i) b.(i)
      else loop (i - 1)
    in
    loop (la - 1)

let equal a b = compare a b = 0

let add a b =
  let la = Array.length a and lb = Array.length b in
  let lr = 1 + max la lb in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 2 do
    let t =
      (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry
    in
    r.(i) <- t land mask;
    carry := t lsr base_bits
  done;
  r.(lr - 1) <- !carry;
  normalize r

let add_int a n =
  if n < 0 then invalid_arg "Nat.add_int: negative" else add a (of_int n)

let succ a = add_int a 1

let sub a b =
  if compare a b < 0 then invalid_arg "Nat.sub: negative result";
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let t = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if t < 0 then begin
      r.(i) <- t + base;
      borrow := 1
    end
    else begin
      r.(i) <- t;
      borrow := 0
    end
  done;
  normalize r

let pred a =
  if is_zero a then invalid_arg "Nat.pred: zero" else sub a one

let mul_int a m =
  if m < 0 || m >= base then invalid_arg "Nat.mul_int: out of limb range";
  if m = 0 || is_zero a then zero
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let t = (a.(i) * m) + !carry in
      r.(i) <- t land mask;
      carry := t lsr base_bits
    done;
    r.(la) <- !carry;
    normalize r
  end

let mul_schoolbook a b =
  if is_zero a || is_zero b then zero
  else begin
    let la = Array.length a and lb = Array.length b in
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let t = (ai * b.(j)) + r.(i + j) + !carry in
          r.(i + j) <- t land mask;
          carry := t lsr base_bits
        done;
        (* Propagate the final carry; it cannot run past the array because
           the product of the remaining prefixes is bounded by base^(i+lb). *)
        let j = ref (i + lb) in
        let c = ref !carry in
        while !c <> 0 do
          let t = r.(!j) + !c in
          r.(!j) <- t land mask;
          c := t lsr base_bits;
          incr j
        done
      end
    done;
    normalize r
  end

let karatsuba_threshold = 72

(* Split [a] at limb [m] into (low, high). *)
let split_at a m =
  let la = Array.length a in
  if la <= m then (a, zero)
  else (normalize (Array.sub a 0 m), Array.sub a m (la - m))

(* r := r + (a << 30*limbs), in place; r is long enough by construction. *)
let add_into r a limbs =
  let la = Array.length a in
  let carry = ref 0 in
  for i = 0 to la - 1 do
    let t = r.(i + limbs) + a.(i) + !carry in
    r.(i + limbs) <- t land mask;
    carry := t lsr base_bits
  done;
  let j = ref (la + limbs) in
  while !carry <> 0 do
    let t = r.(!j) + !carry in
    r.(!j) <- t land mask;
    carry := t lsr base_bits;
    incr j
  done

let rec mul_karatsuba a b =
  let la = Array.length a and lb = Array.length b in
  if la < 2 || lb < 2 then mul_schoolbook a b
  else begin
    let m = (max la lb + 1) / 2 in
    let a0, a1 = split_at a m in
    let b0, b1 = split_at b m in
    let z0 = mul_dispatch a0 b0 in
    let z2 = mul_dispatch a1 b1 in
    let z1 = sub (mul_dispatch (add a0 a1) (add b0 b1)) (add z0 z2) in
    (* assemble z0 + (z1 << m) + (z2 << 2m) in one buffer; the partial
       sums never exceed the final product, which fits la + lb limbs *)
    let res = Array.make (la + lb + 1) 0 in
    add_into res z0 0;
    add_into res z1 m;
    add_into res z2 (2 * m);
    normalize res
  end

and mul_dispatch a b =
  if Array.length a < karatsuba_threshold || Array.length b < karatsuba_threshold
  then mul_schoolbook a b
  else mul_karatsuba a b

let mul = mul_dispatch

let shift_left a k =
  if k < 0 then invalid_arg "Nat.shift_left: negative"
  else if is_zero a || k = 0 then a
  else begin
    let limbs = k / base_bits and bits = k mod base_bits in
    let la = Array.length a in
    let r = Array.make (la + limbs + 1) 0 in
    if bits = 0 then Array.blit a 0 r limbs la
    else begin
      let carry = ref 0 in
      for i = 0 to la - 1 do
        let t = (a.(i) lsl bits) lor !carry in
        r.(i + limbs) <- t land mask;
        carry := t lsr base_bits
      done;
      r.(la + limbs) <- !carry
    end;
    normalize r
  end

let shift_right a k =
  if k < 0 then invalid_arg "Nat.shift_right: negative"
  else if is_zero a || k = 0 then a
  else begin
    let limbs = k / base_bits and bits = k mod base_bits in
    let la = Array.length a in
    if limbs >= la then zero
    else begin
      let lr = la - limbs in
      let r = Array.make lr 0 in
      if bits = 0 then Array.blit a limbs r 0 lr
      else begin
        for i = 0 to lr - 1 do
          let lo = a.(i + limbs) lsr bits in
          let hi =
            if i + limbs + 1 < la then
              (a.(i + limbs + 1) lsl (base_bits - bits)) land mask
            else 0
          in
          r.(i) <- lo lor hi
        done
      end;
      normalize r
    end
  end

let bits_of_limb limb =
  let rec loop n v = if v = 0 then n else loop (n + 1) (v lsr 1) in
  loop 0 limb

let bit_length a =
  let la = Array.length a in
  if la = 0 then 0 else ((la - 1) * base_bits) + bits_of_limb a.(la - 1)

let test_bit a i =
  if i < 0 then invalid_arg "Nat.test_bit: negative index";
  let limb = i / base_bits and bit = i mod base_bits in
  limb < Array.length a && (a.(limb) lsr bit) land 1 = 1

let of_int64_unsigned bits =
  let low30 n = Int64.to_int (Int64.logand n 0x3FFFFFFFL) in
  normalize
    [|
      low30 bits;
      low30 (Int64.shift_right_logical bits 30);
      Int64.to_int (Int64.shift_right_logical bits 60);
    |]

let to_int64_unsigned_opt a =
  if bit_length a > 64 then None
  else begin
    let limb i = if i < Array.length a then Int64.of_int a.(i) else 0L in
    Some
      (Int64.logor (limb 0)
         (Int64.logor
            (Int64.shift_left (limb 1) 30)
            (Int64.shift_left (limb 2) 60)))
  end


let divmod_int a b =
  if b <= 0 || b >= base then invalid_arg "Nat.divmod_int: out of limb range";
  let la = Array.length a in
  if la = 0 then (zero, 0)
  else begin
    let q = Array.make la 0 in
    let r = ref 0 in
    for i = la - 1 downto 0 do
      let t = (!r lsl base_bits) lor a.(i) in
      q.(i) <- t / b;
      r := t mod b
    done;
    (normalize q, !r)
  end

(* Knuth TAOCP vol. 2, Algorithm 4.3.1 D, on 30-bit limbs. *)
let divmod_knuth u v =
  let n = Array.length v in
  let shift = base_bits - bits_of_limb v.(n - 1) in
  let vn = shift_left v shift in
  assert (Array.length vn = n);
  let lu = Array.length u in
  (* Working copy of u with room for the virtual high limb. *)
  let un =
    let s = shift_left u shift in
    let a = Array.make (lu + 1) 0 in
    Array.blit s 0 a 0 (Array.length s);
    a
  in
  let m = lu - n in
  let q = Array.make (m + 1) 0 in
  for j = m downto 0 do
    let top = (un.(j + n) lsl base_bits) lor un.(j + n - 1) in
    let qhat = ref (top / vn.(n - 1)) in
    let rhat = ref (top mod vn.(n - 1)) in
    let adjust = ref true in
    while !adjust do
      if
        !qhat >= base
        || (n >= 2
            && !qhat * vn.(n - 2)
               > (!rhat lsl base_bits) lor un.(j + n - 2))
      then begin
        decr qhat;
        rhat := !rhat + vn.(n - 1);
        if !rhat >= base then adjust := false
      end
      else adjust := false
    done;
    (* Multiply-subtract qhat * vn from un[j .. j+n]. *)
    let borrow = ref 0 and carry = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * vn.(i)) + !carry in
      carry := p lsr base_bits;
      let t = un.(j + i) - (p land mask) - !borrow in
      if t < 0 then begin
        un.(j + i) <- t + base;
        borrow := 1
      end
      else begin
        un.(j + i) <- t;
        borrow := 0
      end
    done;
    let t = un.(j + n) - !carry - !borrow in
    if t < 0 then begin
      (* qhat was one too large: add the divisor back. *)
      un.(j + n) <- t + base;
      decr qhat;
      let c = ref 0 in
      for i = 0 to n - 1 do
        let s = un.(j + i) + vn.(i) + !c in
        un.(j + i) <- s land mask;
        c := s lsr base_bits
      done;
      un.(j + n) <- (un.(j + n) + !c) land mask
    end
    else un.(j + n) <- t;
    q.(j) <- !qhat
  done;
  let r = normalize (Array.sub un 0 n) in
  (normalize q, shift_right r shift)

let divmod a b =
  Robust.Faults.trip "nat.divmod";
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then begin
    let q, r = divmod_int a b.(0) in
    (q, of_int r)
  end
  else divmod_knuth a b

let rec pow b k =
  Robust.Faults.trip "nat.pow";
  if k < 0 then invalid_arg "Nat.pow: negative exponent"
  else if k = 0 then one
  else begin
    let half = pow b (k / 2) in
    let sq = mul half half in
    if k land 1 = 0 then sq else mul sq b
  end

(* Powers of two are shifts; powers of other bases go through binary
   exponentiation. *)
let pow_int b k =
  if b = 2 && k >= 0 then shift_left one k
  else if b = 4 && k >= 0 then shift_left one (2 * k)
  else if b = 8 && k >= 0 then shift_left one (3 * k)
  else if b = 16 && k >= 0 then shift_left one (4 * k)
  else if b = 32 && k >= 0 then shift_left one (5 * k)
  else pow (of_int b) k

let rec gcd a b = if is_zero b then a else gcd b (snd (divmod a b))

(* Integer square root by Newton's method.  The iteration
   x' = (x + n/x) / 2 decreases monotonically to floor(sqrt n) once it is
   at or above it, which the initial power-of-two guess guarantees. *)
let isqrt n =
  if is_zero n then (zero, zero)
  else begin
    let x = ref (shift_left one ((bit_length n + 1) / 2)) in
    let continue = ref true in
    while !continue do
      let q, _ = divmod n !x in
      let next = shift_right (add !x q) 1 in
      if compare next !x < 0 then x := next else continue := false
    done;
    (!x, sub n (mul !x !x))
  end

let frexp a =
  let nbits = bit_length a in
  if nbits = 0 then (0., 0)
  else begin
    let keep = min nbits 60 in
    let top = shift_right a (nbits - keep) in
    let m = float_of_int (to_int_exn top) in
    (ldexp m (-keep), nbits)
  end

let to_float a =
  let m, e = frexp a in
  ldexp m e

(* Radix conversion.  Work in the largest power of the radix that fits a
   limb so the expensive bignum divisions are amortised over several
   digits. *)

let digit_chunk radix =
  let rec loop count p =
    if p * radix < base then loop (count + 1) (p * radix) else (count, p)
  in
  loop 1 radix

let of_base_digits ~base:radix digits =
  if radix < 2 || radix > 36 then invalid_arg "Nat.of_base_digits: base";
  let chunk_len, chunk_pow = digit_chunk radix in
  let acc = ref zero in
  let pending = ref 0 and pending_len = ref 0 in
  let flush () =
    if !pending_len > 0 then begin
      let scale = ref 1 in
      for _ = 1 to !pending_len do
        scale := !scale * radix
      done;
      acc := add_int (mul_int !acc !scale) !pending;
      pending := 0;
      pending_len := 0
    end
  in
  Array.iter
    (fun d ->
      if d < 0 || d >= radix then invalid_arg "Nat.of_base_digits: digit";
      pending := (!pending * radix) + d;
      incr pending_len;
      if !pending_len = chunk_len then begin
        acc := add_int (mul_int !acc chunk_pow) !pending;
        pending := 0;
        pending_len := 0
      end)
    digits;
  flush ();
  !acc

let to_base_digits ~base:radix a =
  if radix < 2 || radix > 36 then invalid_arg "Nat.to_base_digits: base";
  if is_zero a then [| 0 |]
  else begin
    let chunk_len, chunk_pow = digit_chunk radix in
    let chunks = ref [] in
    let rest = ref a in
    while not (is_zero !rest) do
      let q, r = divmod_int !rest chunk_pow in
      chunks := r :: !chunks;
      rest := q
    done;
    match !chunks with
    | [] -> assert false
    | first :: others ->
      let buf = ref [] in
      let push_chunk ~pad c =
        let digits = Array.make chunk_len 0 in
        let v = ref c in
        for i = chunk_len - 1 downto 0 do
          digits.(i) <- !v mod radix;
          v := !v / radix
        done;
        let start =
          if pad then 0
          else begin
            let s = ref 0 in
            while !s < chunk_len - 1 && digits.(!s) = 0 do
              incr s
            done;
            !s
          end
        in
        for i = chunk_len - 1 downto start do
          buf := digits.(i) :: !buf
        done
      in
      List.iter (push_chunk ~pad:true) (List.rev others);
      push_chunk ~pad:false first;
      Array.of_list !buf
  end

let digit_char d = "0123456789abcdefghijklmnopqrstuvwxyz".[d]

let to_string_base ~base:radix a =
  let digits = to_base_digits ~base:radix a in
  String.init (Array.length digits) (fun i -> digit_char digits.(i))

let digit_value c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'z' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'Z' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Nat.of_string: bad digit"

let to_string a = to_string_base ~base:10 a

let of_string_base ~base:radix s =
  if String.length s = 0 then invalid_arg "Nat.of_string_base: empty";
  let digits = ref [] in
  String.iter
    (fun c ->
      if c <> '_' then begin
        let d = digit_value c in
        if d >= radix then invalid_arg "Nat.of_string_base: digit out of range";
        digits := d :: !digits
      end)
    s;
  if !digits = [] then invalid_arg "Nat.of_string_base: no digits";
  of_base_digits ~base:radix (Array.of_list (List.rev !digits))

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Nat.of_string: empty";
  let radix, start =
    if len >= 2 && s.[0] = '0' then
      match s.[1] with
      | 'x' | 'X' -> (16, 2)
      | 'o' | 'O' -> (8, 2)
      | 'b' | 'B' -> (2, 2)
      | _ -> (10, 0)
    else (10, 0)
  in
  if start >= len then invalid_arg "Nat.of_string: empty after prefix";
  let digits = ref [] in
  for i = len - 1 downto start do
    if s.[i] <> '_' then begin
      let d = digit_value s.[i] in
      if d >= radix then invalid_arg "Nat.of_string: digit out of range";
      digits := d :: !digits
    end
  done;
  if !digits = [] then invalid_arg "Nat.of_string: no digits";
  of_base_digits ~base:radix (Array.of_list !digits)

let pp fmt a = Format.pp_print_string fmt (to_string a)

(* Kernel interface: Scratch workspaces share the limb representation
   and copy limbs across the boundary without re-encoding. *)

let limbs (a : t) : int array = a

let of_limbs_copy a len =
  if len < 0 || len > Array.length a then
    invalid_arg "Nat.of_limbs_copy: bad length";
  normalize (Array.sub a 0 len)
