(** Structured errors for the conversion pipeline.

    Every fallible public entry point of the reader, the printer and the
    fixed-format converter returns [('a, t) result] with one of four
    variants, so callers can react to the {e class} of failure (retry,
    reject, alert) without parsing prose:

    - {!Syntax}: the input text is not a number in the accepted grammar;
    - {!Range}: a request parameter is outside its legal domain (base not
      in 2..36, a non-positive digit count, ...);
    - {!Budget}: the request is well-formed but would exceed a resource
      cap from {!Budget} (input length, exponent magnitude, bignum size,
      emitted digits) — the defense against [1e999999999]-style inputs;
    - {!Internal}: an invariant failed or a fault was injected
      ({!Faults}); these indicate a bug (or a test), never user error.

    The exception {!E} is the {e internal} carrier: deep layers (bignum,
    scaling, digit loops) raise it and the public boundaries convert it
    back to [Error] with {!catch}.  No exception, [E] included, escapes a
    [result]-returning API. *)

type t =
  | Syntax of { input : string; reason : string; pos : int }
      (** [input] is truncated to a bounded prefix for error hygiene;
          [pos] is a byte offset into the original string (or [-1]). *)
  | Range of { what : string; detail : string }
  | Budget of { what : string; limit : int; got : int }
  | Internal of { where : string; reason : string }

exception E of t

val syntax : ?pos:int -> input:string -> string -> t
(** Builds {!Syntax}, truncating [input] to at most 60 bytes. *)

val range : what:string -> string -> t
val budget : what:string -> limit:int -> got:int -> t
val internal : where:string -> string -> t

val raise_ : t -> 'a
(** [raise_ e] is [raise (E e)]. *)

val catch : (unit -> 'a) -> ('a, t) result
(** Runs the thunk; [E e] becomes [Error e] and any other exception
    ([Invalid_argument], [Failure], [Stack_overflow], ...) becomes
    [Error (Internal _)].  This is the boundary guard every public
    conversion entry point runs under. *)

val in_guarded_region : unit -> bool
(** True while execution is inside the dynamic extent of a {!catch}.
    {!Faults.trip} uses this to confine injected failures to code that
    runs under a boundary guard. *)

val category : t -> string
(** ["syntax"], ["range"], ["budget"] or ["internal"]. *)

val to_string : t -> string
(** One-line rendering, prefixed with the category. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
