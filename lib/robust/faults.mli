(** Fault injection: prove that a failure deep in the substrate surfaces
    at the public API as a structured [Internal] error rather than as an
    escaping exception or a wrong answer.

    Named points in the bignum kernel and the scaling layer call
    {!trip}; when the point is {e armed}, [trip] raises [Error.E
    (Internal _)], which the boundary guards ({!Error.catch}) turn into
    [Error].  Disarmed points cost one atomic load and branch.

    A point can be armed {e deterministically} (probability 1, the
    default: every guarded call fails), {e transiently} with a
    probability in [0,1] — each call draws from a domain-local generator
    and fails with that probability, which is what chaos tests use to
    inject a realistic transient failure rate under the service layer's
    retry machinery — or on a {e replayable schedule} ([At_call k]: the
    fault fires exactly on the k-th consult of the point), which pins a
    chaos failure to a reproducible request without any RNG state.
    Every injected failure increments a per-point atomic counter
    ({!trip_count}).

    Arm programmatically ({!arm}/{!arm_at}/{!with_fault}) from tests, or
    via the environment variable [BDPRINT_FAULTS], read once at startup
    — which lets end-to-end tests exercise the full binary.  The
    variable is a comma-separated list of entries, each [name]
    (deterministic), [name:probability] (transient, e.g.
    [BDPRINT_FAULTS=nat.divmod:0.01,scaling.scale]) or [name@req=k]
    (scheduled, e.g. [net.partial-write@req=500]).  Entries naming
    unknown points or carrying malformed probabilities/schedules are
    reported once on stderr at startup instead of being silently
    ignored.

    Probabilistic draws are seeded from [BDPRINT_FAULTS_SEED] (legacy
    alias [BDPRINT_FAULT_SEED]); chaos harnesses print {!seed} so any
    failing run can be replayed exactly, and {!spec_string} renders the
    armed set back into the grammar for logs and artifacts. *)

val pipeline_points : string list
(** The raising points inside the conversion pipeline — ["nat.divmod"],
    ["nat.pow"], ["scaling.power"], ["scaling.scale"] — instrumented
    with {!trip}. *)

val net_points : string list
(** The network/service fault points — ["service.worker-kill"],
    ["service.worker-wedge"], ["net.slow-client"], ["net.partial-write"],
    ["net.malformed-frame"], ["net.daemon-restart"] — consumed through
    {!fires}: the call site enacts the fault (kills or wedges a worker
    domain, stalls or splits a write, corrupts a frame, restarts a
    daemon) instead of raising a structured error. *)

val points : string list
(** Every instrumented point: {!pipeline_points} followed by
    {!net_points}. *)

(** How an armed point decides to fire. *)
type schedule =
  | Probability of float
      (** each consult fires independently with this probability (from
          the domain-local seeded generator); [1.0] is deterministic *)
  | At_call of int
      (** fires exactly on the k-th consult of the point (counted
          atomically across all domains since process start or the last
          {!reset_call_counts}) — fully replayable *)

val arm : ?probability:float -> string -> unit
(** Arms a point.  [probability] defaults to [1.0] (deterministic);
    values below 1 make the point transient: each guarded call trips
    independently with that probability.  Re-arming replaces the
    point's previous schedule.  Arming a name not in {!points} arms
    nothing and warns once per distinct name (see {!unknown_points}). *)

val arm_at : call:int -> string -> unit
(** Arms a point on the [At_call] schedule: it fires exactly when its
    consult counter reaches [call] (1-based).  [call < 1] is rejected
    with the same once-per-name warning as an unknown point. *)

val disarm : string -> unit
val disarm_all : unit -> unit

val armed : string -> bool
(** True if the point is armed with any schedule. *)

val any_armed : unit -> bool
(** True if {e any} point is armed — a single atomic load, cheap enough
    to consult on every conversion.  Fast paths that cannot reproduce
    the reference pipeline's trip sites byte-for-byte use this to stand
    aside while fault injection is active, so differential chaos runs
    always exercise the instrumented kernels. *)

val probability : string -> float option
(** The armed probability of a point, or [None] if disarmed or armed
    with an [At_call] schedule. *)

val schedule_of : string -> schedule option
(** The full armed schedule of a point, or [None] if disarmed. *)

val spec_string : unit -> string
(** The armed set rendered in the [BDPRINT_FAULTS] grammar (e.g.
    ["nat.divmod:0.01,net.partial-write@req=500"]), so a chaos run can
    log — or upload as an artifact — the exact schedule to replay. *)

val trip : string -> unit
(** Called from the instrumented sites.
    @raise Error.E with an [Internal] payload when the point is armed
    (and the per-call draw or schedule fires) {e and} execution is
    inside an {!Error.catch} region (so startup computations and
    deliberately exception-raising [_exn] entry points are not
    disrupted). *)

val fires : string -> bool
(** Probe form of {!trip} for network/service fault points: reports
    whether the (armed, schedule-drawn) fault fires on this call —
    incrementing the point's trip counter when it does — and lets the
    call site enact the failure itself rather than raising.  Unlike
    {!trip} it does not require a guarded region: the sites that consult
    it (socket writers, frame encoders, the worker-domain kill switch)
    own their failure handling. *)

val with_fault : ?probability:float -> string -> (unit -> 'a) -> 'a
(** Runs the thunk with the point armed, disarming it afterwards (also
    on exception). *)

(** {2 Trip counters} *)

val trip_count : string -> int
(** Number of injected failures at the point since the last reset
    (summed across all domains). *)

val trip_counts : unit -> (string * int) list
(** Every instrumented point with its trip count, in {!points} order.
    The same counts are exported to the telemetry registry as
    [bdprint_fault_trips_total{point=...}], so chaos runs can assert —
    from a [--metrics] snapshot — that injection actually fired. *)

val total_trips : unit -> int
val reset_trip_counts : unit -> unit

val call_count : string -> int
(** Number of times the point has been consulted (armed with any
    schedule; disarmed consults are not counted).  The counter that
    [At_call] schedules key on. *)

val reset_call_counts : unit -> unit
(** Resets every consult counter, re-anchoring [At_call] schedules —
    what a test does between chaos rounds to replay a schedule. *)

val unknown_points : unit -> string list
(** Distinct unknown (or malformed) fault entries seen so far, in first-
    seen order.  Each warns on stderr exactly once per process — however
    many times it recurs across spec parsing and programmatic arming —
    and the distinct-name count is exported to the registry as
    [bdprint_faults_unknown_points]. *)

(** {2 Seeding} *)

val seed : int
(** The seed of the per-domain fault generators, from
    [BDPRINT_FAULTS_SEED] (or the legacy [BDPRINT_FAULT_SEED]; default
    [0x6bd]).  Chaos harnesses fold this into their own corpus
    generators and print it, so one integer replays the whole run. *)

(** {2 Specification parsing} *)

val parse_spec : string -> (string * schedule) list * string list
(** [parse_spec s] parses a [BDPRINT_FAULTS]-style specification into
    [(armings, rejected)]: the list of [(point, schedule)] pairs to
    arm, and the entries that name unknown points or carry malformed
    probabilities or schedules (empty entries are skipped).  Pure —
    does not arm anything; the startup hook arms the valid entries and
    warns once on stderr about the rejected ones. *)
