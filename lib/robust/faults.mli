(** Fault injection: prove that a failure deep in the substrate surfaces
    at the public API as a structured [Internal] error rather than as an
    escaping exception or a wrong answer.

    Named points in the bignum kernel and the scaling layer call
    {!trip}; when the point is {e armed}, [trip] raises [Error.E
    (Internal _)], which the boundary guards ({!Error.catch}) turn into
    [Error].  Disarmed points cost one mutable-load-and-branch.

    Arm programmatically ({!arm}/{!with_fault}) from tests, or via the
    environment variable [BDPRINT_FAULTS], a comma-separated list of
    point names read once at startup — which lets end-to-end tests
    exercise the full binary. *)

val points : string list
(** The instrumented points: ["nat.divmod"], ["nat.pow"],
    ["scaling.power"], ["scaling.scale"]. *)

val arm : string -> unit
val disarm : string -> unit
val disarm_all : unit -> unit

val armed : string -> bool

val trip : string -> unit
(** Called from the instrumented sites.
    @raise Error.E with an [Internal] payload when the point is armed
    {e and} execution is inside an {!Error.catch} region (so startup
    computations and deliberately exception-raising [_exn] entry points
    are not disrupted). *)

val with_fault : string -> (unit -> 'a) -> 'a
(** Runs the thunk with the point armed, disarming it afterwards (also
    on exception). *)
