type t = {
  max_input_length : int;
  max_exponent : int;
  max_output_digits : int;
  max_bignum_bits : int;
}

let default =
  {
    max_input_length = 65_536;
    max_exponent = 100_000;
    max_output_digits = 20_000;
    max_bignum_bits = 2_000_000;
  }

let unlimited =
  {
    max_input_length = max_int;
    max_exponent = max_int;
    max_output_digits = max_int;
    max_bignum_bits = max_int;
  }

let current = ref default
let get () = !current
let set b = current := b

let with_budget b f =
  let saved = !current in
  current := b;
  Fun.protect ~finally:(fun () -> current := saved) f

let check what limit got =
  if got > limit then Error.raise_ (Error.budget ~what ~limit ~got)

let check_input_length n = check "input length" !current.max_input_length n
let check_exponent n = check "scale exponent" !current.max_exponent (abs n)
let check_output_digits n = check "output digits" !current.max_output_digits n
let check_bignum_bits n = check "bignum bits" !current.max_bignum_bits n
