type t = {
  max_input_length : int;
  max_exponent : int;
  max_output_digits : int;
  max_bignum_bits : int;
}

let default =
  {
    max_input_length = 65_536;
    max_exponent = 100_000;
    max_output_digits = 20_000;
    max_bignum_bits = 2_000_000;
  }

let unlimited =
  {
    max_input_length = max_int;
    max_exponent = max_int;
    max_output_digits = max_int;
    max_bignum_bits = max_int;
  }

type deadline = { expires_at : float; started_at : float; grant_ms : int }

(* The ambient state is domain-local: every worker domain of the service
   layer carries its own budget and per-request deadline, so concurrent
   requests cannot clobber each other's caps. *)
type slot = { mutable budget : t; mutable deadline : deadline option }
[@@lint.domain_safe "one slot per domain via Domain.DLS"]

let slot = Domain.DLS.new_key (fun () -> { budget = default; deadline = None })

let get () = (Domain.DLS.get slot).budget
let set b = (Domain.DLS.get slot).budget <- b

let with_budget b f =
  let s = Domain.DLS.get slot in
  let saved = s.budget in
  s.budget <- b;
  Fun.protect ~finally:(fun () -> s.budget <- saved) f

let now () = Unix.gettimeofday ()

let deadline_after ~ms =
  let t = now () in
  { expires_at = t +. (float_of_int ms /. 1000.); started_at = t; grant_ms = ms }

let set_deadline d = (Domain.DLS.get slot).deadline <- d
let get_deadline () = (Domain.DLS.get slot).deadline

let deadline_what = "deadline-ms"

let expired d = now () >= d.expires_at

let deadline_error d =
  let elapsed_ms =
    max 1 (int_of_float (ceil ((now () -. d.started_at) *. 1000.)))
  in
  Error.budget ~what:deadline_what ~limit:d.grant_ms ~got:elapsed_ms
[@@lint.alloc_ok
  "cold path: runs once, to build the structured error it raises with"]

let check_deadline () =
  match (Domain.DLS.get slot).deadline with
  | None -> ()
  | Some d -> if expired d then Error.raise_ (deadline_error d)

let with_deadline ~ms f =
  let s = Domain.DLS.get slot in
  let saved = s.deadline in
  s.deadline <- Some (deadline_after ~ms);
  Fun.protect ~finally:(fun () -> s.deadline <- saved) f

let check what limit got =
  if got > limit then Error.raise_ (Error.budget ~what ~limit ~got)

(* Budget-consumption histograms: how much of each capped resource the
   pipeline actually asks for, recorded at the check sites (telemetry
   must see the request even when the check then rejects it).  Gated on
   the global telemetry switch — disabled cost is one atomic load and a
   branch on top of the existing check.

   [output digits] is the exception: its check runs once per digit-loop
   iteration with a monotonically growing count, so observing every
   call would record each conversion once per digit.  The digit loops
   instead report their final count once through
   {!observe_output_digits}. *)

let h_input_length =
  Telemetry.Metrics.histogram
    ~help:"Input text length in bytes, per parse request."
    ~bounds:[| 8; 16; 24; 32; 48; 64; 128; 256; 1024; 4096; 65536 |]
    "bdprint_budget_input_length_bytes"

let h_exponent =
  Telemetry.Metrics.histogram
    ~help:"Magnitude of decimal scale exponents turned into powers."
    ~bounds:[| 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024; 10_000; 100_000 |]
    "bdprint_budget_scale_exponent"

let h_bignum_bits =
  Telemetry.Metrics.histogram
    ~help:"Bit size of constructed bignum powers and scaled operands."
    ~bounds:
      [| 64; 128; 256; 512; 1024; 2048; 4096; 16_384; 65_536; 1_048_576 |]
    "bdprint_budget_bignum_bits"

let h_output_digits =
  Telemetry.Metrics.histogram
    ~help:"Digits emitted per conversion (digit-loop iterations)."
    ~bounds:[| 1; 2; 4; 6; 8; 10; 12; 14; 16; 17; 18; 20; 24; 32; 64; 256;
               1024; 8192 |]
    "bdprint_budget_output_digits"

let observe_output_digits n =
  if Telemetry.Metrics.enabled () then
    Telemetry.Metrics.observe h_output_digits n

(* Every budget check site doubles as a cooperative deadline check: the
   digit loops, the scaling layer and the reader already call these at
   each unit of work, which is exactly the granularity a per-request
   deadline needs.  With no deadline set the extra cost is one
   domain-local load and a branch. *)
let check_input_length n =
  check_deadline ();
  if Telemetry.Metrics.enabled () then Telemetry.Metrics.observe h_input_length n;
  check "input length" (get ()).max_input_length n

let check_exponent n =
  check_deadline ();
  if Telemetry.Metrics.enabled () then Telemetry.Metrics.observe h_exponent (abs n);
  check "scale exponent" (get ()).max_exponent (abs n)

let check_output_digits n =
  check_deadline ();
  check "output digits" (get ()).max_output_digits n

let check_bignum_bits n =
  check_deadline ();
  if Telemetry.Metrics.enabled () then Telemetry.Metrics.observe h_bignum_bits n;
  check "bignum bits" (get ()).max_bignum_bits n
