let digits st n =
  String.init n (fun _ -> Char.chr (Char.code '0' + Random.State.int st 10))

let sign st = match Random.State.int st 3 with 0 -> "-" | 1 -> "+" | _ -> ""

let plain st =
  let whole = digits st (1 + Random.State.int st 20) in
  let frac =
    if Random.State.bool st then "." ^ digits st (1 + Random.State.int st 20)
    else ""
  in
  let exp =
    if Random.State.bool st then
      Printf.sprintf "e%s%d" (sign st) (Random.State.int st 330)
    else ""
  in
  sign st ^ whole ^ frac ^ exp

let extreme st =
  match Random.State.int st 6 with
  | 0 ->
    (* exponent far beyond any format: must fast-reject to 0/inf *)
    Printf.sprintf "%s%se%s%d" (sign st)
      (digits st (1 + Random.State.int st 8))
      (if Random.State.bool st then "-" else "")
      (100_000 + Random.State.full_int st 2_000_000_000)
  | 1 ->
    (* straddle the binary64 overflow cliff *)
    Printf.sprintf "%s%d.%se%d" (sign st)
      (1 + Random.State.int st 9)
      (digits st 17)
      (304 + Random.State.int st 10)
  | 2 ->
    (* subnormal territory and the underflow cliff *)
    Printf.sprintf "%s%d.%se-%d" (sign st)
      (1 + Random.State.int st 9)
      (digits st 17)
      (300 + Random.State.int st 30)
  | 3 ->
    (* long zero runs around a few significant digits *)
    let zeros = String.make (1 + Random.State.int st 400) '0' in
    if Random.State.bool st then
      sign st ^ digits st 3 ^ zeros ^ "." ^ zeros
    else sign st ^ "0." ^ zeros ^ digits st 3
  | 4 ->
    (* binary16/32 cliffs: 65504 +/- eps, 1e38-ish *)
    Printf.sprintf "%s655%d.%s" (sign st) (Random.State.int st 100) (digits st 6)
  | _ ->
    Printf.sprintf "%s%s.%se%s%d" (sign st) (digits st 2) (digits st 40)
      (if Random.State.bool st then "-" else "")
      (Random.State.int st 5_000)

let long_digits st =
  let n = 200 + Random.State.int st 3_000 in
  let body =
    if Random.State.int st 3 = 0 then
      (* one significant digit then a wall of zeros: 1 followed by 10k
         zeros is the classic fast-reject regression *)
      digits st 1 ^ String.make n '0'
    else digits st n
  in
  let exp =
    if Random.State.bool st then
      Printf.sprintf "e%s%d" (sign st) (Random.State.int st 4_000)
    else ""
  in
  if Random.State.bool st then sign st ^ body ^ exp
  else sign st ^ "0." ^ body ^ exp

let garbage st =
  match Random.State.int st 5 with
  | 0 -> String.init (Random.State.int st 30) (fun _ -> Char.chr (Random.State.int st 256))
  | 1 ->
    (* near-miss syntax: doubled operators, dangling exponents *)
    List.nth
      [ ""; "-"; "+"; "."; ".."; "1..2"; "--1"; "1e"; "1e+"; "e5"; "1.5x";
        "0x"; "inf inity"; "na n"; "1_"; "_1"; "1e_5"; "+-1"; "1.2.3" ]
      (Random.State.int st 19)
  | 2 ->
    (* valid prefix + junk suffix *)
    plain st ^ String.make 1 (Char.chr (33 + Random.State.int st 90))
  | 3 ->
    (* whitespace variants: the strict grammar rejects these *)
    " " ^ plain st ^ "\t"
  | _ ->
    String.init (1 + Random.State.int st 20) (fun _ ->
        List.nth [ '0'; '9'; '.'; 'e'; '-'; '+'; '_'; 'x'; '#' ]
          (Random.State.int st 9))

let any st =
  let r = Random.State.int st 100 in
  if r < 60 then plain st
  else if r < 75 then extreme st
  else if r < 85 then long_digits st
  else garbage st

let nasty =
  [
    "1e999999999";
    "-1e-999999999";
    "1e2147483647";
    "1e-2147483648";
    "1e99999999999999999999";
    "-1e-99999999999999999999";
    "9.9999999999999999999e308";
    "1.7976931348623157e308";
    "1.7976931348623159e308";
    "4.9e-324";
    "5e-324";
    "2.4e-324";
    "2.5e-324";
    "2.2250738585072011e-308" (* the famous slow strtod value *);
    "2.2250738585072014e-308";
    "1e23";
    "9007199254740993";
    "1.00000000000000011102230246251565404236316680908203125";
    "0.1";
    "-0";
    "0e999999999";
    "-0e-999999999";
    "1" ^ String.make 10_000 '0';
    "0." ^ String.make 10_000 '0' ^ "1";
    String.make 800 '9';
    "65504"; "65519.99"; "65520" (* binary16 cliff *);
    "3.4028235e38"; "3.4028236e38" (* binary32 cliff *);
  ]
