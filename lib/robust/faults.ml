let pipeline_points = [ "nat.divmod"; "nat.pow"; "scaling.power"; "scaling.scale" ]

(* Network/service-layer points are consumed through {!fires}, which
   reports the draw to the call site instead of raising, because a
   network fault is an *effect* (a stalled write, a corrupted frame, a
   dead worker domain), not a structured pipeline error. *)
let net_points =
  [
    "service.worker-kill";
    "service.worker-wedge";
    "net.slow-client";
    "net.partial-write";
    "net.malformed-frame";
    "net.daemon-restart";
  ]

let points = pipeline_points @ net_points

(* A point fires either probabilistically (each consult draws
   independently) or on a fixed schedule: [At_call k] fires exactly on
   the k-th consult of that point since process start (or the last
   {!reset_call_counts}), making a chaos failure replayable without any
   RNG state — the schedule IS the reproduction recipe. *)
type schedule = Probability of float | At_call of int

type arming = { point : string; schedule : schedule }

(* The armed set is tiny and read from every domain on every trip-site
   call; an atomic holding an immutable list keeps the disarmed-path
   cost of [trip] to a single load and branch while staying safe under
   concurrent arm/disarm from tests. *)
let armed_points : arming list Atomic.t = Atomic.make []
let armed_count = Atomic.make 0

let sync set =
  Atomic.set armed_points set;
  Atomic.set armed_count (List.length set)

(* Unknown-point reporting: each unknown name warns exactly once per
   process however many times it is re-encountered (startup spec
   parsing, repeated [arm] calls from tests), and the distinct-name
   total is exported so a metrics snapshot can prove that a typo'd
   BDPRINT_FAULTS entry was noticed rather than silently ignored. *)
let m_unknown_points =
  Telemetry.Metrics.counter
    ~help:"Distinct unknown fault-point names rejected from BDPRINT_FAULTS \
           or programmatic arming (each name counted once)."
    "bdprint_faults_unknown_points"

let warned_unknown : string list Atomic.t = Atomic.make []

let warn_unknown entry =
  let rec register () =
    let seen = Atomic.get warned_unknown in
    if List.mem entry seen then false
    else if Atomic.compare_and_set warned_unknown seen (entry :: seen) then true
    else register ()
  in
  if register () then begin
    Telemetry.Metrics.incr m_unknown_points;
    Printf.eprintf
      "bdprint: warning: unknown or malformed fault entry %S ignored (known \
       points: %s)\n\
       %!"
      entry
      (String.concat ", " points)
  end

let unknown_points () = List.rev (Atomic.get warned_unknown)

let set_schedule name schedule =
  if not (List.mem name points) then warn_unknown name
  else begin
    let rest =
      List.filter
        (fun a -> not (String.equal a.point name))
        (Atomic.get armed_points)
    in
    sync ({ point = name; schedule } :: rest)
  end

let arm ?(probability = 1.0) name = set_schedule name (Probability probability)

let arm_at ~call name =
  if call < 1 then warn_unknown (Printf.sprintf "%s@req=%d" name call)
  else set_schedule name (At_call call)

let disarm name =
  sync
    (List.filter (fun a -> not (String.equal a.point name)) (Atomic.get armed_points))

let disarm_all () = sync []

let armed name =
  List.exists (fun a -> String.equal a.point name) (Atomic.get armed_points)

let any_armed () = Atomic.get armed_count > 0

let probability name =
  List.find_map
    (fun a ->
      match a with
      | { point; schedule = Probability p } when String.equal point name ->
        Some p
      | _ -> None)
    (Atomic.get armed_points)

let schedule_of name =
  List.find_map
    (fun a -> if String.equal a.point name then Some a.schedule else None)
    (Atomic.get armed_points)

(* Render the armed set back into the BDPRINT_FAULTS grammar, so a
   chaos harness can log (or upload as an artifact) the exact schedule
   that produced a failure. *)
let spec_string () =
  Atomic.get armed_points
  |> List.rev_map (fun a ->
         match a.schedule with
         | Probability p when p >= 1.0 -> a.point
         | Probability p -> Printf.sprintf "%s:%g" a.point p
         | At_call k -> Printf.sprintf "%s@req=%d" a.point k)
  |> String.concat ","

(* Per-point trip counters, atomic so chaos tests can count injections
   across all worker domains.  They live in the telemetry registry
   (always-on: chaos runs must see them with or without --metrics), so
   a metrics snapshot can assert injection actually fired. *)
let counters =
  List.map
    (fun p ->
      ( p,
        Telemetry.Metrics.counter
          ~labels:[ ("point", p) ]
          ~help:"Injected-fault trips per instrumented point."
          "bdprint_fault_trips_total" ))
    points

let trip_count name =
  match List.assoc_opt name counters with
  | Some c -> Telemetry.Metrics.value c
  | None -> 0

let trip_counts () =
  List.map (fun (p, c) -> (p, Telemetry.Metrics.value c)) counters

let total_trips () =
  List.fold_left (fun acc (_, c) -> acc + Telemetry.Metrics.value c) 0 counters

let reset_trip_counts () =
  List.iter (fun (_, c) -> Telemetry.Metrics.reset_counter c) counters

(* Per-point consult counters drive the [At_call k] schedules: every
   {!trip}/{!fires} consult of a scheduled point increments its counter
   atomically, and the fault fires exactly when the counter reaches k.
   Unlike the RNG draws these are shared across domains, so a schedule
   replays identically as long as the request order it keys on does. *)
let call_counters = List.map (fun p -> (p, Atomic.make 0)) points

let call_count name =
  match List.assoc_opt name call_counters with
  | Some c -> Atomic.get c
  | None -> 0

let reset_call_counts () =
  List.iter (fun (_, c) -> Atomic.set c 0) call_counters

(* Probabilistic trips draw from a domain-local generator so worker
   domains never contend (or share a stream).  Seeding is deterministic
   per domain-spawn order; BDPRINT_FAULTS_SEED (or its legacy alias
   BDPRINT_FAULT_SEED) perturbs the whole run — chaos harnesses print
   it, so a failing run can be replayed exactly. *)
let seed =
  let parse s = match int_of_string_opt s with Some n -> Some n | None -> None in
  match
    ( Option.bind (Sys.getenv_opt "BDPRINT_FAULTS_SEED") parse,
      Option.bind (Sys.getenv_opt "BDPRINT_FAULT_SEED") parse )
  with
  | Some n, _ -> n
  | None, Some n -> n
  | None, None -> 0x6bd

let domain_seq = Atomic.make 0

let rng =
  Domain.DLS.new_key (fun () ->
      Random.State.make [| seed; Atomic.fetch_and_add domain_seq 1 |])

(* Decision shared by [trip] and [fires]: is the point armed, and does
   this consult's probability draw (or call-count schedule) fire? *)
let draw name =
  if Atomic.get armed_count = 0 then false
  else
    match
      List.find_opt
        (fun a -> String.equal a.point name)
        (Atomic.get armed_points)
    with
    | None -> false
    | Some { schedule = Probability p; _ } ->
      p >= 1.0 || Random.State.float (Domain.DLS.get rng) 1.0 < p
    | Some { schedule = At_call k; _ } -> (
      match List.assoc_opt name call_counters with
      | Some c -> 1 + Atomic.fetch_and_add c 1 = k
      | None -> false)
[@@lint.alloc_ok
  "the armed_count = 0 early exit is allocation-free; the closure and \
   random draw below it only run when fault points are armed (chaos runs)"]

let count_trip name =
  (match List.assoc_opt name counters with
  | Some c -> Telemetry.Metrics.incr c
  | None -> ());
  if Telemetry.Flight.enabled () then
    Telemetry.Flight.record ~kind:"fault-trip" name
[@@lint.alloc_ok "runs only when an armed fault point actually fires"]

(* Only fire under a boundary guard: the instrumented kernels also run
   during module initialisation of dependent libraries (precomputed
   constants), where there is no [catch] to absorb the failure and a
   trip would abort the program before [main]. *)
let trip name =
  if Error.in_guarded_region () && draw name then begin
    count_trip name;
    Error.raise_ (Error.internal ~where:name "injected fault")
  end

(* Network-layer points report the draw instead of raising: the call
   site performs the fault itself (stall a write, corrupt a frame, kill
   a worker domain), so there is no structured error to throw and no
   boundary guard to require. *)
let fires name =
  let fired = draw name in
  if fired then count_trip name;
  fired

let with_fault ?probability name f =
  arm ?probability name;
  Fun.protect ~finally:(fun () -> disarm name) f

(* BDPRINT_FAULTS grammar: comma-separated entries, each a bare point
   name (deterministic, probability 1), name:probability for transient
   faults, or name@req=k for a replayable schedule (fire exactly on the
   k-th consult of the point).  Unknown names, malformed probabilities
   and malformed schedules are collected rather than silently dropped. *)
let parse_spec spec =
  let entries =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let armed, bad =
    List.fold_left
      (fun (armed, bad) entry ->
        let name, sched =
          match (String.index_opt entry ':', String.index_opt entry '@') with
          | _, Some i ->
            let name = String.sub entry 0 i in
            let s = String.sub entry (i + 1) (String.length entry - i - 1) in
            ( name,
              if String.length s > 4 && String.sub s 0 4 = "req=" then
                match int_of_string_opt (String.sub s 4 (String.length s - 4)) with
                | Some k when k >= 1 -> Some (At_call k)
                | _ -> None
              else None )
          | Some i, None ->
            let name = String.sub entry 0 i in
            let p = String.sub entry (i + 1) (String.length entry - i - 1) in
            ( name,
              match float_of_string_opt p with
              | Some p when p >= 0.0 && p <= 1.0 -> Some (Probability p)
              | _ -> None )
          | None, None -> (entry, Some (Probability 1.0))
        in
        match sched with
        | None -> (armed, entry :: bad)
        | Some s ->
          if List.mem name points then ((name, s) :: armed, bad)
          else (armed, entry :: bad))
      ([], []) entries
  in
  (List.rev armed, List.rev bad)

let () =
  match Sys.getenv_opt "BDPRINT_FAULTS" with
  | None | Some "" -> ()
  | Some spec ->
    let to_arm, unknown = parse_spec spec in
    List.iter (fun (name, schedule) -> set_schedule name schedule) to_arm;
    List.iter warn_unknown unknown
