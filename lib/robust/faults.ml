let points = [ "nat.divmod"; "nat.pow"; "scaling.power"; "scaling.scale" ]

(* The armed set is tiny; a list plus a count keeps the disarmed-path
   cost of [trip] to a single load and branch. *)
let armed_points : string list ref = ref []
let armed_count = ref 0

let sync () = armed_count := List.length !armed_points

let arm name =
  if not (List.mem name !armed_points) then begin
    armed_points := name :: !armed_points;
    sync ()
  end

let disarm name =
  armed_points := List.filter (fun p -> not (String.equal p name)) !armed_points;
  sync ()

let disarm_all () =
  armed_points := [];
  sync ()

let armed name = !armed_count > 0 && List.mem name !armed_points

(* Only fire under a boundary guard: the instrumented kernels also run
   during module initialisation of dependent libraries (precomputed
   constants), where there is no [catch] to absorb the failure and a
   trip would abort the program before [main]. *)
let trip name =
  if !armed_count > 0 && List.mem name !armed_points && Error.in_guarded_region ()
  then Error.raise_ (Error.internal ~where:name "injected fault")

let with_fault name f =
  arm name;
  Fun.protect ~finally:(fun () -> disarm name) f

let () =
  match Sys.getenv_opt "BDPRINT_FAULTS" with
  | None | Some "" -> ()
  | Some spec -> List.iter arm (String.split_on_char ',' spec)
