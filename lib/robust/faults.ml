let pipeline_points = [ "nat.divmod"; "nat.pow"; "scaling.power"; "scaling.scale" ]

(* Network/service-layer points are consumed through {!fires}, which
   reports the draw to the call site instead of raising, because a
   network fault is an *effect* (a stalled write, a corrupted frame, a
   dead worker domain), not a structured pipeline error. *)
let net_points =
  [ "service.worker-kill"; "net.slow-client"; "net.partial-write"; "net.malformed-frame" ]

let points = pipeline_points @ net_points

type arming = { point : string; probability : float }

(* The armed set is tiny and read from every domain on every trip-site
   call; an atomic holding an immutable list keeps the disarmed-path
   cost of [trip] to a single load and branch while staying safe under
   concurrent arm/disarm from tests. *)
let armed_points : arming list Atomic.t = Atomic.make []
let armed_count = Atomic.make 0

let sync set =
  Atomic.set armed_points set;
  Atomic.set armed_count (List.length set)

(* Unknown-point reporting: each unknown name warns exactly once per
   process however many times it is re-encountered (startup spec
   parsing, repeated [arm] calls from tests), and the distinct-name
   total is exported so a metrics snapshot can prove that a typo'd
   BDPRINT_FAULTS entry was noticed rather than silently ignored. *)
let m_unknown_points =
  Telemetry.Metrics.counter
    ~help:"Distinct unknown fault-point names rejected from BDPRINT_FAULTS \
           or programmatic arming (each name counted once)."
    "bdprint_faults_unknown_points"

let warned_unknown : string list Atomic.t = Atomic.make []

let warn_unknown entry =
  let rec register () =
    let seen = Atomic.get warned_unknown in
    if List.mem entry seen then false
    else if Atomic.compare_and_set warned_unknown seen (entry :: seen) then true
    else register ()
  in
  if register () then begin
    Telemetry.Metrics.incr m_unknown_points;
    Printf.eprintf
      "bdprint: warning: unknown or malformed fault entry %S ignored (known \
       points: %s)\n\
       %!"
      entry
      (String.concat ", " points)
  end

let unknown_points () = List.rev (Atomic.get warned_unknown)

let arm ?(probability = 1.0) name =
  if not (List.mem name points) then warn_unknown name
  else begin
    let rest =
      List.filter
        (fun a -> not (String.equal a.point name))
        (Atomic.get armed_points)
    in
    sync ({ point = name; probability } :: rest)
  end

let disarm name =
  sync
    (List.filter (fun a -> not (String.equal a.point name)) (Atomic.get armed_points))

let disarm_all () = sync []

let armed name =
  List.exists (fun a -> String.equal a.point name) (Atomic.get armed_points)

let probability name =
  List.find_map
    (fun a -> if String.equal a.point name then Some a.probability else None)
    (Atomic.get armed_points)

(* Per-point trip counters, atomic so chaos tests can count injections
   across all worker domains.  They live in the telemetry registry
   (always-on: chaos runs must see them with or without --metrics), so
   a metrics snapshot can assert injection actually fired. *)
let counters =
  List.map
    (fun p ->
      ( p,
        Telemetry.Metrics.counter
          ~labels:[ ("point", p) ]
          ~help:"Injected-fault trips per instrumented point."
          "bdprint_fault_trips_total" ))
    points

let trip_count name =
  match List.assoc_opt name counters with
  | Some c -> Telemetry.Metrics.value c
  | None -> 0

let trip_counts () =
  List.map (fun (p, c) -> (p, Telemetry.Metrics.value c)) counters

let total_trips () =
  List.fold_left (fun acc (_, c) -> acc + Telemetry.Metrics.value c) 0 counters

let reset_trip_counts () =
  List.iter (fun (_, c) -> Telemetry.Metrics.reset_counter c) counters

(* Probabilistic trips draw from a domain-local generator so worker
   domains never contend (or share a stream).  Seeding is deterministic
   per domain-spawn order; BDPRINT_FAULT_SEED perturbs the whole run. *)
let base_seed =
  match Sys.getenv_opt "BDPRINT_FAULT_SEED" with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 0x6bd)
  | None -> 0x6bd

let domain_seq = Atomic.make 0

let rng =
  Domain.DLS.new_key (fun () ->
      Random.State.make [| base_seed; Atomic.fetch_and_add domain_seq 1 |])

(* Decision shared by [trip] and [fires]: is the point armed, and does
   this call's probability draw fire? *)
let draw name =
  if Atomic.get armed_count = 0 then false
  else
    match
      List.find_opt
        (fun a -> String.equal a.point name)
        (Atomic.get armed_points)
    with
    | None -> false
    | Some a ->
      a.probability >= 1.0
      || Random.State.float (Domain.DLS.get rng) 1.0 < a.probability

let count_trip name =
  match List.assoc_opt name counters with
  | Some c -> Telemetry.Metrics.incr c
  | None -> ()

(* Only fire under a boundary guard: the instrumented kernels also run
   during module initialisation of dependent libraries (precomputed
   constants), where there is no [catch] to absorb the failure and a
   trip would abort the program before [main]. *)
let trip name =
  if Error.in_guarded_region () && draw name then begin
    count_trip name;
    Error.raise_ (Error.internal ~where:name "injected fault")
  end

(* Network-layer points report the draw instead of raising: the call
   site performs the fault itself (stall a write, corrupt a frame, kill
   a worker domain), so there is no structured error to throw and no
   boundary guard to require. *)
let fires name =
  let fired = draw name in
  if fired then count_trip name;
  fired

let with_fault ?probability name f =
  arm ?probability name;
  Fun.protect ~finally:(fun () -> disarm name) f

(* BDPRINT_FAULTS grammar: comma-separated entries, each either a bare
   point name (deterministic, probability 1) or name:probability for
   transient faults.  Unknown names and malformed probabilities are
   collected rather than silently dropped. *)
let parse_spec spec =
  let entries =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let armed, bad =
    List.fold_left
      (fun (armed, bad) entry ->
        let name, prob =
          match String.index_opt entry ':' with
          | None -> (entry, Some 1.0)
          | Some i ->
            let name = String.sub entry 0 i in
            let p = String.sub entry (i + 1) (String.length entry - i - 1) in
            ( name,
              match float_of_string_opt p with
              | Some p when p >= 0.0 && p <= 1.0 -> Some p
              | _ -> None )
        in
        match prob with
        | None -> (armed, entry :: bad)
        | Some p ->
          if List.mem name points then ((name, p) :: armed, bad)
          else (armed, entry :: bad))
      ([], []) entries
  in
  (List.rev armed, List.rev bad)

let () =
  match Sys.getenv_opt "BDPRINT_FAULTS" with
  | None | Some "" -> ()
  | Some spec ->
    let to_arm, unknown = parse_spec spec in
    List.iter (fun (name, probability) -> arm ~probability name) to_arm;
    List.iter warn_unknown unknown
