(** Resource budgets: the caps that keep hostile input from turning the
    exact-arithmetic substrate into an OOM or a hang.

    The exact reader and the fixed-format converter are happy to build
    multi-megabyte bignums for inputs like [1e999999999] or
    [--places 1000000].  A budget bounds each dimension the pipeline can
    spend: input bytes, decimal-exponent magnitude, bignum size, emitted
    digits.  Checks raise {!Error.E} with a [Budget] payload; the public
    API boundaries convert that into [Error (Budget _)] via
    {!Error.catch}.

    The budget is ambient — and {e domain-local}, so every worker domain
    of the service layer carries its own caps — which lets the checks
    sit inside the digit loops without threading a parameter through
    every layer.  {!default} is permissive enough that no legitimate
    conversion in this repository comes near a cap.

    On top of the size caps, the same check sites enforce a cooperative
    per-request {e deadline}: when one is set ({!set_deadline} /
    {!with_deadline}), every [check_*] call first verifies that the
    wall clock has not passed it, and raises a [Budget] error with
    [what = ]{!deadline_what} if it has.  Because the digit loops call a
    check on every iteration, a request that has run out of time is cut
    off within one unit of work. *)

type t = {
  max_input_length : int;  (** bytes of input text accepted by parsers *)
  max_exponent : int;
      (** magnitude of a decimal (or other-base) scale exponent that may
          be turned into an actual bignum power *)
  max_output_digits : int;
      (** digits a single conversion may emit (also bounds the
          fixed-format position span and the digit-loop iterations) *)
  max_bignum_bits : int;
      (** bit size of any single constructed power/scaled operand *)
}

val default : t
(** 64 KiB of input, exponents to 100_000, 20_000 output digits, 2 Mbit
    bignums. *)

val unlimited : t
(** Every cap at [max_int]; for tests and offline experiments. *)

val get : unit -> t
val set : t -> unit

val with_budget : t -> (unit -> 'a) -> 'a
(** Runs the thunk under a temporary budget, restoring the previous one
    (also on exception). *)

(** {2 Deadlines} *)

type deadline = {
  expires_at : float;  (** absolute wall-clock time ([Unix.gettimeofday]) *)
  started_at : float;  (** when the grant was issued *)
  grant_ms : int;  (** the original allowance, for error reporting *)
}

val deadline_after : ms:int -> deadline
(** A deadline expiring [ms] milliseconds from now. *)

val expired : deadline -> bool

val set_deadline : deadline option -> unit
(** Installs (or clears, with [None]) the current domain's deadline. *)

val get_deadline : unit -> deadline option

val with_deadline : ms:int -> (unit -> 'a) -> 'a
(** Runs the thunk under a fresh [ms]-millisecond deadline, restoring
    the previous deadline state afterwards (also on exception). *)

val check_deadline : unit -> unit
(** Raises [Error.E (Budget { what = deadline_what; _ })] if the current
    domain's deadline has passed; a no-op when none is set.  Called
    automatically by every [check_*] function below. *)

val deadline_what : string
(** The [what] field of a deadline-exceeded [Budget] error:
    ["deadline-ms"].  [limit] is the granted allowance in milliseconds
    and [got] the elapsed time. *)

val deadline_error : deadline -> Error.t
(** The structured timeout error for an expired deadline (used by the
    service layer's pre-flight check; [check_deadline] raises it). *)

(** Each check raises [Error.E (Budget _)] when the value exceeds the
    current budget, and returns unit otherwise. *)

val check_input_length : int -> unit
val check_exponent : int -> unit
val check_output_digits : int -> unit
val check_bignum_bits : int -> unit

(** {2 Telemetry} *)

val observe_output_digits : int -> unit
(** Records one conversion's final emitted-digit count into the
    [bdprint_budget_output_digits] histogram (a no-op while telemetry
    is disabled).  Called once per conversion by the digit loops —
    unlike the other budget dimensions, which are observed directly at
    their [check_*] sites, the output-digit check runs on every loop
    iteration and would otherwise record each conversion once per
    digit. *)
