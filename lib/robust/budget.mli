(** Resource budgets: the caps that keep hostile input from turning the
    exact-arithmetic substrate into an OOM or a hang.

    The exact reader and the fixed-format converter are happy to build
    multi-megabyte bignums for inputs like [1e999999999] or
    [--places 1000000].  A budget bounds each dimension the pipeline can
    spend: input bytes, decimal-exponent magnitude, bignum size, emitted
    digits.  Checks raise {!Error.E} with a [Budget] payload; the public
    API boundaries convert that into [Error (Budget _)] via
    {!Error.catch}.

    The budget is ambient (a process-wide setting) so the checks can sit
    inside the digit loops without threading a parameter through every
    layer.  {!default} is permissive enough that no legitimate
    conversion in this repository comes near a cap. *)

type t = {
  max_input_length : int;  (** bytes of input text accepted by parsers *)
  max_exponent : int;
      (** magnitude of a decimal (or other-base) scale exponent that may
          be turned into an actual bignum power *)
  max_output_digits : int;
      (** digits a single conversion may emit (also bounds the
          fixed-format position span and the digit-loop iterations) *)
  max_bignum_bits : int;
      (** bit size of any single constructed power/scaled operand *)
}

val default : t
(** 64 KiB of input, exponents to 100_000, 20_000 output digits, 2 Mbit
    bignums. *)

val unlimited : t
(** Every cap at [max_int]; for tests and offline experiments. *)

val get : unit -> t
val set : t -> unit

val with_budget : t -> (unit -> 'a) -> 'a
(** Runs the thunk under a temporary budget, restoring the previous one
    (also on exception). *)

(** Each check raises [Error.E (Budget _)] when the value exceeds the
    current budget, and returns unit otherwise. *)

val check_input_length : int -> unit
val check_exponent : int -> unit
val check_output_digits : int -> unit
val check_bignum_bits : int -> unit
