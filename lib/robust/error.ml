type t =
  | Syntax of { input : string; reason : string; pos : int }
  | Range of { what : string; detail : string }
  | Budget of { what : string; limit : int; got : int }
  | Internal of { where : string; reason : string }

exception E of t

(* Never echo unbounded attacker input back in an error message. *)
let truncate_input s =
  if String.length s <= 60 then s else String.sub s 0 57 ^ "..."

let syntax ?(pos = -1) ~input reason =
  Syntax { input = truncate_input input; reason; pos }

(* The constructors below allocate by design — they build the value a
   failure path is about to raise with, so they never run on a hot
   success path. *)
let range ~what detail = Range { what; detail }
  [@@lint.alloc_ok "failure-path error construction"]

let budget ~what ~limit ~got = Budget { what; limit; got }
  [@@lint.alloc_ok "failure-path error construction"]

let internal ~where reason = Internal { where; reason }
  [@@lint.alloc_ok "failure-path error construction"]

let raise_ e = raise (E e)
  [@@lint.can_raise E] (* the one exception every boundary converts via [catch] *)

(* Depth of nested [catch] regions.  Fault injection consults this so
   that armed faults only fire under a boundary that will absorb them —
   not, say, during module initialisation of a dependent library.
   Domain-local: each worker domain of the service layer tracks its own
   nesting, so a guard on one domain never licenses a fault on
   another. *)
let guard_depth = Domain.DLS.new_key (fun () -> ref 0)

let in_guarded_region () = !(Domain.DLS.get guard_depth) > 0

let catch f =
  let depth = Domain.DLS.get guard_depth in
  incr depth;
  let r =
    try Ok (f ()) with
    | E e -> Error e
    | Stack_overflow ->
      Error (Internal { where = "runtime"; reason = "stack overflow" })
    | Out_of_memory ->
      Error (Internal { where = "runtime"; reason = "out of memory" })
    | exn ->
      Error
        (Internal { where = "runtime"; reason = "escaped " ^ Printexc.to_string exn })
  in
  decr depth;
  r

let category = function
  | Syntax _ -> "syntax"
  | Range _ -> "range"
  | Budget _ -> "budget"
  | Internal _ -> "internal"

let to_string = function
  | Syntax { input; reason; pos } ->
    if pos < 0 then Printf.sprintf "syntax error: %s in %S" reason input
    else Printf.sprintf "syntax error: %s at index %d in %S" reason pos input
  | Range { what; detail } -> Printf.sprintf "range error: %s: %s" what detail
  | Budget { what; limit; got } ->
    Printf.sprintf "budget exceeded: %s: %d > limit %d" what got limit
  | Internal { where; reason } ->
    Printf.sprintf "internal error: %s: %s" where reason

let equal (a : t) (b : t) = a = b
let pp fmt e = Format.pp_print_string fmt (to_string e)
