(* Facade: [Robust.Error], [Robust.Budget], [Robust.Faults], [Robust.Gen]. *)

module Error = Error
module Budget = Budget
module Faults = Faults
module Gen = Gen
