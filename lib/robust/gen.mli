(** Input generators for the differential fuzz harness.

    Deterministic given the [Random.State.t]: the harness seeds one
    state, so a failing run is reproducible from its seed.  Four
    families, from friendly to hostile:

    - {!plain}: well-formed decimals of moderate size — the round-trip
      and differential (vs libc) workhorse;
    - {!extreme}: well-formed but pathological — huge exponent
      magnitudes, long zero runs, values straddling the
      overflow/underflow cliffs of binary16/32/64;
    - {!long_digits}: digit strings hundreds to thousands of characters
      long, exercising the budget and the fast-reject gates;
    - {!garbage}: byte noise and near-miss syntax, which must come back
      as structured syntax errors, never as exceptions.

    {!any} is a weighted mix.  {!nasty} is the deterministic seed list
    mirrored by [test/corpus/]. *)

val plain : Random.State.t -> string
val extreme : Random.State.t -> string
val long_digits : Random.State.t -> string
val garbage : Random.State.t -> string

val any : Random.State.t -> string
(** Roughly 60% {!plain}, 15% {!extreme}, 10% {!long_digits}, 15%
    {!garbage}. *)

val nasty : string list
(** Known-hard inputs: exponent cliffs, subnormal boundaries, the famous
    slow-[strtod] value, tie midpoints, 10k-digit literals. *)
