(* The analyzer driver: parse every [.ml] file with the compiler's own
   parser (via ppxlib's version-stable AST), run the per-file rule
   families, build the whole-program call graph, run the
   interprocedural passes over it, and aggregate findings plus
   per-rule suppression counts.

   Everything is purely syntactic — no type information — which is
   what makes the tool fast enough for a per-PR CI gate and keeps it
   honest: each rule documents the over- and under-approximations it
   makes, and the annotation vocabulary exists precisely to record the
   cases the syntax cannot prove. *)

exception Parse_error of string

type outcome = {
  findings : Finding.t list;  (** sorted by file, line, column *)
  suppressed : (Finding.rule * int) list;  (** every rule present, in order *)
  files : int;
}

let parse ~filename source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf filename;
  try Ppxlib.Parse.implementation lexbuf
  with exn ->
    raise
      (Parse_error (Printf.sprintf "%s: %s" filename (Printexc.to_string exn)))

let zero_counts () = List.map (fun r -> (r, 0)) Finding.all_rules

let bump counts r =
  List.map (fun (r', n) -> if r' = r then (r', n + 1) else (r', n)) counts

(* The full pipeline over a set of already-read sources.  Per-file
   rules see each file alone; the call graph is built from every file
   at once and the interprocedural passes run over it.  The optional
   stale-manifest validation is only meaningful when the file set is
   the real tree (the CLI), not an in-memory fixture, so it is off by
   default. *)
let analyze_sources ?(manifest = Manifest.empty) ?(stale_check = false) sources
    =
  let parsed =
    List.map (fun (filename, src) -> (filename, parse ~filename src)) sources
  in
  let findings = ref [] in
  let suppressed = ref (zero_counts ()) in
  let sink =
    {
      Sink.report =
        (fun rule loc message ->
          findings := Finding.of_loc ~rule ~message loc :: !findings);
      suppress = (fun rule -> suppressed := bump !suppressed rule);
    }
  in
  List.iter
    (fun (filename, str) ->
      Rule_domain.check sink str;
      Rule_alloc.check sink str;
      if Manifest.is_boundary manifest filename then Rule_exn.check sink str;
      if Manifest.in_telemetry_dir manifest filename then
        Rule_telemetry.check sink str)
    parsed;
  let g = Callgraph.build parsed in
  Rule_alloc.check_graph sink g;
  Rule_exn.check_graph sink ~manifest g;
  Rule_blocking.check_graph sink g;
  Rule_lockorder.check_graph sink ~manifest g;
  Rule_width.check_graph sink g;
  if stale_check then
    List.iter
      (fun entry ->
        let loc = Ppxlib.Location.in_file "bdlint.manifest" in
        sink.report Finding.Manifest_stale loc
          (Printf.sprintf
             "manifest entry '%s' matches no analyzed file; delete it or fix \
              the path"
             entry))
      (Manifest.stale_entries manifest ~files:(List.map fst sources));
  {
    findings = List.sort Finding.compare_locs !findings;
    suppressed = !suppressed;
    files = List.length sources;
  }

let analyze_source ?manifest ~filename source =
  analyze_sources ?manifest [ (filename, source) ]

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let analyze_file ?manifest path =
  analyze_source ?manifest ~filename:path (read_file path)

let merge a b =
  {
    findings = List.merge Finding.compare_locs a.findings b.findings;
    suppressed =
      List.map
        (fun (r, n) ->
          (r, n + (try List.assoc r b.suppressed with Not_found -> 0)))
        a.suppressed;
    files = a.files + b.files;
  }

let empty_outcome = { findings = []; suppressed = zero_counts (); files = 0 }

let analyze_files ?manifest paths =
  analyze_sources ?manifest ~stale_check:true
    (List.map (fun p -> (p, read_file p)) paths)

let finding_counts outcome =
  List.map
    (fun r ->
      (r, List.length (List.filter (fun f -> f.Finding.rule = r) outcome.findings)))
    Finding.all_rules

(* ------------------------------------------------------------------ *)
(* Renderings *)

let to_text outcome =
  let buf = Buffer.create 1024 in
  List.iter
    (fun f ->
      Buffer.add_string buf (Finding.to_string f);
      Buffer.add_char buf '\n')
    outcome.findings;
  Buffer.contents buf

let gating_findings outcome =
  List.filter (fun f -> Finding.gating f.Finding.rule) outcome.findings

(* One line per rule family, then the overall tally.  Every rule is
   printed, zeros included, so the block is a fixed-shape table a CI
   log diff can be read against. *)
let summary outcome =
  let counts = finding_counts outcome in
  let buf = Buffer.create 256 in
  List.iter
    (fun (r, n) ->
      let s = try List.assoc r outcome.suppressed with Not_found -> 0 in
      Buffer.add_string buf
        (Printf.sprintf "  %-15s %3d finding%s %3d suppression%s%s\n"
           (Finding.rule_id r) n
           (if n = 1 then " " else "s")
           s
           (if s = 1 then " " else "s")
           (if Finding.gating r then "" else "  (non-gating)")))
    counts;
  let total = List.length outcome.findings in
  let gating = List.length (gating_findings outcome) in
  let sup = List.fold_left (fun a (_, n) -> a + n) 0 outcome.suppressed in
  Buffer.add_string buf
    (Printf.sprintf "bdlint: %d file%s, %d finding%s (%d gating), %d \
                     suppression%s"
       outcome.files
       (if outcome.files = 1 then "" else "s")
       total
       (if total = 1 then "" else "s")
       gating sup
       (if sup = 1 then "" else "s"));
  Buffer.contents buf

let counts_json counts =
  "{"
  ^ String.concat ","
      (List.map
         (fun (r, n) -> Printf.sprintf "\"%s\":%d" (Finding.rule_id r) n)
         counts)
  ^ "}"

let to_json outcome =
  Printf.sprintf
    {|{"files_scanned":%d,"findings":[%s],"counts":%s,"suppressed":%s}|}
    outcome.files
    (String.concat "," (List.map Finding.to_json outcome.findings))
    (counts_json (finding_counts outcome))
    (counts_json outcome.suppressed)
