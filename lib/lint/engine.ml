(* The analyzer driver: parse one [.ml] file with the compiler's own
   parser (via ppxlib's version-stable AST), run the four rule
   families, and aggregate findings plus per-rule suppression counts.

   Everything is purely syntactic — no type information — which is
   what makes the tool fast enough for a per-PR CI gate and keeps it
   honest: each rule documents the over- and under-approximations it
   makes, and the annotation vocabulary exists precisely to record the
   cases the syntax cannot prove. *)

exception Parse_error of string

type outcome = {
  findings : Finding.t list;  (** sorted by file, line, column *)
  suppressed : (Finding.rule * int) list;  (** every rule present, in order *)
  files : int;
}

let parse ~filename source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf filename;
  try Ppxlib.Parse.implementation lexbuf
  with exn ->
    raise
      (Parse_error (Printf.sprintf "%s: %s" filename (Printexc.to_string exn)))

let zero_counts () = List.map (fun r -> (r, 0)) Finding.all_rules

let bump counts r =
  List.map (fun (r', n) -> if r' = r then (r', n + 1) else (r', n)) counts

let analyze_source ?(manifest = Manifest.empty) ~filename source =
  let str = parse ~filename source in
  let findings = ref [] in
  let suppressed = ref (zero_counts ()) in
  let sink =
    {
      Sink.report =
        (fun rule loc message ->
          findings := Finding.of_loc ~rule ~message loc :: !findings);
      suppress = (fun rule -> suppressed := bump !suppressed rule);
    }
  in
  Rule_domain.check sink str;
  Rule_alloc.check sink str;
  if Manifest.is_boundary manifest filename then Rule_exn.check sink str;
  if Manifest.in_telemetry_dir manifest filename then
    Rule_telemetry.check sink str;
  {
    findings = List.sort Finding.compare_locs !findings;
    suppressed = !suppressed;
    files = 1;
  }

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let analyze_file ?manifest path =
  analyze_source ?manifest ~filename:path (read_file path)

let merge a b =
  {
    findings = List.merge Finding.compare_locs a.findings b.findings;
    suppressed =
      List.map
        (fun (r, n) ->
          (r, n + (try List.assoc r b.suppressed with Not_found -> 0)))
        a.suppressed;
    files = a.files + b.files;
  }

let empty_outcome = { findings = []; suppressed = zero_counts (); files = 0 }

let analyze_files ?manifest paths =
  List.fold_left
    (fun acc path -> merge acc (analyze_file ?manifest path))
    empty_outcome paths

let finding_counts outcome =
  List.map
    (fun r ->
      (r, List.length (List.filter (fun f -> f.Finding.rule = r) outcome.findings)))
    Finding.all_rules

(* ------------------------------------------------------------------ *)
(* Renderings *)

let to_text outcome =
  let buf = Buffer.create 1024 in
  List.iter
    (fun f ->
      Buffer.add_string buf (Finding.to_string f);
      Buffer.add_char buf '\n')
    outcome.findings;
  Buffer.contents buf

let summary outcome =
  let counts = finding_counts outcome in
  let pp (r, n) = Printf.sprintf "%s %d" (Finding.rule_id r) n in
  Printf.sprintf
    "bdlint: %d file%s, %d finding%s (%s), %d suppression%s (%s)"
    outcome.files
    (if outcome.files = 1 then "" else "s")
    (List.length outcome.findings)
    (if List.length outcome.findings = 1 then "" else "s")
    (String.concat ", " (List.map pp counts))
    (List.fold_left (fun a (_, n) -> a + n) 0 outcome.suppressed)
    (if List.fold_left (fun a (_, n) -> a + n) 0 outcome.suppressed = 1 then ""
     else "s")
    (String.concat ", " (List.map pp outcome.suppressed))

let counts_json counts =
  "{"
  ^ String.concat ","
      (List.map
         (fun (r, n) -> Printf.sprintf "\"%s\":%d" (Finding.rule_id r) n)
         counts)
  ^ "}"

let to_json outcome =
  Printf.sprintf
    {|{"files_scanned":%d,"findings":[%s],"counts":%s,"suppressed":%s}|}
    outcome.files
    (String.concat "," (List.map Finding.to_json outcome.findings))
    (counts_json (finding_counts outcome))
    (counts_json outcome.suppressed)
