(* The lint manifest: which files are result-returning exception
   boundaries (rule [exn-escape] applies) and which directories carry
   the zero-cost-when-disabled telemetry contract (rule
   [telemetry-gate] applies).  The domain-safety and no-alloc rules are
   structural — they apply everywhere without a manifest entry.

   File syntax: one directive per line, [#] comments, blank lines
   ignored.

     exception-boundary lib/reader/exact.ml
     telemetry-dir lib/dragon
     lock-order server:c.m<server:w.wm

   A [lock-order a<b] line declares that acquiring [b] while holding
   [a] is the sanctioned order; the lock-order rule treats declared
   edges as part of the acquisition graph and reports a cycle only when
   some edge in it is undeclared. *)

type t = {
  boundaries : string list;
  telemetry_dirs : string list;
  lock_orders : (string * string) list;
}

let empty = { boundaries = []; telemetry_dirs = []; lock_orders = [] }

exception Malformed of string

(* Path matching is suffix-based on [/]-separated components, so the
   manifest works no matter what prefix the tool was invoked with
   (repo root, dune sandbox, absolute paths). *)
let normalize path = String.split_on_char '/' path |> List.filter (fun s -> s <> "" && s <> ".")

let suffix_matches ~pat path =
  let pat = normalize pat and path = normalize path in
  let np = List.length pat and nf = List.length path in
  np <= nf
  &&
  let tail = List.filteri (fun i _ -> i >= nf - np) path in
  List.for_all2 String.equal pat tail

let is_boundary t file = List.exists (fun pat -> suffix_matches ~pat file) t.boundaries

(* A telemetry dir entry matches any file whose directory path contains
   the entry's components in order, e.g. [lib/dragon] matches
   [_build/default/lib/dragon/generate.ml]. *)
let in_telemetry_dir t file =
  let file_dirs = normalize (Filename.dirname file) in
  List.exists
    (fun pat ->
      let pat = normalize pat in
      let np = List.length pat in
      let rec windows = function
        | [] -> false
        | _ :: rest as l ->
          (List.length l >= np
          && List.for_all2 String.equal pat (List.filteri (fun i _ -> i < np) l))
          || windows rest
      in
      windows file_dirs)
    t.telemetry_dirs

let parse_line lineno t line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  match
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun s -> s <> "")
  with
  | [] -> t
  | [ "exception-boundary"; path ] -> { t with boundaries = path :: t.boundaries }
  | [ "telemetry-dir"; path ] -> { t with telemetry_dirs = path :: t.telemetry_dirs }
  | [ "lock-order"; pair ] -> (
    match String.index_opt pair '<' with
    | Some i when i > 0 && i < String.length pair - 1 ->
      let a = String.sub pair 0 i in
      let b = String.sub pair (i + 1) (String.length pair - i - 1) in
      { t with lock_orders = (a, b) :: t.lock_orders }
    | _ ->
      raise
        (Malformed
           (Printf.sprintf "line %d: lock-order wants the form a<b, got %S"
              lineno pair)))
  | directive :: _ ->
    raise
      (Malformed
         (Printf.sprintf "line %d: unknown or malformed directive %S" lineno
            directive))

let of_string s =
  let lines = String.split_on_char '\n' s in
  let t, _ =
    List.fold_left (fun (t, n) line -> (parse_line n t line, n + 1)) (empty, 1) lines
  in
  {
    boundaries = List.rev t.boundaries;
    telemetry_dirs = List.rev t.telemetry_dirs;
    lock_orders = List.rev t.lock_orders;
  }

(* Manifest validation (rule manifest-stale): every path directive
   should still match at least one analyzed file; an entry that matches
   nothing has been orphaned by a refactor and is silently disabling
   its rule.  Lock-order entries name locks, not paths, so they are
   exempt. *)
let stale_entries t ~files =
  let dir_of f = Filename.dirname f in
  let stale_boundary pat = not (List.exists (fun f -> suffix_matches ~pat f) files) in
  let stale_dir pat =
    not
      (List.exists
         (fun f ->
           in_telemetry_dir { empty with telemetry_dirs = [ pat ] } f
           || suffix_matches ~pat (dir_of f))
         files)
  in
  List.filter_map
    (fun pat ->
      if stale_boundary pat then Some ("exception-boundary " ^ pat) else None)
    t.boundaries
  @ List.filter_map
      (fun pat -> if stale_dir pat then Some ("telemetry-dir " ^ pat) else None)
      t.telemetry_dirs

let load path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  of_string s
