(* Rule family 1: domain-safety.

   The supervisor (PR 2) runs conversions on worker domains, so any
   mutable state created during module initialisation is shared by all
   of them.  This rule walks every toplevel binding and flags syntactic
   constructions of mutable state — [ref], [Hashtbl.create], array
   literals and array-building calls, [Bytes]/[Buffer]/[Queue]/[Stack]
   — unless the value is wrapped in [Atomic.make], lives inside a
   [Domain.DLS.new_key] initialiser, or carries a
   [@lint.domain_safe]/[@lint.guarded_by] annotation.  Code inside
   [fun]-abstractions is exempt: local mutable state (the Scratch
   carry/borrow accumulators, CLI line counters) only exists per call.

   Record type declarations with [mutable] fields are flagged at the
   declaration unless annotated: values of such a type can escape into
   shared structures, and the annotation names the mutex (or the
   domain-locality argument) that makes writes safe. *)

open Ppxlib

let rule = Finding.Domain_safety

let exempt_attrs = [ Attrs.domain_safe; Attrs.guarded_by ]

(* Heads whose result (or whose callback's result) is sanctioned
   shared-state machinery: the construction below them is the protected
   pattern itself, not a leak.  [Metrics.histogram] copies its
   [~bounds] array at registration, so bounds literals are fine. *)
let sanctioned_suffixes =
  [
    [ "Atomic"; "make" ];
    [ "Domain"; "DLS"; "new_key" ];
    [ "Mutex"; "create" ];
    [ "Condition"; "create" ];
    [ "Semaphore"; "Counting"; "make" ];
    [ "Semaphore"; "Binary"; "make" ];
    [ "Metrics"; "histogram" ];
  ]

(* Constructors of mutable state, matched against the tail of the
   application head's dotted path. *)
let mutable_ctor_suffixes =
  [
    ([ "ref" ], "a toplevel ref cell");
    ([ "Hashtbl"; "create" ], "a toplevel Hashtbl");
    ([ "Array"; "make" ], "a toplevel mutable array");
    ([ "Array"; "init" ], "a toplevel mutable array");
    ([ "Array"; "create_float" ], "a toplevel mutable float array");
    ([ "Array"; "copy" ], "a toplevel mutable array");
    ([ "Array"; "of_list" ], "a toplevel mutable array");
    ([ "Array"; "append" ], "a toplevel mutable array");
    ([ "Array"; "sub" ], "a toplevel mutable array");
    ([ "Array"; "map" ], "a toplevel mutable array");
    ([ "Array"; "mapi" ], "a toplevel mutable array");
    ([ "Array"; "concat" ], "a toplevel mutable array");
    ([ "Bytes"; "create" ], "a toplevel Bytes buffer");
    ([ "Bytes"; "make" ], "a toplevel Bytes buffer");
    ([ "Bytes"; "of_string" ], "a toplevel Bytes buffer");
    ([ "Buffer"; "create" ], "a toplevel Buffer");
    ([ "Queue"; "create" ], "a toplevel Queue");
    ([ "Stack"; "create" ], "a toplevel Stack");
  ]

let classify_head path =
  if List.exists (fun s -> Attrs.ends_with ~suffix:s path) sanctioned_suffixes
  then `Sanctioned
  else
    match
      List.find_opt
        (fun (s, _) ->
          (* [ref] must be the bare ident (or Stdlib.ref): a module's own
             [X.ref] smart constructor is not the stdlib cell. *)
          match s with
          | [ "ref" ] -> path = [ "ref" ] || path = [ "Stdlib"; "ref" ]
          | _ -> Attrs.ends_with ~suffix:s path)
        mutable_ctor_suffixes
    with
    | Some (_, what) -> `Mutable what
    | None -> `Plain

let advice =
  "make it Atomic.t or Domain.DLS-local, or annotate \
   [@lint.guarded_by \"<mutex>\"] / [@lint.domain_safe \"<reason>\"]"

(* Scan one module-initialisation expression.  [deliver] is [`Report]
   normally, [`Suppress] under an exempting annotation (the same walk
   then counts what the annotation absorbed). *)
let scan_init_expr (sink : Sink.t) ~deliver expr =
  let deliver = ref deliver in
  let hit loc what =
    match !deliver with
    | `Report ->
      sink.report rule loc (Printf.sprintf "%s is shared by every domain; %s" what advice)
    | `Suppress -> sink.suppress rule
  in
  let visitor =
    object (self)
      inherit Ast_traverse.iter as super

      method! expression e =
        if Attrs.has_any exempt_attrs e.pexp_attributes then begin
          let saved = !deliver in
          deliver := `Suppress;
          self#scan_desc e;
          deliver := saved
        end
        else self#scan_desc e

      method scan_desc e =
        match e.pexp_desc with
        (* function bodies run per call, not at module init *)
        | Pexp_function (_, _, _) -> ()
        | Pexp_apply (head, args) -> (
          match Attrs.head_path head with
          | Some path -> (
            match classify_head path with
            | `Sanctioned -> ()
            | `Mutable what ->
              hit e.pexp_loc
                (Printf.sprintf "%s (%s)" what (Attrs.path_string path));
              List.iter (fun (_, a) -> self#expression a) args
            | `Plain -> super#expression e)
          | None -> super#expression e)
        | Pexp_array (_ :: _) ->
          hit e.pexp_loc "a toplevel mutable array (literal)";
          super#expression e
        | _ -> super#expression e
    end
  in
  visitor#expression expr

let scan_value_binding sink (vb : value_binding) =
  let deliver =
    if Attrs.has_any exempt_attrs vb.pvb_attributes then `Suppress else `Report
  in
  scan_init_expr sink ~deliver vb.pvb_expr

let scan_type_decl sink (td : type_declaration) =
  match td.ptype_kind with
  | Ptype_record labels ->
    let mutable_fields =
      List.filter (fun l -> l.pld_mutable = Mutable) labels
    in
    if mutable_fields <> [] then begin
      let decl_exempt = Attrs.has_any exempt_attrs td.ptype_attributes in
      List.iter
        (fun l ->
          if decl_exempt || Attrs.has_any exempt_attrs l.pld_attributes then
            sink.Sink.suppress rule
          else
            sink.Sink.report rule l.pld_loc
              (Printf.sprintf
                 "mutable field %s.%s: values of this type may be shared \
                  across domains; %s"
                 td.ptype_name.txt l.pld_name.txt advice))
        mutable_fields
    end
  | Ptype_abstract | Ptype_variant _ | Ptype_open -> ()

(* Structure walk: only positions evaluated at module initialisation.
   Submodules initialise with their parent, so recurse through them;
   functor bodies run at application time but their init code still
   runs once per application against shared state — treat them like
   modules. *)
let rec scan_structure sink str = List.iter (scan_item sink) str

and scan_item sink (item : structure_item) =
  match item.pstr_desc with
  | Pstr_value (_, vbs) -> List.iter (scan_value_binding sink) vbs
  | Pstr_type (_, decls) -> List.iter (scan_type_decl sink) decls
  | Pstr_module mb -> scan_module_expr sink mb.pmb_expr
  | Pstr_recmodule mbs -> List.iter (fun mb -> scan_module_expr sink mb.pmb_expr) mbs
  | Pstr_include incl -> scan_module_expr sink incl.pincl_mod
  | Pstr_eval (e, _) -> scan_init_expr sink ~deliver:`Report e
  | _ -> ()

and scan_module_expr sink (m : module_expr) =
  match m.pmod_desc with
  | Pmod_structure str -> scan_structure sink str
  | Pmod_constraint (m, _) -> scan_module_expr sink m
  | Pmod_functor (_, m) -> scan_module_expr sink m
  | Pmod_ident _ | Pmod_apply _ | Pmod_apply_unit _ | Pmod_unpack _
  | Pmod_extension _ ->
    ()

let check sink str = scan_structure sink str
