(* Where rules send their results: a finding, or a tick on the
   per-rule suppression counter when an annotation deliberately exempts
   a site that would otherwise have fired. *)

type t = {
  report : Finding.rule -> Ppxlib.Location.t -> string -> unit;
  suppress : Finding.rule -> unit;
}
