(* Rule family 2: exception-safety.

   Modules listed in the manifest as [exception-boundary] present
   result-returning APIs (PR 1's totality contract): no exception may
   escape them.  Inside such a module every syntactic raise site —
   [raise]/[raise_notrace], [failwith], [invalid_arg], [exit],
   [assert], partial stdlib calls ([Option.get], [List.hd], [List.tl])
   and [*_exn]-suffixed calls — must sit under a handler that turns it
   into a structured [Error]: lexically inside a [try]/[with] body or
   under [Error.catch]/[Robust.Error.catch].  Deliberate raising APIs
   (documented [@raise] conveniences, precondition checks) carry
   [@lint.can_raise Exn] with the exception they throw.

   [Error.raise_] is exempt by design: it throws the one structured
   exception every public boundary converts with [Error.catch], and the
   fuzz harness pins that totality end to end. *)

open Ppxlib

let rule = Finding.Exn_escape

let catcher_suffixes = Classify.catcher_suffixes
let raiser = Classify.raiser

let advice =
  "wrap it under Error.catch / try-with, or annotate \
   [@lint.can_raise <Exn>] with a justification"

let check (sink : Sink.t) str =
  let guarded = ref false in
  let deliver = ref `Report in
  let hit loc what =
    if not !guarded then
      match !deliver with
      | `Report -> sink.report rule loc (Printf.sprintf "%s; %s" what advice)
      | `Suppress -> sink.suppress rule
  in
  let visitor =
    object (self)
      inherit Ast_traverse.iter as super

      method scoped ~g ~d f =
        let saved_g = !guarded and saved_d = !deliver in
        guarded := g;
        deliver := d;
        f ();
        guarded := saved_g;
        deliver := saved_d

      method! expression e =
        let d =
          if Attrs.has Attrs.can_raise e.pexp_attributes then `Suppress
          else !deliver
        in
        self#scoped ~g:!guarded ~d (fun () ->
            match e.pexp_desc with
            | Pexp_try (body, cases) ->
              (* the body is absorbed; handler code is back outside *)
              self#scoped ~g:true ~d:!deliver (fun () -> self#expression body);
              List.iter self#case cases
            | Pexp_apply (head, args) -> (
              match Attrs.head_path head with
              | Some path
                when List.exists
                       (fun s -> Attrs.ends_with ~suffix:s path)
                       catcher_suffixes ->
                self#scoped ~g:true ~d:!deliver (fun () ->
                    List.iter (fun (_, a) -> self#expression a) args)
              | Some path -> (
                (match raiser path with
                | Some what -> hit e.pexp_loc what
                | None -> ());
                List.iter (fun (_, a) -> self#expression a) args)
              | None -> super#expression e)
            | Pexp_assert inner ->
              hit e.pexp_loc "assert raises Assert_failure";
              self#expression inner
            | _ -> super#expression e)

      method! value_binding vb =
        if Attrs.has Attrs.can_raise vb.pvb_attributes then
          self#scoped ~g:!guarded ~d:`Suppress (fun () -> super#value_binding vb)
        else super#value_binding vb
    end
  in
  visitor#structure str

(* ------------------------------------------------------------------ *)
(* Interprocedural propagation.

   The per-file pass above owns the primitive raise sites inside a
   boundary file.  This pass adds the transitive half of the contract:
   an unguarded call from a boundary function to any function the
   call-graph fixpoint proved [may_raise] — in whatever module — is a
   hole in the boundary.  Calls through [Error.raise_] never count
   (the sanctioned structured-error channel, converted by the
   boundary's own [Error.catch]), and heads the per-file raiser table
   already classifies are skipped so nothing is reported twice. *)

let check_graph (sink : Sink.t) ~manifest (g : Callgraph.t) =
  Hashtbl.iter
    (fun _ (u : Callgraph.unit_info) ->
      if Manifest.is_boundary manifest u.u_file then
        let fns =
          Hashtbl.fold (fun _ fn acc -> fn :: acc) u.u_fns []
          |> List.sort (fun a b ->
                 String.compare a.Callgraph.fn_name b.Callgraph.fn_name)
        in
        List.iter
          (fun (fn : Callgraph.fn) ->
            List.iter
              (fun (c : Callgraph.call) ->
                if
                  Classify.raiser c.c_path = None
                  && not
                       (List.exists
                          (fun s -> Attrs.ends_with ~suffix:s c.c_path)
                          Classify.sanctioned_suffixes)
                then
                  match Callgraph.resolve g u c.c_path with
                  | Callgraph.Fn target -> (
                    let key = Callgraph.fn_key target in
                    match Hashtbl.find_opt g.may_raise key with
                    | None -> ()
                    | Some _ ->
                      if c.c_guarded then ()
                      else if c.c_sup_exn then sink.suppress rule
                      else
                        let chain =
                          Callgraph.witness_chain g g.may_raise key
                        in
                        sink.report rule c.c_loc
                          (Printf.sprintf
                             "call to %s may raise (via %s); %s"
                             (Attrs.path_string c.c_path)
                             (String.concat " -> "
                                (Attrs.path_string c.c_path :: chain))
                             advice))
                  | Callgraph.Opaque | Callgraph.External -> ())
              fn.Callgraph.fn_calls)
          fns)
    g.units
