(* Rule family 2: exception-safety.

   Modules listed in the manifest as [exception-boundary] present
   result-returning APIs (PR 1's totality contract): no exception may
   escape them.  Inside such a module every syntactic raise site —
   [raise]/[raise_notrace], [failwith], [invalid_arg], [exit],
   [assert], partial stdlib calls ([Option.get], [List.hd], [List.tl])
   and [*_exn]-suffixed calls — must sit under a handler that turns it
   into a structured [Error]: lexically inside a [try]/[with] body or
   under [Error.catch]/[Robust.Error.catch].  Deliberate raising APIs
   (documented [@raise] conveniences, precondition checks) carry
   [@lint.can_raise Exn] with the exception they throw.

   [Error.raise_] is exempt by design: it throws the one structured
   exception every public boundary converts with [Error.catch], and the
   fuzz harness pins that totality end to end. *)

open Ppxlib

let rule = Finding.Exn_escape

(* catch-style wrappers: every argument subtree is absorbed *)
let catcher_suffixes = [ [ "Error"; "catch" ] ]

(* the sanctioned structured-error channel *)
let sanctioned_suffixes = [ [ "Error"; "raise_" ] ]

let raiser path =
  match path with
  | [ ("raise" | "raise_notrace" | "failwith" | "invalid_arg" | "exit") ]
  | [ "Stdlib"; ("raise" | "raise_notrace" | "failwith" | "invalid_arg" | "exit") ]
    ->
    Some (Printf.sprintf "%s escapes the result boundary" (Attrs.path_string path))
  | _ ->
    if List.exists (fun s -> Attrs.ends_with ~suffix:s path) sanctioned_suffixes
    then None
    else if
      List.exists
        (fun s -> Attrs.ends_with ~suffix:s path)
        [ [ "Option"; "get" ]; [ "List"; "hd" ]; [ "List"; "tl" ] ]
    then
      Some
        (Printf.sprintf "partial call %s raises on the empty case"
           (Attrs.path_string path))
    else
      match Attrs.last path with
      | Some l
        when String.length l > 4
             && String.equal (String.sub l (String.length l - 4) 4) "_exn" ->
        Some
          (Printf.sprintf "%s is a raising variant" (Attrs.path_string path))
      | _ -> None

let advice =
  "wrap it under Error.catch / try-with, or annotate \
   [@lint.can_raise <Exn>] with a justification"

let check (sink : Sink.t) str =
  let guarded = ref false in
  let deliver = ref `Report in
  let hit loc what =
    if not !guarded then
      match !deliver with
      | `Report -> sink.report rule loc (Printf.sprintf "%s; %s" what advice)
      | `Suppress -> sink.suppress rule
  in
  let visitor =
    object (self)
      inherit Ast_traverse.iter as super

      method scoped ~g ~d f =
        let saved_g = !guarded and saved_d = !deliver in
        guarded := g;
        deliver := d;
        f ();
        guarded := saved_g;
        deliver := saved_d

      method! expression e =
        let d =
          if Attrs.has Attrs.can_raise e.pexp_attributes then `Suppress
          else !deliver
        in
        self#scoped ~g:!guarded ~d (fun () ->
            match e.pexp_desc with
            | Pexp_try (body, cases) ->
              (* the body is absorbed; handler code is back outside *)
              self#scoped ~g:true ~d:!deliver (fun () -> self#expression body);
              List.iter self#case cases
            | Pexp_apply (head, args) -> (
              match Attrs.head_path head with
              | Some path
                when List.exists
                       (fun s -> Attrs.ends_with ~suffix:s path)
                       catcher_suffixes ->
                self#scoped ~g:true ~d:!deliver (fun () ->
                    List.iter (fun (_, a) -> self#expression a) args)
              | Some path -> (
                (match raiser path with
                | Some what -> hit e.pexp_loc what
                | None -> ());
                List.iter (fun (_, a) -> self#expression a) args)
              | None -> super#expression e)
            | Pexp_assert inner ->
              hit e.pexp_loc "assert raises Assert_failure";
              self#expression inner
            | _ -> super#expression e)

      method! value_binding vb =
        if Attrs.has Attrs.can_raise vb.pvb_attributes then
          self#scoped ~g:!guarded ~d:`Suppress (fun () -> super#value_binding vb)
        else super#value_binding vb
    end
  in
  visitor#structure str
