(* Shared syntactic classifiers: which application heads raise, which
   absorb exceptions, which block the calling domain.  Kept in a leaf
   module so both the per-file rules and the call-graph passes can use
   them without a dependency cycle.

   All classification is by dotted-path suffix, same as the rest of the
   analyzer: [Unix.read], [Stdlib.Unix.read] and [U.read] via a module
   alias all resolve to the same entry once the alias is expanded. *)

(* ------------------------------------------------------------------ *)
(* Raisers (rule exn-escape) *)

(* catch-style wrappers: every argument subtree is absorbed *)
let catcher_suffixes = [ [ "Error"; "catch" ] ]

(* the sanctioned structured-error channel: [Error.raise_] throws the
   one exception every public boundary converts with [Error.catch] *)
let sanctioned_suffixes = [ [ "Error"; "raise_" ] ]

let is_catcher path =
  List.exists (fun s -> Attrs.ends_with ~suffix:s path) catcher_suffixes

let raiser path =
  match path with
  | [ ("raise" | "raise_notrace" | "failwith" | "invalid_arg" | "exit") ]
  | [ "Stdlib"; ("raise" | "raise_notrace" | "failwith" | "invalid_arg" | "exit") ]
    ->
    Some (Printf.sprintf "%s escapes the result boundary" (Attrs.path_string path))
  | _ ->
    if List.exists (fun s -> Attrs.ends_with ~suffix:s path) sanctioned_suffixes
    then None
    else if
      List.exists
        (fun s -> Attrs.ends_with ~suffix:s path)
        [ [ "Option"; "get" ]; [ "List"; "hd" ]; [ "List"; "tl" ] ]
    then
      Some
        (Printf.sprintf "partial call %s raises on the empty case"
           (Attrs.path_string path))
    else
      match Attrs.last path with
      | Some l
        when String.length l > 4
             && String.equal (String.sub l (String.length l - 4) 4) "_exn" ->
        Some
          (Printf.sprintf "%s is a raising variant" (Attrs.path_string path))
      | _ -> None

(* ------------------------------------------------------------------ *)
(* Blocking primitives (rules blocking / no-alloc reachability) *)

(* Syscalls and channel operations that can park the calling domain.
   [Mutex.lock] and [Condition.wait] are classified separately: the
   lock-order rule owns mutex nesting, and a wait is only legitimate on
   a mutex the caller already holds. *)
let hard_blocking_unix =
  [
    "read"; "write"; "single_write"; "select"; "sleep"; "sleepf"; "connect";
    "accept"; "recv"; "send"; "sendto"; "recvfrom"; "waitpid"; "system";
    "getaddrinfo"; "gethostbyname";
  ]

let hard_blocking_singles =
  [
    "open_in"; "open_in_bin"; "open_out"; "open_out_bin"; "open_out_gen";
    "input_line"; "input"; "really_input"; "really_input_string";
    "input_char"; "input_byte"; "output_string"; "output_bytes";
    "output_char"; "output_byte"; "output"; "flush"; "close_in"; "close_out";
    "print_string"; "print_endline"; "print_newline"; "prerr_string";
    "prerr_endline"; "read_line";
  ]

(* [hard_blocking path] classifies an application head as an operation
   that can block for an unbounded time (I/O, sleeps, joins). *)
let hard_blocking path =
  let tail2 m f = Attrs.ends_with ~suffix:[ m; f ] path in
  match path with
  | [ s ] | [ "Stdlib"; s ] when List.mem s hard_blocking_singles ->
    Some (Attrs.path_string path)
  | _ ->
    if List.exists (fun f -> tail2 "Unix" f) hard_blocking_unix then
      Some (Attrs.path_string path)
    else if tail2 "Domain" "join" || tail2 "Thread" "join" || tail2 "Thread" "delay"
    then Some (Attrs.path_string path)
    else if
      (* channel module APIs *)
      List.exists
        (fun m ->
          match path with
          | m' :: _ :: _ when String.equal m m' -> true
          | "Stdlib" :: m' :: _ :: _ when String.equal m m' -> true
          | _ -> false)
        [ "In_channel"; "Out_channel" ]
    then Some (Attrs.path_string path)
    else None

let is_mutex_lock path = Attrs.ends_with ~suffix:[ "Mutex"; "lock" ] path
let is_mutex_unlock path = Attrs.ends_with ~suffix:[ "Mutex"; "unlock" ] path
let is_mutex_protect path = Attrs.ends_with ~suffix:[ "Mutex"; "protect" ] path
let is_condition_wait path = Attrs.ends_with ~suffix:[ "Condition"; "wait" ] path
