(* A lint finding: one violated invariant at one source location.

   The rule families mirror the invariants the repository established
   but the compiler cannot check: exception-free result boundaries,
   domain-safe shared state under the worker-domain supervisor,
   allocation-free digit kernels, zero-cost-when-disabled telemetry,
   lock discipline in the networked service, and the Q4.112 fixed-point
   arithmetic staying inside native-int range.

   [Manifest_stale] is advisory: it flags manifest entries that match
   no file on disk (a refactor silently disabling a rule) but does not
   gate the exit code — see [Engine.gating_findings]. *)

type rule =
  | Domain_safety
  | Exn_escape
  | No_alloc
  | Telemetry_gate
  | Blocking
  | Lock_order
  | Width
  | Manifest_stale

let all_rules =
  [
    Domain_safety;
    Exn_escape;
    No_alloc;
    Telemetry_gate;
    Blocking;
    Lock_order;
    Width;
    Manifest_stale;
  ]

let rule_id = function
  | Domain_safety -> "domain-safety"
  | Exn_escape -> "exn-escape"
  | No_alloc -> "no-alloc"
  | Telemetry_gate -> "telemetry-gate"
  | Blocking -> "blocking"
  | Lock_order -> "lock-order"
  | Width -> "width"
  | Manifest_stale -> "manifest-stale"

(* Advisory findings report but never gate the exit code. *)
let gating = function Manifest_stale -> false | _ -> true

type t = { file : string; line : int; col : int; rule : rule; message : string }

let of_loc ~rule ~message (loc : Ppxlib.Location.t) =
  let p = loc.loc_start in
  {
    file = p.pos_fname;
    line = p.pos_lnum;
    col = p.pos_cnum - p.pos_bol;
    rule;
    message;
  }

(* Stable report order: (file, line, col, rule) — the rule id breaks
   ties so JSON diffs are deterministic when two rules fire on the same
   expression. *)
let compare_locs a b =
  match String.compare a.file b.file with
  | 0 -> (
    match Int.compare a.line b.line with
    | 0 -> (
      match Int.compare a.col b.col with
      | 0 -> String.compare (rule_id a.rule) (rule_id b.rule)
      | c -> c)
    | c -> c)
  | c -> c

(* The CI-greppable rendering: file:line: [rule] message. *)
let to_string f =
  Printf.sprintf "%s:%d:%d: [%s] %s" f.file f.line f.col (rule_id f.rule)
    f.message

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json f =
  Printf.sprintf
    {|{"file":"%s","line":%d,"col":%d,"rule":"%s","message":"%s"}|}
    (json_escape f.file) f.line f.col (rule_id f.rule) (json_escape f.message)
