(* A lint finding: one violated invariant at one source location.

   The four rule families mirror the invariants PRs 1-4 established but
   the compiler cannot check: exception-free result boundaries,
   domain-safe shared state under the worker-domain supervisor,
   allocation-free digit kernels, and zero-cost-when-disabled
   telemetry. *)

type rule = Domain_safety | Exn_escape | No_alloc | Telemetry_gate

let all_rules = [ Domain_safety; Exn_escape; No_alloc; Telemetry_gate ]

let rule_id = function
  | Domain_safety -> "domain-safety"
  | Exn_escape -> "exn-escape"
  | No_alloc -> "no-alloc"
  | Telemetry_gate -> "telemetry-gate"

type t = { file : string; line : int; col : int; rule : rule; message : string }

let of_loc ~rule ~message (loc : Ppxlib.Location.t) =
  let p = loc.loc_start in
  {
    file = p.pos_fname;
    line = p.pos_lnum;
    col = p.pos_cnum - p.pos_bol;
    rule;
    message;
  }

let compare_locs a b =
  match String.compare a.file b.file with
  | 0 -> ( match Int.compare a.line b.line with 0 -> Int.compare a.col b.col | c -> c)
  | c -> c

(* The CI-greppable rendering: file:line: [rule] message. *)
let to_string f =
  Printf.sprintf "%s:%d:%d: [%s] %s" f.file f.line f.col (rule_id f.rule)
    f.message

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json f =
  Printf.sprintf
    {|{"file":"%s","line":%d,"col":%d,"rule":"%s","message":"%s"}|}
    (json_escape f.file) f.line f.col (rule_id f.rule) (json_escape f.message)
