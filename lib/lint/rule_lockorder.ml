(* Rule family: lock-order.

   The builder records every mutex acquisition together with the locks
   already held at that point, and the transitive acquisition set of
   every function, so nesting through a call ([Mutex.lock a; helper ()]
   where [helper] locks [b]) contributes the same [a -> b] edge as
   lexical nesting.  Lock identity is the argument expression as
   written, prefixed by the unit ([server:c.m]); two names for the same
   mutex through different bindings are distinct — an under-
   approximation the STATIC_ANALYSIS doc calls out.

   Findings:

   - a mutex acquired while already held (a self-edge) is an immediate
     self-deadlock;
   - a cycle in the acquisition graph ([a] held while taking [b]
     somewhere, [b] held while taking [a] elsewhere) is a potential
     deadlock between two domains;
   - an observed edge whose reverse is declared ([lock-order b<a] in
     the manifest or [@lint.lock_order "b<a"] on a binding) contradicts
     the documented discipline even if the cycle's other half is not in
     this tree.

   A cycle whose every observed edge is declared counts as one
   suppression: the declaration is the reviewed claim that some other
   mechanism (trylock, ordering by address, single-domain use) breaks
   the tie. *)

let rule = Finding.Lock_order

type edge = { e_from : string; e_to : string; e_loc : Ppxlib.Location.t }

let collect_edges (g : Callgraph.t) =
  let edges = ref [] in
  Callgraph.all_fns g (fun _ fn ->
      let u = Hashtbl.find g.Callgraph.units fn.Callgraph.fn_unit in
      List.iter
        (fun (a : Callgraph.acquire) ->
          List.iter
            (fun h ->
              edges := { e_from = h; e_to = a.a_lock; e_loc = a.a_loc } :: !edges)
            a.a_held)
        fn.fn_acquires;
      List.iter
        (fun (c : Callgraph.call) ->
          if c.c_locks <> [] then
            match Callgraph.resolve g u c.c_path with
            | Callgraph.Fn target ->
              let acq =
                try Hashtbl.find g.acq_sets (Callgraph.fn_key target)
                with Not_found -> []
              in
              List.iter
                (fun l ->
                  List.iter
                    (fun h ->
                      edges := { e_from = h; e_to = l; e_loc = c.c_loc } :: !edges)
                    c.c_locks)
                acq
            | Callgraph.Opaque | Callgraph.External -> ())
        fn.fn_calls);
  (* dedupe by (from, to), keeping the lexically first location *)
  let cmp_loc (a : Ppxlib.Location.t) (b : Ppxlib.Location.t) =
    match String.compare a.loc_start.pos_fname b.loc_start.pos_fname with
    | 0 -> Int.compare a.loc_start.pos_cnum b.loc_start.pos_cnum
    | c -> c
  in
  List.sort
    (fun a b ->
      match String.compare a.e_from b.e_from with
      | 0 -> (
        match String.compare a.e_to b.e_to with
        | 0 -> cmp_loc a.e_loc b.e_loc
        | c -> c)
      | c -> c)
    !edges
  |> List.fold_left
       (fun acc e ->
         match acc with
         | prev :: _ when prev.e_from = e.e_from && prev.e_to = e.e_to -> acc
         | _ -> e :: acc)
       []
  |> List.rev

(* Tarjan-free SCC via repeated DFS reachability — the lock graphs
   here have a handful of nodes. *)
let reaches edges a b =
  let rec go seen frontier =
    if List.mem b frontier then true
    else
      let next =
        List.concat_map
          (fun n ->
            List.filter_map
              (fun e -> if e.e_from = n && not (List.mem e.e_to seen) then Some e.e_to else None)
              edges)
          frontier
        |> List.sort_uniq compare
      in
      if next = [] then false else go (next @ seen) next
  in
  go [ a ] [ a ]

let check_graph (sink : Sink.t) ~(manifest : Manifest.t) (g : Callgraph.t) =
  let declared = manifest.lock_orders @ g.lock_order_attrs in
  let is_declared a b = List.mem (a, b) declared in
  let edges = collect_edges g in
  let self_edges, edges =
    List.partition (fun e -> e.e_from = e.e_to) edges
  in
  List.iter
    (fun e ->
      if is_declared e.e_from e.e_to then sink.suppress rule
      else
        sink.report rule e.e_loc
          (Printf.sprintf
             "mutex %s is acquired while already held (self-deadlock)"
             e.e_from))
    self_edges;
  (* contradiction of a declared order *)
  List.iter
    (fun e ->
      if is_declared e.e_to e.e_from then
        sink.report rule e.e_loc
          (Printf.sprintf
             "acquiring %s while holding %s contradicts the declared \
              lock-order %s<%s"
             e.e_to e.e_from e.e_to e.e_from))
    edges;
  (* cycles: an edge that is part of a cycle iff its target reaches its
     source; report each cycle once via its lexicographically smallest
     participating edge *)
  let cyclic = List.filter (fun e -> reaches edges e.e_to e.e_from) edges in
  let nodes_of es =
    List.concat_map (fun e -> [ e.e_from; e.e_to ]) es |> List.sort_uniq compare
  in
  (* group cyclic edges into strongly connected components by mutual
     reachability of their endpoints *)
  let rec components acc = function
    | [] -> acc
    | e :: rest ->
      let same_comp x =
        reaches edges e.e_from x.e_from && reaches edges x.e_from e.e_from
      in
      let comp, others = List.partition same_comp rest in
      components ((e :: comp) :: acc) others
  in
  let comps = components [] cyclic |> List.rev in
  List.iter
    (fun comp ->
      if List.for_all (fun e -> is_declared e.e_from e.e_to) comp then
        sink.suppress rule
      else
        let first = List.hd comp in
        sink.report rule first.e_loc
          (Printf.sprintf
             "potential deadlock: lock acquisition cycle %s (declare the \
              intended order with lock-order entries in the manifest if a \
              reviewed mechanism breaks the tie)"
             (String.concat " -> "
                (nodes_of comp @ [ List.hd (nodes_of comp) ]))))
    comps
