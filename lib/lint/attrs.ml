(* The annotation vocabulary: [@lint.*] attributes that document a
   deliberate exemption from a rule, each with the justification the
   reviewer would otherwise have to re-derive.

     [@lint.domain_safe "reason"]   shared state safe without a guard
     [@lint.guarded_by "mutex"]     mutable state serialized by a lock
     [@lint.can_raise Exn]          boundary code that deliberately raises
     [@lint.no_alloc]               function whose body must not allocate
     [@lint.alloc_ok "reason"]      cold subtree inside a no_alloc function
     [@lint.always_on "reason"]     telemetry site that skips the enable gate
     [@lint.blocking_ok "reason"]   deliberate blocking call under a held lock
     [@lint.lock_order "a<b"]       declares a sanctioned acquisition order
     [@@lint.certified_width N]     function whose int arithmetic the width
                                    certifier must prove stays within N bits
     [@lint.width N]                pattern attribute: this variable (or the
                                    elements of this array) fits in N unsigned
                                    bits — a trusted input declaration the
                                    certifier checks at every internal call
     [@lint.width_signed N]         same, for N-bit two's-complement values
*)

open Ppxlib

let domain_safe = "lint.domain_safe"
let guarded_by = "lint.guarded_by"
let can_raise = "lint.can_raise"
let no_alloc = "lint.no_alloc"
let alloc_ok = "lint.alloc_ok"
let always_on = "lint.always_on"
let blocking_ok = "lint.blocking_ok"
let lock_order = "lint.lock_order"
let certified_width = "lint.certified_width"
let width = "lint.width"
let width_signed = "lint.width_signed"

let find name (attrs : attributes) =
  List.find_opt (fun a -> String.equal a.attr_name.txt name) attrs

let has name attrs = Option.is_some (find name attrs)

let has_any names attrs = List.exists (fun n -> has n attrs) names

(* The justification string of a ["reason"]-payload annotation. *)
let string_payload (a : attribute) =
  match a.attr_payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
    Some s
  | _ -> None

(* The integer payload of a width annotation, [@lint.certified_width 62]. *)
let int_payload (a : attribute) =
  match a.attr_payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_integer (s, None)); _ }, _);
          _;
        };
      ] ->
    int_of_string_opt s
  | _ -> None

let find_int name attrs =
  match find name attrs with Some a -> int_payload a | None -> None

(* ------------------------------------------------------------------ *)
(* Longident helpers shared by the rules *)

let rec flatten_lid = function
  | Lident s -> Some [ s ]
  | Ldot (l, s) -> (
    match flatten_lid l with Some p -> Some (p @ [ s ]) | None -> None)
  | Lapply _ -> None

(* The dotted path of an application head, e.g.
   [Telemetry.Metrics.incr c] gives [["Telemetry"; "Metrics"; "incr"]]. *)
let head_path (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> flatten_lid txt
  | _ -> None

let path_string p = String.concat "." p

let rec last = function [] -> None | [ x ] -> Some x | _ :: tl -> last tl

(* [ends_with ~suffix path]: the last components of [path] equal
   [suffix], so ["Telemetry.Metrics.incr"] ends with ["Metrics.incr"]. *)
let ends_with ~suffix path =
  let np = List.length path and ns = List.length suffix in
  ns <= np
  &&
  let tail = List.filteri (fun i _ -> i >= np - ns) path in
  List.for_all2 String.equal suffix tail
