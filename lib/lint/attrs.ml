(* The annotation vocabulary: [@lint.*] attributes that document a
   deliberate exemption from a rule, each with the justification the
   reviewer would otherwise have to re-derive.

     [@lint.domain_safe "reason"]   shared state safe without a guard
     [@lint.guarded_by "mutex"]     mutable state serialized by a lock
     [@lint.can_raise Exn]          boundary code that deliberately raises
     [@lint.no_alloc]               function whose body must not allocate
     [@lint.alloc_ok "reason"]      cold subtree inside a no_alloc function
     [@lint.always_on "reason"]     telemetry site that skips the enable gate
*)

open Ppxlib

let domain_safe = "lint.domain_safe"
let guarded_by = "lint.guarded_by"
let can_raise = "lint.can_raise"
let no_alloc = "lint.no_alloc"
let alloc_ok = "lint.alloc_ok"
let always_on = "lint.always_on"

let find name (attrs : attributes) =
  List.find_opt (fun a -> String.equal a.attr_name.txt name) attrs

let has name attrs = Option.is_some (find name attrs)

let has_any names attrs = List.exists (fun n -> has n attrs) names

(* The justification string of a ["reason"]-payload annotation. *)
let string_payload (a : attribute) =
  match a.attr_payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
    Some s
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Longident helpers shared by the rules *)

let rec flatten_lid = function
  | Lident s -> Some [ s ]
  | Ldot (l, s) -> (
    match flatten_lid l with Some p -> Some (p @ [ s ]) | None -> None)
  | Lapply _ -> None

(* The dotted path of an application head, e.g.
   [Telemetry.Metrics.incr c] gives [["Telemetry"; "Metrics"; "incr"]]. *)
let head_path (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> flatten_lid txt
  | _ -> None

let path_string p = String.concat "." p

let rec last = function [] -> None | [ x ] -> Some x | _ :: tl -> last tl

(* [ends_with ~suffix path]: the last components of [path] equal
   [suffix], so ["Telemetry.Metrics.incr"] ends with ["Metrics.incr"]. *)
let ends_with ~suffix path =
  let np = List.length path and ns = List.length suffix in
  ns <= np
  &&
  let tail = List.filteri (fun i _ -> i >= np - ns) path in
  List.for_all2 String.equal suffix tail
