(* Rule family: width — the Q4.112 overflow certifier.

   Functions marked [@@lint.certified_width N] get their int arithmetic
   abstractly interpreted: every expression is mapped to a conservative
   interval [lo, hi] with arbitrary-precision bounds (intermediate
   interval products exceed native range long before the check fires,
   so bounds are signed Bignum.Nat values).  An operation whose result
   interval escapes the N-bit two's-complement budget
   [-2^N, 2^N - 1] is reported; [Int64.*] operations are modelled
   unsigned with a fixed [0, 2^64 - 1] budget.

   What the interpreter knows:

   - int literals, module-level constants (own unit or through
     [module T = ...] aliases), and literal int arrays, whose element
     ranges are computed from the literals themselves — so the 28-bit
     invariant of the generated power table is *checked*, not assumed;
   - parameter and let-pattern declarations [@lint.width N] /
     [@lint.width_signed N]: trusted input facts, re-checked at every
     internal call site (an argument whose interval may escape the
     callee's declared width is a finding).  On an array name the
     declaration bounds the *elements*: reads produce the interval and
     stores are checked against it;
   - branch refinement for [x CMP e] conditions (and [&&]/[||]/[not]
     combinations), so early-exit guards like
     [if q < T.q_min || q > T.q_max then -1 else ...] narrow [q] in the
     surviving branch;
   - local [let]/[let rec] functions: analyzed once against their
     declared parameter widths, call sites checked against the same.

   Deliberate modular truncation — the windowed-read idiom
   [(a lsl k) lor b land mask] — is sound for bit-transport operators
   only: inside the operand of a [land]/[Int64.logand] with a constant
   mask, [lsl]/[lor]/[lxor] may exceed the budget (the mask cuts the
   result back), but [+]/[-]/[*] must still fit, because a wrapped
   product under a mask is garbage, not truncation.  There is no
   suppression annotation for this rule: if the certifier cannot prove
   a bound, the code (or a declaration it can check) must change. *)

open Ppxlib
module Nat = Bignum.Nat

let rule = Finding.Width

(* ------------------------------------------------------------------ *)
(* Signed arbitrary-precision bounds *)

module Sb = struct
  type t = int * Nat.t (* sign in {-1,0,1}; sign = 0 iff magnitude = 0 *)

  let norm s m = if Nat.is_zero m then (0, Nat.zero) else (s, m)
  let zero = (0, Nat.zero)
  let one = (1, Nat.one)

  let of_int n =
    if n >= 0 then norm 1 (Nat.of_int n)
    else norm (-1) (Nat.of_int (-n)) (* literals never reach min_int *)

  let neg (s, m) = (-s, m)

  let compare (sa, ma) (sb, mb) =
    if sa <> sb then Stdlib.compare sa sb
    else if sa >= 0 then Nat.compare ma mb
    else Nat.compare mb ma

  let add (sa, ma) (sb, mb) =
    if sa = 0 then (sb, mb)
    else if sb = 0 then (sa, ma)
    else if sa = sb then (sa, Nat.add ma mb)
    else
      let c = Nat.compare ma mb in
      if c = 0 then zero
      else if c > 0 then norm sa (Nat.sub ma mb)
      else norm sb (Nat.sub mb ma)

  let sub a b = add a (neg b)
  let mul (sa, ma) (sb, mb) = norm (sa * sb) (Nat.mul ma mb)
  let min a b = if compare a b <= 0 then a else b
  let max a b = if compare a b >= 0 then a else b
  let pow2 k = (1, Nat.shift_left Nat.one k)
  let pred_pow2 k = norm 1 (Nat.sub (Nat.shift_left Nat.one k) Nat.one)

  (* arithmetic shift right with floor semantics *)
  let shr (s, m) k =
    if s >= 0 then norm s (Nat.shift_right m k)
    else
      let q = Nat.shift_right m k in
      let exact = Nat.equal (Nat.shift_left q k) m in
      norm (-1) (if exact then q else Nat.add q Nat.one)

  let div_pos (s, m) c =
    (* c > 0; floor division *)
    let q, r = Nat.divmod m c in
    if s >= 0 then norm s q
    else norm (-1) (if Nat.is_zero r then q else Nat.add q Nat.one)

  let is_neg (s, _) = s < 0
  let bits (_, m) = Nat.bit_length m
  let to_string (s, m) = (if s < 0 then "-" else "") ^ Nat.to_string m
  let to_int_opt (s, m) = Option.map (fun i -> s * i) (Nat.to_int_opt m)
end

(* An abstract value: a closed interval, or [top] — "some int we know
   nothing about beyond the machine representation". *)
type v = Top | Iv of Sb.t * Sb.t

let exact x = Iv (x, x)
let native_lo = Sb.neg (Sb.pow2 62)
let native_hi = Sb.pred_pow2 62
let native_range = Iv (native_lo, native_hi)
let i64_lo = Sb.zero
let i64_hi = Sb.pred_pow2 64
let i64_range = Iv (i64_lo, i64_hi)
let bool_v = Iv (Sb.zero, Sb.one)

let concretize ~i64 = function
  | Top -> if i64 then (i64_lo, i64_hi) else (native_lo, native_hi)
  | Iv (lo, hi) -> (lo, hi)

let join a b =
  match (a, b) with
  | Top, _ | _, Top -> Top
  | Iv (la, ha), Iv (lb, hb) -> Iv (Sb.min la lb, Sb.max ha hb)

let exact_const = function
  | Iv (lo, hi) when Sb.compare lo hi = 0 -> Some lo
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Declarations *)

let width_iv n = Iv (Sb.zero, Sb.pred_pow2 n)
let width_signed_iv n = Iv (Sb.neg (Sb.pow2 (n - 1)), Sb.pred_pow2 (n - 1))

let declared_iv attrs =
  match Attrs.find_int Attrs.width attrs with
  | Some n when n > 0 -> Some (width_iv n)
  | _ -> (
    match Attrs.find_int Attrs.width_signed attrs with
    | Some n when n > 0 -> Some (width_signed_iv n)
    | _ -> None)

let rec pat_info (p : pattern) =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some (txt, p.ppat_attributes)
  | Ppat_constraint (inner, _) -> (
    match pat_info inner with
    | Some (n, a) -> Some (n, a @ p.ppat_attributes)
    | None -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Analysis state *)

type lfn = {
  l_params : (arg_label * string option * v option) list;
      (** label, name, declared interval *)
  mutable l_ret : v;
}
[@@lint.domain_safe "single-domain analysis state, never shared"]

type env = (string * v) list

type st = {
  g : Callgraph.t;
  sink : Sink.t;
  mutable u : Callgraph.unit_info;
  mutable cap_bits : int;  (** native budget, from [@@lint.certified_width] *)
  mutable mute : bool;
  mutable lfns : (string * lfn) list;
  consts : (string, v) Hashtbl.t;  (** "Unit.name" -> value (Top if not const) *)
  const_arrays : (string, v) Hashtbl.t;  (** literal array element ranges *)
  rets : (string, v) Hashtbl.t;  (** certified fn key -> return interval *)
  params_memo : (string, (arg_label * string option * v option) list) Hashtbl.t;
  analyzing : (string, unit) Hashtbl.t;
}
[@@lint.domain_safe "single-domain analysis state, never shared"]

let cap_range st = (Sb.neg (Sb.pow2 st.cap_bits), Sb.pred_pow2 st.cap_bits)

let flag st (loc : Location.t) fmt =
  Printf.ksprintf
    (fun msg -> if not st.mute then st.sink.report rule loc msg)
    fmt

let muted st f =
  let saved = st.mute in
  st.mute <- true;
  let r = f () in
  st.mute <- saved;
  r

(* check a computed interval against the native budget; returns the
   clamped value so one overflow doesn't cascade down the whole body *)
let check_native st loc what v =
  match v with
  | Top -> Top
  | Iv (lo, hi) ->
    let clo, chi = cap_range st in
    if Sb.compare hi chi > 0 || Sb.compare lo clo < 0 then begin
      flag st loc "%s may reach [%s, %s], outside the %d-bit budget" what
        (Sb.to_string lo) (Sb.to_string hi) st.cap_bits;
      Iv (Sb.max lo clo, Sb.min hi chi)
    end
    else v

let check_i64 st loc what v =
  match v with
  | Top -> Top
  | Iv (lo, hi) ->
    if Sb.compare hi i64_hi > 0 || Sb.compare lo i64_lo < 0 then begin
      flag st loc "%s may reach [%s, %s], outside the unsigned 64-bit budget"
        what (Sb.to_string lo) (Sb.to_string hi);
      Iv (Sb.max lo i64_lo, Sb.min hi i64_hi)
    end
    else v

(* ------------------------------------------------------------------ *)
(* Literals and module constants *)

let int_literal s =
  try
    if String.length s > 0 && s.[0] = '-' then
      Some
        (Sb.neg
           (Sb.norm 1 (Nat.of_string (String.sub s 1 (String.length s - 1)))))
    else Some (Sb.norm 1 (Nat.of_string s))
  with _ -> None

let builtin_const path =
  match path with
  | [ "max_int" ] | [ "Stdlib"; "max_int" ] -> Some (exact native_hi)
  | [ "min_int" ] | [ "Stdlib"; "min_int" ] -> Some (exact native_lo)
  | [ "Int64"; "zero" ] -> Some (exact Sb.zero)
  | [ "Int64"; "one" ] -> Some (exact Sb.one)
  | [ "Int64"; "minus_one" ] | [ "Int64"; "max_int" ] -> Some (exact i64_hi)
  | _ -> None

let expand_alias st path =
  match path with
  | m :: rest when String.length m > 0 && m.[0] >= 'A' && m.[0] <= 'Z' -> (
    match List.assoc_opt m st.u.u_aliases with
    | Some target -> target @ rest
    | None -> path)
  | _ -> path

(* ------------------------------------------------------------------ *)
(* The interpreter *)

let rec eval st (env : env) ~trunc (e : expression) : v =
  match e.pexp_desc with
  | Pexp_constant (Pconst_integer (s, _)) -> (
    match int_literal s with Some x -> exact x | None -> Top)
  | Pexp_constant _ -> Top
  | Pexp_ident { txt; _ } -> (
    match Attrs.flatten_lid txt with
    | None -> Top
    | Some [ x ] when List.mem_assoc x env -> List.assoc x env
    | Some path -> const_value st path)
  | Pexp_let (rf, vbs, cont) -> eval_let st env ~trunc rf vbs cont
  | Pexp_sequence (a, b) ->
    ignore (eval st env ~trunc:false a);
    eval st env ~trunc b
  | Pexp_ifthenelse (cond, t, f) -> (
    ignore (eval st env ~trunc:false cond);
    let env_t = refine st env cond true in
    let vt = eval st env_t ~trunc t in
    match f with
    | None -> Top
    | Some f ->
      let env_f = refine st env cond false in
      join vt (eval st env_f ~trunc f))
  | Pexp_match (scrut, cases) ->
    let sv = eval st env ~trunc:false scrut in
    eval_cases st env ~trunc ~scrut_v:sv cases
  | Pexp_try (body, cases) ->
    let bv = eval st env ~trunc body in
    join bv (eval_cases st env ~trunc ~scrut_v:Top cases)
  | Pexp_apply (head, args) -> eval_apply st env ~trunc e head args
  | Pexp_constraint (b, _) | Pexp_coerce (b, _, _) | Pexp_newtype (_, b)
  | Pexp_poly (b, _) | Pexp_open (_, b) ->
    eval st env ~trunc b
  | Pexp_function (params, _, fb) ->
    (* a bare closure: analyze its body for internal violations with
       declared or top parameters; the closure value itself is opaque *)
    let env' =
      List.fold_left
        (fun env p ->
          match p.pparam_desc with
          | Pparam_val (_, _, pat) -> (
            match pat_info pat with
            | Some (name, attrs) ->
              (name, Option.value (declared_iv attrs) ~default:Top) :: env
            | None -> env)
          | Pparam_newtype _ -> env)
        env params
    in
    (match fb with
    | Pfunction_body b -> ignore (eval st env' ~trunc:false b)
    | Pfunction_cases (cases, _, _) ->
      ignore (eval_cases st env' ~trunc:false ~scrut_v:Top cases));
    Top
  | Pexp_tuple es ->
    List.iter (fun x -> ignore (eval st env ~trunc:false x)) es;
    Top
  | Pexp_construct (_, arg) | Pexp_variant (_, arg) ->
    Option.iter (fun a -> ignore (eval st env ~trunc:false a)) arg;
    Top
  | Pexp_record (fields, base) ->
    Option.iter (fun b -> ignore (eval st env ~trunc:false b)) base;
    List.iter (fun (_, x) -> ignore (eval st env ~trunc:false x)) fields;
    Top
  | Pexp_field (b, _) ->
    ignore (eval st env ~trunc:false b);
    Top
  | Pexp_setfield (b, _, x) ->
    ignore (eval st env ~trunc:false b);
    ignore (eval st env ~trunc:false x);
    Top
  | Pexp_array es ->
    List.iter (fun x -> ignore (eval st env ~trunc:false x)) es;
    Top
  | Pexp_while (c, body) ->
    ignore (eval st env ~trunc:false c);
    ignore (eval st env ~trunc:false body);
    Top
  | Pexp_for (pat, lo, hi, _, body) ->
    let vlo = eval st env ~trunc:false lo in
    let vhi = eval st env ~trunc:false hi in
    let env' =
      match pat_info pat with
      | Some (name, _) -> (
        match (vlo, vhi) with
        | Iv (l, _), Iv (_, h) -> (name, Iv (l, h)) :: env
        | _ -> (name, native_range) :: env)
      | None -> env
    in
    ignore (eval st env' ~trunc:false body);
    Top
  | Pexp_assert b ->
    ignore (eval st env ~trunc:false b);
    Top
  | Pexp_lazy b ->
    ignore (eval st env ~trunc:false b);
    Top
  | _ -> Top

and eval_cases st env ~trunc ~scrut_v cases =
  List.fold_left
    (fun acc (c : case) ->
      let bound =
        match c.pc_lhs.ppat_desc with
        | Ppat_var { txt; _ } -> [ (txt, scrut_v) ]
        | Ppat_alias (_, { txt; _ }) -> [ (txt, scrut_v) ]
        | _ ->
          (* any other pattern: bind every name to Top *)
          let names = ref [] in
          let it =
            object
              inherit Ast_traverse.iter as super

              method! pattern p =
                (match p.ppat_desc with
                | Ppat_var { txt; _ } -> names := txt :: !names
                | _ -> ());
                super#pattern p
            end
          in
          it#pattern c.pc_lhs;
          List.map (fun n -> (n, Top)) !names
      in
      let env' = bound @ env in
      Option.iter (fun g -> ignore (eval st env' ~trunc:false g)) c.pc_guard;
      let v = eval st env' ~trunc c.pc_rhs in
      match acc with None -> Some v | Some j -> Some (join j v))
    None cases
  |> Option.value ~default:Top

and eval_let st env ~trunc rf vbs cont =
  let env' =
    List.fold_left
      (fun env_acc (vb : value_binding) ->
        match vb.pvb_expr.pexp_desc with
        | Pexp_function _ -> (
          match pat_info vb.pvb_pat with
          | Some (name, _) ->
            register_local st (if rf = Recursive then env_acc else env) name
              vb.pvb_expr;
            env_acc
          | None -> env_acc)
        | _ -> (
          let rhs = eval st env ~trunc:false vb.pvb_expr in
          match pat_info vb.pvb_pat with
          | Some (name, attrs) -> (
            match declared_iv attrs with
            | Some decl ->
              (match (rhs, decl) with
              | Iv (rlo, rhi), Iv (dlo, dhi)
                when Sb.compare rlo dlo < 0 || Sb.compare rhi dhi > 0 ->
                flag st vb.pvb_loc
                  "declared width on %s is narrower than the computed range \
                   [%s, %s]"
                  name (Sb.to_string rlo) (Sb.to_string rhi)
              | _ -> ());
              (name, decl) :: env_acc
            | None -> (name, rhs) :: env_acc)
          | None -> env_acc))
      env vbs
  in
  eval st env' ~trunc cont

and register_local st env name fnexpr =
  (* collect the parameter chain, then analyze the body against the
     declared parameter intervals; recursive self-calls see the
     placeholder (Top return) *)
  let collect env params (e : expression) =
    match e.pexp_desc with
    | Pexp_function (ps, _, fb) ->
      let env, params =
        List.fold_left
          (fun (env, params) p ->
            match p.pparam_desc with
            | Pparam_val (label, _, pat) -> (
              match pat_info pat with
              | Some (pname, attrs) ->
                let decl = declared_iv attrs in
                ( (pname, Option.value decl ~default:Top) :: env,
                  (label, Some pname, decl) :: params )
              | None -> (env, (label, None, None) :: params))
            | Pparam_newtype _ -> (env, params))
          (env, params) ps
      in
      (match fb with
      | Pfunction_body b -> (env, List.rev params, `Body b)
      | Pfunction_cases (cases, _, _) -> (env, List.rev params, `Cases cases))
    | _ -> (env, List.rev params, `Body e)
  in
  let env', params, body = collect env [] fnexpr in
  let l = { l_params = params; l_ret = Top } in
  st.lfns <- (name, l) :: st.lfns;
  let ret =
    match body with
    | `Body b -> eval st env' ~trunc:false b
    | `Cases cases -> eval_cases st env' ~trunc:false ~scrut_v:Top cases
  in
  l.l_ret <- ret

and const_value st path =
  match builtin_const path with
  | Some v -> v
  | None -> (
    let path = expand_alias st path in
    let unit_name, name =
      match path with
      | [ x ] -> (st.u.u_name, x)
      | _ -> (
        let mods, tail = Callgraph.split_path path in
        match (List.rev mods, tail) with
        | last :: _, _ :: _ -> (last, String.concat "." tail)
        | _ -> ("", ""))
    in
    if unit_name = "" then Top
    else
      let key = unit_name ^ "." ^ name in
      match Hashtbl.find_opt st.consts key with
      | Some v -> v
      | None ->
        let v =
          match Hashtbl.find_opt st.g.Callgraph.units unit_name with
          | None -> Top
          | Some u -> (
            match Hashtbl.find_opt u.u_consts name with
            | None -> Top
            | Some expr ->
              Hashtbl.add st.consts key Top (* cycle guard *);
              let saved_u = st.u in
              st.u <- u;
              let v =
                muted st (fun () -> eval st [] ~trunc:false expr)
              in
              st.u <- saved_u;
              v)
        in
        Hashtbl.replace st.consts key v;
        v)

and const_array_range st path =
  let path = expand_alias st path in
  let unit_name, name =
    match path with
    | [ x ] -> (st.u.u_name, x)
    | _ -> (
      let mods, tail = Callgraph.split_path path in
      match (List.rev mods, tail) with
      | last :: _, _ :: _ -> (last, String.concat "." tail)
      | _ -> ("", ""))
  in
  if unit_name = "" then None
  else
    let key = unit_name ^ "." ^ name in
    match Hashtbl.find_opt st.const_arrays key with
    | Some v -> Some v
    | None -> (
      match Hashtbl.find_opt st.g.Callgraph.units unit_name with
      | None -> None
      | Some u -> (
        match Hashtbl.find_opt u.u_consts name with
        | Some { pexp_desc = Pexp_array (e0 :: rest); _ } ->
          let lit e =
            match e.pexp_desc with
            | Pexp_constant (Pconst_integer (s, _)) -> int_literal s
            | Pexp_apply
                ( { pexp_desc = Pexp_ident { txt = Lident "~-"; _ }; _ },
                  [ (_, { pexp_desc = Pexp_constant (Pconst_integer (s, _)); _ }) ]
                ) ->
              Option.map Sb.neg (int_literal s)
            | _ -> None
          in
          let v =
            match lit e0 with
            | None -> Top
            | Some x0 ->
              List.fold_left
                (fun acc e ->
                  match (acc, lit e) with
                  | Iv (lo, hi), Some x -> Iv (Sb.min lo x, Sb.max hi x)
                  | _ -> Top)
                (exact x0) rest
          in
          Hashtbl.replace st.const_arrays key v;
          Some v
        | _ -> None))

and refine st env cond pol : env =
  let comparison l r op =
    let var e =
      match e.pexp_desc with
      | Pexp_ident { txt = Lident x; _ } when List.mem_assoc x env -> Some x
      | Pexp_ident { txt = Lident x; _ } -> Some x
      | _ -> None
    in
    let bound e = muted st (fun () -> eval st env ~trunc:false e) in
    let constrain x lo_opt hi_opt =
      let cur =
        match List.assoc_opt x env with
        | Some (Iv (l, h)) -> (l, h)
        | _ -> (native_lo, native_hi)
      in
      let l = match lo_opt with Some l -> Sb.max l (fst cur) | None -> fst cur in
      let h = match hi_opt with Some h -> Sb.min h (snd cur) | None -> snd cur in
      let l, h = if Sb.compare l h > 0 then (l, l) (* dead branch *) else (l, h) in
      (x, Iv (l, h)) :: List.remove_assoc x env
    in
    (* normalize to x OP e *)
    let apply x e op =
      match bound e with
      | Top -> env
      | Iv (elo, ehi) -> (
        let p1 = Sb.add elo Sb.one and m1 = Sb.sub ehi Sb.one in
        match (op, pol) with
        | `Lt, true -> constrain x None (Some m1)
        | `Lt, false -> constrain x (Some elo) None
        | `Le, true -> constrain x None (Some ehi)
        | `Le, false -> constrain x (Some p1) None
        | `Gt, true -> constrain x (Some p1) None
        | `Gt, false -> constrain x None (Some ehi)
        | `Ge, true -> constrain x (Some elo) None
        | `Ge, false -> constrain x None (Some m1)
        | `Eq, true -> constrain x (Some elo) (Some ehi)
        | `Eq, false -> env)
    in
    let flip = function `Lt -> `Gt | `Le -> `Ge | `Gt -> `Lt | `Ge -> `Le | `Eq -> `Eq in
    match (var l, var r) with
    | Some x, _ when var r = None || not (List.mem_assoc (Option.value (var r) ~default:"") env)
      -> apply x r op
    | _, Some y -> apply y l (flip op)
    | _ -> env
  in
  match cond.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Lident name; _ }; _ }, args)
    -> (
    match (name, args) with
    | "&&", [ (_, a); (_, b) ] ->
      if pol then refine st (refine st env a true) b true else env
    | "||", [ (_, a); (_, b) ] ->
      if pol then env else refine st (refine st env a false) b false
    | "not", [ (_, a) ] -> refine st env a (not pol)
    | "<", [ (_, l); (_, r) ] -> comparison l r `Lt
    | "<=", [ (_, l); (_, r) ] -> comparison l r `Le
    | ">", [ (_, l); (_, r) ] -> comparison l r `Gt
    | ">=", [ (_, l); (_, r) ] -> comparison l r `Ge
    | "=", [ (_, l); (_, r) ] -> comparison l r `Eq
    | _ -> env)
  | _ -> env

and eval_apply st env ~trunc e head args =
  let loc = e.pexp_loc in
  let arg n = Option.map snd (List.nth_opt args n) in
  let ev ?(tr = false) x = eval st env ~trunc:tr x in
  let ev_all_top () =
    List.iter (fun (_, a) -> ignore (eval st env ~trunc:false a)) args;
    Top
  in
  match Attrs.head_path head with
  | None -> ev_all_top ()
  | Some path0 -> (
    let path = expand_alias st path0 in
    let binop () =
      match (arg 0, arg 1) with
      | Some a, Some b -> Some (a, b)
      | _ -> None
    in
    let name1 = match path with [ x ] | [ "Stdlib"; x ] -> Some x | _ -> None in
    match name1 with
    | Some (("+" | "-" | "*") as op) -> (
      match binop () with
      | None -> ev_all_top ()
      | Some (a, b) -> (
        match (ev a, ev b) with
        | (Top as va), vb | va, (Top as vb) ->
          let alo, ahi = concretize ~i64:false va in
          let blo, bhi = concretize ~i64:false vb in
          arith st loc op alo ahi blo bhi
        | Iv (alo, ahi), Iv (blo, bhi) -> arith st loc op alo ahi blo bhi))
    | Some "~-" -> (
      match arg 0 with
      | Some a -> (
        match ev a with
        | Top -> Top
        | Iv (lo, hi) -> check_native st loc "negation" (Iv (Sb.neg hi, Sb.neg lo)))
      | None -> ev_all_top ())
    | Some "land" -> eval_mask st env ~loc args ~i64:false
    | Some ("lor" | "lxor") -> (
      match binop () with
      | None -> ev_all_top ()
      | Some (a, b) -> bits_or st env ~trunc ~i64:false a b)
    | Some "lsl" -> eval_shift_left st env ~trunc ~loc ~i64:false args
    | Some "lsr" -> (
      match binop () with
      | None -> ev_all_top ()
      | Some (a, b) -> shift_right_logical st env ~loc ~i64:false a b)
    | Some "asr" -> (
      match binop () with
      | None -> ev_all_top ()
      | Some (a, b) -> (
        let va = ev a and vk = muted st (fun () -> eval st env ~trunc:false b) in
        match (va, vk) with
        | Iv (lo, hi), Iv (klo, khi)
          when (not (Sb.is_neg klo)) && Sb.compare khi (Sb.of_int 62) <= 0 -> (
          match (Sb.to_int_opt klo, Sb.to_int_opt khi) with
          | Some kl, Some kh ->
            let l = if Sb.is_neg lo then Sb.shr lo kl else Sb.shr lo kh in
            let h = if Sb.is_neg hi then Sb.shr hi kh else Sb.shr hi kl in
            Iv (l, h)
          | _ -> Top)
        | _ -> Top))
    | Some ("/" | "mod") -> (
      match binop () with
      | None -> ev_all_top ()
      | Some (a, b) -> (
        let va = ev a and vb = ev b in
        match (va, vb, exact_const vb) with
        | Iv (lo, hi), _, Some c when Sb.compare c Sb.zero > 0 -> (
          match name1 with
          | Some "/" when not (Sb.is_neg lo) ->
            Iv (Sb.div_pos lo (snd c), Sb.div_pos hi (snd c))
          | Some "mod" ->
            let cm1 = Sb.sub c Sb.one in
            if Sb.is_neg lo then Iv (Sb.neg cm1, cm1) else Iv (Sb.zero, Sb.min hi cm1)
          | _ -> Top)
        | _ -> Top))
    | Some ("=" | "<" | ">" | "<=" | ">=" | "<>" | "==" | "!=" | "&&" | "||") ->
      List.iter (fun (_, a) -> ignore (eval st env ~trunc:false a)) args;
      bool_v
    | Some "not" ->
      List.iter (fun (_, a) -> ignore (eval st env ~trunc:false a)) args;
      bool_v
    | Some "min" -> (
      match binop () with
      | None -> ev_all_top ()
      | Some (a, b) -> (
        match (ev a, ev b) with
        | Iv (la, ha), Iv (lb, hb) -> Iv (Sb.min la lb, Sb.min ha hb)
        | _ -> Top))
    | Some "max" -> (
      match binop () with
      | None -> ev_all_top ()
      | Some (a, b) -> (
        match (ev a, ev b) with
        | Iv (la, ha), Iv (lb, hb) -> Iv (Sb.max la lb, Sb.max ha hb)
        | _ -> Top))
    | Some "abs" -> (
      match arg 0 with
      | Some a -> (
        match ev a with
        | Iv (lo, hi) ->
          let m = Sb.max (Sb.neg lo) hi in
          Iv (Sb.zero, m)
        | Top -> Top)
      | None -> ev_all_top ())
    | Some "succ" -> (
      match arg 0 with
      | Some a -> (
        match ev a with
        | Iv (lo, hi) ->
          check_native st loc "succ"
            (Iv (Sb.add lo Sb.one, Sb.add hi Sb.one))
        | Top -> Top)
      | None -> ev_all_top ())
    | Some "pred" -> (
      match arg 0 with
      | Some a -> (
        match ev a with
        | Iv (lo, hi) ->
          check_native st loc "pred"
            (Iv (Sb.sub lo Sb.one, Sb.sub hi Sb.one))
        | Top -> Top)
      | None -> ev_all_top ())
    | Some "ignore" -> ev_all_top ()
    | _ -> (
      match path with
      | [ "Int64"; op ] | [ "Stdlib"; "Int64"; op ] ->
        eval_int64 st env ~trunc ~loc op args
      | [ "Array"; ("unsafe_get" | "get") ] | [ "Stdlib"; "Array"; ("unsafe_get" | "get") ]
        -> (
        (match arg 1 with
        | Some i -> ignore (eval st env ~trunc:false i)
        | None -> ());
        match arg 0 with
        | Some { pexp_desc = Pexp_ident { txt; _ }; _ } -> (
          match Attrs.flatten_lid txt with
          | Some [ x ] when List.mem_assoc x env -> List.assoc x env
          | Some p -> (
            match const_array_range st p with Some v -> v | None -> Top)
          | None -> Top)
        | _ -> Top)
      | [ "Array"; ("unsafe_set" | "set") ] | [ "Stdlib"; "Array"; ("unsafe_set" | "set") ]
        -> (
        (match arg 1 with
        | Some i -> ignore (eval st env ~trunc:false i)
        | None -> ());
        let stored = Option.map (fun x -> eval st env ~trunc:false x) (arg 2) in
        (match (arg 0, stored) with
        | Some { pexp_desc = Pexp_ident { txt = Lident x; _ }; _ }, Some sv -> (
          match List.assoc_opt x env with
          | Some (Iv (dlo, dhi)) -> (
            match sv with
            | Iv (slo, shi)
              when Sb.compare slo dlo >= 0 && Sb.compare shi dhi <= 0 ->
              ()
            | Iv (slo, shi) ->
              flag st loc
                "store into %s may be [%s, %s], outside its declared element \
                 range [%s, %s]"
                x (Sb.to_string slo) (Sb.to_string shi) (Sb.to_string dlo)
                (Sb.to_string dhi)
            | Top ->
              flag st loc
                "store into %s is not provably within its declared element \
                 range"
                x)
          | _ -> ())
        | _ -> ());
        Top)
      | [ "Array"; "length" ] | [ "Stdlib"; "Array"; "length" ] ->
        ignore (ev_all_top ());
        Iv (Sb.zero, native_hi)
      | _ -> (
        (* local functions, then module-level internal calls *)
        match path with
        | [ f ] when List.mem_assoc f st.lfns ->
          let l = List.assoc f st.lfns in
          check_args st env loc args l.l_params;
          l.l_ret
        | _ -> (
          match Callgraph.resolve st.g st.u path with
          | Callgraph.Fn target
            when Attrs.has Attrs.certified_width target.fn_attrs
                 || Attrs.find_int Attrs.certified_width target.fn_attrs <> None
            ->
            let params = fn_params st target in
            check_args st env loc args params;
            List.iter (fun (_, a) -> ignore (eval st env ~trunc:false a)) args;
            fn_return st target
          | _ -> ev_all_top ()))))

and arith st loc op alo ahi blo bhi =
  let what = Printf.sprintf "( %s )" op in
  match op with
  | "+" -> check_native st loc what (Iv (Sb.add alo blo, Sb.add ahi bhi))
  | "-" -> check_native st loc what (Iv (Sb.sub alo bhi, Sb.sub ahi blo))
  | "*" ->
    let products =
      [ Sb.mul alo blo; Sb.mul alo bhi; Sb.mul ahi blo; Sb.mul ahi bhi ]
    in
    let lo = List.fold_left Sb.min (List.hd products) products in
    let hi = List.fold_left Sb.max (List.hd products) products in
    check_native st loc what (Iv (lo, hi))
  | _ -> Top

and eval_mask st env ~loc args ~i64 =
  let _ = loc in
  let name = if i64 then "Int64.logand" else "land" in
  match args with
  | [ (_, a); (_, b) ] -> (
    let ca = muted st (fun () -> eval st env ~trunc:false a) in
    let cb = muted st (fun () -> eval st env ~trunc:false b) in
    match (exact_const ca, exact_const cb) with
    | _, Some c when not (Sb.is_neg c) ->
      (* the mask forgives bit-transport overflow in the operand *)
      let va = eval st env ~trunc:true a in
      ignore (eval st env ~trunc:false b);
      let hi =
        match va with
        | Iv (lo, h) when not (Sb.is_neg lo) -> Sb.min h c
        | _ -> c
      in
      Iv (Sb.zero, hi)
    | Some c, _ when not (Sb.is_neg c) ->
      ignore (eval st env ~trunc:false a);
      let vb = eval st env ~trunc:true b in
      let hi =
        match vb with
        | Iv (lo, h) when not (Sb.is_neg lo) -> Sb.min h c
        | _ -> c
      in
      Iv (Sb.zero, hi)
    | _ -> (
      let va = eval st env ~trunc:false a in
      let vb = eval st env ~trunc:false b in
      match (va, vb) with
      | Iv (la, ha), Iv (lb, hb)
        when (not (Sb.is_neg la)) && not (Sb.is_neg lb) ->
        Iv (Sb.zero, Sb.min ha hb)
      | _ ->
        ignore name;
        if i64 then i64_range else native_range))
  | _ ->
    List.iter (fun (_, x) -> ignore (eval st env ~trunc:false x)) args;
    Top

and bits_or st env ~trunc ~i64 a b =
  let va = eval st env ~trunc a in
  let vb = eval st env ~trunc b in
  match (va, vb) with
  | Iv (la, ha), Iv (lb, hb) when (not (Sb.is_neg la)) && not (Sb.is_neg lb) ->
    let bits = Stdlib.max (Sb.bits ha) (Sb.bits hb) in
    Iv (Sb.zero, Sb.pred_pow2 bits)
  | _ -> if i64 then i64_range else native_range

and eval_shift_left st env ~trunc ~loc ~i64 args =
  match args with
  | [ (_, a); (_, k) ] -> (
    let vk = muted st (fun () -> eval st env ~trunc:false k) in
    ignore (eval st env ~trunc:false k);
    let va = eval st env ~trunc a in
    match (va, vk) with
    | Iv (lo, hi), Iv (klo, khi)
      when (not (Sb.is_neg klo)) && Sb.compare khi (Sb.of_int 64) <= 0 -> (
      match (Sb.to_int_opt klo, Sb.to_int_opt khi) with
      | Some kl, Some kh ->
        if Sb.is_neg lo then begin
          if not trunc then
            flag st loc "lsl of a possibly-negative value is not certifiable";
          if i64 then i64_range else native_range
        end
        else
          let h = Sb.mul hi (Sb.pow2 kh) in
          let l = Sb.mul lo (Sb.pow2 kl) in
          let v = Iv (l, h) in
          if trunc then v (* a constant mask downstream truncates *)
          else if i64 then check_i64 st loc "Int64.shift_left" v
          else check_native st loc "( lsl )" v
      | _ -> if i64 then i64_range else native_range)
    | _ -> if i64 then i64_range else native_range)
  | _ ->
    List.iter (fun (_, x) -> ignore (eval st env ~trunc:false x)) args;
    Top

and shift_right_logical st env ~loc ~i64 a b =
  let _ = loc in
  let va = eval st env ~trunc:false a in
  let vk = muted st (fun () -> eval st env ~trunc:false b) in
  ignore (eval st env ~trunc:false b);
  let width = if i64 then 64 else 63 in
  let lo, hi =
    match va with
    | Iv (lo, hi) when not (Sb.is_neg lo) -> (lo, hi)
    | _ -> (Sb.zero, Sb.pred_pow2 width)
  in
  match vk with
  | Iv (klo, khi) when (not (Sb.is_neg klo)) && Sb.compare khi (Sb.of_int width) <= 0
    -> (
    match (Sb.to_int_opt klo, Sb.to_int_opt khi) with
    | Some kl, Some kh -> Iv (Sb.shr lo kh, Sb.shr hi kl)
    | _ -> Iv (Sb.zero, Sb.pred_pow2 width))
  | _ -> Iv (Sb.zero, Sb.pred_pow2 width)

and eval_int64 st env ~trunc ~loc op args =
  let binop () =
    match args with [ (_, a); (_, b) ] -> Some (a, b) | _ -> None
  in
  let unop () = match args with [ (_, a) ] -> Some a | _ -> None in
  let ev x = eval st env ~trunc:false x in
  let fallthrough () =
    List.iter (fun (_, x) -> ignore (eval st env ~trunc:false x)) args;
    i64_range
  in
  match op with
  | "add" | "sub" | "mul" -> (
    match binop () with
    | None -> fallthrough ()
    | Some (a, b) -> (
      let sym = match op with "add" -> "+" | "sub" -> "-" | _ -> "*" in
      match (ev a, ev b) with
      | Iv (alo, ahi), Iv (blo, bhi) -> (
        let v =
          match op with
          | "add" -> Iv (Sb.add alo blo, Sb.add ahi bhi)
          | "sub" -> Iv (Sb.sub alo bhi, Sb.sub ahi blo)
          | _ ->
            let ps =
              [ Sb.mul alo blo; Sb.mul alo bhi; Sb.mul ahi blo; Sb.mul ahi bhi ]
            in
            Iv
              ( List.fold_left Sb.min (List.hd ps) ps,
                List.fold_left Sb.max (List.hd ps) ps )
        in
        ignore sym;
        check_i64 st loc (Printf.sprintf "Int64.%s" op) v)
      | _ -> i64_range))
  | "logand" -> eval_mask st env ~loc args ~i64:true
  | "logor" | "logxor" -> (
    match binop () with
    | None -> fallthrough ()
    | Some (a, b) -> bits_or st env ~trunc ~i64:true a b)
  | "shift_left" -> eval_shift_left st env ~trunc ~loc ~i64:true args
  | "shift_right_logical" -> (
    match binop () with
    | None -> fallthrough ()
    | Some (a, b) -> shift_right_logical st env ~loc ~i64:true a b)
  | "shift_right" -> fallthrough ()
  | "of_int" -> (
    match unop () with
    | None -> fallthrough ()
    | Some a -> ev a)
  | "to_int" -> (
    match unop () with
    | None -> fallthrough ()
    | Some a -> (
      match ev a with
      | Iv (lo, hi) -> check_native st loc "Int64.to_int" (Iv (lo, hi))
      | Top -> Top))
  | "of_int32" | "to_int32" | "of_nativeint" | "to_nativeint" | "of_float"
  | "to_float" | "of_string" ->
    fallthrough ()
  | "compare" | "equal" ->
    List.iter (fun (_, x) -> ignore (eval st env ~trunc:false x)) args;
    bool_v
  | _ -> fallthrough ()

and fn_params st (fn : Callgraph.fn) =
  let key = Callgraph.fn_key fn in
  match Hashtbl.find_opt st.params_memo key with
  | Some ps -> ps
  | None ->
    (* only the outermost parameter chain matters; stop at the body *)
    let rec outer acc (e : expression) =
      match e.pexp_desc with
      | Pexp_function (ps, _, fb) -> (
        let acc =
          List.fold_left
            (fun acc p ->
              match p.pparam_desc with
              | Pparam_val (label, _, pat) -> (
                match pat_info pat with
                | Some (name, attrs) ->
                  (label, Some name, declared_iv attrs) :: acc
                | None -> (label, None, None) :: acc)
              | Pparam_newtype _ -> acc)
            acc ps
        in
        match fb with
        | Pfunction_body ({ pexp_desc = Pexp_function _; _ } as b) -> outer acc b
        | _ -> acc)
      | _ -> acc
    in
    let ps = List.rev (outer [] fn.fn_body) in
    Hashtbl.replace st.params_memo key ps;
    ps

and check_args st env loc args params =
  (* match labelled args by label, unlabelled positionally *)
  let unl_params =
    List.filter (fun (l, _, _) -> l = Nolabel) params
  in
  let pos = ref 0 in
  List.iter
    (fun (label, a) ->
      let param =
        match label with
        | Nolabel ->
          let p = List.nth_opt unl_params !pos in
          incr pos;
          p
        | Labelled l | Optional l ->
          List.find_opt
            (fun (pl, _, _) ->
              match pl with
              | Labelled l' | Optional l' -> String.equal l l'
              | Nolabel -> false)
            params
      in
      match param with
      | Some (_, pname, Some (Iv (dlo, dhi))) -> (
        let v = muted st (fun () -> eval st env ~trunc:false a) in
        match v with
        | Iv (alo, ahi)
          when Sb.compare alo dlo >= 0 && Sb.compare ahi dhi <= 0 ->
          ()
        | Iv (alo, ahi) ->
          flag st loc
            "argument%s may be [%s, %s], outside the declared range [%s, %s]"
            (match pname with Some n -> " for " ^ n | None -> "")
            (Sb.to_string alo) (Sb.to_string ahi) (Sb.to_string dlo)
            (Sb.to_string dhi)
        | Top ->
          flag st loc
            "argument%s is not provably within the declared range [%s, %s]"
            (match pname with Some n -> " for " ^ n | None -> "")
            (Sb.to_string dlo) (Sb.to_string dhi))
      | _ -> ())
    args

and fn_return st (fn : Callgraph.fn) =
  let key = Callgraph.fn_key fn in
  match Hashtbl.find_opt st.rets key with
  | Some v -> v
  | None ->
    if Hashtbl.mem st.analyzing key then Top
    else begin
      analyze_fn st fn;
      match Hashtbl.find_opt st.rets key with Some v -> v | None -> Top
    end

and analyze_fn st (fn : Callgraph.fn) =
  let key = Callgraph.fn_key fn in
  if (not (Hashtbl.mem st.rets key)) && not (Hashtbl.mem st.analyzing key) then begin
    Hashtbl.add st.analyzing key ();
    let saved_u = st.u and saved_cap = st.cap_bits and saved_lfns = st.lfns in
    st.u <- Hashtbl.find st.g.Callgraph.units fn.fn_unit;
    st.cap_bits <-
      (match Attrs.find_int Attrs.certified_width fn.fn_attrs with
      | Some n when n >= 8 && n <= 64 -> n
      | _ -> 62);
    st.lfns <- [];
    (* bind declared parameters, walk down to the body *)
    let rec descend env (e : expression) =
      match e.pexp_desc with
      | Pexp_function (ps, _, fb) -> (
        let env =
          List.fold_left
            (fun env p ->
              match p.pparam_desc with
              | Pparam_val (_, _, pat) -> (
                match pat_info pat with
                | Some (name, attrs) ->
                  (name, Option.value (declared_iv attrs) ~default:Top) :: env
                | None -> env)
              | Pparam_newtype _ -> env)
            env ps
        in
        match fb with
        | Pfunction_body b -> descend env b
        | Pfunction_cases (cases, _, _) ->
          eval_cases st env ~trunc:false ~scrut_v:Top cases)
      | _ -> eval st env ~trunc:false e
    in
    let ret = descend [] fn.fn_body in
    Hashtbl.replace st.rets key ret;
    Hashtbl.remove st.analyzing key;
    st.u <- saved_u;
    st.cap_bits <- saved_cap;
    st.lfns <- saved_lfns
  end

(* ------------------------------------------------------------------ *)

let check_graph (sink : Sink.t) (g : Callgraph.t) =
  let st =
    {
      g;
      sink;
      u =
        (match Hashtbl.fold (fun _ u acc -> u :: acc) g.units [] with
        | u :: _ -> u
        | [] -> raise Exit);
      cap_bits = 62;
      mute = false;
      lfns = [];
      consts = Hashtbl.create 64;
      const_arrays = Hashtbl.create 8;
      rets = Hashtbl.create 16;
      params_memo = Hashtbl.create 16;
      analyzing = Hashtbl.create 4;
    }
  in
  Callgraph.all_fns g (fun _ fn ->
      if Attrs.find_int Attrs.certified_width fn.Callgraph.fn_attrs <> None then
        analyze_fn st fn)

let check_graph sink g =
  (* an empty tree has nothing to certify *)
  if Hashtbl.length g.Callgraph.units > 0 then
    try check_graph sink g with Exit -> ()
