(* Rule family: blocking.

   Two contracts, both interprocedural:

   1. A [@lint.no_alloc] kernel must never reach a blocking operation
      at all — no [Mutex.lock], no [Condition.wait], no [Unix.*] I/O,
      no [Domain.join] — directly or through any chain of calls.  A
      digit kernel that can park its domain is not a kernel.  There is
      no annotation escape hatch for this half: blocking work belongs
      outside the kernel.

   2. A *hard*-blocking operation (unbounded I/O, sleeps, joins — not
      mutex acquisition, which the lock-order rule owns, and not
      [Condition.wait], which is only legal on a held mutex anyway)
      must not run while a mutex is held, directly or through a call
      chain, unless the site or callee chain is marked
      [@lint.blocking_ok "reason"].  Holding a lock across I/O turns
      every other client of that lock into a hostage of the peer's
      network behaviour. *)

let rule = Finding.Blocking

let holding locks = String.concat ", " locks

let check_graph (sink : Sink.t) (g : Callgraph.t) =
  Callgraph.all_fns g (fun key fn ->
      let u = Hashtbl.find g.Callgraph.units fn.Callgraph.fn_unit in
      (* 1. kernels reaching any blocking operation *)
      if Attrs.has Attrs.no_alloc fn.fn_attrs then begin
        match Hashtbl.find_opt g.blocks key with
        | None -> ()
        | Some _ ->
          let chain = Callgraph.witness_chain g g.blocks key in
          let loc =
            match Callgraph.witness_loc g.blocks key with
            | Some l -> l
            | None -> fn.fn_loc
          in
          sink.report rule loc
            (Printf.sprintf
               "[@lint.no_alloc] kernel %s can reach a blocking operation \
                (%s); a kernel must never park its domain — hoist the \
                blocking work out of the kernel"
               fn.fn_name
               (String.concat " -> " chain))
      end;
      (* 2a. primitive hard-blocking sites under a held lock *)
      List.iter
        (fun (b : Callgraph.block_site) ->
          if b.b_wait_on = None && b.b_locks <> [] then
            if b.b_suppressed then sink.suppress rule
            else
              sink.report rule b.b_loc
                (Printf.sprintf
                   "%s blocks while holding %s; release the lock around the \
                    I/O or mark the site [@lint.blocking_ok \"<reason>\"]"
                   b.b_what (holding b.b_locks)))
        fn.fn_block_sites;
      (* 2b. calls under a held lock into hard-blocking functions *)
      List.iter
        (fun (c : Callgraph.call) ->
          if c.c_locks <> [] && Classify.hard_blocking c.c_path = None then
            match Callgraph.resolve g u c.c_path with
            | Callgraph.Fn target -> (
              let tkey = Callgraph.fn_key target in
              match Hashtbl.find_opt g.hard_blocks tkey with
              | None -> ()
              | Some _ ->
                if c.c_sup_block then sink.suppress rule
                else
                  let chain = Callgraph.witness_chain g g.hard_blocks tkey in
                  sink.report rule c.c_loc
                    (Printf.sprintf
                       "call to %s may block (%s) while holding %s; release \
                        the lock first or mark the call [@lint.blocking_ok \
                        \"<reason>\"]"
                       (Attrs.path_string c.c_path)
                       (String.concat " -> "
                          (Attrs.path_string c.c_path :: chain))
                       (holding c.c_locks)))
            | Callgraph.Opaque | Callgraph.External -> ())
        fn.fn_calls)
