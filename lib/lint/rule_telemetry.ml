(* Rule family 4: telemetry-gating.

   PR 3's zero-cost-when-disabled contract: on the conversion hot paths
   (manifest [telemetry-dir] directories) every Metrics *recording*
   call — [incr], [add], [observe], [set_gauge], [max_gauge] — must be
   dominated by the one-atomic-load enable check, i.e. sit in the then
   branch of an [if] whose condition consults [*.enabled ()].

   Registration ([counter]/[gauge]/[histogram], module-init time) and
   reads ([value]/[gauge_value], snapshot paths) are not recording and
   are exempt.  [Trace.start]/[Trace.finish] are exempt by
   construction: [Trace.start] performs the enabled check itself and
   returns 0 when telemetry is off, which [finish] re-checks.

   Deliberately ungated sites — the reader tier counters that back the
   always-available [Reader.Fast.stats] contract — carry
   [@lint.always_on "reason"]. *)

open Ppxlib

let rule = Finding.Telemetry_gate

let recording = [ "incr"; "add"; "observe"; "set_gauge"; "max_gauge" ]

let is_recording_head path =
  List.mem "Metrics" path
  && match Attrs.last path with Some l -> List.mem l recording | None -> false

(* Does this condition consult the enable gate?  Matches
   [Telemetry.Metrics.enabled ()], [Metrics.enabled ()],
   [Telemetry.enabled ()] anywhere in the condition (so [e && gate]
   compositions count). *)
let consults_enabled cond =
  let found = ref false in
  let scanner =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_ident { txt; _ } -> (
          match Attrs.flatten_lid txt with
          | Some path when Attrs.last path = Some "enabled" -> found := true
          | _ -> ())
        | _ -> ());
        super#expression e
    end
  in
  scanner#expression cond;
  !found

let advice =
  "guard it with [if Telemetry.Metrics.enabled () then ...] or annotate \
   [@lint.always_on \"<reason>\"]"

let check (sink : Sink.t) str =
  let gated = ref false in
  let deliver = ref `Report in
  let hit loc path =
    if not !gated then
      match !deliver with
      | `Report ->
        sink.report rule loc
          (Printf.sprintf
             "%s records outside the telemetry enable gate; %s"
             (Attrs.path_string path) advice)
      | `Suppress -> sink.suppress rule
  in
  let visitor =
    object (self)
      inherit Ast_traverse.iter as super

      method scoped ~g ~d f =
        let saved_g = !gated and saved_d = !deliver in
        gated := g;
        deliver := d;
        f ();
        gated := saved_g;
        deliver := saved_d

      method! expression e =
        let d =
          if Attrs.has Attrs.always_on e.pexp_attributes then `Suppress
          else !deliver
        in
        self#scoped ~g:!gated ~d (fun () ->
            match e.pexp_desc with
            | Pexp_ifthenelse (cond, then_, else_) ->
              self#expression cond;
              self#scoped ~g:(!gated || consults_enabled cond) ~d:!deliver
                (fun () -> self#expression then_);
              Option.iter self#expression else_
            | Pexp_apply (head, args) -> (
              match Attrs.head_path head with
              | Some path when is_recording_head path ->
                hit e.pexp_loc path;
                List.iter (fun (_, a) -> self#expression a) args
              | _ -> super#expression e)
            | _ -> super#expression e)

      method! value_binding vb =
        if Attrs.has Attrs.always_on vb.pvb_attributes then
          self#scoped ~g:!gated ~d:`Suppress (fun () -> super#value_binding vb)
        else super#value_binding vb
    end
  in
  visitor#structure str
