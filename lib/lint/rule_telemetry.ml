(* Rule family 4: telemetry-gating.

   PR 3's zero-cost-when-disabled contract: on the conversion hot paths
   (manifest [telemetry-dir] directories) every Metrics *recording*
   call — [incr], [add], [observe], [set_gauge], [max_gauge] — must be
   dominated by the one-atomic-load enable check, i.e. sit in the then
   branch of an [if] whose condition consults [*.enabled ()].

   Registration ([counter]/[gauge]/[histogram], module-init time) and
   reads ([value]/[gauge_value], snapshot paths) are not recording and
   are exempt.  [Trace.start]/[Trace.finish] are exempt by
   construction: [Trace.start] performs the enabled check itself and
   returns 0 when telemetry is off, which [finish] re-checks.

   [Flight.record] is recording too: the call is internally gated, but
   its [detail] argument is almost always a [Printf.sprintf] that
   allocates before the gate is consulted, so hot-path sites must wrap
   the whole call in [if Telemetry.Flight.enabled () then ...].

   The family also checks span pairing: a top-level definition that
   calls [Trace.start] without [Trace.finish] leaks an open span (the
   stage histogram never observes it), and a [finish] without a [start]
   observes a token from someone else's clock — both are flagged unless
   the binding carries [@lint.always_on "reason"].

   Deliberately ungated sites — the reader tier counters that back the
   always-available [Reader.Fast.stats] contract — carry
   [@lint.always_on "reason"]. *)

open Ppxlib

let rule = Finding.Telemetry_gate

let recording = [ "incr"; "add"; "observe"; "observe_ex"; "set_gauge"; "max_gauge" ]

let is_metrics_recording path =
  List.mem "Metrics" path
  && match Attrs.last path with Some l -> List.mem l recording | None -> false

let is_flight_recording path =
  List.mem "Flight" path && Attrs.last path = Some "record"

let is_recording_head path =
  is_metrics_recording path || is_flight_recording path

(* Does this condition consult the enable gate?  Matches
   [Telemetry.Metrics.enabled ()], [Metrics.enabled ()],
   [Telemetry.enabled ()] anywhere in the condition (so [e && gate]
   compositions count). *)
let consults_enabled cond =
  let found = ref false in
  let scanner =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_ident { txt; _ } -> (
          match Attrs.flatten_lid txt with
          | Some path when Attrs.last path = Some "enabled" -> found := true
          | _ -> ())
        | _ -> ());
        super#expression e
    end
  in
  scanner#expression cond;
  !found

let advice =
  "guard it with [if Telemetry.Metrics.enabled () then ...] or annotate \
   [@lint.always_on \"<reason>\"]"

(* Span pairing, per top-level value binding.  Purely syntactic and
   deliberately coarse: a definition that [start]s must also [finish]
   (any stage, any count) and vice versa.  Helpers that intentionally
   hold a token across definitions carry [@lint.always_on]. *)
let count_spans expr =
  let starts = ref 0 and finishes = ref 0 in
  let scanner =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_apply (head, _) -> (
          match Attrs.head_path head with
          | Some path when List.mem "Trace" path -> (
            match Attrs.last path with
            | Some "start" -> incr starts
            | Some "finish" -> incr finishes
            | _ -> ())
          | _ -> ())
        | _ -> ());
        super#expression e
    end
  in
  scanner#expression expr;
  (!starts, !finishes)

let check_span_pairing (sink : Sink.t) str =
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            let starts, finishes = count_spans vb.pvb_expr in
            if (starts > 0) <> (finishes > 0) then
              if Attrs.has Attrs.always_on vb.pvb_attributes then
                sink.suppress rule
              else
                sink.report rule vb.pvb_loc
                  (Printf.sprintf
                     "unpaired span: %d Trace.start against %d Trace.finish \
                      in this definition; a started span must be finished \
                      (or the binding annotated [@lint.always_on \
                      \"<reason>\"])"
                     starts finishes))
          vbs
      | _ -> ())
    str

let check (sink : Sink.t) str =
  let gated = ref false in
  let deliver = ref `Report in
  let hit loc path =
    if not !gated then
      match !deliver with
      | `Report ->
        sink.report rule loc
          (Printf.sprintf
             "%s records outside the telemetry enable gate; %s"
             (Attrs.path_string path) advice)
      | `Suppress -> sink.suppress rule
  in
  let visitor =
    object (self)
      inherit Ast_traverse.iter as super

      method scoped ~g ~d f =
        let saved_g = !gated and saved_d = !deliver in
        gated := g;
        deliver := d;
        f ();
        gated := saved_g;
        deliver := saved_d

      method! expression e =
        let d =
          if Attrs.has Attrs.always_on e.pexp_attributes then `Suppress
          else !deliver
        in
        self#scoped ~g:!gated ~d (fun () ->
            match e.pexp_desc with
            | Pexp_ifthenelse (cond, then_, else_) ->
              self#expression cond;
              self#scoped ~g:(!gated || consults_enabled cond) ~d:!deliver
                (fun () -> self#expression then_);
              Option.iter self#expression else_
            | Pexp_apply (head, args) -> (
              match Attrs.head_path head with
              | Some path when is_recording_head path ->
                hit e.pexp_loc path;
                List.iter (fun (_, a) -> self#expression a) args
              | _ -> super#expression e)
            | _ -> super#expression e)

      method! value_binding vb =
        if Attrs.has Attrs.always_on vb.pvb_attributes then
          self#scoped ~g:!gated ~d:`Suppress (fun () -> super#value_binding vb)
        else super#value_binding vb
    end
  in
  visitor#structure str;
  check_span_pairing sink str
