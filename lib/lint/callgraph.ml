(* The whole-program call graph.

   Every file is parsed once; each compilation unit contributes a table
   of module-level functions keyed by their (possibly submodule-dotted)
   name.  Calls are resolved purely syntactically:

   - an unqualified head resolves to a module-level function of the
     same unit (locally [let]-bound names shadow and are skipped — the
     facts inside a local function's body are already attributed to the
     enclosing module-level function, since the local may run whenever
     it does);
   - a qualified head [A.B.f] is resolved by trying the last module
     component as a unit name ([B] -> b.ml, value [f]), then the first
     component as a unit with a submodule path ([A] -> a.ml, value
     [B.f]).  [module X = A.B] aliases are expanded first, and [open]ed
     modules are tried for unqualified heads;
   - a head whose first module component names a known unit but whose
     value cannot be found is [Opaque] — the conservative
     unknown-callee answer; anything else is [External] (stdlib or
     another library, classified by the per-site tables instead).

   While walking each function body the builder records, per call
   site, the lexical context the interprocedural rules need: whether
   the site is under an exception handler, under a suppressing
   annotation scope, and which mutexes are held.  Lock tracking is
   branch-aware: the branches of an [if]/[match] are each walked from
   the entry lock multiset and the continuation resumes from their
   intersection (a lock released on every path is released; a lock
   released on only some paths is conservatively dropped as well,
   which under-approximates held sets but never invents a hold).

   On top of the per-function facts the builder runs three Kleene
   fixpoints — [may_raise], [blocks] (any blocking operation,
   including mutex acquisition, for the no-alloc kernels) and
   [hard_blocks] (unbounded I/O-style blocking only, for the
   blocking-under-lock rule) — plus the transitive lock-acquisition
   set used by the lock-order pass. *)

open Ppxlib

type call = {
  c_loc : Location.t;
  c_path : string list;  (** alias-expanded head path *)
  c_guarded : bool;  (** under try/with, Error.catch, or match-exception *)
  c_sup_exn : bool;  (** under a [@lint.can_raise] scope *)
  c_sup_alloc : bool;  (** under a [@lint.alloc_ok] scope *)
  c_sup_block : bool;  (** under a [@lint.blocking_ok] scope *)
  c_locks : string list;  (** mutexes held at the site, outermost first *)
}

type raise_site = {
  r_loc : Location.t;
  r_what : string;
  r_guarded : bool;
  r_suppressed : bool;
}

type block_site = {
  b_loc : Location.t;
  b_what : string;
  b_wait_on : string option;  (** [Some m] for [Condition.wait _ m] *)
  b_locks : string list;
  b_suppressed : bool;
}

type acquire = { a_lock : string; a_loc : Location.t; a_held : string list }

type fn = {
  fn_unit : string;
  fn_name : string;  (** dotted within the unit, e.g. ["Sub.f"] *)
  fn_file : string;
  fn_loc : Location.t;
  fn_attrs : attributes;
  fn_body : expression;  (** the whole binding RHS, parameter chain included *)
  fn_calls : call list;
  fn_raises : raise_site list;
  fn_block_sites : block_site list;
  fn_acquires : acquire list;
}

type unit_info = {
  u_name : string;
  u_file : string;
  u_aliases : (string * string list) list;
  u_opens : string list list;
  u_fns : (string, fn) Hashtbl.t;
  u_consts : (string, expression) Hashtbl.t;
      (** module-level non-function bindings, for the width pass *)
}

type resolution = Fn of fn | Opaque | External

(* A raise/blocking witness: either a primitive site in this very
   function, or a call that reaches one transitively. *)
type 'a witness = Site of Location.t * 'a | Via of call * string (* fn key *)

type t = {
  units : (string, unit_info) Hashtbl.t;
  fn_keys : string list;  (** all "Unit.name" keys, deterministic order *)
  lock_order_attrs : (string * string) list;
      (** [@lint.lock_order "a<b"] declarations found on bindings *)
  may_raise : (string, string witness) Hashtbl.t;
  blocks : (string, string witness) Hashtbl.t;
  hard_blocks : (string, string witness) Hashtbl.t;
  acq_sets : (string, string list) Hashtbl.t;
}

let fn_key fn = fn.fn_unit ^ "." ^ fn.fn_name

let unit_of_filename file =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename file))

(* ------------------------------------------------------------------ *)
(* Lock names *)

(* A mutex argument rendered as written — [c.m], [t.core.m],
   [dump_lock] — prefixed by the lowercased unit for cross-module
   identity.  Aliased bindings ([let c = t.core]) render differently
   from the path they alias; the rule docs call this out as an
   under-approximation. *)
let rec render_lock_expr (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
    match Attrs.flatten_lid txt with
    | Some p -> Some (String.concat "." p)
    | None -> None)
  | Pexp_field (base, { txt; _ }) -> (
    match (render_lock_expr base, Attrs.flatten_lid txt) with
    | Some b, Some p -> Some (b ^ "." ^ String.concat "." p)
    | _ -> None)
  | _ -> None

let lock_name ~unit_ e =
  match render_lock_expr e with
  | Some s -> String.lowercase_ascii unit_ ^ ":" ^ s
  | None -> String.lowercase_ascii unit_ ^ ":<expr>"

(* ------------------------------------------------------------------ *)
(* Building one unit *)

type ctx = {
  guarded : bool;
  sup_exn : bool;
  sup_alloc : bool;
  sup_block : bool;
  locals : string list;
}

type acc = {
  mutable calls : call list;
  mutable raises : raise_site list;
  mutable block_sites : block_site list;
  mutable acquires : acquire list;
}
[@@lint.domain_safe
  "per-function scratch of a single-domain analysis run, never shared"]

let is_module_component s =
  String.length s > 0 && s.[0] >= 'A' && s.[0] <= 'Z'

let pattern_names p =
  let names = ref [] in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! pattern p =
        (match p.ppat_desc with
        | Ppat_var { txt; _ } -> names := txt :: !names
        | _ -> ());
        super#pattern p
    end
  in
  it#pattern p;
  !names

let case_has_exception_pattern (c : case) =
  let found = ref false in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! pattern p =
        (match p.ppat_desc with Ppat_exception _ -> found := true | _ -> ());
        super#pattern p
    end
  in
  it#pattern c.pc_lhs;
  !found

let remove_last_occurrence x l =
  let rec remove_first = function
    | [] -> []
    | y :: tl -> if y = x then tl else y :: remove_first tl
  in
  List.rev (remove_first (List.rev l))

let intersect_locks a b = List.filter (fun x -> List.mem x b) a

(* The per-function fact walker.  Returns the lock multiset after the
   expression; records calls/raises/blocking/acquisitions in [acc].
   [attrs0] is the binding's own attribute list, so a
   [@@lint.can_raise] / [@@lint.alloc_ok] / [@@lint.blocking_ok] on
   the function scopes its whole body.  [local_catchers] is the set of
   same-unit forwarding catchers ([let guarded f = Result.join
   (Error.catch f)]): applying one guards its arguments exactly like
   [Error.catch] itself. *)
let walk_fn ~unit_ ~aliases ~local_catchers ~acc ~attrs0 body0 =
  let is_catcher path =
    Classify.is_catcher path
    || match path with [ n ] -> List.mem n local_catchers | _ -> false
  in
  let expand_alias path =
    match path with
    | m :: rest when is_module_component m -> (
      match List.assoc_opt m aliases with
      | Some target -> target @ rest
      | None -> path)
    | _ -> path
  in
  let scoped_ctx ctx attrs =
    let ctx =
      if Attrs.has Attrs.can_raise attrs then { ctx with sup_exn = true } else ctx
    in
    let ctx =
      if Attrs.has Attrs.alloc_ok attrs then { ctx with sup_alloc = true } else ctx
    in
    if Attrs.has Attrs.blocking_ok attrs then { ctx with sup_block = true }
    else ctx
  in
  let record_call ctx locks loc path =
    acc.calls <-
      {
        c_loc = loc;
        c_path = path;
        c_guarded = ctx.guarded;
        c_sup_exn = ctx.sup_exn;
        c_sup_alloc = ctx.sup_alloc;
        c_sup_block = ctx.sup_block;
        c_locks = locks;
      }
      :: acc.calls
  in
  let record_raise ctx loc what =
    acc.raises <-
      {
        r_loc = loc;
        r_what = what;
        r_guarded = ctx.guarded;
        r_suppressed = ctx.sup_exn;
      }
      :: acc.raises
  in
  let record_block ctx locks loc what wait_on =
    acc.block_sites <-
      {
        b_loc = loc;
        b_what = what;
        b_wait_on = wait_on;
        b_locks = locks;
        b_suppressed = ctx.sup_block;
      }
      :: acc.block_sites
  in
  let rec walk ctx locks (e : expression) =
    let ctx = scoped_ctx ctx e.pexp_attributes in
    match e.pexp_desc with
    | Pexp_ident _ | Pexp_constant _ | Pexp_unreachable | Pexp_extension _
    | Pexp_new _ | Pexp_override _ | Pexp_object _ | Pexp_pack _ ->
      locks
    | Pexp_let (_, vbs, cont) ->
      let locks =
        List.fold_left
          (fun locks vb -> walk ctx locks vb.pvb_expr)
          locks vbs
      in
      let bound = List.concat_map (fun vb -> pattern_names vb.pvb_pat) vbs in
      walk { ctx with locals = bound @ ctx.locals } locks cont
    | Pexp_function (params, _, fb) ->
      (* a closure body runs with whatever the creator held when it is
         invoked in place (the common immediate-callback shape); walk
         it in the current context *)
      let bound =
        List.concat_map
          (fun p ->
            match p.pparam_desc with
            | Pparam_val (_, _, pat) -> pattern_names pat
            | Pparam_newtype _ -> [])
          params
      in
      let ctx = { ctx with locals = bound @ ctx.locals } in
      (match fb with
      | Pfunction_body b -> ignore (walk ctx locks b)
      | Pfunction_cases (cases, _, _) ->
        List.iter (fun c -> ignore (walk_case ctx locks c)) cases);
      locks
    | Pexp_apply (head, args) -> walk_apply ctx locks e head args
    | Pexp_match (scrut, cases) ->
      let guarded_scrut = List.exists case_has_exception_pattern cases in
      let locks' =
        walk { ctx with guarded = ctx.guarded || guarded_scrut } locks scrut
      in
      join_cases ctx locks' cases
    | Pexp_try (body, cases) ->
      let locks' = walk { ctx with guarded = true } locks body in
      ignore (join_cases ctx locks cases);
      locks'
    | Pexp_tuple es -> List.fold_left (walk ctx) locks es
    | Pexp_construct (_, arg) | Pexp_variant (_, arg) -> (
      match arg with Some a -> walk ctx locks a | None -> locks)
    | Pexp_record (fields, base) ->
      let locks =
        match base with Some b -> walk ctx locks b | None -> locks
      in
      List.fold_left (fun locks (_, v) -> walk ctx locks v) locks fields
    | Pexp_field (b, _) -> walk ctx locks b
    | Pexp_setfield (b, _, v) -> walk ctx (walk ctx locks b) v
    | Pexp_array es -> List.fold_left (walk ctx) locks es
    | Pexp_ifthenelse (c, t, f) ->
      let locks0 = walk ctx locks c in
      let lt = walk ctx locks0 t in
      let lf = match f with Some f -> walk ctx locks0 f | None -> locks0 in
      intersect_locks lt lf
    | Pexp_sequence (a, b) -> walk ctx (walk ctx locks a) b
    | Pexp_while (c, body) ->
      ignore (walk ctx locks c);
      ignore (walk ctx locks body);
      locks
    | Pexp_for (pat, lo, hi, _, body) ->
      let locks = walk ctx (walk ctx locks lo) hi in
      ignore (walk { ctx with locals = pattern_names pat @ ctx.locals } locks body);
      locks
    | Pexp_constraint (b, _) | Pexp_coerce (b, _, _) | Pexp_lazy b
    | Pexp_poly (b, _) | Pexp_newtype (_, b) | Pexp_assert b
    | Pexp_setinstvar (_, b) | Pexp_send (b, _) ->
      (match e.pexp_desc with
      | Pexp_assert _ -> record_raise ctx e.pexp_loc "assert raises Assert_failure"
      | _ -> ());
      walk ctx locks b
    | Pexp_letmodule (name, me, cont) ->
      let _ = name and _ = me in
      walk ctx locks cont
    | Pexp_letexception (_, cont) -> walk ctx locks cont
    | Pexp_open (_, cont) -> walk ctx locks cont
    | Pexp_letop { let_; ands; body; _ } ->
      let locks =
        List.fold_left
          (fun locks (op : binding_op) -> walk ctx locks op.pbop_exp)
          (walk ctx locks let_.pbop_exp)
          ands
      in
      ignore (walk ctx locks body);
      locks
  and walk_case ctx locks (c : case) =
    let ctx = { ctx with locals = pattern_names c.pc_lhs @ ctx.locals } in
    let locks =
      match c.pc_guard with Some g -> walk ctx locks g | None -> locks
    in
    walk ctx locks c.pc_rhs
  and join_cases ctx locks cases =
    match cases with
    | [] -> locks
    | _ ->
      List.fold_left
        (fun joined c ->
          let l = walk_case ctx locks c in
          match joined with
          | None -> Some l
          | Some j -> Some (intersect_locks j l))
        None cases
      |> Option.value ~default:locks
  and walk_apply ctx locks e head args =
    match Attrs.head_path head with
    | None ->
      let locks = walk ctx locks head in
      List.fold_left (fun locks (_, a) -> walk ctx locks a) locks args
    | Some path0 -> (
      let path = expand_alias path0 in
      let arg n = List.nth_opt args n |> Option.map snd in
      match () with
      | _ when Classify.is_mutex_lock path -> (
        match arg 0 with
        | Some m ->
          let name = lock_name ~unit_ m in
          acc.acquires <-
            { a_lock = name; a_loc = e.pexp_loc; a_held = locks } :: acc.acquires;
          locks @ [ name ]
        | None -> locks)
      | _ when Classify.is_mutex_unlock path -> (
        match arg 0 with
        | Some m -> remove_last_occurrence (lock_name ~unit_ m) locks
        | None -> locks)
      | _ when Classify.is_mutex_protect path -> (
        match (arg 0, arg 1) with
        | Some m, Some f ->
          let name = lock_name ~unit_ m in
          acc.acquires <-
            { a_lock = name; a_loc = e.pexp_loc; a_held = locks } :: acc.acquires;
          ignore (walk ctx (locks @ [ name ]) f);
          locks
        | _ ->
          List.fold_left (fun locks (_, a) -> walk ctx locks a) locks args)
      | _ when Classify.is_condition_wait path ->
        let wait_on = Option.bind (arg 1) (fun m -> Some (lock_name ~unit_ m)) in
        record_block ctx locks e.pexp_loc "Condition.wait" wait_on;
        List.fold_left (fun locks (_, a) -> walk ctx locks a) locks args
      | _ when Attrs.ends_with ~suffix:[ "Fun"; "protect" ] path ->
        (* body first, then the ~finally thunk *)
        let finally, rest =
          List.partition (fun (l, _) -> l = Labelled "finally") args
        in
        let locks' =
          List.fold_left (fun locks (_, a) -> walk ctx locks a) locks rest
        in
        List.fold_left (fun locks (_, a) -> walk ctx locks a) locks' finally
      | _ ->
        (match Classify.hard_blocking path with
        | Some what -> record_block ctx locks e.pexp_loc what None
        | None -> ());
        (if is_catcher path then ()
         else
           match path with
           | [ name ] when List.mem name ctx.locals ->
             (* locally bound: its body's facts are already recorded *)
             ()
           | _ -> (
             match Classify.raiser path0 with
             | Some what when List.length path0 = 1 || List.length path0 = 2 ->
               (* a primitive raise site; also record the call so the
                  alloc pass can resolve [*_exn] internals *)
               record_raise ctx e.pexp_loc what;
               record_call ctx locks e.pexp_loc path
             | _ -> record_call ctx locks e.pexp_loc path));
        let ctx_args =
          if is_catcher path then { ctx with guarded = true } else ctx
        in
        List.fold_left (fun locks (_, a) -> walk ctx_args locks a) locks args)
  in
  let ctx0 =
    scoped_ctx
      { guarded = false; sup_exn = false; sup_alloc = false; sup_block = false;
        locals = [] }
      attrs0
  in
  ignore (walk ctx0 [] body0)

(* A forwarding catcher: a function that applies a known catcher to
   one of its own parameters ([let guarded f = Result.join (Error.catch
   f)]).  Call sites that pass a closure to it are guarded the same
   way a direct [Error.catch (fun () -> ...)] is. *)
let is_forwarding_catcher (vb : value_binding) =
  match vb.pvb_expr.pexp_desc with
  | Pexp_function (params, _, Pfunction_body body) ->
    let pnames =
      List.concat_map
        (fun p ->
          match p.pparam_desc with
          | Pparam_val (_, _, pat) -> pattern_names pat
          | Pparam_newtype _ -> [])
        params
    in
    pnames <> []
    &&
    let found = ref false in
    let it =
      object
        inherit Ast_traverse.iter as super

        method! expression e =
          (match e.pexp_desc with
          | Pexp_apply (head, args) -> (
            match Attrs.head_path head with
            | Some p when Classify.is_catcher p ->
              if
                List.exists
                  (fun (_, a) ->
                    match a.pexp_desc with
                    | Pexp_ident { txt = Lident x; _ } -> List.mem x pnames
                    | _ -> false)
                  args
              then found := true
            | _ -> ())
          | _ -> ());
          super#expression e
      end
    in
    it#expression body;
    !found
  | _ -> false

let collect_local_catchers (str : structure) =
  let names = ref [] in
  let rec go str =
    List.iter
      (fun (item : structure_item) ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt; _ } when is_forwarding_catcher vb ->
                names := txt :: !names
              | _ -> ())
            vbs
        | Pstr_module
            { pmb_expr = { pmod_desc = Pmod_structure sub; _ }; _ } ->
          go sub
        | _ -> ())
      str
  in
  go str;
  !names

(* Collect module-level functions, constants, aliases and opens of one
   parsed unit. *)
let build_unit ~file (str : structure) ~lock_order_attrs =
  let unit_ = unit_of_filename file in
  let info =
    {
      u_name = unit_;
      u_file = file;
      u_aliases = [];
      u_opens = [];
      u_fns = Hashtbl.create 32;
      u_consts = Hashtbl.create 32;
    }
  in
  let aliases = ref [] in
  let opens = ref [] in
  let local_catchers = collect_local_catchers str in
  let rec items prefix str =
    List.iter
      (fun (item : structure_item) ->
        match item.pstr_desc with
        | Pstr_module
            { pmb_name = { txt = Some name; _ }; pmb_expr; pmb_attributes = _; _ }
          -> (
          match pmb_expr.pmod_desc with
          | Pmod_ident { txt; _ } -> (
            match Attrs.flatten_lid txt with
            | Some target -> aliases := (name, target) :: !aliases
            | None -> ())
          | Pmod_structure sub ->
            items (prefix @ [ name ]) sub
          | _ -> ())
        | Pstr_open { popen_expr = { pmod_desc = Pmod_ident { txt; _ }; _ }; _ }
          -> (
          match Attrs.flatten_lid txt with
          | Some p -> opens := p :: !opens
          | None -> ())
        | Pstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt = name; _ }
              | Ppat_constraint ({ ppat_desc = Ppat_var { txt = name; _ }; _ }, _)
                -> (
                (match Attrs.find Attrs.lock_order vb.pvb_attributes with
                | Some a -> (
                  match Attrs.string_payload a with
                  | Some s -> (
                    match String.index_opt s '<' with
                    | Some i when i > 0 && i < String.length s - 1 ->
                      lock_order_attrs :=
                        ( String.sub s 0 i,
                          String.sub s (i + 1) (String.length s - i - 1) )
                        :: !lock_order_attrs
                    | _ -> ())
                  | None -> ())
                | None -> ());
                let dotted = String.concat "." (prefix @ [ name ]) in
                match vb.pvb_expr.pexp_desc with
                | Pexp_function _ ->
                  let acc =
                    { calls = []; raises = []; block_sites = []; acquires = [] }
                  in
                  walk_fn ~unit_ ~aliases:!aliases ~local_catchers ~acc
                    ~attrs0:vb.pvb_attributes vb.pvb_expr;
                  Hashtbl.replace info.u_fns dotted
                    {
                      fn_unit = unit_;
                      fn_name = dotted;
                      fn_file = file;
                      fn_loc = vb.pvb_loc;
                      fn_attrs = vb.pvb_attributes;
                      fn_body = vb.pvb_expr;
                      fn_calls = List.rev acc.calls;
                      fn_raises = List.rev acc.raises;
                      fn_block_sites = List.rev acc.block_sites;
                      fn_acquires = List.rev acc.acquires;
                    }
                | _ -> Hashtbl.replace info.u_consts dotted vb.pvb_expr)
              | _ -> ())
            vbs
        | _ -> ())
      str
  in
  items [] str;
  { info with u_aliases = !aliases; u_opens = !opens }

(* ------------------------------------------------------------------ *)
(* Resolution *)

let split_path path =
  let rec go mods = function
    | m :: rest when is_module_component m -> go (m :: mods) rest
    | tail -> (List.rev mods, tail)
  in
  go [] path

let find_fn t unit_name fn_name =
  match Hashtbl.find_opt t.units unit_name with
  | None -> None
  | Some u -> Hashtbl.find_opt u.u_fns fn_name

let resolve t (from_unit : unit_info) path =
  let path =
    match path with
    | m :: rest when is_module_component m -> (
      match List.assoc_opt m from_unit.u_aliases with
      | Some target -> target @ rest
      | None -> path)
    | _ -> path
  in
  let mods, tail = split_path path in
  match (mods, tail) with
  | [], [ v ] -> (
    match Hashtbl.find_opt from_unit.u_fns v with
    | Some fn -> Fn fn
    | None -> (
      (* via an [open M] *)
      let via_open =
        List.find_map
          (fun op ->
            let om, _ = split_path op in
            match List.rev om with
            | last :: _ -> (
              match find_fn t last v with Some fn -> Some fn | None -> None)
            | [] -> None)
          from_unit.u_opens
      in
      match via_open with
      | Some fn -> Fn fn
      | None ->
        if Hashtbl.mem from_unit.u_consts v then Opaque else External))
  | _ :: _, v_tail -> (
    let v = String.concat "." v_tail in
    let last_mod = List.nth mods (List.length mods - 1) in
    let first_mod = List.hd mods in
    match find_fn t last_mod v with
    | Some fn -> Fn fn
    | None -> (
      let sub = String.concat "." (List.tl mods @ v_tail) in
      match if List.length mods > 1 then find_fn t first_mod sub else None with
      | Some fn -> Fn fn
      | None ->
        let known u = Hashtbl.mem t.units u in
        if v_tail <> [] && (known last_mod || known first_mod) then
          (* a known unit but no such function: a module-level constant
             (closure, table) or something we cannot see — the
             conservative unknown-callee answer *)
          Opaque
        else External))
  | [], _ -> External

(* ------------------------------------------------------------------ *)
(* Fixpoints *)

let all_fns t f =
  List.iter
    (fun key ->
      let i = String.index key '.' in
      let unit_name = String.sub key 0 i in
      let fn_name = String.sub key (i + 1) (String.length key - i - 1) in
      match find_fn t unit_name fn_name with
      | Some fn -> f key fn
      | None -> ())
    t.fn_keys

let unit_of t fn = Hashtbl.find t.units fn.fn_unit

(* One generic property fixpoint: [seed fn] gives an optional direct
   witness; a function also has the property if any call matching
   [eligible] resolves to a function that has it. *)
let fixpoint t tbl ~seed ~eligible =
  all_fns t (fun key fn ->
      match seed fn with
      | Some w -> Hashtbl.replace tbl key (Site (fst w, snd w))
      | None -> ());
  let changed = ref true in
  while !changed do
    changed := false;
    all_fns t (fun key fn ->
        if not (Hashtbl.mem tbl key) then
          let u = unit_of t fn in
          let hit =
            List.find_map
              (fun c ->
                if not (eligible c) then None
                else
                  match resolve t u c.c_path with
                  | Fn g ->
                    let gk = fn_key g in
                    if Hashtbl.mem tbl gk then Some (Via (c, gk)) else None
                  | Opaque | External -> None)
              fn.fn_calls
          in
          match hit with
          | Some w ->
            Hashtbl.replace tbl key w;
            changed := true
          | None -> ())
  done

let acq_fixpoint t =
  all_fns t (fun key fn ->
      let own = List.map (fun a -> a.a_lock) fn.fn_acquires in
      Hashtbl.replace t.acq_sets key (List.sort_uniq compare own));
  let changed = ref true in
  while !changed do
    changed := false;
    all_fns t (fun key fn ->
        let u = unit_of t fn in
        let cur = try Hashtbl.find t.acq_sets key with Not_found -> [] in
        let extra =
          List.concat_map
            (fun c ->
              match resolve t u c.c_path with
              | Fn g -> (
                try Hashtbl.find t.acq_sets (fn_key g) with Not_found -> [])
              | Opaque | External -> [])
            fn.fn_calls
        in
        let merged = List.sort_uniq compare (cur @ extra) in
        if List.length merged <> List.length cur then begin
          Hashtbl.replace t.acq_sets key merged;
          changed := true
        end)
  done

let build (sources : (string * structure) list) =
  let units = Hashtbl.create 64 in
  let lock_order_attrs = ref [] in
  List.iter
    (fun (file, str) ->
      let u = build_unit ~file str ~lock_order_attrs in
      (* on a unit-name collision the first parse wins; the repo has
         none, and resolution stays deterministic either way *)
      if not (Hashtbl.mem units u.u_name) then Hashtbl.add units u.u_name u)
    sources;
  let fn_keys =
    Hashtbl.fold
      (fun _ u acc ->
        Hashtbl.fold (fun _ fn acc -> fn_key fn :: acc) u.u_fns acc)
      units []
    |> List.sort_uniq compare
  in
  let t =
    {
      units;
      fn_keys;
      lock_order_attrs = !lock_order_attrs;
      may_raise = Hashtbl.create 64;
      blocks = Hashtbl.create 64;
      hard_blocks = Hashtbl.create 64;
      acq_sets = Hashtbl.create 64;
    }
  in
  (* may_raise: an unguarded, unsuppressed raise site, or a declared
     [@lint.can_raise], or an unguarded call to a may_raise function *)
  fixpoint t t.may_raise
    ~seed:(fun fn ->
      if Attrs.has Attrs.can_raise fn.fn_attrs then
        Some (fn.fn_loc, "declared [@lint.can_raise]")
      else
        List.find_map
          (fun r ->
            if r.r_guarded || r.r_suppressed then None
            else Some (r.r_loc, r.r_what))
          fn.fn_raises)
    ~eligible:(fun c ->
      (not (c.c_guarded || c.c_sup_exn))
      && not
           (List.exists
              (fun s -> Attrs.ends_with ~suffix:s c.c_path)
              Classify.sanctioned_suffixes));
  (* blocks: any blocking operation, including mutex acquisition —
     the property a no-alloc kernel must not reach at all *)
  fixpoint t t.blocks
    ~seed:(fun fn ->
      match fn.fn_block_sites with
      | b :: _ -> Some (b.b_loc, b.b_what)
      | [] -> (
        match fn.fn_acquires with
        | a :: _ -> Some (a.a_loc, "Mutex.lock " ^ a.a_lock)
        | [] -> None))
    ~eligible:(fun _ -> true);
  (* hard_blocks: unbounded I/O-style blocking only (suppressible with
     [@lint.blocking_ok]) — the property checked under held locks *)
  fixpoint t t.hard_blocks
    ~seed:(fun fn ->
      List.find_map
        (fun b ->
          if b.b_suppressed || b.b_wait_on <> None then None
          else Some (b.b_loc, b.b_what))
        fn.fn_block_sites)
    ~eligible:(fun c -> not c.c_sup_block);
  acq_fixpoint t;
  t

(* Render the witness chain for a property, e.g.
   "run -> Budget.check -> Unix.read". *)
let witness_chain _t tbl key =
  let rec go key depth =
    if depth > 6 then [ "..." ]
    else
      match Hashtbl.find_opt tbl key with
      | None -> []
      | Some (Site (_, what)) -> [ what ]
      | Some (Via (c, gk)) -> Attrs.path_string c.c_path :: go gk (depth + 1)
  in
  go key 0

let witness_loc tbl key =
  match Hashtbl.find_opt tbl key with
  | Some (Site (loc, _)) -> Some loc
  | Some (Via (c, _)) -> Some c.c_loc
  | None -> None
