(* Rule family 3: no-alloc.

   Functions annotated [@lint.no_alloc] — the Generate word-sized fast
   path and the Scratch in-place kernels (PR 4) — promise a
   steady-state loop that allocates nothing.  The rule rejects
   syntactic allocation sources in their bodies:

   - tuple / record / payload-carrying constructor / variant / array /
     lazy construction;
   - closure creation, except named local functions ([let rec loop =
     fun ... ] directly under the annotated body), whose own bodies are
     still checked — the standard loop-workhorse shape;
   - calls into [Nat.*] (immutable bignums allocate per operation);
   - known allocating stdlib calls (list/array/string/bytes builders,
     [Printf]/[Format], [^], [@]); local [ref] accumulators are
     accepted — the carry/borrow idiom is one word-sized cell per call;
   - float boxing sources ([+.], [Float.of_int], ...): results of float
     arithmetic are boxed whenever stored or returned.

   Cold subtrees (one-time exit-path result construction, geometric
   workspace growth) carry [@lint.alloc_ok "reason"], which exempts the
   whole subtree and counts as a suppression.  Raising paths
   ([invalid_arg] preconditions, [raise Quotient_overflow]) are not
   flagged: failure is cold by construction.  Partial applications are
   approximated by the closure check — a partial application that
   matters syntactically appears as a [fun]. *)

open Ppxlib

let rule = Finding.No_alloc

let float_ops = [ "+."; "-."; "*."; "/."; "**"; "~-." ]

let allocating_suffixes =
  [
    ([ "Array"; "make" ], "Array.make allocates");
    ([ "Array"; "init" ], "Array.init allocates");
    ([ "Array"; "create_float" ], "Array.create_float allocates");
    ([ "Array"; "copy" ], "Array.copy allocates");
    ([ "Array"; "append" ], "Array.append allocates");
    ([ "Array"; "sub" ], "Array.sub allocates");
    ([ "Array"; "of_list" ], "Array.of_list allocates");
    ([ "Array"; "to_list" ], "Array.to_list allocates");
    ([ "Array"; "map" ], "Array.map allocates");
    ([ "Array"; "mapi" ], "Array.mapi allocates");
    ([ "Array"; "concat" ], "Array.concat allocates");
    ([ "Bytes"; "create" ], "Bytes.create allocates");
    ([ "Bytes"; "make" ], "Bytes.make allocates");
    ([ "Bytes"; "copy" ], "Bytes.copy allocates");
    ([ "Bytes"; "sub" ], "Bytes.sub allocates");
    ([ "Bytes"; "of_string" ], "Bytes.of_string allocates");
    ([ "Bytes"; "to_string" ], "Bytes.to_string allocates");
    ([ "String"; "make" ], "String.make allocates");
    ([ "String"; "init" ], "String.init allocates");
    ([ "String"; "sub" ], "String.sub allocates");
    ([ "String"; "concat" ], "String.concat allocates");
    ([ "String"; "cat" ], "String.cat allocates");
    ([ "Hashtbl"; "create" ], "Hashtbl.create allocates");
    ([ "Buffer"; "create" ], "Buffer.create allocates");
    ([ "Buffer"; "contents" ], "Buffer.contents allocates");
  ]

(* Nat accessors that only read existing structure. *)
let nat_accessors = [ "limbs"; "is_zero"; "compare"; "length" ]

let classify_head path =
  match path with
  (* local [ref] accumulators are the kernels' carry/borrow idiom and
     deliberately accepted: one word-sized cell per call, not
     steady-state loop garbage *)
  | [ ("^" | "@") ] | [ "Stdlib"; ("^" | "@") ] ->
    Some
      (if Attrs.ends_with ~suffix:[ "^" ] path then "^ allocates a new string"
       else "@ allocates a new list")
  | [ op ] when List.mem op float_ops ->
    Some (Printf.sprintf "float operator ( %s ) is a boxing source" op)
  | [ ("float_of_int" | "float_of_string") ]
  | [ "Stdlib"; ("float_of_int" | "float_of_string") ] ->
    Some "float conversion is a boxing source"
  | "Float" :: _ | "Stdlib" :: "Float" :: _ ->
    Some
      (Printf.sprintf "%s is a float boxing source" (Attrs.path_string path))
  | ("Nat" :: _ :: _ | "Bignum" :: "Nat" :: _)
    when not
           (match Attrs.last path with
           | Some l -> List.mem l nat_accessors
           | None -> false) ->
    Some
      (Printf.sprintf "%s allocates immutable bignums"
         (Attrs.path_string path))
  | "List" :: _ :: _ | "Stdlib" :: "List" :: _ ->
    Some (Printf.sprintf "%s allocates list cells" (Attrs.path_string path))
  | "Printf" :: _ | "Format" :: _ ->
    Some
      (Printf.sprintf "%s allocates (formatting)" (Attrs.path_string path))
  | _ -> (
    match
      List.find_opt
        (fun (s, _) -> Attrs.ends_with ~suffix:s path)
        allocating_suffixes
    with
    | Some (_, what) -> Some what
    | None -> None)

let advice = "hoist it out of the kernel or mark the cold subtree [@lint.alloc_ok \"<reason>\"]"

(* Scan the body of one [@lint.no_alloc] function. *)
let scan_no_alloc_body (sink : Sink.t) body =
  let deliver = ref `Report in
  let hit loc what =
    match !deliver with
    | `Report ->
      sink.report rule loc
        (Printf.sprintf "%s inside a [@lint.no_alloc] function; %s" what advice)
    | `Suppress -> sink.suppress rule
  in
  let visitor =
    object (self)
      inherit Ast_traverse.iter as super

      method! function_body (fb : function_body) =
        match fb with
        | Pfunction_body e -> self#expression e
        | Pfunction_cases (cases, _, _) -> List.iter self#case cases

      method! expression e =
        if Attrs.has Attrs.alloc_ok e.pexp_attributes then begin
          (* one suppression per exempted subtree: walk it counting *)
          let saved = !deliver in
          deliver := `Suppress;
          self#scan_desc e;
          deliver := saved
        end
        else self#scan_desc e

      method scan_desc e =
        match e.pexp_desc with
        | Pexp_let (_, vbs, cont) ->
          List.iter
            (fun vb ->
              match vb.pvb_expr.pexp_desc with
              (* named local function: the loop-workhorse shape; its
                 one-time closure is allowed, its body is not exempt *)
              | Pexp_function (_, _, fb) -> self#function_body fb
              | _ -> self#expression vb.pvb_expr)
            vbs;
          self#expression cont
        | Pexp_function (_, _, fb) ->
          hit e.pexp_loc "closure construction";
          self#function_body fb
        | Pexp_tuple _ ->
          hit e.pexp_loc "tuple construction";
          super#expression e
        | Pexp_record _ ->
          hit e.pexp_loc "record construction";
          super#expression e
        | Pexp_construct (lid, Some _) ->
          (match Attrs.flatten_lid lid.txt with
          | Some path ->
            hit e.pexp_loc
              (Printf.sprintf "constructor %s carries a payload (allocates)"
                 (Attrs.path_string path))
          | None -> hit e.pexp_loc "constructor application allocates");
          super#expression e
        | Pexp_variant (_, Some _) ->
          hit e.pexp_loc "polymorphic variant with payload allocates";
          super#expression e
        | Pexp_array (_ :: _) ->
          hit e.pexp_loc "array literal allocates";
          super#expression e
        | Pexp_lazy _ ->
          hit e.pexp_loc "lazy suspension allocates";
          super#expression e
        | Pexp_apply (head, args) -> (
          match Attrs.head_path head with
          | Some ([ ("raise" | "raise_notrace" | "failwith" | "invalid_arg") ] as _p)
            ->
            (* raising is cold by construction; don't descend into the
               exception payload either *)
            ignore args
          | Some path -> (
            (match classify_head path with
            | Some what -> hit e.pexp_loc what
            | None -> ());
            List.iter (fun (_, a) -> self#expression a) args)
          | None -> super#expression e)
        | _ -> super#expression e
    end
  in
  match body.pexp_desc with
  (* skip the annotated function's own parameter chain *)
  | Pexp_function (_, _, fb) -> visitor#function_body fb
  | _ -> visitor#expression body

(* Find every [@lint.no_alloc] binding, anywhere in the file. *)
let check (sink : Sink.t) str =
  let finder =
    object
      inherit Ast_traverse.iter as super

      method! value_binding vb =
        if Attrs.has Attrs.no_alloc vb.pvb_attributes then
          scan_no_alloc_body sink vb.pvb_expr
        else super#value_binding vb
    end
  in
  finder#structure str
