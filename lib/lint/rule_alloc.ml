(* Rule family 3: no-alloc.

   Functions annotated [@lint.no_alloc] — the Generate word-sized fast
   path and the Scratch in-place kernels (PR 4) — promise a
   steady-state loop that allocates nothing.  The rule rejects
   syntactic allocation sources in their bodies:

   - tuple / record / payload-carrying constructor / variant / array /
     lazy construction;
   - closure creation, except named local functions ([let rec loop =
     fun ... ] directly under the annotated body), whose own bodies are
     still checked — the standard loop-workhorse shape;
   - calls into [Nat.*] (immutable bignums allocate per operation);
   - known allocating stdlib calls (list/array/string/bytes builders,
     [Printf]/[Format], [^], [@]); local [ref] accumulators are
     accepted — the carry/borrow idiom is one word-sized cell per call;
   - float boxing sources ([+.], [Float.of_int], ...): results of float
     arithmetic are boxed whenever stored or returned.

   Cold subtrees (one-time exit-path result construction, geometric
   workspace growth) carry [@lint.alloc_ok "reason"], which exempts the
   whole subtree and counts as a suppression.  Raising paths
   ([invalid_arg] preconditions, [raise Quotient_overflow]) are not
   flagged: failure is cold by construction.  Partial applications are
   approximated by the closure check — a partial application that
   matters syntactically appears as a [fun]. *)

open Ppxlib

let rule = Finding.No_alloc

let float_ops = [ "+."; "-."; "*."; "/."; "**"; "~-." ]

let allocating_suffixes =
  [
    ([ "Array"; "make" ], "Array.make allocates");
    ([ "Array"; "init" ], "Array.init allocates");
    ([ "Array"; "create_float" ], "Array.create_float allocates");
    ([ "Array"; "copy" ], "Array.copy allocates");
    ([ "Array"; "append" ], "Array.append allocates");
    ([ "Array"; "sub" ], "Array.sub allocates");
    ([ "Array"; "of_list" ], "Array.of_list allocates");
    ([ "Array"; "to_list" ], "Array.to_list allocates");
    ([ "Array"; "map" ], "Array.map allocates");
    ([ "Array"; "mapi" ], "Array.mapi allocates");
    ([ "Array"; "concat" ], "Array.concat allocates");
    ([ "Bytes"; "create" ], "Bytes.create allocates");
    ([ "Bytes"; "make" ], "Bytes.make allocates");
    ([ "Bytes"; "copy" ], "Bytes.copy allocates");
    ([ "Bytes"; "sub" ], "Bytes.sub allocates");
    ([ "Bytes"; "of_string" ], "Bytes.of_string allocates");
    ([ "Bytes"; "to_string" ], "Bytes.to_string allocates");
    ([ "String"; "make" ], "String.make allocates");
    ([ "String"; "init" ], "String.init allocates");
    ([ "String"; "sub" ], "String.sub allocates");
    ([ "String"; "concat" ], "String.concat allocates");
    ([ "String"; "cat" ], "String.cat allocates");
    ([ "Hashtbl"; "create" ], "Hashtbl.create allocates");
    ([ "Buffer"; "create" ], "Buffer.create allocates");
    ([ "Buffer"; "contents" ], "Buffer.contents allocates");
  ]

(* Nat accessors that only read existing structure. *)
let nat_accessors = [ "limbs"; "is_zero"; "compare"; "length" ]

let classify_head path =
  match path with
  (* local [ref] accumulators are the kernels' carry/borrow idiom and
     deliberately accepted: one word-sized cell per call, not
     steady-state loop garbage *)
  | [ ("^" | "@") ] | [ "Stdlib"; ("^" | "@") ] ->
    Some
      (if Attrs.ends_with ~suffix:[ "^" ] path then "^ allocates a new string"
       else "@ allocates a new list")
  | [ op ] when List.mem op float_ops ->
    Some (Printf.sprintf "float operator ( %s ) is a boxing source" op)
  | [ ("float_of_int" | "float_of_string") ]
  | [ "Stdlib"; ("float_of_int" | "float_of_string") ] ->
    Some "float conversion is a boxing source"
  | "Float" :: _ | "Stdlib" :: "Float" :: _ ->
    Some
      (Printf.sprintf "%s is a float boxing source" (Attrs.path_string path))
  | ("Nat" :: _ :: _ | "Bignum" :: "Nat" :: _)
    when not
           (match Attrs.last path with
           | Some l -> List.mem l nat_accessors
           | None -> false) ->
    Some
      (Printf.sprintf "%s allocates immutable bignums"
         (Attrs.path_string path))
  | "List" :: _ :: _ | "Stdlib" :: "List" :: _ ->
    Some (Printf.sprintf "%s allocates list cells" (Attrs.path_string path))
  | "Printf" :: _ | "Format" :: _ ->
    Some
      (Printf.sprintf "%s allocates (formatting)" (Attrs.path_string path))
  | _ -> (
    match
      List.find_opt
        (fun (s, _) -> Attrs.ends_with ~suffix:s path)
        allocating_suffixes
    with
    | Some (_, what) -> Some what
    | None -> None)

let advice = "hoist it out of the kernel or mark the cold subtree [@lint.alloc_ok \"<reason>\"]"

(* Scan the body of one [@lint.no_alloc] function. *)
let scan_no_alloc_body (sink : Sink.t) body =
  let deliver = ref `Report in
  let hit loc what =
    match !deliver with
    | `Report ->
      sink.report rule loc
        (Printf.sprintf "%s inside a [@lint.no_alloc] function; %s" what advice)
    | `Suppress -> sink.suppress rule
  in
  let visitor =
    object (self)
      inherit Ast_traverse.iter as super

      method! function_body (fb : function_body) =
        match fb with
        | Pfunction_body e -> self#expression e
        | Pfunction_cases (cases, _, _) -> List.iter self#case cases

      method! expression e =
        if Attrs.has Attrs.alloc_ok e.pexp_attributes then begin
          (* one suppression per exempted subtree: walk it counting *)
          let saved = !deliver in
          deliver := `Suppress;
          self#scan_desc e;
          deliver := saved
        end
        else self#scan_desc e

      method scan_desc e =
        match e.pexp_desc with
        | Pexp_let (_, vbs, cont) ->
          List.iter
            (fun vb ->
              match vb.pvb_expr.pexp_desc with
              (* named local function: the loop-workhorse shape; its
                 one-time closure is allowed, its body is not exempt *)
              | Pexp_function (_, _, fb) -> self#function_body fb
              | _ -> self#expression vb.pvb_expr)
            vbs;
          self#expression cont
        | Pexp_function (_, _, fb) ->
          hit e.pexp_loc "closure construction";
          self#function_body fb
        | Pexp_tuple _ ->
          hit e.pexp_loc "tuple construction";
          super#expression e
        | Pexp_record _ ->
          hit e.pexp_loc "record construction";
          super#expression e
        | Pexp_construct (lid, Some _) ->
          (match Attrs.flatten_lid lid.txt with
          | Some path ->
            hit e.pexp_loc
              (Printf.sprintf "constructor %s carries a payload (allocates)"
                 (Attrs.path_string path))
          | None -> hit e.pexp_loc "constructor application allocates");
          super#expression e
        | Pexp_variant (_, Some _) ->
          hit e.pexp_loc "polymorphic variant with payload allocates";
          super#expression e
        | Pexp_array (_ :: _) ->
          hit e.pexp_loc "array literal allocates";
          super#expression e
        | Pexp_lazy _ ->
          hit e.pexp_loc "lazy suspension allocates";
          super#expression e
        | Pexp_apply (head, args) -> (
          match Attrs.head_path head with
          | Some ([ ("raise" | "raise_notrace" | "failwith" | "invalid_arg") ] as _p)
            ->
            (* raising is cold by construction; don't descend into the
               exception payload either *)
            ignore args
          | Some path -> (
            (match classify_head path with
            | Some what -> hit e.pexp_loc what
            | None -> ());
            List.iter (fun (_, a) -> self#expression a) args)
          | None -> super#expression e)
        | _ -> super#expression e
    end
  in
  match body.pexp_desc with
  (* skip the annotated function's own parameter chain *)
  | Pexp_function (_, _, fb) -> visitor#function_body fb
  | _ -> visitor#expression body

(* Find every [@lint.no_alloc] binding, anywhere in the file. *)
let check (sink : Sink.t) str =
  let finder =
    object
      inherit Ast_traverse.iter as super

      method! value_binding vb =
        if Attrs.has Attrs.no_alloc vb.pvb_attributes then
          scan_no_alloc_body sink vb.pvb_expr
        else super#value_binding vb
    end
  in
  finder#structure str

(* ------------------------------------------------------------------ *)
(* Interprocedural propagation.

   The per-file pass checks a kernel's own body.  This pass checks what
   it reaches: every call from a [@lint.no_alloc] kernel must land on a
   callee that is itself a kernel (checked separately), is marked
   [@lint.alloc_ok] (counted as a suppression), or can be *proven*
   allocation-free — its body passes the same scan and all of its own
   calls resolve to provable callees in turn.  An internal-looking call
   that cannot be resolved to a visible function is conservatively
   treated as allocating (the unknown-callee policy).

   Heads the per-site classifier already recognizes (Nat.*, List.*,
   Printf, ...) are skipped here: the per-file scan reported them. *)

type verdict =
  | Trusted  (** the callee is itself [@lint.no_alloc] *)
  | Sanctioned  (** the callee is marked [@lint.alloc_ok] *)
  | Clean
  | Dirty of string list  (** call chain ending in an allocation description *)

let check_graph (sink : Sink.t) (g : Callgraph.t) =
  let memo : (string, verdict) Hashtbl.t = Hashtbl.create 64 in
  let in_progress : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  (* scan a helper body once, counting its own [@lint.alloc_ok]
     suppressions globally and collecting the first allocation *)
  let body_dirt (fn : Callgraph.fn) =
    let first = ref None in
    let scan_sink =
      {
        Sink.report =
          (fun _ _ msg -> if !first = None then first := Some msg);
        suppress = (fun _ -> sink.suppress rule);
      }
    in
    scan_no_alloc_body scan_sink fn.Callgraph.fn_body;
    !first
  in
  let rec prove (fn : Callgraph.fn) : verdict =
    let key = Callgraph.fn_key fn in
    if Attrs.has Attrs.no_alloc fn.fn_attrs then Trusted
    else if Attrs.has Attrs.alloc_ok fn.fn_attrs then Sanctioned
    else
      match Hashtbl.find_opt memo key with
      | Some v -> v
      | None ->
        if Hashtbl.mem in_progress key then Clean (* optimistic on recursion *)
        else begin
          Hashtbl.add in_progress key ();
          let v =
            match body_dirt fn with
            | Some what -> Dirty [ what ]
            | None -> (
              let u = Hashtbl.find g.Callgraph.units fn.fn_unit in
              let offender =
                List.find_map
                  (fun (c : Callgraph.call) ->
                    if c.c_sup_alloc then None
                    else if classify_head c.c_path <> None then None
                      (* the body scan reported it *)
                    else
                      match Callgraph.resolve g u c.c_path with
                      | Callgraph.Fn target -> (
                        match prove target with
                        | Trusted | Clean -> None
                        | Sanctioned ->
                          sink.suppress rule;
                          None
                        | Dirty chain ->
                          Some (Attrs.path_string c.c_path :: chain))
                      | Callgraph.Opaque ->
                        Some
                          [
                            Printf.sprintf
                              "%s is not a visible function (conservative \
                               unknown-callee policy)"
                              (Attrs.path_string c.c_path);
                          ]
                      | Callgraph.External -> None)
                  fn.fn_calls
              in
              match offender with Some chain -> Dirty chain | None -> Clean)
          in
          Hashtbl.remove in_progress key;
          Hashtbl.replace memo key v;
          v
        end
  in
  Callgraph.all_fns g (fun _ fn ->
      if Attrs.has Attrs.no_alloc fn.Callgraph.fn_attrs then
        let u = Hashtbl.find g.Callgraph.units fn.fn_unit in
        List.iter
          (fun (c : Callgraph.call) ->
            if (not c.c_sup_alloc) && classify_head c.c_path = None then
              match Callgraph.resolve g u c.c_path with
              | Callgraph.Fn target -> (
                match prove target with
                | Trusted | Clean -> ()
                | Sanctioned -> sink.suppress rule
                | Dirty chain ->
                  sink.report rule c.c_loc
                    (Printf.sprintf
                       "[@lint.no_alloc] kernel %s calls %s, which may \
                        allocate (%s); prove the callee allocation-free or \
                        mark it [@lint.alloc_ok \"<reason>\"]"
                       fn.fn_name
                       (Attrs.path_string c.c_path)
                       (String.concat " -> "
                          (Attrs.path_string c.c_path :: chain))))
              | Callgraph.Opaque ->
                sink.report rule c.c_loc
                  (Printf.sprintf
                     "[@lint.no_alloc] kernel %s calls %s, which cannot be \
                      resolved to a visible function (conservative \
                      unknown-callee policy); %s"
                     fn.fn_name
                     (Attrs.path_string c.c_path)
                     advice)
              | Callgraph.External -> ()
            else if c.c_sup_alloc then ())
          fn.fn_calls)
