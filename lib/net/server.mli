(** bdprintd's serving engine: a crash-tolerant networked conversion
    daemon over the supervised worker pool.

    One listener (Unix-domain or TCP socket) accepts connections on a
    dedicated thread; each connection is served by its own thread
    speaking the {!Wire} protocol, while conversions run on the
    {!Service.Supervisor} worker domains — so a slow or stalled client
    can never block another client or a worker.

    {b Survival properties} (the daemon's headline feature):

    {ul
    {- {e Bounded admission with explicit shedding}: at most
       [admission_capacity] conversion requests are in flight across all
       connections.  A request beyond the bound is answered
       [SHED queue-full] {e immediately} — the daemon never queues
       unboundedly and never silently drops.  An {e adaptive} controller
       additionally sheds ([SHED overload]) a deadline-carrying request
       whose projected queue wait (in-flight depth × the live
       service-time EWMA ÷ workers) already exceeds its deadline —
       refusing fast beats converting a reply that arrives dead.  Both
       sheds carry a machine-readable [retry-after-ms] hint derived from
       the same EWMA.}
    {- {e Wedge detection}: the supervisor's watchdog domain (see
       {!Service.Supervisor.watchdog_policy}; on by default here)
       answers any request stuck past its deadline on a live-but-wedged
       worker with a structured timeout and replaces the worker, so one
       pathological request cannot capture a worker domain forever.}
    {- {e Per-client deadlines and budgets}: each connection can set a
       wall-clock deadline ([DEADLINE <ms>]) enforced through
       {!Robust.Budget}'s cooperative check sites; input frames are
       bounded by the ambient budget's [max_input_length] and oversized
       frames are rejected as [ERR proto frame-too-long] without
       desynchronising the stream.}
    {- {e Crash tolerance}: worker-domain crashes (the
       [service.worker-kill] fault) are detected by the supervisor,
       answered through the breaker-backed [%.17g] degraded fallback and
       healed by automatic respawn — the daemon itself never dies.}
    {- {e Hot-value cache}: a domain-sharded bounded memo table
       ({!Memo}) in front of the pipeline; only exact pipeline outputs
       are cached, so hits are always correct.}
    {- {e Graceful drain}: {!drain} (wired to SIGTERM/SIGINT by
       [bdprintd]) stops accepting, answers new conversion requests with
       [SHED draining], finishes every admitted request, shuts the
       supervisor down, and wakes {!wait} — losing no accepted
       request.}} *)

type listen =
  | Unix_path of string  (** Unix-domain socket at this path *)
  | Tcp of string * int  (** host, port; port 0 binds an ephemeral port *)

type config = {
  jobs : int;  (** supervisor worker domains *)
  admission_capacity : int;  (** max in-flight conversion requests *)
  cache_capacity : int;  (** total memo entries; 0 disables the cache *)
  cache_shards : int;
  memo_min_us : float;
      (** conversions that complete faster than this (microseconds,
          measured from supervisor submit to completion) skip
          memoization — the table fast path answers in ~1 us, cheaper
          to recompute than to cache, while exact-kernel conversions
          take tens of us (see BENCH_kernel.json) and stay memoized.
          [0.] memoizes everything; bdprintd defaults to the measured
          5 us cutover between the two populations. *)
  default_deadline_ms : int option;
      (** deadline applied until a connection overrides it *)
  retry : Service.Supervisor.retry_policy;
  breaker : Service.Breaker.policy;
  watchdog : Service.Supervisor.watchdog_policy option;
      (** wedge-detection monitor; [None] disables it *)
}

val default_config : config
(** 2 jobs, 256 admissions, 4096-entry cache in 8 shards, memoize
    everything ([memo_min_us = 0.]), no default deadline, default
    supervisor retry/breaker/watchdog policies. *)

type stats = {
  connections : int;  (** accepted since start *)
  active_connections : int;
  requests : int;  (** conversion requests (CONV + batch items) *)
  replies_ok : int;  (** includes cache hits *)
  cache_hits : int;
  cache_skips : int;
      (** memoizations skipped because the conversion beat
          [memo_min_us]; also the gated
          [bdprintd_cache_skips_total] counter *)
  replies_degraded : int;
  replies_failed : int;
  shed_queue_full : int;
  shed_overload : int;
      (** adaptive-admission sheds: projected wait exceeded the deadline *)
  shed_draining : int;
  proto_errors : int;  (** malformed frames answered [ERR proto ...] *)
  cache : Memo.stats;
  supervisor : Service.Supervisor.stats;
}

type t

val start :
  ?config:config ->
  convert:(string -> (string, Robust.Error.t) result) ->
  listen ->
  (t, Robust.Error.t) result
(** Binds the listener, spawns the supervisor pool and the accept
    thread, and returns immediately.  Binding failures (address in use,
    bad path) surface as [Error (Internal _)].  [convert] runs on
    worker domains and must be safe to call concurrently.  SIGPIPE is
    set to ignore: client disconnects surface as [EPIPE] writes handled
    per connection. *)

val address : t -> string
(** The bound address, e.g. ["127.0.0.1:43117"] or a socket path — for
    TCP with port 0, the actual ephemeral port. *)

val port : t -> int option
(** The bound TCP port, if listening on TCP. *)

val drain : t -> unit
(** Requests graceful shutdown; returns immediately (async-signal-safe:
    only sets a flag the accept loop polls).  Idempotent. *)

val draining : t -> bool

val wait : t -> stats
(** Blocks until a requested drain completes — listener closed, every
    admitted request answered and written, supervisor shut down, idle
    connections shut down — then returns the final statistics. *)

val stats : t -> stats
(** A consistent snapshot, callable at any time. *)

val stats_json : t -> string
(** The [STATS] payload: a flat JSON object (stable keys, documented in
    docs/SERVICE.md). *)
