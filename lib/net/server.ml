module Error = Robust.Error
module Budget = Robust.Budget
module Faults = Robust.Faults
module Supervisor = Service.Supervisor

type listen = Unix_path of string | Tcp of string * int

type config = {
  jobs : int;
  admission_capacity : int;
  cache_capacity : int;
  cache_shards : int;
  memo_min_us : float;
  default_deadline_ms : int option;
  retry : Supervisor.retry_policy;
  breaker : Service.Breaker.policy;
  watchdog : Supervisor.watchdog_policy option;
}

let default_config =
  {
    jobs = 2;
    admission_capacity = 256;
    cache_capacity = 4096;
    cache_shards = 8;
    memo_min_us = 0.;
    default_deadline_ms = None;
    retry = Supervisor.default_retry;
    breaker = Service.Breaker.default_policy;
    watchdog = Some Supervisor.default_watchdog;
  }

type stats = {
  connections : int;
  active_connections : int;
  requests : int;
  replies_ok : int;
  cache_hits : int;
  cache_skips : int;
  replies_degraded : int;
  replies_failed : int;
  shed_queue_full : int;
  shed_overload : int;
  shed_draining : int;
  proto_errors : int;
  cache : Memo.stats;
  supervisor : Supervisor.stats;
}

(* Per-request mailbox: the connection thread blocks on it, the
   supervisor's collector domain posts into it. *)
type waiter = {
  wm : Mutex.t;
  wc : Condition.t;
  mutable result : Supervisor.reply option;  (** guarded by [wm] *)
}
[@@lint.guarded_by "wm"]

type phase = Running | Draining | Drained

(* Request routing and accounting, shared between connection threads,
   the accept thread and the collector domain. *)
type core = {
  m : Mutex.t;
  cv : Condition.t;  (** in_flight / conns_active / phase changes *)
  pending : (int, waiter) Hashtbl.t;  (** seq -> waiter *)
  clients : (Unix.file_descr, unit) Hashtbl.t;  (** open connections *)
  mutable phase : phase;
  mutable in_flight : int;  (** admitted, reply not yet produced *)
  mutable next_seq : int;
  mutable conns_total : int;
  mutable conns_active : int;
  mutable n_requests : int;
  mutable n_ok : int;
  mutable n_cache_hits : int;
  mutable n_cache_skips : int;
  mutable n_deg : int;
  mutable n_failed : int;
  mutable n_shed_full : int;
  mutable n_shed_overload : int;
  mutable n_shed_drain : int;
  mutable n_proto : int;
  mutable ewma_ms : float;
      (** exponentially-weighted mean admitted-request service time,
          admission to reply — feeds the adaptive admission controller
          and the [retry-after-ms] hints, so it is always maintained,
          independent of telemetry *)
}
[@@lint.guarded_by "m"]

type t = {
  cfg : config;
  spec : listen;
  core : core;
  sock : Unix.file_descr;
  addr_str : string;
  tcp_port : int option;
  sup : Supervisor.t;
  memo : Memo.t option;
  started : float;  (** wall-clock start time, for uptime reporting *)
  stop : bool Atomic.t;  (** drain request flag; async-signal-safe *)
  mutable accept_thread : Thread.t option;
      (** set once before [start] returns, read only by [wait] *)
  mutable final_sup : Supervisor.stats option;  (** guarded by [core.m] *)
}
[@@lint.domain_safe
  "accept_thread is written once before the value escapes start; final_sup \
   is written and read under core.m"]

(* Daemon protocol/build version, reported in HEALTHZ and STATS. *)
let version = "1.0.0"

let m_latency =
  Telemetry.Metrics.histogram
    ~help:"Conversion request latency in microseconds, admission to reply."
    ~bounds:(Telemetry.Metrics.log_linear ~lo:10 ~hi:1_000_000 ())
    "bdprintd_request_latency_us"

let m_shed =
  Telemetry.Metrics.counter
    ~help:"Requests answered SHED (admission queue full or draining)."
    "bdprintd_shed_total"

let m_connections =
  Telemetry.Metrics.counter ~help:"Connections accepted."
    "bdprintd_connections_total"

let m_cache_skips =
  Telemetry.Metrics.counter
    ~help:"Memoization skipped: the conversion completed faster than \
           memo_min_us, so recomputing is cheaper than caching."
    "bdprintd_cache_skips_total"

let m_proto_errors =
  Telemetry.Metrics.counter
    ~help:"Malformed frames answered ERR proto." "bdprintd_proto_errors_total"

(* {2 Socket helpers} *)

let rec write_chunk fd b off len =
  if len > 0 then begin
    let n =
      try Unix.write fd b off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_chunk fd b (off + n) (len - n)
  end

(* The two write-path fault points: [net.slow-client] stalls before the
   write (a client not keeping up), [net.partial-write] splits it into
   two short writes — exercising the resumption loop above. *)
let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  if Faults.fires "net.slow-client" then Thread.delay 0.002;
  if len > 1 && Faults.fires "net.partial-write" then begin
    let half = len / 2 in
    write_chunk fd b 0 half;
    Thread.delay 0.001;
    write_chunk fd b half (len - half)
  end
  else write_chunk fd b 0 len

type line = Line of string | Too_long | Closed

(* Bounded line reader: buffered reads, lines capped at [max_len] bytes.
   An over-long line is discarded up to its newline (resynchronising the
   stream) and reported as [Too_long], so a hostile frame cannot make the
   daemon buffer unboundedly or misparse the next frame. *)
type reader = {
  rfd : Unix.file_descr;
  rbuf : Bytes.t;
  mutable rpos : int;
  mutable rlen : int;
  line_buf : Buffer.t;
}
[@@lint.domain_safe "one reader per connection thread, never shared"]

let make_reader fd =
  { rfd = fd; rbuf = Bytes.create 8192; rpos = 0; rlen = 0; line_buf = Buffer.create 128 }

let rec refill r =
  match Unix.read r.rfd r.rbuf 0 (Bytes.length r.rbuf) with
  | 0 -> false
  | n ->
    r.rpos <- 0;
    r.rlen <- n;
    true
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> refill r
  | exception Unix.Unix_error (_, _, _) -> false

let rec discard_to_nl r =
  if r.rpos >= r.rlen then if refill r then discard_to_nl r else false
  else
    match Bytes.index_from_opt r.rbuf r.rpos '\n' with
    | Some i when i < r.rlen ->
      r.rpos <- i + 1;
      true
    | _ ->
      r.rpos <- r.rlen;
      discard_to_nl r

let rec read_line r ~max_len =
  if r.rpos >= r.rlen then begin
    if refill r then read_line r ~max_len
    else begin
      (* EOF with a partial line buffered: the frame never completed *)
      Buffer.clear r.line_buf;
      Closed
    end
  end
  else
    match Bytes.index_from_opt r.rbuf r.rpos '\n' with
    | Some i when i < r.rlen ->
      Buffer.add_subbytes r.line_buf r.rbuf r.rpos (i - r.rpos);
      r.rpos <- i + 1;
      let s = Buffer.contents r.line_buf in
      Buffer.clear r.line_buf;
      if String.length s > max_len then Too_long else Line s
    | _ ->
      Buffer.add_subbytes r.line_buf r.rbuf r.rpos (r.rlen - r.rpos);
      r.rpos <- r.rlen;
      if Buffer.length r.line_buf > max_len then begin
        Buffer.clear r.line_buf;
        if discard_to_nl r then Too_long else Closed
      end
      else read_line r ~max_len

(* {2 Reply routing} *)

(* Runs on the collector domain; must not raise. *)
let route_reply core (r : Supervisor.reply) =
  Mutex.lock core.m;
  let w = Hashtbl.find_opt core.pending r.Supervisor.lineno in
  Hashtbl.remove core.pending r.Supervisor.lineno;
  Mutex.unlock core.m;
  match w with
  | None -> ()
  | Some w ->
    Mutex.lock w.wm;
    w.result <- Some r;
    Condition.signal w.wc;
    Mutex.unlock w.wm

let rec await w =
  (* called with [w.wm] held *)
  match w.result with
  | Some r -> r
  | None ->
    Condition.wait w.wc w.wm;
    await w

let count_shed () =
  if Telemetry.Metrics.enabled () then Telemetry.Metrics.incr m_shed

(* [retry-after-ms] hints from the service-time EWMA.  A [queue-full]
   shed clears once some in-flight request finishes: about one mean
   service time.  An [overload] shed clears once the projected queue
   wait has drained back under the deadline.  [draining] sheds carry no
   hint — the right client response is failover, not retry. *)
let shed_drain c =
  c.n_shed_drain <- c.n_shed_drain + 1;
  count_shed ();
  if Telemetry.Flight.enabled () then
    Telemetry.Flight.record ~kind:"shed" "draining";
  Wire.Shed { reason = "draining"; retry_after_ms = None }

let shed_full t c =
  c.n_shed_full <- c.n_shed_full + 1;
  count_shed ();
  if Telemetry.Flight.enabled () then
    Telemetry.Flight.record ~kind:"shed" "queue-full";
  let hint = max 1. (c.ewma_ms /. float (max 1 t.cfg.jobs)) in
  Wire.Shed
    { reason = "queue-full"; retry_after_ms = Some (int_of_float (ceil hint)) }

(* Projected wait before a request admitted now would start converting:
   the requests ahead of it, spread over the worker pool, each costing
   one mean service time. *)
let projected_wait_ms t c =
  float c.in_flight *. c.ewma_ms /. float (max 1 t.cfg.jobs)

let shed_overload c ~deadline_ms:d ~projected =
  c.n_shed_overload <- c.n_shed_overload + 1;
  count_shed ();
  if Telemetry.Flight.enabled () then
    Telemetry.Flight.record ~kind:"shed" "overload";
  let hint = max 1. (projected -. float d) in
  Wire.Shed
    { reason = "overload"; retry_after_ms = Some (int_of_float (ceil hint)) }

(* One conversion request, through shedding, cache, supervisor and
   accounting.  Returns the reply to write plus whether the request
   holds an admission slot; the caller must {!release} the slot only
   AFTER writing the reply — drain's in-flight wait keys off it, and
   releasing before the write would let drain shut the client down
   between computing a reply and delivering it (losing an accepted
   request).  Never raises. *)
let convert_one t ~deadline_ms ~tid input : Wire.reply * bool =
  let c = t.core in
  Mutex.lock c.m;
  c.n_requests <- c.n_requests + 1;
  if c.phase <> Running then begin
    let reply = shed_drain c in
    Mutex.unlock c.m;
    (reply, false)
  end
  else begin
    Mutex.unlock c.m;
    let mt0 = Telemetry.Tracing.span_of tid in
    match Option.bind t.memo (fun memo -> Memo.find memo input) with
    | Some out ->
      Telemetry.Tracing.emit ~note:"hit" ~tid Telemetry.Tracing.Memo_lookup mt0;
      Mutex.lock c.m;
      c.n_ok <- c.n_ok + 1;
      c.n_cache_hits <- c.n_cache_hits + 1;
      Mutex.unlock c.m;
      (Wire.Converted out, false)
    | None ->
      Telemetry.Tracing.emit ~note:"miss" ~tid Telemetry.Tracing.Memo_lookup mt0;
      Mutex.lock c.m;
      let projected = projected_wait_ms t c in
      if c.phase <> Running then begin
        (* drain began between the two checks: still shed explicitly *)
        let reply = shed_drain c in
        Mutex.unlock c.m;
        (reply, false)
      end
      else if c.in_flight >= t.cfg.admission_capacity then begin
        let reply = shed_full t c in
        Mutex.unlock c.m;
        (reply, false)
      end
      else begin
        (* adaptive admission: shed when the projected queue wait alone
           already exceeds the request's deadline — converting would
           only burn a worker on a reply that arrives dead *)
        let overloaded =
          match deadline_ms with
          | Some d when projected > float d -> Some d
          | Some _ | None -> None
        in
        match overloaded with
        | Some d ->
          let reply = shed_overload c ~deadline_ms:d ~projected in
          Mutex.unlock c.m;
          (reply, false)
        | None ->
        c.in_flight <- c.in_flight + 1;
        let seq = c.next_seq in
        c.next_seq <- seq + 1;
        let w = { wm = Mutex.create (); wc = Condition.create (); result = None } in
        Hashtbl.replace c.pending seq w;
        Mutex.unlock c.m;
        if Telemetry.Flight.enabled () then
          Telemetry.Flight.record ~req:seq ~kind:"admit" input;
        let reply =
          let ct0 = Unix.gettimeofday () in
          match Supervisor.submit t.sup ?deadline_ms ~tid ~lineno:seq input with
          | () ->
            Mutex.lock w.wm;
            let r = await w in
            Mutex.unlock w.wm;
            (match r.Supervisor.outcome with
            | Supervisor.Done out ->
              (* Requests the table fast path answers in ~1 us are
                 cheaper to recompute than to cache (a memo insert costs
                 a hash, a mutex and eviction pressure on genuinely slow
                 entries), so sub-threshold conversions skip
                 memoization.  The clock starts at submit, so queue wait
                 counts: under load everything memoizes again, which is
                 exactly when the cache pays. *)
              let skip =
                Option.is_some t.memo
                && t.cfg.memo_min_us > 0.
                && (Unix.gettimeofday () -. ct0) *. 1e6 < t.cfg.memo_min_us
              in
              if skip then begin
                if Telemetry.Metrics.enabled () then
                  Telemetry.Metrics.incr m_cache_skips
              end
              else Option.iter (fun memo -> Memo.add memo input out) t.memo;
              Mutex.lock c.m;
              c.n_ok <- c.n_ok + 1;
              if skip then c.n_cache_skips <- c.n_cache_skips + 1;
              Mutex.unlock c.m;
              Wire.Converted out
            | Supervisor.Degraded out ->
              Mutex.lock c.m;
              c.n_deg <- c.n_deg + 1;
              Mutex.unlock c.m;
              Wire.Degraded out
            | Supervisor.Failed e ->
              Mutex.lock c.m;
              c.n_failed <- c.n_failed + 1;
              Mutex.unlock c.m;
              Wire.Failed
                { cls = Error.category e; detail = Error.to_string e })
          | exception _ ->
            (* the supervisor refused the submission (can only happen if
               it was shut down under us, which drain's in-flight wait
               rules out — defensive, not expected) *)
            Mutex.lock c.m;
            Hashtbl.remove c.pending seq;
            let reply = shed_drain c in
            Mutex.unlock c.m;
            reply
        in
        (reply, true)
      end
  end

let release_admission t =
  let c = t.core in
  Mutex.lock c.m;
  c.in_flight <- c.in_flight - 1;
  Condition.broadcast c.cv;
  Mutex.unlock c.m

(* Latency is measured unconditionally: beyond the (gated) histogram it
   feeds the admission controller's EWMA, which must stay live with
   telemetry off.  Only admitted requests update the EWMA — sheds and
   cache hits say nothing about service time. *)
let ewma_alpha = 0.2

let timed_convert t ~deadline_ms ~tid input =
  let t0 = Unix.gettimeofday () in
  let ((_, admitted) as reply) = convert_one t ~deadline_ms ~tid input in
  let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
  if admitted then begin
    let c = t.core in
    Mutex.lock c.m;
    c.ewma_ms <-
      (if c.ewma_ms <= 0. then elapsed_ms
       else c.ewma_ms +. (ewma_alpha *. (elapsed_ms -. c.ewma_ms)));
    Mutex.unlock c.m
  end;
  if Telemetry.Metrics.enabled () then
    Telemetry.Metrics.observe_ex m_latency ~trace_id:tid
      (int_of_float (elapsed_ms *. 1e3));
  reply

(* Write a conversion reply, then release its admission slot (write
   failures to a vanished client release too — the reply was produced
   and delivery attempted, which is all drain can wait for). *)
let write_conv_reply t fd ~tid (reply, admitted) =
  let wt0 = Telemetry.Tracing.span_of tid in
  if admitted then
    Fun.protect
      ~finally:(fun () -> release_admission t)
      (fun () -> write_all fd (Wire.render_reply reply))
  else write_all fd (Wire.render_reply reply);
  Telemetry.Tracing.emit ~tid Telemetry.Tracing.Wire_write wt0;
  reply

(* {2 Statistics} *)

let empty_cache_stats =
  Memo.
    {
      hits = 0;
      misses = 0;
      entries = 0;
      evictions = 0;
      insertions = 0;
      replacements = 0;
      shards = 0;
      capacity = 0;
    }

let stats t =
  let c = t.core in
  Mutex.lock c.m;
  let final = t.final_sup in
  let partial =
    {
      connections = c.conns_total;
      active_connections = c.conns_active;
      requests = c.n_requests;
      replies_ok = c.n_ok;
      cache_hits = c.n_cache_hits;
      cache_skips = c.n_cache_skips;
      replies_degraded = c.n_deg;
      replies_failed = c.n_failed;
      shed_queue_full = c.n_shed_full;
      shed_overload = c.n_shed_overload;
      shed_draining = c.n_shed_drain;
      proto_errors = c.n_proto;
      cache = empty_cache_stats;
      supervisor = Supervisor.stats t.sup;
    }
  in
  Mutex.unlock c.m;
  let supervisor =
    match final with Some s -> s | None -> Supervisor.stats t.sup
  in
  let cache =
    match t.memo with Some memo -> Memo.stats memo | None -> empty_cache_stats
  in
  { partial with cache; supervisor }

(* Memo hit rate over all finds so far; 0. before any traffic. *)
let hit_rate (cache : Memo.stats) =
  let total = cache.Memo.hits + cache.Memo.misses in
  if total = 0 then 0. else float cache.Memo.hits /. float total

let uptime_s t = Unix.gettimeofday () -. t.started

let stats_json t =
  let s = stats t in
  let b = Buffer.create 512 in
  let field name v = Printf.bprintf b "\"%s\":%d," name v in
  Buffer.add_char b '{';
  Printf.bprintf b "\"version\":\"%s\"," version;
  Printf.bprintf b "\"uptime_s\":%.3f," (uptime_s t);
  field "connections" s.connections;
  field "active_connections" s.active_connections;
  field "requests" s.requests;
  field "replies_ok" s.replies_ok;
  field "cache_hits" s.cache_hits;
  field "replies_degraded" s.replies_degraded;
  field "replies_failed" s.replies_failed;
  field "shed_queue_full" s.shed_queue_full;
  field "shed_overload" s.shed_overload;
  field "shed_draining" s.shed_draining;
  field "proto_errors" s.proto_errors;
  field "cache_skips" s.cache_skips;
  field "cache_entries" s.cache.Memo.entries;
  field "cache_misses" s.cache.Memo.misses;
  field "cache_evictions" s.cache.Memo.evictions;
  field "cache_capacity" s.cache.Memo.capacity;
  Printf.bprintf b "\"cache_hit_rate\":%.3f," (hit_rate s.cache);
  field "sup_submitted" s.supervisor.Supervisor.submitted;
  field "sup_completed" s.supervisor.Supervisor.completed;
  field "sup_degraded" s.supervisor.Supervisor.degraded;
  field "sup_retries" s.supervisor.Supervisor.retries;
  field "sup_crashes" s.supervisor.Supervisor.crashes;
  field "sup_respawns" s.supervisor.Supervisor.respawns;
  field "sup_wedges" s.supervisor.Supervisor.wedges;
  field "sup_breaker_trips" s.supervisor.Supervisor.breaker_trips;
  field "jobs" s.supervisor.Supervisor.jobs;
  Printf.bprintf b "\"breaker_state\":\"%s\"," s.supervisor.Supervisor.breaker_state;
  Printf.bprintf b "\"draining\":%b" (Atomic.get t.stop);
  Buffer.add_char b '}';
  Buffer.contents b

(* {2 Connection handling} *)

let proto_error t fd reason =
  let c = t.core in
  Mutex.lock c.m;
  c.n_proto <- c.n_proto + 1;
  Mutex.unlock c.m;
  if Telemetry.Metrics.enabled () then Telemetry.Metrics.incr m_proto_errors;
  write_all fd (Wire.render_reply (Wire.Failed { cls = "proto"; detail = reason }))

(* HEALTHZ attributes: uptime, version, watchdog wedge count and memo
   hit rate — enough for a probe (or an operator with netcat) to see a
   daemon's identity and recent health in one line.  Old clients parse
   only the leading READY/DRAINING tag and ignore the rest. *)
let health_info t =
  let sup = Supervisor.stats t.sup in
  let cache =
    match t.memo with Some memo -> Memo.stats memo | None -> empty_cache_stats
  in
  Printf.sprintf "uptime-s=%d version=%s wedges=%d memo-hit-rate=%.3f"
    (int_of_float (uptime_s t))
    version sup.Supervisor.wedges (hit_rate cache)

(* The trace id a conversion runs under: the wire TID when the client
   is tracing (so both processes' spans share a track), else a locally
   sampled id when this daemon traces on its own. *)
let conv_tid ~wire_tid =
  if wire_tid <> 0 then wire_tid else Telemetry.Tracing.sample ()

let handle_request t fd reader deadline_ms quit req =
  match req with
  | Wire.Conv { input; tid = wire_tid } ->
    let tid = conv_tid ~wire_tid in
    let rt0 = Telemetry.Tracing.span_of tid in
    let (_ : Wire.reply) =
      write_conv_reply t fd ~tid
        (timed_convert t ~deadline_ms:!deadline_ms ~tid input)
    in
    Telemetry.Tracing.emit ~tid Telemetry.Tracing.Request rt0
  | Wire.Batch { count = n; tid = wire_tid } ->
    let max_len = (Budget.get ()).Budget.max_input_length + 64 in
    let ok = ref 0 and failed = ref 0 and shed = ref 0 in
    let aborted = ref false in
    let i = ref 0 in
    while (not !aborted) && !i < n do
      incr i;
      (match read_line reader ~max_len with
      | Closed ->
        aborted := true;
        quit := true
      | Too_long ->
        incr failed;
        proto_error t fd "frame-too-long"
      | Line input -> (
        let tid = conv_tid ~wire_tid in
        match
          write_conv_reply t fd ~tid
            (timed_convert t ~deadline_ms:!deadline_ms ~tid (String.trim input))
        with
        | Wire.Converted _ | Wire.Degraded _ -> incr ok
        | Wire.Shed _ -> incr shed
        | _ -> incr failed))
    done;
    if not !aborted then
      write_all fd
        (Wire.render_reply (Wire.Batch_end { ok = !ok; failed = !failed; shed = !shed }))
  | Wire.Deadline ms ->
    deadline_ms := (if ms = 0 then None else Some ms);
    write_all fd (Wire.render_reply (Wire.Converted (Printf.sprintf "deadline=%d" ms)))
  | Wire.Ping -> write_all fd (Wire.render_reply Wire.Pong)
  | Wire.Healthz ->
    let ready = not (Atomic.get t.stop) in
    let info = health_info t in
    write_all fd
      (Wire.render_reply (if ready then Wire.Ready info else Wire.Draining info))
  | Wire.Stats ->
    write_all fd
      (Wire.render_reply (Wire.Payload { verb = "STATS"; body = stats_json t }))
  | Wire.Metrics ->
    let body = Telemetry.Snapshot.to_prometheus (Telemetry.Snapshot.take ()) in
    write_all fd (Wire.render_reply (Wire.Payload { verb = "METRICS"; body }))
  | Wire.Trace_dump ->
    let body = Telemetry.Tracing.to_chrome_json () in
    write_all fd (Wire.render_reply (Wire.Payload { verb = "TRACE"; body }))
  | Wire.Quit ->
    write_all fd (Wire.render_reply Wire.Bye);
    quit := true

let handle_conn t fd =
  let c = t.core in
  let reader = make_reader fd in
  let deadline_ms = ref t.cfg.default_deadline_ms in
  let max_len = (Budget.get ()).Budget.max_input_length + 64 in
  let quit = ref false in
  (try
     while not !quit do
       match read_line reader ~max_len with
       | Closed -> quit := true
       | Too_long -> proto_error t fd "frame-too-long"
       | Line line -> (
         match Wire.parse_request line with
         | Error reason -> proto_error t fd reason
         | Ok req -> handle_request t fd reader deadline_ms quit req)
     done
   with _ ->
     (* a write to a vanished client (EPIPE/ECONNRESET): drop the
        connection; all accounting already happened reply-side *)
     ());
  Mutex.lock c.m;
  Hashtbl.remove c.clients fd;
  c.conns_active <- c.conns_active - 1;
  Condition.broadcast c.cv;
  Mutex.unlock c.m;
  try Unix.close fd with Unix.Unix_error (_, _, _) -> ()

(* {2 Accept loop and drain} *)

let finish_drain t =
  let c = t.core in
  Mutex.lock c.m;
  c.phase <- Draining;
  Mutex.unlock c.m;
  (try Unix.close t.sock with Unix.Unix_error (_, _, _) -> ());
  (* every admitted request must be answered before the pool stops *)
  Mutex.lock c.m;
  while c.in_flight > 0 do
    Condition.wait c.cv c.m
  done;
  Mutex.unlock c.m;
  let sup_stats = Supervisor.shutdown t.sup in
  Mutex.lock c.m;
  t.final_sup <- Some sup_stats;
  c.phase <- Drained;
  (* wake connection threads blocked in read: close() alone would not *)
  Hashtbl.iter
    (fun fd () ->
      try Unix.shutdown fd Unix.SHUTDOWN_ALL
      with Unix.Unix_error (_, _, _) -> ())
    c.clients;
  Condition.broadcast c.cv;
  Mutex.unlock c.m;
  match t.spec with
  | Unix_path p -> ( try Sys.remove p with Sys_error _ -> ())
  | Tcp _ -> ()

let rec accept_loop t =
  if Atomic.get t.stop then finish_drain t
  else begin
    (match Unix.select [ t.sock ] [] [] 0.25 with
    | [], _, _ -> ()
    | _ -> (
      match Unix.accept ~cloexec:true t.sock with
      | fd, _ ->
        let c = t.core in
        Mutex.lock c.m;
        c.conns_total <- c.conns_total + 1;
        c.conns_active <- c.conns_active + 1;
        Hashtbl.replace c.clients fd ();
        Mutex.unlock c.m;
        if Telemetry.Metrics.enabled () then
          Telemetry.Metrics.incr m_connections;
        ignore (Thread.create (fun () -> handle_conn t fd) ())
      | exception Unix.Unix_error (_, _, _) -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    accept_loop t
  end

(* {2 Lifecycle} *)

let drain t = Atomic.set t.stop true
let draining t = Atomic.get t.stop

let wait t =
  let c = t.core in
  Mutex.lock c.m;
  while not (c.phase = Drained && c.conns_active = 0) do
    Condition.wait c.cv c.m
  done;
  Mutex.unlock c.m;
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  stats t

let address t = t.addr_str
let port t = t.tcp_port

let resolve_host host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)

let start ?(config = default_config) ~convert spec =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  match
    let domain, addr, tcp =
      match spec with
      | Unix_path p -> (Unix.PF_UNIX, Unix.ADDR_UNIX p, false)
      | Tcp (host, port) ->
        (Unix.PF_INET, Unix.ADDR_INET (resolve_host host, port), true)
    in
    let sock = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
    (try
       if tcp then Unix.setsockopt sock Unix.SO_REUSEADDR true;
       Unix.bind sock addr;
       Unix.listen sock 64
     with e ->
       (try Unix.close sock with Unix.Unix_error (_, _, _) -> ());
       (raise e) [@lint.can_raise Unix_error]);
    sock
  with
  | exception Unix.Unix_error (err, fn, arg) ->
    Result.Error
      (Error.internal ~where:"net.server"
         (Printf.sprintf "cannot listen: %s(%s): %s" fn arg
            (Unix.error_message err)))
  | exception Not_found ->
    Result.Error (Error.internal ~where:"net.server" "cannot resolve host")
  | sock ->
    let addr_str, tcp_port =
      match Unix.getsockname sock with
      | Unix.ADDR_UNIX p -> (p, None)
      | Unix.ADDR_INET (a, p) ->
        (Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p, Some p)
    in
    let core =
      {
        m = Mutex.create ();
        cv = Condition.create ();
        pending = Hashtbl.create 64;
        clients = Hashtbl.create 16;
        phase = Running;
        in_flight = 0;
        next_seq = 0;
        conns_total = 0;
        conns_active = 0;
        n_requests = 0;
        n_ok = 0;
        n_cache_hits = 0;
        n_cache_skips = 0;
        n_deg = 0;
        n_failed = 0;
        n_shed_full = 0;
        n_shed_overload = 0;
        n_shed_drain = 0;
        n_proto = 0;
        ewma_ms = 0.;
      }
    in
    let sup =
      Supervisor.start ~jobs:(max 1 config.jobs)
        ~queue_capacity:(max 1 config.admission_capacity)
        ~retry:config.retry ~breaker:config.breaker
        ?watchdog:config.watchdog
        ~emit:(route_reply core) convert
    in
    let memo =
      if config.cache_capacity > 0 then
        Some
          (Memo.create ~shards:(max 1 config.cache_shards)
             ~capacity:config.cache_capacity ())
      else None
    in
    let t =
      {
        cfg = config;
        spec;
        core;
        sock;
        addr_str;
        tcp_port;
        sup;
        memo;
        started = Unix.gettimeofday ();
        stop = Atomic.make false;
        accept_thread = None;
        final_sup = None;
      }
    in
    t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
    Result.Ok t
