type request =
  | Conv of { input : string; tid : int }
  | Batch of { count : int; tid : int }
  | Deadline of int
  | Ping
  | Healthz
  | Stats
  | Metrics
  | Trace_dump
  | Quit

type reply =
  | Converted of string
  | Degraded of string
  | Failed of { cls : string; detail : string }
  | Shed of { reason : string; retry_after_ms : int option }
  | Batch_end of { ok : int; failed : int; shed : int }
  | Pong
  | Ready of string
  | Draining of string
  | Payload of { verb : string; body : string }
  | Bye

let max_batch = 1024
let max_deadline_ms = 3_600_000

let strip_cr s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

(* One-line sanitisation for reply fields that originate in error
   messages: the framing is newline-based, so embedded line breaks
   would desynchronise the stream. *)
let one_line s = String.map (function '\n' | '\r' -> ' ' | c -> c) s

let split_verb line =
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
    (String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1))

(* The optional TID token carries a request-scoped trace id (see
   Telemetry.Tracing) so daemon-side spans land on the same trace track
   as the client spans that caused them.  Tracing is off by default and
   clients only emit the token for requests they are actually tracing,
   so a pre-TID server never sees it unless tracing is deliberately
   enabled against it. *)
let tid_prefix = "TID="

let split_tid rest =
  let rest = String.trim rest in
  let lp = String.length tid_prefix in
  if String.length rest > lp && String.sub rest 0 lp = tid_prefix then begin
    let tok, after = split_verb rest in
    match int_of_string_opt (String.sub tok lp (String.length tok - lp)) with
    | Some tid when tid >= 1 -> Ok (tid, String.trim after)
    | _ -> Error "bad-tid"
  end
  else Ok (0, rest)

let parse_request line =
  let line = strip_cr line in
  let verb, rest = split_verb line in
  match verb with
  | "CONV" -> (
    match split_tid rest with
    | Error e -> Error e
    | Ok (tid, input) ->
      if input = "" then Error "empty-input" else Ok (Conv { input; tid }))
  | "BATCH" -> (
    let count_str, attrs = split_verb (String.trim rest) in
    match (int_of_string_opt count_str, split_tid attrs) with
    | _, Error e -> Error e
    | Some n, Ok (tid, "") when n >= 1 && n <= max_batch ->
      Ok (Batch { count = n; tid })
    | Some n, Ok _ when n >= 1 && n <= max_batch -> Error "bad-count"
    | Some _, Ok _ -> Error (Printf.sprintf "bad-count (1..%d)" max_batch)
    | None, Ok _ -> Error "bad-count")
  | "DEADLINE" -> (
    match int_of_string_opt (String.trim rest) with
    | Some ms when ms >= 0 && ms <= max_deadline_ms -> Ok (Deadline ms)
    | Some _ -> Error (Printf.sprintf "bad-deadline (0..%d)" max_deadline_ms)
    | None -> Error "bad-deadline")
  | "PING" when rest = "" -> Ok Ping
  | "HEALTHZ" when rest = "" -> Ok Healthz
  | "STATS" when rest = "" -> Ok Stats
  | "METRICS" when rest = "" -> Ok Metrics
  | "TRACE" when rest = "" -> Ok Trace_dump
  | "QUIT" when rest = "" -> Ok Quit
  | "" -> Error "empty-frame"
  | v -> Error (Printf.sprintf "unknown-verb %s" (one_line v))

let render_reply = function
  | Converted out -> "OK " ^ one_line out ^ "\n"
  | Degraded out -> "DEG " ^ one_line out ^ "\n"
  | Failed { cls; detail } ->
    Printf.sprintf "ERR %s %s\n" (one_line cls) (one_line detail)
  | Shed { reason; retry_after_ms = None } -> "SHED " ^ one_line reason ^ "\n"
  | Shed { reason; retry_after_ms = Some ms } ->
    Printf.sprintf "SHED %s retry-after-ms=%d\n" (one_line reason) ms
  | Batch_end { ok; failed; shed } ->
    Printf.sprintf "END ok=%d failed=%d shed=%d\n" ok failed shed
  | Pong -> "PONG\n"
  | Ready "" -> "READY\n"
  | Ready info -> "READY " ^ one_line info ^ "\n"
  | Draining "" -> "DRAINING\n"
  | Draining info -> "DRAINING " ^ one_line info ^ "\n"
  | Payload { verb; body } ->
    Printf.sprintf "%s %d\n%s\n" verb (String.length body) body
  | Bye -> "BYE\n"

let kv_int key pairs =
  List.find_map
    (fun p ->
      match String.index_opt p '=' with
      | Some i when String.sub p 0 i = key ->
        int_of_string_opt (String.sub p (i + 1) (String.length p - i - 1))
      | _ -> None)
    pairs

(* Request-side rendering for the client and the tests.  The TID token
   goes first so a server can route on it before looking at the input. *)
let render_conv ?(tid = 0) input =
  if tid = 0 then "CONV " ^ one_line input ^ "\n"
  else Printf.sprintf "CONV %s%d %s\n" tid_prefix tid (one_line input)

let render_batch ?(tid = 0) count =
  if tid = 0 then Printf.sprintf "BATCH %d\n" count
  else Printf.sprintf "BATCH %d %s%d\n" count tid_prefix tid

let payload_length line =
  let line = strip_cr line in
  match split_verb line with
  | ("STATS" | "METRICS" | "TRACE"), rest -> (
    match int_of_string_opt (String.trim rest) with
    | Some n when n >= 0 -> Some n
    | _ -> None)
  | _ -> None

let parse_reply_line line =
  let line = strip_cr line in
  let verb, rest = split_verb line in
  match verb with
  | "OK" -> Ok (Converted rest)
  | "DEG" -> Ok (Degraded rest)
  | "ERR" ->
    let cls, detail = split_verb rest in
    if cls = "" then Error "ERR without a class"
    else Ok (Failed { cls; detail })
  | "SHED" ->
    if rest = "" then Error "SHED without a reason"
    else
      let reason, attrs = split_verb rest in
      let retry_after_ms =
        kv_int "retry-after-ms" (String.split_on_char ' ' attrs)
      in
      Ok (Shed { reason; retry_after_ms })
  | "END" -> (
    let pairs = String.split_on_char ' ' rest in
    match (kv_int "ok" pairs, kv_int "failed" pairs, kv_int "shed" pairs) with
    | Some ok, Some failed, Some shed -> Ok (Batch_end { ok; failed; shed })
    | _ -> Error "malformed END counts")
  | "PONG" -> Ok Pong
  | "READY" -> Ok (Ready rest)
  | "DRAINING" -> Ok (Draining rest)
  | "BYE" -> Ok Bye
  | "STATS" | "METRICS" | "TRACE" -> (
    match payload_length line with
    | Some _ -> Ok (Payload { verb; body = "" })
    | None -> Error ("malformed payload header: " ^ line))
  | v -> Error ("unknown reply tag " ^ v)
