type shard = {
  m : Mutex.t;
  tbl : (string, string) Hashtbl.t;
  ring : string array;  (** insertion order, for FIFO eviction *)
  mutable pos : int;
  mutable filled : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable insertions : int;  (** new-key inserts (grew or evicted) *)
  mutable replacements : int;  (** in-place updates of an existing key *)
}
[@@lint.guarded_by "m"]

type t = { shards : shard array; per_shard : int }
[@@lint.domain_safe "each shard is guarded by its own mutex"]

type stats = {
  hits : int;
  misses : int;
  entries : int;
  evictions : int;
  insertions : int;
  replacements : int;
  shards : int;
  capacity : int;
}

let m_hits =
  Telemetry.Metrics.counter ~help:"Hot-value cache hits."
    "bdprintd_cache_hits_total"

let m_misses =
  Telemetry.Metrics.counter ~help:"Hot-value cache misses."
    "bdprintd_cache_misses_total"

let m_evictions =
  Telemetry.Metrics.counter
    ~help:"Hot-value cache FIFO evictions (insertions into a full shard)."
    "bdprintd_cache_evictions_total"

let create ?(shards = 8) ~capacity () =
  (if capacity < 1 then invalid_arg "Memo.create: capacity < 1")
  [@lint.can_raise Invalid_argument];
  let shards = max 1 shards in
  let per_shard = max 1 (capacity / shards) in
  {
    shards =
      Array.init shards (fun _ ->
          {
            m = Mutex.create ();
            tbl = Hashtbl.create (min per_shard 64);
            ring = Array.make per_shard "";
            pos = 0;
            filled = 0;
            hits = 0;
            misses = 0;
            evictions = 0;
            insertions = 0;
            replacements = 0;
          });
    per_shard;
  }

let shard_of (t : t) key = t.shards.(Hashtbl.hash key mod Array.length t.shards)

let find t key =
  let s = shard_of t key in
  Mutex.lock s.m;
  let r = Hashtbl.find_opt s.tbl key in
  (match r with
  | Some _ -> s.hits <- s.hits + 1
  | None -> s.misses <- s.misses + 1);
  Mutex.unlock s.m;
  (if Telemetry.Metrics.enabled () then
     Telemetry.Metrics.incr (match r with Some _ -> m_hits | None -> m_misses));
  r

let add t key value =
  let s = shard_of t key in
  Mutex.lock s.m;
  let evicted =
    if Hashtbl.mem s.tbl key then begin
      (* replace in place: the ring slot it already owns stays valid *)
      Hashtbl.replace s.tbl key value;
      s.replacements <- s.replacements + 1;
      false
    end
    else begin
      let evict = s.filled = t.per_shard in
      if evict then begin
        Hashtbl.remove s.tbl s.ring.(s.pos);
        s.evictions <- s.evictions + 1
      end
      else s.filled <- s.filled + 1;
      s.insertions <- s.insertions + 1;
      s.ring.(s.pos) <- key;
      s.pos <- (s.pos + 1) mod t.per_shard;
      Hashtbl.replace s.tbl key value;
      evict
    end
  in
  Mutex.unlock s.m;
  if evicted && Telemetry.Metrics.enabled () then
    Telemetry.Metrics.incr m_evictions

let stats (t : t) =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.m;
      let r =
        {
          acc with
          hits = acc.hits + s.hits;
          misses = acc.misses + s.misses;
          entries = acc.entries + Hashtbl.length s.tbl;
          evictions = acc.evictions + s.evictions;
          insertions = acc.insertions + s.insertions;
          replacements = acc.replacements + s.replacements;
        }
      in
      Mutex.unlock s.m;
      r)
    {
      hits = 0;
      misses = 0;
      entries = 0;
      evictions = 0;
      insertions = 0;
      replacements = 0;
      shards = Array.length t.shards;
      capacity = Array.length t.shards * t.per_shard;
    }
    t.shards

let per_shard_capacity (t : t) = t.per_shard

(* Per-shard live entry counts, each read under its shard's mutex: the
   concurrency invariant tests assert every element stays within
   [per_shard_capacity]. *)
let shard_entries (t : t) =
  Array.map
    (fun s ->
      Mutex.lock s.m;
      let n = Hashtbl.length s.tbl in
      Mutex.unlock s.m;
      n)
    t.shards
