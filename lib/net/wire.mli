(** The bdprintd wire protocol: newline-framed text requests with
    line- or length-framed replies.  See docs/SERVICE.md for the full
    specification.

    Requests are single LF-terminated lines (a trailing CR is
    tolerated).  Conversion replies are single lines tagged with the
    outcome ([OK] / [DEG] / [ERR] / [SHED]); bulk payloads ([STATS],
    [METRICS]) are length-framed: a header line carrying the byte count
    followed by exactly that many bytes.

    This module is pure — parsing and rendering only — so the protocol
    is testable without sockets, and the load generator and the chaos
    harness share one grammar with the server. *)

type request =
  | Conv of { input : string; tid : int }
      (** [CONV [TID=<t>] <input>]: convert one number.  The optional
          TID token carries a request-scoped trace id
          (see {!Telemetry.Tracing}); [tid = 0] means absent.  Clients
          only emit it for requests they are actually tracing, so the
          token never reaches a pre-TID server unless tracing is
          deliberately enabled against it. *)
  | Batch of { count : int; tid : int }
      (** [BATCH <n> [TID=<t>]]: the next [n] lines are inputs; [n]
          replies follow in order, then an [END] line *)
  | Deadline of int
      (** [DEADLINE <ms>]: per-request deadline for subsequent requests
          on this connection; 0 clears it *)
  | Ping
  | Healthz
  | Stats  (** length-framed JSON service statistics *)
  | Metrics  (** length-framed Prometheus snapshot *)
  | Trace_dump
      (** [TRACE]: length-framed Chrome trace-event JSON of the
          daemon's span ring *)
  | Quit

type reply =
  | Converted of string  (** [OK <output>] *)
  | Degraded of string
      (** [DEG <output>]: breaker- or crash-fallback [%.17g] output —
          reads back to the same value but is not the pipeline's
          shortest form *)
  | Failed of { cls : string; detail : string }
      (** [ERR <class> <detail>], [cls] one of syntax / range / budget /
          internal / proto *)
  | Shed of { reason : string; retry_after_ms : int option }
      (** [SHED <reason> [retry-after-ms=<n>]]: explicit load-shedding,
          [reason] one of [queue-full] / [overload] / [draining]; the
          request was {e not} converted.  [retry_after_ms] is the
          server's machine-readable hint of when retrying is likely to
          succeed — clients should honor it in place of their default
          backoff.  [draining] sheds carry no hint: the right response
          is failover, not retry. *)
  | Batch_end of { ok : int; failed : int; shed : int }
      (** [END ok=<n> failed=<n> shed=<n>] after a batch's replies *)
  | Pong
  | Ready of string
      (** [READY [<attrs>]]: healthy.  [attrs] is a space-separated
          [key=value] list — [uptime-s], [version], [wedges],
          [memo-hit-rate] — empty on old servers; clients must ignore
          keys they do not know. *)
  | Draining of string  (** [DRAINING [<attrs>]]: shutting down *)
  | Payload of { verb : string; body : string }
      (** [<verb> <byte-count>] then the body bytes ([STATS],
          [METRICS], [TRACE]) *)
  | Bye

val max_batch : int
(** Upper bound on [BATCH <n>] (1024): bounds per-connection memory. *)

val max_deadline_ms : int
(** Upper bound on [DEADLINE <ms>] (3_600_000). *)

val parse_request : string -> (request, string) result
(** Parses one request line (without its newline).  [Error reason]
    describes the protocol violation ([unknown-verb ...],
    [bad-count ...], ...); the server reports it as [ERR proto <reason>]
    and keeps the connection. *)

val render_reply : reply -> string
(** The exact bytes to write, trailing newline(s) included.  [Payload]
    renders as the header line followed by the body and a final
    newline. *)

val render_conv : ?tid:int -> string -> string
(** The [CONV] request frame, newline included; [tid] (default 0 =
    untraced) emits the TID token. *)

val render_batch : ?tid:int -> int -> string
(** The [BATCH] request frame, newline included. *)

val parse_reply_line : string -> (reply, string) result
(** Client-side parse of one reply line (without its newline).
    [Payload] replies parse with [body = ""] and the byte count in
    {!payload_length}; the caller must then read that many bytes plus
    the trailing newline. *)

val payload_length : string -> int option
(** [payload_length line] is [Some n] when [line] is a length-framed
    payload header ([STATS <n>] / [METRICS <n>] / [TRACE <n>]). *)
