module Error = Robust.Error
module Budget = Robust.Budget
module Faults = Robust.Faults

type addr = Tcp of string * int | Unix_path of string

let addr_to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p

(* {2 Address parsing}

   Validated up front with a typed [Range] error, so a malformed
   BDPRINTD_ADDR or --connect argument dies with exit 2 at startup
   instead of a late socket exception mid-stream. *)

let parse_addr s =
  let s = String.trim s in
  let err detail = Result.Error (Error.range ~what:"address" detail) in
  if s = "" then err "empty address"
  else
    match String.index_opt s ':' with
    | Some 4 when String.sub s 0 4 = "unix" ->
      let p = String.sub s 5 (String.length s - 5) in
      if p = "" then err (Printf.sprintf "%S: unix: needs a socket path" s)
      else Result.Ok (Unix_path p)
    | Some i ->
      let host = String.sub s 0 i in
      let host = if host = "" then "127.0.0.1" else host in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      (match int_of_string_opt port with
      | Some p when p >= 1 && p <= 65535 -> Result.Ok (Tcp (host, p))
      | _ -> err (Printf.sprintf "%S: port must be 1..65535" s))
    | None -> (
      match int_of_string_opt s with
      | Some p when p >= 1 && p <= 65535 -> Result.Ok (Tcp ("127.0.0.1", p))
      | _ ->
        err
          (Printf.sprintf "%S: expected HOST:PORT, :PORT, PORT or unix:PATH" s))

let parse_addrs s =
  let parts =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun x -> x <> "")
  in
  if parts = [] then
    Result.Error (Error.range ~what:"address" "no addresses given")
  else
    List.fold_left
      (fun acc part ->
        match (acc, parse_addr part) with
        | (Result.Error _ as e), _ -> e
        | _, (Result.Error _ as e) -> e
        | Result.Ok addrs, Result.Ok a -> Result.Ok (a :: addrs))
      (Result.Ok []) parts
    |> Result.map List.rev

(* {2 Configuration} *)

type config = {
  connect_timeout_ms : int;
  request_timeout_ms : int;
  max_attempts : int;
  backoff_ms : float;
  backoff_multiplier : float;
  backoff_cap_ms : float;
  max_shed_wait_ms : int;
  hedge_ms : int option;
  eject_threshold : int;
  eject_cooldown_ms : int;
  pool_size : int;
}

let default_config =
  {
    connect_timeout_ms = 1_000;
    request_timeout_ms = 5_000;
    max_attempts = 4;
    backoff_ms = 5.0;
    backoff_multiplier = 2.0;
    backoff_cap_ms = 200.0;
    max_shed_wait_ms = 2_000;
    hedge_ms = None;
    eject_threshold = 3;
    eject_cooldown_ms = 1_000;
    pool_size = 2;
  }

type tier = Remote of addr | Local

type outcome = {
  output : string;
  degraded : bool;
  tier : tier;
  attempts : int;
}

type stats = {
  requests : int;
  remote_ok : int;
  remote_degraded : int;
  local_fallbacks : int;
  typed_errors : int;
  retries : int;
  sheds_honored : int;
  hedges : int;
  hedge_wins : int;
  ejections : int;
  readmissions : int;
  reconnects : int;
}

(* {2 Internal state} *)

(* One pooled connection: a buffered line reader over the socket plus
   the DEADLINE value last installed on the server side of this
   connection (the server's deadline is per-connection state). *)
type conn = {
  fd : Unix.file_descr;
  cbuf : Bytes.t;
  mutable cpos : int;
  mutable clen : int;
  clbuf : Buffer.t;
  mutable conn_deadline_ms : int;  (** 0 = none installed *)
}
[@@lint.domain_safe "a conn is owned by exactly one attempt at a time"]

type endpoint = {
  ep_addr : addr;
  mutable pool : conn list;  (** idle connections; guarded by [t.m] *)
  mutable consec : int;  (** consecutive transport failures *)
  mutable ejected_until : float;  (** 0. = healthy; else parole time *)
}
[@@lint.guarded_by "m"]

type t = {
  cfg : config;
  eps : endpoint array;
  local : (string -> (string, Error.t) result) option;
  m : Mutex.t;
  rng : Random.State.t;  (** jitter; guarded by [m] *)
  mutable rr : int;
  mutable closed : bool;
  mutable s_requests : int;
  mutable s_remote_ok : int;
  mutable s_remote_deg : int;
  mutable s_local : int;
  mutable s_typed_errors : int;
  mutable s_retries : int;
  mutable s_sheds : int;
  mutable s_hedges : int;
  mutable s_hedge_wins : int;
  mutable s_ejections : int;
  mutable s_readmissions : int;
  mutable s_reconnects : int;
}
[@@lint.guarded_by "m"]

let m_requests =
  Telemetry.Metrics.counter ~help:"Client conversion requests."
    "bdprint_client_requests_total"

let m_retries =
  Telemetry.Metrics.counter
    ~help:"Client attempts beyond the first (failover, shed retry, backoff)."
    "bdprint_client_retries_total"

let m_sheds_honored =
  Telemetry.Metrics.counter
    ~help:"SHED replies honored by waiting the server's retry-after-ms hint."
    "bdprint_client_sheds_honored_total"

let m_hedges =
  Telemetry.Metrics.counter
    ~help:"Hedged secondary requests launched." "bdprint_client_hedges_total"

let m_ejections =
  Telemetry.Metrics.counter
    ~help:"Endpoints ejected after consecutive transport failures."
    "bdprint_client_ejections_total"

let m_readmissions =
  Telemetry.Metrics.counter
    ~help:"Ejected endpoints readmitted after a successful HEALTHZ probe."
    "bdprint_client_readmissions_total"

let m_local =
  Telemetry.Metrics.counter
    ~help:"Requests answered by the local in-process fallback tier."
    "bdprint_client_local_fallbacks_total"

let bump m = if Telemetry.Metrics.enabled () then Telemetry.Metrics.incr m

let create ?(config = default_config) ?local addrs =
  (if addrs = [] then invalid_arg "Client.create: no endpoints")
  [@lint.can_raise Invalid_argument];
  {
    cfg = config;
    eps =
      Array.of_list
        (List.map
           (fun a -> { ep_addr = a; pool = []; consec = 0; ejected_until = 0. })
           addrs);
    local;
    m = Mutex.create ();
    rng = Random.State.make [| Faults.seed; 0x7c11e47 |];
    rr = 0;
    closed = false;
    s_requests = 0;
    s_remote_ok = 0;
    s_remote_deg = 0;
    s_local = 0;
    s_typed_errors = 0;
    s_retries = 0;
    s_sheds = 0;
    s_hedges = 0;
    s_hedge_wins = 0;
    s_ejections = 0;
    s_readmissions = 0;
    s_reconnects = 0;
  }

(* {2 Transport}

   [Transport] is the module-internal carrier for socket-level failures
   (EOF, timeout, refused, reset, malformed frame): every raise site is
   confined to the I/O helpers below and caught at the single [attempt]
   boundary, where it becomes a retryable classification — it can never
   escape the public API. *)

exception Transport of string

let fail_transport msg = (raise (Transport msg)) [@lint.can_raise Transport]

let close_fd fd = try Unix.close fd with Unix.Unix_error (_, _, _) -> ()

let resolve_host host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found | Invalid_argument _ ->
      fail_transport ("cannot resolve " ^ host))

let connect_conn cfg addr =
  let domain, sockaddr =
    match addr with
    | Unix_path p -> (Unix.PF_UNIX, Unix.ADDR_UNIX p)
    | Tcp (h, p) -> (Unix.PF_INET, Unix.ADDR_INET (resolve_host h, p))
  in
  let fd =
    try Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0
    with Unix.Unix_error (e, _, _) ->
      fail_transport ("socket: " ^ Unix.error_message e)
  in
  try
    let to_s = float cfg.connect_timeout_ms /. 1000. in
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO to_s;
    Unix.setsockopt_float fd Unix.SO_SNDTIMEO to_s;
    Unix.connect fd sockaddr;
    {
      fd;
      cbuf = Bytes.create 8192;
      cpos = 0;
      clen = 0;
      clbuf = Buffer.create 128;
      conn_deadline_ms = 0;
    }
  with
  | Unix.Unix_error (e, _, _) ->
    close_fd fd;
    fail_transport ("connect: " ^ Unix.error_message e)
  | Transport _ as e ->
    close_fd fd;
    (raise e) [@lint.can_raise Transport]

let rec cwrite fd b off len =
  if len > 0 then begin
    let n =
      match Unix.write fd b off len with
      | n -> n
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> 0
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        fail_transport "write timeout"
      | exception Unix.Unix_error (e, _, _) ->
        fail_transport ("write: " ^ Unix.error_message e)
    in
    cwrite fd b (off + n) (len - n)
  end

let send conn s = cwrite conn.fd (Bytes.of_string s) 0 (String.length s)

let rec crefill conn =
  match Unix.read conn.fd conn.cbuf 0 (Bytes.length conn.cbuf) with
  | 0 -> fail_transport "connection closed"
  | n ->
    conn.cpos <- 0;
    conn.clen <- n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> crefill conn
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    fail_transport "read timeout"
  | exception Unix.Unix_error (e, _, _) ->
    fail_transport ("read: " ^ Unix.error_message e)

let max_reply_len = 1 lsl 20

let rec recv_line conn =
  if conn.cpos >= conn.clen then begin
    crefill conn;
    recv_line conn
  end
  else
    match Bytes.index_from_opt conn.cbuf conn.cpos '\n' with
    | Some i when i < conn.clen ->
      Buffer.add_subbytes conn.clbuf conn.cbuf conn.cpos (i - conn.cpos);
      conn.cpos <- i + 1;
      let s = Buffer.contents conn.clbuf in
      Buffer.clear conn.clbuf;
      s
    | _ ->
      Buffer.add_subbytes conn.clbuf conn.cbuf conn.cpos (conn.clen - conn.cpos);
      conn.cpos <- conn.clen;
      if Buffer.length conn.clbuf > max_reply_len then begin
        Buffer.clear conn.clbuf;
        fail_transport "reply frame too long"
      end
      else recv_line conn

let recv_reply conn =
  match Wire.parse_reply_line (recv_line conn) with
  | Result.Ok r -> r
  | Result.Error reason -> fail_transport ("malformed reply: " ^ reason)

(* {2 Endpoint bookkeeping} *)

let take_conn t ep =
  Mutex.lock t.m;
  let pooled =
    match ep.pool with
    | c :: rest ->
      ep.pool <- rest;
      Some c
    | [] -> None
  in
  if pooled = None then t.s_reconnects <- t.s_reconnects + 1;
  Mutex.unlock t.m;
  match pooled with Some c -> c | None -> connect_conn t.cfg ep.ep_addr

let pool_conn t ep conn =
  Mutex.lock t.m;
  let keep = (not t.closed) && List.length ep.pool < t.cfg.pool_size in
  if keep then ep.pool <- conn :: ep.pool;
  Mutex.unlock t.m;
  if not keep then close_fd conn.fd

let eject_locked t ep =
  if ep.ejected_until = 0. then begin
    t.s_ejections <- t.s_ejections + 1;
    bump m_ejections
  end;
  ep.ejected_until <-
    Unix.gettimeofday () +. (float t.cfg.eject_cooldown_ms /. 1000.);
  let stale = ep.pool in
  ep.pool <- [];
  stale

let penalize t ep =
  Mutex.lock t.m;
  ep.consec <- ep.consec + 1;
  let stale =
    if ep.consec >= t.cfg.eject_threshold then eject_locked t ep else []
  in
  Mutex.unlock t.m;
  List.iter (fun c -> close_fd c.fd) stale

(* a draining endpoint is ejected outright: it will shed every request
   until it dies, so the right response is immediate failover *)
let eject_now t ep =
  Mutex.lock t.m;
  let stale = eject_locked t ep in
  Mutex.unlock t.m;
  List.iter (fun c -> close_fd c.fd) stale

let reward t ep =
  Mutex.lock t.m;
  ep.consec <- 0;
  Mutex.unlock t.m

(* HEALTHZ probe of an ejected endpoint whose cooldown has elapsed:
   READY readmits it (and the probe connection joins the pool); anything
   else — DRAINING, a refused connect, garbage — extends the ejection by
   another cooldown. *)
let probe t ep =
  match
    try
      let conn = connect_conn t.cfg ep.ep_addr in
      (try
         send conn "HEALTHZ\n";
         match recv_reply conn with
         | Wire.Ready _ -> Some conn
         | _ ->
           close_fd conn.fd;
           None
       with Transport _ ->
         close_fd conn.fd;
         None)
    with Transport _ -> None
  with
  | Some conn ->
    Mutex.lock t.m;
    ep.consec <- 0;
    ep.ejected_until <- 0.;
    t.s_readmissions <- t.s_readmissions + 1;
    bump m_readmissions;
    Mutex.unlock t.m;
    pool_conn t ep conn;
    true
  | None ->
    Mutex.lock t.m;
    ep.ejected_until <-
      Unix.gettimeofday () +. (float t.cfg.eject_cooldown_ms /. 1000.);
    Mutex.unlock t.m;
    false

(* Next endpoint to try: round-robin over healthy endpoints; when none
   is healthy, probe any ejected endpoint whose cooldown has elapsed and
   use the first that readmits. *)
let pick t ~avoid =
  let n = Array.length t.eps in
  let now = Unix.gettimeofday () in
  Mutex.lock t.m;
  let healthy = ref None in
  let parole = ref [] in
  for k = 0 to n - 1 do
    let i = (t.rr + k) mod n in
    let ep = t.eps.(i) in
    if Option.map (fun a -> a == ep) avoid <> Some true then
      if ep.ejected_until = 0. then begin
        if !healthy = None then begin
          healthy := Some ep;
          t.rr <- i + 1
        end
      end
      else if now >= ep.ejected_until then parole := ep :: !parole
  done;
  let parole = List.rev !parole in
  Mutex.unlock t.m;
  match !healthy with
  | Some ep -> Some ep
  | None -> List.find_opt (fun ep -> probe t ep) parole

(* {2 One attempt} *)

type a_result =
  | R_ok of { out : string; degraded : bool }
  | R_err of Error.t  (** determinative remote error: do not retry *)
  | R_shed of int option  (** queue-full / overload, with retry-after *)
  | R_drain  (** endpoint draining: fail over, no sleep *)
  | R_retryable of Error.t  (** remote internal/proto error *)
  | R_transport of string  (** connection unusable *)

(* The server's [detail] is its fully rendered error message; strip
   the class prefix (and the echoed input, for syntax errors) before
   rebuilding the typed error so the client-side rendering does not
   duplicate them. *)
let strip_prefix p s =
  let lp = String.length p in
  if String.length s >= lp && String.sub s 0 lp = p then
    String.sub s lp (String.length s - lp)
  else s

let strip_suffix suf s =
  let ls = String.length s and lf = String.length suf in
  if ls >= lf && String.sub s (ls - lf) lf = suf then String.sub s 0 (ls - lf)
  else s

let error_of_wire ~input cls detail =
  match cls with
  | "syntax" ->
    let msg =
      strip_suffix
        (Printf.sprintf " in %S" input)
        (strip_prefix "syntax error: " detail)
    in
    Error.syntax ~input msg
  | "range" ->
    Error.range ~what:"remote" (strip_prefix "range error: " detail)
  | "budget" ->
    Error.budget
      ~what:("remote: " ^ strip_prefix "budget exceeded: " detail)
      ~limit:0 ~got:0
  | _ -> Error.internal ~where:"net.client" (cls ^ ": " ^ detail)

let remaining_s deadline =
  match deadline with
  | None -> infinity
  | Some (d : Budget.deadline) -> d.Budget.expires_at -. Unix.gettimeofday ()

let attempt_once t ep ~deadline ~tid input =
  match take_conn t ep with
  | exception Transport msg -> R_transport msg
  | conn -> (
    let finish_transport msg =
      close_fd conn.fd;
      R_transport msg
    in
    try
      let timeout_s =
        Float.min
          (float t.cfg.request_timeout_ms /. 1000.)
          (Float.max 0.01 (remaining_s deadline))
      in
      Unix.setsockopt_float conn.fd Unix.SO_RCVTIMEO timeout_s;
      Unix.setsockopt_float conn.fd Unix.SO_SNDTIMEO timeout_s;
      let dl_ms =
        match deadline with
        | None -> 0
        | Some _ ->
          max 1 (int_of_float (ceil (Float.max 0.001 (remaining_s deadline) *. 1e3)))
      in
      (* the server's DEADLINE is per-connection state: (re)install it
         whenever it differs from what this pooled connection carries,
         pipelined in front of the CONV to save a round trip *)
      let needs_deadline = dl_ms <> conn.conn_deadline_ms in
      let frame =
        (if needs_deadline then Printf.sprintf "DEADLINE %d\n" dl_ms else "")
        ^ Wire.render_conv ~tid input
      in
      send conn frame;
      conn.conn_deadline_ms <- dl_ms;
      if needs_deadline then begin
        match recv_reply conn with
        | Wire.Converted _ -> ()
        | _ -> fail_transport "bad DEADLINE ack"
      end;
      match recv_reply conn with
      | Wire.Converted out ->
        pool_conn t ep conn;
        reward t ep;
        R_ok { out; degraded = false }
      | Wire.Degraded out ->
        pool_conn t ep conn;
        reward t ep;
        R_ok { out; degraded = true }
      | Wire.Failed { cls = ("internal" | "proto") as cls; detail } ->
        (* the stream is still in sync (the server answered in frame),
           but the answer is retryable: another endpoint — or the same
           one after backoff — may well succeed *)
        pool_conn t ep conn;
        reward t ep;
        R_retryable (error_of_wire ~input cls detail)
      | Wire.Failed { cls; detail } ->
        pool_conn t ep conn;
        reward t ep;
        R_err (error_of_wire ~input cls detail)
      | Wire.Shed { reason = "draining"; _ } ->
        close_fd conn.fd;
        R_drain
      | Wire.Shed { retry_after_ms; _ } ->
        pool_conn t ep conn;
        reward t ep;
        R_shed retry_after_ms
      | Wire.Pong | Wire.Ready _ | Wire.Draining _ | Wire.Batch_end _
      | Wire.Payload _ | Wire.Bye ->
        finish_transport "unexpected reply tag"
    with Transport msg -> finish_transport msg)

(* A [Client_attempt] span brackets each network attempt.  The trace id
   travels explicitly — never through Domain.DLS — because hedged
   attempts run on a helper {e thread} of the same domain and would
   otherwise clobber each other's ambient id. *)
let attempt t ep ~deadline ~tid input =
  if tid = 0 then attempt_once t ep ~deadline ~tid input
  else begin
    let t0 = Telemetry.Tracing.span_of tid in
    let r = attempt_once t ep ~deadline ~tid input in
    let note =
      match r with
      | R_ok { degraded = false; _ } -> "ok"
      | R_ok { degraded = true; _ } -> "degraded"
      | R_err _ -> "error"
      | R_shed _ -> "shed"
      | R_drain -> "drain"
      | R_retryable _ -> "retryable"
      | R_transport _ -> "transport"
    in
    Telemetry.Tracing.emit ~note ~tid Telemetry.Tracing.Client_attempt t0;
    r
  end

(* {2 Hedging}

   Conversions are pure, so sending the same request to a second
   endpoint is always safe — the worst case is wasted work.  The
   primary attempt runs on a helper thread; if it has not answered
   within [hedge_ms], the secondary runs on the calling thread and the
   first conversational result wins.  A still-blocked primary is left
   to finish in the background (it only touches its own connection and
   the mutex-guarded pools). *)

type hedge_box = { hm : Mutex.t; mutable hres : a_result option }
[@@lint.guarded_by "hm"]

let hedge_read box =
  Mutex.lock box.hm;
  let r = box.hres in
  Mutex.unlock box.hm;
  r

(* Returns the result paired with the endpoint that produced it, so the
   caller attributes the outcome (and any penalty) to the actual
   answerer rather than the primary pick. *)
let attempt_maybe_hedged t ep ~deadline ~tid input =
  match t.cfg.hedge_ms with
  | None -> (attempt t ep ~deadline ~tid input, ep)
  | Some h -> (
    match pick t ~avoid:(Some ep) with
    | None -> (attempt t ep ~deadline ~tid input, ep)
    | Some ep2 -> (
      let box = { hm = Mutex.create (); hres = None } in
      let th =
        Thread.create
          (fun () ->
            let r = attempt t ep ~deadline ~tid input in
            Mutex.lock box.hm;
            box.hres <- Some r;
            Mutex.unlock box.hm)
          ()
      in
      (* Condition.wait has no timeout in the stdlib: poll at 1 ms *)
      let rec wait_primary i =
        match hedge_read box with
        | Some r -> Some r
        | None ->
          if i >= h then None
          else begin
            Thread.delay 0.001;
            wait_primary (i + 1)
          end
      in
      match wait_primary 0 with
      | Some r ->
        Thread.join th;
        (r, ep)
      | None -> (
        Mutex.lock t.m;
        t.s_hedges <- t.s_hedges + 1;
        bump m_hedges;
        Mutex.unlock t.m;
        (* the hedge span covers the secondary attempt from launch *)
        let h0 = Telemetry.Tracing.span_of tid in
        let r2 = attempt t ep2 ~deadline ~tid input in
        Telemetry.Tracing.emit ~tid Telemetry.Tracing.Client_hedge h0;
        match (hedge_read box, r2) with
        | Some (R_ok _ as r1), _ ->
          (* primary finished while the hedge ran: prefer it (its
             connection bookkeeping is already settled) *)
          Thread.join th;
          (r1, ep)
        | _, R_ok _ ->
          Mutex.lock t.m;
          t.s_hedge_wins <- t.s_hedge_wins + 1;
          Mutex.unlock t.m;
          (r2, ep2)
        | Some r1, _ ->
          Thread.join th;
          (match r1 with
          | (R_err _ | R_retryable _ | R_shed _) as r -> (r, ep)
          | _ -> (r2, ep2))
        | None, _ ->
          (* primary still wedged on its socket: take the secondary's
             answer and let the primary clean itself up when it wakes *)
          (r2, ep2))))

(* {2 The request loop} *)

let traced_delay ~tid ?note s =
  if s > 0. then begin
    let t0 = Telemetry.Tracing.span_of tid in
    Thread.delay s;
    Telemetry.Tracing.emit ?note ~tid Telemetry.Tracing.Client_backoff t0
  end

let jittered_backoff t ~attempt ~deadline ~tid =
  let base =
    t.cfg.backoff_ms *. (t.cfg.backoff_multiplier ** float_of_int attempt)
  in
  let capped = Float.min base t.cfg.backoff_cap_ms in
  Mutex.lock t.m;
  let jitter = 0.5 +. Random.State.float t.rng 1.0 in
  Mutex.unlock t.m;
  let s = Float.min (capped *. jitter /. 1000.) (remaining_s deadline) in
  traced_delay ~tid s

let shed_wait t ~hint ~deadline ~tid =
  let ms =
    match hint with
    | Some ms -> min ms t.cfg.max_shed_wait_ms
    | None -> int_of_float t.cfg.backoff_cap_ms
  in
  let s = Float.min (float ms /. 1000.) (remaining_s deadline) in
  traced_delay ~tid ~note:"shed" s

let count_result t r =
  Mutex.lock t.m;
  (match r with
  | Result.Ok { tier = Local; _ } ->
    t.s_local <- t.s_local + 1;
    bump m_local
  | Result.Ok { degraded = true; _ } -> t.s_remote_deg <- t.s_remote_deg + 1
  | Result.Ok _ -> t.s_remote_ok <- t.s_remote_ok + 1
  | Result.Error _ -> t.s_typed_errors <- t.s_typed_errors + 1);
  Mutex.unlock t.m;
  r

let convert t ?deadline_ms input =
  Mutex.lock t.m;
  t.s_requests <- t.s_requests + 1;
  bump m_requests;
  let closed = t.closed in
  Mutex.unlock t.m;
  if closed then
    Result.Error (Error.internal ~where:"net.client" "client is closed")
  else begin
    let deadline = Option.map (fun ms -> Budget.deadline_after ~ms) deadline_ms in
    (* Adopt the caller's ambient trace id (the CLI's per-line request
       root) when present; otherwise make a fresh sampling decision, so
       library users of [convert] still get traced requests. *)
    let tid =
      match Telemetry.Tracing.current () with
      | 0 -> Telemetry.Tracing.sample ()
      | ambient -> ambient
    in
    let local_tier ~attempts last_err =
      match t.local with
      | Some f ->
        count_result t
          (match f input with
          | Result.Ok out ->
            Result.Ok { output = out; degraded = false; tier = Local; attempts }
          | Result.Error _ as e -> e)
      | None ->
        count_result t
          (Result.Error
             (Option.value last_err
                ~default:
                  (Error.internal ~where:"net.client" "no endpoint reachable")))
    in
    let rec loop n last_err =
      if n > 0 then begin
        Mutex.lock t.m;
        t.s_retries <- t.s_retries + 1;
        bump m_retries;
        Mutex.unlock t.m
      end;
      match deadline with
      | Some d when Budget.expired d ->
        count_result t (Result.Error (Budget.deadline_error d))
      | _ ->
        if n >= t.cfg.max_attempts then local_tier ~attempts:n last_err
        else begin
          match pick t ~avoid:None with
          | None -> local_tier ~attempts:n last_err
          | Some ep -> (
            let result, won = attempt_maybe_hedged t ep ~deadline ~tid input in
            match result with
            | R_ok { out; degraded } ->
              count_result t
                (Result.Ok
                   {
                     output = out;
                     degraded;
                     tier = Remote won.ep_addr;
                     attempts = n + 1;
                   })
            | R_err e -> count_result t (Result.Error e)
            | R_shed hint ->
              Mutex.lock t.m;
              t.s_sheds <- t.s_sheds + 1;
              bump m_sheds_honored;
              Mutex.unlock t.m;
              shed_wait t ~hint ~deadline ~tid;
              loop (n + 1)
                (Some (Error.internal ~where:"net.client" "remote shed"))
            | R_drain ->
              eject_now t won;
              (* immediate failover: the endpoint told us it is dying *)
              loop (n + 1) last_err
            | R_retryable e ->
              jittered_backoff t ~attempt:n ~deadline ~tid;
              loop (n + 1) (Some e)
            | R_transport msg ->
              penalize t won;
              jittered_backoff t ~attempt:n ~deadline ~tid;
              loop (n + 1)
                (Some (Error.internal ~where:"net.client" msg)))
        end
    in
    loop 0 None
  end

(* {2 Lifecycle and statistics} *)

let close t =
  Mutex.lock t.m;
  t.closed <- true;
  let conns = Array.fold_left (fun acc ep -> ep.pool @ acc) [] t.eps in
  Array.iter (fun ep -> ep.pool <- []) t.eps;
  Mutex.unlock t.m;
  List.iter (fun c -> close_fd c.fd) conns

let stats t =
  Mutex.lock t.m;
  let s =
    {
      requests = t.s_requests;
      remote_ok = t.s_remote_ok;
      remote_degraded = t.s_remote_deg;
      local_fallbacks = t.s_local;
      typed_errors = t.s_typed_errors;
      retries = t.s_retries;
      sheds_honored = t.s_sheds;
      hedges = t.s_hedges;
      hedge_wins = t.s_hedge_wins;
      ejections = t.s_ejections;
      readmissions = t.s_readmissions;
      reconnects = t.s_reconnects;
    }
  in
  Mutex.unlock t.m;
  s

let endpoint_states t =
  let now = Unix.gettimeofday () in
  Mutex.lock t.m;
  let s =
    Array.to_list
      (Array.map
         (fun ep -> (addr_to_string ep.ep_addr, now >= ep.ejected_until))
         t.eps)
  in
  Mutex.unlock t.m;
  s
