(** A resilient client for the bdprintd wire protocol.

    The CLI, the benchmark harness, and the tests all talk to bdprintd
    through this module so that every caller gets the same survival
    behaviour:

    {ul
    {- {e Reconnecting connection pool}: idle connections are pooled per
       endpoint and reused; a broken connection is dropped and replaced
       transparently on the next attempt.}
    {- {e Per-request deadlines}: an optional [deadline_ms] becomes a
       {!Robust.Budget.deadline} governing the whole request — connect
       and read timeouts, retry/backoff sleeps, and the [DEADLINE]
       installed on the server side are all derived from the remaining
       budget.}
    {- {e Retries with jittered exponential backoff}: transport failures
       and retryable remote errors ([ERR internal] / [ERR proto]) are
       retried up to [max_attempts] times with capped exponential
       backoff and ±50% jitter (seeded from {!Robust.Faults.seed}, so
       chaos runs replay).}
    {- {e Failover and endpoint ejection}: requests rotate round-robin
       across the configured endpoints; an endpoint accumulating
       [eject_threshold] consecutive transport failures (or answering
       [SHED draining]) is ejected for [eject_cooldown_ms] and only
       readmitted after a successful [HEALTHZ] probe answers [READY].}
    {- {e Honored shed hints}: [SHED queue-full] / [SHED overload]
       replies carry the server's [retry-after-ms]; the client sleeps
       that long (capped by [max_shed_wait_ms] and the remaining
       deadline) instead of its default backoff.}
    {- {e Hedged requests} (optional): conversions are pure, so when
       [hedge_ms] is set and a second healthy endpoint exists, a request
       that has not answered within the hedge delay is duplicated to the
       other endpoint and the first conversational answer wins.}
    {- {e Local fallback tier}: when every remote tier is exhausted and
       a [local] conversion function was supplied, the request is
       answered in-process — the caller still gets a correct conversion
       when the whole fleet is down.}}

    Remote [ERR syntax] / [ERR range] / [ERR budget] replies are
    {e determinative}: conversions are pure, so an input the server
    rejects with a typed error is invalid everywhere and is returned
    immediately as the corresponding {!Robust.Error.t} without retrying.

    Thread-safety: one [t] may be shared by any number of threads and
    domains; all shared state sits behind one mutex held only for
    pointer-sized bookkeeping (never across I/O). *)

type addr =
  | Tcp of string * int
  | Unix_path of string  (** Unix-domain socket at this path *)

val addr_to_string : addr -> string

val parse_addr : string -> (addr, Robust.Error.t) result
(** Parses one endpoint address using the same grammar bdprintd's
    [--listen] accepts: [HOST:PORT], [:PORT] and bare [PORT] (host
    defaulting to 127.0.0.1), or [unix:PATH].  Malformed input is a
    typed [Range] error (exit code 2), reported before any socket is
    touched. *)

val parse_addrs : string -> (addr list, Robust.Error.t) result
(** Parses a comma-separated endpoint list ([ADDR[,ADDR...]]), skipping
    empty segments; errors on the first malformed address or on an
    empty list. *)

type config = {
  connect_timeout_ms : int;  (** per-connect bound (default 1000) *)
  request_timeout_ms : int;
      (** read/write bound per attempt when no deadline is set
          (default 5000); a deadline tightens it *)
  max_attempts : int;  (** total remote attempts per request (default 4) *)
  backoff_ms : float;  (** base backoff before the second attempt (5) *)
  backoff_multiplier : float;  (** exponential growth factor (2) *)
  backoff_cap_ms : float;  (** backoff ceiling (200) *)
  max_shed_wait_ms : int;
      (** cap on honoring a server [retry-after-ms] hint (2000) *)
  hedge_ms : int option;
      (** duplicate an unanswered request to a second endpoint after
          this many ms; [None] (default) disables hedging *)
  eject_threshold : int;
      (** consecutive transport failures before ejection (3) *)
  eject_cooldown_ms : int;
      (** ejection length before a readmission probe (1000) *)
  pool_size : int;  (** idle connections kept per endpoint (2) *)
}

val default_config : config

type tier =
  | Remote of addr  (** answered by this endpoint *)
  | Local  (** answered by the in-process fallback *)

type outcome = {
  output : string;
  degraded : bool;  (** the server's [DEG] flag (never set for [Local]) *)
  tier : tier;
  attempts : int;  (** remote attempts consumed (0 = straight to local) *)
}

type stats = {
  requests : int;
  remote_ok : int;
  remote_degraded : int;
  local_fallbacks : int;
  typed_errors : int;
  retries : int;  (** attempts beyond each request's first *)
  sheds_honored : int;  (** SHED replies waited out per the server hint *)
  hedges : int;  (** hedged secondaries launched *)
  hedge_wins : int;  (** hedged secondaries that answered first *)
  ejections : int;
  readmissions : int;
  reconnects : int;  (** fresh sockets opened (pool misses) *)
}

type t

val create :
  ?config:config ->
  ?local:(string -> (string, Robust.Error.t) result) ->
  addr list ->
  t
(** [create addrs] builds a client over the given endpoints (failover
    order = list order, then round-robin).  [local] is the in-process
    conversion used as the final fallback tier.  No sockets are opened
    until the first request.
    @raise Invalid_argument if [addrs] is empty. *)

val convert : t -> ?deadline_ms:int -> string -> (outcome, Robust.Error.t) result
(** One conversion through the resilience ladder: healthy remote
    endpoints (with retries, failover, shed waits and optional hedging),
    then the local fallback, then the last typed error.  [Error] is
    always one of the four {!Robust.Error.t} classes — transport
    failures surface as [Internal] only after every tier is exhausted;
    an exceeded [deadline_ms] surfaces as the standard [Budget]
    deadline error. *)

val close : t -> unit
(** Closes every pooled connection; subsequent {!convert} calls fail
    with a typed [Internal] error.  Idempotent. *)

val stats : t -> stats

val endpoint_states : t -> (string * bool) list
(** [(address, usable)] per endpoint, in failover order — [usable]
    means not currently ejected.  For status displays and tests. *)
