(** A domain-sharded, bounded hot-value cache in front of the
    conversion pipeline.

    Real traffic prints the same small set of values constantly (0, 1,
    0.5, small integers — see the Experimental Review survey cited in
    PAPERS.md), so a memo table turns the common case into one hash
    probe.  The table is sharded by key hash: each shard has its own
    mutex, so worker threads and domains contend only when they hit the
    same shard, and each shard's capacity is fixed — insertion beyond it
    evicts in FIFO order, keeping the whole cache strictly bounded
    however hostile the key stream.

    Only exact pipeline outputs belong here: degraded fallbacks and
    errors are never cached, so a cache hit is always a correct
    conversion. *)

type t

type stats = {
  hits : int;
  misses : int;
  entries : int;  (** currently cached pairs, summed over shards *)
  evictions : int;
  insertions : int;  (** new-key inserts; [insertions = entries + evictions] *)
  replacements : int;  (** in-place updates of an existing key *)
  shards : int;
  capacity : int;  (** total bound, summed over shards *)
}

val create : ?shards:int -> capacity:int -> unit -> t
(** [shards] defaults to 8 and is clamped to at least 1; [capacity] is
    the total entry bound, divided evenly across shards (at least one
    entry per shard).
    @raise Invalid_argument if [capacity < 1]. *)

val find : t -> string -> string option
(** Lookup; counts a hit or a miss. *)

val add : t -> string -> string -> unit
(** Inserts (evicting the shard's oldest entry when full); replaces any
    existing binding for the key without growing the shard. *)

val stats : t -> stats
(** Aggregated over all shards; each shard is read under its own mutex,
    so the counters reconcile exactly once writers are quiescent:
    [hits + misses] = total finds, [insertions = entries + evictions],
    and [insertions + replacements] = total adds. *)

val per_shard_capacity : t -> int
(** The fixed per-shard entry bound. *)

val shard_entries : t -> int array
(** Live entry count of each shard — never exceeds
    {!per_shard_capacity}, which the concurrency tests assert under
    multi-domain load. *)
