(** Accurate floating-point input (Clinger [1], Algorithm M style).

    The paper's free-format guarantee is stated relative to "an accurate
    floating-point input routine": the printed string must convert back to
    the very same float, whatever rounding rule the reader applies.  This
    module is that routine, built on exact integer arithmetic so there is
    no double-rounding anywhere: given a decimal string and a target
    format, it returns the {e correctly rounded} value under any of the six
    rounding modes in {!Fp.Rounding}.

    It doubles as the verification half of every round-trip test in this
    repository.

    {b Robustness contract.}  The [result]-returning entry points never
    raise, for any input: failures come back as {!Robust.Error.t} (syntax
    errors with positions, budget violations for pathological sizes,
    internal faults).  Inputs whose magnitude is far outside the format —
    [1e999999999] and friends — are decided by a fast-reject gate into the
    correctly rounded extreme (zero, minimum denormal, largest finite or
    infinity, depending on the rounding mode) {e without} building the
    corresponding bignum power, in time independent of the exponent. *)

type decimal = {
  neg : bool;
  digits : Bignum.Nat.t;  (** the digit string read as an integer *)
  exp10 : int;  (** value is [±digits × 10^exp10] *)
}

type parsed = Number of decimal | Infinity of bool | Not_a_number

val parse : string -> (parsed, Robust.Error.t) result
(** Accepts [[+-]? digits [. digits]? ([eE] [+-]? digits)?], plus ["inf"],
    ["infinity"] and ["nan"] (case-insensitive), with [_] digit separators.
    Exponent magnitudes are clamped at two billion (far beyond every
    representable range, and settled by the fast-reject gate); inputs
    longer than the {!Robust.Budget} cap return a budget error. *)

val read_decimal :
  ?mode:Fp.Rounding.mode -> Fp.Format_spec.t -> decimal -> Fp.Value.t
(** Correctly rounded conversion of an exact decimal into the format.
    Overflow follows IEEE semantics per mode (directed modes toward zero
    saturate at the largest finite value); underflow reaches denormals and
    then signed zero.  Default mode is round-to-nearest-even.  May raise
    [Robust.Error.E] on a budget violation (callers arriving through
    {!read} get it as [Error]). *)

val read :
  ?mode:Fp.Rounding.mode ->
  Fp.Format_spec.t ->
  string ->
  (Fp.Value.t, Robust.Error.t) result
(** [parse] followed by {!read_decimal}.  Never raises. *)

val read_float :
  ?mode:Fp.Rounding.mode -> string -> (float, Robust.Error.t) result
(** Convenience wrapper targeting binary64 and returning an OCaml float. *)

val read_ratio :
  ?mode:Fp.Rounding.mode -> Fp.Format_spec.t -> Bignum.Ratio.t -> Fp.Value.t
(** Correctly rounded conversion of an arbitrary (possibly negative)
    rational — the general core the decimal entry points wrap. *)

val decide_extreme :
  ?mode:Fp.Rounding.mode ->
  Fp.Format_spec.t ->
  neg:bool ->
  base:int ->
  bits:int ->
  scale:int ->
  Fp.Value.t option
(** The fast-reject gate, shared with the hex reader.  For a non-zero
    magnitude [m × base^scale] where [m] has [bits] significant bits:
    [Some v] when the magnitude is provably beyond the format's overflow
    or underflow cliff (with a safety margin), in which case [v] is the
    correctly rounded extreme under [mode]; [None] when the value may be
    in range and the exact path must run. *)

val read_in_base :
  ?mode:Fp.Rounding.mode ->
  base:int ->
  Fp.Format_spec.t ->
  string ->
  (Fp.Value.t, Robust.Error.t) result
(** Read a string written in an arbitrary base (2-36), as produced by
    {!Dragon.Render}: digits [0-9a-z] (case-insensitive), an optional
    radix point, and an optional exponent part introduced by ['e'] (bases
    up to 14) or ['^'] (all bases), whose value is a {e decimal} integer
    scaling by powers of [base].  [#] characters are accepted and read as
    zero digits, so fixed-format output with significance marks reads
    back directly.  A base outside 2..36 is a [Range] error (never an
    exception). *)
