module Nat = Bignum.Nat
module Bigint = Bignum.Bigint
module Ratio = Bignum.Ratio
module Format_spec = Fp.Format_spec
module Value = Fp.Value
module Rounding = Fp.Rounding
module Error = Robust.Error
module Budget = Robust.Budget

type decimal = { neg : bool; digits : Nat.t; exp10 : int }

type parsed = Number of decimal | Infinity of bool | Not_a_number

(* Exponent digits accumulate into a native int; clamp the magnitude so a
   ridiculous exponent string cannot overflow the accumulator.  Anything
   at the clamp is light-years outside every representable format and is
   settled by the fast-reject gate below. *)
let exp_clamp = 2_000_000_000

(* [catch] on an already-result-returning body. *)
let guarded f = Result.join (Error.catch f)

(* ------------------------------------------------------------------ *)
(* Parsing *)

let parse_body s =
  let len = String.length s in
  Budget.check_input_length len;
  let pos = ref 0 in
  let error what = Error (Error.syntax ~pos:!pos ~input:s what) in
  if len = 0 then Error (Error.syntax ~input:s "empty string")
  else begin
    let neg =
      match s.[0] with
      | '-' ->
        incr pos;
        true
      | '+' ->
        incr pos;
        false
      | _ -> false
    in
    let rest = String.lowercase_ascii (String.sub s !pos (len - !pos)) in
    match rest with
    | "inf" | "infinity" -> Ok (Infinity neg)
    | "nan" -> Ok Not_a_number
    | _ ->
      let digits = Buffer.create 32 in
      let frac_len = ref 0 in
      let seen_digit = ref false in
      let take_digits ~counting =
        let continue = ref true in
        while !continue && !pos < len do
          match s.[!pos] with
          | '0' .. '9' as c ->
            Buffer.add_char digits c;
            seen_digit := true;
            if counting then incr frac_len;
            incr pos
          | '_' -> incr pos
          | _ -> continue := false
        done
      in
      take_digits ~counting:false;
      if !pos < len && s.[!pos] = '.' then begin
        incr pos;
        take_digits ~counting:true
      end;
      if not !seen_digit then error "expected digits"
      else begin
        let exp =
          if !pos < len && (s.[!pos] = 'e' || s.[!pos] = 'E') then begin
            incr pos;
            let esign =
              if !pos < len && s.[!pos] = '-' then (
                incr pos;
                -1)
              else if !pos < len && s.[!pos] = '+' then (
                incr pos;
                1)
              else 1
            in
            let start = !pos in
            let v = ref 0 in
            while !pos < len && s.[!pos] >= '0' && s.[!pos] <= '9' do
              if !v < exp_clamp then
                v := (!v * 10) + (Char.code s.[!pos] - Char.code '0');
              incr pos
            done;
            if !pos = start then None else Some (esign * min !v exp_clamp)
          end
          else Some 0
        in
        match exp with
        | None -> error "expected exponent digits"
        | Some exp ->
          if !pos <> len then error "trailing characters"
          else
            Ok
              (Number
                 {
                   neg;
                   digits =
                     ((Nat.of_string ("0" ^ Buffer.contents digits))
                      [@lint.can_raise
                        Invalid_argument] (* buffer holds only '0'..'9' *));
                   exp10 = exp - !frac_len;
                 })
      end
  end

let parse s = guarded (fun () -> parse_body s)

(* ------------------------------------------------------------------ *)
(* Fast rejection of extreme magnitudes (Lemire-style gate)

   The value is m × base^scale with m non-zero and [bits] significant
   bits.  Its base-2 logarithm lies in [scale·log2 base + bits - 1,
   scale·log2 base + bits).  When that interval sits wholly above the
   format's overflow cliff or below its underflow cliff (with several
   bits of safety margin for the float estimate), the rounded result is
   already decided; a tiny surrogate fraction with the same
   classification goes through the one true rounding routine so every
   mode's overflow/underflow semantics (saturate vs infinity, zero vs
   minimum denormal) come out exactly as the real computation would —
   without ever constructing base^|scale|. *)

let decide_extreme ?mode (fmt : Format_spec.t) ~neg ~base ~bits ~scale =
  let log2b = log (float_of_int base) /. log 2. in
  let log2_fmt_b = log (float_of_int fmt.b) /. log 2. in
  let lo = (float_of_int scale *. log2b) +. float_of_int (bits - 1) in
  let hi = (float_of_int scale *. log2b) +. float_of_int bits in
  (* largest finite < fmt.b^(emax+p); smallest positive = fmt.b^emin *)
  let max_bits = (float_of_int (fmt.emax + fmt.p) *. log2_fmt_b) +. 4. in
  let min_bits = (float_of_int (fmt.emin - 2) *. log2_fmt_b) -. 4. in
  if lo > max_bits then
    let k = int_of_float max_bits + 8 in
    Some
      (Fp.Softfloat.round_fraction ?mode fmt ~neg (Nat.shift_left Nat.one k)
         Nat.one)
  else if hi < min_bits then
    let k = int_of_float (-.min_bits) + 8 in
    Some
      (Fp.Softfloat.round_fraction ?mode fmt ~neg Nat.one
         (Nat.shift_left Nat.one k))
  else None
[@@lint.can_raise
  Assert_failure
  (* raising internal: round_fraction asserts its invariants and the
     budget checks raise Error.E; every caller sits under [guarded] *)]

(* ------------------------------------------------------------------ *)
(* Correctly rounded conversion *)

(* Rounding an exact magnitude into the format lives in Fp.Softfloat
   (round_fraction); the reader only assembles u/v from text. *)

let read_ratio ?(mode = Rounding.To_nearest_even) fmt r =
  if Ratio.sign r = 0 then Value.Zero false
  else begin
    let abs = Ratio.abs r in
    Fp.Softfloat.round_fraction ~mode fmt ~neg:(Ratio.sign r < 0)
      ((Bigint.to_nat_exn (Ratio.num abs))
       [@lint.can_raise Invalid_argument] (* Ratio.abs: num >= 0 *))
      ((Bigint.to_nat_exn (Ratio.den abs))
       [@lint.can_raise Invalid_argument] (* Ratio invariant: den > 0 *))
  end
[@@lint.can_raise
  Assert_failure
  (* deliberate raising API: feeds round_fraction directly; callers that
     sit on a boundary wrap it (oracle, tests run it bare) *)]

let read_decimal ?(mode = Rounding.To_nearest_even) fmt (d : decimal) =
  if Nat.is_zero d.digits then Value.Zero d.neg
  else begin
    let bits = Nat.bit_length d.digits in
    match
      decide_extreme ~mode fmt ~neg:d.neg ~base:10 ~bits ~scale:d.exp10
    with
    | Some v -> v
    | None ->
      Budget.check_exponent d.exp10;
      Budget.check_bignum_bits
        (bits + int_of_float (3.33 *. float_of_int (abs d.exp10)) + 64);
      let u, v =
        if d.exp10 >= 0 then (Nat.mul d.digits (Nat.pow_int 10 d.exp10), Nat.one)
        else (d.digits, Nat.pow_int 10 (-d.exp10))
      in
      Fp.Softfloat.round_fraction ~mode fmt ~neg:d.neg u v
  end
[@@lint.can_raise
  Assert_failure
  (* deliberate raising API: budget checks raise Error.E and the bignum
     kernels assert invariants; [read] guards it, other callers must *)]

let read_in_base_body ?mode ~base fmt s =
  if base < 2 || base > 36 then
    Error
      (Error.range ~what:"base" (Printf.sprintf "%d not in 2..36" base))
  else begin
    let len = String.length s in
    Budget.check_input_length len;
    let err what = Error (Error.syntax ~input:s what) in
    if len = 0 then err "empty string"
    else begin
      let pos = ref 0 in
      let neg =
        match s.[0] with
        | '-' ->
          incr pos;
          true
        | '+' ->
          incr pos;
          false
        | _ -> false
      in
      let digit_value c =
        let v =
          match c with
          | '0' .. '9' -> Char.code c - Char.code '0'
          | 'a' .. 'z' -> Char.code c - Char.code 'a' + 10
          | 'A' .. 'Z' -> Char.code c - Char.code 'A' + 10
          | '#' -> 0 (* insignificant positions read as zero *)
          | _ -> -1
        in
        if v >= 0 && v < base then Some v else None
      in
      let exp_marker c = c = '^' || (base <= 14 && (c = 'e' || c = 'E')) in
      let digits = ref [] in
      let ndigits = ref 0 in
      let frac_len = ref 0 in
      let in_frac = ref false in
      let parse_error = ref None in
      let stop = ref false in
      while (not !stop) && !pos < len && !parse_error = None do
        let c = s.[!pos] in
        if exp_marker c then stop := true
        else begin
          (match c with
          | '.' ->
            if !in_frac then parse_error := Some "second radix point"
            else in_frac := true
          | '_' -> ()
          | c -> (
            match digit_value c with
            | Some d ->
              digits := d :: !digits;
              incr ndigits;
              if !in_frac then incr frac_len
            | None -> parse_error := Some "unexpected character"));
          incr pos
        end
      done;
      match !parse_error with
      | Some e -> err e
      | None ->
        if !ndigits = 0 then err "no digits"
        else begin
          let exp =
            if !stop then begin
              (* exponent part: decimal integer *)
              incr pos;
              let esign =
                if !pos < len && s.[!pos] = '-' then (
                  incr pos;
                  -1)
                else if !pos < len && s.[!pos] = '+' then (
                  incr pos;
                  1)
                else 1
              in
              let start = !pos in
              let v = ref 0 in
              while !pos < len && s.[!pos] >= '0' && s.[!pos] <= '9' do
                if !v < exp_clamp then
                  v := (!v * 10) + (Char.code s.[!pos] - Char.code '0');
                incr pos
              done;
              if !pos = start || !pos <> len then None
              else Some (esign * min !v exp_clamp)
            end
            else if !pos <> len then None
            else Some 0
          in
          match exp with
          | None -> err "malformed exponent"
          | Some exp ->
            let mantissa =
              Nat.of_base_digits ~base (Array.of_list (List.rev !digits))
            in
            if Nat.is_zero mantissa then Ok (Value.Zero neg)
            else begin
              let scale = exp - !frac_len in
              let bits = Nat.bit_length mantissa in
              match decide_extreme ?mode fmt ~neg ~base ~bits ~scale with
              | Some v -> Ok v
              | None ->
                Budget.check_exponent scale;
                Budget.check_bignum_bits
                  (bits
                  + int_of_float
                      (float_of_int (abs scale)
                      *. (log (float_of_int base) /. log 2.))
                  + 64);
                let u, v =
                  if scale >= 0 then
                    (Nat.mul mantissa (Nat.pow_int base scale), Nat.one)
                  else (mantissa, Nat.pow_int base (-scale))
                in
                Ok (Fp.Softfloat.round_fraction ?mode fmt ~neg u v)
            end
        end
    end
  end
[@@lint.can_raise
  Assert_failure
  (* raising internal: same contract as [read_decimal]; the public
     [read_in_base] wraps it under [guarded] *)]

let read_in_base ?mode ~base fmt s =
  guarded (fun () -> read_in_base_body ?mode ~base fmt s)

let read ?mode fmt s =
  guarded (fun () ->
      match parse_body s with
      | Error _ as e -> e
      | Ok (Infinity neg) -> Ok (Value.Inf neg)
      | Ok Not_a_number -> Ok Value.Nan
      | Ok (Number d) -> Ok (read_decimal ?mode fmt d))

(* [compose] runs outside [read]'s guard, so it gets its own: a bit
   pattern that trips an internal invariant must surface as a structured
   error here too, not as an escaping exception. *)
let read_float ?mode s =
  guarded (fun () ->
      match read ?mode Format_spec.binary64 s with
      | Error _ as e -> e
      | Ok v -> Ok (Fp.Ieee.compose v))
