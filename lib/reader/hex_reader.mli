(** Reading C17 hexadecimal floating-point literals
    ([[+-]?0x h.hhh p±ddd]) with correct rounding into any binary format.

    Hexadecimal literals describe the value exactly ([h × 2^p] with a
    power-of-two scale), so for the format they were printed from the
    conversion is lossless; reading into a narrower format (binary32,
    binary16) performs a single correct rounding in the requested mode —
    which makes this a convenient exact input channel for tests and
    examples. *)

val read :
  ?mode:Fp.Rounding.mode ->
  Fp.Format_spec.t ->
  string ->
  (Fp.Value.t, Robust.Error.t) result
(** Never raises: malformed literals are [Syntax] errors, oversized
    inputs are [Budget] errors, and astronomically scaled exponents
    ([0x1p999999999]) are fast-rejected to the correctly rounded extreme
    without building the corresponding power of two. *)

val read_float :
  ?mode:Fp.Rounding.mode -> string -> (float, Robust.Error.t) result
(** Into binary64, as an OCaml float. *)
