module Nat = Bignum.Nat
module Error = Robust.Error
module Budget = Robust.Budget

(* See Exact.exp_clamp: cap the binary-exponent accumulator; anything at
   the clamp is settled by the fast-reject gate. *)
let exp_clamp = 2_000_000_000

let read_body ?mode fmt s =
  let len = String.length s in
  Budget.check_input_length len;
  let err what = Error (Error.syntax ~input:s what) in
  let pos = ref 0 in
  let neg =
    if len > 0 && (s.[0] = '-' || s.[0] = '+') then begin
      incr pos;
      s.[0] = '-'
    end
    else false
  in
  if
    !pos + 2 > len
    || s.[!pos] <> '0'
    || (s.[!pos + 1] <> 'x' && s.[!pos + 1] <> 'X')
  then err "expected 0x prefix"
  else begin
    pos := !pos + 2;
    let digit c =
      match c with
      | '0' .. '9' -> Some (Char.code c - Char.code '0')
      | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
      | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
      | _ -> None
    in
    let mantissa = ref Nat.zero in
    let ndigits = ref 0 in
    let frac_digits = ref 0 in
    let in_frac = ref false in
    let scanning = ref true in
    let bad = ref false in
    while !scanning && !pos < len do
      let c = s.[!pos] in
      if c = '.' then
        if !in_frac then begin
          bad := true;
          scanning := false
        end
        else begin
          in_frac := true;
          incr pos
        end
      else if c = 'p' || c = 'P' then scanning := false
      else begin
        match digit c with
        | Some d ->
          mantissa := Nat.add_int (Nat.shift_left !mantissa 4) d;
          incr ndigits;
          if !in_frac then incr frac_digits;
          incr pos
        | None ->
          bad := true;
          scanning := false
      end
    done;
    if !bad then err "unexpected character"
    else if !ndigits = 0 then err "no hex digits"
    else begin
      (* binary exponent part: mandatory per C17, optional here (p0) *)
      let exp =
        if !pos >= len then Some 0
        else if s.[!pos] = 'p' || s.[!pos] = 'P' then begin
          incr pos;
          let esign =
            if !pos < len && s.[!pos] = '-' then (
              incr pos;
              -1)
            else if !pos < len && s.[!pos] = '+' then (
              incr pos;
              1)
            else 1
          in
          let start = !pos in
          let v = ref 0 in
          while !pos < len && s.[!pos] >= '0' && s.[!pos] <= '9' do
            if !v < exp_clamp then
              v := (!v * 10) + (Char.code s.[!pos] - Char.code '0');
            incr pos
          done;
          if !pos = start || !pos <> len then None
          else Some (esign * min !v exp_clamp)
        end
        else None
      in
      match exp with
      | None -> err "malformed binary exponent"
      | Some p ->
        if Nat.is_zero !mantissa then Ok (Fp.Value.Zero neg)
        else begin
          (* value = mantissa * 2^(p - 4*frac_digits) *)
          let e2 = p - (4 * !frac_digits) in
          let bits = Nat.bit_length !mantissa in
          match Exact.decide_extreme ?mode fmt ~neg ~base:2 ~bits ~scale:e2 with
          | Some v -> Ok v
          | None ->
            Budget.check_bignum_bits (bits + abs e2 + 64);
            let u, v =
              if e2 >= 0 then (Nat.shift_left !mantissa e2, Nat.one)
              else (!mantissa, Nat.shift_left Nat.one (-e2))
            in
            Ok (Fp.Softfloat.round_fraction ?mode fmt ~neg u v)
        end
    end
  end
[@@lint.can_raise
  Assert_failure
  (* raising internal: budget checks raise Error.E, the bignum kernels
     assert invariants; the public [read] wraps it under [catch] *)]

let read ?mode fmt s = Result.join (Error.catch (fun () -> read_body ?mode fmt s))

(* [compose] needs its own guard: it runs on [read]'s result, outside
   [read]'s catch region. *)
let read_float ?mode s =
  Result.join
    (Error.catch (fun () ->
         match read ?mode Fp.Format_spec.binary64 s with
         | Error _ as e -> e
         | Ok v -> Ok (Fp.Ieee.compose v)))
