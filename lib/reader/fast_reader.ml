module Nat = Bignum.Nat

type stats = { exact : int; extended : int; fallback : int }

(* Tier counters are telemetry counters (atomic, summed across worker
   domains) and always-on: [stats ()] is a public contract the ablation
   bench reads with telemetry switched off.  One uncontended
   fetch-and-add per conversion. *)
let tier_counter tier =
  Telemetry.Metrics.counter
    ~labels:[ ("tier", tier) ]
    ~help:"Reader conversions by tier: hardware-exact fast path, \
           extended-precision certified, or exact bignum fallback."
    "bdprint_reader_tier_total"
[@@lint.can_raise
  Invalid_argument
  (* registry rejects malformed metric names at module init — a bad name
     here is a programming error that should abort startup loudly *)]

let n_exact = tier_counter "exact"
let n_extended = tier_counter "extended"
let n_fallback = tier_counter "fallback"

let stats () =
  {
    exact = Telemetry.Metrics.value n_exact;
    extended = Telemetry.Metrics.value n_extended;
    fallback = Telemetry.Metrics.value n_fallback;
  }

(* Powers of ten exactly representable in binary64: 10^22 = 2^22 * 5^22
   and 5^22 < 2^53. *)
let exact_pow10 =
  Array.init 23 (fun i -> 10. ** float_of_int i)
  [@@lint.domain_safe "read-only lookup table built at init"]

let two53 = 9007199254740992 (* 2^53 *)

let fallback (d : Exact.decimal) =
  (Telemetry.Metrics.incr n_fallback)
  [@lint.always_on "tier counters back the always-available stats contract"];
  Fp.Ieee.compose (Exact.read_decimal Fp.Format_spec.binary64 d)
[@@lint.can_raise
  Assert_failure
  (* raising internal: inherits [Exact.read_decimal]'s contract; the
     public [read] wraps every tier under [catch] *)]

(* Tier 2: extended-precision scaling with certification.  [m] is the
   leading (up to 18) decimal digits as an int, [scale] the power of ten
   to apply, [truncated] whether digits were dropped. *)
let extended_tier (d : Exact.decimal) m scale truncated =
  if scale < -350 || scale > 350 then fallback d
  else begin
    let y = Ext64.mul (Ext64.of_int m) (Ext64.pow10_correct scale) in
    (* value = y.m * 2^(y.e); the most significant bit sits at 2^(y.e+63).
       Stay clear of denormals and overflow, where 53-bit rounding is not
       the whole story. *)
    if y.Ext64.e + 63 < -1021 || y.Ext64.e + 64 > 1023 then fallback d
    else begin
      let kept = Int64.shift_right_logical y.Ext64.m 11 in
      let dropped = Int64.to_int (Int64.logand y.Ext64.m 0x7FFL) in
      (* error budget in units of the dropped field's lsb (2^-63 relative):
         ~1 ulp of 2^-64 from the correctly rounded table and the rounded
         multiplication, plus the digit truncation (bounded by 10^-17
         relative for an 18-digit mantissa). *)
      let budget = if truncated then 200 else 6 in
      if abs (dropped - 1024) <= budget then fallback d
      else begin
        (Telemetry.Metrics.incr n_extended)
        [@lint.always_on "tier counters back the always-available stats contract"];
        let up = dropped > 1024 in
        let mant = Int64.add kept (if up then 1L else 0L) in
        let x = Float.ldexp (Int64.to_float mant) (y.Ext64.e + 11) in
        if d.Exact.neg then -.x else x
      end
    end
  end
[@@lint.can_raise
  Assert_failure
  (* raising internal: [Ext64] preconditions and the bignum fallback;
     the public [read] wraps every tier under [catch] *)]

let read_decimal (d : Exact.decimal) =
  if Nat.is_zero d.Exact.digits then if d.Exact.neg then -0. else 0.
  else begin
    match Nat.to_int_opt d.Exact.digits with
    | Some m when m <= two53 && abs d.Exact.exp10 <= 22 ->
      (* Tier 1 (Clinger): both operands exact, one IEEE operation *)
      (Telemetry.Metrics.incr n_exact)
      [@lint.always_on "tier counters back the always-available stats contract"];
      let x =
        if d.Exact.exp10 >= 0 then
          float_of_int m *. exact_pow10.(d.Exact.exp10)
        else float_of_int m /. exact_pow10.(-d.Exact.exp10)
      in
      if d.Exact.neg then -.x else x
    | Some m when m < 1_000_000_000_000_000_000 ->
      extended_tier d m d.Exact.exp10 false
    | _ ->
      (* truncate to the leading 18 digits *)
      let digits = Nat.to_base_digits ~base:10 d.Exact.digits in
      let len = Array.length digits in
      if len <= 18 then
        (* small digit count but large magnitude: to_int must succeed *)
        extended_tier d
          ((Nat.to_int_exn d.Exact.digits)
           [@lint.can_raise Invalid_argument] (* <= 18 digits fits an int *))
          d.Exact.exp10 false
      else begin
        let m = ref 0 in
        for i = 0 to 17 do
          m := (!m * 10) + digits.(i)
        done;
        let truncated =
          let rest = ref false in
          for i = 18 to len - 1 do
            if digits.(i) <> 0 then rest := true
          done;
          !rest
        in
        extended_tier d !m (d.Exact.exp10 + len - 18) truncated
      end
  end
[@@lint.can_raise
  Assert_failure
  (* deliberate raising API: tier dispatch over raising internals; the
     public [read] guards it, bare callers (benches) accept aborts *)]

let read s =
  Result.join
    (Robust.Error.catch (fun () ->
         match Exact.parse s with
         | Error _ as e -> e
         | Ok (Exact.Infinity neg) ->
           Ok (if neg then Float.neg_infinity else Float.infinity)
         | Ok Exact.Not_a_number -> Ok Float.nan
         | Ok (Exact.Number d) -> Ok (read_decimal d)))
