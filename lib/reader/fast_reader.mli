(** Certified fast decimal-to-binary64 conversion (Clinger [1] style).

    Clinger's reading paper — the input-side companion of Burger & Dybvig
    — observes that most conversions don't need bignums: either the value
    is exactly computable in hardware floats ([d × 10^k] with both parts
    exactly representable), or an extended-precision estimate lands far
    enough from the rounding boundary to be {e certified} correct.  Only
    the residue of hard cases needs exact integer arithmetic.

    The three tiers here:

    + {b exact}: [|k| <= 22] and the mantissa fits 2^53 — one hardware
      multiply or divide is correctly rounded by IEEE semantics;
    + {b extended}: scale in {!Ext64} (64-bit mantissa), round to 53 bits
      and accept when the dropped tail is provably far from the halfway
      point;
    + {b fallback}: {!Exact.read_decimal}, the exact bignum path.

    Results are {e always} correctly rounded to nearest-even: the fast
    tiers only answer when they can prove they agree with the fallback. *)

val read : string -> (float, Robust.Error.t) result
(** Parse and convert to binary64, round-to-nearest-even.  Never
    raises; shares the exact reader's structured errors and fast-reject
    gate. *)

val read_decimal : Exact.decimal -> float
(** The tiered conversion on an already-parsed decimal. *)

type stats = { exact : int; extended : int; fallback : int }

val stats : unit -> stats
(** Monotonic tier counters, for the ablation bench. *)
