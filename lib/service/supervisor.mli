(** A supervised parallel conversion service: a worker pool on OCaml 5
    domains that turns the one-shot conversion pipeline into a
    long-running batch service with bounded memory and total, structured
    failure behaviour.

    {ul
    {- {e Bounded submission with backpressure}: at most
       [queue_capacity] requests are in flight (submitted but not yet
       emitted); {!submit} blocks beyond that.}
    {- {e Per-request deadlines}: enforced cooperatively through the
       {!Robust.Budget} check sites inside the digit loops; an expired
       request fails with a structured [Budget] timeout error
       ([what = Budget.deadline_what]) within one unit of work.}
    {- {e Retries}: [Internal]-class failures (how transient injected
       faults surface) are retried with capped exponential backoff;
       [Syntax]/[Range]/[Budget] failures fail fast.}
    {- {e Circuit breaker}: repeated post-retry [Internal] failures open
       a breaker that degrades to a clearly-marked fallback ([%.17g] via
       the host float parser, tagged [Degraded]) instead of refusing
       service, and recovers through half-open probes.}
    {- {e Order preservation}: replies are delivered to [emit] (on a
       dedicated collector domain, never concurrently) in exact
       submission order.}
    {- {e Crash detection and respawn}: an exception that escapes a
       worker loop (the [service.worker-kill] fault point injects one)
       kills that domain for real; the dying worker first answers its
       in-flight request through the breaker-backed degraded fallback,
       records the failure against the breaker, and spawns its own
       replacement — so a crash costs one degraded reply, never a lost
       request or a shrinking pool.}
    {- {e Wedge detection (watchdog)}: with a {!watchdog_policy}, a
       monitor domain heartbeats every dequeued request.  A request held
       past its deadline plus [grace_ms] (or past [stuck_ms] without a
       deadline) on a live-but-wedged worker — the
       [service.worker-wedge] fault point injects one — is {e cancelled}:
       answered immediately with a structured timeout, its worker
       abandoned (OCaml domains cannot be killed; the worker's late
       reply is dropped and the worker exits when it finally wakes) and
       a replacement spawned, so a wedge costs one timed-out reply and
       one domain spawn, never a stuck connection or a shrinking pool.}
    {- {e Graceful shutdown}: {!shutdown} drains the queue — every
       submitted request is emitted exactly once — then joins all
       domains and reports final statistics.}} *)

type retry_policy = {
  max_retries : int;  (** additional attempts after the first *)
  backoff_ms : float;  (** pause before the first retry *)
  backoff_multiplier : float;
  backoff_cap_ms : float;
}

val default_retry : retry_policy
(** 4 retries, 1 ms initial backoff, doubling, capped at 50 ms. *)

type watchdog_policy = {
  poll_ms : int;  (** scan interval of the monitor domain *)
  grace_ms : int;
      (** slack past a request's deadline before its worker is declared
          wedged — covers the cooperative check-site latency of a
          healthy worker *)
  stuck_ms : int;
      (** wedge threshold for requests carrying no deadline *)
}

val default_watchdog : watchdog_policy
(** 20 ms poll, 100 ms grace, 10 s stuck threshold. *)

type outcome =
  | Done of string  (** converted by the real pipeline *)
  | Degraded of string
      (** breaker-open fallback output — correct but not the pipeline's
          (host [%.17g]); callers must keep the tag visible *)
  | Failed of Robust.Error.t

type reply = {
  lineno : int;  (** caller-supplied request label (input line number) *)
  input : string;
  outcome : outcome;
  attempts : int;  (** convert attempts made; 0 for breaker fallbacks *)
}

type worker_stats = {
  worker : int;  (** worker domain index, [0 .. jobs-1] *)
  processed : int;  (** replies produced by this worker *)
  retried : int;  (** requests that needed at least one retry *)
  degraded : int;  (** breaker-fallback replies *)
}

type stats = {
  submitted : int;
  completed : int;
  succeeded : int;
  degraded : int;
  retries : int;  (** total retry attempts across all requests *)
  syntax_failures : int;
  range_failures : int;
  budget_failures : int;  (** includes deadline timeouts *)
  internal_failures : int;  (** post-retry, i.e. retries did not mask *)
  crashes : int;
      (** worker-domain deaths detected (exceptions escaping a worker
          loop, e.g. an injected [service.worker-kill] fault); each
          crash's in-flight request is answered through the degraded
          fallback channel rather than lost *)
  respawns : int;
      (** replacement worker domains spawned after crashes or wedges *)
  wedges : int;
      (** live-but-wedged workers the watchdog cancelled: the stuck
          request was answered with a structured timeout and the worker
          abandoned and replaced *)
  breaker_state : string;
  breaker_trips : int;
  max_in_flight : int;  (** high-water mark of submitted-not-yet-emitted *)
  capacity : int;
  jobs : int;
  workers : worker_stats array;  (** per-worker breakdown, indexed by domain *)
}

type t

val start :
  ?jobs:int ->
  ?queue_capacity:int ->
  ?retry:retry_policy ->
  ?breaker:Breaker.policy ->
  ?watchdog:watchdog_policy ->
  ?fallback:(string -> (string, Robust.Error.t) result) ->
  emit:(reply -> unit) ->
  (string -> (string, Robust.Error.t) result) ->
  t
(** [start ~emit convert] spawns [jobs] worker domains (default 2) and
    one collector domain.  [watchdog] (default: none) additionally
    spawns the wedge-detection monitor domain.  [convert] runs on worker domains — it must be
    safe to call concurrently — and is re-guarded with
    {!Robust.Error.catch}, so even an exception-throwing convert cannot
    kill a worker.  [emit] receives every reply in submission order on
    the collector domain and must not raise.  The ambient
    {!Robust.Budget} of the starting domain is captured and installed in
    every worker.  [fallback] defaults to host [float_of_string] +
    [%.17g]. *)

val submit : t -> ?deadline_ms:int -> ?tid:int -> lineno:int -> string -> unit
(** Enqueues a request.  Blocks while [queue_capacity] requests are in
    flight (backpressure).  [deadline_ms] grants a wall-clock budget
    measured from submission — queue wait counts, so a 0 ms deadline
    fails with a structured timeout without converting.  [tid]
    (default 0 = untraced) is the request's {!Telemetry.Tracing} id:
    the queue-wait span opens at submission, and the worker that
    dequeues the job adopts the id so its pipeline spans land on the
    request's trace.
    @raise Invalid_argument after {!shutdown}. *)

val shutdown : t -> stats
(** Closes the queue, waits for workers to drain every submitted
    request, waits for the collector to emit every reply (in order),
    joins all domains, and returns the final statistics.  Idempotent. *)

val stats : t -> stats
(** A consistent snapshot; callable at any time. *)

val breaker_state : t -> string

val pp_stats : Format.formatter -> stats -> unit
(** Multi-line [stats: ...] rendering used by [bdprint --stats]. *)
