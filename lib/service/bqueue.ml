type 'a t = {
  capacity : int;
  q : 'a Queue.t;
  m : Mutex.t;
  room : Condition.t;
  data : Condition.t;
  mutable closed : bool;
}
[@@lint.guarded_by "m"]

exception Closed

let create ~capacity =
  if capacity < 1 then invalid_arg "Bqueue.create: capacity < 1";
  {
    capacity;
    q = Queue.create ();
    m = Mutex.create ();
    room = Condition.create ();
    data = Condition.create ();
    closed = false;
  }

let put t x =
  Mutex.lock t.m;
  while (not t.closed) && Queue.length t.q >= t.capacity do
    Condition.wait t.room t.m
  done;
  if t.closed then begin
    Mutex.unlock t.m;
    raise Closed
  end;
  Queue.push x t.q;
  Condition.signal t.data;
  Mutex.unlock t.m

let take t =
  Mutex.lock t.m;
  while Queue.is_empty t.q && not t.closed do
    Condition.wait t.data t.m
  done;
  let r =
    if Queue.is_empty t.q then None
    else begin
      let x = Queue.pop t.q in
      Condition.signal t.room;
      Some x
    end
  in
  Mutex.unlock t.m;
  r

let close t =
  Mutex.lock t.m;
  t.closed <- true;
  Condition.broadcast t.data;
  Condition.broadcast t.room;
  Mutex.unlock t.m

let length t =
  Mutex.lock t.m;
  let n = Queue.length t.q in
  Mutex.unlock t.m;
  n

let is_closed t =
  Mutex.lock t.m;
  let c = t.closed in
  Mutex.unlock t.m;
  c
