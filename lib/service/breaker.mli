(** A circuit breaker over the conversion pipeline.

    The supervised pool records one signal per completed request:
    {!record_success} for anything that proves the pipeline itself works
    (a successful conversion, or a clean [Syntax]/[Range]/[Budget]
    rejection), {!record_failure} for an [Internal]-class failure that
    survived the retry policy.  After [failure_threshold] consecutive
    failures the breaker {e opens}: requests are diverted to a degraded
    fallback instead of being refused.  After [cooldown_ms] one probe
    request is let through ({e half-open}); its outcome either closes
    the breaker or re-opens it for another cooldown — so a breaker never
    sticks open once the underlying faults clear. *)

type policy = {
  failure_threshold : int;
      (** consecutive [Internal] failures (post-retry) before opening *)
  cooldown_ms : int;  (** open duration before the next probe *)
}

val default_policy : policy
(** 8 consecutive failures, 200 ms cooldown. *)

type t

val create : ?policy:policy -> unit -> t

val admit : t -> [ `Proceed | `Probe | `Fallback ]
(** Per-request admission decision.  [`Proceed]: breaker closed, run
    normally.  [`Probe]: the cooldown has elapsed and this request is
    the (single) half-open probe — run normally and {e always} record
    its outcome.  [`Fallback]: serve the degraded fallback. *)

val record_success : t -> unit
val record_failure : t -> unit

val state_name : t -> string
(** ["closed"], ["open"] or ["half-open"]. *)

val trips : t -> int
(** Times the breaker has opened. *)
