type policy = { failure_threshold : int; cooldown_ms : int }

let default_policy = { failure_threshold = 8; cooldown_ms = 200 }

type state = Closed | Open of { until : float } | Half_open

type t = {
  policy : policy;
  m : Mutex.t;
  mutable state : state;
  mutable consecutive_failures : int;
  mutable trips : int;
}

let create ?(policy = default_policy) () =
  if policy.failure_threshold < 1 then
    invalid_arg "Breaker.create: failure_threshold < 1";
  {
    policy;
    m = Mutex.create ();
    state = Closed;
    consecutive_failures = 0;
    trips = 0;
  }

let now () = Unix.gettimeofday ()

let admit t =
  Mutex.lock t.m;
  let r =
    match t.state with
    | Closed -> `Proceed
    | Half_open ->
      (* a probe is already in flight; don't pile more load on a
         possibly-broken pipeline *)
      `Fallback
    | Open { until } ->
      if now () >= until then begin
        t.state <- Half_open;
        `Probe
      end
      else `Fallback
  in
  Mutex.unlock t.m;
  r

let record_success t =
  Mutex.lock t.m;
  t.consecutive_failures <- 0;
  t.state <- Closed;
  Mutex.unlock t.m

let open_locked t =
  t.state <-
    Open { until = now () +. (float_of_int t.policy.cooldown_ms /. 1000.) };
  t.trips <- t.trips + 1

let record_failure t =
  Mutex.lock t.m;
  t.consecutive_failures <- t.consecutive_failures + 1;
  (match t.state with
  | Half_open ->
    (* the probe failed: back to cooling down *)
    open_locked t
  | Closed ->
    if t.consecutive_failures >= t.policy.failure_threshold then open_locked t
  | Open _ ->
    (* a request admitted before the trip finished late; refresh the
       cooldown rather than double-counting a trip *)
    t.state <-
      Open { until = now () +. (float_of_int t.policy.cooldown_ms /. 1000.) });
  Mutex.unlock t.m

let state_name t =
  Mutex.lock t.m;
  let s =
    match t.state with
    | Closed -> "closed"
    | Open _ -> "open"
    | Half_open -> "half-open"
  in
  Mutex.unlock t.m;
  s

let trips t =
  Mutex.lock t.m;
  let n = t.trips in
  Mutex.unlock t.m;
  n
