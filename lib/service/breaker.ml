type policy = { failure_threshold : int; cooldown_ms : int }

let default_policy = { failure_threshold = 8; cooldown_ms = 200 }

type state = Closed | Open of { until : float } | Half_open

(* One-hot state gauges plus transition/trip counters.  Recorded
   unconditionally: transitions are rare events on the request path, and
   the chaos tests read trips with telemetry otherwise off.  A process
   runs one breaker (the CLI supervisor's), so process-global metrics
   describe it faithfully. *)
let state_gauge s =
  Telemetry.Metrics.gauge
    ~labels:[ ("state", s) ]
    ~help:"Circuit breaker state as a one-hot set: the current state's \
           gauge reads 1, the others 0."
    "bdprint_service_breaker_state"

let g_closed = state_gauge "closed"
let g_open = state_gauge "open"
let g_half_open = state_gauge "half-open"

let transition_counter target =
  Telemetry.Metrics.counter
    ~labels:[ ("to", target) ]
    ~help:"Circuit breaker state transitions by target state."
    "bdprint_service_breaker_transitions_total"

let m_to_closed = transition_counter "closed"
let m_to_open = transition_counter "open"
let m_to_half_open = transition_counter "half-open"

let m_trips =
  Telemetry.Metrics.counter
    ~help:"Circuit breaker trips (entries into the open state)."
    "bdprint_service_breaker_trips_total"

let publish_state st =
  let open Telemetry.Metrics in
  match st with
  | Closed ->
    set_gauge g_closed 1;
    set_gauge g_open 0;
    set_gauge g_half_open 0
  | Open _ ->
    set_gauge g_closed 0;
    set_gauge g_open 1;
    set_gauge g_half_open 0
  | Half_open ->
    set_gauge g_closed 0;
    set_gauge g_open 0;
    set_gauge g_half_open 1

type t = {
  policy : policy;
  m : Mutex.t;
  mutable state : state;
  mutable consecutive_failures : int;
  mutable trips : int;
}
[@@lint.guarded_by "m"]

let create ?(policy = default_policy) () =
  if policy.failure_threshold < 1 then
    invalid_arg "Breaker.create: failure_threshold < 1";
  publish_state Closed;
  {
    policy;
    m = Mutex.create ();
    state = Closed;
    consecutive_failures = 0;
    trips = 0;
  }

let now () = Unix.gettimeofday ()

let admit t =
  Mutex.lock t.m;
  let r =
    match t.state with
    | Closed -> `Proceed
    | Half_open ->
      (* a probe is already in flight; don't pile more load on a
         possibly-broken pipeline *)
      `Fallback
    | Open { until } ->
      if now () >= until then begin
        t.state <- Half_open;
        publish_state Half_open;
        Telemetry.Metrics.incr m_to_half_open;
        if Telemetry.Flight.enabled () then
          Telemetry.Flight.record ~kind:"breaker" "half-open probe";
        `Probe
      end
      else `Fallback
  in
  Mutex.unlock t.m;
  r

let record_success t =
  Mutex.lock t.m;
  t.consecutive_failures <- 0;
  (match t.state with
  | Closed -> ()
  | Open _ | Half_open ->
    publish_state Closed;
    Telemetry.Metrics.incr m_to_closed;
    if Telemetry.Flight.enabled () then
      Telemetry.Flight.record ~kind:"breaker" "closed");
  t.state <- Closed;
  Mutex.unlock t.m

let open_locked t =
  t.state <-
    Open { until = now () +. (float_of_int t.policy.cooldown_ms /. 1000.) };
  t.trips <- t.trips + 1;
  publish_state t.state;
  Telemetry.Metrics.incr m_to_open;
  Telemetry.Metrics.incr m_trips;
  if Telemetry.Flight.enabled () then
    Telemetry.Flight.record ~kind:"breaker"
      (Printf.sprintf "open trip=%d failures=%d" t.trips t.consecutive_failures)

let record_failure t =
  Mutex.lock t.m;
  let trips_before = t.trips in
  t.consecutive_failures <- t.consecutive_failures + 1;
  (match t.state with
  | Half_open ->
    (* the probe failed: back to cooling down *)
    open_locked t
  | Closed ->
    if t.consecutive_failures >= t.policy.failure_threshold then open_locked t
  | Open _ ->
    (* a request admitted before the trip finished late; refresh the
       cooldown rather than double-counting a trip *)
    t.state <-
      Open { until = now () +. (float_of_int t.policy.cooldown_ms /. 1000.) });
  let tripped = t.trips > trips_before in
  Mutex.unlock t.m;
  (* The dump does file I/O, so it runs outside the lock: the trip
     evidence (the recent requests that burned the failure budget) is on
     disk before any half-open probe can reshape the ring. *)
  if tripped && Telemetry.Flight.enabled () then
    Telemetry.Flight.dump ~reason:"breaker-open"

let state_name t =
  Mutex.lock t.m;
  let s =
    match t.state with
    | Closed -> "closed"
    | Open _ -> "open"
    | Half_open -> "half-open"
  in
  Mutex.unlock t.m;
  s

let trips t =
  Mutex.lock t.m;
  let n = t.trips in
  Mutex.unlock t.m;
  n
