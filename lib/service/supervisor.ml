module Error = Robust.Error
module Budget = Robust.Budget
module Faults = Robust.Faults

type retry_policy = {
  max_retries : int;
  backoff_ms : float;
  backoff_multiplier : float;
  backoff_cap_ms : float;
}

let default_retry =
  { max_retries = 4; backoff_ms = 1.0; backoff_multiplier = 2.0; backoff_cap_ms = 50.0 }

type watchdog_policy = { poll_ms : int; grace_ms : int; stuck_ms : int }

let default_watchdog = { poll_ms = 20; grace_ms = 100; stuck_ms = 10_000 }

type outcome = Done of string | Degraded of string | Failed of Error.t

type reply = { lineno : int; input : string; outcome : outcome; attempts : int }

type worker_stats = {
  worker : int;
  processed : int;
  retried : int;
  degraded : int;
}

type stats = {
  submitted : int;
  completed : int;
  succeeded : int;
  degraded : int;
  retries : int;
  syntax_failures : int;
  range_failures : int;
  budget_failures : int;
  internal_failures : int;
  crashes : int;
  respawns : int;
  wedges : int;
  breaker_state : string;
  breaker_trips : int;
  max_in_flight : int;
  capacity : int;
  jobs : int;
  workers : worker_stats array;
}

(* Service metrics are recorded unconditionally: one atomic op per
   reply, dwarfed by the conversion itself, and the service snapshot is
   the primary [--stats]/[--metrics] payload. *)
let m_retries =
  Telemetry.Metrics.counter
    ~help:"Retry attempts across all requests (attempts beyond the first)."
    "bdprint_service_retries_total"

let m_deadline_misses =
  Telemetry.Metrics.counter
    ~help:"Requests failed with a structured deadline-timeout error."
    "bdprint_service_deadline_misses_total"

let g_queue_depth =
  Telemetry.Metrics.gauge
    ~help:"Requests currently in flight (submitted but not yet emitted)."
    "bdprint_service_queue_depth"

let g_max_in_flight =
  Telemetry.Metrics.gauge
    ~help:"High-water mark of in-flight requests."
    "bdprint_service_max_in_flight"

let m_crashes =
  Telemetry.Metrics.counter
    ~help:"Worker-domain crashes: exceptions that escaped a worker loop \
           (e.g. an injected service.worker-kill fault)."
    "bdprint_service_worker_crashes_total"

let m_respawns =
  Telemetry.Metrics.counter
    ~help:"Worker domains automatically respawned after a crash."
    "bdprint_service_worker_respawns_total"

let m_wedges =
  Telemetry.Metrics.counter
    ~help:"Live-but-wedged workers detected by the watchdog: the stuck \
           request was answered with a structured timeout and the worker \
           abandoned and replaced."
    "bdprint_service_worker_wedges_total"

let worker_counter name help i =
  (Telemetry.Metrics.counter
     ~labels:[ ("worker", string_of_int i) ]
     ~help name)
  [@lint.can_raise
    Invalid_argument
    (* registry name validation: the names are static literals, so a
       failure is a programming error that should abort startup *)]

type worker_metrics = {
  mw_processed : Telemetry.Metrics.counter;
  mw_retried : Telemetry.Metrics.counter;
  mw_degraded : Telemetry.Metrics.counter;
}

let worker_metrics i =
  {
    mw_processed =
      worker_counter "bdprint_service_worker_processed_total"
        "Replies produced per worker domain." i;
    mw_retried =
      worker_counter "bdprint_service_worker_retried_total"
        "Requests that needed at least one retry, per worker domain." i;
    mw_degraded =
      worker_counter "bdprint_service_worker_degraded_total"
        "Breaker-fallback (degraded) replies per worker domain." i;
  }

type job = {
  seq : int;
  job_lineno : int;
  job_input : string;
  deadline : Budget.deadline option;
  job_tid : int;  (* trace id (0 = untraced); see Telemetry.Tracing *)
  job_t0 : int;  (* queue-wait span token captured at submit *)
}

(* Heartbeat slot for one dequeued request: registered when a worker
   takes the job, removed when its reply is posted.  The watchdog scans
   these; marking [cancelled] means the watchdog has already answered
   the request and replaced the worker, so the wedged worker's eventual
   reply must be dropped and the worker must exit instead of looping. *)
type running = {
  r_job : job;
  r_worker : int;
  r_started : float;
  mutable r_cancelled : bool;
}
[@@lint.guarded_by "m"]

type t = {
  jobs : int;
  capacity : int;
  convert : string -> (string, Error.t) result;
  fallback : string -> (string, Error.t) result;
  retry : retry_policy;
  breaker : Breaker.t;
  emit : reply -> unit;
  queue : job Bqueue.t;
  slots : Semaphore.Counting.t;
  budget : Budget.t;
  m : Mutex.t;
  c_result : Condition.t;
  buffer : (int, reply) Hashtbl.t;
  mutable submitted : int;
  mutable emitted : int;
  mutable closed : bool;
  mutable max_in_flight : int;
  mutable succeeded_n : int;
  mutable degraded_n : int;
  mutable retries_n : int;
  mutable fail_syntax : int;
  mutable fail_range : int;
  mutable fail_budget : int;
  mutable fail_internal : int;
  mutable crashes_n : int;
  mutable respawns_n : int;
  mutable wedges_n : int;
  running : (int, running) Hashtbl.t;  (** seq -> heartbeat slot *)
  wd_stop : bool Atomic.t;
  w_processed : int array;
  w_retried : int array;
  w_degraded : int array;
  w_metrics : worker_metrics array;
  mutable workers : unit Domain.t list;
  mutable collector : unit Domain.t option;
  mutable wd_domain : unit Domain.t option;
}
[@@lint.guarded_by "m"]

(* The degraded path must not depend on the (presumed broken) exact
   pipeline: OCaml's own float parsing and %.17g rendering, which is
   information-preserving for binary64 if not shortest. *)
let default_fallback input =
  match float_of_string_opt (String.trim input) with
  | Some x -> Ok (Printf.sprintf "%.17g" x)
  | None -> Error (Error.syntax ~input "unparseable in degraded mode")

(* The injected worker-domain kill switch (armed via BDPRINT_FAULTS as
   service.worker-kill).  It deliberately raises *outside* every
   [Error.catch] region so the exception escapes the worker loop and
   genuinely terminates the domain — exercising crash detection and
   respawn, not the structured-error path. *)
exception Worker_killed

let kill_point = "service.worker-kill"

(* The crash reply must not depend on the worker that just died having
   been healthy: same degraded channel as the breaker fallback. *)
let crash_fallback t input =
  match Error.catch (fun () -> t.fallback input) with
  | Ok (Ok s) -> Degraded s
  | Ok (Error e) | Error e -> Failed e

(* No exception may escape a worker: re-guard the user's convert even
   though the public conversion APIs are already result-returning. *)
let run_convert t input =
  match Error.catch (fun () -> t.convert input) with
  | Ok r -> r
  | Error e -> Error e

let remaining_s = function
  | None -> infinity
  | Some (d : Budget.deadline) -> d.Budget.expires_at -. Unix.gettimeofday ()

(* Supervised execution of one request: breaker admission, cooperative
   deadline, capped-exponential retry for Internal-class failures.
   Returns the outcome and the number of convert attempts made. *)
let process t (job : job) =
  Budget.set t.budget;
  Budget.set_deadline job.deadline;
  Fun.protect ~finally:(fun () -> Budget.set_deadline None) @@ fun () ->
  let fallback_outcome () =
    match Error.catch (fun () -> t.fallback job.job_input) with
    | Ok (Ok s) -> Degraded s
    | Ok (Error e) | Error e -> Failed e
  in
  match Breaker.admit t.breaker with
  | `Fallback -> (fallback_outcome (), 0)
  | (`Proceed | `Probe) as admission ->
    let is_probe = admission = `Probe in
    let timed_out () =
      (* a timeout says nothing about pipeline health, except for the
         half-open probe, which must always resolve the breaker state *)
      if is_probe then Breaker.record_failure t.breaker
    in
    let rec attempt n backoff =
      match job.deadline with
      | Some d when Budget.expired d ->
        timed_out ();
        (Failed (Budget.deadline_error d), n)
      | _ -> (
        match run_convert t job.job_input with
        | Ok s ->
          Breaker.record_success t.breaker;
          (Done s, n + 1)
        | Error (Error.Internal _ as e) ->
          if n < t.retry.max_retries then begin
            let pause =
              Float.min (backoff /. 1000.) (remaining_s job.deadline)
            in
            if pause > 0. then Unix.sleepf pause;
            attempt (n + 1)
              (Float.min
                 (backoff *. t.retry.backoff_multiplier)
                 t.retry.backoff_cap_ms)
          end
          else begin
            Breaker.record_failure t.breaker;
            (Failed e, n + 1)
          end
        | Error e ->
          (* Syntax/Range/Budget: the pipeline did its job — fail fast,
             don't retry, don't count against the breaker *)
          Breaker.record_success t.breaker;
          (Failed e, n + 1))
    in
    attempt 0 t.retry.backoff_ms

let register_running t ~worker (job : job) =
  Mutex.lock t.m;
  Hashtbl.replace t.running job.seq
    {
      r_job = job;
      r_worker = worker;
      r_started = Unix.gettimeofday ();
      r_cancelled = false;
    };
  Mutex.unlock t.m

(* Delivers a worker's reply — unless the watchdog already cancelled the
   request (answered it and replaced the worker), in which case the late
   reply is dropped and [post] returns [false]: the abandoned worker
   must exit instead of looping, since its replacement is already
   running. *)
(* Reply accounting; called with [t.m] held. *)
let deliver_locked t ~worker (job : job) reply =
  let wm = t.w_metrics.(worker) in
  Telemetry.Metrics.incr wm.mw_processed;
  Hashtbl.replace t.buffer job.seq reply;
  t.w_processed.(worker) <- t.w_processed.(worker) + 1;
  (match reply.outcome with
  | Done _ -> t.succeeded_n <- t.succeeded_n + 1
  | Degraded _ ->
    t.degraded_n <- t.degraded_n + 1;
    t.w_degraded.(worker) <- t.w_degraded.(worker) + 1;
    Telemetry.Metrics.incr wm.mw_degraded
  | Failed e -> (
    match e with
    | Error.Syntax _ -> t.fail_syntax <- t.fail_syntax + 1
    | Error.Range _ -> t.fail_range <- t.fail_range + 1
    | Error.Budget { what; _ } ->
      t.fail_budget <- t.fail_budget + 1;
      if String.equal what Budget.deadline_what then
        Telemetry.Metrics.incr m_deadline_misses
    | Error.Internal _ -> t.fail_internal <- t.fail_internal + 1));
  if reply.attempts > 1 then begin
    t.retries_n <- t.retries_n + (reply.attempts - 1);
    t.w_retried.(worker) <- t.w_retried.(worker) + 1;
    Telemetry.Metrics.incr wm.mw_retried;
    (Telemetry.Metrics.add m_retries (reply.attempts - 1))
    [@lint.can_raise
      Invalid_argument (* attempts > 1 on this branch: the delta is positive *)]
  end;
  Condition.broadcast t.c_result

(* Delivers a worker's reply — unless the watchdog already cancelled the
   request (answered it with a structured timeout and replaced the
   worker), in which case the late reply is dropped and [post] returns
   [false]: the abandoned worker must exit instead of looping, since its
   replacement is already running. *)
let post t ~worker (job : job) reply =
  Mutex.lock t.m;
  let cancelled =
    match Hashtbl.find_opt t.running job.seq with
    | Some r when r.r_cancelled -> true
    | _ -> false
  in
  Hashtbl.remove t.running job.seq;
  if not cancelled then deliver_locked t ~worker job reply;
  Mutex.unlock t.m;
  not cancelled

(* The injected live-but-wedged worker (service.worker-wedge): holds the
   dequeued request without progressing for far longer than any test
   deadline, but in bounded slices so shutdown can always join the
   domain.  The watchdog — not this sleep ending — is what answers the
   request. *)
let wedge_point = "service.worker-wedge"

let wedge_stall () =
  for _ = 1 to 40 do
    Unix.sleepf 0.01
  done

let rec worker_loop t ~worker =
  match Bqueue.take t.queue with
  | None -> ()
  | Some job ->
    register_running t ~worker job;
    (* the queue-wait span closes at dequeue; the worker then adopts
       the job's trace id so the pipeline spans inside [process] land
       on the request's trace *)
    Telemetry.Tracing.adopt job.job_tid;
    Telemetry.Tracing.emit ~tid:job.job_tid Telemetry.Tracing.Queue_wait
      job.job_t0;
    if Telemetry.Flight.enabled () then
      Telemetry.Flight.record ~req:job.seq ~kind:"service-start"
        (Printf.sprintf "worker=%d input=%s" worker job.job_input);
    let continue =
      try
        if Faults.fires kill_point then raise Worker_killed;
        if Faults.fires wedge_point then wedge_stall ();
        let st0 = Telemetry.Trace.start () in
        let outcome, attempts = process t job in
        Telemetry.Trace.finish Telemetry.Trace.Worker_service st0;
        if Telemetry.Flight.enabled () then
          Telemetry.Flight.record ~req:job.seq ~kind:"service-end"
            (match outcome with
            | Done _ -> "ok"
            | Degraded _ -> "degraded"
            | Failed e -> "failed " ^ Error.category e);
        Telemetry.Tracing.adopt 0;
        post t ~worker job
          { lineno = job.job_lineno; input = job.job_input; outcome; attempts }
      with exn ->
        (* Worker crash with a request in hand.  Losing the reply would
           deadlock the collector (it waits for this seq), so the dying
           worker answers the job through the breaker-backed degraded
           channel, records the failure against the breaker, and only
           then lets the exception continue killing the domain — the
           spawn wrapper below respawns a replacement.  If the watchdog
           cancelled the request first, the reply is already delivered
           and a replacement already running: die quietly instead, or
           the pool would grow by one domain per wedge-then-crash. *)
        Breaker.record_failure t.breaker;
        let outcome = crash_fallback t job.job_input in
        let delivered =
          post t ~worker job
            {
              lineno = job.job_lineno;
              input = job.job_input;
              outcome;
              attempts = 0;
            }
        in
        if delivered then begin
          Mutex.lock t.m;
          t.crashes_n <- t.crashes_n + 1;
          Mutex.unlock t.m;
          Telemetry.Metrics.incr m_crashes;
          (* the post-mortem: name the request the worker died holding,
             then dump every ring before the domain unwinds *)
          if Telemetry.Flight.enabled () then begin
            Telemetry.Flight.record ~req:job.seq ~kind:"crash"
              (Printf.sprintf "worker=%d exn=%s input=%s" worker
                 (Printexc.to_string exn) job.job_input);
            Telemetry.Flight.dump ~reason:"worker-crash"
          end;
          (raise exn) [@lint.can_raise Worker_killed]
        end;
        false
    in
    if continue then worker_loop t ~worker

(* Each worker domain runs under this wrapper: an escaping exception is
   a domain death, and the dying domain's last act is to spawn and
   register its replacement — before the body returns, so shutdown's
   generation-joining loop is guaranteed to observe the new domain. *)
let rec worker_body t ~worker () =
  try worker_loop t ~worker
  with _ ->
    let d = Domain.spawn (worker_body t ~worker) in
    Mutex.lock t.m;
    t.respawns_n <- t.respawns_n + 1;
    t.workers <- d :: t.workers;
    Mutex.unlock t.m;
    Telemetry.Metrics.incr m_respawns

(* {2 Watchdog} *)

(* A request is wedged when its worker is still alive (the crash path
   would have answered it) yet it has been held past its deadline plus
   [grace_ms] — or past [stuck_ms] when it carries no deadline.  OCaml
   domains cannot be killed, so "cancel" means: answer the request with
   a structured timeout, mark the slot so the worker's eventual late
   reply is dropped and the worker exits on wake, and spawn a
   replacement so the pool never shrinks. *)
let wedged now (p : watchdog_policy) (r : running) =
  (not r.r_cancelled)
  &&
  match r.r_job.deadline with
  | Some d -> now > d.Budget.expires_at +. (float p.grace_ms /. 1000.)
  | None -> now -. r.r_started > float p.stuck_ms /. 1000.

let wedge_error (r : running) =
  match r.r_job.deadline with
  | Some d -> Budget.deadline_error d
  | None ->
    Error.internal ~where:"service.watchdog"
      "request abandoned: worker wedged past the stuck threshold"

let rec watchdog_loop t (p : watchdog_policy) =
  if not (Atomic.get t.wd_stop) then begin
    let now = Unix.gettimeofday () in
    Mutex.lock t.m;
    let victims =
      Hashtbl.fold
        (fun _ r acc -> if wedged now p r then r :: acc else acc)
        t.running []
    in
    List.iter
      (fun r ->
        r.r_cancelled <- true;
        t.wedges_n <- t.wedges_n + 1;
        Telemetry.Metrics.incr m_wedges;
        if Telemetry.Flight.enabled () then
          Telemetry.Flight.record ~req:r.r_job.seq ~kind:"wedge"
            (Printf.sprintf "worker=%d held-s=%.3f input=%s" r.r_worker
               (now -. r.r_started) r.r_job.job_input);
        deliver_locked t ~worker:r.r_worker r.r_job
          {
            lineno = r.r_job.job_lineno;
            input = r.r_job.job_input;
            outcome = Failed (wedge_error r);
            attempts = 0;
          })
      victims;
    Mutex.unlock t.m;
    (* the dump does file I/O: after the lock, before the respawns, so
       the recording that names the wedged request is already on disk
       if a respawn itself goes wrong *)
    if victims <> [] && Telemetry.Flight.enabled () then
      Telemetry.Flight.dump ~reason:"worker-wedge";
    (* replacements outside the lock: Domain.spawn is heavyweight *)
    List.iter
      (fun r ->
        let d = Domain.spawn (worker_body t ~worker:r.r_worker) in
        Mutex.lock t.m;
        t.respawns_n <- t.respawns_n + 1;
        t.workers <- d :: t.workers;
        Mutex.unlock t.m;
        Telemetry.Metrics.incr m_respawns)
      victims;
    Unix.sleepf (float p.poll_ms /. 1000.);
    watchdog_loop t p
  end

(* Single collector: emits replies in submission order (the reorder
   point) and returns each request's backpressure slot afterwards, so
   "in flight" covers everything from submit to emit. *)
let rec collector_loop t =
  Mutex.lock t.m;
  let rec next () =
    match Hashtbl.find_opt t.buffer t.emitted with
    | Some reply ->
      Hashtbl.remove t.buffer t.emitted;
      t.emitted <- t.emitted + 1;
      `Emit reply
    | None ->
      if t.closed && t.emitted = t.submitted then `Finished
      else begin
        Condition.wait t.c_result t.m;
        next ()
      end
  in
  let step = next () in
  Telemetry.Metrics.set_gauge g_queue_depth (t.submitted - t.emitted);
  Mutex.unlock t.m;
  match step with
  | `Finished -> ()
  | `Emit reply ->
    t.emit reply;
    Semaphore.Counting.release t.slots;
    collector_loop t

let start ?(jobs = 2) ?(queue_capacity = 64) ?(retry = default_retry)
    ?(breaker = Breaker.default_policy) ?watchdog ?fallback ~emit convert =
  (* documented preconditions: misconfiguration is a programming error,
     not a per-request failure, so it raises rather than returns *)
  (if jobs < 1 then invalid_arg "Supervisor.start: jobs < 1")
  [@lint.can_raise Invalid_argument];
  (if queue_capacity < 1 then invalid_arg "Supervisor.start: queue_capacity < 1")
  [@lint.can_raise Invalid_argument];
  (if retry.max_retries < 0 then invalid_arg "Supervisor.start: max_retries < 0")
  [@lint.can_raise Invalid_argument];
  let t =
    {
      jobs;
      capacity = queue_capacity;
      convert;
      fallback = Option.value fallback ~default:default_fallback;
      retry;
      breaker =
        ((Breaker.create ~policy:breaker ())
         [@lint.can_raise
           Invalid_argument (* startup policy validation: abort loudly *)]);
      emit;
      queue =
        ((Bqueue.create ~capacity:queue_capacity)
         [@lint.can_raise
           Invalid_argument (* startup capacity validation: abort loudly *)]);
      slots = Semaphore.Counting.make queue_capacity;
      budget = Budget.get ();
      m = Mutex.create ();
      c_result = Condition.create ();
      buffer = Hashtbl.create 64;
      submitted = 0;
      emitted = 0;
      closed = false;
      max_in_flight = 0;
      succeeded_n = 0;
      degraded_n = 0;
      retries_n = 0;
      fail_syntax = 0;
      fail_range = 0;
      fail_budget = 0;
      fail_internal = 0;
      crashes_n = 0;
      respawns_n = 0;
      wedges_n = 0;
      running = Hashtbl.create 32;
      wd_stop = Atomic.make false;
      w_processed = Array.make jobs 0;
      w_retried = Array.make jobs 0;
      w_degraded = Array.make jobs 0;
      w_metrics = Array.init jobs worker_metrics;
      workers = [];
      collector = None;
      wd_domain = None;
    }
  in
  t.workers <-
    List.init jobs (fun i -> Domain.spawn (worker_body t ~worker:i));
  t.collector <- Some (Domain.spawn (fun () -> collector_loop t));
  (match watchdog with
  | Some p when p.poll_ms >= 1 ->
    t.wd_domain <- Some (Domain.spawn (fun () -> watchdog_loop t p))
  | _ -> ());
  t

let submit t ?deadline_ms ?(tid = 0) ~lineno input =
  Semaphore.Counting.acquire t.slots;
  Mutex.lock t.m;
  if t.closed then begin
    Mutex.unlock t.m;
    Semaphore.Counting.release t.slots;
    (invalid_arg "Supervisor.submit: service is shut down")
    [@lint.can_raise Invalid_argument] (* documented: submit-after-shutdown is a caller bug *)
  end;
  let seq = t.submitted in
  t.submitted <- seq + 1;
  let in_flight = t.submitted - t.emitted in
  if in_flight > t.max_in_flight then t.max_in_flight <- in_flight;
  Telemetry.Metrics.set_gauge g_queue_depth in_flight;
  Telemetry.Metrics.max_gauge g_max_in_flight in_flight;
  Mutex.unlock t.m;
  let deadline = Option.map (fun ms -> Budget.deadline_after ~ms) deadline_ms in
  (* the queue-wait span opens here, on the submitting thread; the
     dequeuing worker closes it *)
  let job_t0 = Telemetry.Tracing.span_of tid in
  (* the semaphore already bounds in-flight work, so this put cannot
     block; Closed can only race with a concurrent shutdown *)
  try
    Bqueue.put t.queue
      { seq; job_lineno = lineno; job_input = input; deadline;
        job_tid = tid; job_t0 }
  with Bqueue.Closed ->
    (invalid_arg "Supervisor.submit: service is shut down")
    [@lint.can_raise Invalid_argument] (* documented: submit/shutdown race is a caller bug *)

let stats t =
  Mutex.lock t.m;
  let s =
    {
      submitted = t.submitted;
      completed = t.emitted;
      succeeded = t.succeeded_n;
      degraded = t.degraded_n;
      retries = t.retries_n;
      syntax_failures = t.fail_syntax;
      range_failures = t.fail_range;
      budget_failures = t.fail_budget;
      internal_failures = t.fail_internal;
      crashes = t.crashes_n;
      respawns = t.respawns_n;
      wedges = t.wedges_n;
      breaker_state = Breaker.state_name t.breaker;
      breaker_trips = Breaker.trips t.breaker;
      max_in_flight = t.max_in_flight;
      capacity = t.capacity;
      jobs = t.jobs;
      workers =
        Array.init t.jobs (fun i ->
            {
              worker = i;
              processed = t.w_processed.(i);
              retried = t.w_retried.(i);
              degraded = t.w_degraded.(i);
            });
    }
  in
  Mutex.unlock t.m;
  s

let shutdown t =
  Mutex.lock t.m;
  let already = t.closed in
  t.closed <- true;
  Mutex.unlock t.m;
  if not already then begin
    (* stop the watchdog first: a cancellation after the generation-join
       below would spawn a replacement no one joins *)
    Atomic.set t.wd_stop true;
    Option.iter Domain.join t.wd_domain;
    t.wd_domain <- None;
    Bqueue.close t.queue;
    (* Workers can crash and respawn while draining, so join by
       generations until no unjoined domain remains: a dying domain
       registers its replacement before it exits, so once a join
       returns, any replacement it spawned is already visible. *)
    let rec join_workers joined =
      Mutex.lock t.m;
      let current = t.workers in
      Mutex.unlock t.m;
      match List.filter (fun d -> not (List.memq d joined)) current with
      | [] -> ()
      | fresh ->
        List.iter Domain.join fresh;
        join_workers (fresh @ joined)
    in
    join_workers [];
    t.workers <- [];
    (* every dequeued job has been posted; wake the collector so it can
       observe closed && fully-emitted even if nothing was submitted *)
    Mutex.lock t.m;
    Condition.broadcast t.c_result;
    Mutex.unlock t.m;
    Option.iter Domain.join t.collector;
    t.collector <- None
  end;
  stats t

let breaker_state t = Breaker.state_name t.breaker

let pp_stats ppf (s : stats) =
  Format.fprintf ppf
    "stats: submitted=%d completed=%d ok=%d degraded=%d retries=%d@\n\
     stats: errors: syntax=%d range=%d budget=%d internal=%d@\n\
     stats: jobs=%d queue-capacity=%d max-in-flight=%d breaker=%s trips=%d \
     crashes=%d respawns=%d wedges=%d"
    s.submitted s.completed s.succeeded s.degraded s.retries s.syntax_failures
    s.range_failures s.budget_failures s.internal_failures s.jobs s.capacity
    s.max_in_flight s.breaker_state s.breaker_trips s.crashes s.respawns
    s.wedges;
  Array.iter
    (fun w ->
      Format.fprintf ppf "@\nstats: worker[%d] processed=%d retried=%d degraded=%d"
        w.worker w.processed w.retried w.degraded)
    s.workers
