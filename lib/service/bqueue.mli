(** A bounded blocking queue with close semantics — the submission
    channel between the service's producer and its worker domains.

    [put] blocks while the queue is full (this is the service layer's
    backpressure) and [take] blocks while it is empty.  After {!close},
    producers get {!Closed} and consumers drain the remaining elements
    before receiving [None] — so closing never drops work. *)

type 'a t

exception Closed

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val put : 'a t -> 'a -> unit
(** Blocks while full.  @raise Closed if the queue has been closed. *)

val take : 'a t -> 'a option
(** Blocks while empty and open; [None] once the queue is closed {e and}
    drained. *)

val close : 'a t -> unit
(** Idempotent.  Wakes all blocked producers and consumers. *)

val length : 'a t -> int
val is_closed : 'a t -> bool
