(* Facade: [Service.Supervisor], [Service.Breaker], [Service.Bqueue]. *)

module Bqueue = Bqueue
module Breaker = Breaker
module Supervisor = Supervisor
