module Value = Fp.Value

let hits = Atomic.make 0
let misses = Atomic.make 0

let fast_path_hits () = Atomic.get hits
let fallbacks () = Atomic.get misses

(* Accumulated relative error of the fast path: the correctly rounded
   power table contributes 1/2 ulp, the scaling multiplication another
   1/2, leaving generous headroom under 4 ulps of 2^-64 relative.  The
   absolute error bound at the integer scale follows by multiplying with
   the scaled magnitude. *)
let rel_error_ulps = 4.

(* Fractional part of an extended value in [0, 1), as a float. *)
let fraction (t : Ext64.t) =
  let drop = -t.Ext64.e in
  if drop <= 0 || drop > 64 then None
  else begin
    let dropped =
      if drop = 64 then t.Ext64.m else Int64.shift_left t.Ext64.m (64 - drop)
    in
    Some (Int64.to_float (Int64.shift_right_logical dropped 11) /. 9007199254740992.)
  end

let convert ~ndigits fmt (v : Value.finite) =
  if not (Fp.Format_spec.equal fmt Fp.Format_spec.binary64) then
    invalid_arg "Gay_heuristic.convert: binary64 only";
  if ndigits < 1 || ndigits > 17 then
    invalid_arg "Gay_heuristic.convert: ndigits out of range";
  let x = Fp.Ieee.compose (Value.Finite { v with neg = false }) in
  let k0 = int_of_float (Float.floor (Float.log10 x)) + 1 in
  let limit = Int64.of_float (10. ** float_of_int ndigits) in
  let lower = Int64.div limit 10L in
  let abs_error =
    (10. ** float_of_int ndigits) *. rel_error_ulps /. 18446744073709551616.
  in
  let attempt k =
    let scaled = Ext64.mul (Ext64.of_float x) (Ext64.pow10_correct (ndigits - k)) in
    let n = Ext64.to_int64_round scaled in
    if Int64.compare n lower < 0 || Int64.compare n limit >= 0 then None
    else begin
      match fraction scaled with
      | None -> None
      | Some f ->
        (* certified iff the true value provably does not cross the .5
           rounding boundary, and the integer-magnitude classification
           (which fixes k) cannot flip either *)
        if
          Float.abs (f -. 0.5) > abs_error
          && (Int64.compare n lower > 0 || f > abs_error)
          && (Int64.compare n (Int64.pred limit) < 0 || f < 1. -. abs_error)
        then Some n
        else None
    end
  in
  let certified =
    match attempt k0 with
    | Some n -> Some (n, k0)
    | None -> (
      match attempt (k0 + 1) with
      | Some n -> Some (n, k0 + 1)
      | None -> (
        match attempt (k0 - 1) with
        | Some n -> Some (n, k0 - 1)
        | None -> None))
  in
  match certified with
  | Some (n, k) ->
    Atomic.incr hits;
    let digits = Array.make ndigits 0 in
    let rest = ref n in
    for i = ndigits - 1 downto 0 do
      digits.(i) <- Int64.to_int (Int64.rem !rest 10L);
      rest := Int64.div !rest 10L
    done;
    (digits, k)
  | None ->
    Atomic.incr misses;
    Naive_fixed.convert ~ndigits fmt { v with neg = false }
