module Nat = Bignum.Nat
module Value = Fp.Value

let b64 = Fp.Format_spec.binary64

let n_fast = Atomic.make 0
let n_fallback = Atomic.make 0

let stats () = (Atomic.get n_fast, Atomic.get n_fallback)

let fallback v =
  Atomic.incr n_fallback;
  Dragon.Free_format.convert b64 v

(* Compare c * 10^j against w * 2^t exactly (c, w positive ints).  The
   power table is shared with the printer, so after warm-up this is a
   couple of short multiplications. *)
let cmp_scaled c j w t =
  let lhs = Nat.of_int c and rhs = Nat.of_int w in
  let lhs = if j > 0 then Nat.mul lhs (Dragon.Scaling.power ~base:10 j) else lhs in
  let rhs = if j < 0 then Nat.mul rhs (Dragon.Scaling.power ~base:10 (-j)) else rhs in
  let lhs = if t < 0 then Nat.shift_left lhs (-t) else lhs in
  let rhs = if t > 0 then Nat.shift_left rhs t else rhs in
  Nat.compare lhs rhs

(* Certified floor(x * 10^s) in extended precision: accept only when the
   fractional part is provably away from 0 and 1. *)
let certified_scaled_floor x s =
  if s < -350 || s > 350 then None
  else begin
    let y = Ext64.mul (Ext64.of_float x) (Ext64.pow10_correct s) in
    let drop = -y.Ext64.e in
    if drop <= 0 || drop >= 64 then None
    else begin
      let kept = Int64.shift_right_logical y.Ext64.m drop in
      let frac_bits = Int64.shift_left y.Ext64.m (64 - drop) in
      (* with the correctly rounded table the scaled product is within
         ~1 ulp of 2^-64 relative, i.e. within 2^(57-64) = 1/128 of a
         unit for the <= 58-bit integers in play; certify the floor only
         when the fraction is at least twice that from a boundary *)
      let top10 = Int64.to_int (Int64.shift_right_logical frac_bits 54) in
      if top10 < 17 || top10 > 1006 then None
      else Some (Int64.to_int kept)
    end
  end

let digits_of_int m n =
  let digits = Array.make n 0 in
  let rest = ref m in
  for i = n - 1 downto 0 do
    digits.(i) <- !rest mod 10;
    rest := !rest / 10
  done;
  digits

let pow10_int =
  Array.init 18 (fun i -> int_of_float (10. ** float_of_int i))
  [@@lint.domain_safe "read-only lookup table built at init"]

(* Exact floor(f * 2^e * 10^s): one bignum division; the rare-case backup
   when the extended-precision floor cannot be certified.  Still far
   cheaper than the full digit loop. *)
let exact_scaled_floor f e s =
  let num = Nat.of_int f in
  let num = if e > 0 then Nat.shift_left num e else num in
  let num = if s > 0 then Nat.mul num (Dragon.Scaling.power ~base:10 s) else num in
  let den = if s < 0 then Dragon.Scaling.power ~base:10 (-s) else Nat.one in
  let den = if e < 0 then Nat.shift_left den (-e) else den in
  let q, _ = Nat.divmod num den in
  Nat.to_int_opt q

let convert (v : Value.finite) =
  match Nat.to_int_opt v.Value.f with
  | None -> fallback v
  | Some f ->
    let e = v.Value.e in
    let x = Fp.Ieee.compose (Value.Finite { v with neg = false }) in
    (* rounding range over 2^(e-2):  low = (4f - 1|2) * 2^(e-2),
       high = (4f + 2) * 2^(e-2); both endpoints admissible iff f even *)
    let narrow = Fp.Gaps.gap_low_is_narrow b64 v in
    let low_w = (4 * f) - if narrow then 1 else 2 in
    let high_w = (4 * f) + 2 in
    let t = e - 2 in
    let ok = f land 1 = 0 in
    (* decimal position of the first digit, within one *)
    let k0 =
      ref
        (int_of_float
           (Float.ceil
              ((float_of_int e +. float_of_int (Nat.bit_length v.Value.f - 1))
               *. 0.30102999566398119
              -. 1e-10)))
    in
    (* pin the decimal position exactly with one probe at n = 1 *)
    let fix_k0 () =
      let rec adjust attempts =
        if attempts = 0 then false
        else begin
          match
            (match certified_scaled_floor x (1 - !k0) with
            | Some m -> Some m
            | None -> exact_scaled_floor f e (1 - !k0))
          with
          | None -> false
          | Some m ->
            if m >= 10 then begin
              incr k0;
              adjust (attempts - 1)
            end
            else if m < 1 then begin
              decr k0;
              adjust (attempts - 1)
            end
            else true
        end
      in
      adjust 4
    in
    if not (fix_k0 ()) then fallback v
    else begin
      (* one probe: candidate floor and the paper's two termination
         conditions at length n *)
      let probe n =
        match
          (match certified_scaled_floor x (n - !k0) with
          | Some m -> Some m
          | None -> exact_scaled_floor f e (n - !k0))
        with
        | None -> None
        | Some m ->
          let j = !k0 - n in
          let c1 = cmp_scaled m j low_w t in
          let tc1 = if ok then c1 >= 0 else c1 > 0 in
          let c2 = cmp_scaled (m + 1) j high_w t in
          let tc2 = if ok then c2 <= 0 else c2 < 0 in
          Some (m, tc1, tc2)
      in
      (* Both termination conditions are monotone in n (the distance from
         the truncation to v only shrinks as digits are added, and the
         distance from the increment is preserved), so the paper's
         minimal stopping length is found by binary search. *)
      let failed = ref false in
      let lo = ref 1 and hi = ref 17 in
      while !lo < !hi && not !failed do
        let mid = (!lo + !hi) / 2 in
        match probe mid with
        | None -> failed := true
        | Some (_, tc1, tc2) -> if tc1 || tc2 then hi := mid else lo := mid + 1
      done;
      if !failed then fallback v
      else begin
        match probe !lo with
        | None -> fallback v
        | Some (_, false, false) -> fallback v (* 17 digits always stop *)
        | Some (m, tc1, tc2) ->
          let n = !lo in
          let m =
            match (tc1, tc2) with
            | true, false -> m
            | false, true -> m + 1
            | _ ->
              (* closer of the two; ties round up.  v vs m + 1/2 at scale
                 10^j:  8f * 2^(e-2)  vs  (2m+1) * 10^j *)
              let c = cmp_scaled ((2 * m) + 1) (!k0 - n) (8 * f) t in
              if c <= 0 then m + 1 else m
          in
          Atomic.incr n_fast;
          if m = pow10_int.(n) then
            (* increment cascaded to the next power of ten *)
            { Dragon.Free_format.digits = [| 1 |]; k = !k0 + 1 }
          else { Dragon.Free_format.digits = digits_of_int m n; k = !k0 }
      end
    end

let print x =
  match Fp.Ieee.decompose x with
  | Value.Zero neg -> Dragon.Render.zero ~neg ()
  | Value.Inf neg -> Dragon.Render.infinity ~neg ()
  | Value.Nan -> Dragon.Render.nan
  | Value.Finite v ->
    Dragon.Render.free ~neg:v.Value.neg ~base:10
      (convert { v with neg = false })
