(* Table-driven fixed-precision shortest-digit fast path.

   The Burger-Dybvig loop proves each digit and the stopping decision
   with exact rational comparisons; this module runs the same loop on a
   128-bit fixed-point approximation and only keeps the answer when the
   approximation's error interval cannot change any comparison.  The
   verdict is three-valued — every comparison is {e certainly true},
   {e certainly false}, or {e uncertain} — and any uncertainty aborts
   the whole attempt so the caller falls back to the exact scratch/word
   kernels.  Hits are therefore byte-identical to the pure reference by
   construction, not by testing alone.

   Number frame.  For v = f·2^e (f < 2^53) and the reference estimate
   [est] of ceil(log10 v), all quantities live in Q4.112 fixed point:
   X = v·10^(-est)·2^112, held as two native-int limbs (hi = integer
   part and top 56 fraction bits, lo = low 56 fraction bits).  X is
   carved out of the exact product P = f·c(-est) of the mantissa and a
   128-bit truncated power of ten (see {!Pow10_table}), computed in
   28-bit limbs so every partial product fits a native int.  The
   boundaries m± = 2^(e-1)·10^(-est)·2^112 (m⁻ halved again for
   mantissas on a power-of-two boundary) come straight from the table
   entry by shifting.

   Error discipline.  The table entry and every window extraction
   UNDERestimate (truncate), so each approximation a of a true value A
   satisfies a ≤ A < a + err with a one-sided error counted in units of
   2^(-112): err starts at 2 per quantity and is multiplied by ten per
   emitted digit, staying below 2·10^17 < 2^62 for the at-most-17
   digits a binary64 shortest form can need.  A comparison is certified
   only when it holds for {e every} pair of true values inside the two
   intervals; exact equality is never certifiable, which is precisely
   the correctly-rounded boundary case the exact fallback exists for.

   Faults and budgets.  The fast path stands aside entirely while any
   fault point is armed ({!Robust.Faults.any_armed} is checked by the
   dispatcher) because it cannot reproduce the reference pipeline's
   trip sites; it {e does} honor per-request deadlines and digit
   budgets by consulting {!Robust.Budget.check_output_digits} with the
   same per-digit cadence as the reference loop. *)

module Metrics = Telemetry.Metrics
module Pow10_table = Pow10_table
module T = Pow10_table

let mask28 = (1 lsl 28) - 1
let mask56 = (1 lsl 56) - 1
let mask60 = (1 lsl 60) - 1

(* Identity masks for the width certifier (see docs/STATIC_ANALYSIS.md):
   each is applied where the mathematical invariant (stated at the use
   site) keeps the value strictly below the mask, so the [land] never
   clears a set bit at runtime — it only lets the abstract interpreter
   carry the invariant across an operation it cannot derive itself. *)
let mask57 = (1 lsl 57) - 1
let mask58 = (1 lsl 58) - 1
let mask61 = (1 lsl 61) - 1

(* The fixed-point one: 2^112 in frame units, as a (hi, lo) pair with
   lo = 0. *)
let one_hi = 1 lsl 56

(* A shortest binary64 form needs at most 17 significant digits; if the
   certified loop has not stopped by then the error terms have swamped
   the margins and the exact kernels should take over (also keeps every
   err·10^n below 2^62). *)
let max_digits = 17

let enabled_flag =
  Atomic.make
    (match Sys.getenv_opt "BDPRINT_NO_FASTPATH" with
    | Some ("1" | "true" | "yes" | "on") -> false
    | _ -> true)

let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let m_hit =
  Metrics.counter
    ~help:"Free-format conversions answered by the table-driven fast path."
    "bdprint_fastpath_hit_total"

let m_fallback =
  Metrics.counter
    ~help:"Fast-path attempts that returned an uncertain verdict and fell \
           back to the exact kernels."
    "bdprint_fastpath_fallback_total"

let hit_count () = Metrics.value m_hit
let fallback_count () = Metrics.value m_fallback

(* Per-domain scratch: two 8-limb windows (table entry and product) and
   the digit buffer, reused across conversions so a hit allocates
   nothing.  [busy] guards against re-entrant use from the same domain
   (metrics callbacks, nested printing): the inner attempt just reports
   uncertain and takes the exact path. *)
type pool = {
  winc : int array;  (* 5 table limbs + zero padding *)
  winp : int array;  (* 7 product limbs + zero padding *)
  digits : int array;
  mutable busy : bool;
}
[@@lint.domain_safe
  "only reachable through Domain.DLS; [busy] guards same-domain \
   reentrancy (metrics callbacks), not cross-domain sharing"]

let pool_key =
  Domain.DLS.new_key (fun () ->
      {
        winc = Array.make 8 0;
        winp = Array.make 8 0;
        digits = Array.make (max_digits + 2) 0;
        busy = false;
      })

(* Bits [pos, pos+56) of the little-endian 28-bit-limb number in [win].
   The byte-widest read touches limbs pos/28 .. pos/28+2, so callers
   keep zero padding above the populated limbs. *)
let[@lint.no_alloc] window56 (win [@lint.width 28]) (pos [@lint.width 8]) =
  let w = pos / 28 and b = pos mod 28 in
  (Array.unsafe_get win w lsr b)
  lor (Array.unsafe_get win (w + 1) lsl (28 - b))
  lor (Array.unsafe_get win (w + 2) lsl (56 - b))
  land mask56
[@@lint.certified_width 62]

(* Bits [pos, pos+60): the hi limb carries four integer bits on top of
   its 56 fraction bits.  The fourth source limb only contributes when
   the in-limb offset pushes past three limbs' worth of bits. *)
let[@lint.no_alloc] window60 (win [@lint.width 28]) (pos [@lint.width 8]) =
  let w = pos / 28 and b = pos mod 28 in
  (Array.unsafe_get win w lsr b)
  lor (Array.unsafe_get win (w + 1) lsl (28 - b))
  lor (Array.unsafe_get win (w + 2) lsl (56 - b))
  lor (if b >= 25 then Array.unsafe_get win (w + 3) lsl (84 - b) else 0)
  land mask60
[@@lint.certified_width 62]

(* winp <- f · c, exactly, in 28-bit limbs: f = f1·2^28 + f0 against the
   five limbs of c already loaded in [winc].  Splitting f keeps every
   partial product at or below 2^56 with carry headroom to spare. *)
let[@lint.no_alloc] fill_product (winp [@lint.width 28]) (winc [@lint.width 28])
    (f [@lint.width 53]) =
  let c0 = Array.unsafe_get winc 0
  and c1 = Array.unsafe_get winc 1
  and c2 = Array.unsafe_get winc 2
  and c3 = Array.unsafe_get winc 3
  and c4 = Array.unsafe_get winc 4 in
  let f0 = f land mask28 and f1 = f lsr 28 in
  let x0 = f0 * c0 in
  let x1 = (f0 * c1) + (x0 lsr 28) in
  let x2 = (f0 * c2) + (x1 lsr 28) in
  let x3 = (f0 * c3) + (x2 lsr 28) in
  let x4 = (f0 * c4) + (x3 lsr 28) in
  let y0 = f1 * c0 in
  let y1 = (f1 * c1) + (y0 lsr 28) in
  let y2 = (f1 * c2) + (y1 lsr 28) in
  let y3 = (f1 * c3) + (y2 lsr 28) in
  let y4 = (f1 * c4) + (y3 lsr 28) in
  let s1 = (x1 land mask28) + (y0 land mask28) in
  let s2 = (x2 land mask28) + (y1 land mask28) + (s1 lsr 28) in
  let s3 = (x3 land mask28) + (y2 land mask28) + (s2 lsr 28) in
  let s4 = (x4 land mask28) + (y3 land mask28) + (s3 lsr 28) in
  let s5 = (x4 lsr 28) + (y4 land mask28) + (s4 lsr 28) in
  let s6 = (y4 lsr 28) + (s5 lsr 28) in
  Array.unsafe_set winp 0 (x0 land mask28);
  Array.unsafe_set winp 1 (s1 land mask28);
  Array.unsafe_set winp 2 (s2 land mask28);
  Array.unsafe_set winp 3 (s3 land mask28);
  Array.unsafe_set winp 4 (s4 land mask28);
  Array.unsafe_set winp 5 (s5 land mask28);
  Array.unsafe_set winp 6 s6
[@@lint.certified_width 62]

(* The certified digit loop.  Returns (n lsl 12) lor (k + 1024) with
   the n digits in [p.digits], or [-1] for an uncertain verdict.  All
   comparisons are between one-sided intervals [a, a+err): "a_true op
   b_true certainly" demands the op hold across both intervals. *)
let[@lint.no_alloc] run p ~f:(f [@lint.width 53]) ~lf:(lf [@lint.width 6])
    ~e:(e [@lint.width_signed 12]) ~narrow ~high_ok
    ~est:(est [@lint.width_signed 11]) =
  let q = -est in
  if q < T.q_min || q > T.q_max then -1
  else begin
    let gamma = Array.unsafe_get T.exps (q - T.q_min) in
    (* X = floor(P / 2^t) in frame units: P·2^(-t) = f·c·2^(e+gamma+112). *)
    let t = -(e + gamma + 112) in
    (* t ≥ lf+12 bounds the table error below one frame unit AND proves
       P < 2^(t+116), so the 60-bit hi window captures every product
       bit; t ≤ 81 keeps all window reads inside the padded limbs.  A
       reference estimate within one digit of the true scaling always
       lands here (t ≈ lf + 14). *)
    if t < lf + 12 || t > 81 then -1
    else begin
      let (winc [@lint.width 28]) = p.winc
      and (winp [@lint.width 28]) = p.winp
      and (digits [@lint.width 4]) = p.digits in
      let base = T.limbs_per_entry * (q - T.q_min) in
      Array.unsafe_set winc 0 (Array.unsafe_get T.limbs base);
      Array.unsafe_set winc 1 (Array.unsafe_get T.limbs (base + 1));
      Array.unsafe_set winc 2 (Array.unsafe_get T.limbs (base + 2));
      Array.unsafe_set winc 3 (Array.unsafe_get T.limbs (base + 3));
      Array.unsafe_set winc 4 (Array.unsafe_get T.limbs (base + 4));
      fill_product winp winc f;
      let xh = window60 winp (t + 56) and xl = window56 winp t in
      (* m⁺ = 2^(e-1)·10^q = c·2^(-(t+1)); m⁻ shifts once more when the
         mantissa sits on a power-of-two boundary (narrow low gap). *)
      let mph = window60 winc (t + 57) and mpl = window56 winc (t + 1) in
      let mmh = if narrow then window60 winc (t + 58) else mph
      and mml = if narrow then window56 winc (t + 2) else mpl in
      (* a + err ≤ b on (hi, lo) frames with a scalar error on the left. *)
      let le2p (ah [@lint.width 61]) (al [@lint.width 56])
          (err [@lint.width 60]) (bh [@lint.width 61]) (bl [@lint.width 56]) =
        let l = al + err in
        let h = ah + (l lsr 56) in
        let l = l land mask56 in
        h < bh || (h = bh && l <= bl)
      in
      let gt2 (ah [@lint.width 61]) (al [@lint.width 56])
          (bh [@lint.width 61]) (bl [@lint.width 56]) =
        ah > bh || (ah = bh && al > bl)
      in
      let ge2 (ah [@lint.width 61]) (al [@lint.width 56])
          (bh [@lint.width 61]) (bl [@lint.width 56]) =
        ah > bh || (ah = bh && al >= bl)
      in
      (* Initial one-sided errors: one unit of window truncation plus
         less than one unit of table truncation (t ≥ lf keeps f·θ·2^-t
         below a unit). *)
      let err0 = 2 in
      (* Estimate fixup, certified: too_low ⟺ X + m⁺ ≥ 1 (or > without
         high_ok), mirroring Scaling.scale_estimated. *)
      let sl0 = xl + mpl in
      let sh0 = xh + mph + (sl0 lsr 56) in
      let sl0 = sl0 land mask56 in
      let too_low_true =
        if high_ok then ge2 sh0 sl0 one_hi 0 else gt2 sh0 sl0 one_hi 0
      and too_low_false = le2p sh0 sl0 (2 * err0) one_hi 0 in
      if not (too_low_true || too_low_false) then -1
      else begin
        let k = if too_low_true then est + 1 else est in
        let rec loop (n [@lint.width 5]) (yh [@lint.width 61])
            (yl [@lint.width 56]) (mph [@lint.width 61]) (mpl [@lint.width 56])
            (mmh [@lint.width 61]) (mml [@lint.width 56])
            (errv [@lint.width 58]) (errm [@lint.width 58]) =
          Robust.Budget.check_output_digits n;
          let d = yh lsr 56 in
          if d > 9 then -1
          else begin
            let fh = yh land mask56 and fl = yl in
            (* The emitted digit is certain only if the true fraction
               cannot reach the next integer. *)
            if not (le2p fh fl errv one_hi 0) then -1
            else begin
              let tc1_true = le2p fh fl errv mmh mml
              and tc1_false = le2p mmh mml errm fh fl in
              let sl = fl + mpl in
              (* fraction + m⁺ < 2 frame units ≪ 2^61: mask61 is identity *)
              let sh = (fh + mph + (sl lsr 56)) land mask61 in
              let sl = sl land mask56 in
              let tc2_true =
                if high_ok then ge2 sh sl one_hi 0 else gt2 sh sl one_hi 0
              and tc2_false = le2p sh sl (errv + errm) one_hi 0 in
              if not ((tc1_true || tc1_false) && (tc2_true || tc2_false))
              then -1
              else if tc1_false && tc2_false then begin
                if n >= max_digits then -1
                else begin
                  Array.unsafe_set digits (n - 1) d;
                  (* On the continue branch tc2 is certainly false:
                     fraction + m⁺ < 1 frame unit, so each scaled hi part
                     is below 2^57 (mask57 identities) and the errors stay
                     below 2·10^17 < 2^58 (mask58 identities, see the
                     header's error discipline). *)
                  let l10 = fl * 10 in
                  let yh = (fh * 10) + (l10 lsr 56) and yl = l10 land mask56 in
                  let p10 = mpl * 10 in
                  let mph = ((mph land mask57) * 10) + (p10 lsr 56)
                  and mpl = p10 land mask56 in
                  let m10 = mml * 10 in
                  let mmh = ((mmh land mask57) * 10) + (m10 lsr 56)
                  and mml = m10 land mask56 in
                  loop (n + 1) yh yl mph mpl mmh mml
                    ((10 * errv) land mask58)
                    ((10 * errm) land mask58)
                end
              end
              else begin
                let last =
                  if tc1_true && not tc2_true then d
                  else if tc2_true && not tc1_true then d + 1
                  else begin
                    (* Both endpoints in range: the reference breaks the
                       tie by comparing 2·frac with one; equality (an
                       exact tie) is never certifiable and falls back,
                       so the caller's tie strategy is moot on hits. *)
                    let t2l = (fl lsl 1) land mask56 in
                    let t2h = (fh lsl 1) + (fl lsr 55) in
                    if le2p t2h t2l (2 * errv) one_hi 0 then d
                    else if gt2 t2h t2l one_hi 0 then d + 1
                    else -2
                  end
                in
                if last < 0 || last > 9 then -1
                else begin
                  Array.unsafe_set digits (n - 1) last;
                  (n lsl 12) lor (k + 1024)
                end
              end
            end
          end
        in
        (* Premultiplied convention: the loop state starts at
           Y = v·10^(1-k)·2^112 so the first digit is floor(Y).  The two
           branches call [loop] directly instead of binding a start-state
           tuple — the kernel is [@lint.no_alloc] and means it. *)
        if too_low_true then loop 1 xh xl mph mpl mmh mml err0 err0
        else begin
          (* Estimate not too low: X + m⁺ < 1 frame unit, so every hi
             part here is below 2^57 and the mask57s are identities. *)
          let l10 = xl * 10 in
          let yh = ((xh land mask57) * 10) + (l10 lsr 56)
          and yl = l10 land mask56 in
          let p10 = mpl * 10 in
          let mph = ((mph land mask57) * 10) + (p10 lsr 56)
          and mpl = p10 land mask56 in
          let m10 = mml * 10 in
          let mmh = ((mmh land mask57) * 10) + (m10 lsr 56)
          and mml = m10 land mask56 in
          loop 1 yh yl mph mpl mmh mml (10 * err0) (10 * err0)
        end
      end
    end
  end
[@@lint.certified_width 62]

(* Attempt a certified shortest conversion of v = f·2^e.  [mantissa_bits]
   is bit_length f, [est] the caller's Fast_estimate of ceil(log10 v) —
   passed in (not recomputed) so the fixup arithmetic is grounded in the
   {e same} estimate the reference path would use.  Returns the digits
   (most significant first, no trailing zeros beyond what the loop
   emitted) and the decimal point position k, or [None] when any step
   is uncertain. *)
let convert_shortest ~f ~e ~mantissa_bits ~narrow ~high_ok ~est =
  let p = Domain.DLS.get pool_key in
  if p.busy then None
  else begin
    p.busy <- true;
    (* Not [Fun.protect]: the two closures it allocates are measurable
       at this call rate.  [run] only raises via the budget hooks. *)
    let r =
      match run p ~f ~lf:mantissa_bits ~e ~narrow ~high_ok ~est with
      | r ->
        p.busy <- false;
        r
      | exception ex ->
        let bt = Printexc.get_raw_backtrace () in
        p.busy <- false;
        Printexc.raise_with_backtrace ex bt
    in
    if r < 0 then begin
      if Metrics.enabled () then Metrics.incr m_fallback;
      None
    end
    else begin
      if Metrics.enabled () then Metrics.incr m_hit;
      let n = r lsr 12 and k = (r land 0xfff) - 1024 in
      Some (Array.sub p.digits 0 n, k)
    end
  end
