(* Self-tests of the bdlint analyzer (lib/lint): one known-bad fixture
   per rule family asserting the reported rule ids and locations, clean
   fixtures proving the sanctioned idioms are accepted, annotation
   suppression accounting, and the CLI's exit-code contract. *)

(* naive substring search; fixtures are tiny *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0

let manifest =
  Lint.Manifest.of_string
    "exception-boundary fixtures/boundary.ml\ntelemetry-dir fixtures/hot"

let run ?(filename = "fixtures/plain.ml") src =
  Lint.Engine.analyze_source ~manifest ~filename src

let rule_ids (o : Lint.Engine.outcome) =
  List.map (fun f -> Lint.Finding.rule_id f.Lint.Finding.rule) o.findings

let suppressed_total (o : Lint.Engine.outcome) =
  List.fold_left (fun a (_, n) -> a + n) 0 o.suppressed

let check_rules name expected outcome =
  Alcotest.(check (list string)) name expected (rule_ids outcome)

(* ------------------------------------------------------------------ *)
(* domain-safety *)

let domain_bad =
  {|
let cache = Hashtbl.create 16
let count = ref 0
let table = [| 1; 2; 3 |]
let grown = Array.make 8 0

type box = { mutable contents : int }
|}

let domain_good =
  {|
let hits = Atomic.make 0
let slot = Domain.DLS.new_key (fun () -> Array.make 4 0)
let lock = Mutex.create ()
let zero = [||]

let per_call () =
  let acc = ref 0 in
  let buf = Array.make 4 0 in
  (acc, buf)

let annotated = Array.init 9 (fun i -> i)
  [@@lint.domain_safe "read-only table"]

type guarded = { m : Mutex.t; mutable v : int } [@@lint.guarded_by "m"]
|}

let test_domain () =
  check_rules "bad fixture"
    [ "domain-safety"; "domain-safety"; "domain-safety"; "domain-safety";
      "domain-safety" ]
    (run domain_bad);
  let good = run domain_good in
  check_rules "good fixture" [] good;
  Alcotest.(check bool)
    "annotations counted as suppressions" true
    (suppressed_total good >= 2)

(* ------------------------------------------------------------------ *)
(* exn-escape *)

let exn_bad =
  {|
let f () = failwith "boom"
let g x = Option.get x
let h x = Nat.to_int_exn x
let i () = assert false
|}

let exn_good =
  {|
let f () = Error.catch (fun () -> failwith "absorbed")
let g x = try Option.get x with Invalid_argument _ -> 0
let h x = Error.raise_ x
let i () = invalid_arg "documented precondition"
  [@@lint.can_raise Invalid_argument]
|}

let test_exn () =
  check_rules "bad fixture"
    [ "exn-escape"; "exn-escape"; "exn-escape"; "exn-escape" ]
    (run ~filename:"fixtures/boundary.ml" exn_bad);
  let good = run ~filename:"fixtures/boundary.ml" exn_good in
  check_rules "good fixture" [] good;
  Alcotest.(check bool)
    "can_raise counted as a suppression" true
    (suppressed_total good >= 1);
  (* the rule only applies to manifest-listed boundary modules *)
  check_rules "non-boundary file exempt" [] (run exn_bad)

(* ------------------------------------------------------------------ *)
(* no-alloc *)

let alloc_bad =
  {|
let kernel a =
  let pair = (a, a) in
  let copy = Array.copy a in
  let n = Nat.of_int 3 in
  ignore (fun x -> x + 1);
  (pair, copy, n)
  [@@lint.no_alloc]
|}

let alloc_good =
  {|
let kernel a b =
  let carry = ref 0 in
  let rec loop i acc = if i = 0 then acc else loop (i - 1) (acc + a.(i)) in
  a.(0) <- b + !carry + loop 3 0;
  if Array.length a = 0 then
    (a.(0) <- Array.length (Array.make 4 0))
    [@lint.alloc_ok "cold growth path"]
  [@@lint.no_alloc]

let unannotated x = (x, Array.copy x)
|}

let test_alloc () =
  let bad = run alloc_bad in
  (* tuple let, Array.copy, Nat.of_int, anonymous closure, result tuple *)
  check_rules "bad fixture"
    [ "no-alloc"; "no-alloc"; "no-alloc"; "no-alloc"; "no-alloc" ]
    bad;
  let good = run alloc_good in
  check_rules "good fixture: refs, named loops, alloc_ok accepted" [] good;
  Alcotest.(check bool)
    "alloc_ok counted as a suppression" true
    (suppressed_total good >= 1)

(* ------------------------------------------------------------------ *)
(* telemetry-gate *)

let telemetry_bad =
  {|
let c = Telemetry.Metrics.counter ~help:"h" "requests"

let record () = Telemetry.Metrics.incr c

let observe_ungated h v = Metrics.observe h v
|}

let telemetry_good =
  {|
let c = Telemetry.Metrics.counter ~help:"h" "requests"

let record () = if Telemetry.Metrics.enabled () then Telemetry.Metrics.incr c

let compound flag = if flag && Metrics.enabled () then Metrics.add c 2

let tier_counter () =
  (Telemetry.Metrics.incr c) [@lint.always_on "stats contract"]

let read_side () = Telemetry.Metrics.value c
|}

(* the flight recorder's [record] allocates its detail string before the
   internal gate, so hot-path sites must gate the whole call *)
let flight_bad =
  {|
let shed reason = Telemetry.Flight.record ~kind:"shed" reason
|}

let flight_good =
  {|
let shed reason =
  if Telemetry.Flight.enabled () then Telemetry.Flight.record ~kind:"shed" reason

let dump_on_crash () = Telemetry.Flight.dump ~reason:"worker-crash"
|}

(* span pairing: Trace.start without finish leaks an open span; finish
   without start observes someone else's clock *)
let spans_bad =
  {|
let leak x =
  let t0 = Telemetry.Trace.start () in
  t0 + x

let orphan t0 = Telemetry.Trace.finish Telemetry.Trace.Parse t0
|}

let spans_good =
  {|
let staged x =
  let t0 = Telemetry.Trace.start () in
  let r = x * 2 in
  Telemetry.Trace.finish Telemetry.Trace.Parse t0;
  r

let deliberate_handoff () = Telemetry.Trace.start ()
[@@lint.always_on "token finished by caller"]
|}

let test_telemetry () =
  check_rules "bad fixture"
    [ "telemetry-gate"; "telemetry-gate" ]
    (run ~filename:"fixtures/hot/loop.ml" telemetry_bad);
  let good = run ~filename:"fixtures/hot/loop.ml" telemetry_good in
  check_rules "good fixture: gated, always_on, reads, registration" [] good;
  Alcotest.(check bool)
    "always_on counted as a suppression" true
    (suppressed_total good >= 1);
  check_rules "outside telemetry dirs exempt" [] (run telemetry_bad);
  check_rules "ungated flight record" [ "telemetry-gate" ]
    (run ~filename:"fixtures/hot/loop.ml" flight_bad);
  check_rules "gated flight record; dump exempt" []
    (run ~filename:"fixtures/hot/loop.ml" flight_good);
  check_rules "unpaired spans"
    [ "telemetry-gate"; "telemetry-gate" ]
    (run ~filename:"fixtures/hot/loop.ml" spans_bad);
  check_rules "paired and annotated spans" []
    (run ~filename:"fixtures/hot/loop.ml" spans_good)

(* ------------------------------------------------------------------ *)
(* call-graph propagation: exn-escape and no-alloc across units *)

let graph_helper =
  {|
let boom () = failwith "kernel invariant"
let fine () = 42
|}

let graph_exn_bad = {|
let entry () = Helper.boom ()
|}

let graph_exn_sup =
  {|
let entry () = Helper.boom ()
  [@@lint.can_raise Failure (* deliberate raising API; callers guard *)]
|}

let graph_exn_good = {|
let entry () = Error.catch (fun () -> Helper.boom ())
|}

let run2 ?(filename = "fixtures/boundary.ml") src =
  Lint.Engine.analyze_sources ~manifest
    [ ("fixtures/helper.ml", graph_helper); (filename, src) ]

let test_graph_exn () =
  check_rules "cross-unit raise reaches the boundary" [ "exn-escape" ]
    (run2 graph_exn_bad);
  let sup = run2 graph_exn_sup in
  check_rules "annotated boundary entry" [] sup;
  Alcotest.(check bool) "annotation counted as suppression" true
    (suppressed_total sup >= 1);
  check_rules "catcher absorbs the cross-unit raise" [] (run2 graph_exn_good);
  (* the same call outside any boundary file is nobody's business *)
  check_rules "non-boundary caller exempt" []
    (run2 ~filename:"fixtures/plain.ml" graph_exn_bad)

let alloc_graph_bad =
  {|
let helper x = Array.make x 0

let kernel x = Array.length (helper x)
  [@@lint.no_alloc]
|}

let alloc_graph_good =
  {|
let helper x = x land 0xff

let kernel x = helper x + 1
  [@@lint.no_alloc]

let table_slot x = Array.make x 0
  [@@lint.alloc_ok "init-time table fill, not on the digit path"]

let kernel2 x = Array.length (table_slot x)
  [@@lint.no_alloc]
|}

let test_graph_alloc () =
  check_rules "transitive allocation behind a call" [ "no-alloc" ]
    (run alloc_graph_bad);
  let good = run alloc_graph_good in
  check_rules "clean and sanctioned callees" [] good;
  Alcotest.(check bool) "alloc_ok callee counted as suppression" true
    (suppressed_total good >= 1)

(* ------------------------------------------------------------------ *)
(* blocking *)

let blocking_kernel_bad =
  {|
let park () = Unix.sleep 1

let kernel x = park (); x + 1
  [@@lint.no_alloc]
|}

let blocking_lock_bad =
  {|
let m = Mutex.create ()

let io () = Unix.sleep 1

let direct () =
  Mutex.lock m;
  Unix.sleep 1;
  Mutex.unlock m

let transitive () =
  Mutex.lock m;
  io ();
  Mutex.unlock m
|}

let blocking_good =
  {|
let m = Mutex.create ()

let release_first d =
  Mutex.lock m;
  let v = d + 1 in
  Mutex.unlock m;
  Unix.sleep v

let sanctioned () =
  Mutex.lock m;
  (Unix.sleep 1 [@lint.blocking_ok "bounded 1s backoff, reviewed"]);
  Mutex.unlock m
|}

let test_blocking () =
  check_rules "kernel reaching a blocking op" [ "blocking" ]
    (run blocking_kernel_bad);
  check_rules "I/O under a held lock, direct and via a call"
    [ "blocking"; "blocking" ]
    (run blocking_lock_bad);
  let good = run blocking_good in
  check_rules "lock released around I/O; annotated site" [] good;
  Alcotest.(check bool) "blocking_ok counted as suppression" true
    (suppressed_total good >= 1)

(* ------------------------------------------------------------------ *)
(* lock-order *)

let lockorder_cycle =
  {|
let a = Mutex.create ()
let b = Mutex.create ()

let ab () =
  Mutex.lock a;
  Mutex.lock b;
  Mutex.unlock b;
  Mutex.unlock a

let ba () =
  Mutex.lock b;
  Mutex.lock a;
  Mutex.unlock a;
  Mutex.unlock b
|}

let lockorder_transitive =
  {|
let a = Mutex.create ()
let b = Mutex.create ()

let helper () = Mutex.lock b; Mutex.unlock b
let outer () = Mutex.lock a; helper (); Mutex.unlock a
let other () = Mutex.lock b; Mutex.lock a; Mutex.unlock a; Mutex.unlock b
|}

let lockorder_self = {|
let a = Mutex.create ()
let twice () =
  Mutex.lock a;
  Mutex.lock a
|}

let lockorder_clean =
  {|
let a = Mutex.create ()
let b = Mutex.create ()

let one () =
  Mutex.lock a;
  Mutex.lock b;
  Mutex.unlock b;
  Mutex.unlock a

let two () =
  Mutex.lock a;
  Mutex.lock b;
  Mutex.unlock b;
  Mutex.unlock a
|}

let lockorder_contradicts =
  {|
let a = Mutex.create ()
let b = Mutex.create ()

let ab () =
  Mutex.lock a;
  Mutex.lock b;
  Mutex.unlock b;
  Mutex.unlock a
  [@@lint.lock_order "plain:b<plain:a"]
|}

let lockorder_suppressed =
  {|
let a = Mutex.create ()
let twice () =
  Mutex.lock a;
  Mutex.lock a
  [@@lint.lock_order "plain:a<plain:a" (* re-entrant by construction *)]
|}

let test_lockorder () =
  check_rules "two-lock cycle" [ "lock-order" ] (run lockorder_cycle);
  check_rules "cycle through a call" [ "lock-order" ] (run lockorder_transitive);
  check_rules "self-deadlock" [ "lock-order" ] (run lockorder_self);
  check_rules "consistent order" [] (run lockorder_clean);
  check_rules "contradicts declared order" [ "lock-order" ]
    (run lockorder_contradicts);
  let sup = run lockorder_suppressed in
  check_rules "declared self-edge" [] sup;
  Alcotest.(check bool) "declaration counted as suppression" true
    (suppressed_total sup >= 1)

(* ------------------------------------------------------------------ *)
(* width certification *)

let width_bad =
  {|
let mul_over (x [@lint.width 40]) (y [@lint.width 40]) = x * y
  [@@lint.certified_width 62]

let shift_over (m [@lint.width 64]) = Int64.shift_left m 1
  [@@lint.certified_width 64]

let take (n [@lint.width 8]) = n + 1
  [@@lint.certified_width 62]

let caller (x [@lint.width 40]) = take x
  [@@lint.certified_width 62]
|}

let width_good =
  {|
let mul_ok (x [@lint.width 20]) (y [@lint.width 20]) = x * y
  [@@lint.certified_width 62]

let masked (x [@lint.width 62]) (y [@lint.width 62]) =
  (x land 0xFFFFF) * (y land 0xFFFFF)
  [@@lint.certified_width 62]

let shift_ok (m [@lint.width 64]) =
  Int64.shift_left (Int64.logand m 0x7FFFFFFFFFFFFFFFL) 1
  [@@lint.certified_width 64]

let take (n [@lint.width 8]) = n + 1
  [@@lint.certified_width 62]

let caller (x [@lint.width 40]) = take (x land 0xFF)
  [@@lint.certified_width 62]

let uncertified x y = x * y
|}

let test_width () =
  check_rules "overflow, 64-bit overflow, and an out-of-range argument"
    [ "width"; "width"; "width" ]
    (run width_bad);
  check_rules "interval analysis accepts the masked forms" []
    (run width_good)

(* ------------------------------------------------------------------ *)
(* stale manifest entries (non-gating) *)

let test_stale () =
  let stale = Lint.Manifest.of_string "exception-boundary fixtures/gone.ml" in
  let o =
    Lint.Engine.analyze_sources ~manifest:stale ~stale_check:true
      [ ("fixtures/plain.ml", "let x = 1\n") ]
  in
  check_rules "stale entry reported" [ "manifest-stale" ] o;
  Alcotest.(check int) "manifest-stale is non-gating" 0
    (List.length (Lint.Engine.gating_findings o));
  (* a matching entry is not stale; the check is opt-in *)
  check_rules "matching entry" []
    (Lint.Engine.analyze_sources ~manifest ~stale_check:true
       [ ("fixtures/boundary.ml", "let x = 1\n");
         ("fixtures/hot/loop.ml", "let y = 2\n") ]);
  check_rules "stale check off by default"
    []
    (Lint.Engine.analyze_sources ~manifest:stale
       [ ("fixtures/plain.ml", "let x = 1\n") ])

(* ------------------------------------------------------------------ *)
(* engine plumbing *)

let test_engine () =
  let o = run domain_bad in
  Alcotest.(check int) "files counted" 1 o.files;
  let first = List.hd o.findings in
  Alcotest.(check string) "finding file" "fixtures/plain.ml"
    first.Lint.Finding.file;
  Alcotest.(check bool) "line numbers 1-based" true
    (first.Lint.Finding.line >= 1);
  (* merged outcomes accumulate counts *)
  let m = Lint.Engine.merge o (run ~filename:"fixtures/boundary.ml" exn_bad) in
  Alcotest.(check int) "merge files" 2 m.files;
  Alcotest.(check int) "merge findings"
    (List.length o.findings + 4)
    (List.length m.findings);
  (* JSON rendering names every rule *)
  let json = Lint.Engine.to_json m in
  List.iter
    (fun r ->
      let id = Lint.Finding.rule_id r in
      Alcotest.(check bool)
        (Printf.sprintf "json mentions %s" id)
        true (contains json id))
    Lint.Finding.all_rules;
  (* a parse error is a structured failure, not a crash *)
  match run "let = (" with
  | exception Lint.Engine.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected Parse_error"

(* ------------------------------------------------------------------ *)
(* manifest *)

let test_manifest () =
  Alcotest.(check bool) "boundary suffix match" true
    (Lint.Manifest.is_boundary manifest
       "_build/default/fixtures/boundary.ml");
  Alcotest.(check bool) "non-boundary" false
    (Lint.Manifest.is_boundary manifest "lib/reader/exact.ml");
  Alcotest.(check bool) "telemetry dir window match" true
    (Lint.Manifest.in_telemetry_dir manifest
       "/root/x/fixtures/hot/inner.ml");
  Alcotest.(check bool) "telemetry non-match" false
    (Lint.Manifest.in_telemetry_dir manifest "fixtures/cold/inner.ml");
  Alcotest.check_raises "malformed directive"
    (Lint.Manifest.Malformed "line 1: unknown or malformed directive \"bogus\"")
    (fun () -> ignore (Lint.Manifest.of_string "bogus directive here"))

(* ------------------------------------------------------------------ *)
(* the installed CLI: exit codes and JSON output *)

let bdlint_exe =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    "bin/bdlint.exe"

let in_temp_fixture ~source f =
  let dir = Filename.temp_file "bdlint" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "fixture.ml" in
  let oc = open_out path in
  output_string oc source;
  close_out oc;
  Fun.protect
    ~finally:(fun () ->
      Sys.remove path;
      Unix.rmdir dir)
    (fun () -> f dir)

let run_cli args =
  let tmp = Filename.temp_file "bdlint" ".out" in
  let status =
    Sys.command (Printf.sprintf "%s %s > %s 2>/dev/null" bdlint_exe args tmp)
  in
  let ic = open_in_bin tmp in
  let out = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove tmp;
  (status, out)

let test_cli () =
  in_temp_fixture ~source:"let bad = ref 0\n" (fun dir ->
      let status, _ = run_cli dir in
      Alcotest.(check int) "findings exit 1" 1 status;
      let status, json = run_cli ("--format json " ^ dir) in
      Alcotest.(check int) "json exit 1" 1 status;
      Alcotest.(check bool) "json names the rule" true
        (contains json {|"rule":"domain-safety"|}));
  in_temp_fixture ~source:"let fine = Atomic.make 0\n" (fun dir ->
      let status, _ = run_cli ("--quiet " ^ dir) in
      Alcotest.(check int) "clean exit 0" 0 status);
  let status, _ = run_cli "--manifest does-not-exist.manifest lib" in
  Alcotest.(check int) "usage error exit 2" 2 status

(* The CI ratchet: counts at the committed baseline pass, any count
   above it fails, and the diff artifact names the rising counter. *)
let test_cli_ratchet () =
  let source =
    "let grows = Hashtbl.create 16\n\
    \  [@@lint.domain_safe \"test fixture: single-writer\"]\n"
  in
  in_temp_fixture ~source (fun dir ->
      let base = Filename.temp_file "bdlint" ".baseline.json" in
      let diff = Filename.temp_file "bdlint" ".diff.json" in
      Fun.protect
        ~finally:(fun () ->
          Sys.remove base;
          Sys.remove diff)
        (fun () ->
          let status, _ =
            run_cli
              (Printf.sprintf "--quiet --write-baseline %s %s" base dir)
          in
          Alcotest.(check int) "suppressed fixture exit 0" 0 status;
          let status, _ =
            run_cli (Printf.sprintf "--quiet --baseline %s %s" base dir)
          in
          Alcotest.(check int) "at the baseline exit 0" 0 status;
          (* tighten the baseline to zero: the ratchet fires even though
             there is no finding, and the diff names the counter *)
          let oc = open_out base in
          output_string oc "{\n  \"findings\": {},\n  \"suppressions\": {}\n}\n";
          close_out oc;
          let status, _ =
            run_cli
              (Printf.sprintf "--quiet --baseline %s --baseline-diff %s %s"
                 base diff dir)
          in
          Alcotest.(check int) "above the baseline exit 1" 1 status;
          let ic = open_in_bin diff in
          let d = really_input_string ic (in_channel_length ic) in
          close_in ic;
          Alcotest.(check bool) "diff names the rising counter" true
            (contains d "suppressions/domain-safety")))

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "domain-safety" `Quick test_domain;
          Alcotest.test_case "exn-escape" `Quick test_exn;
          Alcotest.test_case "no-alloc" `Quick test_alloc;
          Alcotest.test_case "telemetry-gate" `Quick test_telemetry;
          Alcotest.test_case "blocking" `Quick test_blocking;
          Alcotest.test_case "lock-order" `Quick test_lockorder;
          Alcotest.test_case "width" `Quick test_width;
        ] );
      ( "callgraph",
        [
          Alcotest.test_case "exn-escape propagation" `Quick test_graph_exn;
          Alcotest.test_case "no-alloc propagation" `Quick test_graph_alloc;
          Alcotest.test_case "stale manifest entries" `Quick test_stale;
        ] );
      ( "engine",
        [
          Alcotest.test_case "outcomes and renderings" `Quick test_engine;
          Alcotest.test_case "manifest" `Quick test_manifest;
        ] );
      ( "cli",
        [
          Alcotest.test_case "exit codes" `Quick test_cli;
          Alcotest.test_case "baseline ratchet" `Quick test_cli_ratchet;
        ] );
    ]
