(* Self-tests of the bdlint analyzer (lib/lint): one known-bad fixture
   per rule family asserting the reported rule ids and locations, clean
   fixtures proving the sanctioned idioms are accepted, annotation
   suppression accounting, and the CLI's exit-code contract. *)

(* naive substring search; fixtures are tiny *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0

let manifest =
  Lint.Manifest.of_string
    "exception-boundary fixtures/boundary.ml\ntelemetry-dir fixtures/hot"

let run ?(filename = "fixtures/plain.ml") src =
  Lint.Engine.analyze_source ~manifest ~filename src

let rule_ids (o : Lint.Engine.outcome) =
  List.map (fun f -> Lint.Finding.rule_id f.Lint.Finding.rule) o.findings

let suppressed_total (o : Lint.Engine.outcome) =
  List.fold_left (fun a (_, n) -> a + n) 0 o.suppressed

let check_rules name expected outcome =
  Alcotest.(check (list string)) name expected (rule_ids outcome)

(* ------------------------------------------------------------------ *)
(* domain-safety *)

let domain_bad =
  {|
let cache = Hashtbl.create 16
let count = ref 0
let table = [| 1; 2; 3 |]
let grown = Array.make 8 0

type box = { mutable contents : int }
|}

let domain_good =
  {|
let hits = Atomic.make 0
let slot = Domain.DLS.new_key (fun () -> Array.make 4 0)
let lock = Mutex.create ()
let zero = [||]

let per_call () =
  let acc = ref 0 in
  let buf = Array.make 4 0 in
  (acc, buf)

let annotated = Array.init 9 (fun i -> i)
  [@@lint.domain_safe "read-only table"]

type guarded = { m : Mutex.t; mutable v : int } [@@lint.guarded_by "m"]
|}

let test_domain () =
  check_rules "bad fixture"
    [ "domain-safety"; "domain-safety"; "domain-safety"; "domain-safety";
      "domain-safety" ]
    (run domain_bad);
  let good = run domain_good in
  check_rules "good fixture" [] good;
  Alcotest.(check bool)
    "annotations counted as suppressions" true
    (suppressed_total good >= 2)

(* ------------------------------------------------------------------ *)
(* exn-escape *)

let exn_bad =
  {|
let f () = failwith "boom"
let g x = Option.get x
let h x = Nat.to_int_exn x
let i () = assert false
|}

let exn_good =
  {|
let f () = Error.catch (fun () -> failwith "absorbed")
let g x = try Option.get x with Invalid_argument _ -> 0
let h x = Error.raise_ x
let i () = invalid_arg "documented precondition"
  [@@lint.can_raise Invalid_argument]
|}

let test_exn () =
  check_rules "bad fixture"
    [ "exn-escape"; "exn-escape"; "exn-escape"; "exn-escape" ]
    (run ~filename:"fixtures/boundary.ml" exn_bad);
  let good = run ~filename:"fixtures/boundary.ml" exn_good in
  check_rules "good fixture" [] good;
  Alcotest.(check bool)
    "can_raise counted as a suppression" true
    (suppressed_total good >= 1);
  (* the rule only applies to manifest-listed boundary modules *)
  check_rules "non-boundary file exempt" [] (run exn_bad)

(* ------------------------------------------------------------------ *)
(* no-alloc *)

let alloc_bad =
  {|
let kernel a =
  let pair = (a, a) in
  let copy = Array.copy a in
  let n = Nat.of_int 3 in
  ignore (fun x -> x + 1);
  (pair, copy, n)
  [@@lint.no_alloc]
|}

let alloc_good =
  {|
let kernel a b =
  let carry = ref 0 in
  let rec loop i acc = if i = 0 then acc else loop (i - 1) (acc + a.(i)) in
  a.(0) <- b + !carry + loop 3 0;
  if Array.length a = 0 then
    (a.(0) <- Array.length (Array.make 4 0))
    [@lint.alloc_ok "cold growth path"]
  [@@lint.no_alloc]

let unannotated x = (x, Array.copy x)
|}

let test_alloc () =
  let bad = run alloc_bad in
  (* tuple let, Array.copy, Nat.of_int, anonymous closure, result tuple *)
  check_rules "bad fixture"
    [ "no-alloc"; "no-alloc"; "no-alloc"; "no-alloc"; "no-alloc" ]
    bad;
  let good = run alloc_good in
  check_rules "good fixture: refs, named loops, alloc_ok accepted" [] good;
  Alcotest.(check bool)
    "alloc_ok counted as a suppression" true
    (suppressed_total good >= 1)

(* ------------------------------------------------------------------ *)
(* telemetry-gate *)

let telemetry_bad =
  {|
let c = Telemetry.Metrics.counter ~help:"h" "requests"

let record () = Telemetry.Metrics.incr c

let observe_ungated h v = Metrics.observe h v
|}

let telemetry_good =
  {|
let c = Telemetry.Metrics.counter ~help:"h" "requests"

let record () = if Telemetry.Metrics.enabled () then Telemetry.Metrics.incr c

let compound flag = if flag && Metrics.enabled () then Metrics.add c 2

let tier_counter () =
  (Telemetry.Metrics.incr c) [@lint.always_on "stats contract"]

let read_side () = Telemetry.Metrics.value c
|}

(* the flight recorder's [record] allocates its detail string before the
   internal gate, so hot-path sites must gate the whole call *)
let flight_bad =
  {|
let shed reason = Telemetry.Flight.record ~kind:"shed" reason
|}

let flight_good =
  {|
let shed reason =
  if Telemetry.Flight.enabled () then Telemetry.Flight.record ~kind:"shed" reason

let dump_on_crash () = Telemetry.Flight.dump ~reason:"worker-crash"
|}

(* span pairing: Trace.start without finish leaks an open span; finish
   without start observes someone else's clock *)
let spans_bad =
  {|
let leak x =
  let t0 = Telemetry.Trace.start () in
  t0 + x

let orphan t0 = Telemetry.Trace.finish Telemetry.Trace.Parse t0
|}

let spans_good =
  {|
let staged x =
  let t0 = Telemetry.Trace.start () in
  let r = x * 2 in
  Telemetry.Trace.finish Telemetry.Trace.Parse t0;
  r

let deliberate_handoff () = Telemetry.Trace.start ()
[@@lint.always_on "token finished by caller"]
|}

let test_telemetry () =
  check_rules "bad fixture"
    [ "telemetry-gate"; "telemetry-gate" ]
    (run ~filename:"fixtures/hot/loop.ml" telemetry_bad);
  let good = run ~filename:"fixtures/hot/loop.ml" telemetry_good in
  check_rules "good fixture: gated, always_on, reads, registration" [] good;
  Alcotest.(check bool)
    "always_on counted as a suppression" true
    (suppressed_total good >= 1);
  check_rules "outside telemetry dirs exempt" [] (run telemetry_bad);
  check_rules "ungated flight record" [ "telemetry-gate" ]
    (run ~filename:"fixtures/hot/loop.ml" flight_bad);
  check_rules "gated flight record; dump exempt" []
    (run ~filename:"fixtures/hot/loop.ml" flight_good);
  check_rules "unpaired spans"
    [ "telemetry-gate"; "telemetry-gate" ]
    (run ~filename:"fixtures/hot/loop.ml" spans_bad);
  check_rules "paired and annotated spans" []
    (run ~filename:"fixtures/hot/loop.ml" spans_good)

(* ------------------------------------------------------------------ *)
(* engine plumbing *)

let test_engine () =
  let o = run domain_bad in
  Alcotest.(check int) "files counted" 1 o.files;
  let first = List.hd o.findings in
  Alcotest.(check string) "finding file" "fixtures/plain.ml"
    first.Lint.Finding.file;
  Alcotest.(check bool) "line numbers 1-based" true
    (first.Lint.Finding.line >= 1);
  (* merged outcomes accumulate counts *)
  let m = Lint.Engine.merge o (run ~filename:"fixtures/boundary.ml" exn_bad) in
  Alcotest.(check int) "merge files" 2 m.files;
  Alcotest.(check int) "merge findings"
    (List.length o.findings + 4)
    (List.length m.findings);
  (* JSON rendering names every rule *)
  let json = Lint.Engine.to_json m in
  List.iter
    (fun r ->
      let id = Lint.Finding.rule_id r in
      Alcotest.(check bool)
        (Printf.sprintf "json mentions %s" id)
        true (contains json id))
    Lint.Finding.all_rules;
  (* a parse error is a structured failure, not a crash *)
  match run "let = (" with
  | exception Lint.Engine.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected Parse_error"

(* ------------------------------------------------------------------ *)
(* manifest *)

let test_manifest () =
  Alcotest.(check bool) "boundary suffix match" true
    (Lint.Manifest.is_boundary manifest
       "_build/default/fixtures/boundary.ml");
  Alcotest.(check bool) "non-boundary" false
    (Lint.Manifest.is_boundary manifest "lib/reader/exact.ml");
  Alcotest.(check bool) "telemetry dir window match" true
    (Lint.Manifest.in_telemetry_dir manifest
       "/root/x/fixtures/hot/inner.ml");
  Alcotest.(check bool) "telemetry non-match" false
    (Lint.Manifest.in_telemetry_dir manifest "fixtures/cold/inner.ml");
  Alcotest.check_raises "malformed directive"
    (Lint.Manifest.Malformed "line 1: unknown or malformed directive \"bogus\"")
    (fun () -> ignore (Lint.Manifest.of_string "bogus directive here"))

(* ------------------------------------------------------------------ *)
(* the installed CLI: exit codes and JSON output *)

let bdlint_exe =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    "bin/bdlint.exe"

let in_temp_fixture ~source f =
  let dir = Filename.temp_file "bdlint" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "fixture.ml" in
  let oc = open_out path in
  output_string oc source;
  close_out oc;
  Fun.protect
    ~finally:(fun () ->
      Sys.remove path;
      Unix.rmdir dir)
    (fun () -> f dir)

let run_cli args =
  let tmp = Filename.temp_file "bdlint" ".out" in
  let status =
    Sys.command (Printf.sprintf "%s %s > %s 2>/dev/null" bdlint_exe args tmp)
  in
  let ic = open_in_bin tmp in
  let out = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove tmp;
  (status, out)

let test_cli () =
  in_temp_fixture ~source:"let bad = ref 0\n" (fun dir ->
      let status, _ = run_cli dir in
      Alcotest.(check int) "findings exit 1" 1 status;
      let status, json = run_cli ("--format json " ^ dir) in
      Alcotest.(check int) "json exit 1" 1 status;
      Alcotest.(check bool) "json names the rule" true
        (contains json {|"rule":"domain-safety"|}));
  in_temp_fixture ~source:"let fine = Atomic.make 0\n" (fun dir ->
      let status, _ = run_cli ("--quiet " ^ dir) in
      Alcotest.(check int) "clean exit 0" 0 status);
  let status, _ = run_cli "--manifest does-not-exist.manifest lib" in
  Alcotest.(check int) "usage error exit 2" 2 status

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "domain-safety" `Quick test_domain;
          Alcotest.test_case "exn-escape" `Quick test_exn;
          Alcotest.test_case "no-alloc" `Quick test_alloc;
          Alcotest.test_case "telemetry-gate" `Quick test_telemetry;
        ] );
      ( "engine",
        [
          Alcotest.test_case "outcomes and renderings" `Quick test_engine;
          Alcotest.test_case "manifest" `Quick test_manifest;
        ] );
      ("cli", [ Alcotest.test_case "exit codes" `Quick test_cli ]);
    ]
