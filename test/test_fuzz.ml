(* Differential fuzz harness for the hardened conversion pipeline.

   Bounded by default to 10_000 random inputs (override with FUZZ_ITERS,
   reproduce a run with FUZZ_SEED) plus the full deterministic corpus:
   [Robust.Gen.nasty] and every line of [test/corpus/*].  Per input it
   checks

   - totality: no exception escapes [Reader.read], [Reader.Fast.read] or
     [Dragon.Printer.print_value], for binary64 and binary16;
   - round-trip: any successfully read value prints and reads back
     [Value.equal];
   - differential: on well-formed moderate inputs the fast reader, the
     exact reader and the host [strtod] agree bit for bit;
   - fixed format: output never sits more than half an output quantum
     from the exact value;
   - fault tolerance: with each injection point armed, the pipeline
     still returns results instead of throwing. *)

module R = Reader
module Value = Fp.Value
module Format_spec = Fp.Format_spec
module Ratio = Bignum.Ratio
module Gen = Robust.Gen

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( try max 1 (int_of_string s) with _ -> default)
  | None -> default

let iters = env_int "FUZZ_ITERS" 10_000
let seed = env_int "FUZZ_SEED" 0x5eed
let b64 = Format_spec.binary64
let b16 = Format_spec.binary16

let short s = if String.length s <= 80 then s else String.sub s 0 77 ^ "..."

let no_raise what input f =
  try f ()
  with exn ->
    Alcotest.failf "%s raised %s on %S" what (Printexc.to_string exn)
      (short input)

(* The core totality + round-trip obligation for one input string. *)
let check_one fmt input =
  ignore (no_raise "Fast.read" input (fun () -> R.Fast.read input));
  match no_raise "read" input (fun () -> R.read fmt input) with
  | Error _ -> ()
  | Ok v -> (
    match
      no_raise "print_value" input (fun () ->
          Dragon.Printer.print_value fmt v)
    with
    | Error e ->
      Alcotest.failf "printing the value of %S failed: %s" (short input)
        (Robust.Error.to_string e)
    | Ok printed -> (
      match no_raise "re-read" printed (fun () -> R.read fmt printed) with
      | Ok v' ->
        if not (Value.equal v v') then
          Alcotest.failf "round-trip mismatch: %S prints as %S which reads as %s"
            (short input) printed (Value.to_string v')
      | Error e ->
        Alcotest.failf "shortest output %S of %S does not read back: %s"
          printed (short input) (Robust.Error.to_string e)))

let test_random_totality () =
  let st = Random.State.make [| seed |] in
  for _ = 1 to iters do
    let input = Gen.any st in
    check_one b64 input;
    check_one b16 input
  done

(* Well-formed moderate inputs: the two readers and the host strtod are
   three independent implementations of the same function. *)
let test_plain_differential () =
  let st = Random.State.make [| seed; 1 |] in
  let bits = Int64.bits_of_float in
  for _ = 1 to iters do
    let input = Gen.plain st in
    let exact =
      match R.read_float input with
      | Ok x -> x
      | Error e ->
        Alcotest.failf "exact reader rejected plain input %S: %s" input
          (Robust.Error.to_string e)
    in
    (match R.Fast.read input with
    | Ok fast ->
      if not (Int64.equal (bits fast) (bits exact)) then
        Alcotest.failf "fast/exact mismatch on %S: %h vs %h" input fast exact
    | Error e ->
      Alcotest.failf "fast reader rejected plain input %S: %s" input
        (Robust.Error.to_string e));
    match float_of_string_opt input with
    | Some host when not (Int64.equal (bits host) (bits exact)) ->
      Alcotest.failf "host strtod disagrees on %S: %h vs our %h" input host
        exact
    | _ -> ()
  done

let test_corpus () =
  let corpus_lines =
    if Sys.file_exists "corpus" && Sys.is_directory "corpus" then
      Sys.readdir "corpus" |> Array.to_list |> List.sort String.compare
      |> List.concat_map (fun f ->
             let ic = open_in (Filename.concat "corpus" f) in
             let lines = ref [] in
             (try
                while true do
                  lines := input_line ic :: !lines
                done
              with End_of_file -> ());
             close_in ic;
             List.rev !lines)
    else []
  in
  let inputs = Gen.nasty @ corpus_lines in
  Alcotest.(check bool)
    "corpus present" true
    (List.length corpus_lines > 0);
  List.iter
    (fun input ->
      check_one b64 input;
      check_one b16 input)
    inputs

(* Random positive doubles through the fixed-format converter: whatever
   the request, the denoted output must sit within half an output
   quantum of the exact value (reading # as 0, the quantum of the last
   emitted position). *)
let test_fixed_half_quantum () =
  let st = Random.State.make [| seed; 2 |] in
  let count = max 200 (iters / 10) in
  let done_ = ref 0 in
  while !done_ < count do
    let payload =
      Int64.logand (Random.State.int64 st Int64.max_int)
        0x7FFF_FFFF_FFFF_FFFFL
    in
    let x = Int64.float_of_bits payload in
    match Fp.Ieee.decompose x with
    | Value.Finite v ->
      incr done_;
      let req =
        if Random.State.bool st then
          Dragon.Fixed_format.Relative (1 + Random.State.int st 17)
        else Dragon.Fixed_format.Absolute (Random.State.int st 40 - 20)
      in
      (match Dragon.Fixed_format.convert b64 v req with
      | Error e ->
        Alcotest.failf "fixed convert failed on %h: %s" x
          (Robust.Error.to_string e)
      | Ok t ->
        let exact = Value.to_ratio b64 { v with neg = false } in
        let denoted = Dragon.Fixed_format.to_ratio ~base:10 t in
        let j = t.Dragon.Fixed_format.k - Array.length t.Dragon.Fixed_format.digits in
        (* Correct to half the requested quantum — except where the
           float's own gap dominates and positions turn to #, where one
           ulp is the honest bound. *)
        let half_quantum = Ratio.mul Ratio.half (Ratio.pow (Ratio.of_int 10) j) in
        let ulp = Ratio.pow (Ratio.of_int 2) v.Value.e in
        let bound = Ratio.max half_quantum ulp in
        let dist = Ratio.abs (Ratio.sub exact denoted) in
        if Ratio.compare dist bound > 0 then
          Alcotest.failf "fixed output of %h (request %s) off by > half quantum"
            x
            (match req with
            | Dragon.Fixed_format.Relative i -> Printf.sprintf "Relative %d" i
            | Dragon.Fixed_format.Absolute j -> Printf.sprintf "Absolute %d" j))
    | _ -> () (* inf/nan payloads: skip, not counted *)
  done

(* The in-place digit-loop kernels (word-sized fast path + Scratch
   workspace) must be byte-identical to the pure-Nat reference: print
   every corpus/nasty line and a random batch through both, for free
   format and fixed format, and compare the strings. *)
let with_pure f =
  Dragon.Generate.set_force_pure true;
  Fun.protect ~finally:(fun () -> Dragon.Generate.set_force_pure false) f

let print_opt fmt input =
  match R.read fmt input with
  | Error _ -> None
  | Ok v -> (
    match Dragon.Printer.print_value fmt v with
    | Ok s -> Some s
    | Error e ->
      Alcotest.failf "print_value failed on %S: %s" (short input)
        (Robust.Error.to_string e))

let without_fastpath f =
  let was = Dragon.Printer.fastpath_enabled () in
  Dragon.Printer.set_fastpath_enabled false;
  Fun.protect ~finally:(fun () -> Dragon.Printer.set_fastpath_enabled was) f

(* Three-way agreement: the default dispatch (table-driven fast path
   with exact fallback), the exact kernels alone (fast path off, so the
   scratch/word paths keep their own differential coverage), and the
   pure-Nat reference. *)
let check_paths_agree fmt input =
  let fast = print_opt fmt input in
  let kernel = without_fastpath (fun () -> print_opt fmt input) in
  let pure = with_pure (fun () -> print_opt fmt input) in
  let str o = Option.value o ~default:"<unread>" in
  if kernel <> pure then
    Alcotest.failf "scratch/pure mismatch on %S: %s vs %s" (short input)
      (str kernel) (str pure);
  if fast <> pure then
    Alcotest.failf "fastpath/pure mismatch on %S: %s vs %s" (short input)
      (str fast) (str pure)

let test_scratch_pure_differential () =
  Alcotest.(check bool) "force_pure off" false (Dragon.Generate.force_pure ());
  let corpus_lines =
    if Sys.file_exists "corpus" && Sys.is_directory "corpus" then
      Sys.readdir "corpus" |> Array.to_list |> List.sort String.compare
      |> List.concat_map (fun f ->
             let ic = open_in (Filename.concat "corpus" f) in
             let lines = ref [] in
             (try
                while true do
                  lines := input_line ic :: !lines
                done
              with End_of_file -> ());
             close_in ic;
             List.rev !lines)
    else []
  in
  List.iter
    (fun input ->
      check_paths_agree b64 input;
      check_paths_agree b16 input)
    (Gen.nasty @ corpus_lines);
  let st = Random.State.make [| seed; 4 |] in
  for _ = 1 to max 500 (iters / 4) do
    check_paths_agree b64 (Gen.any st)
  done;
  (* fixed format through both paths on random finite doubles *)
  let st = Random.State.make [| seed; 5 |] in
  let done_ = ref 0 in
  while !done_ < 500 do
    let payload =
      Int64.logand (Random.State.int64 st Int64.max_int)
        0x7FFF_FFFF_FFFF_FFFFL
    in
    match Fp.Ieee.decompose (Int64.float_of_bits payload) with
    | Value.Finite v ->
      incr done_;
      let req =
        if Random.State.bool st then
          Dragon.Fixed_format.Relative (1 + Random.State.int st 17)
        else Dragon.Fixed_format.Absolute (Random.State.int st 40 - 20)
      in
      let kernel = Dragon.Fixed_format.convert b64 v req in
      let pure =
        with_pure (fun () -> Dragon.Fixed_format.convert b64 v req)
      in
      let same =
        match (kernel, pure) with
        | Ok a, Ok b -> Dragon.Fixed_format.equal a b
        | Error _, Error _ -> true
        | _ -> false
      in
      if not same then
        Alcotest.failf "fixed-format scratch/pure mismatch on %h"
          (Int64.float_of_bits payload)
    | _ -> ()
  done

(* The fast path only dispatches on free-format conversions, so fixed
   format and the %e/%f/%g renderings must be bit-for-bit invariant
   under the dispatch gate — printed with the fast path enabled and
   disabled, every format agrees (and free format additionally agrees
   with the pure reference via check_paths_agree above). *)
let test_fastpath_format_invariance () =
  let st = Random.State.make [| seed; 9 |] in
  let done_ = ref 0 in
  while !done_ < 400 do
    let payload =
      Int64.logand (Random.State.int64 st Int64.max_int) 0x7FFF_FFFF_FFFF_FFFFL
    in
    let x = Int64.float_of_bits payload in
    match Fp.Ieee.decompose x with
    | Value.Finite v ->
      incr done_;
      let precision = Random.State.int st 18 in
      let check what f =
        let fast = f () in
        let slow = without_fastpath f in
        if fast <> slow then
          Alcotest.failf "%s differs under fastpath gate on %h: %S vs %S" what
            x fast slow
      in
      check "%e" (fun () -> Dragon.Cformat.e ~precision x);
      check "%f" (fun () -> Dragon.Cformat.f ~precision x);
      check "%g" (fun () -> Dragon.Cformat.g ~precision x);
      let req = Dragon.Fixed_format.Relative (1 + Random.State.int st 17) in
      let fixed () =
        match Dragon.Fixed_format.convert b64 v req with
        | Ok r -> Dragon.Render.fixed ~neg:v.Fp.Value.neg ~base:10 r
        | Error e -> "error: " ^ Robust.Error.to_string e
      in
      let fast = fixed () and slow = without_fastpath fixed in
      if fast <> slow then
        Alcotest.failf "fixed format differs under fastpath gate on %h" x
    | _ -> ()
  done

(* The kernel/pure differential must hold under injected faults too.
   Both digit-loop substrates share their fault points — [run_scratch]
   and [run_fast] trip "nat.divmod" exactly where the pure path's
   [Nat.divmod] does, and the scaling stage is common — so with a
   point armed deterministically (probability 1) the two paths must
   produce the same outcome *including the structured error*.  With a
   transient probability the per-call draws are independent, so the
   obligations weaken to totality plus byte-equality whenever both
   paths happen to succeed. *)
let conv fmt input =
  match no_raise "read under faults" input (fun () -> R.read fmt input) with
  | Error e -> Error (Robust.Error.to_string e)
  | Ok v -> (
    match
      no_raise "print under faults" input (fun () ->
          Dragon.Printer.print_value fmt v)
    with
    | Ok s -> Ok s
    | Error e -> Error (Robust.Error.to_string e))

let check_faulty ~deterministic fmt input =
  let kernel = conv fmt input in
  let pure = with_pure (fun () -> conv fmt input) in
  match (kernel, pure) with
  | Ok a, Ok b when a <> b ->
    Alcotest.failf "faulty kernel/pure output mismatch on %S: %S vs %S"
      (short input) a b
  | _ when deterministic && kernel <> pure ->
    let show = function Ok s -> "Ok " ^ s | Error e -> "Error " ^ e in
    Alcotest.failf
      "deterministic fault: kernel/pure outcomes differ on %S: %s vs %s"
      (short input) (show kernel) (show pure)
  | _ -> ()

let test_faulty_differential () =
  List.iter
    (fun point ->
      let before = Robust.Faults.trip_count point in
      Robust.Faults.with_fault point (fun () ->
          List.iter
            (fun input ->
              check_faulty ~deterministic:true b64 input;
              check_faulty ~deterministic:true b16 input)
            Gen.nasty;
          let st = Random.State.make [| seed; 6 |] in
          for _ = 1 to 200 do
            check_faulty ~deterministic:true b64 (Gen.any st)
          done);
      Alcotest.(check bool)
        (point ^ " actually tripped")
        true
        (Robust.Faults.trip_count point > before))
    Robust.Faults.pipeline_points;
  (* transient arming: independent draws across the two runs *)
  List.iter
    (fun point ->
      Robust.Faults.with_fault ~probability:0.3 point (fun () ->
          let st = Random.State.make [| seed; 7 |] in
          for _ = 1 to 300 do
            check_faulty ~deterministic:false b64 (Gen.any st)
          done))
    Robust.Faults.pipeline_points;
  Alcotest.(check string) "recovered" "0.1" (Dragon.Printer.shortest 0.1)

(* With each fault point armed the pipeline must degrade to structured
   errors, never exceptions, and disarming must fully restore it. *)
let test_fault_totality () =
  List.iter
    (fun point ->
      Robust.Faults.with_fault point (fun () ->
          let st = Random.State.make [| seed; 3 |] in
          for _ = 1 to 200 do
            let input = Gen.any st in
            match no_raise "read under fault" input (fun () -> R.read b64 input) with
            | Error _ -> ()
            | Ok v ->
              ignore
                (no_raise "print under fault" input (fun () ->
                     Dragon.Printer.print_value b64 v))
          done);
      Alcotest.(check bool)
        (point ^ " disarmed after with_fault")
        false (Robust.Faults.armed point))
    Robust.Faults.pipeline_points;
  (* and the pipeline is healthy again *)
  Alcotest.(check string) "recovered" "0.1" (Dragon.Printer.shortest 0.1)

(* With BDPRINT_FAULTS in the environment the armed points fire
   ambiently at their configured probabilities (dune's @fuzz-faults
   alias sets a 5% transient rate on every point).  The unfaulted
   suites would report those trips as failures, so this mode runs only
   the weakened differential — totality plus agreement whenever both
   paths succeed — and asserts the injection actually fired. *)
let test_ambient_fault_differential () =
  List.iter
    (fun input ->
      check_faulty ~deterministic:false b64 input;
      check_faulty ~deterministic:false b16 input)
    Gen.nasty;
  let st = Random.State.make [| seed; 8 |] in
  for _ = 1 to iters do
    check_faulty ~deterministic:false b64 (Gen.any st)
  done;
  Alcotest.(check bool)
    "ambient faults fired" true
    (Robust.Faults.total_trips () > 0)

let () =
  if Sys.getenv_opt "BDPRINT_FAULTS" <> None then
    Alcotest.run "fuzz-faults"
      [
        ( "ambient",
          [
            Alcotest.test_case "kernel/pure agree under ambient faults" `Quick
              test_ambient_fault_differential;
          ] );
      ]
  else
    Alcotest.run "fuzz"
      [
        ( "differential",
          [
            Alcotest.test_case "random totality and round-trip" `Slow
              test_random_totality;
            Alcotest.test_case "plain inputs vs fast reader and host strtod"
              `Slow test_plain_differential;
            Alcotest.test_case "nasty list and corpus files" `Quick test_corpus;
            Alcotest.test_case "fixed format within half quantum" `Slow
              test_fixed_half_quantum;
            Alcotest.test_case "scratch path byte-identical to pure path" `Slow
              test_scratch_pure_differential;
            Alcotest.test_case "formats invariant under fastpath gate" `Quick
              test_fastpath_format_invariance;
            Alcotest.test_case "totality under injected faults" `Quick
              test_fault_totality;
            Alcotest.test_case "kernel/pure agree under injected faults" `Quick
              test_faulty_differential;
          ] );
      ]
