(* Exhaustive verification over ALL positive finite binary16 values
   (31,743 of them): the paper's three output conditions in every reader
   rounding mode, reader round-trips, digit-length bounds, and spot-width
   fixed-format agreement with the rational reference.

   Half precision is small enough to close the loop completely - no
   sampling, every value. *)

module Nat = Bignum.Nat
open Fp
open Dragon

let b16 = Format_spec.binary16

let all_positive_finite_b16 () =
  let acc = ref [] in
  for bits = 0x7BFF downto 1 do
    match Ieee.decompose_bits Ieee.spec_binary16 (Int64.of_int bits) with
    | Value.Finite v -> acc := v :: !acc
    | _ -> ()
  done;
  !acc

let test_free_all_modes () =
  let values = all_positive_finite_b16 () in
  Alcotest.(check int) "population" 31743 (List.length values);
  let failures = ref 0 in
  let max_digits = ref 0 in
  List.iter
    (fun v ->
      List.iter
        (fun mode ->
          let r = Free_format.convert ~mode b16 v in
          max_digits := max !max_digits (Array.length r.Free_format.digits);
          (match Reference.check_output ~mode b16 v r with
          | Ok () -> ()
          | Error e ->
            incr failures;
            if !failures < 5 then
              Printf.printf "FAIL %s %s: %s\n"
                (Value.to_string (Value.Finite v))
                (Rounding.to_string mode) e);
          let back =
            Reader.read_ratio ~mode b16 (Free_format.to_ratio ~base:10 r)
          in
          if not (Value.equal back (Value.Finite v)) then incr failures)
        Rounding.all)
    values;
  Alcotest.(check int) "no failures over 190,458 conversions" 0 !failures;
  (* binary16 never needs more than 5 significant decimal digits *)
  Alcotest.(check int) "max shortest length" 5 !max_digits

let test_free_strategies_agree () =
  let values = all_positive_finite_b16 () in
  let disagreements = ref 0 in
  List.iter
    (fun v ->
      let reference = Free_format.convert b16 v in
      List.iter
        (fun strategy ->
          if
            not
              (Free_format.equal reference
                 (Free_format.convert ~strategy b16 v))
          then incr disagreements)
        Scaling.all)
    values;
  Alcotest.(check int) "strategies identical everywhere" 0 !disagreements

let test_fixed_sampled () =
  (* fixed format against the rational reference on a stride (the full
     cross product with the rational path would be slow) *)
  let values = all_positive_finite_b16 () in
  let failures = ref 0 in
  List.iteri
    (fun i v ->
      if i mod 17 = 0 then
        List.iter
          (fun req ->
            if
              not
                (Fixed_format.equal
                   (Fixed_format.convert_exn b16 v req)
                   (Reference.fixed b16 v req))
            then incr failures)
          [ Fixed_format.Relative 3; Fixed_format.Relative 8;
            Fixed_format.Absolute 0; Fixed_format.Absolute (-6) ])
    values;
  Alcotest.(check int) "fixed = reference on stride" 0 !failures

let test_reader_exhaustive_shortest () =
  (* every binary16 shortest string, parsed back through the text path *)
  let values = all_positive_finite_b16 () in
  let failures = ref 0 in
  List.iter
    (fun v ->
      let s = Render.free ~base:10 (Free_format.convert b16 v) in
      match Reader.read b16 s with
      | Ok back when Value.equal back (Value.Finite v) -> ()
      | _ -> incr failures)
    values;
  Alcotest.(check int) "all shortest strings read back" 0 !failures

(* The same closure for bfloat16: different shape entirely (binary32's
   exponent range, only 8 bits of precision). *)
let test_bfloat16_sweep () =
  let fmt = Format_spec.bfloat16 in
  let values = ref [] in
  for bits = 0x7F7F downto 1 do
    match Ieee.decompose_bits Ieee.spec_bfloat16 (Int64.of_int bits) with
    | Value.Finite v -> values := v :: !values
    | _ -> ()
  done;
  Alcotest.(check int) "population" 32639 (List.length !values);
  let failures = ref 0 in
  let max_digits = ref 0 in
  List.iter
    (fun v ->
      let r = Free_format.convert fmt v in
      max_digits := max !max_digits (Array.length r.Free_format.digits);
      (match Reference.check_output fmt v r with
      | Ok () -> ()
      | Error _ -> incr failures);
      if
        not
          (Value.equal
             (Reader.read_ratio fmt (Free_format.to_ratio ~base:10 r))
             (Value.Finite v))
      then incr failures)
    !values;
  Alcotest.(check int) "no failures" 0 !failures;
  (* 8 bits of precision need at most 4 decimal digits *)
  Alcotest.(check int) "max shortest length" 4 !max_digits

let () =
  Alcotest.run "exhaustive-binary16"
    [
      ( "binary16",
        [
          Alcotest.test_case "free format, all values x all modes" `Slow
            test_free_all_modes;
          Alcotest.test_case "all scaling strategies, all values" `Slow
            test_free_strategies_agree;
          Alcotest.test_case "fixed format vs reference, stride" `Slow
            test_fixed_sampled;
          Alcotest.test_case "shortest strings read back, all values" `Slow
            test_reader_exhaustive_shortest;
          Alcotest.test_case "bfloat16 full sweep" `Slow test_bfloat16_sweep;
        ] );
    ]
