(* Tests for the accurate reader: parsing, correct rounding in every mode,
   overflow/underflow semantics, and agreement with the host strtod. *)

module Nat = Bignum.Nat
module Ratio = Bignum.Ratio
module R = Reader
open Fp

let value = Alcotest.testable Value.pp Value.equal

let ok_read ?mode fmt s =
  match R.read ?mode fmt s with
  | Ok v -> v
  | Error e -> Alcotest.failf "read %S failed: %s" s (Robust.Error.to_string e)

let ok_read_float ?mode s =
  match R.read_float ?mode s with
  | Ok v -> v
  | Error e -> Alcotest.failf "read_float %S failed: %s" s (Robust.Error.to_string e)

let qtest ?(count = 300) name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

(* ------------------------------------------------------------------ *)
(* Parsing *)

let test_parse_forms () =
  let num s =
    match R.parse s with
    | Ok (R.Number d) -> d
    | Ok _ -> Alcotest.failf "parse %S: not a number" s
    | Error e -> Alcotest.failf "parse %S: %s" s (Robust.Error.to_string e)
  in
  let check s digits exp10 neg =
    let d = num s in
    Alcotest.(check string) (s ^ " digits") digits (Nat.to_string d.digits);
    Alcotest.(check int) (s ^ " exp10") exp10 d.R.exp10;
    Alcotest.(check bool) (s ^ " neg") neg d.R.neg
  in
  check "123" "123" 0 false;
  check "-123" "123" 0 true;
  check "+123" "123" 0 false;
  check "1.5" "15" (-1) false;
  check "0.001" "1" (-3) false;
  check ".5" "5" (-1) false;
  check "5." "5" 0 false;
  check "1e10" "1" 10 false;
  check "1E10" "1" 10 false;
  check "2.5e-3" "25" (-4) false;
  check "1_000.5" "10005" (-1) false;
  check "0" "0" 0 false;
  check "00012" "12" 0 false

let test_parse_specials () =
  Alcotest.(check bool) "inf" true (R.parse "inf" = Ok (R.Infinity false));
  Alcotest.(check bool) "-INF" true (R.parse "-INF" = Ok (R.Infinity true));
  Alcotest.(check bool) "Infinity" true
    (R.parse "Infinity" = Ok (R.Infinity false));
  Alcotest.(check bool) "nan" true (R.parse "NaN" = Ok R.Not_a_number)

let test_parse_errors () =
  let fails s =
    match R.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "parse %S unexpectedly succeeded" s
  in
  List.iter fails [ ""; "-"; "."; "e5"; "1e"; "1e+"; "1.5x"; "--1"; "1..2" ]

(* ------------------------------------------------------------------ *)
(* Correct rounding, nearest-even, vs the host libc *)

let test_known_doubles () =
  let check s =
    Alcotest.(check (float 0.)) s (float_of_string s) (ok_read_float s)
  in
  List.iter check
    [
      "0.1"; "0.2"; "0.3"; "1.5"; "3.141592653589793"; "2.718281828459045";
      "1e308"; "1e-308"; "1e-320"; "4.9e-324"; "1.7976931348623157e308";
      "123456789012345678901234567890"; "0.000001"; "9007199254740993";
      "5e-324"; "2.2250738585072011e-308" (* the famous slow strtod case *);
      "2.2250738585072014e-308"; "1e23"; "8.98846567431158e307";
    ]

let test_unbiased_tie_1e23 () =
  (* 10^23 lies exactly between two doubles; ties-to-even picks the one
     with even mantissa (the paper's example motivating input-rounding
     awareness). *)
  let v = ok_read Format_spec.binary64 "1e23" in
  (match v with
  | Value.Finite f ->
    Alcotest.(check bool) "mantissa even" true (Nat.is_even f.f)
  | _ -> Alcotest.fail "1e23 not finite");
  Alcotest.(check (float 0.)) "agrees with libc" 1e23 (ok_read_float "1e23");
  (* ties-away goes to the other neighbour *)
  let away = ok_read_float ~mode:Rounding.To_nearest_away "1e23" in
  Alcotest.(check bool) "away picks the other neighbour" true (away <> 1e23)

let test_tie_modes_at_midpoint () =
  (* Exact midpoint between 1.0 and its successor. *)
  let midpoint = "1.00000000000000011102230246251565404236316680908203125" in
  Alcotest.(check (float 0.)) "even tie -> 1.0" 1.0 (ok_read_float midpoint);
  Alcotest.(check (float 0.)) "away tie -> succ 1.0"
    (Ieee.succ_float 1.0)
    (ok_read_float ~mode:Rounding.To_nearest_away midpoint);
  Alcotest.(check (float 0.)) "toward-zero tie -> 1.0" 1.0
    (ok_read_float ~mode:Rounding.To_nearest_toward_zero midpoint);
  Alcotest.(check (float 0.)) "negative midpoint, away"
    (-.Ieee.succ_float 1.0)
    (ok_read_float ~mode:Rounding.To_nearest_away ("-" ^ midpoint))

let test_directed_modes () =
  (* 0.1 is strictly between two doubles. *)
  let below = ok_read_float ~mode:Rounding.Toward_negative "0.1" in
  let above = ok_read_float ~mode:Rounding.Toward_positive "0.1" in
  let near = ok_read_float "0.1" in
  Alcotest.(check (float 0.)) "adjacent" above (Ieee.succ_float below);
  Alcotest.(check bool) "nearest among them" true (near = below || near = above);
  Alcotest.(check (float 0.)) "toward zero = toward neg for positives" below
    (ok_read_float ~mode:Rounding.Toward_zero "0.1");
  (* signs flip the direction *)
  Alcotest.(check (float 0.)) "-0.1 toward positive" (-.below)
    (ok_read_float ~mode:Rounding.Toward_positive "-0.1");
  (* exact values are unchanged in every mode *)
  List.iter
    (fun mode ->
      Alcotest.(check (float 0.))
        ("exact 0.5 " ^ Rounding.to_string mode)
        0.5
        (ok_read_float ~mode "0.5"))
    Rounding.all

let test_overflow () =
  Alcotest.(check value) "1e400 nearest" (Value.Inf false)
    (ok_read Format_spec.binary64 "1e400");
  Alcotest.(check value) "-1e400 nearest" (Value.Inf true)
    (ok_read Format_spec.binary64 "-1e400");
  Alcotest.(check (float 0.)) "1e400 toward zero saturates" Float.max_float
    (ok_read_float ~mode:Rounding.Toward_zero "1e400");
  Alcotest.(check (float 0.)) "1e400 toward negative saturates" Float.max_float
    (ok_read_float ~mode:Rounding.Toward_negative "1e400");
  Alcotest.(check (float 0.)) "-1e400 toward positive saturates"
    (-.Float.max_float)
    (ok_read_float ~mode:Rounding.Toward_positive "-1e400");
  Alcotest.(check (float 0.)) "1e400 toward positive overflows" Float.infinity
    (ok_read_float ~mode:Rounding.Toward_positive "1e400")

let test_underflow () =
  Alcotest.(check value) "1e-1000 nearest" (Value.Zero false)
    (ok_read Format_spec.binary64 "1e-1000");
  Alcotest.(check value) "-1e-1000 nearest" (Value.Zero true)
    (ok_read Format_spec.binary64 "-1e-1000");
  Alcotest.(check (float 0.)) "1e-1000 toward positive is min denormal"
    (Int64.float_of_bits 1L)
    (ok_read_float ~mode:Rounding.Toward_positive "1e-1000");
  Alcotest.(check (float 0.)) "1e-1000 toward zero is zero" 0.
    (ok_read_float ~mode:Rounding.Toward_zero "1e-1000");
  (* denormal reading *)
  Alcotest.(check value) "3e-324 is 2^-1074 territory"
    (Value.finite ~f:Nat.one ~e:(-1074) ())
    (ok_read Format_spec.binary64 "3e-324")

let test_binary16 () =
  let fmt = Format_spec.binary16 in
  Alcotest.(check value) "65504 max half"
    (Value.finite ~f:(Nat.of_int 2047) ~e:5 ())
    (ok_read fmt "65504");
  Alcotest.(check value) "65520 ties to inf" (Value.Inf false)
    (ok_read fmt "65520");
  Alcotest.(check value) "65519.99 rounds back to max"
    (Value.finite ~f:(Nat.of_int 2047) ~e:5 ())
    (ok_read fmt "65519.99");
  Alcotest.(check value) "1e9 toward zero saturates"
    (Value.finite ~f:(Nat.of_int 2047) ~e:5 ())
    (ok_read ~mode:Rounding.Toward_zero fmt "1e9");
  Alcotest.(check value) "0.1 in half precision"
    (Value.finite ~f:(Nat.of_int 1638) ~e:(-14) ())
    (ok_read fmt "0.1")

let test_read_ratio () =
  let fmt = Format_spec.binary64 in
  Alcotest.(check value) "1/3 reads like 0.333... string"
    (ok_read fmt "0.333333333333333333333333333333333333")
    (R.read_ratio fmt (Ratio.of_ints 1 3));
  Alcotest.(check value) "zero" (Value.Zero false) (R.read_ratio fmt Ratio.zero);
  Alcotest.(check value) "exact halves are exact"
    (Value.finite ~f:(Nat.pow_int 2 52) ~e:(-53) ())
    (R.read_ratio fmt Ratio.half)

let test_read_in_base () =
  let fmt = Format_spec.binary64 in
  let ok s base =
    match R.read_in_base ~base fmt s with
    | Ok v -> v
    | Error e -> Alcotest.failf "read_in_base %S: %s" s (Robust.Error.to_string e)
  in
  Alcotest.(check bool) "hex 0.1999...a is 0.1" true
    (Value.equal (ok "0.1999999999999a" 16) (ok "0.1" 10 |> fun v -> v));
  Alcotest.(check bool) "hex ff.f" true
    (Value.equal (ok "ff.f" 16) (ok "255.9375" 10));
  Alcotest.(check bool) "binary fraction" true
    (Value.equal (ok "0.101" 2) (ok "0.625" 10));
  Alcotest.(check bool) "caret exponent base 36" true
    (Value.equal (ok "z^2" 36) (ok "45360" 10));
  Alcotest.(check bool) "e is a digit in base 16" true
    (Value.equal (ok "e" 16) (ok "14" 10));
  Alcotest.(check bool) "e is an exponent in base 10" true
    (Value.equal (ok "1e2" 10) (ok "100" 10));
  Alcotest.(check bool) "hash reads as zero" true
    (Value.equal (ok "1.2##" 10) (ok "1.200" 10));
  Alcotest.(check bool) "negative" true
    (Value.equal (ok "-0.8" 16) (ok "-0.5" 10));
  List.iter
    (fun (s, base) ->
      match R.read_in_base ~base fmt s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "read_in_base %S base %d should fail" s base)
    [ ("", 10); ("z", 16); ("1..2", 10); ("1^", 36); ("^2", 36); ("1e5x", 10) ]

let test_hex_reader () =
  let ok ?mode s =
    match R.Hex.read_float ?mode s with
    | Ok x -> x
    | Error e -> Alcotest.failf "hex read %S: %s" s (Robust.Error.to_string e)
  in
  Alcotest.(check (float 0.)) "0x1p+0" 1.0 (ok "0x1p+0");
  Alcotest.(check (float 0.)) "0x1.8p+1" 3.0 (ok "0x1.8p+1");
  Alcotest.(check (float 0.)) "0.1 hex" 0.1 (ok "0x1.999999999999ap-4");
  Alcotest.(check (float 0.)) "denormal" 5e-324 (ok "0x0.0000000000001p-1022");
  Alcotest.(check (float 0.)) "negative" (-2.5) (ok "-0x1.4p+1");
  Alcotest.(check (float 0.)) "no exponent" 255.0 (ok "0xff");
  Alcotest.(check (float 0.)) "uppercase" 3.0 (ok "0X1.8P+1");
  (* correct rounding into a narrower format *)
  (match R.Hex.read Format_spec.binary16 "0x1.999999999999ap-4" with
  | Ok v ->
    Alcotest.(check value) "0.1 into binary16"
      (Value.finite ~f:(Nat.of_int 1638) ~e:(-14) ())
      v
  | Error e -> Alcotest.fail (Robust.Error.to_string e));
  List.iter
    (fun s ->
      match R.Hex.read_float s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "hex %S should fail" s)
    [ ""; "0x"; "1.8p1"; "0x1.8q1"; "0x1p"; "0x1p+"; "0x1.8p1x" ]

(* ------------------------------------------------------------------ *)
(* Properties *)

let arb_decimal_string =
  QCheck.make
    ~print:(fun s -> s)
    QCheck.Gen.(
      let digits =
        string_size ~gen:(char_range '0' '9') (int_range 1 25)
      in
      map3
        (fun neg ds e ->
          Printf.sprintf "%s%se%d" (if neg then "-" else "") ds e)
        bool digits (int_range (-320) 320))

let arb_pos_double =
  QCheck.make ~print:string_of_float
    QCheck.Gen.(
      map
        (fun bits ->
          let x = Float.abs (Int64.float_of_bits bits) in
          if Float.is_nan x || x = Float.infinity then 1.5 else x)
        ui64)

let props =
  [
    qtest ~count:500 "agrees with libc strtod" arb_decimal_string (fun s ->
        let ours = ok_read_float s in
        let libc = float_of_string s in
        (Float.is_nan ours && Float.is_nan libc)
        || Int64.equal (Int64.bits_of_float ours) (Int64.bits_of_float libc));
    qtest "%.17g round-trips through the reader" arb_pos_double (fun x ->
        let s = Printf.sprintf "%.17g" x in
        Int64.equal
          (Int64.bits_of_float (ok_read_float s))
          (Int64.bits_of_float x));
    qtest "directed modes bracket nearest" arb_decimal_string (fun s ->
        let down = ok_read_float ~mode:Rounding.Toward_negative s in
        let up = ok_read_float ~mode:Rounding.Toward_positive s in
        let near = ok_read_float s in
        down <= near && near <= up
        && (down = up || up = Ieee.succ_float down));
    qtest "toward_zero shrinks magnitude" arb_decimal_string (fun s ->
        let tz = ok_read_float ~mode:Rounding.Toward_zero s in
        let near = ok_read_float s in
        Float.abs tz <= Float.abs near);
    qtest "exact decimals read exactly in every mode"
      QCheck.(pair arb_pos_double (QCheck.oneofl Rounding.all))
      (fun (x, mode) ->
        (* print the double's exact decimal expansion, then read it back *)
        match Ieee.decompose x with
        | Value.Zero _ -> true
        | Value.Finite v ->
          let digits, k =
            Oracle.Exact_decimal.exact_digits ~base:10 Format_spec.binary64 v
          in
          let s =
            Printf.sprintf "0.%se%d"
              (String.concat ""
                 (Array.to_list (Array.map string_of_int digits)))
              k
          in
          Float.equal (ok_read_float ~mode s) x
        | _ -> true);
    qtest ~count:500 "print_hex matches %h and reads back" arb_pos_double
      (fun x ->
        let ours = Dragon.Printer.print_hex x in
        let libc = Printf.sprintf "%h" x in
        String.equal ours libc
        &&
        match R.Hex.read_float ours with
        | Ok y -> Int64.equal (Int64.bits_of_float y) (Int64.bits_of_float x)
        | Error _ -> false);
    qtest ~count:300 "hex reading = host hex float_of_string" arb_pos_double
      (fun x ->
        let s = Printf.sprintf "%h" x in
        match R.Hex.read_float s with
        | Ok y -> Float.equal y (float_of_string s)
        | Error _ -> false);
    qtest ~count:1000 "fast reader = exact reader" arb_decimal_string (fun s ->
        let fast =
          match R.Fast.read s with Ok x -> x | Error e -> Alcotest.fail (Robust.Error.to_string e)
        in
        let exact = ok_read_float s in
        Int64.equal (Int64.bits_of_float fast) (Int64.bits_of_float exact));
    qtest ~count:300 "fast reader = exact on shortest outputs" arb_pos_double
      (fun x ->
        (* shortest strings are the adversarial case: by construction they
           sit as close to the rounding boundary as any string that still
           converts to x *)
        let s = Dragon.Printer.print x in
        match R.Fast.read s with
        | Ok y -> Int64.equal (Int64.bits_of_float y) (Int64.bits_of_float x)
        | Error e -> Alcotest.fail (Robust.Error.to_string e));
    qtest ~count:300 "printed base-b output reads back textually"
      QCheck.(pair arb_pos_double (QCheck.int_range 2 36))
      (fun (x, base) ->
        let v =
          match Ieee.decompose x with
          | Value.Finite v -> v
          | _ -> QCheck.assume_fail ()
        in
        List.for_all
          (fun notation ->
            let s =
              Dragon.Render.free ~notation ~base
                (Dragon.Free_format.convert ~base Format_spec.binary64 v)
            in
            match R.read_in_base ~base Format_spec.binary64 s with
            | Ok back -> Value.equal back (Value.Finite v)
            | Error _ -> false)
          [ Dragon.Render.Auto; Dragon.Render.Scientific ]);
  ]

(* ------------------------------------------------------------------ *)
(* Robustness: extreme exponents, structured errors, resource budgets,
   fault injection *)

let test_extreme_exponents () =
  let b64 = Format_spec.binary64 in
  (* astronomically scaled inputs must fast-reject to the correctly
     rounded extreme without ever constructing 10^|exponent| *)
  Alcotest.(check value) "1e999999999" (Value.Inf false)
    (ok_read b64 "1e999999999");
  Alcotest.(check value) "-1e999999999" (Value.Inf true)
    (ok_read b64 "-1e999999999");
  Alcotest.(check value) "1e-999999999" (Value.Zero false)
    (ok_read b64 "1e-999999999");
  Alcotest.(check value) "-1e-999999999" (Value.Zero true)
    (ok_read b64 "-1e-999999999");
  (* directed modes keep the same saturation semantics as moderate
     overflow/underflow *)
  Alcotest.(check (float 0.)) "extreme overflow toward zero saturates"
    Float.max_float
    (ok_read_float ~mode:Rounding.Toward_zero "1e999999999");
  Alcotest.(check (float 0.)) "extreme overflow toward negative saturates"
    Float.max_float
    (ok_read_float ~mode:Rounding.Toward_negative "1e999999999");
  Alcotest.(check (float 0.)) "extreme underflow toward positive is min denormal"
    (Int64.float_of_bits 1L)
    (ok_read_float ~mode:Rounding.Toward_positive "1e-999999999");
  Alcotest.(check (float 0.)) "extreme negative underflow toward zero"
    0.
    (ok_read_float ~mode:Rounding.Toward_zero "-1e-999999999" |> Float.abs);
  (* exponent digit strings beyond int range must clamp, not wrap *)
  Alcotest.(check value) "1e[30 nines]" (Value.Inf false)
    (ok_read b64 ("1e" ^ String.make 30 '9'));
  Alcotest.(check value) "1e-[30 nines]" (Value.Zero false)
    (ok_read b64 ("1e-" ^ String.make 30 '9'));
  (* huge written-out magnitudes, no exponent marker at all *)
  Alcotest.(check value) "1 followed by 10k zeros" (Value.Inf false)
    (ok_read b64 ("1" ^ String.make 10_000 '0'));
  Alcotest.(check value) "0.[10k zeros]1" (Value.Zero false)
    (ok_read b64 ("0." ^ String.make 10_000 '0' ^ "1"));
  (* zero mantissas never overflow, whatever the exponent says *)
  Alcotest.(check value) "0e999999999" (Value.Zero false)
    (ok_read b64 "0e999999999");
  Alcotest.(check value) "-0e-999999999" (Value.Zero true)
    (ok_read b64 "-0e-999999999")

let test_structured_errors () =
  let b64 = Format_spec.binary64 in
  let syntax s =
    match R.read b64 s with
    | Error (Robust.Error.Syntax _) -> ()
    | Error e ->
      Alcotest.failf "%S: expected syntax error, got %s" s
        (Robust.Error.to_string e)
    | Ok v -> Alcotest.failf "%S unexpectedly read as %s" s (Value.to_string v)
  in
  List.iter syntax
    [
      ""; " "; "\t"; "\n"; " 1.5"; "1.5 "; "abc"; "1..2"; "--1"; "+-1"; "1e+";
      "1e"; "e5"; "0x"; "+"; "."; "#"; "\xff\xfe\x00"; "1,5"; "1.2.3";
    ];
  (* inputs longer than the cap are rejected up front as budget errors *)
  (match R.read b64 (String.make 100_000 '1') with
  | Error (Robust.Error.Budget { what = "input length"; _ }) -> ()
  | Error e ->
    Alcotest.failf "expected input-length budget error, got %s"
      (Robust.Error.to_string e)
  | Ok _ -> Alcotest.fail "100k-digit input unexpectedly accepted");
  (* a tighter ambient budget is honored *)
  Robust.Budget.with_budget
    { (Robust.Budget.get ()) with Robust.Budget.max_input_length = 8 }
    (fun () ->
      match R.read b64 "3.14159265358979" with
      | Error (Robust.Error.Budget _) -> ()
      | Error e -> Alcotest.fail (Robust.Error.to_string e)
      | Ok _ -> Alcotest.fail "budget override ignored")

let test_special_value_roundtrips () =
  let b64 = Format_spec.binary64 in
  Alcotest.(check value) "nan reads" Value.Nan (ok_read b64 "nan");
  Alcotest.(check value) "NAN reads" Value.Nan (ok_read b64 "NAN");
  Alcotest.(check string) "nan prints" "nan" (Dragon.Printer.shortest Float.nan);
  (match Dragon.Printer.print_value b64 Value.Nan with
  | Ok s -> Alcotest.(check string) "nan through result api" "nan" s
  | Error e -> Alcotest.fail (Robust.Error.to_string e));
  Alcotest.(check value) "nan round-trips" Value.Nan
    (ok_read b64 (Dragon.Printer.shortest Float.nan));
  Alcotest.(check value) "-0.0 keeps sign" (Value.Zero true)
    (ok_read b64 "-0.0");
  Alcotest.(check string) "-0 free format" "-0" (Dragon.Printer.shortest (-0.));
  Alcotest.(check string) "-0 fixed format keeps sign" "-0"
    (Dragon.Printer.print_fixed (Dragon.Fixed_format.Relative 3) (-0.));
  Alcotest.(check string) "-inf fixed format" "-inf"
    (Dragon.Printer.print_fixed (Dragon.Fixed_format.Absolute 0)
       Float.neg_infinity)

let test_subnormal_boundaries () =
  (* smallest denormal of each format, and the rounding cliff at half of
     it: below half -> zero, above half -> the denormal *)
  Alcotest.(check value) "binary64 min denormal"
    (Value.finite ~f:Nat.one ~e:(-1074) ())
    (ok_read Format_spec.binary64 "4.9e-324");
  Alcotest.(check value) "binary64 below half min denormal"
    (Value.Zero false)
    (ok_read Format_spec.binary64 "2.4e-324");
  Alcotest.(check value) "binary64 above half min denormal"
    (Value.finite ~f:Nat.one ~e:(-1074) ())
    (ok_read Format_spec.binary64 "2.5e-324");
  Alcotest.(check value) "binary32 min denormal"
    (Value.finite ~f:Nat.one ~e:(-149) ())
    (ok_read Format_spec.binary32 "1.401298464324817e-45");
  Alcotest.(check value) "binary32 below half min denormal"
    (Value.Zero false)
    (ok_read Format_spec.binary32 "7e-46");
  Alcotest.(check value) "binary16 min denormal"
    (Value.finite ~f:Nat.one ~e:(-24) ())
    (ok_read Format_spec.binary16 "5.9604644775390625e-8");
  Alcotest.(check value) "binary16 below half min denormal"
    (Value.Zero false)
    (ok_read Format_spec.binary16 "2.9e-8");
  (* each min denormal round-trips through its own format's printer *)
  List.iter
    (fun (fmt, e) ->
      let v = Value.finite ~f:Nat.one ~e () in
      match Dragon.Printer.print_value fmt v with
      | Error err -> Alcotest.fail (Robust.Error.to_string err)
      | Ok s ->
        Alcotest.(check value)
          (Printf.sprintf "min denormal of e=%d round-trips via %s" e s)
          v (ok_read fmt s))
    [
      (Format_spec.binary64, -1074);
      (Format_spec.binary32, -149);
      (Format_spec.binary16, -24);
    ]

let test_fault_injection () =
  let b64 = Format_spec.binary64 in
  (* a failure injected deep in the bignum kernel surfaces as a
     structured Internal error, never as an exception *)
  Robust.Faults.with_fault "nat.pow" (fun () ->
      match R.read b64 "1e300" with
      | Error (Robust.Error.Internal { where = "nat.pow"; _ }) -> ()
      | Error e ->
        Alcotest.failf "expected nat.pow fault, got %s"
          (Robust.Error.to_string e)
      | Ok _ -> Alcotest.fail "armed nat.pow fault did not fire");
  Robust.Faults.with_fault "nat.divmod" (fun () ->
      match R.read b64 "0.1" with
      | Error (Robust.Error.Internal { where = "nat.divmod"; _ }) -> ()
      | Error e ->
        Alcotest.failf "expected nat.divmod fault, got %s"
          (Robust.Error.to_string e)
      | Ok _ -> Alcotest.fail "armed nat.divmod fault did not fire");
  (* ... and in the printer's scaling layer *)
  Robust.Faults.with_fault "scaling.scale" (fun () ->
      match
        Dragon.Printer.print_value b64 (Fp.Ieee.decompose 0.1)
      with
      | Error (Robust.Error.Internal { where = "scaling.scale"; _ }) -> ()
      | Error e ->
        Alcotest.failf "expected scaling.scale fault, got %s"
          (Robust.Error.to_string e)
      | Ok _ -> Alcotest.fail "armed scaling.scale fault did not fire");
  (* disarmed, everything works again *)
  Alcotest.(check (float 0.)) "recovered" 0.1 (ok_read_float "0.1")

let () =
  Alcotest.run "reader"
    [
      ( "parse",
        [
          Alcotest.test_case "number forms" `Quick test_parse_forms;
          Alcotest.test_case "specials" `Quick test_parse_specials;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "rounding",
        [
          Alcotest.test_case "known doubles vs libc" `Quick test_known_doubles;
          Alcotest.test_case "1e23 unbiased tie" `Quick test_unbiased_tie_1e23;
          Alcotest.test_case "tie modes at midpoint" `Quick
            test_tie_modes_at_midpoint;
          Alcotest.test_case "directed modes" `Quick test_directed_modes;
          Alcotest.test_case "overflow" `Quick test_overflow;
          Alcotest.test_case "underflow" `Quick test_underflow;
          Alcotest.test_case "binary16" `Quick test_binary16;
          Alcotest.test_case "read_ratio" `Quick test_read_ratio;
          Alcotest.test_case "read_in_base" `Quick test_read_in_base;
          Alcotest.test_case "hex literals" `Quick test_hex_reader;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "extreme exponents fast-reject" `Quick
            test_extreme_exponents;
          Alcotest.test_case "structured errors and budgets" `Quick
            test_structured_errors;
          Alcotest.test_case "special-value round-trips" `Quick
            test_special_value_roundtrips;
          Alcotest.test_case "subnormal boundaries" `Quick
            test_subnormal_boundaries;
          Alcotest.test_case "fault injection" `Quick test_fault_injection;
        ] );
      ("props", props);
    ]
