(* The table-driven fast path (lib/fastpath): the committed power-of-ten
   table re-derived entry by entry from exact Nat arithmetic, the
   128-bit product primitive cross-checked against Ext64.umul128 and
   Nat, uncertain-verdict behavior on hostile estimates, and the
   binary32 sweep — stratified by default, every positive finite value
   under BDPRINT_EXHAUSTIVE32=1 — asserting byte equality between the
   fast path and the exact kernels (themselves differentially pinned to
   the pure reference by test_fuzz) while measuring the fallback rate
   the ISSUE caps at 5%. *)

module Nat = Bignum.Nat
module T = Fastpath.Pow10_table
open Fp

let b32 = Format_spec.binary32
let b64 = Format_spec.binary64

(* ---------- table verification ---------- *)

(* Independent re-derivation of gamma(q) = floor(log2 10^q) - 127. *)
let gamma_ref q =
  if q >= 0 then Nat.bit_length (Nat.pow_int 10 q) - 1 - 127
  else -Nat.bit_length (Nat.pow_int 10 (-q)) - 127

let entry_nat q =
  let n = ref Nat.zero in
  for i = T.limbs_per_entry - 1 downto 0 do
    n :=
      Nat.add (Nat.shift_left !n 28)
        (Nat.of_int T.limbs.((T.limbs_per_entry * (q - T.q_min)) + i))
  done;
  !n

let test_table_matches_nat () =
  Alcotest.(check int) "span" 701 (T.q_max - T.q_min + 1);
  Alcotest.(check int)
    "limb array size"
    (T.limbs_per_entry * (T.q_max - T.q_min + 1))
    (Array.length T.limbs);
  let two_127 = Nat.shift_left Nat.one 127 in
  let two_128 = Nat.shift_left Nat.one 128 in
  for q = T.q_min to T.q_max do
    let gamma = T.exps.(q - T.q_min) in
    Alcotest.(check int) (Printf.sprintf "gamma(%d)" q) (gamma_ref q) gamma;
    let c = entry_nat q in
    if Nat.compare c two_127 < 0 || Nat.compare c two_128 >= 0 then
      Alcotest.failf "c(%d) not normalized to 128 bits" q;
    (* The underestimate invariant the kernel's one-sided error analysis
       rests on: c·2^gamma <= 10^q < (c+1)·2^gamma, checked exactly. *)
    if q >= 0 then begin
      let n = Nat.pow_int 10 q in
      let lo, hi =
        if gamma >= 0 then (Nat.shift_left c gamma, Nat.shift_left (Nat.succ c) gamma)
        else (c, Nat.succ c)
      in
      let n = if gamma >= 0 then n else Nat.shift_left n (-gamma) in
      if not (Nat.compare lo n <= 0 && Nat.compare n hi < 0) then
        Alcotest.failf "c(%d) is not floor(10^%d * 2^-gamma)" q q
    end
    else begin
      let d = Nat.pow_int 10 (-q) in
      let num = Nat.shift_left Nat.one (-gamma) in
      if
        not
          (Nat.compare (Nat.mul c d) num <= 0
          && Nat.compare num (Nat.mul (Nat.succ c) d) < 0)
      then Alcotest.failf "c(%d) is not floor(2^-gamma / 10^%d)" q (-q)
    end
  done

(* ---------- 128-bit product primitive ---------- *)

let nat_of_u64 = Nat.of_int64_unsigned

let test_umul128_vs_nat () =
  let st = Random.State.make [| 0x6bd; 128 |] in
  let check a b =
    let hi, lo = Ext64.umul128 a b in
    let p = Nat.mul (nat_of_u64 a) (nat_of_u64 b) in
    let hi_ref = Nat.shift_right p 64 in
    let lo_ref = Nat.sub p (Nat.shift_left hi_ref 64) in
    let eq got want =
      match Nat.to_int64_unsigned_opt want with
      | Some w -> Int64.equal got w
      | None -> false
    in
    if not (eq hi hi_ref && eq lo lo_ref) then
      Alcotest.failf "umul128 %Lx * %Lx disagrees with Nat" a b
  in
  check 0L 0L;
  check (-1L) (-1L);
  check Int64.min_int (-1L);
  check 0xFFFFFFFFL 0x100000001L;
  for _ = 1 to 2000 do
    check (Random.State.int64 st Int64.max_int |> Int64.mul 3L)
      (Random.State.int64 st Int64.max_int |> Int64.mul 5L)
  done

(* And the same product the kernel computes limbwise: f·c(q) recomputed
   via two umul128 calls (64x128) against the exact Nat product, for
   random mantissas against random table entries — cross-validating the
   shared primitive and the table in one pass. *)
let test_table_products () =
  let st = Random.State.make [| 0x6bd; 129 |] in
  for _ = 1 to 500 do
    let q = T.q_min + Random.State.int st (T.q_max - T.q_min + 1) in
    let f = 1 + Random.State.full_int st ((1 lsl 53) - 1) in
    let c = entry_nat q in
    let c_lo =
      Nat.to_int64_unsigned_opt
        (Nat.sub c (Nat.shift_left (Nat.shift_right c 64) 64))
      |> Option.get
    and c_hi = Nat.to_int64_unsigned_opt (Nat.shift_right c 64) |> Option.get in
    let f64 = Int64.of_int f in
    let h1, l1 = Ext64.umul128 f64 c_lo in
    let h2, l2 = Ext64.umul128 f64 c_hi in
    let combine =
      Nat.add
        (Nat.add (nat_of_u64 l1) (Nat.shift_left (nat_of_u64 h1) 64))
        (Nat.shift_left
           (Nat.add (nat_of_u64 l2) (Nat.shift_left (nat_of_u64 h2) 64))
           64)
    in
    if not (Nat.equal combine (Nat.mul (Nat.of_int f) c)) then
      Alcotest.failf "64x128 product mismatch at q=%d f=%d" q f
  done

(* ---------- uncertain verdicts on hostile inputs ---------- *)

let test_uncertain_verdicts () =
  (* estimate far outside the table *)
  Alcotest.(check bool)
    "est out of table" true
    (Fastpath.convert_shortest ~f:5 ~e:0 ~mantissa_bits:3 ~narrow:false
       ~high_ok:true ~est:400
    = None);
  (* estimate inconsistent with the value: the frame check must refuse
     rather than emit digits *)
  Alcotest.(check bool)
    "est off by a mile" true
    (Fastpath.convert_shortest ~f:5 ~e:0 ~mantissa_bits:3 ~narrow:false
       ~high_ok:true ~est:25
    = None);
  (* a mantissa lying about its bit length must be refused, not trusted *)
  Alcotest.(check bool)
    "bad bit length" true
    (Fastpath.convert_shortest ~f:(1 lsl 52) ~e:0 ~mantissa_bits:1
       ~narrow:false ~high_ok:true ~est:16
    = None)

(* ---------- monomorphized estimator agreement ---------- *)

(* The dispatcher uses [Scaling.fast_estimate_b10] (hoisted constants,
   no option) in place of [Scaling.estimate Fast_estimate ~base:10 ~b:2];
   byte-identical output depends on the two producing the same integer
   for every mantissa/exponent the fast path can see. *)
let test_fast_estimate_b10 () =
  let st = Random.State.make [| 0x7e57e57 |] in
  for _ = 1 to 20_000 do
    let f = 1 + Random.State.full_int st ((1 lsl 53) - 1) in
    let e = Random.State.int st 2400 - 1200 in
    let f_nat = Nat.of_int f in
    let reference =
      Dragon.Scaling.estimate Dragon.Scaling.Fast_estimate ~base:10 ~b:2
        ~f:f_nat ~e
      |> Option.get
    in
    let mono =
      Dragon.Scaling.fast_estimate_b10 ~bits:(Nat.bit_length f_nat) ~e
    in
    if mono <> reference then
      Alcotest.failf "fast_estimate_b10 f=%d e=%d: %d <> %d" f e mono
        reference
  done

(* ---------- differential sweeps ---------- *)

let without_fastpath f =
  let was = Fastpath.enabled () in
  Fastpath.set_enabled false;
  Fun.protect ~finally:(fun () -> Fastpath.set_enabled was) f

let print_both fmt value =
  let fast =
    match Dragon.Printer.print_value fmt value with
    | Ok s -> s
    | Error e -> "error: " ^ Robust.Error.to_string e
  in
  let exact =
    without_fastpath (fun () ->
        match Dragon.Printer.print_value fmt value with
        | Ok s -> s
        | Error e -> "error: " ^ Robust.Error.to_string e)
  in
  (fast, exact)

(* Every value the free-format pipeline sees dispatches through the
   fast path first, so printing with the gate on vs off is exactly the
   fastpath-vs-exact-kernels differential (and test_fuzz pins the exact
   kernels to the pure reference). *)
let check_value fmt bits value =
  let fast, exact = print_both fmt value in
  if not (String.equal fast exact) then
    Alcotest.failf "fastpath/exact mismatch on bits %Lx: %S vs %S" bits fast
      exact

(* binary32: every positive finite value is 1..0x7F7FFFFF.  The default
   stratified pass strides with a prime step so every binade is
   sampled; BDPRINT_EXHAUSTIVE32=1 sweeps all ~2^31 values (hours: the
   exact-kernel side dominates). *)
let test_binary32_sweep () =
  let exhaustive = Sys.getenv_opt "BDPRINT_EXHAUSTIVE32" = Some "1" in
  let step = if exhaustive then 1 else 10007 in
  let was_metrics = Telemetry.Metrics.enabled () in
  Telemetry.Metrics.set_enabled true;
  let hits0 = Fastpath.hit_count () and fb0 = Fastpath.fallback_count () in
  let tested = ref 0 in
  let bits = ref 1 in
  while !bits <= 0x7F7FFFFF do
    let value = Ieee.decompose_bits Ieee.spec_binary32 (Int64.of_int !bits) in
    (match value with
    | Value.Finite _ ->
      incr tested;
      check_value b32 (Int64.of_int !bits) value
    | _ -> ());
    bits := !bits + step
  done;
  let hits = Fastpath.hit_count () - hits0
  and fallbacks = Fastpath.fallback_count () - fb0 in
  Telemetry.Metrics.set_enabled was_metrics;
  Printf.printf
    "binary32 sweep: %d values, %d fastpath hits, %d fallbacks (%.3f%%)\n%!"
    !tested hits fallbacks
    (100.0 *. float_of_int fallbacks /. float_of_int (max 1 (hits + fallbacks)));
  Alcotest.(check bool) "swept a real population" true (!tested > 100_000);
  (* the dispatch gate was live: every sampled value was attempted *)
  Alcotest.(check bool)
    "attempts cover the sweep" true
    (hits + fallbacks >= !tested);
  Alcotest.(check bool)
    "fallback rate below 5%" true
    (float_of_int fallbacks /. float_of_int (max 1 (hits + fallbacks)) < 0.05)

(* binary64 spot sweep: random payloads plus the classic boundary
   values, fast path vs exact kernels. *)
let test_binary64_random () =
  let st = Random.State.make [| 0x6bd; 64 |] in
  let hard =
    [
      0x0000000000000001L (* min subnormal *);
      0x000FFFFFFFFFFFFFL (* max subnormal *);
      0x0010000000000000L (* min normal *);
      0x7FEFFFFFFFFFFFFFL (* max finite *);
      0x3FF0000000000000L (* 1.0 *);
      0x4340000000000000L (* 2^53 *);
      0x4330000000000001L (* 2^52 + 1 *);
      0x3FB999999999999AL (* 0.1 *);
      0x44B52D02C7E14AF6L (* 1e23-adjacent *);
      0x44B52D02C7E14AF7L;
    ]
  in
  List.iter
    (fun bits -> check_value b64 bits (Ieee.decompose (Int64.float_of_bits bits)))
    hard;
  let n = ref 0 in
  while !n < 20_000 do
    let bits =
      Int64.logand (Random.State.int64 st Int64.max_int) 0x7FFF_FFFF_FFFF_FFFFL
    in
    match Ieee.decompose (Int64.float_of_bits bits) with
    | Value.Finite _ as v ->
      incr n;
      check_value b64 bits v
    | _ -> ()
  done

(* The fast path must honor output-digit budgets with the reference
   cadence: a one-digit budget turns every multi-digit conversion into
   the same structured error on both sides of the gate. *)
let test_budget_parity () =
  let tight =
    { (Robust.Budget.get ()) with Robust.Budget.max_output_digits = 2 }
  in
  Robust.Budget.with_budget tight (fun () ->
      let v = Ieee.decompose 3.14159 in
      let fast, exact = print_both b64 v in
      Alcotest.(check string) "same budget outcome" exact fast;
      Alcotest.(check bool)
        "budget actually fired" true
        (String.length fast >= 6 && String.sub fast 0 6 = "error:"))

let () =
  Alcotest.run "fastpath"
    [
      ( "table",
        [
          Alcotest.test_case "every entry matches exact Nat" `Quick
            test_table_matches_nat;
          Alcotest.test_case "umul128 vs Nat" `Quick test_umul128_vs_nat;
          Alcotest.test_case "64x128 table products" `Quick test_table_products;
        ] );
      ( "verdicts",
        [
          Alcotest.test_case "uncertain on hostile estimates" `Quick
            test_uncertain_verdicts;
          Alcotest.test_case "output-digit budget parity" `Quick
            test_budget_parity;
          Alcotest.test_case "monomorphized estimator agreement" `Quick
            test_fast_estimate_b10;
        ] );
      ( "differential",
        [
          Alcotest.test_case "binary32 sweep byte-identical" `Slow
            test_binary32_sweep;
          Alcotest.test_case "binary64 random + boundaries" `Slow
            test_binary64_random;
        ] );
    ]
