(* Differential tests for the in-place Scratch kernels against the pure
   Nat substrate: every destructive operation must agree with its
   immutable counterpart, on random values and on the carry/borrow edge
   cases at limb boundaries, and the invariant-divisor short division
   must agree with Nat.divmod wherever its single-limb-quotient
   precondition holds and raise (leaving the dividend intact) where it
   does not. *)

module Nat = Bignum.Nat
module Scratch = Bignum.Scratch

let nat = Alcotest.testable Nat.pp Nat.equal
let base = 1 lsl 30
let mask = base - 1

(* ------------------------------------------------------------------ *)
(* Generators (same shape as test_bignum's) *)

let gen_nat_sized limbs =
  let open QCheck.Gen in
  list_size (int_bound limbs) (int_bound mask) >|= fun ds ->
  List.fold_left
    (fun acc d -> Nat.add (Nat.shift_left acc 30) (Nat.of_int d))
    Nat.zero ds

let arb_nat = QCheck.make ~print:Nat.to_string (gen_nat_sized 20)

let arb_pos_nat =
  QCheck.make ~print:Nat.to_string QCheck.Gen.(gen_nat_sized 20 >|= Nat.succ)

let qtest ?(count = 300) name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

(* Run an in-place kernel in a fresh workspace seeded with [a] and
   return the Nat snapshot of the result. *)
let via_scratch a f =
  let t = Scratch.of_nat a in
  f t;
  Alcotest.(check bool) "invariant" true (Scratch.check_invariant t);
  Scratch.to_nat t

(* ------------------------------------------------------------------ *)
(* Units: boundary carries and borrows *)

(* 2^(30k) - 1: every limb saturated. *)
let all_ones k = Nat.pred (Nat.shift_left Nat.one (30 * k))

let test_conversions () =
  Alcotest.check nat "zero round trip" Nat.zero
    (Scratch.to_nat (Scratch.of_nat Nat.zero));
  Alcotest.(check bool) "zero is_zero" true
    (Scratch.is_zero (Scratch.of_nat Nat.zero));
  Alcotest.(check int) "zero length" 0
    (Scratch.length (Scratch.of_nat Nat.zero));
  let t = Scratch.create 2 in
  Scratch.set_int t 12345;
  Alcotest.check nat "set_int" (Nat.of_int 12345) (Scratch.to_nat t);
  (* growth past the initial capacity preserves the value *)
  Scratch.set_nat t (all_ones 7);
  Alcotest.check nat "growth" (all_ones 7) (Scratch.to_nat t);
  Alcotest.(check bool) "capacity grew" true (Scratch.capacity t >= 7);
  let d = Scratch.create 1 in
  Scratch.copy_into ~src:t ~dst:d;
  Alcotest.check nat "copy_into" (all_ones 7) (Scratch.to_nat d)

let test_carry_edges () =
  (* +1 on a saturated value carries through every limb *)
  for k = 1 to 5 do
    let a = all_ones k in
    let got = via_scratch a (fun t ->
        let one = Scratch.of_nat Nat.one in
        Scratch.add_in_place t one)
    in
    Alcotest.check nat
      (Printf.sprintf "carry chain %d limbs" k)
      (Nat.succ a) got
  done;
  (* aliased doubling of a saturated value *)
  let a = all_ones 4 in
  let t = Scratch.of_nat a in
  Scratch.add_in_place t t;
  Alcotest.check nat "aliased add" (Nat.add a a) (Scratch.to_nat t);
  (* multiplying a saturated value by the max limb *)
  let got = via_scratch a (fun t -> Scratch.mul_int_in_place t mask) in
  Alcotest.check nat "mul_int carry" (Nat.mul_int a mask) got

let test_borrow_edges () =
  (* 2^(30k) - (2^(30k) - 1) = 1: borrow through every limb *)
  for k = 1 to 5 do
    let hi = Nat.shift_left Nat.one (30 * k) in
    let got = via_scratch hi (fun t ->
        let b = Scratch.of_nat (all_ones k) in
        Scratch.sub_in_place t b)
    in
    Alcotest.check nat (Printf.sprintf "borrow chain %d limbs" k) Nat.one got
  done;
  (* a - a = 0 clamps down to the empty representation *)
  let a = all_ones 3 in
  let t = Scratch.of_nat a in
  let b = Scratch.of_nat a in
  Scratch.sub_in_place t b;
  Alcotest.(check bool) "self sub is zero" true (Scratch.is_zero t);
  (* negative result: raises before mutating *)
  let t = Scratch.of_nat (Nat.of_int 5) in
  let b = Scratch.of_nat (Nat.of_int 7) in
  (match Scratch.sub_in_place t b with
  | () -> Alcotest.fail "sub 5 - 7 did not raise"
  | exception Invalid_argument _ -> ());
  Alcotest.check nat "minuend unchanged" (Nat.of_int 5) (Scratch.to_nat t)

let test_shift_edges () =
  (* shifts that straddle limb boundaries on saturated values *)
  List.iter
    (fun bits ->
      let a = all_ones 3 in
      let got = via_scratch a (fun t -> Scratch.shift_left_in_place t bits) in
      Alcotest.check nat
        (Printf.sprintf "shift_left %d" bits)
        (Nat.shift_left a bits) got)
    [ 0; 1; 29; 30; 31; 59; 60; 61; 90 ]

let test_quotient_overflow () =
  (* dividend more than one limb wider than the divisor *)
  let d = Scratch.create 4 in
  let _shift = Scratch.normalize_divisor d (Nat.of_int 5) in
  let big = Nat.shift_left Nat.one 200 in
  let r = Scratch.of_nat big in
  (match Scratch.div_digit r d with
  | (_ : int) -> Alcotest.fail "div by 5 of 2^200 did not overflow"
  | exception Scratch.Quotient_overflow -> ());
  Alcotest.check nat "dividend unchanged after overflow" big
    (Scratch.to_nat r);
  (* exactly one limb wider but quotient = 2^30 *)
  let s = Nat.shift_left Nat.one 29 in
  let d = Scratch.create 4 in
  let shift = Scratch.normalize_divisor d s in
  let a = Nat.shift_left Nat.one 59 (* a / s = 2^30 *) in
  let r = Scratch.of_nat (Nat.shift_left a shift) in
  (match Scratch.div_digit r d with
  | (_ : int) -> Alcotest.fail "quotient 2^30 did not overflow"
  | exception Scratch.Quotient_overflow -> ());
  Alcotest.check nat "dividend unchanged (tight overflow)"
    (Nat.shift_left a shift) (Scratch.to_nat r)

(* A workspace reused across operations must not leak stale limbs from
   a previous, larger value. *)
let test_reuse_staleness () =
  let t = Scratch.create 1 in
  Scratch.set_nat t (all_ones 6);
  Scratch.set_nat t (Nat.of_int 3);
  let b = Scratch.of_nat Nat.one in
  Scratch.add_in_place t b;
  Alcotest.check nat "shrunk then add" (Nat.of_int 4) (Scratch.to_nat t);
  Scratch.mul_int_in_place t 0;
  Alcotest.(check bool) "mul by 0 is zero" true (Scratch.is_zero t);
  Scratch.add_in_place t b;
  Alcotest.check nat "zero + 1" Nat.one (Scratch.to_nat t)

(* ------------------------------------------------------------------ *)
(* Properties: differential against Nat *)

let props =
  [
    qtest "to_nat . of_nat = id" arb_nat (fun a ->
        Nat.equal a (Scratch.to_nat (Scratch.of_nat a)));
    qtest "compare agrees with Nat.compare" QCheck.(pair arb_nat arb_nat)
      (fun (a, b) ->
        Scratch.compare (Scratch.of_nat a) (Scratch.of_nat b)
        = Nat.compare a b);
    qtest "add_in_place = Nat.add" QCheck.(pair arb_nat arb_nat)
      (fun (a, b) ->
        Nat.equal (Nat.add a b)
          (via_scratch a (fun t ->
               Scratch.add_in_place t (Scratch.of_nat b))));
    qtest "aliased add doubles" arb_nat (fun a ->
        let t = Scratch.of_nat a in
        Scratch.add_in_place t t;
        Nat.equal (Nat.add a a) (Scratch.to_nat t));
    qtest "sub_in_place = Nat.sub" QCheck.(pair arb_nat arb_nat)
      (fun (a, b) ->
        let hi, lo = if Nat.compare a b >= 0 then (a, b) else (b, a) in
        Nat.equal (Nat.sub hi lo)
          (via_scratch hi (fun t ->
               Scratch.sub_in_place t (Scratch.of_nat lo))));
    qtest "mul_int_in_place = Nat.mul_int"
      QCheck.(pair arb_nat (int_range 0 mask))
      (fun (a, m) ->
        Nat.equal (Nat.mul_int a m)
          (via_scratch a (fun t -> Scratch.mul_int_in_place t m)));
    qtest "shift_left_in_place = Nat.shift_left"
      QCheck.(pair arb_nat (int_range 0 123))
      (fun (a, k) ->
        Nat.equal (Nat.shift_left a k)
          (via_scratch a (fun t -> Scratch.shift_left_in_place t k)));
    qtest "normalize_divisor scales by 2^shift" arb_pos_nat (fun s ->
        let d = Scratch.create 4 in
        let shift = Scratch.normalize_divisor d s in
        shift >= 0 && shift < 30
        && Nat.equal (Nat.shift_left s shift) (Scratch.to_nat d));
    (* planted q*s + rem with q a single limb: div_digit must return q
       and leave rem (both sides scaled by the normalization shift) *)
    qtest ~count:500 "div_digit reconstructs planted q, rem"
      QCheck.(triple arb_pos_nat (int_range 0 mask) arb_nat)
      (fun (s, q, rem0) ->
        let rem = snd (Nat.divmod rem0 s) in
        let a = Nat.add (Nat.mul_int s q) rem in
        let d = Scratch.create 4 in
        let shift = Scratch.normalize_divisor d s in
        let r = Scratch.of_nat (Nat.shift_left a shift) in
        let got_q = Scratch.div_digit r d in
        got_q = q
        && Nat.equal (Nat.shift_left rem shift) (Scratch.to_nat r)
        && Scratch.check_invariant r);
    (* and against Nat.divmod on arbitrary in-range dividends *)
    qtest ~count:500 "div_digit agrees with Nat.divmod"
      QCheck.(pair arb_pos_nat arb_nat)
      (fun (s, a0) ->
        (* clamp the dividend into [0, 2^30 * s) *)
        let a = snd (Nat.divmod a0 (Nat.shift_left s 30)) in
        let nq, nr = Nat.divmod a s in
        let d = Scratch.create 4 in
        let shift = Scratch.normalize_divisor d s in
        let r = Scratch.of_nat (Nat.shift_left a shift) in
        let got_q = Scratch.div_digit r d in
        got_q = Nat.to_int_exn nq
        && Nat.equal (Nat.shift_left nr shift) (Scratch.to_nat r));
    (* a chained sequence of kernels in one reused workspace stays in
       lockstep with the pure fold: catches stale-limb bugs that single
       operations cannot *)
    qtest ~count:200 "reused workspace tracks pure fold"
      QCheck.(pair arb_nat (small_list (pair (int_range 0 3) (int_range 1 mask))))
      (fun (a0, ops) ->
        let t = Scratch.of_nat a0 in
        let pure =
          List.fold_left
            (fun acc (op, x) ->
              match op with
              | 0 ->
                Scratch.add_in_place t (Scratch.of_nat (Nat.of_int x));
                Nat.add_int acc x
              | 1 ->
                let m = x land 0xFFFF in
                Scratch.mul_int_in_place t m;
                Nat.mul_int acc m
              | 2 ->
                let k = x land 63 in
                Scratch.shift_left_in_place t k;
                Nat.shift_left acc k
              | _ ->
                let b = snd (Nat.divmod (Nat.of_int x) (Nat.succ acc)) in
                Scratch.sub_in_place t (Scratch.of_nat b);
                Nat.sub acc b)
            a0 ops
        in
        Scratch.check_invariant t && Nat.equal pure (Scratch.to_nat t));
  ]

let () =
  Alcotest.run "scratch"
    [
      ( "units",
        [
          Alcotest.test_case "conversions and growth" `Quick test_conversions;
          Alcotest.test_case "carry edges at limb boundaries" `Quick
            test_carry_edges;
          Alcotest.test_case "borrow edges at limb boundaries" `Quick
            test_borrow_edges;
          Alcotest.test_case "shifts across limb boundaries" `Quick
            test_shift_edges;
          Alcotest.test_case "quotient overflow leaves dividend intact" `Quick
            test_quotient_overflow;
          Alcotest.test_case "workspace reuse has no stale limbs" `Quick
            test_reuse_staleness;
        ] );
      ("properties", props);
    ]
